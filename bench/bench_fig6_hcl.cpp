// Figure 6 — episode-reward-mean and approximate-KL curves over the hybrid
// curriculum learning schedule (Section IV-D5 / V-A).
//
// The bench trains the agent with the HCL schedule over the paper's five
// training circuits (3/5/8-block OTAs, 3/9-block bias) and prints the two
// series epoch by epoch, annotating the curriculum stage boundaries
// ("next circuit") and the point where random circuit + constraint
// sampling begins.  Shapes to compare with the paper: reward dips at stage
// transitions and recovers (no catastrophic forgetting); approximate KL
// stays bounded and spikes at transitions.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"

namespace {

using namespace afp;

void run_fig6() {
  std::printf("=== Figure 6: HCL training curves ===\n");
  core::TrainOptions opt =
      bench::bench_train_options(/*seed=*/6, bench::scaled(96));
  const auto t0 = std::chrono::steady_clock::now();
  const core::TrainedAgent agent = core::train_agent(opt);
  const double train_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  std::printf("R-GCN pre-training: %zu epochs, final MSE %.4f\n",
              agent.rgcn_history.size(),
              agent.rgcn_history.empty() ? 0.0
                                         : agent.rgcn_history.back().mse);
  std::printf("RL training: %zu PPO iterations over %d circuits in %.1fs\n\n",
              agent.rl_history.size(),
              static_cast<int>(opt.hcl.circuits.size()), train_s);

  std::printf("%6s %6s %18s %14s %10s %10s\n", "epoch", "stage",
              "episode_reward", "approx_KL", "entropy", "violations");
  int prev_stage = -1;
  for (std::size_t i = 0; i < agent.rl_history.size(); ++i) {
    const auto& s = agent.rl_history[i];
    const int stage = agent.stage_history[i];
    if (stage != prev_stage && prev_stage >= 0) {
      std::printf("------ next circuit: %s ------\n",
                  opt.hcl.circuits[static_cast<std::size_t>(stage)].c_str());
    }
    prev_stage = stage;
    std::printf("%6zu %6d %18.2f %14.4f %10.2f %9.0f%%\n", i, stage,
                s.mean_episode_reward, s.approx_kl, s.entropy,
                s.violation_rate * 100.0);
  }

  // Shape summary.  Absolute episode rewards are NOT comparable across
  // stages (larger circuits score lower), so the Fig. 6 claim is checked
  // per stage: within each curriculum stage the agent recovers — the mean
  // reward over the stage's last third beats its first third.
  const std::size_t n = agent.rl_history.size();
  std::printf("\nwithin-stage recovery (mean episode reward):\n");
  int stages = 0;
  for (std::size_t i = 0; i < n;) {
    const int stage = agent.stage_history[i];
    std::size_t j = i;
    while (j < n && agent.stage_history[j] == stage) ++j;
    const std::size_t len = j - i;
    if (len >= 3) {
      auto mean_range = [&](std::size_t lo, std::size_t hi) {
        double sum = 0.0;
        std::size_t cnt = 0;
        for (std::size_t k = lo; k < hi; ++k) {
          sum += agent.rl_history[k].mean_episode_reward;
          ++cnt;
        }
        return cnt ? sum / static_cast<double>(cnt) : 0.0;
      };
      const double first = mean_range(i, i + len / 3);
      const double last = mean_range(j - len / 3, j);
      std::printf("  stage %d (%s): %.2f -> %.2f  %s\n", stage,
                  opt.hcl.circuits[static_cast<std::size_t>(stage)].c_str(),
                  first, last, last >= first ? "[recovered]" : "[declined]");
      ++stages;
    }
    i = j;
  }
  double max_kl = 0.0;
  for (const auto& s : agent.rl_history) {
    max_kl = std::max(max_kl, std::abs(s.approx_kl));
  }
  std::printf("max |approx KL| %.3f (paper shape: bounded, no divergence)\n\n",
              max_kl);
}

void BM_PpoIteration(benchmark::State& state) {
  std::mt19937_64 rng(1);
  rgcn::RewardModel encoder(rng);
  rl::ActorCritic policy(rl::PolicyConfig::fast(), rng);
  auto nl = bench::make_circuit("ota_small");
  auto g = graphir::build_graph(nl, structrec::recognize(nl));
  rl::PPOConfig cfg;
  cfg.n_envs = 4;
  cfg.n_steps = 16;
  cfg.minibatch = 32;
  rl::PPOTrainer trainer(policy, {rl::make_task(encoder, std::move(g))}, cfg);
  for (auto _ : state) {
    auto s = trainer.iterate(rng);
    benchmark::DoNotOptimize(s.policy_loss);
  }
}
BENCHMARK(BM_PpoIteration)->Unit(benchmark::kMillisecond);

void BM_RgcnEncode(benchmark::State& state) {
  std::mt19937_64 rng(2);
  rgcn::RewardModel encoder(rng);
  auto nl = bench::make_circuit("bias2");
  auto g = graphir::build_graph(nl, structrec::recognize(nl));
  for (auto _ : state) {
    auto enc = encoder.encode(g);
    benchmark::DoNotOptimize(enc.graph_embedding.data());
  }
}
BENCHMARK(BM_RgcnEncode)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  run_fig6();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
