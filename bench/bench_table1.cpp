// Table I — comparative analysis of the R-GCN + RL method (0/1/100/1000-
// shot fine-tuning) against SA, GA, PSO and the two SMACD'24 [13] agents,
// over six circuits: three seen in training (OTA-1, OTA-2, Bias-1) and
// three unseen (RS-Latch, Driver, Bias-2).  Metrics per cell: runtime (s),
// dead space (%), HPWL (um) and the Eq. (5) reward, reported as IQM +/- std
// over seeds, matching the paper's format.
//
// Scale note: the agent is trained with the CPU-budget preset and the
// "k-shot" columns use scaled fine-tuning budgets (1 / 96 / 512 episodes
// for the paper's 1 / 100 / 1000); baseline iteration counts are likewise
// scaled.  AFP_BENCH_SCALE multiplies all budgets.  Shapes to compare with the paper: fine-tuned R-GCN RL wins
// reward on (nearly) all circuits, zero-shot inference is orders of
// magnitude faster than search, RL[13] is the slowest baseline.
#include <benchmark/benchmark.h>

#include <ctime>

#include "bench_common.hpp"
#include "metaheur/optimizer.hpp"
#include "metaheur/parallel_search.hpp"
#include "numeric/parallel.hpp"
#include "rl/agent.hpp"

namespace {

using namespace afp;

struct Cell {
  bench::MetricSamples samples;
};

struct CircuitSpec {
  std::string name;
  int blocks;
  bool unseen;
};

const std::vector<CircuitSpec> kCircuits = {
    {"ota1", 5, false},    {"ota2", 8, false},   {"bias1", 9, false},
    {"rs_latch", 7, true}, {"driver", 17, true}, {"bias2", 19, true},
};

const std::vector<std::string> kMethods = {
    "R-GCN RL 0-shot", "R-GCN RL 1-shot", "R-GCN RL 100-shot",
    "R-GCN RL 1000-shot", "SA", "GA", "PSO", "RL-SA [13]", "RL [13]",
    "SA-B* [15]", "PT"};

constexpr int kSeeds = 5;

rl::TaskContext task_for(const rgcn::RewardModel& encoder,
                         const std::string& name, std::mt19937_64& rng) {
  auto nl = bench::make_circuit(name);
  auto g = graphir::build_graph(nl, structrec::recognize(nl));
  auto probe = floorplan::make_instance(g);
  const double ref = metaheur::estimate_hpwl_min(probe, rng, 1200);
  return rl::make_task(encoder, std::move(g), ref);
}

void run_table1() {
  std::printf("=== Table I: R-GCN+RL vs baselines (scaled reproduction) ===\n");
  std::printf("training agent (HCL over 5 circuits)...\n");
  const auto t_train0 = std::chrono::steady_clock::now();
  const core::TrainedAgent agent = core::train_agent(
      bench::bench_train_options(/*seed=*/1,
                                 /*episodes=*/bench::scaled(800)));
  const double train_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    t_train0)
          .count();
  std::printf("base training done in %.1fs (%zu PPO iterations)\n\n", train_s,
              agent.rl_history.size());

  // k-shot budgets: paper 1/100/1000 episodes -> scaled 1/96/768.
  const std::vector<std::pair<std::string, long>> kshot = {
      {"R-GCN RL 1-shot", 1},
      {"R-GCN RL 100-shot", bench::scaled(96)},
      {"R-GCN RL 1000-shot", bench::scaled(768)}};

  for (const auto& circuit : kCircuits) {
    std::map<std::string, Cell> row;
    std::mt19937_64 rng(100);

    // --- R-GCN RL 0-shot: inference only -------------------------------
    for (int s = 0; s < kSeeds; ++s) {
      std::mt19937_64 seed_rng(200 + s);
      auto task = task_for(*agent.encoder, circuit.name, seed_rng);
      const auto ep = rl::best_of_episodes(*agent.policy, task, 8, seed_rng);
      if (!ep.rects.empty()) {
        row["R-GCN RL 0-shot"].samples.add(ep.runtime_s, ep.eval);
      }
    }

    // --- k-shot fine-tuning ---------------------------------------------
    for (const auto& [label, episodes] : kshot) {
      // Fine-tuning dominates the bench runtime; large circuits get one
      // seed, small ones two.
      const int ft_seeds = circuit.blocks > 10 && episodes > 100 ? 1 : 2;
      for (int s = 0; s < ft_seeds; ++s) {
        std::mt19937_64 seed_rng(300 + s);
        auto task = task_for(*agent.encoder, circuit.name, seed_rng);
        rl::ActorCritic tuned(agent.policy->config(), seed_rng);
        rl::copy_parameters(*agent.policy, tuned);
        rl::PPOConfig ft;
        ft.n_envs = 4;
        ft.n_steps = 32;
        ft.minibatch = 64;
        ft.lr = 5e-4f;  // gentler than training: protects the base policy
        const auto t0 = std::chrono::steady_clock::now();
        rl::fine_tune(tuned, task, episodes, seed_rng, ft);
        const auto ep = rl::best_of_episodes(tuned, task, 8, seed_rng);
        const double rt = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - t0)
                              .count();
        if (!ep.rects.empty()) row[label].samples.add(rt, ep.eval);
      }
    }

    // --- baselines ---------------------------------------------------------
    // Every baseline is a registry entry: label + optimizer name + options.
    core::FloorplanPipeline pipe;
    struct BaselineSpec {
      std::string label;
      std::string optimizer;
      metaheur::Options options;
    };
    const std::vector<BaselineSpec> baselines = {
        {"SA", "sa", {{"iterations", "2500"}}},
        {"GA", "ga", {{"population", "16"}, {"generations", "30"}}},
        {"PSO", "pso", {{"particles", "14"}, {"iterations", "40"}}},
        {"RL-SA [13]", "rlsa", {{"iterations", "2500"}}},
        {"RL [13]", "rlsp",
         {{"episodes", "60"}, {"steps_per_episode", "50"}}}};
    // The per-seed baseline runs are independent searches, so they fan out
    // on the shared thread pool (one seed per chunk); samples are gathered
    // in seed order afterwards so the printed statistics stay deterministic.
    // Each sample's runtime is re-measured as per-thread CPU time: a search
    // runs entirely on its worker (nested parallel_for is serial there), so
    // this matches the uncontended serial wall time the table used to
    // report, instead of wall clock inflated by the co-scheduled seeds.
    auto run_seeds =
        [&](unsigned seed_base,
            const std::function<metaheur::BaselineResult(
                const floorplan::Instance&, std::mt19937_64&)>& search) {
          auto thread_cpu_s = [] {
            timespec ts;
            clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
            return static_cast<double>(ts.tv_sec) +
                   static_cast<double>(ts.tv_nsec) * 1e-9;
          };
          std::vector<metaheur::BaselineResult> res(kSeeds);
          num::parallel_for(kSeeds, 1, [&](std::int64_t s0, std::int64_t s1) {
            for (std::int64_t s = s0; s < s1; ++s) {
              std::mt19937_64 seed_rng(seed_base + static_cast<unsigned>(s));
              auto nl = bench::make_circuit(circuit.name);
              auto prep = pipe.prepare(nl, seed_rng);
              const double cpu0 = thread_cpu_s();
              res[static_cast<std::size_t>(s)] =
                  search(prep.instance, seed_rng);
              res[static_cast<std::size_t>(s)].runtime_s =
                  thread_cpu_s() - cpu0;
            }
          });
          return res;
        };
    // Extra baseline beyond the paper's table: SA over B*-trees [15].
    {
      const auto sab =
          metaheur::make_optimizer("sab", {{"iterations", "2500"}});
      for (const auto& res :
           run_seeds(500, [&](const floorplan::Instance& inst,
                              std::mt19937_64& rng) {
             return sab->run(inst, {}, rng);
           })) {
        row["SA-B* [15]"].samples.add(res.runtime_s, res.eval);
      }
    }
    // Extra baseline: parallel tempering at SA's total move budget (the
    // replicas share the 2500 evaluations — see metaheur/tempering.hpp).
    {
      const auto pt = metaheur::make_optimizer(
          "pt", {{"iterations",
                  std::to_string(2500 / metaheur::PTParams{}.replicas - 1)}});
      for (const auto& res :
           run_seeds(400, [&](const floorplan::Instance& inst,
                              std::mt19937_64& rng) {
             return pt->run(inst, {}, rng);
           })) {
        row["PT"].samples.add(res.runtime_s, res.eval);
      }
    }
    for (const auto& spec : baselines) {
      const auto opt = metaheur::make_optimizer(spec.optimizer, spec.options);
      const auto results =
          run_seeds(400, [&](const floorplan::Instance& inst,
                             std::mt19937_64& rng) {
            return opt->run(inst, {}, rng);
          });
      for (const auto& res : results)
        row[spec.label].samples.add(res.runtime_s, res.eval);
    }

    // --- print the circuit's block ------------------------------------------
    std::printf("--- %s (%d blocks)%s ---\n", circuit.name.c_str(),
                circuit.blocks, circuit.unseen ? " [UNSEEN]" : "");
    std::printf("%-20s %16s %16s %16s %16s\n", "method", "runtime(s)",
                "dead space(%)", "HPWL(um)", "reward");
    for (const auto& m : kMethods) {
      const auto it = row.find(m);
      if (it == row.end() || it->second.samples.reward.empty()) {
        std::printf("%-20s %16s %16s %16s %16s\n", m.c_str(), "-", "-", "-",
                    "-");
        continue;
      }
      const auto& sm = it->second.samples;
      std::printf("%-20s %16s %16s %16s %16s\n", m.c_str(),
                  bench::pm(bench::iqm(sm.runtime_s),
                            bench::stddev(sm.runtime_s))
                      .c_str(),
                  bench::pm(bench::iqm(sm.dead_space_pct),
                            bench::stddev(sm.dead_space_pct))
                      .c_str(),
                  bench::pm(bench::iqm(sm.hpwl), bench::stddev(sm.hpwl))
                      .c_str(),
                  bench::pm(bench::iqm(sm.reward), bench::stddev(sm.reward))
                      .c_str());
    }
    // Winner per the paper's bolding: best IQM reward.
    std::string best;
    double best_r = -1e300;
    for (const auto& [m, cell] : row) {
      if (cell.samples.reward.empty()) continue;
      const double r = bench::iqm(cell.samples.reward);
      if (r > best_r) {
        best_r = r;
        best = m;
      }
    }
    std::printf("best reward: %s (%.2f)\n\n", best.c_str(), best_r);
  }
}

// Micro-benchmarks for the kernels Table I's runtime column depends on.
void BM_PolicyInferenceEpisode(benchmark::State& state) {
  std::mt19937_64 rng(1);
  rgcn::RewardModel encoder(rng);
  rl::ActorCritic policy(rl::PolicyConfig::fast(), rng);
  auto nl = bench::make_circuit("ota2");
  auto g = graphir::build_graph(nl, structrec::recognize(nl));
  const auto task = rl::make_task(encoder, std::move(g));
  for (auto _ : state) {
    auto ep = rl::run_episode(policy, task, rng, true);
    benchmark::DoNotOptimize(ep.eval.reward);
  }
}
BENCHMARK(BM_PolicyInferenceEpisode)->Unit(benchmark::kMillisecond);

void BM_SaIteration1000(benchmark::State& state) {
  std::mt19937_64 rng(2);
  auto nl = bench::make_circuit("bias2");
  auto g = graphir::build_graph(nl, structrec::recognize(nl));
  const auto inst = floorplan::make_instance(g);
  for (auto _ : state) {
    metaheur::SAParams p;
    p.iterations = 1000;
    auto res = metaheur::run_sa(inst, p, rng);
    benchmark::DoNotOptimize(res.eval.reward);
  }
}
BENCHMARK(BM_SaIteration1000)->Unit(benchmark::kMillisecond);

void BM_PtBudget1000(benchmark::State& state) {
  // Parallel tempering at a 1000-evaluation total budget; the replicas
  // step concurrently, so wall time approaches the cold chain's share as
  // AFP_NUM_THREADS grows.
  auto nl = bench::make_circuit("bias2");
  auto g = graphir::build_graph(nl, structrec::recognize(nl));
  const auto inst = floorplan::make_instance(g);
  for (auto _ : state) {
    std::mt19937_64 rng(2);
    metaheur::PTParams p;
    p.iterations = 1000 / p.replicas - 1;
    auto res = metaheur::run_pt(inst, p, rng);
    benchmark::DoNotOptimize(res.eval.reward);
  }
}
BENCHMARK(BM_PtBudget1000)->Unit(benchmark::kMillisecond);

void BM_SaMultistart4(benchmark::State& state) {
  // Four 1000-iteration restarts on the shared pool; wall time approaches a
  // single restart as AFP_NUM_THREADS grows.
  auto nl = bench::make_circuit("bias2");
  auto g = graphir::build_graph(nl, structrec::recognize(nl));
  const auto inst = floorplan::make_instance(g);
  for (auto _ : state) {
    metaheur::SAParams p;
    p.iterations = 1000;
    auto res = metaheur::run_sa_multi(inst, p, {/*restarts=*/4,
                                                /*base_seed=*/2});
    benchmark::DoNotOptimize(res.eval.reward);
  }
}
BENCHMARK(BM_SaMultistart4)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  run_table1();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
