// Extension experiment: zero-shot generalization breadth.
//
// The paper's transfer claim (Section V-B) is evaluated on three unseen
// circuits; this bench widens the sweep to every circuit in the registry —
// comparators, level shifters, oscillators, folded-cascode OTAs, charge
// pumps, bandgaps — and reports the zero-shot reward of one HCL-trained
// agent against same-budget SA on each.  Shape: the agent stays within a
// bounded gap of (or beats) SA across families it never saw, demonstrating
// the R-GCN encoder's cross-topology generalization.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "rl/agent.hpp"

namespace {

using namespace afp;

void run_generalization() {
  std::printf("=== Extension: zero-shot generalization across the registry ===\n");
  const core::TrainedAgent agent = core::train_agent(
      bench::bench_train_options(/*seed=*/9, bench::scaled(400)));

  std::printf("%-16s %7s %8s %14s %14s %10s\n", "circuit", "blocks",
              "trained", "0-shot reward", "SA reward", "0-shot wins");
  int wins = 0, total = 0;
  double gap_sum = 0.0;
  for (const auto& entry : netlist::circuit_registry()) {
    std::mt19937_64 rng(31);
    auto nl = entry.make();
    auto g = graphir::build_graph(nl, structrec::recognize(nl));
    auto probe = floorplan::make_instance(g);
    const double ref = metaheur::estimate_hpwl_min(probe, rng, 1200);
    const auto task = rl::make_task(*agent.encoder, std::move(g), ref);
    const auto ep = rl::best_of_episodes(*agent.policy, task, 8, rng);
    const double rl_reward = ep.rects.empty() ? -50.0 : ep.eval.reward;

    metaheur::SAParams sa;
    sa.iterations = 2500;
    floorplan::Instance inst = task.instance;
    const auto base = metaheur::run_sa(inst, sa, rng);

    const bool win = rl_reward > base.eval.reward;
    wins += win ? 1 : 0;
    ++total;
    gap_sum += rl_reward - base.eval.reward;
    std::printf("%-16s %7d %8s %14.2f %14.2f %10s\n", entry.name.c_str(),
                entry.expected_blocks, entry.in_training_set ? "yes" : "no",
                rl_reward, base.eval.reward, win ? "yes" : "no");
  }
  std::printf("\nzero-shot beats SA on %d/%d circuits; mean reward gap "
              "%+.2f (positive favours the agent)\n",
              wins, total, gap_sum / total);
  std::printf("paper shape: strong transfer to unseen topologies without "
              "retraining (Section V-B).\n\n");
}

void BM_ZeroShotEpisodeBias2(benchmark::State& state) {
  std::mt19937_64 rng(1);
  rgcn::RewardModel encoder(rng);
  rl::ActorCritic policy(rl::PolicyConfig::fast(), rng);
  auto nl = bench::make_circuit("bias2");
  auto g = graphir::build_graph(nl, structrec::recognize(nl));
  const auto task = rl::make_task(encoder, std::move(g));
  for (auto _ : state) {
    auto ep = rl::run_episode(policy, task, rng, true);
    benchmark::DoNotOptimize(ep.total_reward);
  }
}
BENCHMARK(BM_ZeroShotEpisodeBias2)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  run_generalization();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
