// Extension experiment: zero-shot generalization breadth.
//
// The paper's transfer claim (Section V-B) is evaluated on three unseen
// circuits; this bench widens the sweep along two axes:
//
//   1. `table1` section — every circuit in the registry (comparators,
//      level shifters, oscillators, folded-cascode OTAs, charge pumps,
//      bandgaps): zero-shot reward of one HCL-trained agent against
//      same-budget SA on each, exactly the historic sweep.
//   2. `scenario_matrix` section — generated workloads from the ingest
//      subsystem (families x sizes x seeds, constraint scenarios on):
//      SA on every instance, the zero-shot agent additionally on the
//      sizes the grid environment handles well.  This probes transfer to
//      parameterized out-of-distribution topologies no registry circuit
//      covers, and reports the constraint-satisfaction rate.
//
// Results are printed and written to BENCH_generalization.json.
// AFP_BENCH_SCALE scales the training-episode and SA move budgets.
#include <benchmark/benchmark.h>

#include <fstream>

#include "bench_common.hpp"
#include "ingest/scenario.hpp"
#include "rl/agent.hpp"

namespace {

using namespace afp;

struct Row {
  std::string section;   // "table1" | "scenario_matrix"
  std::string name;
  int blocks = 0;
  bool trained = false;  // circuit was in the HCL training set
  bool has_rl = false;
  double rl_reward = 0.0;
  double sa_reward = 0.0;
  int violated = 0;      // SA result's constraint violations (items)
  int items = 0;
};

/// Zero-shot episode + same-budget SA on one prepared graph.  The graph
/// carries its constraint spec; both methods score against it.
Row run_pair(std::string section, std::string name, graphir::CircuitGraph g,
             const core::TrainedAgent* agent, bool run_rl) {
  Row row;
  row.section = std::move(section);
  row.name = std::move(name);
  row.blocks = g.num_nodes();
  std::mt19937_64 rng(31);
  auto probe = floorplan::make_instance(g);
  const double ref = metaheur::estimate_hpwl_min(probe, rng, 1200);
  floorplan::Instance inst = probe;
  inst.hpwl_ref = ref;
  if (run_rl && agent) {
    const auto task = rl::make_task(*agent->encoder, std::move(g), ref);
    const auto ep = rl::best_of_episodes(*agent->policy, task, 8, rng);
    row.has_rl = true;
    row.rl_reward = ep.rects.empty() ? -50.0 : ep.eval.reward;
    inst = task.instance;
  }
  metaheur::SAParams sa;
  sa.iterations = 2500;
  // Zero congestion spacing: the default one-cell margin offsets every
  // block, which makes a pre-placed (0,0) anchor unsatisfiable outright.
  sa.spacing_um = 0.0;
  const auto base = metaheur::run_sa(inst, sa, rng);
  row.sa_reward = base.eval.reward;
  row.violated = floorplan::constraint_violations(inst, base.rects, 1e-6,
                                                  &row.items);
  return row;
}

std::vector<Row> run_table1(const core::TrainedAgent& agent) {
  std::printf("=== table1: zero-shot generalization across the registry ===\n");
  std::printf("%-16s %7s %8s %14s %14s %10s\n", "circuit", "blocks",
              "trained", "0-shot reward", "SA reward", "0-shot wins");
  std::vector<Row> rows;
  int wins = 0;
  double gap_sum = 0.0;
  for (const auto& entry : netlist::circuit_registry()) {
    auto nl = entry.make();
    auto g = graphir::build_graph(nl, structrec::recognize(nl));
    Row row = run_pair("table1", entry.name, std::move(g), &agent, true);
    row.trained = entry.in_training_set;
    const bool win = row.rl_reward > row.sa_reward;
    wins += win ? 1 : 0;
    gap_sum += row.rl_reward - row.sa_reward;
    std::printf("%-16s %7d %8s %14.2f %14.2f %10s\n", entry.name.c_str(),
                row.blocks, row.trained ? "yes" : "no", row.rl_reward,
                row.sa_reward, win ? "yes" : "no");
    rows.push_back(std::move(row));
  }
  std::printf("\nzero-shot beats SA on %d/%zu circuits; mean reward gap "
              "%+.2f (positive favours the agent)\n",
              wins, rows.size(), gap_sum / static_cast<double>(rows.size()));
  std::printf("paper shape: strong transfer to unseen topologies without "
              "retraining (Section V-B).\n\n");
  return rows;
}

std::vector<Row> run_scenario_matrix(const core::TrainedAgent& agent) {
  // Generated out-of-distribution workloads: constraint scenarios on, so
  // the SA rows also measure how often a blind baseline satisfies the
  // overlay.  The RL grid environment stays on the small sizes — its
  // action space grows with the block count, so large instances measure
  // the metaheuristic only.
  std::vector<int> sizes = {10, 24};
  if (const int big = bench::scaled(48); big > sizes.back()) {
    sizes.push_back(big);
  }
  const std::vector<int> seeds = {1, 2};
  constexpr int kRlMaxBlocks = 24;
  std::printf("=== scenario matrix: generated workloads (ingest) ===\n");
  std::printf("%-18s %7s %14s %14s %12s\n", "instance", "blocks",
              "0-shot reward", "SA reward", "constraints");
  std::vector<Row> rows;
  int satisfied = 0;
  for (const auto& family : ingest::scenario_families()) {
    for (int size : sizes) {
      for (int seed : seeds) {
        ingest::ScenarioSpec spec;
        spec.family = family;
        spec.size = size;
        spec.seed = static_cast<std::uint64_t>(seed);
        auto sc = ingest::make_scenario(spec);
        auto g = graphir::build_graph(sc.netlist,
                                      structrec::recognize(sc.netlist));
        graphir::apply_constraints(g, graphir::resolve(sc.constraints, g));
        Row row = run_pair("scenario_matrix", spec.to_string(), std::move(g),
                           &agent, size <= kRlMaxBlocks);
        if (row.violated == 0) ++satisfied;
        char rl[16];
        if (row.has_rl) {
          std::snprintf(rl, sizeof rl, "%14.2f", row.rl_reward);
        } else {
          std::snprintf(rl, sizeof rl, "%14s", "-");
        }
        std::printf("%-18s %7d %s %14.2f %9d/%d\n", row.name.c_str(),
                    row.blocks, rl, row.sa_reward, row.violated, row.items);
        rows.push_back(std::move(row));
      }
    }
  }
  std::printf("\nSA satisfies the full constraint overlay on %d/%zu "
              "generated instances at this budget.\n\n",
              satisfied, rows.size());
  return rows;
}

void write_json(const std::vector<Row>& rows) {
  std::ofstream os("BENCH_generalization.json");
  os << "{\n  \"bench\": \"generalization\",\n  \"rows\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    os << "    {\"section\": \"" << r.section << "\", \"name\": \"" << r.name
       << "\", \"blocks\": " << r.blocks
       << ", \"trained\": " << (r.trained ? "true" : "false");
    if (r.has_rl) os << ", \"rl_reward\": " << r.rl_reward;
    os << ", \"sa_reward\": " << r.sa_reward
       << ", \"constraint_violations\": " << r.violated
       << ", \"constraint_items\": " << r.items << "}"
       << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
  std::printf("wrote BENCH_generalization.json\n");
}

void BM_ZeroShotEpisodeBias2(benchmark::State& state) {
  std::mt19937_64 rng(1);
  rgcn::RewardModel encoder(rng);
  rl::ActorCritic policy(rl::PolicyConfig::fast(), rng);
  auto nl = bench::make_circuit("bias2");
  auto g = graphir::build_graph(nl, structrec::recognize(nl));
  const auto task = rl::make_task(encoder, std::move(g));
  for (auto _ : state) {
    auto ep = rl::run_episode(policy, task, rng, true);
    benchmark::DoNotOptimize(ep.total_reward);
  }
}
BENCHMARK(BM_ZeroShotEpisodeBias2)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  const core::TrainedAgent agent = core::train_agent(
      bench::bench_train_options(/*seed=*/9, bench::scaled(400)));
  std::vector<Row> rows = run_table1(agent);
  std::vector<Row> matrix = run_scenario_matrix(agent);
  rows.insert(rows.end(), std::make_move_iterator(matrix.begin()),
              std::make_move_iterator(matrix.end()));
  write_json(rows);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
