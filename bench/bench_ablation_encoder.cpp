// Ablation A3 — pre-trained R-GCN encoder vs random encoder
// (Section IV-C).
//
// The paper pre-trains the R-GCN on reward regression so its embeddings
// carry optimization-relevant circuit structure, then freezes it for the
// RL agent.  The ablation trains two otherwise identical agents — one
// with the pre-trained encoder, one with a randomly initialized encoder —
// and compares zero-shot transfer to circuits unseen during RL training.
// Shape: the pre-trained encoder transfers at least as well, and its
// reward-model MSE drops during pre-training (sanity series printed).
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "rl/agent.hpp"

namespace {

using namespace afp;

double eval_zero_shot(const rgcn::RewardModel& encoder,
                      const rl::ActorCritic& policy,
                      const std::string& circuit, unsigned seed) {
  std::mt19937_64 rng(seed);
  auto nl = bench::make_circuit(circuit);
  auto g = graphir::build_graph(nl, structrec::recognize(nl));
  auto probe = floorplan::make_instance(g);
  const double ref = metaheur::estimate_hpwl_min(probe, rng, 1000);
  const auto task = rl::make_task(encoder, std::move(g), ref);
  const auto ep = rl::best_of_episodes(policy, task, 8, rng);
  return ep.rects.empty() ? -50.0 : ep.eval.reward;
}

void run_ablation() {
  std::printf("=== Ablation A3: pre-trained vs random R-GCN encoder ===\n");

  // Variant 1: full pipeline (pre-trained encoder).
  core::TrainOptions opt = bench::bench_train_options(31, bench::scaled(144));
  opt.rgcn_samples_per_circuit = 4;
  opt.rgcn_epochs = 10;
  opt.hcl.circuits = {"ota_small", "bias_small", "ota1"};
  std::printf("training with pre-trained encoder...\n");
  const auto pretrained = core::train_agent(opt);
  std::printf("R-GCN pre-training MSE series:");
  for (const auto& s : pretrained.rgcn_history) std::printf(" %.4f", s.mse);
  std::printf("\n");

  // Variant 2: random encoder (skip pre-training), same RL schedule.
  std::printf("training with random encoder...\n");
  std::mt19937_64 rng(31);
  auto random_encoder = std::make_shared<rgcn::RewardModel>(rng);
  auto policy = std::make_shared<rl::ActorCritic>(opt.policy, rng);
  rl::HclScheduler sched(opt.hcl, *random_encoder, rng);
  std::vector<rl::TaskContext> init;
  for (int i = 0; i < opt.ppo.n_envs; ++i) init.push_back(sched.next_task(rng));
  rl::PPOTrainer trainer(*policy, std::move(init), opt.ppo, opt.env);
  trainer.next_task = [&](int) {
    return std::optional<rl::TaskContext>(sched.next_task(rng));
  };
  while (!sched.finished()) (void)trainer.iterate(rng);

  const std::vector<std::string> unseen = {"ota2", "bias1", "rs_latch",
                                           "comparator"};
  std::printf("\nzero-shot transfer reward on circuits unseen in RL "
              "training:\n%-12s %14s %14s\n",
              "circuit", "pre-trained", "random-enc");
  double sum_pre = 0.0, sum_rand = 0.0;
  for (const auto& c : unseen) {
    const double rp =
        eval_zero_shot(*pretrained.encoder, *pretrained.policy, c, 9);
    const double rr = eval_zero_shot(*random_encoder, *policy, c, 9);
    std::printf("%-12s %14.2f %14.2f\n", c.c_str(), rp, rr);
    sum_pre += rp;
    sum_rand += rr;
  }
  std::printf("\nmean zero-shot reward: pre-trained %.2f vs random %.2f\n",
              sum_pre / unseen.size(), sum_rand / unseen.size());
  std::printf("paper shape: reward-regression pre-training aligns the "
              "embeddings with the RL objective, improving transfer "
              "(Section IV-C).\n\n");
}

void BM_RewardModelPredict(benchmark::State& state) {
  std::mt19937_64 rng(1);
  rgcn::RewardModel model(rng);
  auto nl = bench::make_circuit("driver");
  auto g = graphir::build_graph(nl, structrec::recognize(nl));
  for (auto _ : state) {
    auto pred = model.predict(g);
    benchmark::DoNotOptimize(pred.item());
  }
}
BENCHMARK(BM_RewardModelPredict)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  run_ablation();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
