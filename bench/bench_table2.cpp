// Table II — complete-layout comparison: area, dead space and layout
// generation time of the automated pipeline (floorplan + OARSMT routing +
// procedural generation) versus manual design, for a 3-block OTA, the
// 9-block Bias-1 and the 17-block Driver.
//
// Substitution (see DESIGN.md): the engineers' manual layouts are not
// available, so the "manual" reference is synthesized by a long-schedule
// simulated annealing run with generous hand-crafted routing spacing —
// i.e. a carefully optimized floorplan a human would converge to — and
// the manual design times are the constants the paper reports (8 h / 8 h /
// 32 h).  The comparison harness, metrics and printed rows match Table II.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "metaheur/optimizer.hpp"
#include "metaheur/parallel_search.hpp"
#include "rl/agent.hpp"

namespace {

using namespace afp;

struct Table2Circuit {
  std::string name;
  std::string label;
  double manual_hours;            ///< paper-reported manual design time
  double manual_improvement_h;    ///< paper-reported manual touch-up time
};

const std::vector<Table2Circuit> kCircuits = {
    {"ota_small", "OTA", 8.0, 0.17},
    {"bias1", "Bias-1", 8.0, 1.0},
    {"driver", "Driver", 32.0, 20.0},
};

void run_table2() {
  std::printf("=== Table II: complete layouts vs manual reference ===\n");
  const core::TrainedAgent agent = core::train_agent(
      bench::bench_train_options(/*seed=*/3, bench::scaled(400)));

  std::printf("%-8s %-8s %14s %16s %14s %14s %14s\n", "circuit", "method",
              "area(um2)", "dead space(%)", "template(s)", "improve(h)",
              "final(h)");
  for (const auto& c : kCircuits) {
    std::mt19937_64 rng(42);
    const auto nl = bench::make_circuit(c.name);

    // ---- automated pipeline -------------------------------------------------
    // Per-circuit fine-tuning before layout, as the deployed flow would
    // (Table I shows fine-tuned agents; Table II reuses them).
    rl::ActorCritic tuned(agent.policy->config(), rng);
    rl::copy_parameters(*agent.policy, tuned);
    {
      auto gtune = graphir::build_graph(nl, structrec::recognize(nl));
      auto probe = floorplan::make_instance(gtune);
      const double ref = metaheur::estimate_hpwl_min(probe, rng, 1200);
      const auto task = rl::make_task(*agent.encoder, std::move(gtune), ref);
      rl::PPOConfig ft;
      ft.n_envs = 4;
      ft.n_steps = 32;
      ft.minibatch = 64;
      ft.lr = 5e-4f;
      rl::fine_tune(tuned, task, bench::scaled(256), rng, ft);
    }
    core::PipelineConfig pcfg;
    pcfg.rl_attempts = 8;
    core::FloorplanPipeline pipe(pcfg);
    const auto res = pipe.run(nl, tuned, *agent.encoder, rng);
    const double template_s = res.timings.total();
    const double ours_area = res.layout.area();
    const double ours_ds = res.layout.dead_space(res.instance) * 100.0;
    // Manual improvement applies only where DRC/LVS still flag work; we
    // charge the paper's improvement constant when reports are not clean.
    const bool clean = res.drc.clean() && res.lvs.clean();
    const double improve_h = clean ? 0.0 : c.manual_improvement_h;
    const double ours_final_h = template_s / 3600.0 + improve_h;

    // ---- "manual" reference -------------------------------------------------
    auto prep = pipe.prepare(nl, rng);
    char spacing[64];  // full precision: the parsed double must round-trip
    std::snprintf(spacing, sizeof spacing, "%.17g",
                  prep.instance.canvas_w / 32.0);
    const auto manual_sa = metaheur::make_optimizer(
        "sa", {{"iterations", std::to_string(bench::scaled(20000))},
               {"spacing_um", spacing}});
    // Four seeded restarts on the thread pool stand in for the engineer
    // iterating on the floorplan; best-of-restarts is the reference.
    const auto manual = metaheur::run_multistart(
        prep.instance,
        [&](int, std::mt19937_64& r) {
          return manual_sa->run(prep.instance, {}, r);
        },
        {/*restarts=*/4, /*base_seed=*/42});
    const auto mroute =
        route::global_route(prep.instance, manual.rects);
    const auto mlayout = layoutgen::generate_layout(prep.instance,
                                                    manual.rects, mroute);
    const double man_area = mlayout.area();
    const double man_ds = mlayout.dead_space(prep.instance) * 100.0;

    auto pct = [](double ours, double manual_v) {
      return manual_v != 0.0 ? (ours - manual_v) / manual_v * 100.0 : 0.0;
    };
    std::printf("%-8s %-8s %8.1f (%+5.1f%%) %8.2f (%+5.2f%%) %14.2f %14.2f %10.2f (%+5.1f%%)\n",
                c.label.c_str(), "Ours", ours_area, pct(ours_area, man_area),
                ours_ds, ours_ds - man_ds, template_s, improve_h,
                ours_final_h, pct(ours_final_h, c.manual_hours));
    std::printf("%-8s %-8s %14.1f %16.2f %14s %14s %14.1f\n", c.label.c_str(),
                "Manual", man_area, man_ds, "-", "-", c.manual_hours);

    // ---- parallel tempering row --------------------------------------------
    // The strongest classical search at the same spacing budget: multi-start
    // replica exchange, then the same routing + layout generation back half.
    const auto t_pt0 = std::chrono::steady_clock::now();
    metaheur::PTParams ptp;
    ptp.iterations = bench::scaled(20000) / ptp.replicas - 1;
    ptp.spacing_um = prep.instance.canvas_w / 32.0;
    const auto pt = metaheur::run_pt_multi(prep.instance, ptp,
                                           {/*restarts=*/4,
                                            /*base_seed=*/42});
    const auto ptroute = route::global_route(prep.instance, pt.rects);
    const auto ptlayout = layoutgen::generate_layout(prep.instance, pt.rects,
                                                     ptroute);
    const double pt_template_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      t_pt0)
            .count();
    const double pt_area = ptlayout.area();
    const double pt_ds = ptlayout.dead_space(prep.instance) * 100.0;
    std::printf("%-8s %-8s %8.1f (%+5.1f%%) %8.2f (%+5.2f%%) %14.2f %14s %10.2f (%+5.1f%%)\n",
                c.label.c_str(), "PT", pt_area, pct(pt_area, man_area), pt_ds,
                pt_ds - man_ds, pt_template_s, "-", pt_template_s / 3600.0,
                pct(pt_template_s / 3600.0, c.manual_hours));
    std::printf("         Ours: DRC %s (%zu violations), LVS %s (%zu opens, %zu shorts), routed nets %zu/%zu\n\n",
                res.drc.clean() ? "clean" : "dirty", res.drc.violations.size(),
                res.lvs.clean() ? "clean" : "dirty", res.lvs.open_nets.size(),
                res.lvs.shorted.size(), res.route.trees.size(),
                res.instance.nets.size());
  }
  std::printf(
      "paper shape: layout time reduced by ~67%% on average with area within\n"
      "+/-15%% of manual (Bias-1 regresses on area, OTA and Driver improve).\n\n");
}

void BM_FullPipelineOta(benchmark::State& state) {
  std::mt19937_64 rng(1);
  rgcn::RewardModel encoder(rng);
  rl::ActorCritic policy(rl::PolicyConfig::fast(), rng);
  const auto nl = bench::make_circuit("ota_small");
  core::FloorplanPipeline pipe;
  for (auto _ : state) {
    auto res = pipe.run(nl, policy, encoder, rng);
    benchmark::DoNotOptimize(res.layout.area());
  }
}
BENCHMARK(BM_FullPipelineOta)->Unit(benchmark::kMillisecond);

void BM_GlobalRouteDriver(benchmark::State& state) {
  std::mt19937_64 rng(2);
  const auto nl = bench::make_circuit("driver");
  auto g = graphir::build_graph(nl, structrec::recognize(nl));
  const auto inst = floorplan::make_instance(g);
  metaheur::SAParams p;
  p.iterations = 800;
  const auto base = metaheur::run_sa(inst, p, rng);
  for (auto _ : state) {
    auto gr = route::global_route(inst, base.rects);
    benchmark::DoNotOptimize(gr.total_wirelength);
  }
}
BENCHMARK(BM_GlobalRouteDriver)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  run_table2();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
