// Search-quality bench: single-chain SA vs best-of-restarts SA vs parallel
// tempering (both representations) at an EQUAL packed-and-scored move budget
// over the Table I circuits and seeds.  The point of the comparison is the
// acceptance bar for the tempering baseline: at the same number of cost
// evaluations, replica exchange must beat the single chain's mean best cost.
//
// Self-timed (no Google Benchmark), always builds; results are printed and
// written to BENCH_search.json.  AFP_BENCH_SCALE scales the move budget.
#include <fstream>
#include <map>

#include "bench_common.hpp"
#include "metaheur/tempering.hpp"
#include "numeric/parallel.hpp"

namespace afp::bench {

namespace {

constexpr int kSeeds = 5;  // matches bench_table1's per-cell seed count

const std::vector<std::string> kCircuits = {"ota1",     "ota2",   "bias1",
                                            "rs_latch", "driver", "bias2"};

struct MethodStats {
  std::vector<double> best_cost;
  std::vector<double> runtime_s;
  long evaluations = 0;

  static double mean(const std::vector<double>& v) {
    double s = 0.0;
    for (double x : v) s += x;
    return v.empty() ? 0.0 : s / static_cast<double>(v.size());
  }
  double mean_cost() const { return mean(best_cost); }
  double mean_runtime() const { return mean(runtime_s); }
};

floorplan::Instance instance_of(const std::string& name) {
  auto nl = make_circuit(name);
  auto g = graphir::build_graph(nl, structrec::recognize(nl));
  return floorplan::make_instance(g);
}

}  // namespace

}  // namespace afp::bench

int main() {
  using namespace afp;
  using namespace afp::bench;

  // Equal total budget for every method: evaluations = kBudget exactly.
  //   SA:    1 initial + (kBudget - 1) moves
  //   SAxR:  R restarts of 1 + kBudget/R - 1 moves
  //   PT:    K replicas, K + K * iterations evaluations in total
  const int kBudget = scaled(2496);
  const int kRestarts = 4;

  metaheur::SAParams sa;
  sa.iterations = kBudget - 1;
  metaheur::SAParams sa_r;
  sa_r.iterations = kBudget / kRestarts - 1;
  metaheur::PTParams pt;  // tuned defaults; only the budget is overridden
  pt.iterations = kBudget / pt.replicas - 1;
  metaheur::PTParams ptb = pt;
  ptb.representation = metaheur::Representation::kBStarTree;

  std::printf("search bench: %d threads, budget %d evaluations/method\n\n",
              num::num_threads(), kBudget);
  std::printf("%-10s %12s %12s %12s %12s   (mean best cost, %d seeds)\n",
              "circuit", "SA", "SAx4", "PT", "PT-B*", kSeeds);

  // methods x circuits -> stats; summary aggregates over all circuits.
  const std::vector<std::string> kMethodNames = {"SA", "SAx4", "PT", "PT-B*"};
  std::map<std::string, std::map<std::string, MethodStats>> table;
  std::map<std::string, MethodStats> overall;

  for (const auto& name : kCircuits) {
    const auto inst = instance_of(name);
    for (int s = 0; s < kSeeds; ++s) {
      const std::uint64_t seed = 400 + static_cast<std::uint64_t>(s);
      auto record = [&](const std::string& method,
                        const metaheur::BaselineResult& r) {
        auto& cell = table[name][method];
        cell.best_cost.push_back(metaheur::sp_cost(inst, r.rects));
        cell.runtime_s.push_back(r.runtime_s);
        cell.evaluations = r.evaluations;
        overall[method].best_cost.push_back(cell.best_cost.back());
      };
      {
        std::mt19937_64 rng(seed);
        record("SA", metaheur::run_sa(inst, sa, rng));
      }
      record("SAx4",
             metaheur::run_sa_multi(inst, sa_r, {kRestarts, seed}));
      {
        std::mt19937_64 rng(seed);
        record("PT", metaheur::run_pt(inst, pt, rng));
      }
      {
        std::mt19937_64 rng(seed);
        record("PT-B*", metaheur::run_pt(inst, ptb, rng));
      }
    }
    std::printf("%-10s %12.4f %12.4f %12.4f %12.4f\n", name.c_str(),
                table[name]["SA"].mean_cost(), table[name]["SAx4"].mean_cost(),
                table[name]["PT"].mean_cost(),
                table[name]["PT-B*"].mean_cost());
  }

  const double sa_mean = overall["SA"].mean_cost();
  const double pt_mean = overall["PT"].mean_cost();
  std::printf("\noverall mean best cost: SA %.4f | SAx4 %.4f | PT %.4f | "
              "PT-B* %.4f\n",
              sa_mean, overall["SAx4"].mean_cost(), pt_mean,
              overall["PT-B*"].mean_cost());
  std::printf("PT %s single-chain SA at equal move budget (%.4f vs %.4f)\n",
              pt_mean < sa_mean ? "beats" : "DOES NOT beat", pt_mean, sa_mean);

  std::ofstream os("BENCH_search.json");
  os << "{\n  \"bench\": \"search\",\n  \"threads\": " << num::num_threads()
     << ",\n  \"budget_evaluations\": " << kBudget
     << ",\n  \"seeds\": " << kSeeds << ",\n  \"circuits\": [\n";
  for (std::size_t c = 0; c < kCircuits.size(); ++c) {
    os << "    {\"circuit\": \"" << kCircuits[c] << "\"";
    for (const auto& m : kMethodNames) {
      const auto& cell = table[kCircuits[c]][m];
      os << ", \"" << m << "\": {\"mean_cost\": " << cell.mean_cost()
         << ", \"mean_runtime_s\": " << cell.mean_runtime()
         << ", \"evaluations\": " << cell.evaluations << "}";
    }
    os << "}" << (c + 1 < kCircuits.size() ? "," : "") << "\n";
  }
  os << "  ],\n  \"summary\": {";
  for (std::size_t i = 0; i < kMethodNames.size(); ++i) {
    os << "\"" << kMethodNames[i]
       << "_mean_cost\": " << overall[kMethodNames[i]].mean_cost()
       << (i + 1 < kMethodNames.size() ? ", " : "");
  }
  os << ", \"pt_beats_sa\": " << (pt_mean < sa_mean ? "true" : "false")
     << "}\n}\n";
  std::printf("wrote BENCH_search.json\n");
  return 0;
}
