// Search-quality bench: single-chain SA vs best-of-restarts SA vs parallel
// tempering (both representations) at an EQUAL packed-and-scored move budget
// over the Table I circuits and seeds.  The point of the comparison is the
// acceptance bar for the tempering baseline: at the same number of cost
// evaluations, replica exchange must beat the single chain's mean best cost.
//
// Self-timed (no Google Benchmark), always builds; results are printed and
// written to BENCH_search.json.  AFP_BENCH_SCALE scales the move budget.
// A JobService section times an N-circuit batch serially (1 thread) vs on a
// 4-thread pool, asserts the reports are bitwise identical (thread-count
// invariance + repeatability), and records the speedup — ≥2x on a ≥4-core
// box; bounded by the physical core count (a 1-core CI runner records ~1x).
#include <fstream>
#include <map>

#include "bench_common.hpp"
#include "core/job_service.hpp"
#include "metaheur/eval_cache.hpp"
#include "metaheur/optimizer.hpp"
#include "metaheur/tempering.hpp"
#include "numeric/parallel.hpp"

namespace afp::bench {

namespace {

constexpr int kSeeds = 5;  // matches bench_table1's per-cell seed count

const std::vector<std::string> kCircuits = {"ota1",     "ota2",   "bias1",
                                            "rs_latch", "driver", "bias2"};

struct MethodStats {
  std::vector<double> best_cost;
  std::vector<double> runtime_s;
  long evaluations = 0;

  static double mean(const std::vector<double>& v) {
    double s = 0.0;
    for (double x : v) s += x;
    return v.empty() ? 0.0 : s / static_cast<double>(v.size());
  }
  double mean_cost() const { return mean(best_cost); }
  double mean_runtime() const { return mean(runtime_s); }
};

floorplan::Instance instance_of(const std::string& name) {
  auto nl = make_circuit(name);
  auto g = graphir::build_graph(nl, structrec::recognize(nl));
  return floorplan::make_instance(g);
}

/// Synthetic large instance for the delta-vs-full packing comparison: the
/// Table I circuits top out around a dozen blocks, far too small to show the
/// asymptotic win of incremental evaluation, so this builds a `blocks`-block
/// instance directly (deterministic areas, seeded random 2-5 pin nets).
floorplan::Instance synthetic_instance(int blocks, std::uint64_t seed) {
  floorplan::Instance inst;
  inst.name = "synthetic" + std::to_string(blocks);
  std::mt19937_64 rng(seed);
  for (int b = 0; b < blocks; ++b) {
    floorplan::Block blk;
    blk.name = "b" + std::to_string(b);
    blk.area_um2 = 20.0 + 3.0 * static_cast<double>(b % 17);
    blk.shapes = floorplan::candidate_shapes(blk.area_um2,
                                             structrec::StructureType::kUnknown);
    inst.blocks.push_back(std::move(blk));
  }
  std::uniform_int_distribution<int> pins(2, 5);
  std::uniform_int_distribution<int> pick(0, blocks - 1);
  for (int n = 0; n < 2 * blocks; ++n) {
    std::vector<int> net;
    const int k = pins(rng);
    while (static_cast<int>(net.size()) < k) {
      const int b = pick(rng);
      if (std::find(net.begin(), net.end(), b) == net.end()) net.push_back(b);
    }
    inst.nets.push_back(std::move(net));
  }
  const double side = geom::canvas_side(inst.total_block_area(), 11.0);
  inst.canvas_w = side;
  inst.canvas_h = side;
  double ref = 0.0;
  for (const auto& net : inst.nets) {
    double a = 0.0;
    for (int b : net) a += inst.blocks[static_cast<std::size_t>(b)].area_um2;
    ref += 2.0 * std::sqrt(a);
  }
  inst.hpwl_ref = std::max(1.0, ref);
  return inst;
}

}  // namespace

}  // namespace afp::bench

int main() {
  using namespace afp;
  using namespace afp::bench;

  // Equal total budget for every method: evaluations = kBudget exactly.
  //   SA:    1 initial + (kBudget - 1) moves
  //   SAxR:  R restarts of 1 + kBudget/R - 1 moves
  //   PT:    K replicas, K + K * iterations evaluations in total
  const int kBudget = scaled(2496);
  const int kRestarts = 4;

  // Everything below goes through the registry: the solver is a name plus
  // an option map, exactly as the pipeline/CLI/JobService consume it.
  const metaheur::Options pt_budget = {
      {"iterations", std::to_string(kBudget / metaheur::PTParams{}.replicas -
                                    1)}};  // tuned defaults otherwise
  const auto sa = metaheur::make_optimizer(
      "sa", {{"iterations", std::to_string(kBudget - 1)}});
  const auto sa_r = metaheur::make_optimizer(
      "sa", {{"iterations", std::to_string(kBudget / kRestarts - 1)}});
  const auto pt = metaheur::make_optimizer("pt", pt_budget);
  const auto ptb = metaheur::make_optimizer("pt-bstar", pt_budget);

  std::printf("search bench: %d threads, budget %d evaluations/method\n\n",
              num::num_threads(), kBudget);
  std::printf("%-10s %12s %12s %12s %12s   (mean best cost, %d seeds)\n",
              "circuit", "SA", "SAx4", "PT", "PT-B*", kSeeds);

  // methods x circuits -> stats; summary aggregates over all circuits.
  const std::vector<std::string> kMethodNames = {"SA", "SAx4", "PT", "PT-B*"};
  std::map<std::string, std::map<std::string, MethodStats>> table;
  std::map<std::string, MethodStats> overall;

  for (const auto& name : kCircuits) {
    const auto inst = instance_of(name);
    for (int s = 0; s < kSeeds; ++s) {
      const std::uint64_t seed = 400 + static_cast<std::uint64_t>(s);
      auto record = [&](const std::string& method,
                        const metaheur::BaselineResult& r) {
        auto& cell = table[name][method];
        cell.best_cost.push_back(metaheur::sp_cost(inst, r.rects));
        cell.runtime_s.push_back(r.runtime_s);
        cell.evaluations = r.evaluations;
        overall[method].best_cost.push_back(cell.best_cost.back());
      };
      {
        std::mt19937_64 rng(seed);
        record("SA", sa->run(inst, {}, rng));
      }
      record("SAx4", metaheur::run_multistart(
                         inst,
                         [&](int, std::mt19937_64& rng) {
                           return sa_r->run(inst, {}, rng);
                         },
                         {kRestarts, seed}));
      {
        std::mt19937_64 rng(seed);
        record("PT", pt->run(inst, {}, rng));
      }
      {
        std::mt19937_64 rng(seed);
        record("PT-B*", ptb->run(inst, {}, rng));
      }
    }
    std::printf("%-10s %12.4f %12.4f %12.4f %12.4f\n", name.c_str(),
                table[name]["SA"].mean_cost(), table[name]["SAx4"].mean_cost(),
                table[name]["PT"].mean_cost(),
                table[name]["PT-B*"].mean_cost());
  }

  // ---- JobService batch: determinism + parallel throughput ---------------
  // One SA job per circuit through the full pipeline (recognition, search,
  // routing, layout), scheduled by core::JobService.  Runs: serial
  // reference (1 thread), 4-thread pool, 4-thread repeat.  All three must
  // be bitwise identical; the speedup column of BENCH_search.json records
  // serial_s / batch_s.
  std::vector<core::JobSpec> jobs;
  for (const auto& name : kCircuits) {
    core::JobSpec spec;
    spec.name = name;
    spec.netlist = make_circuit(name);
    spec.config.optimizer = "sa";
    // 8x the table budget: a job must be long enough (tens of ms) that the
    // speedup measures scheduling, not parallel_for launch overhead.
    spec.config.options = {{"iterations", std::to_string(8 * kBudget)}};
    jobs.push_back(std::move(spec));
  }
  core::JobServiceOptions jopts;
  jopts.base_seed = 400;
  const int ambient_threads = num::num_threads();
  auto timed_batch = [&](int threads, double* seconds) {
    num::set_num_threads(threads);
    const auto t0 = std::chrono::steady_clock::now();
    auto reports = core::JobService::run_batch(jobs, jopts);
    *seconds = std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - t0)
                   .count();
    return reports;
  };
  double serial_s = 0.0, batch_s = 0.0, repeat_s = 0.0;
  const auto serial_reports = timed_batch(1, &serial_s);
  const auto batch_reports = timed_batch(4, &batch_s);
  const auto repeat_reports = timed_batch(4, &repeat_s);
  num::set_num_threads(0);
  bool deterministic = true;
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    for (const auto* other : {&batch_reports[j], &repeat_reports[j]}) {
      deterministic &= serial_reports[j].status == core::JobStatus::kDone &&
                       other->status == core::JobStatus::kDone &&
                       serial_reports[j].result.rects == other->result.rects &&
                       serial_reports[j].result.eval.reward ==
                           other->result.eval.reward;
    }
  }
  const double speedup = batch_s > 0.0 ? serial_s / batch_s : 0.0;
  std::printf("\nJobService batch (%zu jobs, full pipeline): serial %.2fs | "
              "4 threads %.2fs | speedup %.2fx (%d hw threads) | %s\n",
              jobs.size(), serial_s, batch_s, speedup, ambient_threads,
              deterministic ? "deterministic" : "NONDETERMINISTIC");
  if (!deterministic) {
    std::fprintf(stderr,
                 "FATAL: JobService batch results differ across thread "
                 "counts/repeats\n");
    return 1;
  }

  // ---- Incremental evaluation: delta vs full packing throughput ----------
  // One seeded SA run per encoding on a 120-block synthetic instance, timed
  // under AFP_EVAL=full (legacy O(n^2) repack + full HPWL rescan per move)
  // and AFP_EVAL=delta (metaheur/eval_cache).  The best floorplans must be
  // bitwise identical — the engine is a pure speedup — and the recorded
  // steps/s ratio is the headline number for the incremental engine.
  const int kDeltaBlocks = 250;
  const auto big = synthetic_instance(kDeltaBlocks, 2024);
  const int kDeltaIters = scaled(4000);
  const auto ambient_mode = metaheur::eval_mode();
  auto timed_run = [&](metaheur::EvalMode mode, const char* opt_name,
                       metaheur::BaselineResult* out) {
    metaheur::set_eval_mode(mode);
    const auto o = metaheur::make_optimizer(
        opt_name, {{"iterations", std::to_string(kDeltaIters)}});
    std::mt19937_64 rng(4242);
    *out = o->run(big, {}, rng);
    return static_cast<double>(out->evaluations) /
           std::max(1e-9, out->runtime_s);
  };
  struct DeltaRow {
    const char* method;
    double full_sps = 0.0;
    double delta_sps = 0.0;
    double speedup = 0.0;
    bool match = false;
  };
  std::vector<DeltaRow> delta_rows;
  bool delta_match = true;
  std::printf("\nincremental eval, %d-block synthetic, %d moves "
              "(steps/s, AFP_EVAL=full vs delta):\n",
              kDeltaBlocks, kDeltaIters);
  for (const char* m : {"sa", "sab"}) {
    DeltaRow row;
    row.method = m;
    metaheur::BaselineResult full, delta;
    row.full_sps = timed_run(metaheur::EvalMode::kFull, m, &full);
    row.delta_sps = timed_run(metaheur::EvalMode::kDelta, m, &delta);
    row.speedup = row.delta_sps / std::max(1e-9, row.full_sps);
    row.match = full.rects == delta.rects &&
                full.eval.reward == delta.eval.reward;
    delta_match &= row.match;
    std::printf("  %-4s %10.0f -> %10.0f   %5.2fx  %s\n", m, row.full_sps,
                row.delta_sps, row.speedup,
                row.match ? "identical result" : "RESULT MISMATCH");
    delta_rows.push_back(row);
  }
  metaheur::set_eval_mode(ambient_mode);
  if (!delta_match) {
    std::fprintf(stderr,
                 "FATAL: delta evaluation changed a best floorplan\n");
    return 1;
  }

  const double sa_mean = overall["SA"].mean_cost();
  const double pt_mean = overall["PT"].mean_cost();
  std::printf("\noverall mean best cost: SA %.4f | SAx4 %.4f | PT %.4f | "
              "PT-B* %.4f\n",
              sa_mean, overall["SAx4"].mean_cost(), pt_mean,
              overall["PT-B*"].mean_cost());
  std::printf("PT %s single-chain SA at equal move budget (%.4f vs %.4f)\n",
              pt_mean < sa_mean ? "beats" : "DOES NOT beat", pt_mean, sa_mean);

  std::ofstream os("BENCH_search.json");
  os << "{\n  \"bench\": \"search\",\n  \"threads\": " << num::num_threads()
     << ",\n  \"budget_evaluations\": " << kBudget
     << ",\n  \"seeds\": " << kSeeds << ",\n  \"circuits\": [\n";
  for (std::size_t c = 0; c < kCircuits.size(); ++c) {
    os << "    {\"circuit\": \"" << kCircuits[c] << "\"";
    for (const auto& m : kMethodNames) {
      const auto& cell = table[kCircuits[c]][m];
      os << ", \"" << m << "\": {\"mean_cost\": " << cell.mean_cost()
         << ", \"mean_runtime_s\": " << cell.mean_runtime()
         << ", \"evaluations\": " << cell.evaluations << "}";
    }
    os << "}" << (c + 1 < kCircuits.size() ? "," : "") << "\n";
  }
  os << "  ],\n  \"summary\": {";
  for (std::size_t i = 0; i < kMethodNames.size(); ++i) {
    os << "\"" << kMethodNames[i]
       << "_mean_cost\": " << overall[kMethodNames[i]].mean_cost()
       << (i + 1 < kMethodNames.size() ? ", " : "");
  }
  os << ", \"pt_beats_sa\": " << (pt_mean < sa_mean ? "true" : "false")
     << "},\n  \"job_service\": {\"jobs\": " << jobs.size()
     << ", \"hw_threads\": " << ambient_threads
     << ", \"serial_s\": " << serial_s << ", \"batch_threads\": 4"
     << ", \"batch_s\": " << batch_s << ", \"repeat_s\": " << repeat_s
     << ", \"speedup\": " << speedup
     << ", \"deterministic\": " << (deterministic ? "true" : "false")
     << "},\n  \"delta_eval\": {\"blocks\": " << kDeltaBlocks
     << ", \"moves\": " << kDeltaIters << ", \"methods\": [";
  for (std::size_t i = 0; i < delta_rows.size(); ++i) {
    const auto& r = delta_rows[i];
    os << "{\"method\": \"" << r.method
       << "\", \"full_steps_per_s\": " << r.full_sps
       << ", \"delta_steps_per_s\": " << r.delta_sps
       << ", \"speedup\": " << r.speedup
       << ", \"identical_result\": " << (r.match ? "true" : "false") << "}"
       << (i + 1 < delta_rows.size() ? ", " : "");
  }
  os << "]}\n}\n";
  std::printf("wrote BENCH_search.json\n");
  return 0;
}
