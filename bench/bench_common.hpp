// Shared helpers for the experiment benches.
//
// Every bench binary regenerates one table or figure of the paper at a
// CPU-budget scale: the workload structure (circuits, methods, schedule)
// matches the paper; episode counts and metaheuristic budgets are scaled
// down.  Statistics follow the paper's reporting: interquartile mean (IQM)
// +/- standard deviation over repeated seeds.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <numeric>
#include <string>
#include <vector>

#include "core/pipeline.hpp"
#include "core/training.hpp"
#include "netlist/library.hpp"

namespace afp::bench {

/// Interquartile mean: mean of samples between the 25th and 75th
/// percentiles (inclusive), the paper's headline statistic.
inline double iqm(std::vector<double> v) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const std::size_t n = v.size();
  const std::size_t lo = n / 4;
  const std::size_t hi = n - n / 4;
  double sum = 0.0;
  std::size_t cnt = 0;
  for (std::size_t i = lo; i < hi; ++i) {
    sum += v[i];
    ++cnt;
  }
  return cnt ? sum / static_cast<double>(cnt) : v[n / 2];
}

inline double stddev(const std::vector<double>& v) {
  if (v.size() < 2) return 0.0;
  const double mean =
      std::accumulate(v.begin(), v.end(), 0.0) / static_cast<double>(v.size());
  double sq = 0.0;
  for (double x : v) sq += (x - mean) * (x - mean);
  return std::sqrt(sq / static_cast<double>(v.size()));
}

/// "12.34±0.56" formatting used in the printed tables.
inline std::string pm(double mean, double sd, int prec = 2) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f±%.*f", prec, mean, prec, sd);
  return buf;
}

/// Accumulates per-seed metric samples for one (circuit, method) cell.
struct MetricSamples {
  std::vector<double> runtime_s;
  std::vector<double> dead_space_pct;
  std::vector<double> hpwl;
  std::vector<double> reward;

  void add(double rt, const floorplan::Evaluation& ev) {
    runtime_s.push_back(rt);
    dead_space_pct.push_back(ev.dead_space * 100.0);
    hpwl.push_back(ev.hpwl);
    reward.push_back(ev.reward);
  }
};

/// Returns the netlist factory for a registry circuit name.
inline netlist::Netlist make_circuit(const std::string& name) {
  for (const auto& e : netlist::circuit_registry()) {
    if (e.name == name) return e.make();
  }
  throw std::invalid_argument("unknown circuit " + name);
}

/// Training preset for benches: bigger than the unit-test preset, still
/// CPU-scale.  Structure matches Section V-A (HCL over the five training
/// circuits with p_circuit = 0.5, p_constraint = 0.3).
inline core::TrainOptions bench_train_options(unsigned seed,
                                              int episodes_per_circuit) {
  core::TrainOptions opt = core::TrainOptions::fast(seed);
  opt.hcl.circuits = {"ota_small", "bias_small", "ota1", "ota2", "bias1"};
  opt.hcl.episodes_per_circuit = episodes_per_circuit;
  opt.ppo.n_envs = 4;
  opt.ppo.n_steps = 32;
  opt.ppo.minibatch = 64;
  opt.ppo.lr = 1e-3f;  // CPU-scale nets converge faster than SB3's default
  opt.rgcn_samples_per_circuit = 2;
  opt.rgcn_epochs = 3;
  return opt;
}

/// Global budget multiplier for the benches, settable via the
/// AFP_BENCH_SCALE environment variable (default 1.0).  Values < 1 shrink
/// every episode / iteration budget proportionally for smoke runs; > 1
/// approaches paper scale.
inline double bench_scale() {
  if (const char* s = std::getenv("AFP_BENCH_SCALE")) {
    const double v = std::atof(s);
    if (v > 0.0) return v;
  }
  return 1.0;
}

inline int scaled(int base) {
  return std::max(1, static_cast<int>(base * bench_scale()));
}

}  // namespace afp::bench
