// Performance-core benchmark: throughput of the blocked GEMM, the im2col
// convolutions, the CSR SpMM / R-GCN encoder, and an end-to-end PPO
// training step — each measured against the original scalar seed kernels
// (AFP_NAIVE_KERNELS path) so the speedup trajectory is tracked across
// PRs.  Results are printed and written to BENCH_perf_core.json.
//
// Knobs: AFP_BENCH_SCALE scales iteration counts (0.05 for CI smoke runs),
// AFP_NUM_THREADS sizes the pool, AFP_KERNEL_TIER pins the micro-kernel
// tier (the *_tier rows compare avx2 vs scalar explicitly, single-thread).
#include <chrono>
#include <cstdio>
#include <fstream>
#include <random>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "nn/rgcn_layer.hpp"
#include "numeric/ops.hpp"
#include "numeric/parallel.hpp"
#include "numeric/simd.hpp"
#include "numeric/sparse.hpp"
#include "rgcn/reward_model.hpp"
#include "rl/agent.hpp"
#include "rl/ppo.hpp"
#include "rl/task.hpp"
#include "structrec/structrec.hpp"

namespace afp::bench {
namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// Median wall time of `iters` runs of fn (seconds).
template <class Fn>
double time_median(int iters, Fn&& fn) {
  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(iters));
  for (int i = 0; i < iters; ++i) {
    const auto t0 = Clock::now();
    fn();
    samples.push_back(seconds_since(t0));
  }
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

struct Row {
  std::string name;
  double fast_s = 0.0;
  double naive_s = 0.0;
  double speedup() const { return fast_s > 0.0 ? naive_s / fast_s : 0.0; }
};

/// Times fn under both kernel paths.
template <class Fn>
Row compare(const std::string& name, int iters, Fn&& fn) {
  Row row;
  row.name = name;
  num::set_naive_kernels(false);
  row.fast_s = time_median(iters, fn);
  num::set_naive_kernels(true);
  row.naive_s = time_median(std::max(1, iters / 2), fn);
  num::set_naive_kernels(false);
  return row;
}

Row bench_gemm(std::mt19937_64& rng) {
  const int n = 512;
  const auto a = num::Tensor::randn({n, n}, rng);
  const auto b = num::Tensor::randn({n, n}, rng);
  num::NoGradGuard ng;
  Row row = compare("gemm_512x512x512", scaled(10),
                    [&] { (void)num::matmul(a, b); });
  const double flops = 2.0 * n * n * n;
  std::printf("%-28s fast %8.2f ms (%6.2f GFLOP/s)  naive %8.2f ms  speedup %5.2fx\n",
              row.name.c_str(), row.fast_s * 1e3, flops / row.fast_s / 1e9,
              row.naive_s * 1e3, row.speedup());
  return row;
}

Row bench_gemm_train(std::mt19937_64& rng) {
  const int n = 256;
  const auto a = num::Tensor::randn({n, n}, rng, 1.0f, true);
  const auto b = num::Tensor::randn({n, n}, rng, 1.0f, true);
  Row row = compare("gemm_fwd_bwd_256", scaled(10), [&] {
    auto ac = a;
    auto bc = b;
    ac.zero_grad();
    bc.zero_grad();
    num::sum_all(num::matmul(ac, bc)).backward();
  });
  std::printf("%-28s fast %8.2f ms  naive %8.2f ms  speedup %5.2fx\n",
              row.name.c_str(), row.fast_s * 1e3, row.naive_s * 1e3,
              row.speedup());
  return row;
}

/// Times fn single-threaded under the avx2 tier ("fast") vs the scalar tier
/// ("naive" column), restoring the ambient tier (which may be pinned via
/// AFP_KERNEL_TIER) and pool afterwards.
template <class Fn>
Row compare_tiers(const std::string& name, int iters, Fn&& fn) {
  Row row;
  const num::KernelTier entry = num::kernel_tier();
  num::set_num_threads(1);
  num::set_kernel_tier(num::KernelTier::kAvx2);
  // On hardware without AVX2 the request falls back to scalar; label the
  // row with the tier that actually ran so the JSON can't masquerade a
  // scalar-vs-scalar measurement as an AVX2 speedup.
  const char* fast_tier = num::kernel_tier_name(num::kernel_tier());
  row.name = name + "_" + fast_tier + "_vs_scalar";
  row.fast_s = time_median(iters, fn);
  num::set_kernel_tier(num::KernelTier::kScalar);
  row.naive_s = time_median(iters, fn);
  num::set_kernel_tier(entry);
  num::set_num_threads(0);
  std::printf("%-28s %s %6.2f ms  scalar %8.2f ms  speedup %5.2fx (1 thread)\n",
              row.name.c_str(), fast_tier, row.fast_s * 1e3, row.naive_s * 1e3,
              row.speedup());
  return row;
}

Row bench_gemm_tier(std::mt19937_64& rng) {
  // PR 2 acceptance metric: single-core GEMM fwd+bwd, explicit AVX2 tier
  // vs PR 1's scalar-blocked kernels.
  const int n = 256;
  const auto a = num::Tensor::randn({n, n}, rng, 1.0f, true);
  const auto b = num::Tensor::randn({n, n}, rng, 1.0f, true);
  return compare_tiers("gemm_fwd_bwd_256", scaled(10), [&] {
    auto ac = a;
    auto bc = b;
    ac.zero_grad();
    bc.zero_grad();
    num::sum_all(num::matmul(ac, bc)).backward();
  });
}

Row bench_softmax_tier(std::mt19937_64& rng) {
  const auto x = num::Tensor::randn({4096, 65}, rng, 2.0f, true);
  return compare_tiers("softmax_ew_fwd_bwd", scaled(20), [&] {
    auto xc = x;
    xc.zero_grad();
    num::sum_all(num::square(num::softmax_rows(num::relu(xc)))).backward();
  });
}

Row bench_linear_relu_fused(std::mt19937_64& rng) {
  // Fused linear_relu vs relu(linear(...)) under the ambient tier, at a
  // skinny-K shape (rollout batches through a narrow head) where the saved
  // elementwise passes and intermediate tensors are visible next to the
  // GEMM.
  const auto x = num::Tensor::randn({4096, 24}, rng, 1.0f, true);
  const auto w = num::Tensor::randn({24, 96}, rng, 0.5f, true);
  const auto b = num::Tensor::randn({96}, rng, 0.5f, true);
  auto step = [&](bool fused) {
    auto wc = w;
    wc.zero_grad();
    auto h = fused ? num::linear_relu(x, wc, b)
                   : num::relu(num::linear(x, wc, b));
    num::sum_all(num::square(h)).backward();
  };
  Row row;
  row.name = "linear_relu_fused_vs_split";
  row.fast_s = time_median(scaled(20), [&] { step(true); });
  row.naive_s = time_median(scaled(20), [&] { step(false); });
  std::printf("%-28s fused %7.2f ms  split %8.2f ms  speedup %5.2fx\n",
              row.name.c_str(), row.fast_s * 1e3, row.naive_s * 1e3,
              row.speedup());
  return row;
}

Row bench_conv_policy(std::mt19937_64& rng) {
  // The paper policy trunk's first conv at rollout batch size: 16 envs,
  // 6 mask channels, 32x32 grid -> 16 channels, stride 1.
  const auto x = num::Tensor::randn({16, 6, 32, 32}, rng, 1.0f, true);
  const auto w = num::Tensor::randn({16, 6, 3, 3}, rng, 0.3f, true);
  const auto b = num::Tensor::randn({16}, rng, 0.3f, true);
  Row row = compare("conv2d_policy_fwd_bwd", scaled(20), [&] {
    auto wc = w;
    wc.zero_grad();
    num::sum_all(num::square(num::conv2d(x, wc, b, 1, 1))).backward();
  });
  std::printf("%-28s fast %8.2f ms  naive %8.2f ms  speedup %5.2fx\n",
              row.name.c_str(), row.fast_s * 1e3, row.naive_s * 1e3,
              row.speedup());
  return row;
}

Row bench_deconv_policy(std::mt19937_64& rng) {
  // Last deconv of the paper policy head: 16ch 16x16 -> 8ch 32x32.
  const auto x = num::Tensor::randn({16, 16, 16, 16}, rng, 1.0f, true);
  const auto w = num::Tensor::randn({16, 8, 4, 4}, rng, 0.3f, true);
  const auto b = num::Tensor::randn({8}, rng, 0.3f, true);
  Row row = compare("deconv_policy_fwd_bwd", scaled(20), [&] {
    auto wc = w;
    wc.zero_grad();
    num::sum_all(num::square(num::conv_transpose2d(x, wc, b, 2, 1))).backward();
  });
  std::printf("%-28s fast %8.2f ms  naive %8.2f ms  speedup %5.2fx\n",
              row.name.c_str(), row.fast_s * 1e3, row.naive_s * 1e3,
              row.speedup());
  return row;
}

Row bench_rgcn_forward(std::mt19937_64& rng) {
  // R-GCN layer at N=256 with E ~ 4N edges per relation: CSR SpMM path
  // vs the dense [N, N] matmul path of the seed.
  const int n = 256, relations = 5;
  std::vector<std::vector<std::pair<int, int>>> edges(relations);
  std::uniform_int_distribution<int> pick(0, n - 1);
  for (auto& rel : edges) {
    for (int e = 0; e < 4 * n; ++e) rel.emplace_back(pick(rng), pick(rng));
  }
  nn::RGCNLayer layer(rgcn::kEmbeddingDim, rgcn::kEmbeddingDim, relations,
                      nn::Activation::kRelu, rng);
  const auto h = num::Tensor::randn({n, rgcn::kEmbeddingDim}, rng);
  const auto adj_csr = nn::build_adjacency_csr(n, relations, edges);
  const auto adj_dense = nn::build_adjacency(n, relations, edges);
  num::NoGradGuard ng;
  Row row;
  row.name = "rgcn_forward_n256";
  row.fast_s = time_median(scaled(20), [&] { (void)layer.forward(h, adj_csr); });
  num::set_naive_kernels(true);
  row.naive_s =
      time_median(scaled(10), [&] { (void)layer.forward(h, adj_dense); });
  num::set_naive_kernels(false);
  std::printf("%-28s sparse %6.2f ms  dense-naive %8.2f ms  speedup %5.2fx\n",
              row.name.c_str(), row.fast_s * 1e3, row.naive_s * 1e3,
              row.speedup());
  return row;
}

Row bench_spmm(std::mt19937_64& rng) {
  const int n = 1024, d = 32;
  std::uniform_real_distribution<float> unif(0.0f, 1.0f);
  std::uniform_int_distribution<int> pick(0, n - 1);
  std::vector<std::tuple<int, int, float>> coo;
  for (int e = 0; e < 8 * n; ++e)
    coo.emplace_back(pick(rng), pick(rng), unif(rng));
  const auto a = num::SparseCSR::from_coo(n, n, coo);
  const auto ad = a.to_dense();
  const auto h = num::Tensor::randn({n, d}, rng);
  num::NoGradGuard ng;
  Row row;
  row.name = "spmm_n1024_nnz8k";
  row.fast_s = time_median(scaled(50), [&] { (void)num::spmm(a, h); });
  num::set_naive_kernels(true);
  row.naive_s = time_median(scaled(5), [&] { (void)num::matmul(ad, h); });
  num::set_naive_kernels(false);
  std::printf("%-28s sparse %6.3f ms  dense-naive %8.2f ms  speedup %5.2fx\n",
              row.name.c_str(), row.fast_s * 1e3, row.naive_s * 1e3,
              row.speedup());
  return row;
}

Row bench_training_step() {
  // End-to-end PPO iteration (rollout + GAE + minibatch updates) on the
  // fast preset: the acceptance metric for this PR.
  std::mt19937_64 rng(7);
  rgcn::RewardModel encoder(rng);
  graphir::CircuitGraph graph;
  for (const auto& e : netlist::circuit_registry()) {
    if (e.name == "ota_small") {
      const auto nl = e.make();
      graph = graphir::build_graph(nl, structrec::recognize(nl));
    }
  }
  rl::PPOConfig cfg;
  cfg.n_envs = 4;
  cfg.n_steps = 16;
  cfg.epochs = 2;
  cfg.minibatch = 32;

  // Construction (net init, env resets) happens outside the timer; only
  // iterate() — rollout, GAE, minibatch updates — is measured.
  auto timed_iterations = [&](int iters) {
    std::mt19937_64 seed_rng(11);
    rl::ActorCritic net(rl::PolicyConfig::fast(), seed_rng);
    rl::PPOTrainer trainer(net, {rl::make_task(encoder, graph)}, cfg);
    std::mt19937_64 it_rng(13);
    (void)trainer.iterate(it_rng);  // warm-up: populates the buffer pool
    return time_median(iters, [&] { (void)trainer.iterate(it_rng); });
  };
  Row row;
  row.name = "ppo_training_step";
  num::set_naive_kernels(false);
  row.fast_s = timed_iterations(std::max(1, scaled(4)));
  num::set_naive_kernels(true);
  row.naive_s = timed_iterations(std::max(1, scaled(2)));
  num::set_naive_kernels(false);
  std::printf("%-28s fast %8.2f ms  naive %8.2f ms  speedup %5.2fx\n",
              row.name.c_str(), row.fast_s * 1e3, row.naive_s * 1e3,
              row.speedup());
  return row;
}

void write_json(const std::vector<Row>& rows) {
  std::ofstream os("BENCH_perf_core.json");
  os << "{\n  \"bench\": \"perf_core\",\n  \"threads\": "
     << num::num_threads() << ",\n  \"scale\": " << bench_scale()
     << ",\n  \"results\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    os << "    {\"name\": \"" << r.name << "\", \"fast_ms\": " << r.fast_s * 1e3
       << ", \"naive_ms\": " << r.naive_s * 1e3
       << ", \"speedup\": " << r.speedup() << "}"
       << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
}

}  // namespace
}  // namespace afp::bench

int main() {
  using namespace afp::bench;
  std::printf("perf_core bench: %d threads, scale %.2f\n",
              afp::num::num_threads(), bench_scale());
  std::mt19937_64 rng(42);
  std::vector<Row> rows;
  rows.push_back(bench_gemm(rng));
  rows.push_back(bench_gemm_train(rng));
  rows.push_back(bench_gemm_tier(rng));
  rows.push_back(bench_softmax_tier(rng));
  rows.push_back(bench_linear_relu_fused(rng));
  rows.push_back(bench_conv_policy(rng));
  rows.push_back(bench_deconv_policy(rng));
  rows.push_back(bench_rgcn_forward(rng));
  rows.push_back(bench_spmm(rng));
  rows.push_back(bench_training_step());
  write_json(rows);
  std::printf("wrote BENCH_perf_core.json\n");
  return 0;
}
