// Ablation A2 — hybrid curriculum learning vs plain sequential curriculum
// (Section IV-D5).
//
// HCL interleaves previously seen circuits (p_circuit = 0.5) and random
// constraints (p_constraint = 0.3) in the second half of each stage;
// the ablation trains the same agent with those probabilities zeroed
// (pure sequential exposure) and compares (a) final reward on every
// training circuit — sequential training forgets early circuits — and
// (b) zero-shot reward on an unseen circuit.  Shape: HCL retains earlier
// circuits better and transfers at least as well.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "rl/agent.hpp"

namespace {

using namespace afp;

double eval_on(const core::TrainedAgent& agent, const std::string& circuit,
               unsigned seed) {
  std::mt19937_64 rng(seed);
  auto nl = bench::make_circuit(circuit);
  auto g = graphir::build_graph(nl, structrec::recognize(nl));
  auto probe = floorplan::make_instance(g);
  const double ref = metaheur::estimate_hpwl_min(probe, rng, 1000);
  const auto task = rl::make_task(*agent.encoder, std::move(g), ref);
  const auto ep = rl::best_of_episodes(*agent.policy, task, 8, rng);
  return ep.rects.empty() ? -50.0 : ep.eval.reward;
}

void run_ablation() {
  std::printf("=== Ablation A2: HCL vs sequential curriculum ===\n");
  const int episodes = bench::scaled(64);

  core::TrainOptions hcl = bench::bench_train_options(21, episodes);
  core::TrainOptions seq = bench::bench_train_options(21, episodes);
  seq.hcl.p_circuit = 0.0;
  seq.hcl.p_constraint = 0.0;

  std::printf("training HCL agent...\n");
  const auto agent_hcl = core::train_agent(hcl);
  std::printf("training sequential agent...\n");
  const auto agent_seq = core::train_agent(seq);

  const std::vector<std::string> eval_circuits = {
      "ota_small", "bias_small", "ota1", "ota2", "bias1", "rs_latch"};
  std::printf("\n%-12s %14s %14s\n", "circuit", "HCL", "sequential");
  double hcl_early = 0.0, seq_early = 0.0;
  for (const auto& c : eval_circuits) {
    const double rh = eval_on(agent_hcl, c, 5);
    const double rs = eval_on(agent_seq, c, 5);
    std::printf("%-12s %14.2f %14.2f%s\n", c.c_str(), rh, rs,
                c == "rs_latch" ? "   [unseen]" : "");
    if (c == "ota_small" || c == "bias_small") {
      hcl_early += rh;
      seq_early += rs;
    }
  }
  std::printf("\nearly-circuit retention (sum over first two stages): "
              "HCL %.2f vs sequential %.2f\n",
              hcl_early, seq_early);
  std::printf("paper shape: HCL recovers reward after each circuit switch "
              "and retains early circuits (Fig. 6 discussion).\n\n");
}

void BM_SchedulerNextTask(benchmark::State& state) {
  std::mt19937_64 rng(1);
  rgcn::RewardModel encoder(rng);
  rl::HclConfig cfg;
  cfg.episodes_per_circuit = 1 << 20;  // stay inside stage 0
  rl::HclScheduler sched(cfg, encoder, rng);
  for (auto _ : state) {
    auto t = sched.next_task(rng);
    benchmark::DoNotOptimize(t.instance.num_blocks());
  }
}
BENCHMARK(BM_SchedulerNextTask)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  run_ablation();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
