// Ablation A1 — reward-related observation masks (Section IV-D2).
//
// The paper extends MaskPlace's wire mask with a dead-space mask fds.
// This bench trains the same agent on OTA-1 with (a) both masks, (b) wire
// mask only, (c) dead-space mask only, (d) neither, and compares the
// final evaluation reward.  Shape to expect: both-masks >= single-mask >=
// no-mask in achieved reward (the masks carry the dense reward signal).
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "rl/agent.hpp"

namespace {

using namespace afp;

struct Variant {
  std::string label;
  bool wire;
  bool dead_space;
  bool congestion = false;  ///< Section VI future-work extension
};

void run_ablation() {
  std::printf("=== Ablation A1: observation mask channels (OTA-1) ===\n");
  const std::vector<Variant> variants = {
      {"fw + fds (paper)", true, true},
      {"fw only (MaskPlace-style)", true, false},
      {"fds only", false, true},
      {"neither", false, false},
      {"fw + fds + fcong (Sec. VI ext.)", true, true, true},
  };
  const long episodes = bench::scaled(384);
  std::printf("%-34s %12s %14s %12s\n", "variant", "reward",
              "dead space(%)", "HPWL(um)");
  for (const auto& v : variants) {
    std::vector<double> rewards, ds, hpwl;
    for (unsigned seed = 1; seed <= 3; ++seed) {
      std::mt19937_64 rng(seed);
      rgcn::RewardModel encoder(rng);
      rl::PolicyConfig pc = rl::PolicyConfig::fast();
      if (v.congestion) pc.in_channels = 7;
      rl::ActorCritic policy(pc, rng);
      auto nl = bench::make_circuit("ota1");
      auto g = graphir::build_graph(nl, structrec::recognize(nl));
      auto probe = floorplan::make_instance(g);
      const double ref = metaheur::estimate_hpwl_min(probe, rng, 1200);
      const auto task = rl::make_task(encoder, std::move(g), ref);

      env::EnvConfig ecfg;
      ecfg.use_wire_mask = v.wire;
      ecfg.use_dead_space_mask = v.dead_space;
      ecfg.use_congestion_mask = v.congestion;
      rl::PPOConfig ppo;
      ppo.n_envs = 4;
      ppo.n_steps = 32;
      ppo.minibatch = 64;
      ppo.lr = 1e-3f;
      rl::fine_tune(policy, task, episodes, rng, ppo, ecfg);
      const auto ep = rl::best_of_episodes(policy, task, 8, rng, ecfg);
      if (!ep.rects.empty()) {
        rewards.push_back(ep.eval.reward);
        ds.push_back(ep.eval.dead_space * 100.0);
        hpwl.push_back(ep.eval.hpwl);
      }
    }
    std::printf("%-34s %12s %14s %12s\n", v.label.c_str(),
                bench::pm(bench::iqm(rewards), bench::stddev(rewards)).c_str(),
                bench::pm(bench::iqm(ds), bench::stddev(ds)).c_str(),
                bench::pm(bench::iqm(hpwl), bench::stddev(hpwl)).c_str());
  }
  std::printf("\n");
}

void BM_EnvStepWithMasks(benchmark::State& state) {
  auto nl = bench::make_circuit("ota2");
  auto g = graphir::build_graph(nl, structrec::recognize(nl));
  auto inst = floorplan::make_instance(g);
  env::EnvConfig cfg;
  cfg.use_wire_mask = state.range(0) != 0;
  cfg.use_dead_space_mask = state.range(0) != 0;
  env::FloorplanEnv environment(inst, cfg);
  for (auto _ : state) {
    auto obs = environment.reset();
    while (!obs.done) {
      int a = -1;
      for (std::size_t i = 0; i < obs.action_mask.size(); ++i) {
        if (obs.action_mask[i] > 0.5f) {
          a = static_cast<int>(i);
          break;
        }
      }
      obs = environment.step(a).obs;
    }
    benchmark::DoNotOptimize(obs.steps_done);
  }
}
BENCHMARK(BM_EnvStepWithMasks)->Arg(0)->Arg(1)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  run_ablation();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
