// Figure 5 — dead-space and wire mask visualizations.
//
// Reproduces the paper's mask illustration on a mid-episode OTA-2 state:
// several blocks are placed, then the fds and fw masks of the next block
// are rendered as ASCII heat maps (and dumped as PGM images next to the
// binary).  Shape to compare: darker (lower-increase) regions hug the
// already-placed blocks; occupied cells saturate at the maximum value.
#include <benchmark/benchmark.h>

#include <fstream>

#include "bench_common.hpp"
#include "floorplan/grid.hpp"

namespace {

using namespace afp;

void dump_pgm(const std::string& path, const std::vector<float>& mask,
              int n) {
  std::ofstream os(path);
  os << "P2\n" << n << ' ' << n << "\n255\n";
  // Row 0 is the bottom of the floorplan; PGM rows go top-down.
  for (int r = n - 1; r >= 0; --r) {
    for (int c = 0; c < n; ++c) {
      os << static_cast<int>(mask[static_cast<std::size_t>(r) * n + c] * 255.0f)
         << (c + 1 == n ? '\n' : ' ');
    }
  }
}

void print_ascii(const std::vector<float>& mask, int n) {
  static const char* shades = " .:-=+*#%@";
  for (int r = n - 1; r >= 0; --r) {
    for (int c = 0; c < n; ++c) {
      const float v = mask[static_cast<std::size_t>(r) * n + c];
      const int idx = std::min(9, static_cast<int>(v * 10.0f));
      std::putchar(shades[idx]);
    }
    std::putchar('\n');
  }
}

void run_fig5() {
  std::printf("=== Figure 5: dead-space and wire masks (OTA-2) ===\n");
  auto nl = bench::make_circuit("ota2");
  auto g = graphir::build_graph(nl, structrec::recognize(nl));
  auto inst = floorplan::make_instance(g);
  floorplan::GridFloorplan fp(inst, 32);

  // Place the first half of the blocks greedily by dead-space mask.
  const auto order = inst.placement_order();
  const int half = static_cast<int>(order.size()) / 2;
  for (int k = 0; k < half; ++k) {
    const int b = order[static_cast<std::size_t>(k)];
    const auto fds = fp.dead_space_mask(b, 1);
    const auto fpmask = fp.position_mask(b, 1);
    int best = -1;
    float best_v = 2.0f;
    for (std::size_t i = 0; i < fds.size(); ++i) {
      if (fpmask[i] > 0.5f && fds[i] < best_v) {
        best_v = fds[i];
        best = static_cast<int>(i);
      }
    }
    fp.place(b, 1, best % 32, best / 32);
  }
  const int next = order[static_cast<std::size_t>(half)];
  std::printf("placed %d of %zu blocks; masks for next block '%s'\n\n", half,
              order.size(),
              inst.blocks[static_cast<std::size_t>(next)].name.c_str());

  const auto fds = fp.dead_space_mask(next, 1);
  const auto fw = fp.wire_mask(next, 1);
  std::printf("dead-space mask fds (dark = low increase = preferred):\n");
  print_ascii(fds, 32);
  std::printf("\nwire mask fw:\n");
  print_ascii(fw, 32);
  dump_pgm("fig5_dead_space_mask.pgm", fds, 32);
  dump_pgm("fig5_wire_mask.pgm", fw, 32);
  std::printf("\nwrote fig5_dead_space_mask.pgm and fig5_wire_mask.pgm\n");

  // Quantitative shape check: the best-valued free cell must abut the
  // placed region (compactness bias), for both masks.
  auto min_cell = [&](const std::vector<float>& m) {
    int best = 0;
    for (std::size_t i = 1; i < m.size(); ++i) {
      if (m[i] < m[static_cast<std::size_t>(best)]) best = static_cast<int>(i);
    }
    return best;
  };
  std::printf("fds argmin cell: (%d, %d); fw argmin cell: (%d, %d)\n\n",
              min_cell(fds) % 32, min_cell(fds) / 32, min_cell(fw) % 32,
              min_cell(fw) / 32);
}

void BM_DeadSpaceMask(benchmark::State& state) {
  auto nl = bench::make_circuit("bias2");
  auto g = graphir::build_graph(nl, structrec::recognize(nl));
  auto inst = floorplan::make_instance(g);
  floorplan::GridFloorplan fp(inst, 32);
  const auto order = inst.placement_order();
  for (int k = 0; k < 10; ++k) {
    const int b = order[static_cast<std::size_t>(k)];
    const auto m = fp.position_mask(b, 1);
    for (std::size_t i = 0; i < m.size(); ++i) {
      if (m[i] > 0.5f) {
        fp.place(b, 1, static_cast<int>(i) % 32, static_cast<int>(i) / 32);
        break;
      }
    }
  }
  const int next = order[10];
  for (auto _ : state) {
    auto m = fp.dead_space_mask(next, 1);
    benchmark::DoNotOptimize(m.data());
  }
}
BENCHMARK(BM_DeadSpaceMask)->Unit(benchmark::kMicrosecond);

void BM_WireMask(benchmark::State& state) {
  auto nl = bench::make_circuit("bias2");
  auto g = graphir::build_graph(nl, structrec::recognize(nl));
  auto inst = floorplan::make_instance(g);
  floorplan::GridFloorplan fp(inst, 32);
  const auto order = inst.placement_order();
  for (int k = 0; k < 10; ++k) {
    const int b = order[static_cast<std::size_t>(k)];
    const auto m = fp.position_mask(b, 1);
    for (std::size_t i = 0; i < m.size(); ++i) {
      if (m[i] > 0.5f) {
        fp.place(b, 1, static_cast<int>(i) % 32, static_cast<int>(i) / 32);
        break;
      }
    }
  }
  const int next = order[10];
  for (auto _ : state) {
    auto m = fp.wire_mask(next, 1);
    benchmark::DoNotOptimize(m.data());
  }
}
BENCHMARK(BM_WireMask)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  run_fig5();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
