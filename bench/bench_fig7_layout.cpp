// Figure 7 — pipeline stage visualization for the 17-block Driver:
// (a) RL placement + OARSMT global routing, (b) channel definition,
// (c) generated layout.  Each stage is dumped as an SVG next to the
// binary, and stage metrics are printed (the paper's panels (d)/(e) are
// the manually refined and fully manual layouts; the manual reference is
// synthesized as in bench_table2).
#include <benchmark/benchmark.h>

#include <fstream>

#include "bench_common.hpp"
#include "rl/agent.hpp"

namespace {

using namespace afp;

/// SVG of the placement plus global-routing trees (panel a).
void write_placement_svg(const std::string& path,
                         const floorplan::Instance& inst,
                         const std::vector<geom::Rect>& rects,
                         const route::GlobalRoute& gr) {
  const geom::Rect bb = geom::bounding_box(rects).inflated(2.0);
  const double s = 20.0;
  std::ofstream os(path);
  os << "<svg xmlns='http://www.w3.org/2000/svg' width='" << bb.w * s
     << "' height='" << bb.h * s << "'>\n";
  auto Y = [&](double y) { return (bb.top() - y) * s; };
  auto X = [&](double x) { return (x - bb.x) * s; };
  for (std::size_t i = 0; i < rects.size(); ++i) {
    const auto& r = rects[i];
    os << "<rect x='" << X(r.x) << "' y='" << Y(r.top()) << "' width='"
       << r.w * s << "' height='" << r.h * s
       << "' fill='#b8c4ce' stroke='black'/>\n";
    os << "<text x='" << X(r.center().x) << "' y='" << Y(r.center().y)
       << "' font-size='8' text-anchor='middle'>"
       << inst.blocks[i].name.substr(0, 8) << "</text>\n";
  }
  for (const auto& tree : gr.trees) {
    for (const auto& [a, b] : tree.edges) {
      const auto pa = tree.nodes[static_cast<std::size_t>(a)];
      const auto pb = tree.nodes[static_cast<std::size_t>(b)];
      os << "<line x1='" << X(pa.x) << "' y1='" << Y(pa.y) << "' x2='"
         << X(pb.x) << "' y2='" << Y(pb.y)
         << "' stroke='#d97706' stroke-width='1.5'/>\n";
    }
  }
  os << "</svg>\n";
}

void run_fig7() {
  std::printf("=== Figure 7: Driver layout pipeline stages ===\n");
  const core::TrainedAgent agent = core::train_agent(
      bench::bench_train_options(/*seed=*/7, bench::scaled(48)));
  std::mt19937_64 rng(7);
  const auto nl = bench::make_circuit("driver");
  core::PipelineConfig pcfg;
  pcfg.rl_attempts = 8;
  core::FloorplanPipeline pipe(pcfg);
  const auto res = pipe.run(nl, *agent.policy, *agent.encoder, rng);

  write_placement_svg("fig7a_placement_routing.svg", res.instance, res.rects,
                      res.route);
  layoutgen::write_svg("fig7c_layout.svg", res.layout);
  std::printf("wrote fig7a_placement_routing.svg, fig7c_layout.svg\n\n");

  std::printf("stage metrics (Driver, %d blocks, %zu nets):\n",
              res.instance.num_blocks(), res.instance.nets.size());
  std::printf("  (a) floorplan: area %.1f um2, dead space %.1f%%, "
              "HPWL %.1f um, reward %.2f\n",
              res.eval.area, res.eval.dead_space * 100.0, res.eval.hpwl,
              res.eval.reward);
  std::printf("  (a) global routing: %zu trees, wirelength %.1f um, "
              "%d failed nets\n",
              res.route.trees.size(), res.route.total_wirelength,
              res.route.failed_nets);
  std::printf("  (b) channels: %zu routing channels over 2 layers\n",
              res.layout.channels.size());
  std::printf("  (c) layout: outline %.1f um2, dead space %.1f%%, "
              "%zu wires, %zu vias\n",
              res.layout.area(), res.layout.dead_space(res.instance) * 100.0,
              res.layout.wires.size(), res.layout.vias.size());
  std::printf("  verification: DRC %s (%zu), LVS %s (%zu opens, %zu shorts)\n",
              res.drc.clean() ? "clean" : "needs refinement",
              res.drc.violations.size(),
              res.lvs.clean() ? "clean" : "needs refinement",
              res.lvs.open_nets.size(), res.lvs.shorted.size());
  std::printf("  timings: SR %.3fs, floorplan %.3fs, route %.3fs, "
              "layout %.3fs\n\n",
              res.timings.recognition_s, res.timings.floorplan_s,
              res.timings.route_s, res.timings.layout_s);
  std::printf("paper shape: the automated flow yields a routed, DRC/LVS-"
              "checkable Driver layout in seconds; complex layouts may "
              "still need manual channel refinement (Section V-C).\n\n");
}

void BM_LayoutGeneration(benchmark::State& state) {
  std::mt19937_64 rng(3);
  const auto nl = bench::make_circuit("driver");
  auto g = graphir::build_graph(nl, structrec::recognize(nl));
  const auto inst = floorplan::make_instance(g);
  metaheur::SAParams p;
  p.iterations = 600;
  const auto base = metaheur::run_sa(inst, p, rng);
  const auto gr = route::global_route(inst, base.rects);
  for (auto _ : state) {
    auto layout = layoutgen::generate_layout(inst, base.rects, gr);
    benchmark::DoNotOptimize(layout.area());
  }
}
BENCHMARK(BM_LayoutGeneration)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  run_fig7();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
