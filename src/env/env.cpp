#include "env/env.hpp"

#include <stdexcept>

namespace afp::env {

FloorplanEnv::FloorplanEnv(floorplan::Instance inst, EnvConfig cfg)
    : inst_(std::move(inst)), cfg_(cfg), grid_(inst_, cfg.grid) {
  order_ = inst_.placement_order();
}

Observation FloorplanEnv::reset() {
  grid_.reset();
  cursor_ = 0;
  prev_ds_ = 0.0;
  prev_hpwl_ = 0.0;
  done_ = inst_.num_blocks() == 0;
  return observe();
}

Observation FloorplanEnv::set_instance(floorplan::Instance inst) {
  inst_ = std::move(inst);
  grid_ = floorplan::GridFloorplan(inst_, cfg_.grid);
  order_ = inst_.placement_order();
  return reset();
}

Action FloorplanEnv::decode(int flat_action) const {
  const int n = cfg_.grid;
  if (flat_action < 0 || flat_action >= action_space()) {
    throw std::out_of_range("FloorplanEnv::decode: action out of range");
  }
  Action a;
  a.shape = flat_action / (n * n);
  const int cell = flat_action % (n * n);
  a.row = cell / n;
  a.col = cell % n;
  return a;
}

int FloorplanEnv::encode(const Action& a) const {
  const int n = cfg_.grid;
  return a.shape * n * n + a.row * n + a.col;
}

Observation FloorplanEnv::observe() const {
  const int n = cfg_.grid;
  const std::size_t plane = static_cast<std::size_t>(n) * n;
  Observation obs;
  obs.steps_done = cursor_;
  obs.done = done_;
  obs.masks.assign(static_cast<std::size_t>(mask_channels()) * plane, 0.0f);
  obs.action_mask.assign(3 * plane, 0.0f);
  if (done_) {
    obs.current_block = -1;
    return obs;
  }
  const int b = order_[static_cast<std::size_t>(cursor_)];
  obs.current_block = b;

  const auto fg = grid_.occupancy_mask();
  std::copy(fg.begin(), fg.end(), obs.masks.begin());
  if (cfg_.use_wire_mask) {
    const auto fw = grid_.wire_mask(b, cfg_.representative_shape);
    std::copy(fw.begin(), fw.end(), obs.masks.begin() + static_cast<long>(plane));
  }
  if (cfg_.use_dead_space_mask) {
    const auto fds = grid_.dead_space_mask(b, cfg_.representative_shape);
    std::copy(fds.begin(), fds.end(),
              obs.masks.begin() + static_cast<long>(2 * plane));
  }
  for (int s = 0; s < 3; ++s) {
    const auto fp = grid_.position_mask(b, s);
    std::copy(fp.begin(), fp.end(),
              obs.masks.begin() + static_cast<long>((3 + s) * plane));
    std::copy(fp.begin(), fp.end(),
              obs.action_mask.begin() + static_cast<long>(s) * static_cast<long>(plane));
  }
  if (cfg_.use_congestion_mask) {
    const auto fcong = grid_.congestion_mask();
    std::copy(fcong.begin(), fcong.end(),
              obs.masks.begin() + static_cast<long>(6 * plane));
  }
  return obs;
}

StepResult FloorplanEnv::step(int flat_action) {
  if (done_) {
    throw std::logic_error("FloorplanEnv::step called on finished episode");
  }
  const Action a = decode(flat_action);
  const int b = order_[static_cast<std::size_t>(cursor_)];
  StepResult res;
  if (!grid_.valid(b, a.shape, a.col, a.row)) {
    // Should be unreachable under correct action masking; treated as a
    // constraint violation per Section IV-D4.
    done_ = true;
    res.reward = cfg_.weights.violation_penalty;
    res.done = true;
    res.violated = true;
    res.obs = observe();
    return res;
  }

  grid_.place(b, a.shape, a.col, a.row);
  ++cursor_;

  // Eq. (4): negative increase of dead space and (normalized) HPWL.
  const double ds = grid_.partial_dead_space();
  const double hp = grid_.partial_hpwl();
  const double hpwl_norm = inst_.canvas_w + inst_.canvas_h;
  res.reward = -((ds - prev_ds_) + (hp - prev_hpwl_) / hpwl_norm);
  prev_ds_ = ds;
  prev_hpwl_ = hp;

  if (cursor_ == inst_.num_blocks()) {
    done_ = true;
    res.done = true;
    // Constraint tolerance: half a grid cell, the quantum at which the
    // masks enforce alignment.
    const double tol = inst_.canvas_w / cfg_.grid / 2.0 + 1e-9;
    const auto ev = floorplan::evaluate_floorplan(inst_, grid_.rects(),
                                                  cfg_.weights, tol);
    res.final_eval = ev;
    res.violated = !ev.constraints_ok;
    res.reward += ev.reward;  // Eq. (5) terminal term (or -50 on violation)
  } else {
    const int nb = order_[static_cast<std::size_t>(cursor_)];
    if (!grid_.any_valid_action(nb)) {
      // Dead end: no admissible action for the next block.
      done_ = true;
      res.done = true;
      res.violated = true;
      res.reward += cfg_.weights.violation_penalty;
    }
  }
  res.obs = observe();
  return res;
}

}  // namespace afp::env
