#include "env/vec_env.hpp"

namespace afp::env {

VecEnv::VecEnv(int num_envs,
               const std::function<floorplan::Instance(int)>& make_instance,
               EnvConfig cfg) {
  envs_.reserve(static_cast<std::size_t>(num_envs));
  for (int i = 0; i < num_envs; ++i) {
    envs_.push_back(std::make_unique<FloorplanEnv>(make_instance(i), cfg));
  }
}

std::vector<Observation> VecEnv::reset_all() {
  std::vector<Observation> obs;
  obs.reserve(envs_.size());
  for (auto& e : envs_) obs.push_back(e->reset());
  return obs;
}

StepResult VecEnv::step(int i, int flat_action) {
  FloorplanEnv& e = *envs_[static_cast<std::size_t>(i)];
  StepResult res = e.step(flat_action);
  if (res.done) {
    std::optional<floorplan::Instance> next;
    if (on_episode_end) next = on_episode_end(i, res);
    res.obs = next ? e.set_instance(std::move(*next)) : e.reset();
  }
  return res;
}

}  // namespace afp::env
