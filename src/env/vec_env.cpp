#include "env/vec_env.hpp"

#include <stdexcept>

#include "numeric/parallel.hpp"

namespace afp::env {

VecEnv::VecEnv(int num_envs,
               const std::function<floorplan::Instance(int)>& make_instance,
               EnvConfig cfg) {
  envs_.reserve(static_cast<std::size_t>(num_envs));
  for (int i = 0; i < num_envs; ++i) {
    envs_.push_back(std::make_unique<FloorplanEnv>(make_instance(i), cfg));
  }
}

std::vector<Observation> VecEnv::reset_all() {
  std::vector<Observation> obs;
  obs.reserve(envs_.size());
  for (auto& e : envs_) obs.push_back(e->reset());
  return obs;
}

void VecEnv::finish_episode(int i, StepResult& res) {
  FloorplanEnv& e = *envs_[static_cast<std::size_t>(i)];
  std::optional<floorplan::Instance> next;
  if (on_episode_end) next = on_episode_end(i, res);
  res.obs = next ? e.set_instance(std::move(*next)) : e.reset();
}

StepResult VecEnv::step(int i, int flat_action) {
  StepResult res = envs_[static_cast<std::size_t>(i)]->step(flat_action);
  if (res.done) finish_episode(i, res);
  return res;
}

std::vector<StepResult> VecEnv::step_all(const std::vector<int>& actions) {
  if (actions.size() != envs_.size()) {
    throw std::invalid_argument("VecEnv::step_all: one action per env required");
  }
  std::vector<StepResult> results(envs_.size());
  // Environments are independent; each chunk owns a disjoint slice.  The
  // grain of 1 lets every env go to its own thread: a single step is tens
  // of microseconds of mask computation.
  num::parallel_for(static_cast<std::int64_t>(envs_.size()), 1,
                    [&](std::int64_t i0, std::int64_t i1) {
                      for (std::int64_t i = i0; i < i1; ++i) {
                        results[static_cast<std::size_t>(i)] =
                            envs_[static_cast<std::size_t>(i)]->step(
                                actions[static_cast<std::size_t>(i)]);
                      }
                    });
  // Hooks and resets are serial and ordered: curriculum schedulers draw
  // from shared RNGs and must see episode ends in a deterministic order.
  for (std::size_t i = 0; i < results.size(); ++i) {
    if (results[i].done) finish_episode(static_cast<int>(i), results[i]);
  }
  return results;
}

}  // namespace afp::env
