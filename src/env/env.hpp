// Floorplanning MDP (Section IV-A).
//
// One episode places every block of an Instance, in decreasing-area order.
// The observation combines six 32x32 grid masks — occupancy fg, wire mask
// fw, dead-space mask fds and three per-shape positional masks fp — with
// the identity of the block to place (the agent looks up its R-GCN node
// embedding).  An action jointly selects (shape, column, row), flattened
// as a = shape * n * n + row * n + col over the 3 x n x n action space.
//
// Rewards: Eq. (4) intermediate (-Δdead_space - ΔHPWL, wirelength
// normalized by the canvas half-perimeter so both terms are O(1)); Eq. (5)
// terminal; -50 when the episode dead-ends with no admissible action.
#pragma once

#include <optional>
#include <random>

#include "floorplan/grid.hpp"

namespace afp::env {

struct EnvConfig {
  int grid = 32;
  floorplan::RewardWeights weights{};
  /// Shape channel used for the single-channel fw / fds masks
  /// (the paper keeps one mask; we use the middle candidate shape).
  int representative_shape = 1;
  /// Include fds in the observation (ablation A1 switches it off).
  bool use_dead_space_mask = true;
  /// Include fw in the observation.
  bool use_wire_mask = true;
  /// Append a 7th RUDY congestion channel (paper Section VI future work:
  /// conditioning placement on expected routing density).
  bool use_congestion_mask = false;
};

constexpr int kMaskChannels = 6;  ///< fg, fw, fds, fp0, fp1, fp2 (base set)

/// Decoded action.
struct Action {
  int shape = 0;
  int col = 0;
  int row = 0;
};

struct Observation {
  /// [C, n, n] row-major channel-major masks; C = 6, or 7 with the
  /// congestion extension (fcong appended last).
  std::vector<float> masks;
  /// Flat {0,1} action mask of size 3 * n * n (fp channels).
  std::vector<float> action_mask;
  int current_block = -1;  ///< graph node to place next, -1 when done
  int steps_done = 0;
  bool done = false;
};

struct StepResult {
  Observation obs;
  double reward = 0.0;
  bool done = false;
  bool violated = false;                    ///< dead-end / constraint failure
  std::optional<floorplan::Evaluation> final_eval;  ///< set on clean finish
};

class FloorplanEnv {
 public:
  FloorplanEnv(floorplan::Instance inst, EnvConfig cfg = {});

  Observation reset();
  /// `flat_action` indexes the 3*n*n action space; must be valid per the
  /// current action mask.
  StepResult step(int flat_action);

  Action decode(int flat_action) const;
  int encode(const Action& a) const;

  const floorplan::Instance& instance() const { return inst_; }
  const floorplan::GridFloorplan& grid() const { return grid_; }
  int grid_size() const { return cfg_.grid; }
  int action_space() const { return 3 * cfg_.grid * cfg_.grid; }
  /// Observation channel count (6, or 7 with the congestion extension).
  int mask_channels() const {
    return kMaskChannels + (cfg_.use_congestion_mask ? 1 : 0);
  }
  int episode_length() const { return inst_.num_blocks(); }

  /// Replaces the instance (used by the curriculum) and resets.
  Observation set_instance(floorplan::Instance inst);

 private:
  Observation observe() const;

  floorplan::Instance inst_;
  EnvConfig cfg_;
  floorplan::GridFloorplan grid_;
  std::vector<int> order_;  ///< decreasing-area placement order
  int cursor_ = 0;          ///< next index into order_
  double prev_ds_ = 0.0;
  double prev_hpwl_ = 0.0;
  bool done_ = true;
};

}  // namespace afp::env
