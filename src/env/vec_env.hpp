// Synchronous vectorized environment: the paper gathers experience from 16
// parallel environments; on this single-core target they are stepped
// round-robin, which preserves the PPO batch statistics.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "env/env.hpp"

namespace afp::env {

class VecEnv {
 public:
  /// `make_instance(i)` builds the initial instance of environment i; the
  /// curriculum may later swap instances on episode boundaries via the
  /// on_episode_end hook.
  VecEnv(int num_envs,
         const std::function<floorplan::Instance(int)>& make_instance,
         EnvConfig cfg = {});

  int size() const { return static_cast<int>(envs_.size()); }
  FloorplanEnv& env(int i) { return *envs_[static_cast<std::size_t>(i)]; }

  /// Resets every environment; returns initial observations.
  std::vector<Observation> reset_all();

  /// Steps environment i.  When the episode ends, `on_episode_end` (if
  /// set) may supply a fresh instance; the env is then reset and the
  /// returned StepResult keeps done=true while its obs holds the new
  /// episode's first observation (standard auto-reset semantics).
  StepResult step(int i, int flat_action);

  /// Hook: called with (env index, finished StepResult); returns an
  /// optional replacement instance for the next episode.
  std::function<std::optional<floorplan::Instance>(int, const StepResult&)>
      on_episode_end;

 private:
  std::vector<std::unique_ptr<FloorplanEnv>> envs_;
};

}  // namespace afp::env
