// Synchronous vectorized environment: the paper gathers experience from 16
// parallel environments.  step_all steps every environment concurrently on
// the shared thread pool (environments are independent state machines);
// episode-end hooks and auto-resets then run serially on the caller's
// thread, so hook implementations (curriculum schedulers with shared RNGs)
// need no synchronization.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "env/env.hpp"

namespace afp::env {

class VecEnv {
 public:
  /// `make_instance(i)` builds the initial instance of environment i; the
  /// curriculum may later swap instances on episode boundaries via the
  /// on_episode_end hook.
  VecEnv(int num_envs,
         const std::function<floorplan::Instance(int)>& make_instance,
         EnvConfig cfg = {});

  int size() const { return static_cast<int>(envs_.size()); }
  FloorplanEnv& env(int i) { return *envs_[static_cast<std::size_t>(i)]; }

  /// Resets every environment; returns initial observations.
  std::vector<Observation> reset_all();

  /// Steps environment i.  When the episode ends, `on_episode_end` (if
  /// set) may supply a fresh instance; the env is then reset and the
  /// returned StepResult keeps done=true while its obs holds the new
  /// episode's first observation (standard auto-reset semantics).
  StepResult step(int i, int flat_action);

  /// Steps every environment with its own action (actions.size() must
  /// equal size()).  The env transitions run in parallel on the thread
  /// pool; on_episode_end hooks and auto-resets run serially afterwards in
  /// env-index order, preserving step()'s semantics exactly.
  std::vector<StepResult> step_all(const std::vector<int>& actions);

  /// Hook: called with (env index, finished StepResult); returns an
  /// optional replacement instance for the next episode.
  std::function<std::optional<floorplan::Instance>(int, const StepResult&)>
      on_episode_end;

 private:
  /// Serial part of auto-reset: hook + reset, mutating res.obs in place.
  void finish_episode(int i, StepResult& res);

  std::vector<std::unique_ptr<FloorplanEnv>> envs_;
};

}  // namespace afp::env
