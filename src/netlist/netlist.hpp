// Transistor-level netlist representation with a small SPICE-like text
// format (enough to round-trip the circuits this project uses).
//
// Grammar (one statement per line, '*' comments, case-insensitive keys):
//   .subckt <name> <port> ...
//   M<name> <d> <g> <s> <b> <model> W=<um> L=<um> [NF=<int>]
//   R<name> <a> <b> <ohms>
//   C<name> <a> <b> <farads>
//   .ends
// Models containing 'p' are PMOS, otherwise NMOS.
#pragma once

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

namespace afp::netlist {

enum class DeviceType { kNmos, kPmos, kResistor, kCapacitor };

/// Printable device-type name ("nmos", "pmos", ...).
std::string to_string(DeviceType t);

struct Device {
  std::string name;
  DeviceType type = DeviceType::kNmos;
  /// Connected net names; MOS: {drain, gate, source, bulk}, R/C: {a, b}.
  std::vector<std::string> terminals;
  double width_um = 1.0;   ///< MOS gate width (total, all fingers)
  double length_um = 0.18; ///< MOS gate length
  int fingers = 1;         ///< MOS finger / stripe count
  double value = 0.0;      ///< R: ohms, C: farads

  bool is_mos() const {
    return type == DeviceType::kNmos || type == DeviceType::kPmos;
  }
  /// Approximate layout area of the device in um^2 (device footprint model:
  /// MOS active area plus per-finger diffusion overhead; R/C area scales
  /// with value).
  double area_um2() const;

  std::string drain() const { return terminals.at(0); }
  std::string gate() const { return terminals.at(1); }
  std::string source() const { return terminals.at(2); }
  std::string bulk() const { return terminals.at(3); }
};

/// A named net with the list of (device index, terminal index) pins.
struct Net {
  std::string name;
  std::vector<std::pair<int, int>> pins;

  bool is_supply() const;  ///< VDD/VSS/GND-style names
};

class Netlist {
 public:
  Netlist() = default;
  explicit Netlist(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  void set_name(std::string n) { name_ = std::move(n); }

  int add_device(Device d);
  const std::vector<Device>& devices() const { return devices_; }
  const Device& device(int i) const { return devices_.at(static_cast<std::size_t>(i)); }
  int num_devices() const { return static_cast<int>(devices_.size()); }

  const std::vector<std::string>& ports() const { return ports_; }
  void set_ports(std::vector<std::string> p) { ports_ = std::move(p); }

  /// Nets derived from device terminals (stable order of first appearance).
  std::vector<Net> nets() const;

  /// Devices attached to `net` (indices).
  std::vector<int> devices_on_net(const std::string& net) const;

  /// Total device area in um^2.
  double total_device_area() const;

  /// Serializes to the SPICE-like text format.
  std::string to_spice() const;
  /// Parses one .subckt from text.  Throws std::runtime_error on errors.
  static Netlist from_spice(const std::string& text);

 private:
  std::string name_ = "top";
  std::vector<std::string> ports_;
  std::vector<Device> devices_;
};

}  // namespace afp::netlist
