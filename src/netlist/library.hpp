// Synthetic circuit generators.
//
// The paper evaluates on six Infineon industrial designs (OTA-1, OTA-2,
// Bias-1, RS-Latch, Driver, Bias-2 with 5/8/9/7/17/19 functional blocks)
// plus five RL-training circuits (OTAs with 3/5/8 blocks, bias circuits
// with 3/9 blocks).  Those netlists are proprietary, so this module
// generates transistor-level circuits with the same functional-block
// counts, block-type mix (diff pairs, current mirrors, cascodes,
// cross-coupled pairs, passives, singletons) and constraint structure.
// Downstream code (structure recognition -> graph -> floorplanning) sees
// exactly the interface the industrial circuits would provide.
#pragma once

#include <functional>
#include <random>
#include <string>
#include <vector>

#include "netlist/netlist.hpp"

namespace afp::netlist {

// Evaluation circuits (Table I).
Netlist make_ota1();      ///< 5-block single-stage OTA
Netlist make_ota2();      ///< 8-block cascoded OTA (paper Fig. 2)
Netlist make_bias1();     ///< 9-block bias generator
Netlist make_rs_latch();  ///< 7-block RS latch / clock synchronizer cell
Netlist make_driver();    ///< 17-block low-side driver (per [12])
Netlist make_bias2();     ///< 19-block bias distribution network

// Additional RL-training circuits (Section IV-D5: 3/5/8-block OTAs and
// 3/9-block bias circuits; OTA-1 and Bias-1 double as the 5- and 9-block
// members).
Netlist make_ota_small();   ///< 3-block OTA
Netlist make_bias_small();  ///< 3-block bias cell

// Extra circuit families used to diversify the R-GCN pre-training dataset
// (Section IV-C lists OTAs, bias circuits, drivers, level shifters, clock
// synchronizers, comparators and oscillators).
Netlist make_comparator();     ///< latched comparator
Netlist make_level_shifter();  ///< cross-coupled level shifter
Netlist make_ring_oscillator(int stages = 5);
Netlist make_folded_cascode();  ///< 10-block folded-cascode OTA
Netlist make_charge_pump();     ///< 6-block PLL charge pump
Netlist make_bandgap();         ///< 8-block bandgap-style reference

/// A named circuit generator entry.
struct CircuitEntry {
  std::string name;
  std::function<Netlist()> make;
  int expected_blocks;  ///< functional blocks after structure recognition
  bool in_training_set; ///< part of the RL training circuits
};

/// All circuits of the reproduction, in a stable order.
const std::vector<CircuitEntry>& circuit_registry();

/// Randomly rescales device widths / passive values (same topology) to
/// synthesize dataset variety for R-GCN pre-training.  Scale factors are
/// drawn log-uniformly from [1/max_scale, max_scale] per matched group so
/// intra-structure matching is preserved.
Netlist perturb_sizes(const Netlist& nl, std::mt19937_64& rng,
                      double max_scale = 2.0);

}  // namespace afp::netlist
