#include "netlist/netlist.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace afp::netlist {

namespace {

std::string upper(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::toupper(c); });
  return s;
}

std::vector<std::string> tokenize(const std::string& line) {
  std::istringstream is(line);
  std::vector<std::string> toks;
  std::string t;
  while (is >> t) toks.push_back(t);
  return toks;
}

/// Parses "W=1.5" style key=value; returns value on key match.
std::optional<double> parse_kv(const std::string& tok, const std::string& key) {
  const std::string up = upper(tok);
  if (up.rfind(key + "=", 0) != 0) return std::nullopt;
  return std::stod(tok.substr(key.size() + 1));
}

}  // namespace

std::string to_string(DeviceType t) {
  switch (t) {
    case DeviceType::kNmos: return "nmos";
    case DeviceType::kPmos: return "pmos";
    case DeviceType::kResistor: return "resistor";
    case DeviceType::kCapacitor: return "capacitor";
  }
  return "?";
}

double Device::area_um2() const {
  if (is_mos()) {
    // Active area plus diffusion/contact overhead per finger: a simple
    // footprint model with 0.5um diffusion extension per finger edge.
    const double stripe_w = width_um / std::max(1, fingers);
    const double fin_h = stripe_w;
    const double fin_w = length_um + 1.0;  // gate + 2 x 0.5um diffusion
    return fin_h * fin_w * std::max(1, fingers);
  }
  if (type == DeviceType::kResistor) {
    // Poly resistor: ~1 kOhm per square at 0.5um width.
    const double squares = std::max(1.0, value / 1000.0);
    return squares * 0.5 * 0.5 + 1.0;
  }
  // MIM cap: ~2 fF/um^2.
  return std::max(1.0, value * 1e15 / 2.0);
}

bool Net::is_supply() const {
  const std::string u = [this] {
    std::string s = name;
    std::transform(s.begin(), s.end(), s.begin(),
                   [](unsigned char c) { return std::toupper(c); });
    return s;
  }();
  return u == "VDD" || u == "VSS" || u == "GND" || u == "VDDA" || u == "VSSA" ||
         u == "AVDD" || u == "AVSS";
}

int Netlist::add_device(Device d) {
  if (d.is_mos() && d.terminals.size() != 4) {
    throw std::invalid_argument("MOS device " + d.name +
                                " needs 4 terminals");
  }
  if (!d.is_mos() && d.terminals.size() != 2) {
    throw std::invalid_argument("2-terminal device " + d.name +
                                " needs 2 terminals");
  }
  devices_.push_back(std::move(d));
  return static_cast<int>(devices_.size()) - 1;
}

std::vector<Net> Netlist::nets() const {
  std::vector<Net> out;
  std::map<std::string, int> index;
  for (int di = 0; di < num_devices(); ++di) {
    const Device& d = devices_[static_cast<std::size_t>(di)];
    for (int ti = 0; ti < static_cast<int>(d.terminals.size()); ++ti) {
      const std::string& nn = d.terminals[static_cast<std::size_t>(ti)];
      auto it = index.find(nn);
      if (it == index.end()) {
        index.emplace(nn, static_cast<int>(out.size()));
        out.push_back({nn, {{di, ti}}});
      } else {
        out[static_cast<std::size_t>(it->second)].pins.emplace_back(di, ti);
      }
    }
  }
  return out;
}

std::vector<int> Netlist::devices_on_net(const std::string& net) const {
  std::vector<int> out;
  for (int di = 0; di < num_devices(); ++di) {
    const Device& d = devices_[static_cast<std::size_t>(di)];
    if (std::find(d.terminals.begin(), d.terminals.end(), net) !=
        d.terminals.end()) {
      out.push_back(di);
    }
  }
  return out;
}

double Netlist::total_device_area() const {
  double a = 0.0;
  for (const Device& d : devices_) a += d.area_um2();
  return a;
}

std::string Netlist::to_spice() const {
  std::ostringstream os;
  os << ".subckt " << name_;
  for (const auto& p : ports_) os << ' ' << p;
  os << '\n';
  for (const Device& d : devices_) {
    switch (d.type) {
      case DeviceType::kNmos:
      case DeviceType::kPmos:
        os << 'M' << d.name << ' ' << d.terminals[0] << ' ' << d.terminals[1]
           << ' ' << d.terminals[2] << ' ' << d.terminals[3] << ' '
           << (d.type == DeviceType::kPmos ? "pmos" : "nmos")
           << " W=" << d.width_um << " L=" << d.length_um
           << " NF=" << d.fingers << '\n';
        break;
      case DeviceType::kResistor:
        os << 'R' << d.name << ' ' << d.terminals[0] << ' ' << d.terminals[1]
           << ' ' << d.value << '\n';
        break;
      case DeviceType::kCapacitor:
        os << 'C' << d.name << ' ' << d.terminals[0] << ' ' << d.terminals[1]
           << ' ' << d.value << '\n';
        break;
    }
  }
  os << ".ends\n";
  return os.str();
}

Netlist Netlist::from_spice(const std::string& text) {
  Netlist nl;
  std::istringstream is(text);
  std::string line;
  bool in_subckt = false;
  while (std::getline(is, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    auto toks = tokenize(line);
    if (toks.empty() || toks[0][0] == '*') continue;
    const std::string head = upper(toks[0]);
    if (head == ".SUBCKT") {
      if (toks.size() < 2) throw std::runtime_error("malformed .subckt line");
      nl.set_name(toks[1]);
      nl.set_ports({toks.begin() + 2, toks.end()});
      in_subckt = true;
      continue;
    }
    if (head == ".ENDS") break;
    if (!in_subckt) {
      throw std::runtime_error("device statement outside .subckt: " + line);
    }
    Device d;
    const char kind = static_cast<char>(std::toupper(toks[0][0]));
    d.name = toks[0].substr(1);
    if (kind == 'M') {
      if (toks.size() < 6) throw std::runtime_error("malformed MOS: " + line);
      d.terminals = {toks[1], toks[2], toks[3], toks[4]};
      d.type = upper(toks[5]).find('P') != std::string::npos
                   ? DeviceType::kPmos
                   : DeviceType::kNmos;
      for (std::size_t i = 6; i < toks.size(); ++i) {
        if (auto w = parse_kv(toks[i], "W")) d.width_um = *w;
        else if (auto l = parse_kv(toks[i], "L")) d.length_um = *l;
        else if (auto nf = parse_kv(toks[i], "NF"))
          d.fingers = static_cast<int>(*nf);
      }
    } else if (kind == 'R' || kind == 'C') {
      if (toks.size() < 4)
        throw std::runtime_error("malformed passive: " + line);
      d.terminals = {toks[1], toks[2]};
      d.type = kind == 'R' ? DeviceType::kResistor : DeviceType::kCapacitor;
      d.value = std::stod(toks[3]);
    } else {
      throw std::runtime_error("unsupported device kind in: " + line);
    }
    nl.add_device(std::move(d));
  }
  return nl;
}

}  // namespace afp::netlist
