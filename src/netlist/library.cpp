#include "netlist/library.hpp"

#include <cmath>
#include <map>

namespace afp::netlist {

namespace {

/// Small helper for composing circuits from canonical analog motifs.  The
/// motifs are wired exactly the way the structure-recognition rules expect
/// (see src/structrec), mirroring how real schematics express them.
struct Builder {
  Netlist nl;

  explicit Builder(std::string name) : nl(std::move(name)) {}

  void nmos(const std::string& name, const std::string& d,
            const std::string& g, const std::string& s, double w,
            double l = 0.18, int nf = 1) {
    nl.add_device({name, DeviceType::kNmos, {d, g, s, "VSS"}, w, l, nf, 0.0});
  }
  void pmos(const std::string& name, const std::string& d,
            const std::string& g, const std::string& s, double w,
            double l = 0.18, int nf = 1) {
    nl.add_device({name, DeviceType::kPmos, {d, g, s, "VDD"}, w, l, nf, 0.0});
  }
  void res(const std::string& name, const std::string& a,
           const std::string& b, double ohms) {
    nl.add_device(
        {name, DeviceType::kResistor, {a, b}, 0, 0, 1, ohms});
  }
  void cap(const std::string& name, const std::string& a,
           const std::string& b, double farads) {
    nl.add_device(
        {name, DeviceType::kCapacitor, {a, b}, 0, 0, 1, farads});
  }

  /// NMOS differential pair: matched, shared (non-supply) source.
  void ndiff_pair(const std::string& base, const std::string& inp,
                  const std::string& inn, const std::string& outp,
                  const std::string& outn, const std::string& tail, double w) {
    nmos(base + "a", outp, inp, tail, w, 0.18, 2);
    nmos(base + "b", outn, inn, tail, w, 0.18, 2);
  }

  /// PMOS current mirror: diode-connected reference plus outputs, all
  /// sharing gate and the VDD source rail.
  void pmirror(const std::string& base, const std::string& ref,
               const std::vector<std::string>& outs, double w) {
    pmos(base + "ref", ref, ref, "VDD", w, 0.36, 2);
    for (std::size_t i = 0; i < outs.size(); ++i) {
      pmos(base + "o" + std::to_string(i), outs[i], ref, "VDD", w, 0.36, 2);
    }
  }

  /// NMOS current mirror referenced to VSS.
  void nmirror(const std::string& base, const std::string& ref,
               const std::vector<std::string>& outs, double w) {
    nmos(base + "ref", ref, ref, "VSS", w, 0.36, 2);
    for (std::size_t i = 0; i < outs.size(); ++i) {
      nmos(base + "o" + std::to_string(i), outs[i], ref, "VSS", w, 0.36, 2);
    }
  }

  /// NMOS cascode pair: matched devices sharing a gate bias, each stacked
  /// on a distinct lower node.
  void ncascode_pair(const std::string& base, const std::string& bias,
                     const std::string& topa, const std::string& bota,
                     const std::string& topb, const std::string& botb,
                     double w) {
    nmos(base + "a", topa, bias, bota, w, 0.18, 2);
    nmos(base + "b", topb, bias, botb, w, 0.18, 2);
  }

  /// PMOS cascode pair: matched devices sharing a gate bias, each stacked
  /// on a distinct lower node.
  void pcascode_pair(const std::string& base, const std::string& bias,
                     const std::string& topa, const std::string& bota,
                     const std::string& topb, const std::string& botb,
                     double w) {
    pmos(base + "a", topa, bias, bota, w, 0.18, 2);
    pmos(base + "b", topb, bias, botb, w, 0.18, 2);
  }

  /// Cross-coupled NMOS pair (latch core / level-shifter core).
  void ncross_coupled(const std::string& base, const std::string& qa,
                      const std::string& qb, const std::string& s,
                      double w) {
    nmos(base + "a", qa, qb, s, w);
    nmos(base + "b", qb, qa, s, w);
  }
  /// Cross-coupled PMOS pair.
  void pcross_coupled(const std::string& base, const std::string& qa,
                      const std::string& qb, const std::string& s,
                      double w) {
    pmos(base + "a", qa, qb, s, w);
    pmos(base + "b", qb, qa, s, w);
  }
};

}  // namespace

Netlist make_ota_small() {
  Builder b("ota_small");
  b.nl.set_ports({"VDD", "VSS", "inp", "inn", "out", "vbn"});
  b.ndiff_pair("MDP", "inp", "inn", "d1", "out", "tail", 8.0);
  b.pmirror("MPL", "d1", {"out"}, 6.0);
  b.nmos("MT", "tail", "vbn", "VSS", 10.0, 0.36, 2);  // tail source
  return b.nl;
}

Netlist make_ota1() {
  Builder b("ota1");
  b.nl.set_ports({"VDD", "VSS", "inp", "inn", "out", "vbn"});
  b.ndiff_pair("MDP", "inp", "inn", "d1", "d2", "tail", 12.0);
  b.pmirror("MPL", "d1", {"d2"}, 8.0);
  b.nmos("MT", "tail", "vbn", "VSS", 16.0, 0.36, 4);  // tail source
  b.pmos("MPO", "out", "d2", "VDD", 24.0, 0.18, 4);   // output stage
  b.cap("CC", "d2", "out", 0.4e-12);                  // Miller compensation
  return b.nl;
}

Netlist make_ota2() {
  // The paper's Fig. 2 OTA: diff pair, cascode pair, mirror load plus five
  // standalone structures (tail, output stage, compensation).
  Builder b("ota2");
  b.nl.set_ports({"VDD", "VSS", "inp", "inn", "out", "vbn", "vcasc"});
  b.ndiff_pair("MDP", "inp", "inn", "d1", "d2", "tail", 10.0);
  b.ncascode_pair("MCA", "vcasc", "o1", "d1", "o2", "d2", 10.0);
  b.pmirror("MPL", "o1", {"o2"}, 7.0);
  b.nmos("MT", "tail", "vbn", "VSS", 14.0, 0.36, 2);   // tail source
  b.pmos("MPO", "out", "o2", "VDD", 28.0, 0.18, 4);    // output PMOS
  b.nmos("MNO", "out", "vbn", "VSS", 12.0, 0.36, 2);   // output sink
  b.res("RZ", "o2", "zc", 2200.0);                      // zero-nulling R
  b.cap("CC", "zc", "out", 0.5e-12);                    // Miller cap
  return b.nl;
}

Netlist make_bias_small() {
  Builder b("bias_small");
  b.nl.set_ports({"VDD", "VSS", "iref", "vbn"});
  b.pmirror("MPM", "iref", {"vbn"}, 5.0);
  b.nmos("MND", "vbn", "vbn", "VSS", 4.0, 0.36, 1);  // diode load
  b.res("RR", "iref", "VSS", 12000.0);               // reference resistor
  return b.nl;
}

Netlist make_bias1() {
  // Beta-multiplier bias core with cascodes and startup, 9 structures:
  // PMOS mirror, NMOS mirror, cascode pair, R, C and four singletons.
  Builder b("bias1");
  b.nl.set_ports({"VDD", "VSS", "vbn", "vbp", "en"});
  b.pmirror("MPM", "vbp", {"n1"}, 6.0);
  b.nmirror("MNM", "vbn", {"n2"}, 5.0);
  b.ncascode_pair("MCA", "vcas", "vbp2", "n1", "n2b", "n2", 5.0);
  b.res("RS", "srcdeg", "VSS", 8000.0);            // degeneration R
  b.cap("CF", "vbn", "VSS", 0.8e-12);              // filter cap
  b.nmos("MS1", "vbn", "en", "VSS", 2.0);          // startup pull
  b.pmos("MS2", "vbp", "en", "VDD", 2.0);          // startup pull
  b.nmos("MSD", "srcdeg", "vbn2", "VSS", 6.0, 0.36, 2);  // degenerated leg
  b.pmos("MPC", "vcas", "vcas", "VDD", 3.0, 0.72, 1);    // cascode bias diode
  return b.nl;
}

Netlist make_rs_latch() {
  // RS latch / clock-synchronizer cell: cross-coupled core plus set/reset
  // and output buffer devices; 7 structures.
  Builder b("rs_latch");
  b.nl.set_ports({"VDD", "VSS", "s", "r", "q", "qb"});
  b.ncross_coupled("MCC", "q", "qb", "VSS", 4.0);
  b.nmos("MS", "q", "s", "VSS", 3.0);    // set
  b.nmos("MR", "qb", "r", "VSS", 3.0);   // reset
  b.pmos("MLA", "q", "r", "VDD", 5.0);   // load a
  b.pmos("MLB", "qb", "s", "VDD", 5.0);  // load b
  b.nmos("MQB", "qbuf", "q", "VSS", 2.0);  // output buffer
  b.cap("CQ", "q", "VSS", 0.2e-12);      // balance cap
  return b.nl;
}

Netlist make_driver() {
  // Low-side MOSFET driver per [12]: level shifter, bias mirrors,
  // comparator front-end, predriver inverter chain, power device and
  // sensing network; 17 structures.
  Builder b("driver");
  b.nl.set_ports({"VDD", "VSS", "in", "inb", "gate", "pad", "en"});
  b.ncross_coupled("MLS", "lsq", "lsqb", "VSS", 3.0);     // level shifter core
  b.pmos("MLP1", "lsq", "in", "VDD", 4.0);                // LS pull a
  b.pmos("MLP2", "lsqb", "inb", "VDD", 4.0);              // LS pull b
  b.ndiff_pair("MDP", "fb", "vref", "c1", "c2", "ctail", 8.0);  // comparator
  b.nmos("MCT", "ctail", "vbc", "VSS", 10.0, 0.36, 2);    // comparator tail
  b.pmirror("MPM", "c1", {"c2"}, 6.0);                     // comparator load
  b.nmirror("MNB", "vbn", {"pre1"}, 5.0);                  // bias mirror
  // Predriver inverter chain (three stages, increasing strength).
  b.pmos("MI1P", "s1", "lsq", "VDD", 6.0);
  b.nmos("MI1N", "s1", "lsq", "VSS", 3.0);
  b.pmos("MI2P", "s2", "s1", "VDD", 12.0, 0.18, 2);
  b.nmos("MI2N", "s2", "s1", "VSS", 6.0, 0.18, 2);
  b.pmos("MI3P", "gate", "s2", "VDD", 24.0, 0.18, 4);
  b.nmos("MI3N", "gate", "s2", "VSS", 12.0, 0.18, 4);
  b.nmos("MPWR", "pad", "gate", "VSS", 200.0, 0.6, 20);   // power device
  b.res("RSNS", "pad", "fb", 500.0);                      // sense resistor
  b.cap("CD", "gate", "VSS", 1.0e-12);                    // damping cap
  b.cap("CB", "vbn", "VSS", 0.5e-12);                     // bias decap
  return b.nl;
}

Netlist make_bias2() {
  // Bias distribution network: mirror tree with cascoding, reference
  // branch and decoupling; 19 structures.
  Builder b("bias2");
  b.nl.set_ports({"VDD", "VSS", "iref", "vb1", "vb2", "vb3", "vb4", "en"});
  b.pmirror("MPM", "iref", {"m1", "m2", "m3"}, 8.0);      // PMOS mirror tree
  b.nmirror("MN1", "vb1", {"t1"}, 6.0);                    // NMOS mirror 1
  b.nmirror("MN2", "vb2", {"t2"}, 6.0);                    // NMOS mirror 2
  b.ncascode_pair("MCA", "vcas", "vb3", "m1", "vb4", "m2", 5.0);
  b.ndiff_pair("MDP", "vb1", "vb2", "e1", "e2", "etail", 6.0);  // equalizer
  b.res("RD1", "iref", "rmid", 5000.0);                   // reference string
  b.res("RD2", "rmid", "VSS", 5000.0);
  b.nmos("MET", "etail", "vbet", "VSS", 8.0, 0.36, 2);    // equalizer tail
  b.pmos("MEQ", "e1", "e1", "VDD", 4.0);                  // equalizer diode a
  b.pmos("MER", "e2", "e2", "VDD", 4.0);                  // equalizer diode b
  b.nmos("MS1", "vb1", "en", "VSS", 2.0);                 // enable pull 1
  b.nmos("MS2", "vb2", "en", "VSS", 2.0);                 // enable pull 2
  b.pmos("MS3", "m3", "en", "VDD", 2.0);                  // enable pull 3
  b.pmos("MPC", "vcas", "vcas", "VDD", 3.0, 0.72, 1);     // cascode diode
  b.cap("CB1", "vb1", "VSS", 0.6e-12);
  b.cap("CB2", "vb2", "VSS", 0.6e-12);
  b.cap("CB3", "vb3", "VSS", 0.4e-12);
  b.res("RST", "en", "VDD", 20000.0);                     // startup pull-up R
  b.nmos("MB1", "vb4", "t1", "VSS", 3.0);                 // buffer leg 1
  b.pmos("MB2", "vb3", "t2", "VDD", 3.0);                 // buffer leg 2
  return b.nl;
}

Netlist make_comparator() {
  Builder b("comparator");
  b.nl.set_ports({"VDD", "VSS", "inp", "inn", "clk", "outp", "outn"});
  b.ndiff_pair("MDP", "inp", "inn", "x1", "x2", "tail", 10.0);
  b.ncross_coupled("MCC", "outp", "outn", "VSS", 5.0);   // regeneration
  b.pcross_coupled("MPC", "outp", "outn", "VDD", 7.0);   // PMOS latch
  b.nmos("MT", "tail", "clk", "VSS", 12.0, 0.18, 2);     // clocked tail
  b.pmos("MR1", "outp", "clk", "VDD", 3.0);              // reset a
  b.pmos("MR2", "outn", "clk", "VDD", 3.0);              // reset b
  return b.nl;
}

Netlist make_level_shifter() {
  Builder b("level_shifter");
  b.nl.set_ports({"VDD", "VSS", "in", "inb", "out", "outb"});
  b.pcross_coupled("MPC", "out", "outb", "VDD", 5.0);
  b.nmos("MNA", "out", "in", "VSS", 4.0);
  b.nmos("MNB", "outb", "inb", "VSS", 4.0);
  b.cap("CL", "out", "VSS", 0.1e-12);
  return b.nl;
}

Netlist make_ring_oscillator(int stages) {
  Builder b("ring_osc" + std::to_string(stages));
  b.nl.set_ports({"VDD", "VSS", "osc"});
  // Odd inverter count; output of stage i drives stage i+1.
  for (int i = 0; i < stages; ++i) {
    const std::string in = i == 0 ? "osc" : "n" + std::to_string(i);
    const std::string out =
        i + 1 == stages ? "osc" : "n" + std::to_string(i + 1);
    b.pmos("MP" + std::to_string(i), out, in, "VDD", 2.0);
    b.nmos("MN" + std::to_string(i), out, in, "VSS", 1.0);
  }
  return b.nl;
}

Netlist make_folded_cascode() {
  // Folded-cascode OTA: NMOS input pair folded into PMOS sources, both
  // cascode pairs, mirror loads, bias diodes; 10 structures.
  Builder b("folded_cascode");
  b.nl.set_ports({"VDD", "VSS", "inp", "inn", "out", "vbn1"});
  b.ndiff_pair("MDP", "inp", "inn", "f1", "f2", "tail", 12.0);
  b.nmos("MT", "tail", "vbn1", "VSS", 16.0, 0.36, 4);     // tail source
  b.pmirror("MPF", "pmb", {"f1", "f2"}, 9.0);             // folding sources
  b.pcascode_pair("MPC", "vcp", "o1", "f1", "out", "f2", 9.0);
  b.ncascode_pair("MNC", "vcn", "o1", "n1", "out", "n2", 7.0);
  b.nmirror("MNM", "nmb", {"n1", "n2"}, 7.0);             // bottom mirror
  b.pmos("MBC1", "vcp", "vcp", "VDD", 3.0, 0.72, 1);      // cascode bias P
  b.nmos("MBC2", "vcn", "vcn", "VSS", 3.0, 0.72, 1);      // cascode bias N
  b.res("RB", "nmb", "VDD", 30000.0);                     // bias current R
  b.cap("CL", "out", "VSS", 0.6e-12);                     // load cap
  return b.nl;
}

Netlist make_charge_pump() {
  // PLL charge pump: biasing mirrors, up/down switches, loop filter front;
  // 6 structures.
  Builder b("charge_pump");
  b.nl.set_ports({"VDD", "VSS", "upb", "dn", "out", "ibp", "ibn"});
  b.pmirror("MPM", "ibp", {"srcp"}, 6.0);
  b.nmirror("MNM", "ibn", {"srcn"}, 5.0);
  b.pmos("MSW1", "out", "upb", "srcp", 4.0);  // up switch
  b.nmos("MSW2", "out", "dn", "srcn", 4.0);   // down switch
  b.cap("CP", "out", "VSS", 1.0e-12);          // loop filter cap
  b.res("RF", "out", "fb", 10000.0);           // loop filter R
  return b.nl;
}

Netlist make_bandgap() {
  // Bandgap-style reference core (MOS flavour): mirror, diode loads, a
  // resistor divider and an error-amplifier input pair; 8 structures.
  Builder b("bandgap");
  b.nl.set_ports({"VDD", "VSS", "vref", "en"});
  b.pmirror("MPM", "vbp", {"b1", "b2"}, 7.0);
  b.nmos("MD1", "b1", "b1", "VSS", 5.0, 0.5, 1);   // diode leg 1
  b.nmos("MD2", "rb", "rb", "VSS", 10.0, 0.5, 2);  // diode leg 2
  b.res("RD1", "b2", "rmid", 6000.0);              // divider string
  b.res("RD2", "rmid", "rb", 6000.0);
  b.ndiff_pair("MDP", "b1", "b2", "vbp", "ea2", "tail2", 6.0);  // error amp
  b.nmos("MT2", "tail2", "vbn2", "VSS", 8.0, 0.36, 2);
  b.nmos("MS", "vbp", "en", "VSS", 2.0);           // startup pull
  b.cap("CC", "vbp", "VSS", 0.5e-12);              // compensation
  return b.nl;
}

const std::vector<CircuitEntry>& circuit_registry() {
  static const std::vector<CircuitEntry> reg = {
      {"ota_small", make_ota_small, 3, true},
      {"ota1", make_ota1, 5, true},
      {"ota2", make_ota2, 8, true},
      {"bias_small", make_bias_small, 3, true},
      {"bias1", make_bias1, 9, true},
      {"rs_latch", make_rs_latch, 7, false},
      {"driver", make_driver, 17, false},
      {"bias2", make_bias2, 19, false},
      {"comparator", make_comparator, 6, false},
      {"level_shifter", make_level_shifter, 4, false},
      {"ring_osc5", [] { return make_ring_oscillator(5); }, 10, false},
      {"folded_cascode", make_folded_cascode, 10, false},
      {"charge_pump", make_charge_pump, 6, false},
      {"bandgap", make_bandgap, 8, false},
  };
  return reg;
}

Netlist perturb_sizes(const Netlist& nl, std::mt19937_64& rng,
                      double max_scale) {
  // One log-uniform factor per matched group, keyed by (type, W, L) so that
  // matched devices stay matched after perturbation.
  std::uniform_real_distribution<double> unif(-std::log(max_scale),
                                              std::log(max_scale));
  std::map<std::tuple<int, double, double>, double> group_scale;
  Netlist out(nl.name());
  out.set_ports(nl.ports());
  for (const Device& d : nl.devices()) {
    const auto key = std::make_tuple(static_cast<int>(d.type), d.width_um,
                                     d.is_mos() ? d.length_um : d.value);
    auto it = group_scale.find(key);
    if (it == group_scale.end()) {
      it = group_scale.emplace(key, std::exp(unif(rng))).first;
    }
    Device nd = d;
    if (nd.is_mos()) {
      nd.width_um = d.width_um * it->second;
    } else {
      nd.value = d.value * it->second;
    }
    out.add_device(std::move(nd));
  }
  return out;
}

}  // namespace afp::netlist
