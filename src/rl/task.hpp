// A training/evaluation task: one circuit (graph + instance) together with
// its frozen R-GCN encodings.  The encoder runs once per task; the RL agent
// consumes the cached embeddings as constant inputs (Section IV-D: the
// pre-trained encoder is reused without its FC head).
#pragma once

#include <optional>

#include "floorplan/instance.hpp"
#include "rgcn/reward_model.hpp"

namespace afp::rl {

struct TaskContext {
  graphir::CircuitGraph graph;
  floorplan::Instance instance;
  std::vector<float> node_emb;   ///< N x 32, row-major
  std::vector<float> graph_emb;  ///< 32

  /// Node embedding row of block `b` (32 floats).
  const float* node_row(int b) const {
    return node_emb.data() + static_cast<std::size_t>(b) * rgcn::kEmbeddingDim;
  }
};

/// Builds a task: derives the instance from the graph, optionally
/// overrides hpwl_ref (> 0), and caches the frozen encoder outputs.
TaskContext make_task(const rgcn::RewardModel& encoder,
                      graphir::CircuitGraph graph, double hpwl_ref = 0.0,
                      std::optional<double> target_aspect = std::nullopt);

}  // namespace afp::rl
