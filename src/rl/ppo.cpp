#include "rl/ppo.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "numeric/simd.hpp"

namespace afp::rl {

GaeResult compute_gae(const std::vector<float>& rewards,
                      const std::vector<float>& values,
                      const std::vector<bool>& dones, float last_value,
                      float gamma, float gae_lambda) {
  if (rewards.size() != values.size() || rewards.size() != dones.size()) {
    throw std::invalid_argument("compute_gae: length mismatch");
  }
  const std::size_t n = rewards.size();
  GaeResult out;
  out.advantages.assign(n, 0.0f);
  out.returns.assign(n, 0.0f);
  float gae = 0.0f;
  float next_value = last_value;
  for (std::size_t k = n; k-- > 0;) {
    // dones[k] marks that the episode ended AT step k: transition k+1
    // belongs to a new episode, so both the value bootstrap and the GAE
    // tail from k+1 are cut by the same (1 - done) factor.  Steps k-1 and
    // k always share an episode — no extra reset.
    const float nonterminal = dones[k] ? 0.0f : 1.0f;
    const float delta =
        rewards[k] + gamma * next_value * nonterminal - values[k];
    gae = delta + gamma * gae_lambda * nonterminal * gae;
    out.advantages[k] = gae;
    out.returns[k] = gae + values[k];
    next_value = values[k];
  }
  return out;
}

PPOTrainer::PPOTrainer(ActorCritic& policy, std::vector<TaskContext> tasks,
                       PPOConfig cfg, env::EnvConfig env_cfg)
    : policy_(&policy), cfg_(cfg), env_cfg_(env_cfg) {
  if (tasks.empty()) {
    throw std::invalid_argument("PPOTrainer: at least one task required");
  }
  tasks_.reserve(static_cast<std::size_t>(cfg.n_envs));
  for (int i = 0; i < cfg.n_envs; ++i) {
    tasks_.push_back(tasks[static_cast<std::size_t>(i) % tasks.size()]);
  }
  vec_ = std::make_unique<env::VecEnv>(
      cfg.n_envs,
      [this](int i) { return tasks_[static_cast<std::size_t>(i)].instance; },
      env_cfg_);
  // Episode boundaries consult the curriculum hook; hooks run serially in
  // env order (see VecEnv::step_all), so the shared RNG draw order is
  // deterministic.
  vec_->on_episode_end =
      [this](int e, const env::StepResult&) -> std::optional<floorplan::Instance> {
    if (!next_task) return std::nullopt;
    if (auto nt = next_task(e)) {
      tasks_[static_cast<std::size_t>(e)] = std::move(*nt);
      return tasks_[static_cast<std::size_t>(e)].instance;
    }
    return std::nullopt;
  };
  obs_ = vec_->reset_all();
  episode_reward_.assign(static_cast<std::size_t>(cfg.n_envs), 0.0);
  opt_ = std::make_unique<num::Adam>(policy.parameters(), cfg.lr);
}

IterationStats PPOTrainer::iterate(std::mt19937_64& rng) {
  const int n = policy_->config().grid;
  const int mc = vec_->env(0).mask_channels();
  if (mc != policy_->config().in_channels) {
    throw std::logic_error(
        "PPOTrainer: policy in_channels does not match env mask channels");
  }
  const std::size_t plane = static_cast<std::size_t>(n) * n;
  const int act_space = policy_->action_space();
  const int emb = rgcn::kEmbeddingDim;

  IterationStats stats;
  std::vector<Transition> buffer;
  buffer.reserve(static_cast<std::size_t>(cfg_.n_steps) * cfg_.n_envs);
  std::vector<double> finished_rewards;
  int violated_count = 0;

  // ---- rollout ------------------------------------------------------------
  for (int step = 0; step < cfg_.n_steps; ++step) {
    // Assemble the batched observation across envs.
    std::vector<float> masks_b(static_cast<std::size_t>(cfg_.n_envs) *
                               static_cast<std::size_t>(mc) * plane);
    std::vector<float> node_b(static_cast<std::size_t>(cfg_.n_envs) * emb);
    std::vector<float> graph_b(static_cast<std::size_t>(cfg_.n_envs) * emb);
    std::vector<float> amask_b(static_cast<std::size_t>(cfg_.n_envs) *
                               static_cast<std::size_t>(act_space));
    for (int e = 0; e < cfg_.n_envs; ++e) {
      const auto& o = obs_[static_cast<std::size_t>(e)];
      const TaskContext& t = tasks_[static_cast<std::size_t>(e)];
      std::copy(o.masks.begin(), o.masks.end(),
                masks_b.begin() +
                    static_cast<long>(e) * static_cast<long>(static_cast<std::size_t>(mc) * plane));
      const float* nrow = t.node_row(o.current_block);
      std::copy(nrow, nrow + emb, node_b.begin() + static_cast<long>(e) * emb);
      std::copy(t.graph_emb.begin(), t.graph_emb.end(),
                graph_b.begin() + static_cast<long>(e) * emb);
      std::copy(o.action_mask.begin(), o.action_mask.end(),
                amask_b.begin() + static_cast<long>(e) * act_space);
    }

    std::vector<int> actions;
    std::vector<float> logps(static_cast<std::size_t>(cfg_.n_envs));
    std::vector<float> values(static_cast<std::size_t>(cfg_.n_envs));
    {
      num::NoGradGuard ng;
      const auto masks_t = num::Tensor::from_vector(
          {cfg_.n_envs, mc, n, n}, masks_b);
      const auto node_t =
          num::Tensor::from_vector({cfg_.n_envs, emb}, node_b);
      const auto graph_t =
          num::Tensor::from_vector({cfg_.n_envs, emb}, graph_b);
      const PolicyOutput out = policy_->forward(masks_t, node_t, graph_t);
      nn::MaskedCategorical dist(out.logits, amask_b);
      actions = dist.sample(rng);
      const num::Tensor lp = dist.log_prob(actions);
      for (int e = 0; e < cfg_.n_envs; ++e) {
        logps[static_cast<std::size_t>(e)] = lp.at(e);
        values[static_cast<std::size_t>(e)] = out.value.at(e);
      }
    }

    // All envs advance concurrently; auto-reset + curriculum swaps have
    // already been applied when step_all returns.
    std::vector<env::StepResult> results = vec_->step_all(actions);
    for (int e = 0; e < cfg_.n_envs; ++e) {
      env::StepResult& res = results[static_cast<std::size_t>(e)];
      episode_reward_[static_cast<std::size_t>(e)] += res.reward;

      Transition tr;
      const long moff = static_cast<long>(e) * static_cast<long>(static_cast<std::size_t>(mc) * plane);
      tr.masks.assign(masks_b.begin() + moff,
                      masks_b.begin() + moff + static_cast<long>(static_cast<std::size_t>(mc) * plane));
      tr.node_emb.assign(node_b.begin() + static_cast<long>(e) * emb,
                         node_b.begin() + static_cast<long>(e + 1) * emb);
      tr.graph_emb.assign(graph_b.begin() + static_cast<long>(e) * emb,
                          graph_b.begin() + static_cast<long>(e + 1) * emb);
      tr.action_mask.assign(amask_b.begin() + static_cast<long>(e) * act_space,
                            amask_b.begin() + static_cast<long>(e + 1) * act_space);
      tr.action = actions[static_cast<std::size_t>(e)];
      tr.logp = logps[static_cast<std::size_t>(e)];
      tr.value = values[static_cast<std::size_t>(e)];
      tr.reward = static_cast<float>(res.reward);
      tr.done = res.done;
      tr.env = e;
      buffer.push_back(std::move(tr));

      if (res.done) {
        finished_rewards.push_back(episode_reward_[static_cast<std::size_t>(e)]);
        if (res.violated) ++violated_count;
        episode_reward_[static_cast<std::size_t>(e)] = 0.0;
        ++episodes_done_;
      }
      // On done, res.obs already holds the next episode's first
      // observation (auto-reset, possibly on a curriculum-swapped task).
      obs_[static_cast<std::size_t>(e)] = std::move(res.obs);
    }
  }

  // Bootstrap values for unfinished episodes.
  std::vector<float> last_values(static_cast<std::size_t>(cfg_.n_envs), 0.0f);
  {
    num::NoGradGuard ng;
    std::vector<float> masks_b(static_cast<std::size_t>(cfg_.n_envs) *
                               static_cast<std::size_t>(mc) * plane);
    std::vector<float> node_b(static_cast<std::size_t>(cfg_.n_envs) * emb);
    std::vector<float> graph_b(static_cast<std::size_t>(cfg_.n_envs) * emb);
    for (int e = 0; e < cfg_.n_envs; ++e) {
      const auto& o = obs_[static_cast<std::size_t>(e)];
      const TaskContext& t = tasks_[static_cast<std::size_t>(e)];
      std::copy(o.masks.begin(), o.masks.end(),
                masks_b.begin() +
                    static_cast<long>(e) * static_cast<long>(static_cast<std::size_t>(mc) * plane));
      const float* nrow = t.node_row(o.current_block);
      std::copy(nrow, nrow + emb, node_b.begin() + static_cast<long>(e) * emb);
      std::copy(t.graph_emb.begin(), t.graph_emb.end(),
                graph_b.begin() + static_cast<long>(e) * emb);
    }
    const auto out = policy_->forward(
        num::Tensor::from_vector({cfg_.n_envs, mc, n, n},
                                 masks_b),
        num::Tensor::from_vector({cfg_.n_envs, emb}, node_b),
        num::Tensor::from_vector({cfg_.n_envs, emb}, graph_b));
    for (int e = 0; e < cfg_.n_envs; ++e) {
      last_values[static_cast<std::size_t>(e)] = out.value.at(e);
    }
  }

  // ---- GAE(lambda) per env stream -----------------------------------------
  const std::size_t total = buffer.size();
  std::vector<float> advantages(total, 0.0f), returns(total, 0.0f);
  for (int e = 0; e < cfg_.n_envs; ++e) {
    std::vector<float> r, v;
    std::vector<bool> d;
    std::vector<std::size_t> idx_of;
    for (std::size_t i = 0; i < total; ++i) {
      const Transition& tr = buffer[i];
      if (tr.env != e) continue;
      r.push_back(tr.reward);
      v.push_back(tr.value);
      d.push_back(tr.done);
      idx_of.push_back(i);
    }
    const GaeResult g = compute_gae(r, v, d,
                                    last_values[static_cast<std::size_t>(e)],
                                    cfg_.gamma, cfg_.gae_lambda);
    for (std::size_t k = 0; k < idx_of.size(); ++k) {
      advantages[idx_of[k]] = g.advantages[k];
      returns[idx_of[k]] = g.returns[k];
    }
  }
  // Advantage normalization.  Moments accumulate in double for stability;
  // the center-and-scale pass runs on the tiered vector kernels.
  {
    double mean = 0.0, sq = 0.0;
    for (float a : advantages) mean += a;
    mean /= static_cast<double>(total);
    for (float a : advantages) sq += (a - mean) * (a - mean);
    const double stdev = std::sqrt(sq / static_cast<double>(total)) + 1e-8;
    const num::simd::Kernels& kr = num::simd::kernels();
    kr.acc_const(advantages.data(), static_cast<float>(-mean),
                 static_cast<std::int64_t>(total));
    kr.scale(advantages.data(), static_cast<float>(1.0 / stdev),
             advantages.data(), static_cast<std::int64_t>(total));
  }

  // ---- PPO update -----------------------------------------------------------
  std::vector<int> idx(total);
  std::iota(idx.begin(), idx.end(), 0);
  double sum_pl = 0.0, sum_vl = 0.0, sum_ent = 0.0, sum_kl = 0.0,
         sum_clip = 0.0;
  int updates = 0;
  for (int epoch = 0; epoch < cfg_.epochs; ++epoch) {
    std::shuffle(idx.begin(), idx.end(), rng);
    for (std::size_t start = 0; start < total;
         start += static_cast<std::size_t>(cfg_.minibatch)) {
      const std::size_t end =
          std::min(total, start + static_cast<std::size_t>(cfg_.minibatch));
      const int mb = static_cast<int>(end - start);
      if (mb < 2) continue;

      std::vector<float> masks_b(static_cast<std::size_t>(mb) *
                                 static_cast<std::size_t>(mc) * plane);
      std::vector<float> node_b(static_cast<std::size_t>(mb) * emb);
      std::vector<float> graph_b(static_cast<std::size_t>(mb) * emb);
      std::vector<float> amask_b(static_cast<std::size_t>(mb) *
                                 static_cast<std::size_t>(act_space));
      std::vector<int> act_b(static_cast<std::size_t>(mb));
      std::vector<float> oldlp_b(static_cast<std::size_t>(mb)),
          adv_b(static_cast<std::size_t>(mb)), ret_b(static_cast<std::size_t>(mb));
      for (int k = 0; k < mb; ++k) {
        const Transition& tr = buffer[static_cast<std::size_t>(
            idx[start + static_cast<std::size_t>(k)])];
        std::copy(tr.masks.begin(), tr.masks.end(),
                  masks_b.begin() +
                      static_cast<long>(k) * static_cast<long>(static_cast<std::size_t>(mc) * plane));
        std::copy(tr.node_emb.begin(), tr.node_emb.end(),
                  node_b.begin() + static_cast<long>(k) * emb);
        std::copy(tr.graph_emb.begin(), tr.graph_emb.end(),
                  graph_b.begin() + static_cast<long>(k) * emb);
        std::copy(tr.action_mask.begin(), tr.action_mask.end(),
                  amask_b.begin() + static_cast<long>(k) * act_space);
        act_b[static_cast<std::size_t>(k)] = tr.action;
        oldlp_b[static_cast<std::size_t>(k)] = tr.logp;
        adv_b[static_cast<std::size_t>(k)] =
            advantages[static_cast<std::size_t>(idx[start + static_cast<std::size_t>(k)])];
        ret_b[static_cast<std::size_t>(k)] =
            returns[static_cast<std::size_t>(idx[start + static_cast<std::size_t>(k)])];
      }

      const auto out = policy_->forward(
          num::Tensor::from_vector({mb, mc, n, n}, masks_b),
          num::Tensor::from_vector({mb, emb}, node_b),
          num::Tensor::from_vector({mb, emb}, graph_b));
      nn::MaskedCategorical dist(out.logits, amask_b);
      const num::Tensor newlp = dist.log_prob(act_b);
      const num::Tensor oldlp = num::Tensor::from_vector({mb}, oldlp_b);
      const num::Tensor adv = num::Tensor::from_vector({mb}, adv_b);
      const num::Tensor ret = num::Tensor::from_vector({mb}, ret_b);

      const num::Tensor ratio = num::exp_op(newlp - oldlp);
      const num::Tensor surr1 = num::mul(ratio, adv);
      const num::Tensor surr2 =
          num::mul(num::clamp(ratio, 1.0f - cfg_.clip, 1.0f + cfg_.clip), adv);
      const num::Tensor policy_loss =
          num::neg(num::mean_all(num::minimum(surr1, surr2)));
      const num::Tensor value_loss = num::mse_loss(out.value, ret);
      const num::Tensor entropy = num::mean_all(dist.entropy());
      num::Tensor loss = policy_loss + value_loss * cfg_.vf_coef +
                         num::neg(entropy) * cfg_.ent_coef;

      opt_->zero_grad();
      loss.backward();
      opt_->clip_grad_norm(cfg_.max_grad_norm);
      opt_->step();

      // Diagnostics.
      double kl = 0.0, clipped = 0.0;
      for (int k = 0; k < mb; ++k) {
        const double r = std::exp(static_cast<double>(newlp.at(k)) -
                                  oldlp_b[static_cast<std::size_t>(k)]);
        kl += oldlp_b[static_cast<std::size_t>(k)] - newlp.at(k);
        if (r < 1.0 - cfg_.clip || r > 1.0 + cfg_.clip) clipped += 1.0;
      }
      sum_kl += kl / mb;
      sum_clip += clipped / mb;
      sum_pl += policy_loss.item();
      sum_vl += value_loss.item();
      sum_ent += entropy.item();
      ++updates;
    }
  }

  if (!finished_rewards.empty()) {
    stats.mean_episode_reward =
        std::accumulate(finished_rewards.begin(), finished_rewards.end(), 0.0) /
        static_cast<double>(finished_rewards.size());
    stats.violation_rate =
        static_cast<double>(violated_count) /
        static_cast<double>(finished_rewards.size());
  }
  stats.episodes = static_cast<int>(finished_rewards.size());
  if (updates > 0) {
    stats.policy_loss = sum_pl / updates;
    stats.value_loss = sum_vl / updates;
    stats.entropy = sum_ent / updates;
    stats.approx_kl = sum_kl / updates;
    stats.clip_fraction = sum_clip / updates;
  }
  return stats;
}

}  // namespace afp::rl
