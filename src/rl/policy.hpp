// RL agent network (paper Fig. 4).
//
// Inputs per sample: six n x n grid masks, the current block's 32-dim
// R-GCN node embedding n_k, and the 32-dim circuit graph embedding g.
// A CNN encodes the mask stack into a 512-dim feature; the concatenated
// state feeds (a) a deconvolutional policy head producing 3 x n x n joint
// (shape, position) logits and (b) an MLP value head.
//
// PolicyConfig::paper() matches the architecture of Section IV-D3
// (3x3/stride-1 convs with 16,32,32,64,64 channels; 512 FC; three 4x4
// stride-2 deconvs with 32,16,8 channels).  PolicyConfig::fast() is a
// reduced preset for CPU-budget tests and benches; the interface and code
// paths are identical.
#pragma once

#include <memory>
#include <random>
#include <vector>

#include "nn/distribution.hpp"
#include "nn/layers.hpp"

namespace afp::rl {

struct PolicyConfig {
  int grid = 32;
  int in_channels = 6;
  int emb_dim = 32;  ///< R-GCN embedding width (node and graph)
  std::vector<int> conv_channels{16, 32, 32, 64, 64};
  std::vector<int> conv_strides{1, 1, 1, 1, 1};
  int feat_dim = 512;           ///< CNN FC output
  int policy_seed_channels = 32;  ///< policy FC reshaped to [C, 4, 4]
  std::vector<int> deconv_channels{32, 16, 8};  ///< 4 -> 8 -> 16 -> 32
  int value_hidden = 256;

  static PolicyConfig paper() { return {}; }
  /// CPU-friendly preset: two stride-2 convs, slim heads.
  static PolicyConfig fast();
};

/// Batched network output.
struct PolicyOutput {
  num::Tensor logits;  ///< [B, 3 * n * n]
  num::Tensor value;   ///< [B]
};

class ActorCritic final : public nn::Module {
 public:
  ActorCritic(const PolicyConfig& cfg, std::mt19937_64& rng);

  /// masks: [B, 6, n, n]; node_emb, graph_emb: [B, 32].
  PolicyOutput forward(const num::Tensor& masks, const num::Tensor& node_emb,
                       const num::Tensor& graph_emb) const;

  const PolicyConfig& config() const { return cfg_; }
  int action_space() const { return 3 * cfg_.grid * cfg_.grid; }

 private:
  friend void copy_parameters(const ActorCritic& src, ActorCritic& dst);

  PolicyConfig cfg_;
  std::vector<std::unique_ptr<nn::Conv2d>> convs_;
  std::unique_ptr<nn::Linear> feat_fc_;
  std::unique_ptr<nn::Linear> policy_fc_;
  std::vector<std::unique_ptr<nn::ConvTranspose2d>> deconvs_;
  std::unique_ptr<nn::Conv2d> logit_conv_;  ///< 1x1 -> 3 channels
  std::unique_ptr<nn::MLP> value_head_;
  int conv_out_hw_ = 0;  ///< spatial size after the conv stack
  int deconv_in_hw_ = 4; ///< policy seed spatial size
};

/// Copies all parameter values from `src` into `dst` (same architecture
/// required).  Used to fork a pre-trained agent before few-shot
/// fine-tuning so the base policy stays intact.
void copy_parameters(const ActorCritic& src, ActorCritic& dst);

}  // namespace afp::rl
