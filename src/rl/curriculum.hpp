// Hybrid curriculum learning schedule (Section IV-D5 / Fig. 6).
//
// Training circuits are presented in order of increasing complexity; each
// stage runs `episodes_per_circuit` episodes.  During the first half of a
// stage only the stage circuit (unconstrained) is used; in the second half
// a random already-seen circuit is sampled with probability p_circuit and
// constraints are switched on with probability p_constraint, preventing
// catastrophic forgetting while exposure grows.
#pragma once

#include <map>
#include <string>

#include "rl/task.hpp"

namespace afp::rl {

struct HclConfig {
  /// Circuit registry names in curriculum order (defaults to the paper's
  /// five training circuits: 3/5/8-block OTAs and 3/9-block bias).
  std::vector<std::string> circuits{"ota_small", "bias_small", "ota1",
                                    "ota2", "bias1"};
  int episodes_per_circuit = 4096;
  double p_circuit = 0.5;
  double p_constraint = 0.3;
};

class HclScheduler {
 public:
  HclScheduler(HclConfig cfg, const rgcn::RewardModel& encoder,
               std::mt19937_64& rng);

  /// Task for the next episode; advances the global episode counter.
  TaskContext next_task(std::mt19937_64& rng);

  int stage() const { return stage_; }
  long episode() const { return episode_; }
  bool finished() const {
    return episode_ >= static_cast<long>(cfg_.circuits.size()) *
                           cfg_.episodes_per_circuit;
  }
  /// Builds (and caches reference wirelength for) a named circuit.
  TaskContext build_task(const std::string& name, bool constrained,
                         std::mt19937_64& rng);

 private:
  HclConfig cfg_;
  const rgcn::RewardModel* encoder_;
  long episode_ = 0;
  int stage_ = 0;
  std::map<std::string, double> hpwl_cache_;
};

}  // namespace afp::rl
