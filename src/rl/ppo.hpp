// Masked Proximal Policy Optimization (Schulman et al. 2017) with GAE,
// invalid-action masking, gradient clipping and approximate-KL tracking,
// mirroring the Stable-Baselines3 configuration the paper uses.
#pragma once

#include <functional>
#include <memory>
#include <optional>

#include "env/env.hpp"
#include "env/vec_env.hpp"
#include "numeric/optim.hpp"
#include "rl/policy.hpp"
#include "rl/task.hpp"

namespace afp::rl {

struct PPOConfig {
  int n_envs = 16;       ///< parallel environments (paper: 16)
  int n_steps = 64;      ///< rollout length per env per iteration
  int epochs = 4;        ///< optimization passes over each rollout
  int minibatch = 128;
  float gamma = 0.99f;
  float gae_lambda = 0.95f;
  float clip = 0.2f;
  float lr = 3e-4f;
  float vf_coef = 0.5f;
  float ent_coef = 0.01f;
  float max_grad_norm = 0.5f;
};

/// Generalized Advantage Estimation over one environment stream.
/// rewards/values/dones have equal length; `last_value` bootstraps the
/// final transition when the stream ends mid-episode.  Returns
/// {advantages, returns} with returns[i] = advantages[i] + values[i].
struct GaeResult {
  std::vector<float> advantages;
  std::vector<float> returns;
};
GaeResult compute_gae(const std::vector<float>& rewards,
                      const std::vector<float>& values,
                      const std::vector<bool>& dones, float last_value,
                      float gamma, float gae_lambda);

/// Per-iteration training statistics (Fig. 6 plots the first two).
struct IterationStats {
  double mean_episode_reward = 0.0;  ///< over episodes finished this iter
  double approx_kl = 0.0;
  int episodes = 0;
  double policy_loss = 0.0;
  double value_loss = 0.0;
  double entropy = 0.0;
  double clip_fraction = 0.0;
  double violation_rate = 0.0;  ///< fraction of finished episodes violated
};

class PPOTrainer {
 public:
  /// The trainer owns a VecEnv with one FloorplanEnv per parallel slot;
  /// `tasks` supplies the initial circuit of each slot (recycled modulo
  /// size).  Rollouts step all slots concurrently on the shared thread
  /// pool (see env::VecEnv::step_all).
  PPOTrainer(ActorCritic& policy, std::vector<TaskContext> tasks,
             PPOConfig cfg = {}, env::EnvConfig env_cfg = {});

  /// Curriculum hook: consulted when env `i` finishes an episode; a
  /// returned task replaces that env's circuit.
  std::function<std::optional<TaskContext>(int env_index)> next_task;

  /// One PPO iteration: collect n_envs * n_steps transitions, then update.
  IterationStats iterate(std::mt19937_64& rng);

  /// Total episodes finished since construction.
  long episodes_done() const { return episodes_done_; }

  const PPOConfig& config() const { return cfg_; }

 private:
  struct Transition {
    std::vector<float> masks;
    std::vector<float> node_emb;
    std::vector<float> graph_emb;
    std::vector<float> action_mask;
    int action = 0;
    float logp = 0.0f;
    float value = 0.0f;
    float reward = 0.0f;
    bool done = false;
    int env = 0;
  };

  ActorCritic* policy_;
  PPOConfig cfg_;
  env::EnvConfig env_cfg_;
  std::vector<TaskContext> tasks_;
  /// Parallel slots; rollouts step all of them at once via step_all.
  std::unique_ptr<env::VecEnv> vec_;
  std::vector<env::Observation> obs_;
  std::vector<double> episode_reward_;
  std::unique_ptr<num::Adam> opt_;
  long episodes_done_ = 0;
};

}  // namespace afp::rl
