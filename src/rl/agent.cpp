#include "rl/agent.hpp"

#include <chrono>

namespace afp::rl {

EpisodeResult run_episode(const ActorCritic& policy, const TaskContext& task,
                          std::mt19937_64& rng, bool deterministic,
                          env::EnvConfig env_cfg) {
  const auto t0 = std::chrono::steady_clock::now();
  const int n = policy.config().grid;
  const int emb = rgcn::kEmbeddingDim;
  env::FloorplanEnv environment(task.instance, env_cfg);
  const int mc = environment.mask_channels();
  env::Observation obs = environment.reset();
  EpisodeResult result;

  num::NoGradGuard ng;
  while (!obs.done) {
    const float* nrow = task.node_row(obs.current_block);
    const auto out = policy.forward(
        num::Tensor::from_vector({1, mc, n, n}, obs.masks),
        num::Tensor::from_vector({1, emb},
                                 std::vector<float>(nrow, nrow + emb)),
        num::Tensor::from_vector({1, emb}, task.graph_emb));
    nn::MaskedCategorical dist(out.logits, obs.action_mask);
    const int action =
        deterministic ? dist.mode()[0] : dist.sample(rng)[0];
    env::StepResult res = environment.step(action);
    result.total_reward += res.reward;
    if (res.done) {
      result.violated = res.violated;
      if (res.final_eval) {
        result.eval = *res.final_eval;
        result.rects = environment.grid().rects();
      } else {
        result.eval.reward = res.reward;
        result.eval.constraints_ok = false;
      }
    }
    obs = std::move(res.obs);
    if (res.done) break;
  }
  result.runtime_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return result;
}

EpisodeResult best_of_episodes(const ActorCritic& policy,
                               const TaskContext& task, int attempts,
                               std::mt19937_64& rng,
                               env::EnvConfig env_cfg) {
  const auto t0 = std::chrono::steady_clock::now();
  EpisodeResult best;
  bool have = false;
  for (int k = 0; k < attempts; ++k) {
    EpisodeResult r =
        run_episode(policy, task, rng, /*deterministic=*/k == 0, env_cfg);
    const bool better =
        !have ||
        (!r.violated && best.violated) ||
        (r.violated == best.violated && r.eval.reward > best.eval.reward);
    if (better) {
      best = std::move(r);
      have = true;
    }
  }
  best.runtime_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return best;
}

std::vector<IterationStats> fine_tune(ActorCritic& policy,
                                      const TaskContext& task, long episodes,
                                      std::mt19937_64& rng, PPOConfig cfg,
                                      env::EnvConfig env_cfg) {
  PPOTrainer trainer(policy, {task}, cfg, env_cfg);
  std::vector<IterationStats> stats;
  while (trainer.episodes_done() < episodes) {
    stats.push_back(trainer.iterate(rng));
    // Guard against pathological configurations that never finish episodes.
    if (stats.size() > 10000) break;
  }
  return stats;
}

}  // namespace afp::rl
