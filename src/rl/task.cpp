#include "rl/task.hpp"

namespace afp::rl {

TaskContext make_task(const rgcn::RewardModel& encoder,
                      graphir::CircuitGraph graph, double hpwl_ref,
                      std::optional<double> target_aspect) {
  TaskContext task;
  task.instance = floorplan::make_instance(graph);
  if (hpwl_ref > 0.0) task.instance.hpwl_ref = hpwl_ref;
  task.instance.target_aspect = target_aspect;
  {
    num::NoGradGuard ng;
    const auto enc = encoder.encode(graph);
    task.node_emb = enc.node_embeddings.values();
    task.graph_emb = enc.graph_embedding.values();
  }
  task.graph = std::move(graph);
  return task;
}

}  // namespace afp::rl
