// Inference and fine-tuning helpers around the trained agent:
// zero-shot episode rollout (Table I columns "0-shot") and k-episode
// fine-tuning (the "1/100/1000-shot" columns).
#pragma once

#include "rl/ppo.hpp"

namespace afp::rl {

struct EpisodeResult {
  floorplan::Evaluation eval;
  std::vector<geom::Rect> rects;
  double total_reward = 0.0;
  bool violated = false;
  double runtime_s = 0.0;
};

/// Runs one greedy (or sampled) episode of `policy` on `task`.
/// `deterministic` picks argmax actions; otherwise actions are sampled.
EpisodeResult run_episode(const ActorCritic& policy, const TaskContext& task,
                          std::mt19937_64& rng, bool deterministic = true,
                          env::EnvConfig env_cfg = {});

/// Best of `attempts` sampled episodes (first attempt is deterministic);
/// mirrors how a fine-tuned agent is queried for a single floorplan.
EpisodeResult best_of_episodes(const ActorCritic& policy,
                               const TaskContext& task, int attempts,
                               std::mt19937_64& rng,
                               env::EnvConfig env_cfg = {});

/// Continues PPO training of `policy` on a single circuit until roughly
/// `episodes` more episodes have finished (few-shot fine-tuning).
/// Returns per-iteration stats.
std::vector<IterationStats> fine_tune(ActorCritic& policy,
                                      const TaskContext& task, long episodes,
                                      std::mt19937_64& rng,
                                      PPOConfig cfg = {},
                                      env::EnvConfig env_cfg = {});

}  // namespace afp::rl
