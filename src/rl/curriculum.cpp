#include "rl/curriculum.hpp"

#include <algorithm>
#include <stdexcept>

#include "metaheur/baselines.hpp"
#include "netlist/library.hpp"

namespace afp::rl {

namespace {

const netlist::CircuitEntry& find_entry(const std::string& name) {
  for (const auto& e : netlist::circuit_registry()) {
    if (e.name == name) return e;
  }
  throw std::invalid_argument("HclScheduler: unknown circuit " + name);
}

}  // namespace

HclScheduler::HclScheduler(HclConfig cfg, const rgcn::RewardModel& encoder,
                           std::mt19937_64& rng)
    : cfg_(std::move(cfg)), encoder_(&encoder) {
  if (cfg_.circuits.empty()) {
    throw std::invalid_argument("HclScheduler: empty curriculum");
  }
  (void)rng;
}

TaskContext HclScheduler::build_task(const std::string& name, bool constrained,
                                     std::mt19937_64& rng) {
  const auto& entry = find_entry(name);
  netlist::Netlist nl = entry.make();
  const auto rec = structrec::recognize(nl);
  graphir::CircuitGraph g = graphir::build_graph(nl, rec);
  if (constrained) {
    graphir::apply_constraints(g, graphir::default_constraints(g));
  } else {
    graphir::apply_constraints(g, {});
  }
  auto it = hpwl_cache_.find(name);
  if (it == hpwl_cache_.end()) {
    floorplan::Instance probe = floorplan::make_instance(g);
    const double ref = metaheur::estimate_hpwl_min(probe, rng, 1500);
    it = hpwl_cache_.emplace(name, ref).first;
  }
  return make_task(*encoder_, std::move(g), it->second);
}

TaskContext HclScheduler::next_task(std::mt19937_64& rng) {
  const int num_stages = static_cast<int>(cfg_.circuits.size());
  stage_ = std::min<int>(
      num_stages - 1,
      static_cast<int>(episode_ / cfg_.episodes_per_circuit));
  const long in_stage = episode_ % cfg_.episodes_per_circuit;
  ++episode_;

  std::uniform_real_distribution<double> unif(0.0, 1.0);
  std::string name = cfg_.circuits[static_cast<std::size_t>(stage_)];
  bool constrained = false;
  if (in_stage >= cfg_.episodes_per_circuit / 2) {
    // Second half: interleave previously seen circuits and constraints.
    if (unif(rng) < cfg_.p_circuit) {
      std::uniform_int_distribution<int> pick(0, stage_);
      name = cfg_.circuits[static_cast<std::size_t>(pick(rng))];
    }
    constrained = unif(rng) < cfg_.p_constraint;
  }
  return build_task(name, constrained, rng);
}

}  // namespace afp::rl
