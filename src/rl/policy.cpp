#include "rl/policy.hpp"

#include <stdexcept>

namespace afp::rl {

PolicyConfig PolicyConfig::fast() {
  PolicyConfig cfg;
  cfg.conv_channels = {8, 16};
  cfg.conv_strides = {2, 2};
  cfg.feat_dim = 128;
  cfg.policy_seed_channels = 8;
  cfg.deconv_channels = {8, 8, 4};
  cfg.value_hidden = 64;
  return cfg;
}

ActorCritic::ActorCritic(const PolicyConfig& cfg, std::mt19937_64& rng)
    : cfg_(cfg) {
  if (cfg.conv_channels.size() != cfg.conv_strides.size()) {
    throw std::invalid_argument("ActorCritic: conv channel/stride mismatch");
  }
  // The deconv chain doubles a 4x4 seed per layer and must land on the
  // grid resolution.
  int up = deconv_in_hw_;
  for (std::size_t i = 0; i < cfg.deconv_channels.size(); ++i) up *= 2;
  if (up != cfg.grid) {
    throw std::invalid_argument(
        "ActorCritic: deconv chain does not reach the grid size");
  }

  int ch = cfg.in_channels;
  int hw = cfg.grid;
  for (std::size_t i = 0; i < cfg.conv_channels.size(); ++i) {
    const int stride = cfg.conv_strides[i];
    convs_.push_back(std::make_unique<nn::Conv2d>(
        ch, cfg.conv_channels[i], /*kernel=*/3, stride, /*pad=*/1, rng));
    register_module("conv" + std::to_string(i), convs_.back().get());
    ch = cfg.conv_channels[i];
    hw = (hw + 2 - 3) / stride + 1;
  }
  conv_out_hw_ = hw;
  feat_fc_ = std::make_unique<nn::Linear>(ch * hw * hw, cfg.feat_dim, rng);
  register_module("feat_fc", feat_fc_.get());

  const int state_dim = 2 * cfg.emb_dim + cfg.feat_dim;
  policy_fc_ = std::make_unique<nn::Linear>(
      state_dim, cfg.policy_seed_channels * deconv_in_hw_ * deconv_in_hw_, rng);
  register_module("policy_fc", policy_fc_.get());

  int dch = cfg.policy_seed_channels;
  for (std::size_t i = 0; i < cfg.deconv_channels.size(); ++i) {
    deconvs_.push_back(std::make_unique<nn::ConvTranspose2d>(
        dch, cfg.deconv_channels[i], /*kernel=*/4, /*stride=*/2, /*pad=*/1,
        rng));
    register_module("deconv" + std::to_string(i), deconvs_.back().get());
    dch = cfg.deconv_channels[i];
  }
  logit_conv_ = std::make_unique<nn::Conv2d>(dch, 3, /*kernel=*/1,
                                             /*stride=*/1, /*pad=*/0, rng);
  register_module("logit_conv", logit_conv_.get());

  value_head_ = std::make_unique<nn::MLP>(
      std::vector<int>{state_dim, cfg.value_hidden, 1}, nn::Activation::kRelu,
      nn::Activation::kNone, rng);
  register_module("value_head", value_head_.get());
}

PolicyOutput ActorCritic::forward(const num::Tensor& masks,
                                  const num::Tensor& node_emb,
                                  const num::Tensor& graph_emb) const {
  const int b = masks.shape()[0];
  num::Tensor x = masks;
  for (const auto& conv : convs_) {
    x = num::relu(conv->forward(x));
  }
  x = num::reshape(x, {b, static_cast<int>(x.size() / b)});
  num::Tensor feat = feat_fc_->forward_relu(x);
  num::Tensor state = num::concat_cols({node_emb, graph_emb, feat});

  num::Tensor p = policy_fc_->forward_relu(state);
  p = num::reshape(p, {b, cfg_.policy_seed_channels, deconv_in_hw_,
                       deconv_in_hw_});
  for (const auto& deconv : deconvs_) {
    p = num::relu(deconv->forward(p));
  }
  p = logit_conv_->forward(p);  // [B, 3, n, n]
  PolicyOutput out;
  out.logits = num::reshape(p, {b, action_space()});
  num::Tensor v = value_head_->forward(state);  // [B, 1]
  out.value = num::reshape(v, {b});
  return out;
}

void copy_parameters(const ActorCritic& src, ActorCritic& dst) {
  const auto sp = src.named_parameters();
  auto dp = dst.named_parameters();
  if (sp.size() != dp.size()) {
    throw std::invalid_argument("copy_parameters: architecture mismatch");
  }
  for (auto& [name, t] : dp) {
    const auto it = sp.find(name);
    if (it == sp.end() || it->second.shape() != t.shape()) {
      throw std::invalid_argument("copy_parameters: mismatch at " + name);
    }
    t.values() = it->second.values();
  }
}

}  // namespace afp::rl
