// R-GCN circuit reward model (paper Fig. 3): four R-GCN layers producing
// 32-dim node embeddings, mean aggregation into a graph embedding, and a
// five-layer fully connected head regressing the floorplan reward.
//
// After pre-training, the FC head is dropped and the remaining network is
// used as a frozen circuit encoder for the RL agent (Section IV-D).
#pragma once

#include <random>

#include "graphir/graph.hpp"
#include "nn/rgcn_layer.hpp"

namespace afp::rgcn {

constexpr int kEmbeddingDim = 32;

/// Node + graph embeddings of one circuit.
struct CircuitEncoding {
  num::Tensor node_embeddings;   ///< [N, 32]
  num::Tensor graph_embedding;   ///< [1, 32]
};

class RewardModel final : public nn::Module {
 public:
  explicit RewardModel(std::mt19937_64& rng);

  /// Encoder part: 4 R-GCN layers + mean aggregation.
  CircuitEncoding encode(const graphir::CircuitGraph& g) const;

  /// Full forward: encoder + FC head -> scalar reward prediction [1, 1].
  num::Tensor predict(const graphir::CircuitGraph& g) const;

  /// Encoder-only parameters (for freezing checks / fine-tuning splits).
  std::vector<num::Tensor> encoder_parameters() const;

 private:
  std::unique_ptr<nn::RGCNLayer> l1_, l2_, l3_, l4_;
  std::unique_ptr<nn::MLP> head_;  ///< 5 FC layers: 32-64-64-32-16-1
};

/// One supervised sample: a circuit graph (with constraint relations
/// materialized) and the reward achieved by a metaheuristic floorplanner.
struct Sample {
  graphir::CircuitGraph graph;
  double reward = 0.0;
};

/// Training statistics per epoch.
struct TrainStats {
  double mse = 0.0;
};

/// Generates a pre-training dataset following Section IV-C: for every
/// registry circuit, size-perturbed variants are floorplanned by a mixture
/// of SA / GA / PSO under varying budgets, with and without constraints,
/// and labeled with the achieved Eq. (5) reward.
std::vector<Sample> generate_dataset(int samples_per_circuit,
                                     std::mt19937_64& rng);

/// Minimizes MSE between predicted and ground-truth reward with Adam.
/// Returns per-epoch stats.
std::vector<TrainStats> train_reward_model(RewardModel& model,
                                           const std::vector<Sample>& data,
                                           int epochs, float lr,
                                           std::mt19937_64& rng);

}  // namespace afp::rgcn
