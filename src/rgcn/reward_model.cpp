#include "rgcn/reward_model.hpp"

#include <algorithm>

#include "metaheur/baselines.hpp"
#include "netlist/library.hpp"
#include "numeric/optim.hpp"

namespace afp::rgcn {

RewardModel::RewardModel(std::mt19937_64& rng) {
  using nn::Activation;
  const int f = graphir::kNodeFeatureDim;
  const int r = graphir::kNumRelations;
  l1_ = std::make_unique<nn::RGCNLayer>(f, kEmbeddingDim, r,
                                        Activation::kRelu, rng);
  l2_ = std::make_unique<nn::RGCNLayer>(kEmbeddingDim, kEmbeddingDim, r,
                                        Activation::kRelu, rng);
  l3_ = std::make_unique<nn::RGCNLayer>(kEmbeddingDim, kEmbeddingDim, r,
                                        Activation::kRelu, rng);
  l4_ = std::make_unique<nn::RGCNLayer>(kEmbeddingDim, kEmbeddingDim, r,
                                        Activation::kRelu, rng);
  head_ = std::make_unique<nn::MLP>(std::vector<int>{kEmbeddingDim, 64, 64, 32, 16, 1},
                                    Activation::kRelu, Activation::kNone, rng);
  register_module("rgcn1", l1_.get());
  register_module("rgcn2", l2_.get());
  register_module("rgcn3", l3_.get());
  register_module("rgcn4", l4_.get());
  register_module("head", head_.get());
}

CircuitEncoding RewardModel::encode(const graphir::CircuitGraph& g) const {
  // Sparse message passing: circuit graphs have E << N^2.
  const auto adj = g.adjacency_csr();
  num::Tensor h = g.feature_matrix();
  h = l1_->forward(h, adj);
  h = l2_->forward(h, adj);
  h = l3_->forward(h, adj);
  h = l4_->forward(h, adj);
  CircuitEncoding enc;
  enc.node_embeddings = h;
  enc.graph_embedding = num::mean_axis0(h);
  return enc;
}

num::Tensor RewardModel::predict(const graphir::CircuitGraph& g) const {
  return head_->forward(encode(g).graph_embedding);
}

std::vector<num::Tensor> RewardModel::encoder_parameters() const {
  std::vector<num::Tensor> out;
  for (const auto* layer : {l1_.get(), l2_.get(), l3_.get(), l4_.get()}) {
    const auto p = layer->parameters();
    out.insert(out.end(), p.begin(), p.end());
  }
  return out;
}

std::vector<Sample> generate_dataset(int samples_per_circuit,
                                     std::mt19937_64& rng) {
  std::vector<Sample> data;
  std::uniform_real_distribution<double> unif(0.0, 1.0);
  for (const auto& entry : netlist::circuit_registry()) {
    for (int k = 0; k < samples_per_circuit; ++k) {
      netlist::Netlist nl = entry.make();
      if (k > 0) nl = netlist::perturb_sizes(nl, rng);
      const auto rec = structrec::recognize(nl);
      graphir::CircuitGraph g = graphir::build_graph(nl, rec);
      // Balance constrained and unconstrained floorplans (Section IV-C).
      if (unif(rng) < 0.5) {
        graphir::apply_constraints(g, graphir::default_constraints(g));
      } else {
        graphir::apply_constraints(g, {});
      }
      floorplan::Instance inst = floorplan::make_instance(g);

      // Mixture of SA / GA / PSO with randomized budgets to spread the
      // achieved-reward distribution.
      metaheur::BaselineResult res;
      const double pick = unif(rng);
      if (pick < 0.4) {
        metaheur::SAParams p;
        p.iterations = 200 + static_cast<int>(unif(rng) * 1200);
        res = metaheur::run_sa(inst, p, rng);
      } else if (pick < 0.7) {
        metaheur::GAParams p;
        p.population = 12;
        p.generations = 8 + static_cast<int>(unif(rng) * 24);
        res = metaheur::run_ga(inst, p, rng);
      } else {
        metaheur::PSOParams p;
        p.particles = 10;
        p.iterations = 8 + static_cast<int>(unif(rng) * 24);
        res = metaheur::run_pso(inst, p, rng);
      }
      data.push_back({std::move(g), res.eval.reward});
    }
  }
  return data;
}

std::vector<TrainStats> train_reward_model(RewardModel& model,
                                           const std::vector<Sample>& data,
                                           int epochs, float lr,
                                           std::mt19937_64& rng) {
  num::Adam opt(model.parameters(), lr);
  std::vector<TrainStats> stats;
  std::vector<int> order(data.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int>(i);
  for (int e = 0; e < epochs; ++e) {
    std::shuffle(order.begin(), order.end(), rng);
    double mse = 0.0;
    for (int idx : order) {
      const Sample& s = data[static_cast<std::size_t>(idx)];
      opt.zero_grad();
      num::Tensor pred = model.predict(s.graph);
      num::Tensor target =
          num::Tensor::scalar(static_cast<float>(s.reward));
      num::Tensor loss =
          num::mse_loss(num::reshape(pred, {1}), target);
      loss.backward();
      opt.clip_grad_norm(5.0);
      opt.step();
      mse += loss.item();
    }
    stats.push_back({mse / std::max<std::size_t>(1, data.size())});
  }
  return stats;
}

}  // namespace afp::rgcn
