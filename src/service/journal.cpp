#include "service/journal.hpp"

#include <fstream>
#include <stdexcept>

#include "numeric/serialize.hpp"

namespace afp::service {

namespace {

/// One entry as u64 words: [job, seed, identity, name_len, name bytes
/// packed little-endian 8 per word].  The name length is in bytes; the
/// final word is zero-padded.
std::vector<std::uint64_t> pack_entry(const JournalEntry& e) {
  std::vector<std::uint64_t> words = {e.job, e.seed, e.identity,
                                      static_cast<std::uint64_t>(e.name.size())};
  for (std::size_t i = 0; i < e.name.size(); i += 8) {
    std::uint64_t w = 0;
    for (std::size_t b = 0; b < 8 && i + b < e.name.size(); ++b) {
      w |= static_cast<std::uint64_t>(
               static_cast<unsigned char>(e.name[i + b]))
           << (8 * b);
    }
    words.push_back(w);
  }
  return words;
}

JournalEntry unpack_entry(const std::string& key,
                          const std::vector<std::uint64_t>& words) {
  if (words.size() < 4) {
    throw std::runtime_error("journal: truncated entry " + key);
  }
  JournalEntry e;
  e.job = words[0];
  e.seed = words[1];
  e.identity = words[2];
  const std::size_t len = static_cast<std::size_t>(words[3]);
  if (words.size() != 4 + (len + 7) / 8 || len > (1u << 20)) {
    throw std::runtime_error("journal: malformed entry " + key);
  }
  e.name.reserve(len);
  for (std::size_t i = 0; i < len; ++i) {
    e.name.push_back(static_cast<char>(
        (words[4 + i / 8] >> (8 * (i % 8))) & 0xFF));
  }
  return e;
}

}  // namespace

void journal_write(const std::string& path,
                   const std::map<std::uint64_t, JournalEntry>& entries) {
  num::WordMap words;
  for (const auto& [job, e] : entries) {
    words["j" + std::to_string(job)] = pack_entry(e);
  }
  // An empty journal still writes a marker entry so load can tell "clean
  // empty journal" from "never created" without stat-ing around races.
  words["journal_meta"] = {1ull};
  num::save_words(path, words);
}

std::map<std::uint64_t, JournalEntry> journal_load(const std::string& path) {
  std::map<std::uint64_t, JournalEntry> out;
  {
    std::ifstream probe(path, std::ios::binary);
    if (!probe.good()) return out;
  }
  const num::WordMap words = num::load_words(path);
  for (const auto& [key, value] : words) {
    if (key == "journal_meta") continue;
    JournalEntry e = unpack_entry(key, value);
    out[e.job] = std::move(e);
  }
  return out;
}

std::vector<JournalEntry> Journal::take_orphans() {
  if (!enabled()) return {};
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<JournalEntry> orphans;
  for (auto& [job, e] : journal_load(path_)) orphans.push_back(std::move(e));
  live_.clear();
  journal_write(path_, live_);
  return orphans;
}

void Journal::record(const JournalEntry& e) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mu_);
  live_[e.job] = e;
  journal_write(path_, live_);
}

void Journal::remove(std::uint64_t job) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mu_);
  if (live_.erase(job) == 0) return;
  journal_write(path_, live_);
}

std::size_t Journal::live() const {
  std::lock_guard<std::mutex> lock(mu_);
  return live_.size();
}

}  // namespace afp::service
