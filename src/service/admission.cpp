#include "service/admission.hpp"

#include <algorithm>

namespace afp::service {

bool AdmissionQueue::open_session(std::uint64_t session) {
  std::lock_guard<std::mutex> lock(mu_);
  if (draining_ ||
      sessions_.size() >= static_cast<std::size_t>(cfg_.max_sessions)) {
    return false;
  }
  sessions_.emplace(session, SessionState{});
  return true;
}

std::vector<std::uint64_t> AdmissionQueue::close_session(
    std::uint64_t session) {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::uint64_t> dropped;
  auto it = sessions_.find(session);
  if (it == sessions_.end()) return dropped;
  for (auto p = parked_.begin(); p != parked_.end();) {
    if (p->session == session) {
      dropped.push_back(p->job);
      owner_.erase(p->job);
      --it->second.outstanding;
      p = parked_.erase(p);
    } else {
      ++p;
    }
  }
  // Running jobs stay in owner_ until the server releases them — their
  // in-flight slots must not leak just because the client went away.
  sessions_.erase(it);
  return dropped;
}

AdmissionQueue::Verdict AdmissionQueue::admit(std::uint64_t session,
                                              std::uint64_t job, int priority,
                                              std::string* reason) {
  std::lock_guard<std::mutex> lock(mu_);
  if (draining_) {
    if (reason) *reason = "draining: the server is shutting down";
    return Verdict::kRejected;
  }
  auto it = sessions_.find(session);
  if (it == sessions_.end()) {
    if (reason) *reason = "unknown session";
    return Verdict::kRejected;
  }
  if (it->second.outstanding >= cfg_.per_session) {
    if (reason) {
      *reason = "session quota exceeded (" + std::to_string(cfg_.per_session) +
                " outstanding jobs)";
    }
    return Verdict::kRejected;
  }
  if (inflight_ < static_cast<std::size_t>(cfg_.max_inflight)) {
    ++inflight_;
    ++it->second.outstanding;
    owner_[job] = session;
    return Verdict::kRun;
  }
  if (parked_.size() >= static_cast<std::size_t>(cfg_.max_parked)) {
    if (reason) {
      *reason = "wait queue full (" + std::to_string(cfg_.max_parked) +
                " parked jobs)";
    }
    return Verdict::kRejected;
  }
  ++it->second.outstanding;
  owner_[job] = session;
  parked_.push_back(Parked{job, session, priority, next_seq_++});
  return Verdict::kParked;
}

std::vector<std::uint64_t> AdmissionQueue::release(std::uint64_t job) {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::uint64_t> launch;
  const auto o = owner_.find(job);
  if (o == owner_.end()) return launch;
  // The job may still be parked (cancelled before launch): drop it from the
  // wait queue instead of freeing an in-flight slot it never held.
  bool was_parked = false;
  for (auto p = parked_.begin(); p != parked_.end(); ++p) {
    if (p->job == job) {
      parked_.erase(p);
      was_parked = true;
      break;
    }
  }
  if (!was_parked && inflight_ > 0) --inflight_;
  auto s = sessions_.find(o->second);
  if (s != sessions_.end() && s->second.outstanding > 0) {
    --s->second.outstanding;
  }
  owner_.erase(o);
  while (inflight_ < static_cast<std::size_t>(cfg_.max_inflight) &&
         !parked_.empty()) {
    // Highest priority wins; FIFO (lowest seq) inside a priority class.
    auto best = parked_.begin();
    for (auto p = std::next(parked_.begin()); p != parked_.end(); ++p) {
      if (p->priority > best->priority ||
          (p->priority == best->priority && p->seq < best->seq)) {
        best = p;
      }
    }
    launch.push_back(best->job);
    ++inflight_;
    parked_.erase(best);
  }
  return launch;
}

void AdmissionQueue::begin_drain() {
  std::lock_guard<std::mutex> lock(mu_);
  draining_ = true;
}

bool AdmissionQueue::draining() const {
  std::lock_guard<std::mutex> lock(mu_);
  return draining_;
}

std::size_t AdmissionQueue::outstanding() const {
  std::lock_guard<std::mutex> lock(mu_);
  return owner_.size();
}

bool AdmissionQueue::record_strike(std::uint64_t session) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sessions_.find(session);
  if (it == sessions_.end()) return false;
  ++strikes_total_;
  ++it->second.strikes;
  if (cfg_.strike_limit > 0 && it->second.strikes >= cfg_.strike_limit) {
    ++ejections_total_;
    return true;
  }
  return false;
}

std::size_t AdmissionQueue::num_sessions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sessions_.size();
}

std::size_t AdmissionQueue::num_inflight() const {
  std::lock_guard<std::mutex> lock(mu_);
  return inflight_;
}

std::size_t AdmissionQueue::num_parked() const {
  std::lock_guard<std::mutex> lock(mu_);
  return parked_.size();
}

std::uint64_t AdmissionQueue::total_strikes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return strikes_total_;
}

std::uint64_t AdmissionQueue::total_strike_ejections() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ejections_total_;
}

}  // namespace afp::service
