// Admission control for afpd: who gets a session, which submitted jobs run
// now, which wait, and in what order the waiters launch.
//
// Pure bookkeeping behind one mutex — no threads, no sockets, no job
// execution — so the policy is unit-testable in isolation and the server
// only ever asks three questions:
//
//   * admit(session, job, priority)  -> run now / parked / rejected,
//   * release(job)                   -> which parked jobs launch next,
//   * close_session(session)        -> which parked jobs die with it.
//
// Policy:
//   * at most cfg.max_sessions concurrent sessions (open_session),
//   * at most cfg.per_session outstanding (parked + running) jobs per
//     session — the quota; an over-quota submit is REJECTED
//     (resource_exhausted), not parked, so one greedy client cannot grow
//     the wait queue without bound,
//   * at most cfg.max_inflight jobs running at once; further admits park,
//   * at most cfg.max_parked parked jobs total (back-pressure cap),
//   * parked jobs launch by (priority desc, arrival seq asc) — strict and
//     deterministic, no aging,
//   * begin_drain(): every later admit is rejected (kResourceExhausted,
//     "draining"); already-parked jobs still launch and finish,
//   * malformed-request strikes: record_strike(session) counts protocol
//     violations per session; hitting cfg.strike_limit says "eject" — the
//     server closes the session, so a client flooding garbage burns its own
//     session slot instead of the daemon's parser time.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace afp::service {

struct AdmissionConfig {
  int max_sessions = 16;  ///< concurrent client sessions (AFPD_MAX_SESSIONS)
  int max_inflight = 2;   ///< jobs running at once (AFPD_MAX_INFLIGHT)
  int per_session = 8;    ///< outstanding jobs per session (AFPD_SESSION_QUOTA)
  int max_parked = 256;   ///< total parked jobs across sessions
  /// Malformed requests a session survives before it is ejected
  /// (AFPD_STRIKE_LIMIT); 0 disables the limit.  Framing-level damage
  /// (bad length prefix) still closes the session immediately — strikes
  /// only meter violations the parser can recover from.
  int strike_limit = 16;
};

class AdmissionQueue {
 public:
  explicit AdmissionQueue(AdmissionConfig cfg) : cfg_(cfg) {}

  enum class Verdict { kRun, kParked, kRejected };

  /// True when a new session may open (and counts it); false at capacity.
  bool open_session(std::uint64_t session);
  /// Forgets the session; returns the parked jobs that die with it (their
  /// running siblings are the server's problem — it cancels them).
  std::vector<std::uint64_t> close_session(std::uint64_t session);

  /// Decides one submit.  kRun: launch immediately (counted in-flight).
  /// kParked: hold; a later release() returns it.  kRejected: quota or
  /// capacity; `reason` says which.
  Verdict admit(std::uint64_t session, std::uint64_t job, int priority,
                std::string* reason);

  /// Records a terminal job (running or parked — cancellation of a parked
  /// job releases it too) and pops parked jobs, highest (priority, -seq)
  /// first, while in-flight capacity allows.  The returned jobs are now
  /// counted in-flight; the server must launch each one.
  std::vector<std::uint64_t> release(std::uint64_t job);

  /// After this every admit() is rejected with reason "draining".
  void begin_drain();
  bool draining() const;

  /// Outstanding (parked + running) jobs, across all sessions.
  std::size_t outstanding() const;

  /// Counts one malformed request against the session; true = the session
  /// hit the strike limit and must be ejected.  Unknown sessions (already
  /// closed) never eject.
  bool record_strike(std::uint64_t session);

  // Instantaneous gauges / monotonic totals for the `stats` request.
  std::size_t num_sessions() const;
  std::size_t num_inflight() const;
  std::size_t num_parked() const;
  std::uint64_t total_strikes() const;
  std::uint64_t total_strike_ejections() const;

 private:
  struct Parked {
    std::uint64_t job;
    std::uint64_t session;
    int priority;
    std::uint64_t seq;
  };
  struct SessionState {
    int outstanding = 0;
    int strikes = 0;
  };

  AdmissionConfig cfg_;
  mutable std::mutex mu_;
  std::map<std::uint64_t, SessionState> sessions_;
  std::vector<Parked> parked_;
  /// job -> owning session, for every admitted (parked or running) job.
  std::map<std::uint64_t, std::uint64_t> owner_;
  std::size_t inflight_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t strikes_total_ = 0;
  std::uint64_t ejections_total_ = 0;
  bool draining_ = false;
};

}  // namespace afp::service
