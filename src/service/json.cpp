#include "service/json.hpp"

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <cstring>

namespace afp::service {

JsonValue JsonValue::make_bool(bool b) {
  JsonValue v;
  v.type_ = Type::kBool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::make_number(double d) {
  JsonValue v;
  v.type_ = Type::kNumber;
  v.num_ = d;
  return v;
}

JsonValue JsonValue::make_string(std::string s) {
  JsonValue v;
  v.type_ = Type::kString;
  v.str_ = std::move(s);
  return v;
}

JsonValue JsonValue::make_array(std::vector<JsonValue> items) {
  JsonValue v;
  v.type_ = Type::kArray;
  v.arr_ = std::move(items);
  return v;
}

JsonValue JsonValue::make_object(
    std::vector<std::pair<std::string, JsonValue>> m) {
  JsonValue v;
  v.type_ = Type::kObject;
  v.obj_ = std::move(m);
  return v;
}

namespace {
[[noreturn]] void type_error(const char* want, JsonValue::Type got) {
  static const char* names[] = {"null",   "bool",  "number",
                                "string", "array", "object"};
  throw JsonError(0, std::string("expected ") + want + ", got " +
                         names[static_cast<int>(got)]);
}
}  // namespace

bool JsonValue::as_bool() const {
  if (type_ != Type::kBool) type_error("bool", type_);
  return bool_;
}

double JsonValue::as_number() const {
  if (type_ != Type::kNumber) type_error("number", type_);
  return num_;
}

const std::string& JsonValue::as_string() const {
  if (type_ != Type::kString) type_error("string", type_);
  return str_;
}

const std::vector<JsonValue>& JsonValue::as_array() const {
  if (type_ != Type::kArray) type_error("array", type_);
  return arr_;
}

const std::vector<std::pair<std::string, JsonValue>>& JsonValue::members()
    const {
  if (type_ != Type::kObject) type_error("object", type_);
  return obj_;
}

const JsonValue* JsonValue::find(const std::string& key) const {
  if (type_ != Type::kObject) type_error("object", type_);
  for (const auto& [k, v] : obj_) {
    if (k == key) return &v;
  }
  return nullptr;
}

const JsonValue& JsonValue::at(const std::string& key) const {
  const JsonValue* v = find(key);
  if (!v) throw JsonError(0, "missing required member \"" + key + "\"");
  return *v;
}

std::uint64_t JsonValue::as_uint(const std::string& what) const {
  const double d = as_number();
  if (!(d >= 0.0) || d != std::floor(d) || d > 1.8446744073709552e19) {
    throw JsonError(0, what + " must be a non-negative integer");
  }
  return static_cast<std::uint64_t>(d);
}

long long JsonValue::as_int(const std::string& what) const {
  const double d = as_number();
  if (d != std::floor(d) || d < -9.007199254740992e15 ||
      d > 9.007199254740992e15) {
    throw JsonError(0, what + " must be an integer");
  }
  return static_cast<long long>(d);
}

namespace {

/// Recursive-descent parser over a string_view; positions are byte offsets
/// into the original input for error messages.
class Parser {
 public:
  Parser(std::string_view text, int max_depth)
      : text_(text), max_depth_(max_depth) {}

  JsonValue parse_document() {
    skip_ws();
    JsonValue v = parse_value(0);
    skip_ws();
    if (pos_ != text_.size()) {
      throw JsonError(pos_, "trailing characters after the document");
    }
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw JsonError(pos_, why);
  }

  char peek() const {
    if (pos_ >= text_.size()) throw JsonError(pos_, "unexpected end of input");
    return text_[pos_];
  }

  char take() {
    const char c = peek();
    ++pos_;
    return c;
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  void expect(char c) {
    if (!consume(c)) fail(std::string("expected '") + c + "'");
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else {
        break;
      }
    }
  }

  void expect_literal(const char* lit) {
    const std::size_t n = std::strlen(lit);
    if (text_.size() - pos_ < n || text_.compare(pos_, n, lit) != 0) {
      fail(std::string("invalid literal (expected '") + lit + "')");
    }
    pos_ += n;
  }

  JsonValue parse_value(int depth) {
    if (depth > max_depth_) fail("nesting too deep");
    switch (peek()) {
      case 'n': expect_literal("null"); return JsonValue{};
      case 't': expect_literal("true"); return JsonValue::make_bool(true);
      case 'f': expect_literal("false"); return JsonValue::make_bool(false);
      case '"': return JsonValue::make_string(parse_string());
      case '[': return parse_array(depth);
      case '{': return parse_object(depth);
      default: return parse_number();
    }
  }

  JsonValue parse_array(int depth) {
    expect('[');
    std::vector<JsonValue> items;
    skip_ws();
    if (consume(']')) return JsonValue::make_array(std::move(items));
    for (;;) {
      skip_ws();
      items.push_back(parse_value(depth + 1));
      skip_ws();
      if (consume(']')) break;
      expect(',');
    }
    return JsonValue::make_array(std::move(items));
  }

  JsonValue parse_object(int depth) {
    expect('{');
    std::vector<std::pair<std::string, JsonValue>> members;
    skip_ws();
    if (consume('}')) return JsonValue::make_object(std::move(members));
    for (;;) {
      skip_ws();
      if (peek() != '"') fail("object keys must be strings");
      std::string key = parse_string();
      for (const auto& [k, v] : members) {
        if (k == key) fail("duplicate object key \"" + key + "\"");
      }
      skip_ws();
      expect(':');
      skip_ws();
      members.emplace_back(std::move(key), parse_value(depth + 1));
      skip_ws();
      if (consume('}')) break;
      expect(',');
    }
    return JsonValue::make_object(std::move(members));
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      const char c = take();
      if (c == '"') return out;
      if (c == '\\') {
        const char e = take();
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': out += parse_unicode_escape(); break;
          default: fail("invalid escape sequence");
        }
      } else if (static_cast<unsigned char>(c) < 0x20) {
        fail("unescaped control character in string");
      } else {
        out += c;  // UTF-8 bytes pass through untouched
      }
    }
  }

  /// \uXXXX (BMP only — report emission never writes surrogate pairs, and
  /// a lone surrogate is rejected rather than smuggled through).
  std::string parse_unicode_escape() {
    unsigned cp = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = take();
      cp <<= 4;
      if (c >= '0' && c <= '9') {
        cp |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        cp |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        cp |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        fail("invalid \\u escape");
      }
    }
    if (cp >= 0xD800 && cp <= 0xDFFF) fail("surrogate \\u escape");
    // Encode the code point as UTF-8.
    std::string out;
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xC0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      out += static_cast<char>(0xE0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    }
    return out;
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (consume('-')) {
      // fallthrough: digits must follow
    }
    if (pos_ >= text_.size() || !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      fail("invalid number");
    }
    // Grammar check first (strtod accepts hex, inf, nan — JSON does not).
    if (text_[pos_] == '0' && pos_ + 1 < text_.size() &&
        std::isdigit(static_cast<unsigned char>(text_[pos_ + 1]))) {
      fail("leading zero in number");
    }
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    if (consume('.')) {
      if (pos_ >= text_.size() ||
          !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        fail("digits must follow the decimal point");
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ >= text_.size() ||
          !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        fail("digits must follow the exponent");
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    const std::string token(text_.substr(start, pos_ - start));
    errno = 0;
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) fail("invalid number");
    if (errno == ERANGE && !std::isfinite(v)) fail("number out of range");
    return JsonValue::make_number(v);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  int max_depth_;
};

}  // namespace

JsonValue json_parse(std::string_view text, int max_depth) {
  return Parser(text, max_depth).parse_document();
}

}  // namespace afp::service
