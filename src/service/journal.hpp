// Crash-recovery journal for afpd: every accepted-but-unfinished job is
// recorded on disk so a daemon killed mid-job can, on restart, surface the
// jobs it lost as structured `internal` errors instead of silently
// forgetting them.
//
// The journal is one file in numeric/serialize's bitwise u64-word format
// ("AFPW"), rewritten via the same atomic tmp+rename path the PR 6 search
// checkpoints use — a crash mid-write never leaves a truncated journal.
// Each entry carries the job id, its seed, the display name and the PR 6
// checkpoint-identity hash of the search configuration, so an orphan report
// names exactly which (config, seed) run was lost.
//
// Lifecycle: record() on admission (run or parked), remove() when the
// terminal result frame has been queued (or the job was finished unrun).
// take_orphans() at startup loads whatever a previous process left behind,
// resets the file to empty, and hands the entries to the server, which
// serves them via the `orphans` request and counts them in `stats`.
//
// All operations lock one mutex; the write volume is bounded by admission
// (max_inflight + max_parked entries), so a full rewrite per transition is
// cheap and keeps the format trivially recoverable.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace afp::service {

struct JournalEntry {
  std::uint64_t job = 0;       ///< daemon job id (as acked to the client)
  std::uint64_t seed = 0;      ///< explicit seed; 0 = was derived
  std::uint64_t identity = 0;  ///< core::checkpoint_identity of the config
  std::string name;            ///< job label (circuit or submit name)
};

/// Serializes entries into a WordMap-backed journal file (atomic write).
/// Exposed for tests and tools; the server goes through Journal below.
void journal_write(const std::string& path,
                   const std::map<std::uint64_t, JournalEntry>& entries);

/// Loads a journal file; returns an empty map when the file does not
/// exist.  Throws std::runtime_error on a malformed file.
std::map<std::uint64_t, JournalEntry> journal_load(const std::string& path);

class Journal {
 public:
  /// Empty path disables the journal (every call becomes a no-op).
  explicit Journal(std::string path) : path_(std::move(path)) {}

  bool enabled() const { return !path_.empty(); }

  /// Loads entries a previous (crashed) process left behind, then resets
  /// the file to an empty journal.  Call once at startup.
  std::vector<JournalEntry> take_orphans();

  /// Records an accepted job; rewrites the file atomically.
  void record(const JournalEntry& e);

  /// Forgets a terminal job; rewrites the file atomically.  Unknown ids
  /// are ignored (a job rejected before journaling).
  void remove(std::uint64_t job);

  std::size_t live() const;

 private:
  mutable std::mutex mu_;
  std::string path_;
  std::map<std::uint64_t, JournalEntry> live_;
};

}  // namespace afp::service
