// Strict JSON parsing for the afpd request protocol — the missing
// counterpart to core/report's JSON *emission*.
//
// The parser is deliberately strict: one top-level value, the whole input
// consumed, RFC 8259 grammar only (no comments, no trailing commas, no bare
// nan/inf tokens), a nesting-depth cap and a duplicate-key rejection, so a
// malformed or adversarial frame becomes a JsonError the session layer maps
// to a structured invalid_config response — never undefined parser state.
//
// Values are an immutable tree of JsonValue nodes.  Numbers are doubles
// (the report emitter writes %.17g, which round-trips every double);
// object member order is preserved for deterministic re-emission.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace afp::service {

/// Malformed JSON: byte offset of the failure plus a one-line reason.
struct JsonError : std::runtime_error {
  JsonError(std::size_t at, const std::string& why)
      : std::runtime_error("json: " + why + " at byte " + std::to_string(at)),
        offset(at) {}
  std::size_t offset;
};

class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() : type_(Type::kNull) {}
  static JsonValue make_bool(bool b);
  static JsonValue make_number(double v);
  static JsonValue make_string(std::string s);
  static JsonValue make_array(std::vector<JsonValue> items);
  static JsonValue make_object(
      std::vector<std::pair<std::string, JsonValue>> members);

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  /// Typed accessors; throw JsonError(0, ...) on a type mismatch so protocol
  /// code can treat shape errors exactly like parse errors.
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
  const std::vector<JsonValue>& as_array() const;
  const std::vector<std::pair<std::string, JsonValue>>& members() const;

  /// Object member lookup; null when `key` is absent (never inserts).
  const JsonValue* find(const std::string& key) const;
  /// Object member that must exist; throws naming the key otherwise.
  const JsonValue& at(const std::string& key) const;

  /// as_number() narrowed to an exactly-representable non-negative integer;
  /// throws when the number has a fractional part or is out of range.
  std::uint64_t as_uint(const std::string& what) const;
  /// as_number() narrowed to an exactly-representable signed integer.
  long long as_int(const std::string& what) const;

 private:
  Type type_;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  std::vector<JsonValue> arr_;
  std::vector<std::pair<std::string, JsonValue>> obj_;
};

/// Parses exactly one JSON document; trailing non-whitespace is an error.
/// `max_depth` caps array/object nesting (stack safety for hostile input).
JsonValue json_parse(std::string_view text, int max_depth = 64);

}  // namespace afp::service
