// Blocking afpd client: connect, submit, stream progress, await results.
//
// One Client is one session (one socket) and is NOT thread-safe — afpd
// serves many concurrent clients, so load generators simply run one Client
// per thread.  Replies to requests arrive in request order on the session,
// but `progress` and `result` frames for other jobs may interleave; the
// client demultiplexes by stashing async events until asked for them.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "service/protocol.hpp"

namespace afp::service {

/// A structured `error` response (or a protocol-level failure mapped onto
/// one).  `kind` is the JobErrorKind spelling from the wire.
struct ServerError : std::runtime_error {
  ServerError(std::string k, const std::string& message)
      : std::runtime_error(k + ": " + message), kind(std::move(k)) {}
  std::string kind;
};

class Client {
 public:
  struct Accepted {
    std::uint64_t job = 0;
    bool queued = false;
  };
  struct Progress {
    std::uint64_t job = 0;
    std::string status;
    double runtime_s = 0.0;
    int attempt = 0;
    /// Progress frames the server dropped for this session under
    /// backpressure since the previous delivered one (0 = none).
    std::uint64_t dropped = 0;
  };
  struct Result {
    std::uint64_t job = 0;
    std::string name;
    std::string status;      ///< "done", "cancelled", "deadline_exceeded"...
    std::uint64_t seed = 0;
    int attempts = 1;
    std::string error_kind;  ///< "" when the job succeeded
    std::string error_message;
    /// The nested single-run report, sliced VERBATIM from the frame (no
    /// re-serialization): byte-identical to `afp_cli --report-json` for the
    /// same circuit/config/seed.  "null" for unfinished jobs.
    std::string report_raw;
  };

  static Client connect_unix(const std::string& path);
  static Client connect_tcp(const std::string& host, int port);
  ~Client();
  Client(Client&& other) noexcept;
  Client& operator=(Client&&) = delete;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Builds and sends a submit request; waits for the accepted/error reply.
  /// `config_json` is the raw "config" object ("" = server defaults).
  /// Throws ServerError on a structured rejection.
  Accepted submit(const std::string& circuit, std::uint64_t seed,
                  int priority = 0, const std::string& config_json = "");
  /// Same, with an inline SPICE deck instead of a registry circuit name.
  Accepted submit_spice(const std::string& spice, const std::string& name,
                        std::uint64_t seed, int priority = 0,
                        const std::string& config_json = "");
  /// Same, with a generated-workload spec "family:size:seed[:key=val...]".
  Accepted submit_scenario(const std::string& scenario, std::uint64_t seed,
                           int priority = 0,
                           const std::string& config_json = "");
  void cancel(std::uint64_t job);
  void set_deadline(std::uint64_t job, double seconds);
  /// Liveness probe; returns the server's draining flag.
  bool ping();
  /// Server resilience counters (the `stats` request), as parsed JSON.
  JsonValue stats();
  /// Jobs a crashed predecessor accepted but lost (the `orphans` request):
  /// {"type": "orphans", "count": N, "jobs": [{..., "error": {...}}]}.
  JsonValue orphans();
  /// Blocks until the job's terminal `result` frame (or throws ServerError /
  /// runtime_error when the connection dies first).
  Result await_result(std::uint64_t job);

  /// Progress events observed so far (drained as a side effect of every
  /// other call); cleared by the caller via progress().clear() if desired.
  std::vector<Progress>& progress() { return progress_; }

  // Low-level access, used by the protocol-robustness tests.
  void send_frame(const std::string& payload);
  /// Sends bytes with no framing — for malformed-input injection.
  void send_raw(const std::string& bytes);
  /// Reads one frame payload; throws std::runtime_error on EOF/error.
  std::string read_frame();
  /// Half-closes the write side (server sees EOF, responses still readable).
  void shutdown_write();

 private:
  explicit Client(int fd) : fd_(fd) {}
  /// Reads frames, stashing async events, until a request reply arrives.
  JsonValue read_reply();
  /// Stashes an async frame (progress/result); answers server keepalive
  /// probes in place, so any blocking read keeps the session alive.
  void stash(const JsonValue& v, const std::string& payload);

  int fd_ = -1;
  FrameReader reader_;
  std::vector<Progress> progress_;
  std::map<std::uint64_t, Result> results_;
};

}  // namespace afp::service
