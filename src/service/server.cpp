#include "service/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdarg>
#include <cstdio>
#include <cstring>

#include "metaheur/optimizer.hpp"
#include "netlist/library.hpp"

namespace afp::service {

namespace {

[[noreturn]] void sys_fail(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

}  // namespace

Server::Server(ServerConfig cfg)
    : cfg_(std::move(cfg)), admission_(cfg_.admission) {}

Server::~Server() {
  if (service_) drain();
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (wake_pipe_[0] >= 0) ::close(wake_pipe_[0]);
  if (wake_pipe_[1] >= 0) ::close(wake_pipe_[1]);
  if (!cfg_.unix_path.empty()) ::unlink(cfg_.unix_path.c_str());
}

void Server::logf(const char* fmt, ...) {
  if (!cfg_.log) return;
  std::va_list ap;
  va_start(ap, fmt);
  std::fprintf(stderr, "afpd: ");
  std::vfprintf(stderr, fmt, ap);
  std::fprintf(stderr, "\n");
  va_end(ap);
}

void Server::start() {
  if (::pipe(wake_pipe_) != 0) sys_fail("pipe");
  if (!cfg_.unix_path.empty()) {
    if (cfg_.unix_path.size() >= sizeof(sockaddr_un{}.sun_path)) {
      throw std::runtime_error("socket path too long: " + cfg_.unix_path);
    }
    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listen_fd_ < 0) sys_fail("socket");
    ::unlink(cfg_.unix_path.c_str());  // stale socket from a previous run
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, cfg_.unix_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) !=
        0) {
      sys_fail("bind " + cfg_.unix_path);
    }
  } else if (cfg_.tcp_port >= 0) {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) sys_fail("socket");
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);  // loopback only
    addr.sin_port = htons(static_cast<std::uint16_t>(cfg_.tcp_port));
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) !=
        0) {
      sys_fail("bind 127.0.0.1:" + std::to_string(cfg_.tcp_port));
    }
    sockaddr_in bound{};
    socklen_t len = sizeof bound;
    ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len);
    bound_port_ = ntohs(bound.sin_port);
  } else {
    throw std::runtime_error("server needs a unix socket path or a TCP port");
  }
  if (::listen(listen_fd_, 64) != 0) sys_fail("listen");

  core::JobServiceOptions sopts;
  sopts.base_seed = cfg_.base_seed;
  sopts.cancel = &drain_token_;
  sopts.on_progress = [this](const core::JobProgress& p) { on_progress(p); };
  service_ = std::make_unique<core::JobService>(std::move(sopts));
  completer_ = std::thread([this] { completer_loop(); });
  logf("listening on %s",
       cfg_.unix_path.empty()
           ? ("127.0.0.1:" + std::to_string(bound_port_)).c_str()
           : cfg_.unix_path.c_str());
}

void Server::request_drain() {
  // Async-signal-safe: one byte down the self-pipe; everything else happens
  // on the accept thread.
  const char b = 'd';
  if (wake_pipe_[1] >= 0) {
    [[maybe_unused]] ssize_t n = ::write(wake_pipe_[1], &b, 1);
  }
}

void Server::serve() {
  accept_loop();
  drain();
}

void Server::accept_loop() {
  for (;;) {
    pollfd fds[2] = {{listen_fd_, POLLIN, 0}, {wake_pipe_[0], POLLIN, 0}};
    const int rc = ::poll(fds, 2, -1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return;
    }
    if (fds[1].revents != 0) return;  // drain requested
    if ((fds[0].revents & POLLIN) == 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    // Reap sessions whose readers already finished — keeps the thread and
    // fd footprint bounded over a long daemon lifetime.
    std::vector<std::shared_ptr<Session>> reaped;
    std::uint64_t id = 0;
    {
      std::lock_guard<std::mutex> lock(mu_);
      reaped.swap(dead_sessions_);
      id = next_session_++;
    }
    for (auto& d : reaped) {
      if (d->reader.joinable()) d->reader.join();
    }
    if (!admission_.open_session(id)) {
      const std::string frame = encode_frame(error_json(
          core::JobErrorKind::kResourceExhausted,
          draining_.load() ? "draining: the server is shutting down"
                           : "session limit reached"));
      (void)::send(fd, frame.data(), frame.size(), MSG_NOSIGNAL);
      ::close(fd);
      continue;
    }
    auto s = std::make_shared<Session>();
    s->id = id;
    s->fd = fd;
    {
      std::lock_guard<std::mutex> lock(mu_);
      sessions_[id] = s;
    }
    logf("session %llu: connected", static_cast<unsigned long long>(id));
    s->reader = std::thread([this, s] { reader_loop(s); });
  }
}

void Server::reader_loop(const std::shared_ptr<Session>& s) {
  FrameReader reader;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(s->fd, buf, sizeof buf, 0);
    if (n == 0) break;
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    bool framing_lost = false;
    try {
      reader.feed(buf, static_cast<std::size_t>(n));
      std::string payload;
      while (reader.next(&payload)) handle_request(s, payload);
    } catch (const ProtocolError& e) {
      // A bad length prefix: every later byte boundary is garbage, so the
      // session ends — but with a structured parting error, not a hang.
      write_frame(s, error_json(e.kind, e.what()));
      framing_lost = true;
    }
    if (framing_lost) break;
  }
  if (!reader.idle()) {
    logf("session %llu: disconnected mid-frame",
         static_cast<unsigned long long>(s->id));
  }
  session_closed(s);
}

void Server::session_closed(const std::shared_ptr<Session>& s) {
  // Cancel what the departed client still owned: running jobs stop at
  // iteration latency (their results are discarded on write), jobs that
  // never launched are finished as cancelled so their admission slots free
  // up immediately.
  std::vector<std::pair<std::uint64_t, JobRecord>> unrun;
  {
    std::lock_guard<std::mutex> lock(mu_);
    // Move sessions_ -> dead_sessions_ atomically: under mu_, every live
    // session is in exactly one of the two, so the joiners (accept-loop
    // reaper, drain) cannot miss one mid-teardown.  Joining a reader that is
    // still finishing this function merely blocks until it returns.
    sessions_.erase(s->id);
    dead_sessions_.push_back(s);
    for (auto it = jobs_.begin(); it != jobs_.end();) {
      if (it->second.session != s->id) {
        ++it;
      } else if (it->second.running) {
        it->second.handle.cancel.cancel();
        ++it;
      } else {
        unrun.emplace_back(it->first, std::move(it->second));
        it = jobs_.erase(it);
      }
    }
  }
  for (auto& [job, rec] : unrun) {
    finish_unrun(job, std::move(rec), "session closed", nullptr);
  }
  admission_.close_session(s->id);
  {
    // Closing under write_mu (with `closed` set first) means a concurrent
    // write_frame either skips or finishes on the live fd — never a
    // send() on a recycled descriptor.
    std::lock_guard<std::mutex> lock(s->write_mu);
    s->closed.store(true);
    ::close(s->fd);
    s->fd = -1;
  }
  jobs_cv_.notify_all();
  logf("session %llu: closed", static_cast<unsigned long long>(s->id));
}

void Server::write_frame(const std::shared_ptr<Session>& s,
                         const std::string& payload) {
  if (!s) return;
  std::string frame;
  try {
    frame = encode_frame(payload);
  } catch (const std::exception&) {
    return;  // response larger than the cap — drop rather than corrupt
  }
  std::lock_guard<std::mutex> lock(s->write_mu);
  if (s->closed.load() || s->fd < 0) return;
  const char* p = frame.data();
  std::size_t left = frame.size();
  while (left > 0) {
    const ssize_t n = ::send(s->fd, p, left, MSG_NOSIGNAL);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {
      // EPIPE & friends: the client is gone; the reader will notice too.
      s->closed.store(true);
      return;
    }
    p += n;
    left -= static_cast<std::size_t>(n);
  }
}

void Server::handle_request(const std::shared_ptr<Session>& s,
                            const std::string& payload) {
  Request req;
  try {
    req = parse_request(payload);
  } catch (const ProtocolError& e) {
    write_frame(s, error_json(e.kind, e.what()));
    return;
  } catch (const JsonError& e) {
    write_frame(s, error_json(core::JobErrorKind::kInvalidConfig, e.what()));
    return;
  } catch (const std::exception& e) {
    write_frame(s, error_json(core::JobErrorKind::kInternal, e.what()));
    return;
  }
  switch (req.kind) {
    case Request::Kind::kPing:
      write_frame(s, pong_json(draining_.load()));
      return;
    case Request::Kind::kSubmit:
      handle_submit(s, std::move(req.submit));
      return;
    case Request::Kind::kCancel: {
      bool found = false;
      bool was_running = false;
      JobRecord removed;
      {
        std::lock_guard<std::mutex> lock(mu_);
        auto it = jobs_.find(req.job);
        if (it != jobs_.end() && it->second.session == s->id) {
          found = true;
          if (it->second.running) {
            it->second.handle.cancel.cancel();
            was_running = true;
          } else {
            removed = std::move(it->second);
            jobs_.erase(it);
          }
        }
      }
      if (!found) {
        write_frame(s, error_json(core::JobErrorKind::kInvalidConfig,
                                  "unknown job", req.job));
        return;
      }
      if (!was_running) {
        finish_unrun(req.job, std::move(removed), "cancelled before launch",
                     s);
      }
      write_frame(s, ok_json(req.job));
      return;
    }
    case Request::Kind::kDeadline: {
      bool found = false;
      {
        std::lock_guard<std::mutex> lock(mu_);
        auto it = jobs_.find(req.job);
        if (it != jobs_.end() && it->second.session == s->id) {
          found = true;
          if (it->second.running) {
            // Mid-run watchdog arming — the StopPoll re-consultation path:
            // the running optimizer's poller picks this up within one
            // clock stride.
            it->second.handle.cancel.set_deadline_after(req.seconds);
          } else {
            it->second.pending_deadline_s = req.seconds;
          }
        }
      }
      if (!found) {
        write_frame(s, error_json(core::JobErrorKind::kInvalidConfig,
                                  "unknown job", req.job));
        return;
      }
      write_frame(s, ok_json(req.job));
      return;
    }
  }
}

void Server::handle_submit(const std::shared_ptr<Session>& s,
                           SubmitRequest req) {
  core::JobSpec spec;
  spec.name = req.name;
  spec.config = std::move(req.config);
  spec.seed = req.seed;
  // Validate optimizer + options and load the netlist before admission, so
  // a job that can never run is rejected without holding a slot.
  try {
    metaheur::make_optimizer(spec.config.optimizer, spec.config.options);
  } catch (const std::exception& e) {
    write_frame(s, error_json(core::JobErrorKind::kInvalidConfig, e.what()));
    return;
  }
  try {
    if (!req.circuit.empty()) {
      bool found = false;
      for (const auto& e : netlist::circuit_registry()) {
        if (e.name == req.circuit) {
          spec.netlist = e.make();
          found = true;
          break;
        }
      }
      if (!found) {
        throw std::runtime_error("'" + req.circuit +
                                 "' is not a registry circuit");
      }
    } else {
      spec.netlist = netlist::Netlist::from_spice(req.spice);
    }
  } catch (const std::exception& e) {
    write_frame(s, error_json(core::JobErrorKind::kInvalidConfig, e.what()));
    return;
  }

  std::uint64_t job = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    job = next_job_++;
  }
  std::string reason;
  const auto verdict = admission_.admit(s->id, job, req.priority, &reason);
  if (verdict == AdmissionQueue::Verdict::kRejected) {
    write_frame(s,
                error_json(core::JobErrorKind::kResourceExhausted, reason));
    return;
  }
  const bool queued = verdict == AdmissionQueue::Verdict::kParked;
  {
    std::lock_guard<std::mutex> lock(mu_);
    JobRecord rec;
    rec.job = job;
    rec.session = s->id;
    rec.spec = std::move(spec);
    if (!queued) launch_locked(rec);
    jobs_[job] = std::move(rec);
  }
  logf("session %llu: job %llu %s", static_cast<unsigned long long>(s->id),
       static_cast<unsigned long long>(job), queued ? "parked" : "running");
  write_frame(s, accepted_json(job, queued));
}

void Server::launch_locked(JobRecord& rec) {
  rec.handle = service_->submit(rec.spec);
  svc_to_job_[rec.handle.id] = rec.job;
  rec.running = true;
  if (rec.cancel_requested) rec.handle.cancel.cancel();
  if (rec.pending_deadline_s > 0.0) {
    rec.handle.cancel.set_deadline_after(rec.pending_deadline_s);
  }
}

void Server::launch_all(const std::vector<std::uint64_t>& jobs) {
  for (const std::uint64_t job : jobs) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = jobs_.find(job);
    // The record can be gone when its session died between the admission
    // pop and here; the slot was re-released by that path.
    if (it != jobs_.end() && !it->second.running) launch_locked(it->second);
  }
}

void Server::finish_unrun(std::uint64_t job, JobRecord rec,
                          const std::string& message,
                          const std::shared_ptr<Session>& sess) {
  core::JobReport rep;
  rep.id = job;
  rep.name = rec.spec.name;
  rep.seed = rec.spec.seed;
  rep.status = core::JobStatus::kCancelled;
  rep.error = {core::JobErrorKind::kCancelled, message, job, -1};
  rep.optimizer = rec.spec.config.optimizer;
  rep.search = rec.spec.config.search;
  // Write before releasing the admission slot / notifying: the callers
  // already removed the job from jobs_, and drain closes sockets once
  // jobs_ is empty — the terminal frame must not race that shutdown.
  if (sess) write_frame(sess, result_json(job, rep));
  const auto launched = admission_.release(job);
  jobs_cv_.notify_all();
  launch_all(launched);
}

void Server::on_progress(const core::JobProgress& p) {
  std::uint64_t job = 0;
  std::shared_ptr<Session> sess;
  bool terminal = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = svc_to_job_.find(p.id);
    if (it == svc_to_job_.end()) return;
    job = it->second;
    auto jt = jobs_.find(job);
    if (jt != jobs_.end()) {
      auto st = sessions_.find(jt->second.session);
      if (st != sessions_.end()) sess = st->second;
    }
    terminal = p.status != core::JobStatus::kRunning &&
               p.status != core::JobStatus::kQueued;
    if (terminal) done_svc_.push_back(p.id);
  }
  if (terminal) done_cv_.notify_one();
  // Streamed per session; write_frame serializes on the session's write
  // mutex, so progress frames never interleave with results.
  if (sess) write_frame(sess, progress_json(job, p));
}

void Server::completer_loop() {
  for (;;) {
    std::uint64_t svc = 0;
    {
      std::unique_lock<std::mutex> lock(mu_);
      done_cv_.wait(lock,
                    [this] { return completer_stop_ || !done_svc_.empty(); });
      if (done_svc_.empty() && completer_stop_) return;
      svc = done_svc_.front();
      done_svc_.pop_front();
    }
    std::uint64_t job = 0;
    core::JobService::Handle handle;
    std::shared_ptr<Session> sess;
    bool found = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = svc_to_job_.find(svc);
      if (it != svc_to_job_.end()) {
        job = it->second;
        auto jt = jobs_.find(job);
        if (jt != jobs_.end()) {
          handle = jt->second.handle;
          auto st = sessions_.find(jt->second.session);
          if (st != sessions_.end()) sess = st->second;
          found = true;
        }
      }
    }
    if (!found) continue;
    // The terminal progress event fires just before run_job returns, so
    // this get() resolves promptly; it must NOT hold mu_ (the worker's
    // progress callbacks need it to make progress).
    const core::JobReport report = handle.report.get();
    // The result frame goes out BEFORE the job leaves jobs_: drain waits on
    // jobs_ becoming empty and then closes the session sockets, so writing
    // after the erase would race the shutdown and could lose the report.
    write_frame(sess, result_json(job, report));
    const auto launched = admission_.release(job);
    {
      std::lock_guard<std::mutex> lock(mu_);
      svc_to_job_.erase(svc);
      jobs_.erase(job);
    }
    jobs_cv_.notify_all();
    launch_all(launched);
    logf("job %llu: %s", static_cast<unsigned long long>(job),
         core::to_string(report.status));
  }
}

void Server::drain() {
  if (!service_) return;
  draining_.store(true);
  admission_.begin_drain();
  logf("draining: %zu jobs outstanding", admission_.outstanding());
  // Phase 1: let in-flight and parked jobs finish on their own.
  {
    std::unique_lock<std::mutex> lock(mu_);
    jobs_cv_.wait_for(
        lock, std::chrono::duration<double>(std::max(0.0, cfg_.drain_grace_s)),
        [this] { return jobs_.empty(); });
  }
  // Phase 2: cancel stragglers through the service-wide token (every job
  // token is its child) and wait for the terminal reports to flush.
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (!jobs_.empty()) {
      drain_token_.cancel();
      logf("drain grace expired: cancelling %zu jobs", jobs_.size());
      jobs_cv_.wait_for(lock, std::chrono::seconds(60),
                        [this] { return jobs_.empty(); });
    }
  }
  // Phase 3: close the sessions (results are already flushed) and join
  // their readers, then stop the completer and the service.
  std::vector<std::shared_ptr<Session>> open;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [id, s] : sessions_) open.push_back(s);
  }
  // A session snapshotted above may close itself concurrently (reader hits
  // EOF, session_closed closes the fd and recycles it to -1).  Taking
  // write_mu and re-checking `closed` keeps the shutdown on the live
  // descriptor — never on a closed or reused fd number.
  for (auto& s : open) {
    std::lock_guard<std::mutex> lock(s->write_mu);
    if (!s->closed.load() && s->fd >= 0) ::shutdown(s->fd, SHUT_RDWR);
  }
  for (auto& s : open) {
    if (s->reader.joinable()) s->reader.join();
  }
  std::vector<std::shared_ptr<Session>> dead;
  {
    std::lock_guard<std::mutex> lock(mu_);
    dead.swap(dead_sessions_);
    completer_stop_ = true;
  }
  for (auto& s : dead) {
    if (s->reader.joinable()) s->reader.join();
  }
  done_cv_.notify_all();
  if (completer_.joinable()) completer_.join();
  service_.reset();  // joins the dispatcher after the queue drains
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (!cfg_.unix_path.empty()) ::unlink(cfg_.unix_path.c_str());
  logf("drained");
}

}  // namespace afp::service
