#include "service/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdarg>
#include <cstdio>
#include <cstring>
#include <limits>

#include "ingest/scenario.hpp"
#include "metaheur/optimizer.hpp"
#include "netlist/library.hpp"

namespace afp::service {

namespace {

[[noreturn]] void sys_fail(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

std::int64_t now_ms() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Blocking full write — the fix for the truncated-rejection bug: a partial
/// send() on a frame leaves the peer mid-frame forever.
bool send_all(int fd, const char* p, std::size_t n) {
  while (n > 0) {
    const ssize_t k = ::send(fd, p, n, MSG_NOSIGNAL);
    if (k < 0 && errno == EINTR) continue;
    if (k <= 0) return false;
    p += k;
    n -= static_cast<std::size_t>(k);
  }
  return true;
}

}  // namespace

Server::Server(ServerConfig cfg)
    : cfg_(std::move(cfg)),
      admission_(cfg_.admission),
      journal_(cfg_.journal_path) {}

Server::~Server() {
  if (service_) drain();
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (wake_pipe_[0] >= 0) ::close(wake_pipe_[0]);
  if (wake_pipe_[1] >= 0) ::close(wake_pipe_[1]);
  if (pump_pipe_[0] >= 0) ::close(pump_pipe_[0]);
  if (pump_pipe_[1] >= 0) ::close(pump_pipe_[1]);
  if (!cfg_.unix_path.empty()) ::unlink(cfg_.unix_path.c_str());
}

void Server::logf(const char* fmt, ...) {
  if (!cfg_.log) return;
  std::va_list ap;
  va_start(ap, fmt);
  std::fprintf(stderr, "afpd: ");
  std::vfprintf(stderr, fmt, ap);
  std::fprintf(stderr, "\n");
  va_end(ap);
}

void Server::start() {
  if (::pipe(wake_pipe_) != 0) sys_fail("pipe");
  if (::pipe(pump_pipe_) != 0) sys_fail("pipe");
  if (!cfg_.unix_path.empty()) {
    if (cfg_.unix_path.size() >= sizeof(sockaddr_un{}.sun_path)) {
      throw std::runtime_error("socket path too long: " + cfg_.unix_path);
    }
    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listen_fd_ < 0) sys_fail("socket");
    ::unlink(cfg_.unix_path.c_str());  // stale socket from a previous run
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, cfg_.unix_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) !=
        0) {
      sys_fail("bind " + cfg_.unix_path);
    }
  } else if (cfg_.tcp_port >= 0) {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) sys_fail("socket");
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);  // loopback only
    addr.sin_port = htons(static_cast<std::uint16_t>(cfg_.tcp_port));
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) !=
        0) {
      sys_fail("bind 127.0.0.1:" + std::to_string(cfg_.tcp_port));
    }
    sockaddr_in bound{};
    socklen_t len = sizeof bound;
    ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len);
    bound_port_ = ntohs(bound.sin_port);
  } else {
    throw std::runtime_error("server needs a unix socket path or a TCP port");
  }
  if (::listen(listen_fd_, 64) != 0) sys_fail("listen");

  // Replay whatever a crashed predecessor left in the journal before any
  // client can connect: orphans_ is immutable once serving starts.
  orphans_ = journal_.take_orphans();
  for (const JournalEntry& e : orphans_) {
    logf("journal: job %llu (%s, seed %llu, identity %016llx) orphaned by a "
         "previous run",
         static_cast<unsigned long long>(e.job), e.name.c_str(),
         static_cast<unsigned long long>(e.seed),
         static_cast<unsigned long long>(e.identity));
  }

  core::JobServiceOptions sopts;
  sopts.base_seed = cfg_.base_seed;
  sopts.cancel = &drain_token_;
  sopts.on_progress = [this](const core::JobProgress& p) { on_progress(p); };
  service_ = std::make_unique<core::JobService>(std::move(sopts));
  completer_ = std::thread([this] { completer_loop(); });
  pump_ = std::thread([this] { pump_loop(); });
  logf("listening on %s",
       cfg_.unix_path.empty()
           ? ("127.0.0.1:" + std::to_string(bound_port_)).c_str()
           : cfg_.unix_path.c_str());
}

void Server::request_drain() {
  // Async-signal-safe: one byte down the self-pipe; everything else happens
  // on the accept thread.
  const char b = 'd';
  if (wake_pipe_[1] >= 0) {
    [[maybe_unused]] ssize_t n = ::write(wake_pipe_[1], &b, 1);
  }
}

void Server::serve() {
  accept_loop();
  drain();
}

void Server::accept_loop() {
  for (;;) {
    pollfd fds[2] = {{listen_fd_, POLLIN, 0}, {wake_pipe_[0], POLLIN, 0}};
    const int rc = ::poll(fds, 2, -1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return;
    }
    if (fds[1].revents != 0) return;  // drain requested
    if ((fds[0].revents & POLLIN) == 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    // Reap sessions whose readers already finished — keeps the thread and
    // fd footprint bounded over a long daemon lifetime.
    std::vector<std::shared_ptr<Session>> reaped;
    std::uint64_t id = 0;
    {
      std::lock_guard<std::mutex> lock(mu_);
      reaped.swap(dead_sessions_);
      id = next_session_++;
    }
    for (auto& d : reaped) {
      if (d->reader.joinable()) d->reader.join();
    }
    if (!admission_.open_session(id)) {
      const std::string frame = encode_frame(error_json(
          core::JobErrorKind::kResourceExhausted,
          draining_.load() ? "draining: the server is shutting down"
                           : "session limit reached"));
      (void)send_all(fd, frame.data(), frame.size());
      ::close(fd);
      continue;
    }
    auto s = std::make_shared<Session>();
    s->id = id;
    s->fd = fd;
    s->last_recv_ms.store(now_ms());
    {
      std::lock_guard<std::mutex> lock(mu_);
      sessions_[id] = s;
    }
    logf("session %llu: connected", static_cast<unsigned long long>(id));
    s->reader = std::thread([this, s] { reader_loop(s); });
    pump_wake();  // the pump must start this session's liveness timers
  }
}

void Server::reader_loop(const std::shared_ptr<Session>& s) {
  FrameReader reader;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(s->fd, buf, sizeof buf, 0);
    if (n == 0) break;
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    // Any inbound byte is proof of life: reset the idle clock and re-arm
    // the (single) keepalive probe.
    s->last_recv_ms.store(now_ms());
    s->keepalive_pending.store(false);
    bool stop = false;
    try {
      reader.feed(buf, static_cast<std::size_t>(n));
      std::string payload;
      while (reader.next(&payload)) {
        if (!handle_request(s, payload)) {  // strike limit: eject
          stop = true;
          break;
        }
      }
    } catch (const ProtocolError& e) {
      // A bad length prefix: every later byte boundary is garbage, so the
      // session ends — but with a structured parting error, not a hang.
      write_frame(s, error_json(e.kind, e.what()));
      stop = true;
    }
    if (stop) break;
  }
  if (!reader.idle()) {
    logf("session %llu: disconnected mid-frame",
         static_cast<unsigned long long>(s->id));
  }
  session_closed(s);
}

void Server::session_closed(const std::shared_ptr<Session>& s) {
  // Cancel what the departed client still owned: running jobs stop at
  // iteration latency (their results are discarded on write), jobs that
  // never launched are finished as cancelled so their admission slots free
  // up immediately.
  std::vector<std::pair<std::uint64_t, JobRecord>> unrun;
  {
    std::lock_guard<std::mutex> lock(mu_);
    // Move sessions_ -> dead_sessions_ atomically: under mu_, every live
    // session is in exactly one of the two, so the joiners (accept-loop
    // reaper, drain) cannot miss one mid-teardown.  Joining a reader that is
    // still finishing this function merely blocks until it returns.
    sessions_.erase(s->id);
    dead_sessions_.push_back(s);
    for (auto it = jobs_.begin(); it != jobs_.end();) {
      if (it->second.session != s->id) {
        ++it;
      } else if (it->second.running) {
        it->second.handle.cancel.cancel();
        ++it;
      } else {
        unrun.emplace_back(it->first, std::move(it->second));
        it = jobs_.erase(it);
      }
    }
  }
  for (auto& [job, rec] : unrun) {
    finish_unrun(job, std::move(rec), "session closed", nullptr);
  }
  admission_.close_session(s->id);
  {
    // Closing under write_mu (with `closed` set first) means a concurrent
    // write_frame either skips or finishes on the live fd — never a
    // send() on a recycled descriptor.
    std::lock_guard<std::mutex> lock(s->write_mu);
    // Best-effort bounded parting flush: the reader may have just queued a
    // final error frame (framing loss, strike ejection) that the client is
    // owed before EOF.  Bounded so a dead peer cannot wedge teardown.
    const auto until = Clock::now() + std::chrono::milliseconds(100);
    while (!writer_paused_.load() && !s->outq.empty() && !s->closed.load() &&
           s->fd >= 0 && Clock::now() < until) {
      flush_locked(*s);
      if (s->outq.empty() || s->closed.load()) break;
      pollfd pfd{s->fd, POLLOUT, 0};
      (void)::poll(&pfd, 1, 10);
    }
    s->closed.store(true);
    ::close(s->fd);
    s->fd = -1;
  }
  jobs_cv_.notify_all();
  logf("session %llu: closed", static_cast<unsigned long long>(s->id));
}

bool Server::queue_full_locked(const Session& s) const {
  return s.outq.size() >= cfg_.queue_frames ||
         s.outq_bytes >= cfg_.queue_bytes;
}

void Server::enqueue_locked(Session& s, std::string frame) {
  if (s.outq.empty()) s.stall_since = Clock::now();
  s.outq_bytes += frame.size();
  s.outq.push_back(std::move(frame));
}

void Server::flush_locked(Session& s) {
  if (s.closed.load() || s.fd < 0) return;
  while (!s.outq.empty()) {
    const std::string& f = s.outq.front();
    // MSG_DONTWAIT per call: the fd stays blocking for the reader thread,
    // only the writer refuses to sleep on a full socket buffer.
    const ssize_t n = ::send(s.fd, f.data() + s.outq_head,
                             f.size() - s.outq_head,
                             MSG_NOSIGNAL | MSG_DONTWAIT);
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
    if (n <= 0) {
      // EPIPE & friends: the client is gone; the reader will notice too.
      s.closed.store(true);
      return;
    }
    s.outq_head += static_cast<std::size_t>(n);
    s.stall_since = Clock::now();  // forward progress re-arms the deadline
    if (s.outq_head == f.size()) {
      s.outq_bytes -= f.size();
      s.outq_head = 0;
      s.outq.pop_front();
    }
  }
}

void Server::write_frame(const std::shared_ptr<Session>& s,
                         const std::string& payload) {
  if (!s) return;
  std::string frame;
  try {
    frame = encode_frame(payload);
  } catch (const std::exception&) {
    return;  // response larger than the cap — drop rather than corrupt
  }
  bool residual = false;
  {
    std::lock_guard<std::mutex> lock(s->write_mu);
    if (s->closed.load() || s->fd < 0) return;
    // Non-droppable frames queue past the bound: the client is owed every
    // result/error, and the write deadline bounds how long an unread queue
    // can grow.
    enqueue_locked(*s, std::move(frame));
    if (!writer_paused_.load()) flush_locked(*s);
    residual = !s->outq.empty() && !s->closed.load();
  }
  if (residual) pump_wake();
}

void Server::write_progress(const std::shared_ptr<Session>& s,
                            std::uint64_t job, const core::JobProgress& p) {
  if (!s) return;
  bool residual = false;
  {
    std::lock_guard<std::mutex> lock(s->write_mu);
    if (s->closed.load() || s->fd < 0) return;
    if (queue_full_locked(*s)) {
      // Backpressure: progress is advisory, so it degrades first — count
      // the drop and move on.  The count reaches the client on the next
      // progress frame that fits, and the stats totals keep the sum.
      ++s->dropped_progress;
      dropped_progress_total_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    const std::string payload = progress_json(job, p, s->dropped_progress);
    s->dropped_progress = 0;
    enqueue_locked(*s, encode_frame(payload));
    if (!writer_paused_.load()) flush_locked(*s);
    residual = !s->outq.empty() && !s->closed.load();
  }
  if (residual) pump_wake();
}

void Server::pump_wake() {
  const char b = 'w';
  if (pump_pipe_[1] >= 0) {
    [[maybe_unused]] ssize_t n = ::write(pump_pipe_[1], &b, 1);
  }
}

void Server::set_writer_paused(bool paused) {
  writer_paused_.store(paused);
  if (!paused) pump_wake();  // flush everything that piled up
}

void Server::pump_loop() {
  for (;;) {
    if (pump_stop_.load()) return;
    std::vector<std::shared_ptr<Session>> live;
    {
      std::lock_guard<std::mutex> lock(mu_);
      live.reserve(sessions_.size());
      for (auto& [id, s] : sessions_) live.push_back(s);
    }
    const bool paused = writer_paused_.load();
    std::vector<pollfd> fds;
    std::vector<std::shared_ptr<Session>> polled;
    fds.push_back({pump_pipe_[0], POLLIN, 0});
    polled.push_back(nullptr);
    // Seconds until the nearest timer (write deadline, keepalive probe,
    // idle reap) across all sessions; infinity = block on the wake pipe.
    double next_s = std::numeric_limits<double>::infinity();
    const auto now = Clock::now();
    const std::int64_t tick_ms = now_ms();
    for (auto& s : live) {
      std::lock_guard<std::mutex> lock(s->write_mu);
      if (s->closed.load() || s->fd < 0) continue;
      if (!s->outq.empty()) {
        if (cfg_.write_deadline_s > 0.0) {
          const double stalled =
              std::chrono::duration<double>(now - s->stall_since).count();
          if (stalled >= cfg_.write_deadline_s) {
            // The client stopped reading: disconnect it.  The reader sees
            // EOF and session_closed cancels the session's jobs through
            // their CancelTokens.
            write_timeouts_.fetch_add(1, std::memory_order_relaxed);
            logf("session %llu: write stalled %.1fs (deadline %.1fs), "
                 "disconnecting",
                 static_cast<unsigned long long>(s->id), stalled,
                 cfg_.write_deadline_s);
            ::shutdown(s->fd, SHUT_RDWR);
            continue;
          }
          next_s = std::min(next_s, cfg_.write_deadline_s - stalled);
        }
        if (!paused) {
          fds.push_back({s->fd, POLLOUT, 0});
          polled.push_back(s);
        }
      }
      if (cfg_.idle_timeout_s > 0.0) {
        const double idle =
            static_cast<double>(tick_ms - s->last_recv_ms.load()) / 1000.0;
        const double half = cfg_.idle_timeout_s * 0.5;
        if (!s->keepalive_pending.load()) {
          const double probe_in = half - idle;
          if (probe_in <= 0.0) {
            s->keepalive_pending.store(true);
            s->keepalive_sent_ms.store(tick_ms);
            keepalives_sent_.fetch_add(1, std::memory_order_relaxed);
            enqueue_locked(*s,
                           encode_frame(keepalive_json(++s->keepalive_seq)));
            if (!paused) flush_locked(*s);
            next_s = std::min(next_s, half);
          } else {
            next_s = std::min(next_s, probe_in);
          }
        } else {
          // Reap only after the probe itself has gone unanswered for half
          // the window: if this thread was starved past the whole timeout
          // before it could probe, the client still gets its answer
          // window instead of being reaped on the first late tick.
          const double waited =
              static_cast<double>(tick_ms - s->keepalive_sent_ms.load()) /
              1000.0;
          const double reap_in =
              std::max(cfg_.idle_timeout_s - idle, half - waited);
          if (reap_in <= 0.0) {
            idle_timeouts_.fetch_add(1, std::memory_order_relaxed);
            logf("session %llu: idle %.1fs (timeout %.1fs), disconnecting",
                 static_cast<unsigned long long>(s->id), idle,
                 cfg_.idle_timeout_s);
            enqueue_locked(
                *s, encode_frame(error_json(
                        core::JobErrorKind::kResourceExhausted,
                        "idle timeout: no request or keepalive_ack within " +
                            std::to_string(cfg_.idle_timeout_s) + "s")));
            flush_locked(*s);
            ::shutdown(s->fd, SHUT_RDWR);
            continue;
          }
          next_s = std::min(next_s, reap_in);
        }
      }
    }
    int timeout_ms = -1;
    if (next_s < std::numeric_limits<double>::infinity()) {
      timeout_ms = static_cast<int>(
          std::min(60000.0, std::max(1.0, next_s * 1000.0 + 1.0)));
    }
    const int rc = ::poll(fds.data(), static_cast<nfds_t>(fds.size()),
                          timeout_ms);
    if (pump_stop_.load()) return;
    if (rc < 0) continue;  // EINTR
    if (fds[0].revents != 0) {
      char buf[256];
      (void)::read(pump_pipe_[0], buf, sizeof buf);
    }
    if (writer_paused_.load()) continue;
    for (std::size_t i = 1; i < fds.size(); ++i) {
      if (fds[i].revents == 0) continue;
      // POLLNVAL/POLLERR/POLLHUP included: flush_locked re-checks `closed`
      // and the fd under write_mu, so a session that died (or whose fd
      // number was recycled) between snapshot and here is a no-op.
      std::lock_guard<std::mutex> lock(polled[i]->write_mu);
      flush_locked(*polled[i]);
    }
  }
}

ServerStats Server::stats_snapshot() {
  ServerStats st;
  st.sessions = admission_.num_sessions();
  st.inflight = admission_.num_inflight();
  st.parked = admission_.num_parked();
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [id, s] : sessions_) {
      std::lock_guard<std::mutex> wl(s->write_mu);
      st.queued_frames += s->outq.size();
      st.queued_bytes += s->outq_bytes;
    }
  }
  st.dropped_progress = dropped_progress_total_.load();
  st.write_timeouts = write_timeouts_.load();
  st.idle_timeouts = idle_timeouts_.load();
  st.keepalives_sent = keepalives_sent_.load();
  st.strikes = admission_.total_strikes();
  st.strike_ejections = admission_.total_strike_ejections();
  st.journal_live = journal_.live();
  st.journal_orphans = orphans_.size();
  st.draining = draining_.load();
  return st;
}

bool Server::handle_request(const std::shared_ptr<Session>& s,
                            const std::string& payload) {
  // Malformed requests are recoverable (frame boundaries survive), so the
  // session gets a structured error back — but each one is a strike, and a
  // session that keeps sending garbage is ejected: a malformed flood burns
  // its own session slot, not the daemon's parser time.
  auto strike = [&]() -> bool {
    if (!admission_.record_strike(s->id)) return true;
    logf("session %llu: strike limit reached, ejecting",
         static_cast<unsigned long long>(s->id));
    write_frame(s, error_json(core::JobErrorKind::kResourceExhausted,
                              "strike limit reached: too many malformed "
                              "requests; closing session"));
    return false;
  };
  Request req;
  try {
    req = parse_request(payload);
  } catch (const ProtocolError& e) {
    write_frame(s, error_json(e.kind, e.what()));
    return strike();
  } catch (const JsonError& e) {
    write_frame(s, error_json(core::JobErrorKind::kInvalidConfig, e.what()));
    return strike();
  } catch (const std::exception& e) {
    write_frame(s, error_json(core::JobErrorKind::kInternal, e.what()));
    return true;
  }
  switch (req.kind) {
    case Request::Kind::kPing:
      write_frame(s, pong_json(draining_.load()));
      return true;
    case Request::Kind::kStats:
      write_frame(s, stats_json(stats_snapshot()));
      return true;
    case Request::Kind::kOrphans:
      write_frame(s, orphans_json(orphans_));
      return true;
    case Request::Kind::kKeepaliveAck:
      // The ack itself already reset the idle clock in the reader; no
      // response — reply streams stay clean for the demuxing client.
      return true;
    case Request::Kind::kSubmit:
      handle_submit(s, std::move(req.submit));
      return true;
    case Request::Kind::kCancel: {
      bool found = false;
      bool was_running = false;
      JobRecord removed;
      {
        std::lock_guard<std::mutex> lock(mu_);
        auto it = jobs_.find(req.job);
        if (it != jobs_.end() && it->second.session == s->id) {
          found = true;
          if (it->second.running) {
            it->second.handle.cancel.cancel();
            was_running = true;
          } else {
            removed = std::move(it->second);
            jobs_.erase(it);
          }
        }
      }
      if (!found) {
        write_frame(s, error_json(core::JobErrorKind::kInvalidConfig,
                                  "unknown job", req.job));
        return true;
      }
      if (!was_running) {
        finish_unrun(req.job, std::move(removed), "cancelled before launch",
                     s);
      }
      write_frame(s, ok_json(req.job));
      return true;
    }
    case Request::Kind::kDeadline: {
      bool found = false;
      {
        std::lock_guard<std::mutex> lock(mu_);
        auto it = jobs_.find(req.job);
        if (it != jobs_.end() && it->second.session == s->id) {
          found = true;
          if (it->second.running) {
            // Mid-run watchdog arming — the StopPoll re-consultation path:
            // the running optimizer's poller picks this up within one
            // clock stride.
            it->second.handle.cancel.set_deadline_after(req.seconds);
          } else {
            it->second.pending_deadline_s = req.seconds;
          }
        }
      }
      if (!found) {
        write_frame(s, error_json(core::JobErrorKind::kInvalidConfig,
                                  "unknown job", req.job));
        return true;
      }
      write_frame(s, ok_json(req.job));
      return true;
    }
  }
  return true;
}

void Server::handle_submit(const std::shared_ptr<Session>& s,
                           SubmitRequest req) {
  core::JobSpec spec;
  spec.name = req.name;
  spec.config = std::move(req.config);
  spec.seed = req.seed;
  // Validate optimizer + options and load the netlist before admission, so
  // a job that can never run is rejected without holding a slot.
  try {
    metaheur::make_optimizer(spec.config.optimizer, spec.config.options);
  } catch (const std::exception& e) {
    write_frame(s, error_json(core::JobErrorKind::kInvalidConfig, e.what()));
    return;
  }
  try {
    if (!req.circuit.empty()) {
      bool found = false;
      for (const auto& e : netlist::circuit_registry()) {
        if (e.name == req.circuit) {
          spec.netlist = e.make();
          found = true;
          break;
        }
      }
      if (!found) {
        throw std::runtime_error("'" + req.circuit +
                                 "' is not a registry circuit");
      }
    } else if (!req.scenario.empty()) {
      // Generated workload: the spec string is the whole job definition
      // (pure function of family/size/seed), so replay after a crash
      // regenerates the identical netlist and constraint overlay.
      const auto sc =
          ingest::make_scenario(ingest::ScenarioSpec::parse(req.scenario));
      spec.netlist = sc.netlist;
      spec.config.scenario_constraints = sc.constraints;
    } else {
      spec.netlist = netlist::Netlist::from_spice(req.spice);
    }
  } catch (const std::exception& e) {
    write_frame(s, error_json(core::JobErrorKind::kInvalidConfig, e.what()));
    return;
  }

  std::uint64_t job = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    job = next_job_++;
  }
  std::string reason;
  const auto verdict = admission_.admit(s->id, job, req.priority, &reason);
  if (verdict == AdmissionQueue::Verdict::kRejected) {
    write_frame(s,
                error_json(core::JobErrorKind::kResourceExhausted, reason));
    return;
  }
  const bool queued = verdict == AdmissionQueue::Verdict::kParked;
  // Journal the job BEFORE the accepted frame goes out: once a client
  // holds an ack, a crash must not be able to forget the job.
  if (journal_.enabled()) {
    journal_.record(JournalEntry{job, spec.seed,
                                 core::JobService::spec_identity(spec),
                                 spec.name});
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    JobRecord rec;
    rec.job = job;
    rec.session = s->id;
    rec.spec = std::move(spec);
    if (!queued) launch_locked(rec);
    jobs_[job] = std::move(rec);
  }
  logf("session %llu: job %llu %s", static_cast<unsigned long long>(s->id),
       static_cast<unsigned long long>(job), queued ? "parked" : "running");
  write_frame(s, accepted_json(job, queued));
}

void Server::launch_locked(JobRecord& rec) {
  rec.handle = service_->submit(rec.spec);
  svc_to_job_[rec.handle.id] = rec.job;
  rec.running = true;
  if (rec.cancel_requested) rec.handle.cancel.cancel();
  if (rec.pending_deadline_s > 0.0) {
    rec.handle.cancel.set_deadline_after(rec.pending_deadline_s);
  }
}

void Server::launch_all(const std::vector<std::uint64_t>& jobs) {
  for (const std::uint64_t job : jobs) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = jobs_.find(job);
    // The record can be gone when its session died between the admission
    // pop and here; the slot was re-released by that path.
    if (it != jobs_.end() && !it->second.running) launch_locked(it->second);
  }
}

void Server::finish_unrun(std::uint64_t job, JobRecord rec,
                          const std::string& message,
                          const std::shared_ptr<Session>& sess) {
  core::JobReport rep;
  rep.id = job;
  rep.name = rec.spec.name;
  rep.seed = rec.spec.seed;
  rep.status = core::JobStatus::kCancelled;
  rep.error = {core::JobErrorKind::kCancelled, message, job, -1};
  rep.optimizer = rec.spec.config.optimizer;
  rep.search = rec.spec.config.search;
  // Write before releasing the admission slot / notifying: the callers
  // already removed the job from jobs_, and drain closes sockets once
  // jobs_ is empty — the terminal frame must not race that shutdown.
  if (sess) write_frame(sess, result_json(job, rep));
  journal_.remove(job);
  const auto launched = admission_.release(job);
  jobs_cv_.notify_all();
  launch_all(launched);
}

void Server::on_progress(const core::JobProgress& p) {
  std::uint64_t job = 0;
  std::shared_ptr<Session> sess;
  bool terminal = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = svc_to_job_.find(p.id);
    if (it == svc_to_job_.end()) return;
    job = it->second;
    auto jt = jobs_.find(job);
    if (jt != jobs_.end()) {
      auto st = sessions_.find(jt->second.session);
      if (st != sessions_.end()) sess = st->second;
    }
    terminal = p.status != core::JobStatus::kRunning &&
               p.status != core::JobStatus::kQueued;
    if (terminal) done_svc_.push_back(p.id);
  }
  if (terminal) done_cv_.notify_one();
  // Streamed per session; the queue serializes on the session's write
  // mutex, so progress frames never interleave with results — and under
  // backpressure they are the frames that give way.
  write_progress(sess, job, p);
}

void Server::completer_loop() {
  for (;;) {
    std::uint64_t svc = 0;
    {
      std::unique_lock<std::mutex> lock(mu_);
      done_cv_.wait(lock,
                    [this] { return completer_stop_ || !done_svc_.empty(); });
      if (done_svc_.empty() && completer_stop_) return;
      svc = done_svc_.front();
      done_svc_.pop_front();
    }
    std::uint64_t job = 0;
    core::JobService::Handle handle;
    std::shared_ptr<Session> sess;
    bool found = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = svc_to_job_.find(svc);
      if (it != svc_to_job_.end()) {
        job = it->second;
        auto jt = jobs_.find(job);
        if (jt != jobs_.end()) {
          handle = jt->second.handle;
          auto st = sessions_.find(jt->second.session);
          if (st != sessions_.end()) sess = st->second;
          found = true;
        }
      }
    }
    if (!found) continue;
    // The terminal progress event fires just before run_job returns, so
    // this get() resolves promptly; it must NOT hold mu_ (the worker's
    // progress callbacks need it to make progress).
    const core::JobReport report = handle.report.get();
    // The result frame goes out BEFORE the job leaves jobs_: drain waits on
    // jobs_ becoming empty and then closes the session sockets, so writing
    // after the erase would race the shutdown and could lose the report.
    write_frame(sess, result_json(job, report));
    // The terminal frame is queued (a crash now loses at most the frame,
    // which the client detects as EOF) — the journal's job is done.
    journal_.remove(job);
    const auto launched = admission_.release(job);
    {
      std::lock_guard<std::mutex> lock(mu_);
      svc_to_job_.erase(svc);
      jobs_.erase(job);
    }
    jobs_cv_.notify_all();
    launch_all(launched);
    logf("job %llu: %s", static_cast<unsigned long long>(job),
         core::to_string(report.status));
  }
}

void Server::drain() {
  if (!service_) return;
  draining_.store(true);
  admission_.begin_drain();
  logf("draining: %zu jobs outstanding", admission_.outstanding());
  // Phase 1: let in-flight and parked jobs finish on their own.
  {
    std::unique_lock<std::mutex> lock(mu_);
    jobs_cv_.wait_for(
        lock, std::chrono::duration<double>(std::max(0.0, cfg_.drain_grace_s)),
        [this] { return jobs_.empty(); });
  }
  // Phase 2: cancel stragglers through the service-wide token (every job
  // token is its child) and wait for the terminal reports to flush.
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (!jobs_.empty()) {
      drain_token_.cancel();
      logf("drain grace expired: cancelling %zu jobs", jobs_.size());
      jobs_cv_.wait_for(lock, std::chrono::seconds(60),
                        [this] { return jobs_.empty(); });
    }
  }
  // Phase 2.5: "result written" now means "enqueued" — give the pump a
  // bounded window to flush the outbound queues before sockets shut down,
  // so every accepted job's terminal frame still reaches a reading client.
  {
    const auto until = Clock::now() + std::chrono::seconds(5);
    for (;;) {
      bool empty = true;
      {
        std::lock_guard<std::mutex> lock(mu_);
        for (auto& [id, s] : sessions_) {
          std::lock_guard<std::mutex> wl(s->write_mu);
          empty = empty && (s->outq.empty() || s->closed.load());
        }
      }
      if (empty || writer_paused_.load() || Clock::now() >= until) break;
      pump_wake();
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }
  // Phase 3: close the sessions (results are already flushed) and join
  // their readers, then stop the completer and the service.
  std::vector<std::shared_ptr<Session>> open;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [id, s] : sessions_) open.push_back(s);
  }
  // A session snapshotted above may close itself concurrently (reader hits
  // EOF, session_closed closes the fd and recycles it to -1).  Taking
  // write_mu and re-checking `closed` keeps the shutdown on the live
  // descriptor — never on a closed or reused fd number.
  for (auto& s : open) {
    std::lock_guard<std::mutex> lock(s->write_mu);
    if (!s->closed.load() && s->fd >= 0) ::shutdown(s->fd, SHUT_RDWR);
  }
  for (auto& s : open) {
    if (s->reader.joinable()) s->reader.join();
  }
  std::vector<std::shared_ptr<Session>> dead;
  {
    std::lock_guard<std::mutex> lock(mu_);
    dead.swap(dead_sessions_);
    completer_stop_ = true;
  }
  for (auto& s : dead) {
    if (s->reader.joinable()) s->reader.join();
  }
  done_cv_.notify_all();
  if (completer_.joinable()) completer_.join();
  pump_stop_.store(true);
  pump_wake();
  if (pump_.joinable()) pump_.join();
  service_.reset();  // joins the dispatcher after the queue drains
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (!cfg_.unix_path.empty()) ::unlink(cfg_.unix_path.c_str());
  logf("drained");
}

}  // namespace afp::service
