#include "service/protocol.hpp"

#include <cmath>
#include <cstdio>
#include <cstring>
#include <sstream>

#include "core/report.hpp"

namespace afp::service {

namespace {

std::string num(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

}  // namespace

std::string encode_frame(const std::string& payload) {
  if (payload.empty() || payload.size() > kMaxFrameBytes) {
    throw ProtocolError("frame payload size " + std::to_string(payload.size()) +
                            " outside (0, " + std::to_string(kMaxFrameBytes) +
                            "]",
                        core::JobErrorKind::kInternal);
  }
  const auto n = static_cast<std::uint32_t>(payload.size());
  std::string out;
  out.reserve(4 + payload.size());
  out.push_back(static_cast<char>((n >> 24) & 0xFF));
  out.push_back(static_cast<char>((n >> 16) & 0xFF));
  out.push_back(static_cast<char>((n >> 8) & 0xFF));
  out.push_back(static_cast<char>(n & 0xFF));
  out += payload;
  return out;
}

void FrameReader::feed(const char* data, std::size_t n) {
  buf_.append(data, n);
}

bool FrameReader::next(std::string* payload) {
  if (buf_.size() < 4) return false;
  const auto b = [&](std::size_t i) {
    return static_cast<std::uint32_t>(static_cast<unsigned char>(buf_[i]));
  };
  const std::uint32_t n = (b(0) << 24) | (b(1) << 16) | (b(2) << 8) | b(3);
  // A bad prefix is unrecoverable: once the length cannot be trusted, every
  // subsequent byte boundary is garbage too, so the session must close.
  // Junk input (an HTTP request, say) almost always lands here — 'GET '
  // decodes as a ~1.2 GB length.
  if (n == 0) {
    throw ProtocolError("zero-length frame");
  }
  if (n > max_frame_) {
    throw ProtocolError("frame length " + std::to_string(n) +
                        " exceeds the " + std::to_string(max_frame_) +
                        "-byte cap");
  }
  if (buf_.size() < 4u + n) return false;
  payload->assign(buf_, 4, n);
  buf_.erase(0, 4u + n);
  return true;
}

// -------------------------------------------------------------- requests ---

namespace {

[[noreturn]] void bad(const std::string& why) { throw ProtocolError(why); }

/// Rejects members outside `allowed` (a null-terminated array of names) so
/// a typoed key is an invalid_config error, never silently ignored.
void check_members(const JsonValue& obj, const char* what,
                   std::initializer_list<const char*> allowed) {
  for (const auto& [key, value] : obj.members()) {
    bool known = false;
    for (const char* a : allowed) known = known || key == a;
    if (!known) bad(std::string("unknown ") + what + " member \"" + key + "\"");
  }
}

int as_bounded_int(const JsonValue& v, const std::string& what, long long lo,
                   long long hi) {
  const long long x = v.as_int(what);
  if (x < lo || x > hi) {
    bad(what + " must be in [" + std::to_string(lo) + ", " +
        std::to_string(hi) + "]");
  }
  return static_cast<int>(x);
}

double as_budget_seconds(const JsonValue& v, const std::string& what) {
  const double s = v.as_number();
  if (!(s >= 0.0) || s > 1e9) bad(what + " must be in [0, 1e9] seconds");
  return s;
}

void parse_search(const JsonValue& v, core::SearchConfig* search) {
  check_members(v, "search", {"restarts", "base_seed", "iterations",
                              "wall_clock_s", "deadline_s", "quanta",
                              "max_retries"});
  if (const JsonValue* m = v.find("restarts")) {
    search->restarts = as_bounded_int(*m, "search.restarts", 1, 1 << 16);
  }
  if (const JsonValue* m = v.find("base_seed")) {
    search->base_seed = m->as_uint("search.base_seed");
  }
  if (const JsonValue* m = v.find("iterations")) {
    search->budget.iterations =
        as_bounded_int(*m, "search.iterations", 0, 1 << 30);
  }
  if (const JsonValue* m = v.find("wall_clock_s")) {
    search->budget.wall_clock_s = as_budget_seconds(*m, "search.wall_clock_s");
  }
  if (const JsonValue* m = v.find("deadline_s")) {
    search->budget.deadline_s = as_budget_seconds(*m, "search.deadline_s");
  }
  if (const JsonValue* m = v.find("quanta")) {
    search->budget.quanta = as_bounded_int(*m, "search.quanta", 0, 1 << 20);
  }
  if (const JsonValue* m = v.find("max_retries")) {
    search->retry.max_retries =
        as_bounded_int(*m, "search.max_retries", 0, 100);
  }
  if (search->budget.wall_clock_s > 0.0 && search->restarts > 1) {
    bad("search.restarts and search.wall_clock_s are mutually exclusive");
  }
}

void parse_config(const JsonValue& v, core::PipelineConfig* config) {
  check_members(v, "config", {"optimizer", "options", "constrained", "search"});
  if (const JsonValue* m = v.find("optimizer")) {
    config->optimizer = m->as_string();
  }
  if (const JsonValue* m = v.find("options")) {
    for (const auto& [key, value] : m->members()) {
      if (!value.is_string()) {
        bad("config.options." + key + " must be a string (option values are "
            "parsed by the optimizer's own strict parser)");
      }
      config->options[key] = value.as_string();
    }
  }
  if (const JsonValue* m = v.find("constrained")) {
    config->constrained = m->as_bool();
  }
  if (const JsonValue* m = v.find("search")) {
    parse_search(*m, &config->search);
  }
}

Request parse_submit(const JsonValue& v) {
  check_members(v, "submit", {"type", "circuit", "spice", "scenario", "name",
                              "seed", "priority", "config"});
  Request req;
  req.kind = Request::Kind::kSubmit;
  const JsonValue* circuit = v.find("circuit");
  const JsonValue* spice = v.find("spice");
  const JsonValue* scenario = v.find("scenario");
  const int sources = static_cast<int>(circuit != nullptr) +
                      static_cast<int>(spice != nullptr) +
                      static_cast<int>(scenario != nullptr);
  if (sources != 1) {
    bad("submit needs exactly one of \"circuit\", \"spice\" or \"scenario\"");
  }
  if (circuit) {
    req.submit.circuit = circuit->as_string();
    if (req.submit.circuit.empty()) bad("submit.circuit must be non-empty");
  } else if (spice) {
    req.submit.spice = spice->as_string();
    if (req.submit.spice.empty()) bad("submit.spice must be non-empty");
  } else {
    req.submit.scenario = scenario->as_string();
    if (req.submit.scenario.empty()) bad("submit.scenario must be non-empty");
  }
  req.submit.name = !req.submit.circuit.empty() ? req.submit.circuit
                    : !req.submit.scenario.empty() ? req.submit.scenario
                                                   : "spice";
  if (const JsonValue* m = v.find("name")) req.submit.name = m->as_string();
  if (const JsonValue* m = v.find("seed")) req.submit.seed = m->as_uint("seed");
  if (const JsonValue* m = v.find("priority")) {
    req.submit.priority = as_bounded_int(*m, "priority", -100, 100);
  }
  if (const JsonValue* m = v.find("config")) {
    parse_config(*m, &req.submit.config);
  }
  return req;
}

}  // namespace

Request parse_request(const std::string& payload) {
  const JsonValue v = json_parse(payload);
  if (!v.is_object()) bad("a request must be a JSON object");
  const std::string& type = v.at("type").as_string();
  if (type == "submit") return parse_submit(v);
  if (type == "cancel" || type == "deadline") {
    Request req;
    if (type == "cancel") {
      check_members(v, "cancel", {"type", "job"});
      req.kind = Request::Kind::kCancel;
    } else {
      check_members(v, "deadline", {"type", "job", "seconds"});
      req.kind = Request::Kind::kDeadline;
      req.seconds = v.at("seconds").as_number();
      if (!(req.seconds > 0.0) || req.seconds > 1e9) {
        bad("deadline.seconds must be in (0, 1e9]");
      }
    }
    req.job = v.at("job").as_uint("job");
    return req;
  }
  if (type == "ping") {
    check_members(v, "ping", {"type"});
    Request req;
    req.kind = Request::Kind::kPing;
    return req;
  }
  if (type == "stats") {
    check_members(v, "stats", {"type"});
    Request req;
    req.kind = Request::Kind::kStats;
    return req;
  }
  if (type == "orphans") {
    check_members(v, "orphans", {"type"});
    Request req;
    req.kind = Request::Kind::kOrphans;
    return req;
  }
  if (type == "keepalive_ack") {
    check_members(v, "keepalive_ack", {"type", "seq"});
    Request req;
    req.kind = Request::Kind::kKeepaliveAck;
    req.seq = v.at("seq").as_uint("seq");
    return req;
  }
  bad("unknown request type \"" + type + "\"");
}

// ------------------------------------------------------------- responses ---

std::string accepted_json(std::uint64_t job, bool queued) {
  std::ostringstream os;
  os << "{\"type\": \"accepted\", \"job\": " << job << ", \"queued\": "
     << (queued ? "true" : "false") << "}";
  return os.str();
}

std::string ok_json(std::uint64_t job) {
  std::ostringstream os;
  os << "{\"type\": \"ok\", \"job\": " << job << "}";
  return os.str();
}

std::string pong_json(bool draining) {
  std::ostringstream os;
  os << "{\"type\": \"pong\", \"draining\": " << (draining ? "true" : "false")
     << "}";
  return os.str();
}

std::string progress_json(std::uint64_t job, const core::JobProgress& p,
                          std::uint64_t dropped) {
  std::ostringstream os;
  os << "{\"type\": \"progress\", \"job\": " << job << ", \"status\": \""
     << core::to_string(p.status) << "\", \"runtime_s\": " << num(p.runtime_s)
     << ", \"attempt\": " << p.attempt;
  if (dropped > 0) os << ", \"dropped_progress\": " << dropped;
  os << "}";
  return os.str();
}

std::string keepalive_json(std::uint64_t seq) {
  std::ostringstream os;
  os << "{\"type\": \"keepalive\", \"seq\": " << seq << "}";
  return os.str();
}

std::string stats_json(const ServerStats& s) {
  std::ostringstream os;
  os << "{\"type\": \"stats\", \"sessions\": " << s.sessions
     << ", \"inflight\": " << s.inflight << ", \"parked\": " << s.parked
     << ", \"queued_frames\": " << s.queued_frames
     << ", \"queued_bytes\": " << s.queued_bytes
     << ", \"dropped_progress\": " << s.dropped_progress
     << ", \"write_timeouts\": " << s.write_timeouts
     << ", \"idle_timeouts\": " << s.idle_timeouts
     << ", \"keepalives_sent\": " << s.keepalives_sent
     << ", \"strikes\": " << s.strikes
     << ", \"strike_ejections\": " << s.strike_ejections
     << ", \"journal_live\": " << s.journal_live
     << ", \"journal_orphans\": " << s.journal_orphans
     << ", \"draining\": " << (s.draining ? "true" : "false") << "}";
  return os.str();
}

std::string orphans_json(const std::vector<JournalEntry>& orphans) {
  std::ostringstream os;
  os << "{\"type\": \"orphans\", \"count\": " << orphans.size()
     << ", \"jobs\": [";
  bool first = true;
  for (const JournalEntry& e : orphans) {
    if (!first) os << ", ";
    first = false;
    os << "{\"job\": " << e.job << ", \"name\": \""
       << core::json_escape(e.name) << "\", \"seed\": " << e.seed
       << ", \"identity\": " << e.identity << ", \"error\": {\"kind\": \""
       << core::to_string(core::JobErrorKind::kInternal)
       << "\", \"message\": \"job lost in a daemon crash before completion; "
          "resubmit with this seed to reproduce\"}}";
  }
  os << "]}";
  return os.str();
}

std::string error_json(core::JobErrorKind kind, const std::string& message,
                       std::optional<std::uint64_t> job) {
  std::ostringstream os;
  os << "{\"type\": \"error\", \"kind\": \"" << core::to_string(kind)
     << "\", \"message\": \"" << core::json_escape(message) << "\", \"job\": ";
  if (job) {
    os << *job;
  } else {
    os << "null";
  }
  os << "}";
  return os.str();
}

std::string result_json(std::uint64_t job, const core::JobReport& report) {
  // Splice the shared per-job emitter: everything after its opening brace
  // (name/status/seed/.../report) keeps the exact bytes batch_report_json
  // and therefore `afp_cli --report-json` would produce.
  const std::string body = core::job_report_json(report);
  std::ostringstream os;
  os << "{\"type\": \"result\", \"job\": " << job << ", " << body.substr(1);
  return os.str();
}

std::string result_report_slice(const std::string& payload) {
  // "report" is by construction the final member of a result frame, and the
  // marker below cannot occur inside any JSON string (json_escape always
  // escapes the quote), so the slice is exact.
  static const char kMarker[] = ", \"report\": ";
  if (payload.rfind("{\"type\": \"result\"", 0) != 0) return {};
  const std::size_t at = payload.find(kMarker);
  if (at == std::string::npos || payload.empty() || payload.back() != '}') {
    return {};
  }
  return payload.substr(at + sizeof(kMarker) - 1,
                        payload.size() - (at + sizeof(kMarker) - 1) - 1);
}

}  // namespace afp::service
