// afpd wire protocol: length-prefixed JSON frames.
//
// Every message is one frame: a 4-byte big-endian payload length followed
// by exactly that many bytes of UTF-8 JSON (one object).  Frames are the
// only unit of exchange in both directions; there is no streaming inside a
// frame and no delimiter scanning — a reader always knows how many bytes it
// is waiting for.  The length prefix is capped (kMaxFrameBytes): a prefix
// above the cap, a zero length or bytes that cannot be a prefix at all
// (junk) are protocol errors that close the connection after a structured
// `error` response where one can still be written.
//
// Requests (client -> server), selected by the "type" member:
//
//   {"type": "submit", "circuit": <registry name>, ...}
//       or "spice": <inline netlist text>, or "scenario": a generated-
//       workload spec "family:size:seed[:key=val...]" — exactly one of the
//       three.
//       Optional: "name" (job label, defaults to the circuit spec),
//       "seed" (explicit rng seed; bitwise-matches `afp_cli floorplan
//       --seed N`; 0/absent derives a per-job seed), "priority" (higher
//       admits first from the wait queue; default 0), "config" {
//         "optimizer": <registry key>, "options": {<k>: <v-string>, ...},
//         "constrained": <bool>, "search": {"restarts", "base_seed",
//         "iterations", "wall_clock_s", "deadline_s", "quanta",
//         "max_retries"}}
//       — the same member names core/report emits, unknown members
//       rejected (invalid_config), all optional with pipeline defaults.
//   {"type": "cancel", "job": N}     cancel a queued or running job
//   {"type": "deadline", "job": N, "seconds": S}
//       arm (or re-arm) a watchdog deadline on an already-submitted job —
//       S seconds from *now*; the job stops within one poll stride.
//   {"type": "ping"}                 liveness / drain probe
//   {"type": "stats"}                resilience/queue counters snapshot
//   {"type": "orphans"}              jobs a crashed predecessor lost
//                                    (crash-recovery journal replay)
//   {"type": "keepalive_ack", "seq": N}
//       reply to a server keepalive probe; counts as session activity but
//       produces no response frame of its own.
//
// Responses (server -> client):
//
//   {"type": "accepted", "job": N, "queued": <bool>}   submit ack
//   {"type": "ok", "job": N}                           cancel/deadline ack
//   {"type": "pong", "draining": <bool>}               ping reply
//   {"type": "progress", "job": N, "status": <s>, "runtime_s": R,
//    "attempt": A[, "dropped_progress": D]}            streamed per job;
//       D > 0 reports progress frames dropped for this session under
//       write-queue backpressure since the last delivered progress frame
//       (result/error frames are never dropped).
//   {"type": "keepalive", "seq": N}  server-initiated liveness probe; a
//       client must answer (keepalive_ack or any other request) before the
//       idle timeout or the session is reaped as half-open.
//   {"type": "stats", ...}           see stats_json below / README
//   {"type": "orphans", "count": N, "jobs": [...]}     journal replay
//   {"type": "error", "kind": <JobErrorKind>, "message": <m>, "job": N|null}
//   {"type": "result", "job": N, <core::job_report_json body>}
//       terminal report; the nested "report" member is emitted by the same
//       code path as `afp_cli --report-json`, is ALWAYS the final member,
//       and can therefore be sliced out of the frame verbatim (see
//       Client::Result::report_raw) for bitwise comparisons.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include <vector>

#include "core/job_service.hpp"
#include "service/journal.hpp"
#include "service/json.hpp"

namespace afp::service {

/// Hard cap on a frame payload (a submit with an inline SPICE deck is the
/// largest legitimate message; reports stay far below this too).
constexpr std::uint32_t kMaxFrameBytes = 4u << 20;

/// Malformed request at the protocol level (bad JSON, unknown member, bad
/// type, oversized value...).  Mapped to an `error` response with the given
/// kind — kInvalidConfig for everything a client said wrong.
struct ProtocolError : std::runtime_error {
  explicit ProtocolError(const std::string& why,
                         core::JobErrorKind k = core::JobErrorKind::kInvalidConfig)
      : std::runtime_error(why), kind(k) {}
  core::JobErrorKind kind;
};

/// 4-byte big-endian length prefix + payload.  Throws ProtocolError when
/// payload exceeds kMaxFrameBytes (a server must never emit an unreadable
/// frame).
std::string encode_frame(const std::string& payload);

/// Incremental frame decoder: feed() raw bytes as they arrive, then next()
/// until it returns false.  A malformed prefix (zero or above the cap)
/// throws ProtocolError — the connection is beyond recovery because frame
/// boundaries are lost.  Truncation (EOF mid-frame) is the *caller's*
/// signal: `idle()` says whether the buffer holds a partial frame.
class FrameReader {
 public:
  explicit FrameReader(std::uint32_t max_frame = kMaxFrameBytes)
      : max_frame_(max_frame) {}

  void feed(const char* data, std::size_t n);
  /// Extracts the next complete payload; false when more bytes are needed.
  bool next(std::string* payload);
  /// True when no partial frame is buffered (a clean point to disconnect).
  bool idle() const { return buf_.empty(); }

 private:
  std::uint32_t max_frame_;
  std::string buf_;
};

// ------------------------------------------------------------- requests ---

struct SubmitRequest {
  std::string circuit;       ///< registry circuit name ("" when spice given)
  std::string spice;         ///< inline netlist text ("" when circuit given)
  /// Generated-workload spec "family:size:seed[:key=val...]" — the third
  /// exclusive workload source next to `circuit` and `spice`.
  std::string scenario;
  std::string name;          ///< job label; defaults to `circuit`
  std::uint64_t seed = 0;    ///< 0 = derive from the daemon's base seed
  int priority = 0;          ///< admission order among queued jobs
  core::PipelineConfig config;
};

struct Request {
  enum class Kind {
    kSubmit,
    kCancel,
    kDeadline,
    kPing,
    kStats,
    kOrphans,
    kKeepaliveAck,
  };
  Kind kind = Kind::kPing;
  SubmitRequest submit;      ///< kSubmit only
  std::uint64_t job = 0;     ///< kCancel / kDeadline
  double seconds = 0.0;      ///< kDeadline
  std::uint64_t seq = 0;     ///< kKeepaliveAck
};

/// Parses and validates one request payload.  Strict: every member is
/// checked by name and type, unknown members are rejected, numeric members
/// must be exactly-representable integers where integers are expected.
/// Throws ProtocolError (or JsonError for malformed JSON).
Request parse_request(const std::string& payload);

// ------------------------------------------------------------ responses ---

/// Resilience counters served by the `stats` request (stats_json).  All
/// totals are monotonic since daemon start; gauges are instantaneous.
struct ServerStats {
  std::uint64_t sessions = 0;          ///< gauge: live sessions
  std::uint64_t inflight = 0;          ///< gauge: admitted jobs running
  std::uint64_t parked = 0;            ///< gauge: jobs waiting for a slot
  std::uint64_t queued_frames = 0;     ///< gauge: frames pending in out-queues
  std::uint64_t queued_bytes = 0;      ///< gauge: bytes pending in out-queues
  std::uint64_t dropped_progress = 0;  ///< total progress frames dropped
  std::uint64_t write_timeouts = 0;    ///< total stalled-writer disconnects
  std::uint64_t idle_timeouts = 0;     ///< total idle/half-open reaps
  std::uint64_t keepalives_sent = 0;   ///< total keepalive probes sent
  std::uint64_t strikes = 0;           ///< total malformed-request strikes
  std::uint64_t strike_ejections = 0;  ///< total sessions ejected on strikes
  std::uint64_t journal_live = 0;      ///< gauge: journaled unfinished jobs
  std::uint64_t journal_orphans = 0;   ///< jobs a crashed predecessor lost
  bool draining = false;
};

std::string accepted_json(std::uint64_t job, bool queued);
std::string ok_json(std::uint64_t job);
std::string pong_json(bool draining);
/// `dropped` > 0 appends a "dropped_progress" member: progress frames this
/// session lost to backpressure since the last delivered one.  Zero keeps
/// the byte layout of every previously-emitted progress frame unchanged.
std::string progress_json(std::uint64_t job, const core::JobProgress& p,
                          std::uint64_t dropped = 0);
std::string keepalive_json(std::uint64_t seq);
std::string stats_json(const ServerStats& s);
/// Journal replay: every job a crashed predecessor accepted but never
/// finished, each as a structured `internal` error object.
std::string orphans_json(const std::vector<JournalEntry>& orphans);
std::string error_json(core::JobErrorKind kind, const std::string& message,
                       std::optional<std::uint64_t> job = std::nullopt);
/// Terminal report frame; splices core::job_report_json so the nested
/// "report" member is byte-identical to the CLI/batch emitters.
std::string result_json(std::uint64_t job, const core::JobReport& report);

/// Byte range of the nested single-run report inside a `result` payload
/// ("null" for unfinished jobs); empty when `payload` is not a result
/// frame.  Exact slicing, no re-serialization — this is the bitwise-parity
/// hook used by afp_loadgen and the tests.
std::string result_report_slice(const std::string& payload);

}  // namespace afp::service
