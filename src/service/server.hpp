// afpd server: a Unix-socket / loopback-TCP listener speaking the
// length-prefixed JSON protocol (service/protocol.hpp), one session per
// client on top of the shared core::JobService.
//
// Thread model:
//
//   * serve()           — the accept loop (caller's thread); poll()s the
//                         listen socket and a self-pipe so request_drain()
//                         (async-signal-safe) can interrupt it,
//   * one reader thread per session — recv -> FrameReader -> requests;
//                         replies and async events are *enqueued* on the
//                         session's bounded outbound queue under its write
//                         mutex (frames never interleave) and flushed with
//                         non-blocking sends,
//   * one pump thread    — poll()s POLLOUT for sessions with queued output
//                         and runs the resilience timers: the write
//                         deadline (a client that stalls the writer past
//                         cfg.write_deadline_s is disconnected, its jobs
//                         cancelled), the keepalive probe (at half the idle
//                         timeout) and the idle/half-open reap,
//   * JobService workers — run the jobs; the progress callback routes
//                         events to the owning session,
//   * one completer thread — collects terminal jobs, queues the `result`
//                         frame, releases the admission slot and launches
//                         parked jobs.  Single-threaded on purpose: result
//                         delivery and admission hand-off stay ordered.
//
// Backpressure: a session's outbound queue is bounded
// (cfg.queue_frames/queue_bytes).  Progress frames are droppable — at the
// bound they are counted, not queued, and the count is echoed to the client
// as a "dropped_progress" member on the next progress frame that does fit.
// Result/error/ack frames are NEVER dropped: they are queued past the bound
// and the write deadline is the backstop against a client that won't read
// them.  A slow reader therefore loses only progress granularity; a stalled
// one loses its session (and its jobs), never the server.
//
// Crash recovery: with cfg.journal_path set, every accepted job is recorded
// in an atomically-rewritten journal until its terminal frame is queued.  A
// daemon killed mid-job leaves the entries behind; the restarted daemon
// loads them (take_orphans), logs each, serves them via the `orphans`
// request as structured internal errors, and counts them in `stats`.
//
// Job lifecycle: submit -> admission verdict (run / parked / rejected) ->
// JobService::submit (immediately or when a slot frees) -> progress frames
// -> terminal `result` frame.  Cancels map onto the job's CancelToken;
// client `deadline` requests arm the token mid-run (the watchdog path).
//
// Drain (SIGTERM or request_drain()): stop accepting sessions, reject new
// submits ("draining"), let in-flight and parked jobs finish for
// drain_grace_s, then cancel whatever is left via the service-wide token;
// every accepted job still gets its terminal `result` frame before the
// sockets close.
//
// Determinism: a job submitted with an explicit seed is executed by the
// same JobService::run_job path as `afp_cli floorplan --seed N` and its
// nested report is emitted by the same core/report code — byte-identical
// output, which afp_loadgen and the smoke tests verify.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/job_service.hpp"
#include "service/admission.hpp"
#include "service/journal.hpp"
#include "service/protocol.hpp"

namespace afp::service {

struct ServerConfig {
  /// Unix-domain socket path (primary listener; "" disables).
  std::string unix_path;
  /// Loopback TCP port (used when unix_path is empty; 0 picks a free port).
  int tcp_port = -1;
  AdmissionConfig admission{};
  std::uint64_t base_seed = 1;    ///< derives seeds for seed-less submits
  double drain_grace_s = 5.0;     ///< drain: finish window before cancelling
  bool log = false;               ///< one stderr line per lifecycle event
  /// A session whose outbound queue makes no forward progress for this long
  /// is disconnected and its jobs cancelled (AFPD_WRITE_DEADLINE; <= 0
  /// disables — a stalled client can then wedge only its own session's
  /// memory, bounded by queue_frames, never a server thread).
  double write_deadline_s = 10.0;
  /// A session with no inbound traffic for this long is reaped as idle /
  /// half-open (AFPD_IDLE_TIMEOUT; <= 0 disables).  A keepalive probe goes
  /// out at half this; a live-but-quiet client answers it (the Client class
  /// does so automatically) and is never reaped.
  double idle_timeout_s = 300.0;
  /// Outbound queue bounds per session (AFPD_QUEUE_FRAMES).  Progress
  /// frames beyond either bound are dropped and counted; result/error
  /// frames always queue.
  std::size_t queue_frames = 256;
  std::size_t queue_bytes = 1u << 20;
  /// Crash-recovery journal path (AFPD_JOURNAL; "" disables).
  std::string journal_path;
};

class Server {
 public:
  explicit Server(ServerConfig cfg);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds and listens (clients may connect as soon as this returns) and
  /// starts the worker threads.  Throws std::runtime_error on bind failure.
  void start();

  /// Accept loop; returns after a requested drain has fully completed
  /// (all jobs terminal, results flushed, sessions closed).
  void serve();

  /// Async-signal-safe: one write() to a self-pipe.  The accept loop picks
  /// it up and runs the drain.  Safe to call more than once.
  void request_drain();

  bool draining() const { return draining_.load(); }
  /// Bound TCP port (after start(); 0 for a unix-socket server).
  int port() const { return bound_port_; }

  /// Snapshot of the resilience counters (what the `stats` request serves).
  ServerStats stats_snapshot();

  /// Jobs a crashed predecessor accepted but never finished (loaded from
  /// the journal at start(); immutable afterwards).
  const std::vector<JournalEntry>& orphans() const { return orphans_; }

  /// Test seam: while paused the pump (and the inline fast path) stops
  /// flushing outbound queues — timers still run.  Deterministically
  /// simulates a kernel socket buffer that accepts nothing, which real
  /// sockets only do after absorbing ~100s of KB.
  void set_writer_paused(bool paused);

 private:
  using Clock = std::chrono::steady_clock;

  struct Session {
    std::uint64_t id = 0;
    int fd = -1;
    std::thread reader;
    std::mutex write_mu;
    std::atomic<bool> closed{false};
    // Outbound queue (guarded by write_mu): encoded frames the pump
    // flushes with non-blocking sends.
    std::deque<std::string> outq;
    std::size_t outq_head = 0;   ///< bytes of outq.front() already sent
    std::size_t outq_bytes = 0;  ///< total bytes across outq
    /// Progress frames dropped since the last delivered progress frame;
    /// echoed (and reset) via the next one's "dropped_progress" member.
    std::uint64_t dropped_progress = 0;
    /// Last time the queue made forward progress (or became non-empty);
    /// the write deadline measures from here.
    Clock::time_point stall_since{};
    // Liveness (reader writes, pump reads).
    std::atomic<std::int64_t> last_recv_ms{0};
    std::atomic<bool> keepalive_pending{false};
    /// When the outstanding probe was sent (Server::now_ms clock): the reap
    /// fires only after the probe has gone unanswered for half the idle
    /// window, so a starved pump cannot reap before the client could ack.
    std::atomic<std::int64_t> keepalive_sent_ms{0};
    std::uint64_t keepalive_seq = 0;  ///< pump thread only
  };

  struct JobRecord {
    std::uint64_t job = 0;
    std::uint64_t session = 0;
    bool running = false;           ///< false: parked, spec not yet submitted
    bool cancel_requested = false;  ///< parked-phase cancel
    double pending_deadline_s = 0;  ///< parked-phase deadline request
    core::JobSpec spec;
    core::JobService::Handle handle;  ///< valid when running
  };

  void accept_loop();
  void drain();
  void reader_loop(const std::shared_ptr<Session>& s);
  void session_closed(const std::shared_ptr<Session>& s);
  /// False: the session must close (strike limit reached).
  bool handle_request(const std::shared_ptr<Session>& s,
                      const std::string& payload);
  void handle_submit(const std::shared_ptr<Session>& s, SubmitRequest req);
  /// Submits a record's spec to the JobService; mu_ must be held.
  void launch_locked(JobRecord& rec);
  /// Launches every job admission just released (ids from release()).
  void launch_all(const std::vector<std::uint64_t>& jobs);
  /// Terminal path for a job that never ran (parked cancel, dead session).
  void finish_unrun(std::uint64_t job, JobRecord rec,
                    const std::string& message,
                    const std::shared_ptr<Session>& sess);
  void completer_loop();
  void on_progress(const core::JobProgress& p);
  /// Queues a non-droppable frame (result/error/ack/...) and flushes
  /// opportunistically; never drops, never blocks.
  void write_frame(const std::shared_ptr<Session>& s,
                   const std::string& payload);
  /// Queues a progress frame — droppable: at the queue bound it is counted
  /// instead, and the pending count rides the next frame that fits.
  void write_progress(const std::shared_ptr<Session>& s, std::uint64_t job,
                      const core::JobProgress& p);
  bool queue_full_locked(const Session& s) const;
  void enqueue_locked(Session& s, std::string frame);
  /// Non-blocking sends until the queue empties or the socket would block.
  void flush_locked(Session& s);
  void pump_loop();
  void pump_wake();
  void logf(const char* fmt, ...);

  ServerConfig cfg_;
  int listen_fd_ = -1;
  int bound_port_ = 0;
  int wake_pipe_[2] = {-1, -1};
  int pump_pipe_[2] = {-1, -1};

  metaheur::CancelToken drain_token_;
  AdmissionQueue admission_;
  std::unique_ptr<core::JobService> service_;

  std::mutex mu_;
  std::condition_variable jobs_cv_;  ///< jobs_ shrank (drain waits on empty)
  std::map<std::uint64_t, std::shared_ptr<Session>> sessions_;
  std::vector<std::shared_ptr<Session>> dead_sessions_;
  std::map<std::uint64_t, JobRecord> jobs_;
  std::map<std::uint64_t, std::uint64_t> svc_to_job_;
  std::uint64_t next_session_ = 1;
  std::uint64_t next_job_ = 1;

  std::deque<std::uint64_t> done_svc_;  ///< terminal service ids, FIFO
  std::condition_variable done_cv_;
  bool completer_stop_ = false;
  std::thread completer_;

  std::thread pump_;
  std::atomic<bool> pump_stop_{false};
  std::atomic<bool> writer_paused_{false};

  Journal journal_;
  std::vector<JournalEntry> orphans_;

  std::atomic<std::uint64_t> dropped_progress_total_{0};
  std::atomic<std::uint64_t> write_timeouts_{0};
  std::atomic<std::uint64_t> idle_timeouts_{0};
  std::atomic<std::uint64_t> keepalives_sent_{0};

  std::atomic<bool> draining_{false};
};

}  // namespace afp::service
