// afpd server: a Unix-socket / loopback-TCP listener speaking the
// length-prefixed JSON protocol (service/protocol.hpp), one session per
// client on top of the shared core::JobService.
//
// Thread model:
//
//   * serve()           — the accept loop (caller's thread); poll()s the
//                         listen socket and a self-pipe so request_drain()
//                         (async-signal-safe) can interrupt it,
//   * one reader thread per session — recv -> FrameReader -> requests;
//                         replies and async events are written under the
//                         session's write mutex, so frames never interleave,
//   * JobService workers — run the jobs; the progress callback routes
//                         events to the owning session,
//   * one completer thread — collects terminal jobs, writes the `result`
//                         frame, releases the admission slot and launches
//                         parked jobs.  Single-threaded on purpose: result
//                         delivery and admission hand-off stay ordered.
//
// Job lifecycle: submit -> admission verdict (run / parked / rejected) ->
// JobService::submit (immediately or when a slot frees) -> progress frames
// -> terminal `result` frame.  Cancels map onto the job's CancelToken;
// client `deadline` requests arm the token mid-run (the watchdog path).
//
// Drain (SIGTERM or request_drain()): stop accepting sessions, reject new
// submits ("draining"), let in-flight and parked jobs finish for
// drain_grace_s, then cancel whatever is left via the service-wide token;
// every accepted job still gets its terminal `result` frame before the
// sockets close.
//
// Determinism: a job submitted with an explicit seed is executed by the
// same JobService::run_job path as `afp_cli floorplan --seed N` and its
// nested report is emitted by the same core/report code — byte-identical
// output, which afp_loadgen and the smoke tests verify.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/job_service.hpp"
#include "service/admission.hpp"
#include "service/protocol.hpp"

namespace afp::service {

struct ServerConfig {
  /// Unix-domain socket path (primary listener; "" disables).
  std::string unix_path;
  /// Loopback TCP port (used when unix_path is empty; 0 picks a free port).
  int tcp_port = -1;
  AdmissionConfig admission{};
  std::uint64_t base_seed = 1;    ///< derives seeds for seed-less submits
  double drain_grace_s = 5.0;     ///< drain: finish window before cancelling
  bool log = false;               ///< one stderr line per lifecycle event
};

class Server {
 public:
  explicit Server(ServerConfig cfg);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds and listens (clients may connect as soon as this returns) and
  /// starts the worker threads.  Throws std::runtime_error on bind failure.
  void start();

  /// Accept loop; returns after a requested drain has fully completed
  /// (all jobs terminal, results flushed, sessions closed).
  void serve();

  /// Async-signal-safe: one write() to a self-pipe.  The accept loop picks
  /// it up and runs the drain.  Safe to call more than once.
  void request_drain();

  bool draining() const { return draining_.load(); }
  /// Bound TCP port (after start(); 0 for a unix-socket server).
  int port() const { return bound_port_; }

 private:
  struct Session {
    std::uint64_t id = 0;
    int fd = -1;
    std::thread reader;
    std::mutex write_mu;
    std::atomic<bool> closed{false};
  };

  struct JobRecord {
    std::uint64_t job = 0;
    std::uint64_t session = 0;
    bool running = false;           ///< false: parked, spec not yet submitted
    bool cancel_requested = false;  ///< parked-phase cancel
    double pending_deadline_s = 0;  ///< parked-phase deadline request
    core::JobSpec spec;
    core::JobService::Handle handle;  ///< valid when running
  };

  void accept_loop();
  void drain();
  void reader_loop(const std::shared_ptr<Session>& s);
  void session_closed(const std::shared_ptr<Session>& s);
  void handle_request(const std::shared_ptr<Session>& s,
                      const std::string& payload);
  void handle_submit(const std::shared_ptr<Session>& s, SubmitRequest req);
  /// Submits a record's spec to the JobService; mu_ must be held.
  void launch_locked(JobRecord& rec);
  /// Launches every job admission just released (ids from release()).
  void launch_all(const std::vector<std::uint64_t>& jobs);
  /// Terminal path for a job that never ran (parked cancel, dead session).
  void finish_unrun(std::uint64_t job, JobRecord rec,
                    const std::string& message,
                    const std::shared_ptr<Session>& sess);
  void completer_loop();
  void on_progress(const core::JobProgress& p);
  void write_frame(const std::shared_ptr<Session>& s,
                   const std::string& payload);
  void logf(const char* fmt, ...);

  ServerConfig cfg_;
  int listen_fd_ = -1;
  int bound_port_ = 0;
  int wake_pipe_[2] = {-1, -1};

  metaheur::CancelToken drain_token_;
  AdmissionQueue admission_;
  std::unique_ptr<core::JobService> service_;

  std::mutex mu_;
  std::condition_variable jobs_cv_;  ///< jobs_ shrank (drain waits on empty)
  std::map<std::uint64_t, std::shared_ptr<Session>> sessions_;
  std::vector<std::shared_ptr<Session>> dead_sessions_;
  std::map<std::uint64_t, JobRecord> jobs_;
  std::map<std::uint64_t, std::uint64_t> svc_to_job_;
  std::uint64_t next_session_ = 1;
  std::uint64_t next_job_ = 1;

  std::deque<std::uint64_t> done_svc_;  ///< terminal service ids, FIFO
  std::condition_variable done_cv_;
  bool completer_stop_ = false;
  std::thread completer_;

  std::atomic<bool> draining_{false};
};

}  // namespace afp::service
