#include "service/client.hpp"

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <sstream>

#include "core/report.hpp"

namespace afp::service {

namespace {

[[noreturn]] void sys_fail(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

}  // namespace

Client Client::connect_unix(const std::string& path) {
  if (path.size() >= sizeof(sockaddr_un{}.sun_path)) {
    throw std::runtime_error("socket path too long: " + path);
  }
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) sys_fail("socket");
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    const int e = errno;
    ::close(fd);
    errno = e;
    sys_fail("connect " + path);
  }
  return Client(fd);
}

Client Client::connect_tcp(const std::string& host, int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) sys_fail("socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    throw std::runtime_error("bad IPv4 address '" + host + "'");
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    const int e = errno;
    ::close(fd);
    errno = e;
    sys_fail("connect " + host + ":" + std::to_string(port));
  }
  return Client(fd);
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

Client::Client(Client&& other) noexcept
    : fd_(other.fd_),
      reader_(std::move(other.reader_)),
      progress_(std::move(other.progress_)),
      results_(std::move(other.results_)) {
  other.fd_ = -1;
}

void Client::send_raw(const std::string& bytes) {
  const char* p = bytes.data();
  std::size_t left = bytes.size();
  while (left > 0) {
    const ssize_t n = ::send(fd_, p, left, MSG_NOSIGNAL);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) sys_fail("send");
    p += n;
    left -= static_cast<std::size_t>(n);
  }
}

void Client::send_frame(const std::string& payload) {
  send_raw(encode_frame(payload));
}

void Client::shutdown_write() { ::shutdown(fd_, SHUT_WR); }

std::string Client::read_frame() {
  std::string payload;
  while (!reader_.next(&payload)) {
    char buf[4096];
    const ssize_t n = ::recv(fd_, buf, sizeof buf, 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {
      throw std::runtime_error(reader_.idle()
                                   ? "connection closed by server"
                                   : "connection closed mid-frame");
    }
    reader_.feed(buf, static_cast<std::size_t>(n));
  }
  return payload;
}

void Client::stash(const JsonValue& v, const std::string& payload) {
  const std::string& type = v.at("type").as_string();
  if (type == "keepalive") {
    // Auto-ack so a client blocked in await_result never reads as
    // half-open to the server; no reply frame comes back for the ack.
    send_frame("{\"type\": \"keepalive_ack\", \"seq\": " +
               std::to_string(v.at("seq").as_uint("seq")) + "}");
    return;
  }
  if (type == "progress") {
    Progress p;
    p.job = v.at("job").as_uint("job");
    p.status = v.at("status").as_string();
    p.runtime_s = v.at("runtime_s").is_null() ? 0.0
                                              : v.at("runtime_s").as_number();
    p.attempt = static_cast<int>(v.at("attempt").as_int("attempt"));
    if (const JsonValue* d = v.find("dropped_progress")) {
      p.dropped = d->as_uint("dropped_progress");
    }
    progress_.push_back(std::move(p));
    return;
  }
  if (type == "result") {
    Result r;
    r.job = v.at("job").as_uint("job");
    r.name = v.at("name").as_string();
    r.status = v.at("status").as_string();
    r.seed = v.at("seed").as_uint("seed");
    r.attempts = static_cast<int>(v.at("attempts").as_int("attempts"));
    if (const JsonValue* err = v.find("error"); err && err->is_object()) {
      r.error_kind = err->at("kind").as_string();
      r.error_message = err->at("message").as_string();
    }
    r.report_raw = result_report_slice(payload);
    results_[r.job] = std::move(r);
    return;
  }
  throw std::runtime_error("unexpected frame of type \"" + type + "\"");
}

JsonValue Client::read_reply() {
  for (;;) {
    const std::string payload = read_frame();
    const JsonValue v = json_parse(payload);
    const std::string& type = v.at("type").as_string();
    if (type == "progress" || type == "result" || type == "keepalive") {
      stash(v, payload);
      continue;
    }
    if (type == "error") {
      const JsonValue& msg = v.at("message");
      throw ServerError(v.at("kind").as_string(), msg.as_string());
    }
    return v;
  }
}

Client::Accepted Client::submit(const std::string& circuit,
                                std::uint64_t seed, int priority,
                                const std::string& config_json) {
  std::ostringstream os;
  os << "{\"type\": \"submit\", \"circuit\": \"" << core::json_escape(circuit)
     << "\", \"seed\": " << seed << ", \"priority\": " << priority;
  if (!config_json.empty()) os << ", \"config\": " << config_json;
  os << "}";
  send_frame(os.str());
  const JsonValue v = read_reply();
  if (v.at("type").as_string() != "accepted") {
    throw std::runtime_error("expected an accepted reply");
  }
  return Accepted{v.at("job").as_uint("job"), v.at("queued").as_bool()};
}

Client::Accepted Client::submit_spice(const std::string& spice,
                                      const std::string& name,
                                      std::uint64_t seed, int priority,
                                      const std::string& config_json) {
  std::ostringstream os;
  os << "{\"type\": \"submit\", \"spice\": \"" << core::json_escape(spice)
     << "\", \"name\": \"" << core::json_escape(name)
     << "\", \"seed\": " << seed << ", \"priority\": " << priority;
  if (!config_json.empty()) os << ", \"config\": " << config_json;
  os << "}";
  send_frame(os.str());
  const JsonValue v = read_reply();
  if (v.at("type").as_string() != "accepted") {
    throw std::runtime_error("expected an accepted reply");
  }
  return Accepted{v.at("job").as_uint("job"), v.at("queued").as_bool()};
}

Client::Accepted Client::submit_scenario(const std::string& scenario,
                                         std::uint64_t seed, int priority,
                                         const std::string& config_json) {
  std::ostringstream os;
  os << "{\"type\": \"submit\", \"scenario\": \""
     << core::json_escape(scenario) << "\", \"seed\": " << seed
     << ", \"priority\": " << priority;
  if (!config_json.empty()) os << ", \"config\": " << config_json;
  os << "}";
  send_frame(os.str());
  const JsonValue v = read_reply();
  if (v.at("type").as_string() != "accepted") {
    throw std::runtime_error("expected an accepted reply");
  }
  return Accepted{v.at("job").as_uint("job"), v.at("queued").as_bool()};
}

void Client::cancel(std::uint64_t job) {
  send_frame("{\"type\": \"cancel\", \"job\": " + std::to_string(job) + "}");
  (void)read_reply();  // ok
}

void Client::set_deadline(std::uint64_t job, double seconds) {
  std::ostringstream os;
  os << "{\"type\": \"deadline\", \"job\": " << job
     << ", \"seconds\": " << seconds << "}";
  send_frame(os.str());
  (void)read_reply();  // ok
}

bool Client::ping() {
  send_frame("{\"type\": \"ping\"}");
  const JsonValue v = read_reply();
  if (v.at("type").as_string() != "pong") {
    throw std::runtime_error("expected a pong reply");
  }
  return v.at("draining").as_bool();
}

JsonValue Client::stats() {
  send_frame("{\"type\": \"stats\"}");
  JsonValue v = read_reply();
  if (v.at("type").as_string() != "stats") {
    throw std::runtime_error("expected a stats reply");
  }
  return v;
}

JsonValue Client::orphans() {
  send_frame("{\"type\": \"orphans\"}");
  JsonValue v = read_reply();
  if (v.at("type").as_string() != "orphans") {
    throw std::runtime_error("expected an orphans reply");
  }
  return v;
}

Client::Result Client::await_result(std::uint64_t job) {
  for (;;) {
    auto it = results_.find(job);
    if (it != results_.end()) {
      Result r = std::move(it->second);
      results_.erase(it);
      return r;
    }
    const std::string payload = read_frame();
    const JsonValue v = json_parse(payload);
    const std::string& type = v.at("type").as_string();
    if (type == "error") {
      throw ServerError(v.at("kind").as_string(),
                        v.at("message").as_string());
    }
    stash(v, payload);
  }
}

}  // namespace afp::service
