#include "ingest/spice_parser.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <vector>

namespace afp::ingest {

namespace {

using netlist::Device;
using netlist::DeviceType;
using netlist::Netlist;

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

bool is_supply_net(const std::string& net) {
  netlist::Net n{net, {}};
  return n.is_supply();
}

/// One logical (continuation-joined) statement; `line` is the first
/// physical line, for diagnostics.
struct Stmt {
  int line = 0;
  std::vector<std::string> tokens;
};

/// Splits deck text into logical statements: '+' continuations are joined,
/// '*' full-line and '$'/';' trailing comments removed, blank lines
/// dropped.  Enforces the raw line-length cap.
std::vector<Stmt> logical_lines(const std::string& text,
                                const std::string& file,
                                const ParseOptions& opts) {
  std::vector<Stmt> stmts;
  std::istringstream in(text);
  std::string raw;
  int lineno = 0;
  bool skip_title = opts.title_line;
  while (std::getline(in, raw)) {
    ++lineno;
    if (!raw.empty() && raw.back() == '\r') raw.pop_back();
    if (raw.size() > opts.max_line_bytes) {
      throw ParseError(file, lineno,
                       "line exceeds " + std::to_string(opts.max_line_bytes) +
                           " bytes (overlong line)");
    }
    if (skip_title) {  // SPICE: the first line of a deck is its title
      skip_title = false;
      continue;
    }
    // Trailing comments; '*' only comments at line start.
    for (const char c : {'$', ';'}) {
      const std::size_t at = raw.find(c);
      if (at != std::string::npos) raw.erase(at);
    }
    std::size_t first = raw.find_first_not_of(" \t");
    if (first == std::string::npos) continue;
    if (raw[first] == '*') continue;
    const bool continuation = raw[first] == '+';
    if (continuation) {
      if (stmts.empty()) {
        throw ParseError(file, lineno, "continuation '+' with no prior line");
      }
      raw = raw.substr(first + 1);
    }
    std::istringstream ls(raw);
    std::vector<std::string> toks;
    std::string t;
    while (ls >> t) toks.push_back(t);
    if (toks.empty()) continue;
    if (continuation) {
      auto& dst = stmts.back().tokens;
      dst.insert(dst.end(), toks.begin(), toks.end());
    } else {
      stmts.push_back({lineno, std::move(toks)});
    }
  }
  // Re-join '=' assignments split across whitespace ("w = 2", "w= 2").
  for (Stmt& s : stmts) {
    std::vector<std::string> merged;
    for (std::size_t i = 0; i < s.tokens.size(); ++i) {
      std::string tok = s.tokens[i];
      while (true) {
        const bool open_eq = !tok.empty() && tok.back() == '=';
        const bool next_eq = i + 1 < s.tokens.size() &&
                             !s.tokens[i + 1].empty() &&
                             s.tokens[i + 1].front() == '=';
        if ((open_eq || next_eq) && i + 1 < s.tokens.size()) {
          tok += s.tokens[++i];
        } else {
          break;
        }
      }
      merged.push_back(std::move(tok));
    }
    s.tokens = std::move(merged);
  }
  return stmts;
}

using Scope = std::map<std::string, double>;

/// Recursive-descent evaluator for parameter expressions: numbers with
/// SPICE scale suffixes, identifiers, + - * /, unary minus, parentheses.
class ExprEval {
 public:
  ExprEval(const std::string& s, const Scope& scope, const std::string& file,
           int line)
      : s_(s), scope_(scope), file_(file), line_(line) {}

  double run() {
    const double v = expr();
    skip_ws();
    if (pos_ != s_.size()) fail("trailing characters in expression");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& msg) const {
    throw ParseError(file_, line_, msg + " in '" + s_ + "'");
  }
  void skip_ws() {
    while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[pos_])))
      ++pos_;
  }
  double expr() {
    double v = term();
    while (true) {
      skip_ws();
      if (pos_ < s_.size() && (s_[pos_] == '+' || s_[pos_] == '-')) {
        const char op = s_[pos_++];
        const double r = term();
        v = op == '+' ? v + r : v - r;
      } else {
        return v;
      }
    }
  }
  double term() {
    double v = factor();
    while (true) {
      skip_ws();
      if (pos_ < s_.size() && (s_[pos_] == '*' || s_[pos_] == '/')) {
        const char op = s_[pos_++];
        const double r = factor();
        if (op == '/') {
          if (r == 0.0) fail("division by zero");
          v /= r;
        } else {
          v *= r;
        }
      } else {
        return v;
      }
    }
  }
  double factor() {
    skip_ws();
    if (pos_ >= s_.size()) fail("unexpected end of expression");
    const char c = s_[pos_];
    if (c == '-') {
      ++pos_;
      return -factor();
    }
    if (c == '(') {
      ++pos_;
      const double v = expr();
      skip_ws();
      if (pos_ >= s_.size() || s_[pos_] != ')') fail("missing ')'");
      ++pos_;
      return v;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) || c == '.') return number();
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::string id;
      while (pos_ < s_.size() &&
             (std::isalnum(static_cast<unsigned char>(s_[pos_])) ||
              s_[pos_] == '_')) {
        id += s_[pos_++];
      }
      const auto it = scope_.find(lower(id));
      if (it == scope_.end()) fail("undefined parameter '" + id + "'");
      return it->second;
    }
    fail(std::string("unexpected character '") + c + "'");
  }
  double number() {
    const std::size_t start = pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.')) {
      ++pos_;
    }
    // Exponent.
    if (pos_ < s_.size() && (s_[pos_] == 'e' || s_[pos_] == 'E')) {
      std::size_t p = pos_ + 1;
      if (p < s_.size() && (s_[p] == '+' || s_[p] == '-')) ++p;
      if (p < s_.size() && std::isdigit(static_cast<unsigned char>(s_[p]))) {
        pos_ = p;
        while (pos_ < s_.size() &&
               std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
          ++pos_;
        }
      }
    }
    double v = 0.0;
    try {
      v = std::stod(s_.substr(start, pos_ - start));
    } catch (const std::exception&) {
      fail("malformed number");
    }
    // SPICE scale suffix plus optional trailing unit letters ("10k", "8u",
    // "0.4pF", "100meg").
    std::string suffix;
    while (pos_ < s_.size() &&
           std::isalpha(static_cast<unsigned char>(s_[pos_]))) {
      suffix += static_cast<char>(
          std::tolower(static_cast<unsigned char>(s_[pos_])));
      ++pos_;
    }
    if (!suffix.empty()) {
      if (suffix.rfind("meg", 0) == 0) {
        v *= 1e6;
      } else {
        switch (suffix[0]) {
          case 't': v *= 1e12; break;
          case 'g': v *= 1e9; break;
          case 'k': v *= 1e3; break;
          case 'm': v *= 1e-3; break;
          case 'u': v *= 1e-6; break;
          case 'n': v *= 1e-9; break;
          case 'p': v *= 1e-12; break;
          case 'f': v *= 1e-15; break;
          default: break;  // bare unit letters ("5ohm")
        }
      }
    }
    return v;
  }

  const std::string& s_;
  const Scope& scope_;
  const std::string& file_;
  int line_;
  std::size_t pos_ = 0;
};

double eval_value(std::string v, const Scope& scope, const std::string& file,
                  int line) {
  // Strip {..} / '..' expression quoting.
  if (v.size() >= 2 && ((v.front() == '{' && v.back() == '}') ||
                        (v.front() == '\'' && v.back() == '\''))) {
    v = v.substr(1, v.size() - 2);
  }
  return ExprEval(v, scope, file, line).run();
}

/// Gate dimensions accept plain microns (W=8) or meter-scaled SI values
/// (W=8u -> 8e-6); anything below 0.01 is treated as meters.
double to_um(double v) { return v < 0.01 ? v * 1e6 : v; }

struct SubcktDef {
  std::string name;  ///< original case
  int line = 0;
  std::vector<std::string> ports;             ///< lowercased formals
  std::vector<std::pair<std::string, std::string>> defaults;  ///< k, raw v
  std::vector<Stmt> body;                     ///< device cards, deck order
};

struct Deck {
  std::string file;
  std::vector<Stmt> toplevel;  ///< device cards outside any subckt
  std::map<std::string, SubcktDef> subckts;  ///< key: lowercased name
  std::vector<std::pair<std::string, std::string>> params;  ///< .param k, v
};

bool split_assign(const std::string& tok, std::string* key,
                  std::string* value) {
  const std::size_t eq = tok.find('=');
  if (eq == std::string::npos || eq == 0 || eq + 1 >= tok.size()) return false;
  *key = lower(tok.substr(0, eq));
  *value = tok.substr(eq + 1);
  return true;
}

const std::set<std::string>& ignored_directives() {
  static const std::set<std::string> kIgnored = {
      ".model", ".option", ".options", ".temp",  ".global", ".op",
      ".tran",  ".ac",     ".dc",      ".noise", ".print",  ".plot",
      ".probe", ".ic",     ".nodeset", ".save",  ".width",  ".meas",
      ".measure"};
  return kIgnored;
}

Deck first_pass(const std::string& text, const std::string& file,
                const ParseOptions& opts) {
  Deck deck;
  deck.file = file;
  SubcktDef* current = nullptr;
  for (Stmt& s : logical_lines(text, file, opts)) {
    const std::string head = lower(s.tokens[0]);
    if (head == ".subckt") {
      if (current) {
        throw ParseError(file, s.line,
                         "nested .subckt definition (unsupported; close '" +
                             current->name + "' with .ends first)");
      }
      if (s.tokens.size() < 2) {
        throw ParseError(file, s.line, ".subckt requires a name");
      }
      SubcktDef def;
      def.name = s.tokens[1];
      def.line = s.line;
      for (std::size_t i = 2; i < s.tokens.size(); ++i) {
        std::string k, v;
        if (split_assign(s.tokens[i], &k, &v)) {
          def.defaults.emplace_back(k, v);
        } else if (!def.defaults.empty()) {
          throw ParseError(file, s.line,
                           "port '" + s.tokens[i] +
                               "' after default parameters on .subckt " +
                               def.name);
        } else {
          def.ports.push_back(lower(s.tokens[i]));
        }
      }
      const std::string key = lower(def.name);
      if (deck.subckts.count(key)) {
        throw ParseError(file, s.line,
                         "duplicate .subckt definition '" + def.name + "'");
      }
      current = &deck.subckts.emplace(key, std::move(def)).first->second;
      continue;
    }
    if (head == ".ends") {
      if (!current) {
        throw ParseError(file, s.line, ".ends outside any .subckt");
      }
      if (s.tokens.size() > 1 && lower(s.tokens[1]) != lower(current->name)) {
        throw ParseError(file, s.line,
                         ".ends " + s.tokens[1] + " does not match .subckt " +
                             current->name);
      }
      current = nullptr;
      continue;
    }
    if (head == ".param") {
      for (std::size_t i = 1; i < s.tokens.size(); ++i) {
        std::string k, v;
        if (!split_assign(s.tokens[i], &k, &v)) {
          throw ParseError(file, s.line,
                           ".param expects name=value, got '" + s.tokens[i] +
                               "'");
        }
        if (current) {
          current->defaults.emplace_back(k, v);
        } else {
          deck.params.emplace_back(k, v);
        }
      }
      continue;
    }
    if (head == ".end") break;
    if (head[0] == '.') {
      if (ignored_directives().count(head)) continue;
      throw ParseError(file, s.line, "unsupported directive '" + s.tokens[0] +
                                         "'");
    }
    const char kind = static_cast<char>(
        std::tolower(static_cast<unsigned char>(head[0])));
    if (kind != 'm' && kind != 'r' && kind != 'c' && kind != 'q' &&
        kind != 'd' && kind != 'x') {
      throw ParseError(file, s.line, "unrecognized card '" + s.tokens[0] +
                                         "' (expected M/R/C/Q/D/X or a "
                                         "directive)");
    }
    (current ? current->body : deck.toplevel).push_back(std::move(s));
  }
  if (current) {
    throw ParseError(file, current->line,
                     "unterminated .subckt '" + current->name +
                         "' (missing .ends)");
  }
  return deck;
}

/// Elaboration context threading the caps and the output netlist.
struct Elab {
  const Deck& deck;
  const ParseOptions& opts;
  Netlist out;
  std::set<std::string> device_names;  ///< lowercased, duplicate guard
  Scope globals;

  explicit Elab(const Deck& d, const ParseOptions& o) : deck(d), opts(o) {}

  void add(Device dev, int line) {
    if (!device_names.insert(lower(dev.name)).second) {
      throw ParseError(deck.file, line,
                       "duplicate device name '" + dev.name + "'");
    }
    if (static_cast<std::size_t>(out.num_devices()) >= opts.max_devices) {
      throw ParseError(deck.file, line,
                       "elaborated netlist exceeds " +
                           std::to_string(opts.max_devices) + " devices");
    }
    out.add_device(std::move(dev));
  }

  /// Expands `body` with device-name prefix `prefix` ("" at top level) and
  /// formal->actual net map `netmap`; unmapped non-supply nets are
  /// instance-local and get the prefix too.
  void expand(const std::vector<Stmt>& body, const std::string& prefix,
              const std::map<std::string, std::string>& netmap,
              const Scope& scope, int depth,
              std::vector<std::string>& stack) {
    for (const Stmt& s : body) {
      const char kind = static_cast<char>(
          std::tolower(static_cast<unsigned char>(s.tokens[0][0])));
      switch (kind) {
        case 'x': expand_instance(s, prefix, netmap, scope, depth, stack); break;
        case 'm': add_mos(s, prefix, netmap, scope); break;
        case 'r': add_rc(s, prefix, netmap, scope, DeviceType::kResistor); break;
        case 'c': add_rc(s, prefix, netmap, scope, DeviceType::kCapacitor); break;
        case 'q': add_bjt(s, prefix, netmap, scope); break;
        case 'd': add_diode(s, prefix, netmap, scope); break;
        default: break;  // unreachable: first_pass filtered
      }
    }
  }

  std::string map_net(const std::string& tok, const std::string& prefix,
                      const std::map<std::string, std::string>& netmap) const {
    if (is_supply_net(tok)) return tok;  // supplies stay global
    const auto it = netmap.find(lower(tok));
    if (it != netmap.end()) return it->second;
    return prefix.empty() ? tok : prefix + tok;
  }

  /// Splits a card into bare (positional) tokens and key=value assignments;
  /// a positional token after the first assignment is malformed.
  void split_card(const Stmt& s, std::vector<std::string>* bare,
                  std::vector<std::pair<std::string, std::string>>* kv) const {
    for (std::size_t i = 1; i < s.tokens.size(); ++i) {
      std::string k, v;
      if (split_assign(s.tokens[i], &k, &v)) {
        kv->emplace_back(k, v);
      } else if (!kv->empty()) {
        throw ParseError(deck.file, s.line,
                         "positional field '" + s.tokens[i] +
                             "' after parameter assignments on '" +
                             s.tokens[0] + "'");
      } else {
        bare->push_back(s.tokens[i]);
      }
    }
  }

  double param_or(const std::vector<std::pair<std::string, std::string>>& kv,
                  const std::string& key, double fallback, const Scope& scope,
                  int line) const {
    for (const auto& [k, v] : kv) {
      if (k == key) return eval_value(v, scope, deck.file, line);
    }
    return fallback;
  }

  void add_mos(const Stmt& s, const std::string& prefix,
               const std::map<std::string, std::string>& netmap,
               const Scope& scope) {
    std::vector<std::string> bare;
    std::vector<std::pair<std::string, std::string>> kv;
    split_card(s, &bare, &kv);
    if (bare.size() != 5) {
      throw ParseError(deck.file, s.line,
                       "MOS card '" + s.tokens[0] +
                           "' needs <d> <g> <s> <b> <model> (got " +
                           std::to_string(bare.size()) + " fields)");
    }
    Device d;
    d.name = prefix + s.tokens[0];
    d.type = lower(bare[4]).find('p') != std::string::npos ? DeviceType::kPmos
                                                           : DeviceType::kNmos;
    for (int i = 0; i < 4; ++i) {
      d.terminals.push_back(map_net(bare[static_cast<std::size_t>(i)], prefix,
                                    netmap));
    }
    d.width_um = to_um(param_or(kv, "w", 1.0, scope, s.line));
    d.length_um = to_um(param_or(kv, "l", 0.18, scope, s.line));
    d.fingers = static_cast<int>(param_or(kv, "nf", 1.0, scope, s.line));
    const double mult = param_or(kv, "m", 1.0, scope, s.line);
    d.width_um *= std::max(1.0, mult);
    if (d.width_um <= 0.0 || d.length_um <= 0.0 || d.fingers < 1) {
      throw ParseError(deck.file, s.line,
                       "bad W/L/NF on '" + s.tokens[0] + "'");
    }
    add(std::move(d), s.line);
  }

  void add_rc(const Stmt& s, const std::string& prefix,
              const std::map<std::string, std::string>& netmap,
              const Scope& scope, DeviceType type) {
    std::vector<std::string> bare;
    std::vector<std::pair<std::string, std::string>> kv;
    split_card(s, &bare, &kv);
    const char* what = type == DeviceType::kResistor ? "resistor" : "capacitor";
    if (bare.size() < 2 || bare.size() > 3) {
      throw ParseError(deck.file, s.line,
                       std::string(what) + " card '" + s.tokens[0] +
                           "' needs <a> <b> <value>");
    }
    Device d;
    d.name = prefix + s.tokens[0];
    d.type = type;
    d.terminals = {map_net(bare[0], prefix, netmap),
                   map_net(bare[1], prefix, netmap)};
    if (bare.size() == 3) {
      d.value = eval_value(bare[2], scope, deck.file, s.line);
    } else {
      const char* key = type == DeviceType::kResistor ? "r" : "c";
      d.value = param_or(kv, key, 0.0, scope, s.line);
    }
    if (d.value <= 0.0) {
      throw ParseError(deck.file, s.line,
                       std::string("missing or non-positive ") + what +
                           " value on '" + s.tokens[0] + "'");
    }
    add(std::move(d), s.line);
  }

  void add_bjt(const Stmt& s, const std::string& prefix,
               const std::map<std::string, std::string>& netmap,
               const Scope& scope) {
    std::vector<std::string> bare;
    std::vector<std::pair<std::string, std::string>> kv;
    split_card(s, &bare, &kv);
    if (bare.size() != 4 && bare.size() != 5) {
      throw ParseError(deck.file, s.line,
                       "BJT card '" + s.tokens[0] +
                           "' needs <c> <b> <e> [<subs>] <model>");
    }
    // MOS-equivalent footprint block: collector->drain, base->gate,
    // emitter->source/bulk; polarity from the model name (pnp -> PMOS-like).
    Device d;
    d.name = prefix + s.tokens[0];
    d.type = lower(bare.back()).find('p') != std::string::npos
                 ? DeviceType::kPmos
                 : DeviceType::kNmos;
    const std::string c = map_net(bare[0], prefix, netmap);
    const std::string b = map_net(bare[1], prefix, netmap);
    const std::string e = map_net(bare[2], prefix, netmap);
    d.terminals = {c, b, e, e};
    const double area = param_or(kv, "area", 1.0, scope, s.line);
    if (area <= 0.0) {
      throw ParseError(deck.file, s.line,
                       "bad AREA on '" + s.tokens[0] + "'");
    }
    d.width_um = 5.0 * area;
    d.length_um = 0.5;
    add(std::move(d), s.line);
  }

  void add_diode(const Stmt& s, const std::string& prefix,
                 const std::map<std::string, std::string>& netmap,
                 const Scope& scope) {
    std::vector<std::string> bare;
    std::vector<std::pair<std::string, std::string>> kv;
    split_card(s, &bare, &kv);
    if (bare.size() != 3) {
      throw ParseError(deck.file, s.line,
                       "diode card '" + s.tokens[0] +
                           "' needs <anode> <cathode> <model>");
    }
    // Diode-connected MOS equivalent: drain = gate = anode.
    Device d;
    d.name = prefix + s.tokens[0];
    d.type = lower(bare[2]).find('p') != std::string::npos ? DeviceType::kPmos
                                                           : DeviceType::kNmos;
    const std::string a = map_net(bare[0], prefix, netmap);
    const std::string c = map_net(bare[1], prefix, netmap);
    d.terminals = {a, a, c, c};
    const double area = param_or(kv, "area", 1.0, scope, s.line);
    if (area <= 0.0) {
      throw ParseError(deck.file, s.line, "bad AREA on '" + s.tokens[0] + "'");
    }
    d.width_um = 2.0 * area;
    d.length_um = 0.5;
    add(std::move(d), s.line);
  }

  void expand_instance(const Stmt& s, const std::string& prefix,
                       const std::map<std::string, std::string>& netmap,
                       const Scope& scope, int depth,
                       std::vector<std::string>& stack) {
    std::vector<std::string> bare;
    std::vector<std::pair<std::string, std::string>> kv;
    split_card(s, &bare, &kv);
    if (bare.empty()) {
      throw ParseError(deck.file, s.line,
                       "X card '" + s.tokens[0] + "' names no subcircuit");
    }
    const std::string subname = lower(bare.back());
    bare.pop_back();
    const auto it = deck.subckts.find(subname);
    if (it == deck.subckts.end()) {
      throw ParseError(deck.file, s.line,
                       "unknown subcircuit '" + subname + "' on '" +
                           s.tokens[0] + "'");
    }
    const SubcktDef& def = it->second;
    if (bare.size() != def.ports.size()) {
      throw ParseError(deck.file, s.line,
                       "'" + s.tokens[0] + "' connects " +
                           std::to_string(bare.size()) + " nets but .subckt " +
                           def.name + " has " +
                           std::to_string(def.ports.size()) + " ports");
    }
    if (std::find(stack.begin(), stack.end(), subname) != stack.end()) {
      std::string cycle;
      for (const auto& n : stack) cycle += n + " -> ";
      throw ParseError(deck.file, s.line,
                       "recursive subcircuit instantiation: " + cycle +
                           subname);
    }
    if (depth >= opts.max_depth) {
      throw ParseError(deck.file, s.line,
                       "subcircuit nesting exceeds depth " +
                           std::to_string(opts.max_depth));
    }
    // Child net map: formal ports -> mapped actuals.
    std::map<std::string, std::string> child_nets;
    for (std::size_t i = 0; i < bare.size(); ++i) {
      child_nets[def.ports[i]] = map_net(bare[i], prefix, netmap);
    }
    // Child scope: globals, then subckt defaults (evaluated in the parent
    // scope), then X-card overrides (also parent scope).
    Scope child = globals;
    for (const auto& [k, v] : def.defaults) {
      child[k] = eval_value(v, scope, deck.file, def.line);
    }
    for (const auto& [k, v] : kv) {
      child[k] = eval_value(v, scope, deck.file, s.line);
    }
    stack.push_back(subname);
    expand(def.body, prefix + s.tokens[0] + ".", child_nets, child, depth + 1,
           stack);
    stack.pop_back();
  }
};

/// Subcircuits never instantiated by another subckt or the top level.
std::vector<const SubcktDef*> uninstantiated(const Deck& deck) {
  std::set<std::string> instantiated;
  auto scan = [&](const std::vector<Stmt>& body) {
    for (const Stmt& s : body) {
      if (std::tolower(static_cast<unsigned char>(s.tokens[0][0])) != 'x')
        continue;
      for (std::size_t i = s.tokens.size(); i-- > 1;) {
        if (s.tokens[i].find('=') == std::string::npos) {
          instantiated.insert(lower(s.tokens[i]));
          break;
        }
      }
    }
  };
  scan(deck.toplevel);
  for (const auto& [_, def] : deck.subckts) scan(def.body);
  std::vector<const SubcktDef*> roots;
  for (const auto& [key, def] : deck.subckts) {
    if (!instantiated.count(key)) roots.push_back(&def);
  }
  return roots;
}

}  // namespace

netlist::Netlist parse_deck(const std::string& text,
                            const std::string& filename,
                            const ParseOptions& opts) {
  const Deck deck = first_pass(text, filename, opts);
  Elab elab(deck, opts);
  for (const auto& [k, v] : deck.params) {
    elab.globals[k] = eval_value(v, elab.globals, filename, 0);
  }

  std::vector<std::string> stack;
  const std::map<std::string, std::string> no_nets;
  if (!opts.top.empty()) {
    const auto it = deck.subckts.find(lower(opts.top));
    if (it == deck.subckts.end()) {
      throw ParseError(filename, 0,
                       "top subcircuit '" + opts.top + "' is not defined");
    }
    const SubcktDef& def = it->second;
    elab.out.set_name(def.name);
    elab.out.set_ports(def.ports);
    Scope scope = elab.globals;
    for (const auto& [k, v] : def.defaults) {
      scope[k] = eval_value(v, elab.globals, filename, def.line);
    }
    elab.expand(def.body, "", no_nets, scope, 0, stack);
  } else if (!deck.toplevel.empty()) {
    elab.out.set_name("top");
    elab.expand(deck.toplevel, "", no_nets, elab.globals, 0, stack);
  } else {
    const auto roots = uninstantiated(deck);
    if (roots.empty()) {
      throw ParseError(filename, 0,
                       deck.subckts.empty()
                           ? "deck has no device cards and no subcircuits"
                           : "no top candidate: every subcircuit is "
                             "instantiated (recursive deck?)");
    }
    if (roots.size() > 1) {
      std::string names;
      for (const auto* def : roots) {
        if (!names.empty()) names += ", ";
        names += def->name;
      }
      throw ParseError(filename, 0,
                       "ambiguous top cell (candidates: " + names +
                           "); pass an explicit top");
    }
    const SubcktDef& def = *roots.front();
    elab.out.set_name(def.name);
    elab.out.set_ports(def.ports);
    Scope scope = elab.globals;
    for (const auto& [k, v] : def.defaults) {
      scope[k] = eval_value(v, elab.globals, filename, def.line);
    }
    elab.expand(def.body, "", no_nets, scope, 0, stack);
  }
  if (elab.out.num_devices() == 0) {
    throw ParseError(filename, 0, "elaborated netlist has no devices");
  }
  return elab.out;
}

netlist::Netlist parse_file(const std::string& path,
                            const ParseOptions& opts) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw ParseError(path, 0, "cannot open file");
  std::ostringstream buf;
  buf << in.rdbuf();
  ParseOptions file_opts = opts;
  file_opts.title_line = true;
  return parse_deck(buf.str(), path, file_opts);
}

}  // namespace afp::ingest
