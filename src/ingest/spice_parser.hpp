// SPICE-deck front end for the workload ingestion subsystem.
//
// Parses a practical subset of SPICE into a flat netlist::Netlist:
//
//   * title line (first line of a file is ignored, SPICE convention),
//     '*' full-line comments, '$'/';' trailing comments, '+' continuations,
//   * .subckt <name> <port>... [<param>=<val>...] / .ends [<name>]
//     definitions with recursive X-card expansion (depth / elaborated-size
//     caps, cycle detection),
//   * .param definitions with a small arithmetic evaluator (+ - * /,
//     parentheses, SPICE scale suffixes t g meg k m u n p f) usable in any
//     device value, with global -> subckt-default -> X-override scoping,
//   * device cards: M (MOS), R, C, Q (BJT, mapped to a MOS-equivalent
//     block), D (diode, mapped to a diode-connected MOS), X (subckt
//     instance; the last bare token is the subckt name),
//   * harmless simulator directives (.model/.option/.temp/.global/
//     analyses/...) are skipped; anything unknown is an error.
//
// Every diagnostic is a ParseError carrying file:line; a malformed deck
// must surface as a structured error (the CLI maps it to exit 2), never a
// crash.  Elaboration is deterministic: cloned device order follows the
// deck order depth-first, so the same deck always yields the same netlist.
#pragma once

#include <stdexcept>
#include <string>

#include "netlist/netlist.hpp"

namespace afp::ingest {

/// Structured deck diagnostic; what() is "<file>:<line>: <message>".
class ParseError : public std::runtime_error {
 public:
  ParseError(std::string file, int line, const std::string& message)
      : std::runtime_error(file + ":" + std::to_string(line) + ": " + message),
        file_(std::move(file)),
        line_(line) {}

  const std::string& file() const { return file_; }
  int line() const { return line_; }

 private:
  std::string file_;
  int line_;
};

struct ParseOptions {
  /// Maximum X-card nesting depth during elaboration.
  int max_depth = 32;
  /// Maximum devices in the elaborated netlist (hierarchy bomb guard).
  std::size_t max_devices = 200000;
  /// Maximum raw physical line length in bytes.
  std::size_t max_line_bytes = 4096;
  /// Subcircuit to elaborate as the top cell; "" selects automatically
  /// (top-level device cards if any, else the single subckt no other
  /// subckt instantiates).
  std::string top;
  /// Whether the deck text starts with a title line to skip.  parse_file
  /// always skips one; parse_deck defaults to false (embedded snippets).
  bool title_line = false;
};

/// Parses and elaborates deck text.  `filename` is used in diagnostics.
netlist::Netlist parse_deck(const std::string& text,
                            const std::string& filename = "<deck>",
                            const ParseOptions& opts = {});

/// Reads `path` and parses it (title line skipped).  Throws ParseError for
/// unreadable files (line 0) and all deck errors.
netlist::Netlist parse_file(const std::string& path,
                            const ParseOptions& opts = {});

}  // namespace afp::ingest
