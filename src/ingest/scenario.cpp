#include "ingest/scenario.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "geom/geom.hpp"

namespace afp::ingest {

namespace {

using netlist::Device;
using netlist::DeviceType;
using netlist::Netlist;

/// Local SplitMix64 (ingest stays independent of metaheur): the standard
/// finalizer, fixed constants, byte-stable everywhere.
struct SplitMix64 {
  std::uint64_t state = 0;

  std::uint64_t next() {
    state += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }
  /// Uniform in [0, 1).
  double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }
  /// Uniform integer in [lo, hi] inclusive.
  int range(int lo, int hi) {
    return lo + static_cast<int>(next() %
                                 static_cast<std::uint64_t>(hi - lo + 1));
  }
  /// Quantized width in [lo, hi] um on a 0.25 um grid (realistic sizing;
  /// quantization cannot cause accidental structure merges because every
  /// grouping rule also requires shared nets the generator controls).
  double width(double lo, double hi) {
    const double w = lo + (hi - lo) * uniform();
    return std::max(lo, std::round(w * 4.0) / 4.0);
  }
};

std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// Emits motifs the structrec rule engine recognizes 1:1 and tracks the
/// names recognition will assign (member device names joined with '+').
struct Gen {
  Netlist nl;
  SplitMix64 rng;
  std::vector<std::string> blocks;  ///< recognized-block names, in order
  std::vector<std::string> outs;    ///< recent interface nets (fanout <= 4)
  int motif = 0;                    ///< unique per-motif suffix
  int resistors = 0;                ///< total resistor count (rule-5 cost cap)

  explicit Gen(std::string name) : nl(std::move(name)) {}

  std::string tag() { return std::to_string(motif++); }

  /// Interface net feeding this motif: one of the last four outputs (keeps
  /// per-net fanout bounded), or a fresh dangling net before any exist.
  std::string input() {
    if (outs.empty()) return "nin" + tag();
    const int lo = std::max(0, static_cast<int>(outs.size()) - 4);
    return outs[static_cast<std::size_t>(
        rng.range(lo, static_cast<int>(outs.size()) - 1))];
  }
  std::string emit_out(const std::string& net) {
    outs.push_back(net);
    if (outs.size() > 64) outs.erase(outs.begin(), outs.begin() + 32);
    return net;
  }

  void nmos(const std::string& name, const std::string& d,
            const std::string& g, const std::string& s, double w,
            double l = 0.18, int nf = 1) {
    nl.add_device({name, DeviceType::kNmos, {d, g, s, "VSS"}, w, l, nf, 0.0});
  }
  void pmos(const std::string& name, const std::string& d,
            const std::string& g, const std::string& s, double w,
            double l = 0.18, int nf = 1) {
    nl.add_device({name, DeviceType::kPmos, {d, g, s, "VDD"}, w, l, nf, 0.0});
  }

  /// Differential pair (1 block): shared private tail net, distinct gates.
  std::string diff_pair(bool pmos_pair, double w) {
    const std::string t = tag();
    const std::string tail = "tail" + t;
    const std::string out = "w" + t;
    const std::string a = "MD" + t + "a", b = "MD" + t + "b";
    if (pmos_pair) {
      pmos(a, out, input(), tail, w, 0.18, 2);
      pmos(b, "d" + t, "g" + t, tail, w, 0.18, 2);
    } else {
      nmos(a, out, input(), tail, w, 0.18, 2);
      nmos(b, "d" + t, "g" + t, tail, w, 0.18, 2);
    }
    emit_out(out);
    blocks.push_back(a + "+" + b);
    return tail;
  }

  /// Tail current source for `tail` (1 block, singleton NMOS).
  void tail_source(const std::string& tail, double w) {
    const std::string t = tag();
    const std::string name = "MT" + t;
    nmos(name, tail, "vb" + t, "VSS", w, 0.36, 2);
    blocks.push_back(name);
  }

  /// Current mirror (1 block): diode + nouts outputs on a private gate net.
  void mirror(bool pmos_mirror, int nouts, double w) {
    const std::string t = tag();
    const std::string g = "mg" + t;
    std::string name = "MM" + t + "r";
    std::string joined = name;
    if (pmos_mirror) {
      pmos(name, g, g, "VDD", w, 0.36, 2);
    } else {
      nmos(name, g, g, "VSS", w, 0.36, 2);
    }
    for (int k = 0; k < nouts; ++k) {
      // First output drives the interface; extras sink previous outputs.
      const std::string d = k == 0 ? emit_out("w" + t) : input();
      name = "MM" + t + "o" + std::to_string(k);
      if (pmos_mirror) {
        pmos(name, d, g, "VDD", w, 0.36, 2);
      } else {
        nmos(name, d, g, "VSS", w, 0.36, 2);
      }
      joined += "+" + name;
    }
    blocks.push_back(joined);
  }

  /// Supply-referenced single (1 block); the gate consumes an interface net.
  std::string single(bool pmos_single, double w) {
    const std::string t = tag();
    const std::string name = "MS" + t;
    if (pmos_single) {
      pmos(name, emit_out("w" + t), input(), "VDD", w);
    } else {
      nmos(name, emit_out("w" + t), input(), "VSS", w);
    }
    blocks.push_back(name);
    return name;
  }

  /// Cross-coupled pair (1 block): gates crossed to drains, shared source.
  void cross_pair(bool pmos_pair, double w) {
    const std::string t = tag();
    const std::string qa = "q" + t + "a", qb = "q" + t + "b";
    const std::string s = input();  // shared source doubles as the interface
    const std::string a = "MX" + t + "a", b = "MX" + t + "b";
    if (pmos_pair) {
      pmos(a, qa, qb, s, w);
      pmos(b, qb, qa, s, w);
    } else {
      nmos(a, qa, qb, s, w);
      nmos(b, qb, qa, s, w);
    }
    emit_out(qa);
    blocks.push_back(a + "+" + b);
  }

  /// Power device (1 block): NMOS >= 100 um.
  void power(double w) {
    const std::string t = tag();
    const std::string name = "MP" + t;
    nmos(name, emit_out("w" + t), input(), "VSS", w, 0.5, 8);
    blocks.push_back(name);
  }

  /// Series resistor string (1 block): private chain nets, supply-tied ends
  /// so no two strings can merge through a shared exclusive net.
  void res_string(int len, double ohms) {
    const std::string t = tag();
    std::string prev = "VSS";
    std::string joined;
    for (int k = 0; k < len; ++k) {
      const std::string name = "R" + t + "s" + std::to_string(k);
      const std::string next =
          k + 1 == len ? "VDD" : "r" + t + "n" + std::to_string(k);
      nl.add_device(
          {name, DeviceType::kResistor, {prev, next}, 0, 0, 1, ohms});
      joined += (k ? "+" : "") + name;
      prev = next;
    }
    resistors += len;
    blocks.push_back(joined);
  }

  /// Capacitor (1 block) bridging two interface nets.
  void cap(double farads) {
    const std::string t = tag();
    const std::string name = "CC" + t;
    const std::string a = input();
    std::string b = input();
    if (b == a) b = "cn" + t;
    nl.add_device({name, DeviceType::kCapacitor, {a, b}, 0, 0, 1, farads});
    blocks.push_back(name);
  }

  const std::string& last_block() const { return blocks.back(); }
};

int parse_int(const std::string& s, const std::string& what) {
  try {
    std::size_t used = 0;
    const long v = std::stol(s, &used);
    if (used != s.size()) throw std::invalid_argument(s);
    return static_cast<int>(v);
  } catch (const std::exception&) {
    throw std::invalid_argument("scenario: bad " + what + " '" + s + "'");
  }
}

double parse_double(const std::string& s, const std::string& what) {
  try {
    std::size_t used = 0;
    const double v = std::stod(s, &used);
    if (used != s.size()) throw std::invalid_argument(s);
    return v;
  } catch (const std::exception&) {
    throw std::invalid_argument("scenario: bad " + what + " '" + s + "'");
  }
}

}  // namespace

const std::vector<std::string>& scenario_families() {
  static const std::vector<std::string> kFamilies = {"ota", "bias", "latch",
                                                     "driver"};
  return kFamilies;
}

ScenarioSpec ScenarioSpec::parse(const std::string& text) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  while (true) {
    const std::size_t at = text.find(':', start);
    parts.push_back(text.substr(start, at - start));
    if (at == std::string::npos) break;
    start = at + 1;
  }
  if (parts.size() < 3) {
    throw std::invalid_argument(
        "scenario: expected family:size:seed[:key=value...], got '" + text +
        "'");
  }
  ScenarioSpec spec;
  spec.family = parts[0];
  const auto& fams = scenario_families();
  if (std::find(fams.begin(), fams.end(), spec.family) == fams.end()) {
    throw std::invalid_argument("scenario: unknown family '" + spec.family +
                                "' (ota|bias|latch|driver)");
  }
  spec.size = parse_int(parts[1], "size");
  if (spec.size < 4 || spec.size > 5000) {
    throw std::invalid_argument("scenario: size " + parts[1] +
                                " out of range [4, 5000]");
  }
  const int seed = parse_int(parts[2], "seed");
  if (seed < 0) throw std::invalid_argument("scenario: negative seed");
  spec.seed = static_cast<std::uint64_t>(seed);
  for (std::size_t i = 3; i < parts.size(); ++i) {
    const std::size_t eq = parts[i].find('=');
    if (eq == std::string::npos) {
      throw std::invalid_argument("scenario: expected key=value, got '" +
                                  parts[i] + "'");
    }
    const std::string key = parts[i].substr(0, eq);
    const std::string val = parts[i].substr(eq + 1);
    if (key == "ar") {
      spec.aspect = parse_double(val, "ar");
      if (spec.aspect <= 0.0) {
        throw std::invalid_argument("scenario: ar must be positive");
      }
    } else if (key == "ws") {
      spec.whitespace = parse_double(val, "ws");
      if (spec.whitespace < 0.0) {
        throw std::invalid_argument("scenario: ws must be >= 0");
      }
    } else if (key == "plain") {
      spec.constrained = parse_int(val, "plain") == 0;
    } else {
      throw std::invalid_argument("scenario: unknown key '" + key +
                                  "' (ar|ws|plain)");
    }
  }
  return spec;
}

std::string ScenarioSpec::to_string() const {
  std::string s = family + ":" + std::to_string(size) + ":" +
                  std::to_string(seed);
  auto fmt = [](double v) {
    std::string t = std::to_string(v);
    while (t.size() > 1 && t.back() == '0') t.pop_back();
    if (!t.empty() && t.back() == '.') t.pop_back();
    return t;
  };
  if (aspect > 0.0) s += ":ar=" + fmt(aspect);
  if (whitespace > 0.0) s += ":ws=" + fmt(whitespace);
  if (!constrained) s += ":plain=1";
  return s;
}

Scenario make_scenario(const ScenarioSpec& spec) {
  const auto& fams = scenario_families();
  const auto fam_it = std::find(fams.begin(), fams.end(), spec.family);
  if (fam_it == fams.end()) {
    throw std::invalid_argument("make_scenario: unknown family '" +
                                spec.family + "'");
  }
  const int fam = static_cast<int>(fam_it - fams.begin());

  Scenario sc;
  sc.spec = spec;
  Gen g(spec.to_string());
  g.rng.state = fnv1a(spec.family) ^ (spec.seed * 0x9e3779b97f4a7c15ULL) ^
                (static_cast<std::uint64_t>(spec.size) << 32);
  g.nl.set_ports({"VDD", "VSS"});

  // ---- block budget -------------------------------------------------------
  int budget = spec.size;
  const bool con = spec.constrained;
  // Constraint classes are disjoint per block; counts scale with size and
  // are clamped so small instances stay feasible.
  const int n_sym = con ? std::clamp(spec.size / 10, 1, 12) : 0;
  int n_match = 0;
  int preplace = 0;
  if (con) {
    budget -= 1;  // pre-placed anchor
    preplace = 1;
    budget -= 2 * n_sym;
    n_match = std::clamp((budget - 1) / 6, 0, 4);  // groups of 3
    budget -= 3 * n_match;
  }
  if (budget < 1) {
    throw std::invalid_argument("scenario: size " + std::to_string(spec.size) +
                                " too small for the constraint scenario");
  }

  // ---- pre-placed anchor --------------------------------------------------
  if (preplace) {
    // Family-typed anchor block, pinned at the canvas origin below.
    g.single(fam == 0, g.rng.width(6.0, 14.0));
    sc.constraints.preplaced.push_back({g.last_block(), 0.0, 0.0});
  }

  // ---- symmetric twins ----------------------------------------------------
  // Twins are emitted with identical sizing, so they carry identical
  // candidate shapes and a mirrored placement exists by construction.
  for (int k = 0; k < n_sym; ++k) {
    std::string a, b;
    switch (fam) {
      case 2: {  // latch: twin cross-coupled cores
        const double w = g.rng.width(4.0, 16.0);
        g.cross_pair(k % 2 == 1, w);
        a = g.last_block();
        g.cross_pair(k % 2 == 1, w);
        b = g.last_block();
        break;
      }
      case 3: {  // driver: twin power fingers
        const double w = g.rng.width(100.0, 400.0);
        g.power(w);
        a = g.last_block();
        g.power(w);
        b = g.last_block();
        break;
      }
      default: {  // ota / bias: twin mirror loads
        const double w = g.rng.width(4.0, 12.0);
        const bool p = fam == 0;
        g.mirror(p, 1, w);
        a = g.last_block();
        g.mirror(p, 1, w);
        b = g.last_block();
        break;
      }
    }
    sc.constraints.sym_pairs.push_back({a, b, /*vertical=*/true});
  }

  // ---- matching groups ----------------------------------------------------
  for (int k = 0; k < n_match; ++k) {
    graphir::NamedConstraintSpec::MatchGroup mg;
    const double w = g.rng.width(3.0, 10.0);
    const bool p = fam == 0 || (fam == 1 && k % 2 == 1);
    for (int j = 0; j < 3; ++j) {
      g.single(p, w);
      mg.blocks.push_back(g.last_block());
    }
    sc.constraints.match_groups.push_back(std::move(mg));
  }

  // ---- family texture fillers --------------------------------------------
  std::vector<std::string> fillers;
  while (budget > 0) {
    const int roll = g.rng.range(0, 9);
    switch (fam) {
      case 0:  // ota: diff stages, mirror loads, compensation, output singles
        if (roll < 4 && budget >= 2) {
          const std::string tail = g.diff_pair(roll % 2 == 1,
                                               g.rng.width(4.0, 16.0));
          fillers.push_back(g.last_block());
          g.tail_source(tail, g.rng.width(8.0, 24.0));
          fillers.push_back(g.last_block());
          budget -= 2;
          continue;
        } else if (roll < 7) {
          g.mirror(roll % 2 == 0, g.rng.range(1, 2), g.rng.width(4.0, 12.0));
        } else if (roll < 9) {
          g.single(roll % 2 == 0, g.rng.width(4.0, 24.0));
        } else {
          g.cap(0.2e-12 + 0.4e-12 * g.rng.uniform());
        }
        break;
      case 1:  // bias: mirror trees, resistor strings, setpoint singles
        if (roll < 5) {
          g.mirror(roll % 2 == 1, g.rng.range(1, 3), g.rng.width(3.0, 10.0));
        } else if (roll < 7 && g.resistors < 36) {
          g.res_string(g.rng.range(2, 3), 5e3 + 2e4 * g.rng.uniform());
        } else if (roll < 9) {
          g.single(roll % 2 == 0, g.rng.width(2.0, 12.0));
        } else {
          g.cap(0.1e-12 + 0.3e-12 * g.rng.uniform());
        }
        break;
      case 2:  // latch: cross-coupled cores, clocking singles, keeper caps
        if (roll < 5) {
          g.cross_pair(roll % 2 == 1, g.rng.width(4.0, 16.0));
        } else if (roll < 9) {
          g.single(roll % 2 == 0, g.rng.width(3.0, 18.0));
        } else {
          g.cap(0.05e-12 + 0.2e-12 * g.rng.uniform());
        }
        break;
      default:  // driver: power fingers, predrivers, decap
        if (roll < 4) {
          g.power(g.rng.width(100.0, 500.0));
        } else if (roll < 9) {
          g.single(roll % 2 == 0, g.rng.width(6.0, 40.0));
        } else {
          g.cap(0.5e-12 + 1.5e-12 * g.rng.uniform());
        }
        break;
    }
    fillers.push_back(g.last_block());
    --budget;
  }

  // ---- alignment group + keep-out ----------------------------------------
  if (con && fillers.size() >= 3) {
    graphir::NamedConstraintSpec::AlignGroup ag;
    ag.horizontal = true;
    for (int j = 0; j < 3; ++j) {
      ag.blocks.push_back(fillers[static_cast<std::size_t>(j)]);
    }
    sc.constraints.align_groups.push_back(std::move(ag));
  }
  if (con) {
    // Keep-out strip across the top of the (unscaled) canvas: the canvas
    // holds ~11x the block area, so packing below the strip always fits.
    const double side = geom::canvas_side(g.nl.total_device_area(), 11.0);
    sc.constraints.keep_outs.push_back(
        {{0.0, 0.8 * side, side, 0.15 * side}});
  }
  if (spec.aspect > 0.0) sc.constraints.target_aspect = spec.aspect;
  sc.constraints.extra_whitespace = spec.whitespace;

  sc.netlist = std::move(g.nl);
  sc.block_names = std::move(g.blocks);
  if (static_cast<int>(sc.block_names.size()) != spec.size) {
    throw std::logic_error("scenario generator block accounting drifted");
  }
  return sc;
}

}  // namespace afp::ingest
