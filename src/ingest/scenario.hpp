// Deterministic parameterized workload generator.
//
// A scenario is a pure function of (family, size, seed): SplitMix64 streams
// derived from the spec drive every choice, so the same spec always yields
// the same netlist and constraint overlay on every machine and thread
// count.  Four circuit families cover the paper's workload axes:
//
//   ota    — differential stages: diff pairs + tail sources + mirror loads
//            + compensation caps (analog gain-path texture),
//   bias   — mirror trees and resistor strings (many small matched blocks),
//   latch  — cross-coupled cores + clocking singles (symmetry-heavy),
//   driver — power devices (>= 100 um) + predrivers (extreme area spread).
//
// `size` is the target *block* count after structure recognition (10..1000
// in the sweeps); the generator composes motifs that the structrec rule
// engine recognizes 1:1, so the recognized block count is exact, and it
// computes each motif's block name (member device names joined with '+')
// so the constraint overlay can be emitted name-keyed alongside.
//
// Constraint scenarios: symmetry pairs over identically-sized motif twins,
// matching groups over same-area singles, a keep-out strip and pre-placed
// anchor blocks — each satisfiable by construction (the property suite
// builds an analytic witness placement).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graphir/graph.hpp"
#include "netlist/netlist.hpp"

namespace afp::ingest {

/// Parsed "family:size:seed[:key=value...]" scenario spec.  Optional
/// suffix keys: ar=<aspect> (target outline aspect R*), ws=<fraction>
/// (extra whitespace), plain=1 (suppress the constraint scenario).
struct ScenarioSpec {
  std::string family = "ota";
  int size = 10;               ///< target recognized-block count
  std::uint64_t seed = 1;
  double aspect = 0.0;         ///< 0 = no outline aspect target
  double whitespace = 0.0;     ///< extra canvas whitespace fraction
  bool constrained = true;     ///< emit the constraint scenario

  /// Parses the grammar above; throws std::invalid_argument with a
  /// diagnostic on malformed specs (unknown family, size out of [4, 5000],
  /// bad numbers).
  static ScenarioSpec parse(const std::string& text);

  /// Canonical "family:size:seed[:ar=..][:ws=..][:plain=1]" round-trip.
  std::string to_string() const;
};

/// A generated workload instance: the netlist plus its name-keyed
/// constraint overlay (empty when spec.constrained is false).
struct Scenario {
  ScenarioSpec spec;
  netlist::Netlist netlist;
  graphir::NamedConstraintSpec constraints;
  /// Recognized-block names per motif, in emission order (the generator's
  /// own accounting; recognition reproduces exactly this set).
  std::vector<std::string> block_names;
};

/// The four families, in canonical order.
const std::vector<std::string>& scenario_families();

/// Generates the scenario for `spec`; throws std::invalid_argument on an
/// unknown family.  Pure function of the spec.
Scenario make_scenario(const ScenarioSpec& spec);

}  // namespace afp::ingest
