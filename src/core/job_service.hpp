// Async batch front end for the floorplanning pipeline.
//
// A JobService accepts N (netlist, PipelineConfig) jobs, schedules them on
// the shared numeric thread pool (one job per parallel_for chunk — a job
// never re-enters the pool, so per-job searches stay thread-count
// invariant), and exposes:
//
//   * futures        — submit() returns a Handle with a shared_future
//                      resolving to the job's JobReport,
//   * cancellation   — every Handle carries a CancelToken, polled before
//                      the search and at quantum/restart boundaries (a
//                      plain single search, once started, completes),
//   * deadlines      — a per-job wall-clock budget via
//                      PipelineConfig::search.budget.wall_clock_s (the
//                      ROADMAP's budgeted mode: quanta race the clock,
//                      deterministically per completed quantum count),
//   * progress       — an optional callback fired from worker threads on
//                      every job state change (must be thread-safe).
//
// Reproducibility: job k (in submission order) always runs under the rng
// seed job_seed(base_seed, k) — a SplitMix64 stream independent of thread
// count, batch grouping and submission timing — so a batch's reports are
// bitwise identical across runs and pool sizes.
#pragma once

#include <condition_variable>
#include <deque>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "core/pipeline.hpp"
#include "netlist/netlist.hpp"

namespace afp::core {

enum class JobStatus {
  kQueued,
  kRunning,
  kDone,
  kCancelled,
  kFailed,
  kDeadlineExceeded,
};

const char* to_string(JobStatus s);

/// Error taxonomy: what went wrong with a job, machine-readably.  Retry
/// policy and the daemon's admission decisions key off `kind`, never off
/// message text.
enum class JobErrorKind {
  kNone,               ///< no error (status kDone)
  kInvalidConfig,      ///< bad optimizer/options/netlist/checkpoint — not
                       ///< retryable, the job can never succeed as specified
  kOptimizerFailure,   ///< an exception escaped a search quantum (retryable)
  kDeadlineExceeded,   ///< the watchdog deadline expired (not retryable:
                       ///< a retry would get the same budget)
  kCancelled,          ///< cancelled before any result existed
  kResourceExhausted,  ///< allocation failure (retryable)
  kInternal,           ///< invariant violation (e.g. non-finite cost)
};

const char* to_string(JobErrorKind k);

/// True for the kinds a retry can plausibly fix (transient failures).
bool is_retryable(JobErrorKind k);

/// Structured error carried by JobReport and the JSON report schema.
struct JobError {
  JobErrorKind kind = JobErrorKind::kNone;
  std::string message;
  std::size_t job_id = 0;
  /// Search quantum the failure is attributed to; -1 = outside any quantum
  /// (setup, pre-search deadline, result validation).
  long quantum = -1;

  bool ok() const { return kind == JobErrorKind::kNone; }
};

/// One unit of batch work: a netlist plus a full pipeline configuration.
struct JobSpec {
  std::string name;  ///< label; defaults to the netlist name when empty
  netlist::Netlist netlist;
  PipelineConfig config;
  /// Explicit per-job rng seed; 0 = derive job_seed(base_seed, id).  The
  /// daemon uses this so a served job is bitwise identical to the same
  /// `afp_cli floorplan --seed N` run.
  std::uint64_t seed = 0;
};

/// Terminal record of a job.  `result` is meaningful only when status is
/// kDone; `error.kind` is kNone exactly when the job succeeded.
struct JobReport {
  std::size_t id = 0;
  std::string name;
  JobStatus status = JobStatus::kQueued;
  std::uint64_t seed = 0;  ///< derived per-job rng seed (reproducibility)
  double runtime_s = 0.0;
  int attempts = 1;  ///< 1 + retries actually performed
  JobError error;
  /// Resolved search configuration (registry key, full option map with
  /// defaults filled in, restarts/budget) — config provenance for the JSON
  /// reports.
  std::string optimizer;
  metaheur::Options options;
  SearchConfig search;
  PipelineResult result;
};

/// Progress event; fired on kRunning and on every terminal state.
struct JobProgress {
  std::size_t id = 0;
  std::string name;
  JobStatus status = JobStatus::kQueued;
  double runtime_s = 0.0;
  int attempt = 0;  ///< 0-based; > 0 on retries
};

using ProgressFn = std::function<void(const JobProgress&)>;

struct JobServiceOptions {
  std::uint64_t base_seed = 1;
  /// Invoked from worker threads; must be thread-safe.  May be empty.
  ProgressFn on_progress;
  /// Optional service/batch-wide stop signal: every job's token is created
  /// as a child of this one, so cancel() (or an armed deadline) on it stops
  /// all jobs at iteration latency — the daemon's drain path.  Null = none.
  const CancelToken* cancel = nullptr;
};

class JobService {
 public:
  struct Handle {
    std::size_t id = 0;
    CancelToken cancel;
    std::shared_future<JobReport> report;
  };

  explicit JobService(JobServiceOptions opts = {});
  /// Drains the queue (blocks until every submitted job reached a terminal
  /// state) and joins the dispatcher.
  ~JobService();

  JobService(const JobService&) = delete;
  JobService& operator=(const JobService&) = delete;

  /// Enqueues a job; the dispatcher fans queued jobs out on the pool.
  Handle submit(JobSpec spec);

  /// Blocks until every job submitted so far reached a terminal state.
  void wait_all();

  /// Per-job rng seed: a SplitMix64 stream over (base_seed, job id) in a
  /// domain distinct from the restart/replica streams.
  static std::uint64_t job_seed(std::uint64_t base_seed, std::size_t job_id);

  /// Identity hash of a spec's search configuration (the PR 6 checkpoint
  /// identity over optimizer/options/instance size/iteration budget).  The
  /// afpd crash-recovery journal records it per accepted job so an orphan
  /// report names exactly which configured run was lost.
  static std::uint64_t spec_identity(const JobSpec& spec);

  /// Runs one job to a terminal report (no service needed), applying the
  /// full fault-tolerance policy:
  ///
  ///   * watchdog — search.budget.deadline_s arms the job's CancelToken;
  ///     an overrun ends as kDeadlineExceeded (partial results discarded),
  ///   * firewall — any exception ends as a terminal classified JobError,
  ///     never escapes (so one bad job cannot poison a pool fan-out),
  ///   * retry — retryable kinds re-run up to search.retry.max_retries
  ///     times; attempt k > 0 uses retry_seed(seed, k) and sleeps
  ///     retry_backoff_s(seed, k) first, both pure functions of the seed,
  ///   * cancellation — polled inside optimizer loops (one-iteration
  ///     latency); a cancel before any result exists yields kCancelled,
  ///     later ones return the best-so-far as kDone.
  static JobReport run_job(const JobSpec& spec, std::size_t id,
                           std::uint64_t seed, const CancelToken* cancel,
                           const ProgressFn& progress);

  /// RNG seed for retry attempt k (k = 0 returns `seed` unchanged); a
  /// SplitMix64 stream in its own domain, so retries explore fresh search
  /// trajectories deterministically.
  static std::uint64_t retry_seed(std::uint64_t seed, int attempt);

  /// Deterministic capped-exponential backoff before retry attempt k >= 1:
  /// min(cap, base * 2^(k-1)) scaled by a jitter in [0.5, 1) drawn from the
  /// job's SplitMix64 stream.  Pure function of (seed, k, policy).
  static double retry_backoff_s(std::uint64_t seed, int attempt,
                                const RetryPolicy& policy);

  /// Validates a finished pipeline result (finite cost/metrics); a
  /// violation is reported as a kInternal JobError instead of emitting
  /// NaN/Inf into reports.
  static JobError validate_result(const PipelineResult& result);

  /// Convenience: run a whole batch on the pool and return the reports in
  /// job order.  Equivalent to submitting every job to a fresh service and
  /// collecting the futures — same seeds, same determinism contract.
  static std::vector<JobReport> run_batch(const std::vector<JobSpec>& jobs,
                                          const JobServiceOptions& opts = {});

 private:
  struct Pending {
    JobSpec spec;
    std::size_t id = 0;
    CancelToken cancel;
    std::promise<JobReport> promise;
  };

  void dispatch_loop();

  JobServiceOptions opts_;
  std::mutex mu_;
  std::condition_variable work_cv_;   ///< queue became non-empty / stopping
  std::condition_variable idle_cv_;   ///< queue drained and nothing in flight
  std::deque<Pending> queue_;
  std::size_t next_id_ = 0;
  std::size_t in_flight_ = 0;
  bool stop_ = false;
  std::thread dispatcher_;
};

}  // namespace afp::core
