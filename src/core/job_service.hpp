// Async batch front end for the floorplanning pipeline.
//
// A JobService accepts N (netlist, PipelineConfig) jobs, schedules them on
// the shared numeric thread pool (one job per parallel_for chunk — a job
// never re-enters the pool, so per-job searches stay thread-count
// invariant), and exposes:
//
//   * futures        — submit() returns a Handle with a shared_future
//                      resolving to the job's JobReport,
//   * cancellation   — every Handle carries a CancelToken, polled before
//                      the search and at quantum/restart boundaries (a
//                      plain single search, once started, completes),
//   * deadlines      — a per-job wall-clock budget via
//                      PipelineConfig::search.budget.wall_clock_s (the
//                      ROADMAP's budgeted mode: quanta race the clock,
//                      deterministically per completed quantum count),
//   * progress       — an optional callback fired from worker threads on
//                      every job state change (must be thread-safe).
//
// Reproducibility: job k (in submission order) always runs under the rng
// seed job_seed(base_seed, k) — a SplitMix64 stream independent of thread
// count, batch grouping and submission timing — so a batch's reports are
// bitwise identical across runs and pool sizes.
#pragma once

#include <condition_variable>
#include <deque>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "core/pipeline.hpp"
#include "netlist/netlist.hpp"

namespace afp::core {

enum class JobStatus { kQueued, kRunning, kDone, kCancelled, kFailed };

const char* to_string(JobStatus s);

/// One unit of batch work: a netlist plus a full pipeline configuration.
struct JobSpec {
  std::string name;  ///< label; defaults to the netlist name when empty
  netlist::Netlist netlist;
  PipelineConfig config;
};

/// Terminal record of a job.  `result` is meaningful only when status is
/// kDone; `error` only when kFailed.
struct JobReport {
  std::size_t id = 0;
  std::string name;
  JobStatus status = JobStatus::kQueued;
  std::uint64_t seed = 0;  ///< derived per-job rng seed (reproducibility)
  double runtime_s = 0.0;
  std::string error;
  /// Resolved search configuration (registry key, full option map with
  /// defaults filled in, restarts/budget) — config provenance for the JSON
  /// reports.
  std::string optimizer;
  metaheur::Options options;
  SearchConfig search;
  PipelineResult result;
};

/// Progress event; fired on kRunning and on every terminal state.
struct JobProgress {
  std::size_t id = 0;
  std::string name;
  JobStatus status = JobStatus::kQueued;
  double runtime_s = 0.0;
};

using ProgressFn = std::function<void(const JobProgress&)>;

struct JobServiceOptions {
  std::uint64_t base_seed = 1;
  /// Invoked from worker threads; must be thread-safe.  May be empty.
  ProgressFn on_progress;
};

class JobService {
 public:
  struct Handle {
    std::size_t id = 0;
    CancelToken cancel;
    std::shared_future<JobReport> report;
  };

  explicit JobService(JobServiceOptions opts = {});
  /// Drains the queue (blocks until every submitted job reached a terminal
  /// state) and joins the dispatcher.
  ~JobService();

  JobService(const JobService&) = delete;
  JobService& operator=(const JobService&) = delete;

  /// Enqueues a job; the dispatcher fans queued jobs out on the pool.
  Handle submit(JobSpec spec);

  /// Blocks until every job submitted so far reached a terminal state.
  void wait_all();

  /// Per-job rng seed: a SplitMix64 stream over (base_seed, job id) in a
  /// domain distinct from the restart/replica streams.
  static std::uint64_t job_seed(std::uint64_t base_seed, std::size_t job_id);

  /// Runs one job to a terminal report (no service needed).  Cancellation
  /// is polled at quantum granularity; a cancel that lands before any
  /// result exists yields kCancelled, later ones return the best-so-far as
  /// kDone.  Exceptions become kFailed with the message in `error`.
  static JobReport run_job(const JobSpec& spec, std::size_t id,
                           std::uint64_t seed, const CancelToken* cancel,
                           const ProgressFn& progress);

  /// Convenience: run a whole batch on the pool and return the reports in
  /// job order.  Equivalent to submitting every job to a fresh service and
  /// collecting the futures — same seeds, same determinism contract.
  static std::vector<JobReport> run_batch(const std::vector<JobSpec>& jobs,
                                          const JobServiceOptions& opts = {});

 private:
  struct Pending {
    JobSpec spec;
    std::size_t id = 0;
    CancelToken cancel;
    std::promise<JobReport> promise;
  };

  void dispatch_loop();

  JobServiceOptions opts_;
  std::mutex mu_;
  std::condition_variable work_cv_;   ///< queue became non-empty / stopping
  std::condition_variable idle_cv_;   ///< queue drained and nothing in flight
  std::deque<Pending> queue_;
  std::size_t next_id_ = 0;
  std::size_t in_flight_ = 0;
  bool stop_ = false;
  std::thread dispatcher_;
};

}  // namespace afp::core
