// Machine-readable JSON emission for pipeline configs and run reports.
//
// Two top-level shapes, both schema_version 1 and validated in CI against
// cmake/report_schema.json (see cmake/check_report_json.py):
//
//   * report_json       — one pipeline run: optimizer + options (config
//                         provenance), metrics, routing/layout summaries,
//                         stage timings and the packed rectangles,
//   * batch_report_json — a JobService batch: batch metadata plus one entry
//                         per job (status, seed, runtime, nested report).
//
// Numbers are emitted at full precision (%.17g) so reports double as
// reproducibility artifacts; timings are included but live in their own
// object, which determinism checks simply ignore.
#pragma once

#include <string>
#include <vector>

#include "core/job_service.hpp"

namespace afp::core {

/// JSON string escaping (quotes, backslashes, control characters).
std::string json_escape(const std::string& s);

/// Single-run report.  `circuit` is the run's input label; `optimizer`,
/// `options` and `search` record the full resolved search configuration
/// (registry key, option map, restarts/base_seed/budget overrides), so the
/// artifact alone reproduces the run given the seed.
std::string report_json(const PipelineResult& res, const std::string& circuit,
                        const std::string& optimizer,
                        const metaheur::Options& options,
                        const SearchConfig& search, std::uint64_t seed);

/// One job as a JSON object — the per-entry shape of batch_report_json and
/// the body of the daemon's `result` frames (shared emitter, so a served
/// job's bytes match the equivalent batch entry exactly).  `report` is
/// always the *last* member: a consumer that wants the nested single-run
/// report verbatim can slice from its key to the closing brace without
/// re-serializing (the daemon protocol documents this).  Jobs that did not
/// finish carry a null report.
std::string job_report_json(const JobReport& job);

/// Batch report: metadata + one entry per job in job order.
std::string batch_report_json(const std::vector<JobReport>& reports,
                              std::uint64_t base_seed, double time_budget_s,
                              int threads);

}  // namespace afp::core
