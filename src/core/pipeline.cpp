#include "core/pipeline.hpp"

#include "metaheur/parallel_search.hpp"

namespace afp::core {

namespace {
using Clock = std::chrono::steady_clock;
double since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}
}  // namespace

std::string to_string(Method m) {
  switch (m) {
    case Method::kRgcnRl: return "R-GCN RL";
    case Method::kSA: return "SA";
    case Method::kGA: return "GA";
    case Method::kPSO: return "PSO";
    case Method::kRlSa: return "RL-SA[13]";
    case Method::kRlSp: return "RL[13]";
    case Method::kSaBStar: return "SA-B*[15]";
    case Method::kPT: return "PT";
  }
  return "?";
}

std::string optimizer_name(Method m) {
  switch (m) {
    case Method::kSA: return "sa";
    case Method::kGA: return "ga";
    case Method::kPSO: return "pso";
    case Method::kRlSa: return "rlsa";
    case Method::kRlSp: return "rlsp";
    case Method::kSaBStar: return "sab";
    case Method::kPT: return "pt";
    case Method::kRgcnRl:
      break;
  }
  throw std::invalid_argument(
      "optimizer_name: Method::kRgcnRl has no registry optimizer; use the "
      "ActorCritic overload");
}

FloorplanPipeline::Prepared FloorplanPipeline::prepare(
    const netlist::Netlist& nl, std::mt19937_64& rng) const {
  Prepared prep;
  const auto t0 = Clock::now();
  prep.recognition = structrec::recognize(nl);
  prep.graph = graphir::build_graph(nl, prep.recognition);
  if (cfg_.constrained) {
    graphir::apply_constraints(prep.graph,
                               graphir::default_constraints(prep.graph));
  }
  prep.instance = floorplan::make_instance(prep.graph);
  if (cfg_.hpwl_ref > 0.0) {
    prep.instance.hpwl_ref = cfg_.hpwl_ref;
  } else {
    prep.instance.hpwl_ref = metaheur::estimate_hpwl_min(prep.instance, rng);
  }
  prep.recognition_s = since(t0);
  return prep;
}

PipelineResult FloorplanPipeline::back_half(Prepared prep,
                                            std::vector<geom::Rect> rects,
                                            double floorplan_s,
                                            double constraint_tol) const {
  PipelineResult res;
  res.recognition = std::move(prep.recognition);
  res.instance = std::move(prep.instance);
  res.eval = floorplan::evaluate_floorplan(res.instance, rects, {},
                                           constraint_tol);
  res.rects = std::move(rects);
  res.timings.recognition_s = prep.recognition_s;
  res.timings.floorplan_s = floorplan_s;

  std::vector<int> dirs;
  dirs.reserve(prep.graph.nodes.size());
  for (const auto& node : prep.graph.nodes) {
    dirs.push_back(node.routing_direction);
  }
  res.graph = std::move(prep.graph);

  auto t0 = Clock::now();
  res.route = route::global_route(res.instance, res.rects, dirs);
  res.timings.route_s = since(t0);

  t0 = Clock::now();
  res.layout = layoutgen::generate_layout(res.instance, res.rects, res.route,
                                          cfg_.layout, dirs);
  res.drc = layoutgen::run_drc(res.layout, cfg_.layout);
  res.lvs = layoutgen::run_lvs(res.layout);
  res.timings.layout_s = since(t0);
  return res;
}

PipelineResult FloorplanPipeline::run(const netlist::Netlist& nl,
                                      const rl::ActorCritic& policy,
                                      const rgcn::RewardModel& encoder,
                                      std::mt19937_64& rng) const {
  Prepared prep = prepare(nl, rng);
  const auto t0 = Clock::now();
  rl::TaskContext task =
      rl::make_task(encoder, prep.graph, prep.instance.hpwl_ref,
                    prep.instance.target_aspect);
  rl::EpisodeResult ep = rl::best_of_episodes(policy, task, cfg_.rl_attempts,
                                              rng, cfg_.env);
  if (ep.rects.empty()) {
    throw std::runtime_error(
        "FloorplanPipeline: agent failed to produce a complete floorplan for " +
        nl.name());
  }
  // Grid-produced rectangles: alignment is exact at grid granularity.
  const double tol = prep.instance.canvas_w / cfg_.env.grid / 2.0 + 1e-9;
  auto res = back_half(std::move(prep), std::move(ep.rects), since(t0), tol);
  res.optimizer = "rgcn-rl";
  res.evaluations = cfg_.rl_attempts;
  return res;
}

PipelineResult FloorplanPipeline::run(const netlist::Netlist& nl,
                                      std::mt19937_64& rng,
                                      const CancelToken* cancel) const {
  const auto opt = metaheur::make_optimizer(cfg_.optimizer, cfg_.options);
  return run(nl, *opt, rng, cancel);
}

PipelineResult FloorplanPipeline::run(const netlist::Netlist& nl,
                                      const metaheur::Optimizer& opt,
                                      std::mt19937_64& rng,
                                      const CancelToken* cancel) const {
  if (cancel && cancel->cancelled()) throw CancelledError();
  Prepared prep = prepare(nl, rng);
  const auto t0 = Clock::now();
  const metaheur::SearchBudget& budget = cfg_.search.budget;
  metaheur::BaselineResult base;
  long quanta = 1;
  if (budget.wall_clock_s > 0.0) {
    // Wall-clock-budgeted mode: quanta of the configured iteration budget
    // race the deadline.  Quantum q always draws from restart_rng(base, q),
    // so the outcome is a pure function of (base_seed, #quanta completed) —
    // reproducible for a fixed budget and thread-count invariant.  At least
    // one quantum always completes.
    const std::uint64_t base_seed =
        cfg_.search.base_seed ? cfg_.search.base_seed : rng();
    const auto deadline =
        t0 + std::chrono::duration_cast<Clock::duration>(
                 std::chrono::duration<double>(budget.wall_clock_s));
    const metaheur::SearchBudget quantum{budget.iterations, 0.0};
    double best_cost = 0.0;
    long evaluations = 0;
    quanta = 0;
    while (true) {
      std::mt19937_64 qrng =
          metaheur::restart_rng(base_seed, static_cast<int>(quanta));
      metaheur::BaselineResult r = opt.run(prep.instance, quantum, qrng);
      evaluations += r.evaluations;
      const double cost = metaheur::sp_cost(prep.instance, r.rects);
      if (quanta == 0 || cost < best_cost) {
        best_cost = cost;
        base = std::move(r);
      }
      ++quanta;
      if (Clock::now() >= deadline) break;
      if (cancel && cancel->cancelled()) break;
    }
    base.evaluations = evaluations;
  } else if (cfg_.search.restarts > 1) {
    // Fan the whole search out on the pool; each restart gets its own
    // SplitMix64 stream, so the result is thread-count invariant and a pure
    // function of (base_seed, restarts).
    metaheur::MultiStartOptions mopt;
    mopt.restarts = cfg_.search.restarts;
    mopt.base_seed = cfg_.search.base_seed ? cfg_.search.base_seed : rng();
    base = metaheur::run_multistart(
        prep.instance,
        [&](int, std::mt19937_64& r) {
          if (cancel && cancel->cancelled()) {
            // Restart-granularity cancellation: restarts that begin after
            // the cancel collapse to a minimal run (their initial
            // candidate) so the fan-out drains quickly while every slot
            // still holds a valid result for the deterministic selection.
            return opt.run(prep.instance, metaheur::SearchBudget{1, 0.0}, r);
          }
          return opt.run(prep.instance, budget, r);
        },
        mopt);
  } else {
    base = opt.run(prep.instance, budget, rng);
  }
  const long evaluations = base.evaluations;
  auto res =
      back_half(std::move(prep), std::move(base.rects), since(t0), 1e-6);
  res.optimizer = opt.name();
  res.evaluations = evaluations;
  res.quanta = quanta;
  return res;
}

PipelineResult FloorplanPipeline::run(const netlist::Netlist& nl,
                                      Method method,
                                      std::mt19937_64& rng) const {
  const std::string name = optimizer_name(method);  // throws for kRgcnRl
  // Reuse the configured options only when they were written for this
  // optimizer; a mismatched map (e.g. SA options driving a GA run through
  // the shim) would otherwise throw on unknown keys.
  metaheur::Options opts;
  if (name == cfg_.optimizer) opts = cfg_.options;
  const auto opt = metaheur::make_optimizer(name, opts);
  return run(nl, *opt, rng, nullptr);
}

}  // namespace afp::core
