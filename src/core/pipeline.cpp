#include "core/pipeline.hpp"

namespace afp::core {

namespace {
using Clock = std::chrono::steady_clock;
double since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}
}  // namespace

std::string to_string(Method m) {
  switch (m) {
    case Method::kRgcnRl: return "R-GCN RL";
    case Method::kSA: return "SA";
    case Method::kGA: return "GA";
    case Method::kPSO: return "PSO";
    case Method::kRlSa: return "RL-SA[13]";
    case Method::kRlSp: return "RL[13]";
    case Method::kSaBStar: return "SA-B*[15]";
    case Method::kPT: return "PT";
  }
  return "?";
}

FloorplanPipeline::Prepared FloorplanPipeline::prepare(
    const netlist::Netlist& nl, std::mt19937_64& rng) const {
  Prepared prep;
  const auto t0 = Clock::now();
  prep.recognition = structrec::recognize(nl);
  prep.graph = graphir::build_graph(nl, prep.recognition);
  if (cfg_.constrained) {
    graphir::apply_constraints(prep.graph,
                               graphir::default_constraints(prep.graph));
  }
  prep.instance = floorplan::make_instance(prep.graph);
  if (cfg_.hpwl_ref > 0.0) {
    prep.instance.hpwl_ref = cfg_.hpwl_ref;
  } else {
    prep.instance.hpwl_ref = metaheur::estimate_hpwl_min(prep.instance, rng);
  }
  prep.recognition_s = since(t0);
  return prep;
}

PipelineResult FloorplanPipeline::back_half(Prepared prep,
                                            std::vector<geom::Rect> rects,
                                            double floorplan_s,
                                            double constraint_tol) const {
  PipelineResult res;
  res.recognition = std::move(prep.recognition);
  res.instance = std::move(prep.instance);
  res.eval = floorplan::evaluate_floorplan(res.instance, rects, {},
                                           constraint_tol);
  res.rects = std::move(rects);
  res.timings.recognition_s = prep.recognition_s;
  res.timings.floorplan_s = floorplan_s;

  std::vector<int> dirs;
  dirs.reserve(prep.graph.nodes.size());
  for (const auto& node : prep.graph.nodes) {
    dirs.push_back(node.routing_direction);
  }
  res.graph = std::move(prep.graph);

  auto t0 = Clock::now();
  res.route = route::global_route(res.instance, res.rects, dirs);
  res.timings.route_s = since(t0);

  t0 = Clock::now();
  res.layout = layoutgen::generate_layout(res.instance, res.rects, res.route,
                                          cfg_.layout, dirs);
  res.drc = layoutgen::run_drc(res.layout, cfg_.layout);
  res.lvs = layoutgen::run_lvs(res.layout);
  res.timings.layout_s = since(t0);
  return res;
}

PipelineResult FloorplanPipeline::run(const netlist::Netlist& nl,
                                      const rl::ActorCritic& policy,
                                      const rgcn::RewardModel& encoder,
                                      std::mt19937_64& rng) const {
  Prepared prep = prepare(nl, rng);
  const auto t0 = Clock::now();
  rl::TaskContext task =
      rl::make_task(encoder, prep.graph, prep.instance.hpwl_ref,
                    prep.instance.target_aspect);
  rl::EpisodeResult ep = rl::best_of_episodes(policy, task, cfg_.rl_attempts,
                                              rng, cfg_.env);
  if (ep.rects.empty()) {
    throw std::runtime_error(
        "FloorplanPipeline: agent failed to produce a complete floorplan for " +
        nl.name());
  }
  // Grid-produced rectangles: alignment is exact at grid granularity.
  const double tol = prep.instance.canvas_w / cfg_.env.grid / 2.0 + 1e-9;
  return back_half(std::move(prep), std::move(ep.rects), since(t0), tol);
}

PipelineResult FloorplanPipeline::run(const netlist::Netlist& nl,
                                      Method method,
                                      std::mt19937_64& rng) const {
  Prepared prep = prepare(nl, rng);
  const auto t0 = Clock::now();
  const auto single = [&](std::mt19937_64& r) -> metaheur::BaselineResult {
    switch (method) {
      case Method::kSA: return metaheur::run_sa(prep.instance, cfg_.sa, r);
      case Method::kGA: return metaheur::run_ga(prep.instance, cfg_.ga, r);
      case Method::kPSO: return metaheur::run_pso(prep.instance, cfg_.pso, r);
      case Method::kRlSa:
        return metaheur::run_rlsa(prep.instance, cfg_.rlsa, r);
      case Method::kRlSp:
        return metaheur::run_rlsp(prep.instance, cfg_.rlsp, r);
      case Method::kSaBStar:
        return metaheur::run_sa_bstar(prep.instance, cfg_.bstar, r);
      case Method::kPT:
        return metaheur::run_pt(prep.instance, cfg_.search.pt, r);
      case Method::kRgcnRl:
        break;
    }
    throw std::invalid_argument(
        "FloorplanPipeline: use the ActorCritic overload for R-GCN RL");
  };
  metaheur::BaselineResult base;
  if (cfg_.search.restarts > 1) {
    // Fan the whole search out on the pool; each restart gets its own
    // SplitMix64 stream, so the result is thread-count invariant and a pure
    // function of (base_seed, restarts).
    metaheur::MultiStartOptions opt;
    opt.restarts = cfg_.search.restarts;
    opt.base_seed = cfg_.search.base_seed ? cfg_.search.base_seed : rng();
    base = metaheur::run_multistart(
        prep.instance,
        [&](int, std::mt19937_64& r) { return single(r); }, opt);
  } else {
    base = single(rng);
  }
  return back_half(std::move(prep), std::move(base.rects), since(t0), 1e-6);
}

}  // namespace afp::core
