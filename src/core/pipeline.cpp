#include "core/pipeline.hpp"

#include <cmath>
#include <cstring>
#include <fstream>

#include "core/fault.hpp"
#include "metaheur/eval_cache.hpp"
#include "metaheur/parallel_search.hpp"
#include "numeric/serialize.hpp"

namespace afp::core {

namespace {
using Clock = std::chrono::steady_clock;
double since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

std::uint64_t double_bits(double v) {
  std::uint64_t u;
  std::memcpy(&u, &v, sizeof u);
  return u;
}

double bits_double(std::uint64_t u) {
  double v;
  std::memcpy(&v, &u, sizeof v);
  return v;
}

std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

/// Quantum-mode search state; exactly what checkpoint-resume round-trips.
struct QuantumState {
  std::uint64_t base_seed = 0;
  long quanta = 0;       ///< completed quanta
  long evaluations = 0;  ///< total packed-and-scored candidates so far
  bool has_best = false;
  double best_cost = 0.0;
  metaheur::BaselineResult best;
};

constexpr std::uint64_t kCheckpointVersion = 1;

void write_quantum_checkpoint(const std::string& path, std::uint64_t identity,
                              const QuantumState& st) {
  num::WordMap words;
  words["meta"] = {kCheckpointVersion,
                   identity,
                   st.base_seed,
                   static_cast<std::uint64_t>(st.quanta),
                   static_cast<std::uint64_t>(st.evaluations),
                   st.has_best ? 1ull : 0ull};
  std::vector<std::uint64_t> best;
  best.reserve(1 + 4 * st.best.rects.size());
  best.push_back(double_bits(st.best_cost));
  for (const auto& r : st.best.rects) {
    best.push_back(double_bits(r.x));
    best.push_back(double_bits(r.y));
    best.push_back(double_bits(r.w));
    best.push_back(double_bits(r.h));
  }
  words["best"] = std::move(best);
  num::save_words(path, words);
}

/// Returns false when no checkpoint exists (fresh run).  Throws
/// std::invalid_argument on an identity/version mismatch (resuming the
/// wrong search is a config error, not a reason to silently restart).
bool load_quantum_checkpoint(const std::string& path, std::uint64_t identity,
                             QuantumState* st) {
  {
    std::ifstream probe(path, std::ios::binary);
    if (!probe.good()) return false;
  }
  const num::WordMap words = num::load_words(path);
  const auto meta_it = words.find("meta");
  const auto best_it = words.find("best");
  if (meta_it == words.end() || best_it == words.end() ||
      meta_it->second.size() != 6 || best_it->second.empty() ||
      (best_it->second.size() - 1) % 4 != 0) {
    throw std::runtime_error("checkpoint: malformed quantum state in " + path);
  }
  const auto& meta = meta_it->second;
  if (meta[0] != kCheckpointVersion) {
    throw std::invalid_argument("checkpoint: unsupported version in " + path);
  }
  if (meta[1] != identity) {
    throw std::invalid_argument(
        "checkpoint: " + path +
        " was written by a different search configuration; refusing to "
        "resume");
  }
  st->base_seed = meta[2];
  st->quanta = static_cast<long>(meta[3]);
  st->evaluations = static_cast<long>(meta[4]);
  st->has_best = meta[5] != 0;
  const auto& best = best_it->second;
  st->best_cost = bits_double(best[0]);
  st->best.rects.clear();
  st->best.rects.reserve((best.size() - 1) / 4);
  for (std::size_t i = 1; i + 3 < best.size(); i += 4) {
    st->best.rects.push_back({bits_double(best[i]), bits_double(best[i + 1]),
                              bits_double(best[i + 2]),
                              bits_double(best[i + 3])});
  }
  st->best.evaluations = st->evaluations;
  return true;
}
}  // namespace

std::uint64_t checkpoint_identity(const std::string& optimizer,
                                  const metaheur::Options& options,
                                  int num_blocks, int iterations) {
  std::string key = optimizer;
  for (const auto& [k, v] : options) key += ";" + k + "=" + v;
  key += "#" + std::to_string(num_blocks) + "#" + std::to_string(iterations);
  return fnv1a(key);
}

std::string to_string(Method m) {
  switch (m) {
    case Method::kRgcnRl: return "R-GCN RL";
    case Method::kSA: return "SA";
    case Method::kGA: return "GA";
    case Method::kPSO: return "PSO";
    case Method::kRlSa: return "RL-SA[13]";
    case Method::kRlSp: return "RL[13]";
    case Method::kSaBStar: return "SA-B*[15]";
    case Method::kPT: return "PT";
  }
  return "?";
}

std::string optimizer_name(Method m) {
  switch (m) {
    case Method::kSA: return "sa";
    case Method::kGA: return "ga";
    case Method::kPSO: return "pso";
    case Method::kRlSa: return "rlsa";
    case Method::kRlSp: return "rlsp";
    case Method::kSaBStar: return "sab";
    case Method::kPT: return "pt";
    case Method::kRgcnRl:
      break;
  }
  throw std::invalid_argument(
      "optimizer_name: Method::kRgcnRl has no registry optimizer; use the "
      "ActorCritic overload");
}

FloorplanPipeline::Prepared FloorplanPipeline::prepare(
    const netlist::Netlist& nl, std::mt19937_64& rng) const {
  Prepared prep;
  const auto t0 = Clock::now();
  prep.recognition = structrec::recognize(nl);
  prep.graph = graphir::build_graph(nl, prep.recognition);
  if (cfg_.constrained) {
    graphir::apply_constraints(prep.graph,
                               graphir::default_constraints(prep.graph));
  }
  if (!cfg_.scenario_constraints.empty()) {
    // Scenario overlay: resolve the name-keyed constraints against the
    // recognized blocks and merge them into whatever the default derivation
    // installed (apply_constraints re-materializes the relation edges).
    graphir::ConstraintSpec merged = prep.graph.constraints;
    graphir::ConstraintSpec overlay =
        graphir::resolve(cfg_.scenario_constraints, prep.graph);
    auto append = [](auto& dst, auto& src) {
      dst.insert(dst.end(), std::make_move_iterator(src.begin()),
                 std::make_move_iterator(src.end()));
    };
    append(merged.sym_pairs, overlay.sym_pairs);
    append(merged.self_syms, overlay.self_syms);
    append(merged.align_groups, overlay.align_groups);
    append(merged.match_groups, overlay.match_groups);
    append(merged.keep_outs, overlay.keep_outs);
    append(merged.preplaced, overlay.preplaced);
    graphir::apply_constraints(prep.graph, std::move(merged));
  }
  prep.instance = floorplan::make_instance(prep.graph);
  if (cfg_.scenario_constraints.extra_whitespace > 0.0) {
    const double s =
        std::sqrt(1.0 + cfg_.scenario_constraints.extra_whitespace);
    prep.instance.canvas_w *= s;
    prep.instance.canvas_h *= s;
  }
  if (cfg_.scenario_constraints.target_aspect) {
    prep.instance.target_aspect = cfg_.scenario_constraints.target_aspect;
  }
  if (cfg_.hpwl_ref > 0.0) {
    prep.instance.hpwl_ref = cfg_.hpwl_ref;
  } else {
    prep.instance.hpwl_ref = metaheur::estimate_hpwl_min(prep.instance, rng);
  }
  prep.recognition_s = since(t0);
  return prep;
}

PipelineResult FloorplanPipeline::back_half(Prepared prep,
                                            std::vector<geom::Rect> rects,
                                            double floorplan_s,
                                            double constraint_tol) const {
  PipelineResult res;
  res.recognition = std::move(prep.recognition);
  res.instance = std::move(prep.instance);
  res.eval = floorplan::evaluate_floorplan(res.instance, rects, {},
                                           constraint_tol);
  res.rects = std::move(rects);
  res.timings.recognition_s = prep.recognition_s;
  res.timings.floorplan_s = floorplan_s;

  std::vector<int> dirs;
  dirs.reserve(prep.graph.nodes.size());
  for (const auto& node : prep.graph.nodes) {
    dirs.push_back(node.routing_direction);
  }
  res.graph = std::move(prep.graph);

  auto t0 = Clock::now();
  res.route = route::global_route(res.instance, res.rects, dirs);
  res.timings.route_s = since(t0);

  t0 = Clock::now();
  res.layout = layoutgen::generate_layout(res.instance, res.rects, res.route,
                                          cfg_.layout, dirs);
  res.drc = layoutgen::run_drc(res.layout, cfg_.layout);
  res.lvs = layoutgen::run_lvs(res.layout);
  res.timings.layout_s = since(t0);
  return res;
}

PipelineResult FloorplanPipeline::run(const netlist::Netlist& nl,
                                      const rl::ActorCritic& policy,
                                      const rgcn::RewardModel& encoder,
                                      std::mt19937_64& rng) const {
  Prepared prep = prepare(nl, rng);
  const auto t0 = Clock::now();
  rl::TaskContext task =
      rl::make_task(encoder, prep.graph, prep.instance.hpwl_ref,
                    prep.instance.target_aspect);
  rl::EpisodeResult ep = rl::best_of_episodes(policy, task, cfg_.rl_attempts,
                                              rng, cfg_.env);
  if (ep.rects.empty()) {
    throw std::runtime_error(
        "FloorplanPipeline: agent failed to produce a complete floorplan for " +
        nl.name());
  }
  // Grid-produced rectangles: alignment is exact at grid granularity.
  const double tol = prep.instance.canvas_w / cfg_.env.grid / 2.0 + 1e-9;
  auto res = back_half(std::move(prep), std::move(ep.rects), since(t0), tol);
  res.optimizer = "rgcn-rl";
  res.evaluations = cfg_.rl_attempts;
  return res;
}

PipelineResult FloorplanPipeline::run(const netlist::Netlist& nl,
                                      std::mt19937_64& rng,
                                      const CancelToken* cancel) const {
  const auto opt = metaheur::make_optimizer(cfg_.optimizer, cfg_.options);
  return run(nl, *opt, rng, cancel);
}

PipelineResult FloorplanPipeline::run(const netlist::Netlist& nl,
                                      const metaheur::Optimizer& opt,
                                      std::mt19937_64& rng,
                                      const CancelToken* cancel) const {
  if (cancel && cancel->cancelled()) throw CancelledError();
  if (cancel && cancel->expired()) throw DeadlineExceededError(-1);
  Prepared prep = prepare(nl, rng);
  const auto t0 = Clock::now();
  const metaheur::SearchBudget& budget = cfg_.search.budget;
  metaheur::BaselineResult base;
  long quanta = 1;

  // Job-scoped transposition cache: every quantum, restart and PT replica
  // of this job shares one memo (metaheur/eval_cache), so a state revisited
  // by any of them skips its repack + rescore.  Memoized costs are pure
  // functions of the key, which keeps the quantum/multistart determinism
  // contracts intact; thread safety comes from the cache's striped locks.
  metaheur::TranspositionCache tt;

  // Exception firewall around one optimizer invocation: the stop-signal
  // exceptions and bad_alloc keep their identity (they classify as
  // cancelled / deadline_exceeded / resource_exhausted), everything else
  // is wrapped so the failing quantum is attributed.  The fault injector
  // fires at the same boundary, which makes an injected fault
  // indistinguishable from a real optimizer bug downstream.
  auto run_guarded = [&](const metaheur::SearchBudget& b, std::mt19937_64& r,
                         long q) -> metaheur::BaselineResult {
    try {
      FaultInjector::global().maybe_inject(q, cancel);
      return opt.run(prep.instance, b, r);
    } catch (const CancelledError&) {
      throw;
    } catch (const DeadlineExceededError&) {
      throw;
    } catch (const std::bad_alloc&) {
      throw;
    } catch (const std::exception& e) {
      throw OptimizerError(q, std::string(opt.name()) + ": " + e.what());
    }
  };

  const bool quantum_mode = budget.wall_clock_s > 0.0 || budget.quanta > 0;
  if (quantum_mode) {
    // Quantum mode: fixed-size iteration quanta race the wall clock and/or
    // count against budget.quanta.  Quantum q always draws from
    // restart_rng(base, q), so the outcome is a pure function of
    // (base_seed, #quanta completed) — reproducible for a fixed budget,
    // thread-count invariant, and resumable from a checkpoint.  At least
    // one quantum always completes (unless resumed past the cap).
    QuantumState st;
    st.base_seed = cfg_.search.base_seed ? cfg_.search.base_seed : rng();
    const std::string& ckpt = cfg_.search.checkpoint_path;
    std::uint64_t identity = 0;
    if (!ckpt.empty()) {
      identity = checkpoint_identity(opt.name(), cfg_.options,
                                     prep.instance.num_blocks(),
                                     budget.iterations);
      if (cfg_.search.resume) load_quantum_checkpoint(ckpt, identity, &st);
    }
    const auto deadline =
        t0 + std::chrono::duration_cast<Clock::duration>(
                 std::chrono::duration<double>(budget.wall_clock_s));
    metaheur::SearchBudget quantum;
    quantum.iterations = budget.iterations;
    quantum.stop = cancel;
    quantum.tt = &tt;
    while (budget.quanta <= 0 || st.quanta < budget.quanta) {
      if (cancel && cancel->expired()) throw DeadlineExceededError(st.quanta);
      std::mt19937_64 qrng =
          metaheur::restart_rng(st.base_seed, static_cast<int>(st.quanta));
      metaheur::BaselineResult r = run_guarded(quantum, qrng, st.quanta);
      st.evaluations += r.evaluations;
      const double cost = metaheur::sp_cost(prep.instance, r.rects);
      if (!st.has_best || cost < st.best_cost) {
        st.has_best = true;
        st.best_cost = cost;
        st.best = std::move(r);
      }
      ++st.quanta;
      if (!ckpt.empty()) write_quantum_checkpoint(ckpt, identity, st);
      if (budget.wall_clock_s > 0.0 && Clock::now() >= deadline) break;
      if (cancel && cancel->cancelled()) break;
    }
    base = std::move(st.best);
    base.evaluations = st.evaluations;
    quanta = st.quanta;
  } else if (cfg_.search.restarts > 1) {
    // Fan the whole search out on the pool; each restart gets its own
    // SplitMix64 stream, so the result is thread-count invariant and a pure
    // function of (base_seed, restarts).  The stop token rides inside the
    // budget: a cancelled/expired restart truncates after its next
    // iteration and returns its best-so-far, so the fan-out drains at
    // iteration latency while every slot still holds a valid result for
    // the deterministic selection.
    metaheur::MultiStartOptions mopt;
    mopt.restarts = cfg_.search.restarts;
    mopt.base_seed = cfg_.search.base_seed ? cfg_.search.base_seed : rng();
    metaheur::SearchBudget eff = budget;
    eff.stop = cancel;
    eff.tt = &tt;
    // The injection point and the firewall sit around the whole fan-out:
    // restarts run on pool threads where the ambient FaultScope is not
    // visible, and an exception escaping any restart aborts the fan-out.
    try {
      FaultInjector::global().maybe_inject(0, cancel);
      base = metaheur::run_multistart(
          prep.instance,
          [&](int, std::mt19937_64& r) {
            return opt.run(prep.instance, eff, r);
          },
          mopt);
    } catch (const CancelledError&) {
      throw;
    } catch (const DeadlineExceededError&) {
      throw;
    } catch (const std::bad_alloc&) {
      throw;
    } catch (const std::exception& e) {
      throw OptimizerError(0, std::string(opt.name()) + ": " + e.what());
    }
  } else {
    metaheur::SearchBudget eff = budget;
    eff.stop = cancel;
    eff.tt = &tt;
    base = run_guarded(eff, rng, 0);
  }
  // An expired watchdog is a hard failure in every mode: the truncated
  // search result is not the deterministic function of the seed the report
  // contract promises, so it is discarded rather than returned.
  if (cancel && cancel->expired()) throw DeadlineExceededError(quanta - 1);
  const long evaluations = base.evaluations;
  auto res =
      back_half(std::move(prep), std::move(base.rects), since(t0), 1e-6);
  res.optimizer = opt.name();
  res.evaluations = evaluations;
  res.quanta = quanta;
  res.tt.hits = tt.hits();
  res.tt.misses = tt.misses();
  res.tt.dropped = tt.dropped();
  res.tt.entries = tt.size();
  return res;
}

PipelineResult FloorplanPipeline::run(const netlist::Netlist& nl,
                                      Method method,
                                      std::mt19937_64& rng) const {
  const std::string name = optimizer_name(method);  // throws for kRgcnRl
  // Reuse the configured options only when they were written for this
  // optimizer; a mismatched map (e.g. SA options driving a GA run through
  // the shim) would otherwise throw on unknown keys.
  metaheur::Options opts;
  if (name == cfg_.optimizer) opts = cfg_.options;
  const auto opt = metaheur::make_optimizer(name, opts);
  return run(nl, *opt, rng, nullptr);
}

}  // namespace afp::core
