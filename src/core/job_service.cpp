#include "core/job_service.hpp"

#include <cmath>
#include <thread>

#include "core/fault.hpp"
#include "metaheur/parallel_search.hpp"
#include "numeric/parallel.hpp"

namespace afp::core {

namespace {

using Clock = std::chrono::steady_clock;

/// Sleeps `seconds` in short slices, returning early (false) when the
/// token is cancelled — backoff must not delay a cancellation.
bool sleep_unless_cancelled(double seconds, const CancelToken* cancel) {
  const auto until =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(seconds));
  while (Clock::now() < until) {
    if (cancel && cancel->stop_requested()) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return true;
}

}  // namespace

const char* to_string(JobStatus s) {
  switch (s) {
    case JobStatus::kQueued: return "queued";
    case JobStatus::kRunning: return "running";
    case JobStatus::kDone: return "done";
    case JobStatus::kCancelled: return "cancelled";
    case JobStatus::kFailed: return "failed";
    case JobStatus::kDeadlineExceeded: return "deadline_exceeded";
  }
  return "?";
}

const char* to_string(JobErrorKind k) {
  switch (k) {
    case JobErrorKind::kNone: return "none";
    case JobErrorKind::kInvalidConfig: return "invalid_config";
    case JobErrorKind::kOptimizerFailure: return "optimizer_failure";
    case JobErrorKind::kDeadlineExceeded: return "deadline_exceeded";
    case JobErrorKind::kCancelled: return "cancelled";
    case JobErrorKind::kResourceExhausted: return "resource_exhausted";
    case JobErrorKind::kInternal: return "internal";
  }
  return "?";
}

bool is_retryable(JobErrorKind k) {
  return k == JobErrorKind::kOptimizerFailure ||
         k == JobErrorKind::kResourceExhausted;
}

std::uint64_t JobService::job_seed(std::uint64_t base_seed,
                                   std::size_t job_id) {
  // Distinct mixing domain from restart_rng (0x7f4a7c15) and replica_rng so
  // a job's internal restart/replica streams never alias its own seed.
  return metaheur::splitmix64(metaheur::splitmix64(base_seed ^
                                                   0x6a09e667f3bcc909ull) +
                              static_cast<std::uint64_t>(job_id));
}

std::uint64_t JobService::spec_identity(const JobSpec& spec) {
  // The block count of the eventual floorplan instance equals the number of
  // recognized structures, which we cannot know without running the front
  // end; the device count is the stable, cheap proxy that still pins the
  // instance.
  return checkpoint_identity(spec.config.optimizer, spec.config.options,
                             spec.netlist.num_devices(),
                             spec.config.search.budget.iterations);
}

std::uint64_t JobService::retry_seed(std::uint64_t seed, int attempt) {
  if (attempt <= 0) return seed;
  // Own mixing domain, distinct from job_seed/restart_rng/replica_rng.
  return metaheur::splitmix64(
      metaheur::splitmix64(seed ^ 0x452821e638d01377ull) +
      static_cast<std::uint64_t>(attempt));
}

double JobService::retry_backoff_s(std::uint64_t seed, int attempt,
                                   const RetryPolicy& policy) {
  if (attempt <= 0 || policy.backoff_s <= 0.0) return 0.0;
  double base = policy.backoff_s *
                std::ldexp(1.0, std::min(attempt - 1, 30));
  base = std::min(base, std::max(0.0, policy.backoff_cap_s));
  const std::uint64_t h = metaheur::splitmix64(
      metaheur::splitmix64(seed ^ 0x9216d5d98979fb1bull) +
      static_cast<std::uint64_t>(attempt));
  const double u =
      static_cast<double>(h >> 11) * (1.0 / 9007199254740992.0);
  return base * (0.5 + 0.5 * u);
}

JobError JobService::validate_result(const PipelineResult& result) {
  auto bad = [](double v) { return !std::isfinite(v); };
  bool broken = bad(result.eval.area) || bad(result.eval.dead_space) ||
                bad(result.eval.hpwl) || bad(result.eval.reward);
  for (const auto& r : result.rects) {
    broken = broken || bad(r.x) || bad(r.y) || bad(r.w) || bad(r.h);
  }
  JobError err;
  if (broken) {
    err.kind = JobErrorKind::kInternal;
    err.message = "non-finite result metrics (degenerate instance?)";
  }
  return err;
}

JobReport JobService::run_job(const JobSpec& spec, std::size_t id,
                              std::uint64_t seed, const CancelToken* cancel,
                              const ProgressFn& progress) {
  JobReport report;
  report.id = id;
  report.name = spec.name.empty() ? spec.netlist.name() : spec.name;
  report.seed = seed;
  const auto t0 = Clock::now();
  auto elapsed = [&] {
    return std::chrono::duration<double>(Clock::now() - t0).count();
  };
  auto notify = [&](JobStatus status, int attempt) {
    if (progress) {
      progress({report.id, report.name, status, elapsed(), attempt});
    }
  };
  report.optimizer = spec.config.optimizer;
  report.search = spec.config.search;
  const RetryPolicy& retry = spec.config.search.retry;
  const int max_attempts = 1 + std::max(0, retry.max_retries);
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    if (attempt > 0) {
      report.error = JobError{};
      report.result = PipelineResult{};
      if (!sleep_unless_cancelled(retry_backoff_s(seed, attempt, retry),
                                  cancel)) {
        break;  // cancelled during backoff: the previous failure stands
      }
    }
    report.attempts = attempt + 1;
    notify(JobStatus::kRunning, attempt);
    // The watchdog rides a *child* of the job's cancel token: one deadline
    // per attempt, measured on the monotonic clock from the attempt's
    // start, armed on private state so it never clobbers a deadline the
    // caller armed on the shared token (a daemon client attaching a
    // timeout to a running job).  The caller's cancel()/deadline still
    // land — children observe the whole ancestor chain.
    CancelToken token = cancel ? cancel->child() : CancelToken{};
    if (spec.config.search.budget.deadline_s > 0.0) {
      token.set_deadline_after(spec.config.search.budget.deadline_s);
    }
    // Ambient fault-injection context for this attempt (inert unless the
    // injector is configured).
    FaultScope fault_scope(id, attempt);
    try {
      // Resolve the full option map (defaults + overrides) up front so even
      // failed jobs report the configuration they ran under.
      report.options =
          metaheur::make_optimizer(spec.config.optimizer, spec.config.options)
              ->options();
      FloorplanPipeline pipe(spec.config);
      std::mt19937_64 rng(retry_seed(seed, attempt));
      report.result = pipe.run(spec.netlist, rng, &token);
      JobError verr = validate_result(report.result);
      if (verr.ok()) {
        report.status = JobStatus::kDone;
        report.error = JobError{};
      } else {
        verr.job_id = id;
        report.status = JobStatus::kFailed;
        report.error = verr;
      }
    } catch (const CancelledError& e) {
      report.status = JobStatus::kCancelled;
      report.error = {JobErrorKind::kCancelled, e.what(), id, -1};
    } catch (const DeadlineExceededError& e) {
      // Hard deadline: partial results are discarded, the state is
      // terminal and non-retryable (a retry would get the same budget).
      report.status = JobStatus::kDeadlineExceeded;
      report.error = {JobErrorKind::kDeadlineExceeded, e.what(), id,
                      e.quantum};
      report.result = PipelineResult{};
    } catch (const OptimizerError& e) {
      report.status = JobStatus::kFailed;
      report.error = {JobErrorKind::kOptimizerFailure, e.what(), id,
                      e.quantum};
    } catch (const std::bad_alloc&) {
      report.status = JobStatus::kFailed;
      report.error = {JobErrorKind::kResourceExhausted,
                      "allocation failure", id, -1};
    } catch (const std::invalid_argument& e) {
      report.status = JobStatus::kFailed;
      report.error = {JobErrorKind::kInvalidConfig, e.what(), id, -1};
    } catch (const std::exception& e) {
      report.status = JobStatus::kFailed;
      report.error = {JobErrorKind::kInternal, e.what(), id, -1};
    }
    if (report.status == JobStatus::kDone ||
        !is_retryable(report.error.kind)) {
      break;
    }
  }
  report.runtime_s = elapsed();
  notify(report.status, report.attempts - 1);
  return report;
}

JobService::JobService(JobServiceOptions opts) : opts_(std::move(opts)) {
  dispatcher_ = std::thread([this] { dispatch_loop(); });
}

JobService::~JobService() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  dispatcher_.join();
}

JobService::Handle JobService::submit(JobSpec spec) {
  Handle handle;
  {
    std::unique_lock<std::mutex> lock(mu_);
    Pending p;
    p.spec = std::move(spec);
    p.id = next_id_++;
    if (opts_.cancel) p.cancel = opts_.cancel->child();
    handle.id = p.id;
    handle.cancel = p.cancel;
    handle.report = p.promise.get_future().share();
    queue_.push_back(std::move(p));
  }
  work_cv_.notify_one();
  return handle;
}

void JobService::wait_all() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

void JobService::dispatch_loop() {
  for (;;) {
    std::vector<Pending> batch;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty() && stop_) return;
      // Drain everything queued so far into one pool fan-out; jobs that
      // arrive while it runs form the next batch.  Seeds depend only on
      // submission order, so batch grouping never changes results.
      batch.reserve(queue_.size());
      while (!queue_.empty()) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
      in_flight_ += batch.size();
    }
    num::parallel_for(
        static_cast<std::int64_t>(batch.size()), 1,
        [&](std::int64_t b0, std::int64_t b1) {
          for (std::int64_t b = b0; b < b1; ++b) {
            Pending& p = batch[static_cast<std::size_t>(b)];
            const std::uint64_t seed =
                p.spec.seed ? p.spec.seed : job_seed(opts_.base_seed, p.id);
            p.promise.set_value(
                run_job(p.spec, p.id, seed, &p.cancel, opts_.on_progress));
          }
        });
    {
      std::unique_lock<std::mutex> lock(mu_);
      in_flight_ -= batch.size();
    }
    idle_cv_.notify_all();
  }
}

std::vector<JobReport> JobService::run_batch(const std::vector<JobSpec>& jobs,
                                             const JobServiceOptions& opts) {
  std::vector<JobReport> reports(jobs.size());
  // Every batch entry gets a real CancelToken (a child of opts.cancel when
  // one is set): the watchdog deadline, batch-wide cancellation and
  // mid-run deadline arming all work exactly as they do on the dispatcher
  // path, instead of being silently dropped by a null token.
  std::vector<CancelToken> tokens;
  tokens.reserve(jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    tokens.push_back(opts.cancel ? opts.cancel->child() : CancelToken{});
  }
  num::parallel_for(
      static_cast<std::int64_t>(jobs.size()), 1,
      [&](std::int64_t b0, std::int64_t b1) {
        for (std::int64_t b = b0; b < b1; ++b) {
          const auto id = static_cast<std::size_t>(b);
          const std::uint64_t seed =
              jobs[id].seed ? jobs[id].seed : job_seed(opts.base_seed, id);
          reports[id] = run_job(jobs[id], id, seed, &tokens[id],
                                opts.on_progress);
        }
      });
  return reports;
}

}  // namespace afp::core
