#include "core/job_service.hpp"

#include "metaheur/parallel_search.hpp"
#include "numeric/parallel.hpp"

namespace afp::core {

namespace {
using Clock = std::chrono::steady_clock;
}

const char* to_string(JobStatus s) {
  switch (s) {
    case JobStatus::kQueued: return "queued";
    case JobStatus::kRunning: return "running";
    case JobStatus::kDone: return "done";
    case JobStatus::kCancelled: return "cancelled";
    case JobStatus::kFailed: return "failed";
  }
  return "?";
}

std::uint64_t JobService::job_seed(std::uint64_t base_seed,
                                   std::size_t job_id) {
  // Distinct mixing domain from restart_rng (0x7f4a7c15) and replica_rng so
  // a job's internal restart/replica streams never alias its own seed.
  return metaheur::splitmix64(metaheur::splitmix64(base_seed ^
                                                   0x6a09e667f3bcc909ull) +
                              static_cast<std::uint64_t>(job_id));
}

JobReport JobService::run_job(const JobSpec& spec, std::size_t id,
                              std::uint64_t seed, const CancelToken* cancel,
                              const ProgressFn& progress) {
  JobReport report;
  report.id = id;
  report.name = spec.name.empty() ? spec.netlist.name() : spec.name;
  report.seed = seed;
  const auto t0 = Clock::now();
  auto elapsed = [&] {
    return std::chrono::duration<double>(Clock::now() - t0).count();
  };
  auto notify = [&](JobStatus status) {
    if (progress) progress({report.id, report.name, status, elapsed()});
  };
  report.optimizer = spec.config.optimizer;
  report.search = spec.config.search;
  notify(JobStatus::kRunning);
  try {
    // Resolve the full option map (defaults + overrides) up front so even
    // failed jobs report the configuration they ran under.
    report.options =
        metaheur::make_optimizer(spec.config.optimizer, spec.config.options)
            ->options();
    FloorplanPipeline pipe(spec.config);
    std::mt19937_64 rng(seed);
    report.result = pipe.run(spec.netlist, rng, cancel);
    report.status = JobStatus::kDone;
  } catch (const CancelledError&) {
    report.status = JobStatus::kCancelled;
  } catch (const std::exception& e) {
    report.status = JobStatus::kFailed;
    report.error = e.what();
  }
  report.runtime_s = elapsed();
  notify(report.status);
  return report;
}

JobService::JobService(JobServiceOptions opts) : opts_(std::move(opts)) {
  dispatcher_ = std::thread([this] { dispatch_loop(); });
}

JobService::~JobService() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  dispatcher_.join();
}

JobService::Handle JobService::submit(JobSpec spec) {
  Handle handle;
  {
    std::unique_lock<std::mutex> lock(mu_);
    Pending p;
    p.spec = std::move(spec);
    p.id = next_id_++;
    handle.id = p.id;
    handle.cancel = p.cancel;
    handle.report = p.promise.get_future().share();
    queue_.push_back(std::move(p));
  }
  work_cv_.notify_one();
  return handle;
}

void JobService::wait_all() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

void JobService::dispatch_loop() {
  for (;;) {
    std::vector<Pending> batch;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty() && stop_) return;
      // Drain everything queued so far into one pool fan-out; jobs that
      // arrive while it runs form the next batch.  Seeds depend only on
      // submission order, so batch grouping never changes results.
      batch.reserve(queue_.size());
      while (!queue_.empty()) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
      in_flight_ += batch.size();
    }
    num::parallel_for(
        static_cast<std::int64_t>(batch.size()), 1,
        [&](std::int64_t b0, std::int64_t b1) {
          for (std::int64_t b = b0; b < b1; ++b) {
            Pending& p = batch[static_cast<std::size_t>(b)];
            p.promise.set_value(run_job(p.spec, p.id,
                                        job_seed(opts_.base_seed, p.id),
                                        &p.cancel, opts_.on_progress));
          }
        });
    {
      std::unique_lock<std::mutex> lock(mu_);
      in_flight_ -= batch.size();
    }
    idle_cv_.notify_all();
  }
}

std::vector<JobReport> JobService::run_batch(const std::vector<JobSpec>& jobs,
                                             const JobServiceOptions& opts) {
  std::vector<JobReport> reports(jobs.size());
  num::parallel_for(
      static_cast<std::int64_t>(jobs.size()), 1,
      [&](std::int64_t b0, std::int64_t b1) {
        for (std::int64_t b = b0; b < b1; ++b) {
          const auto id = static_cast<std::size_t>(b);
          reports[id] = run_job(jobs[id], id, job_seed(opts.base_seed, id),
                                nullptr, opts.on_progress);
        }
      });
  return reports;
}

}  // namespace afp::core
