// End-to-end automatic layout pipeline (paper Fig. 1):
// netlist -> structure recognition -> multi-shape configuration ->
// floorplanning (R-GCN + RL agent, or a metaheuristic baseline) ->
// OARSMT global routing -> procedural layout generation -> DRC/LVS checks.
#pragma once

#include <chrono>

#include "layoutgen/layoutgen.hpp"
#include "metaheur/baselines.hpp"
#include "metaheur/tempering.hpp"
#include "rl/agent.hpp"

namespace afp::core {

enum class Method { kRgcnRl, kSA, kGA, kPSO, kRlSa, kRlSp, kSaBStar, kPT };

std::string to_string(Method m);

struct StageTimings {
  double recognition_s = 0.0;
  double floorplan_s = 0.0;
  double route_s = 0.0;
  double layout_s = 0.0;
  double total() const {
    return recognition_s + floorplan_s + route_s + layout_s;
  }
};

struct PipelineResult {
  structrec::Recognition recognition;
  graphir::CircuitGraph graph;
  floorplan::Instance instance;
  std::vector<geom::Rect> rects;
  floorplan::Evaluation eval;
  route::GlobalRoute route;
  layoutgen::Layout layout;
  layoutgen::DrcReport drc;
  layoutgen::LvsReport lvs;
  StageTimings timings;
};

/// Multi-start / tempering configuration shared by every baseline method:
/// restarts > 1 fans the chosen search out on the thread pool via
/// metaheur::run_multistart and keeps the best result; `pt` holds the
/// replica-exchange budgets used by Method::kPT.
struct SearchConfig {
  int restarts = 1;             ///< > 1: best-of-restarts on the pool
  std::uint64_t base_seed = 0;  ///< 0: drawn from the pipeline rng
  metaheur::PTParams pt{};
};

struct PipelineConfig {
  bool constrained = false;  ///< apply default positional constraints
  env::EnvConfig env{};
  layoutgen::LayoutConfig layout{};
  double hpwl_ref = 0.0;  ///< 0: estimate via short SA
  /// Sampled-episode attempts when floorplanning with the RL agent.
  int rl_attempts = 4;
  // Baseline budgets.
  metaheur::SAParams sa{};
  metaheur::GAParams ga{};
  metaheur::PSOParams pso{};
  metaheur::RLSAParams rlsa{};
  metaheur::RLSPParams rlsp{};
  metaheur::BStarSAParams bstar{};
  SearchConfig search{};
};

class FloorplanPipeline {
 public:
  explicit FloorplanPipeline(PipelineConfig cfg = {}) : cfg_(std::move(cfg)) {}

  /// Front half of the pipeline: recognition, graph, constraints, instance.
  /// Shared by both floorplanning paths.
  struct Prepared {
    structrec::Recognition recognition;
    graphir::CircuitGraph graph;
    floorplan::Instance instance;
    double recognition_s = 0.0;
  };
  Prepared prepare(const netlist::Netlist& nl, std::mt19937_64& rng) const;

  /// Full pipeline with the RL agent.
  PipelineResult run(const netlist::Netlist& nl,
                     const rl::ActorCritic& policy,
                     const rgcn::RewardModel& encoder,
                     std::mt19937_64& rng) const;

  /// Full pipeline with a metaheuristic baseline.
  PipelineResult run(const netlist::Netlist& nl, Method method,
                     std::mt19937_64& rng) const;

  const PipelineConfig& config() const { return cfg_; }

 private:
  PipelineResult back_half(Prepared prep, std::vector<geom::Rect> rects,
                           double floorplan_s, double constraint_tol) const;

  PipelineConfig cfg_;
};

}  // namespace afp::core
