// End-to-end automatic layout pipeline (paper Fig. 1):
// netlist -> structure recognition -> multi-shape configuration ->
// floorplanning (R-GCN + RL agent, or any registered metaheur::Optimizer) ->
// OARSMT global routing -> procedural layout generation -> DRC/LVS checks.
//
// The floorplanner is selected by *data*: PipelineConfig names a registry
// optimizer plus a key=value option map (see metaheur/optimizer.hpp).  The
// legacy closed `Method` enum survives only as a thin source-compat shim.
#pragma once

#include <atomic>
#include <chrono>
#include <memory>

#include "layoutgen/layoutgen.hpp"
#include "metaheur/optimizer.hpp"
#include "rl/agent.hpp"

namespace afp::core {

/// Deprecated closed method enum, kept as a source-compat shim over the
/// optimizer registry; use PipelineConfig::optimizer / run(nl, rng) instead.
enum class Method { kRgcnRl, kSA, kGA, kPSO, kRlSa, kRlSp, kSaBStar, kPT };

std::string to_string(Method m);

/// Registry key for a (baseline) Method; throws std::invalid_argument for
/// Method::kRgcnRl, which has no metaheuristic counterpart.
std::string optimizer_name(Method m);

/// Cooperative cancellation flag shared between a controller and a running
/// job.  Copies observe the same flag; cancel() is sticky.  The token now
/// lives in metaheur (metaheur/stop.hpp) so optimizer inner loops can poll
/// it directly: cancellation latency is bounded by one iteration, and an
/// armed deadline (set_deadline_after) turns the same token into the
/// watchdog.
using CancelToken = metaheur::CancelToken;

/// Thrown when a run is cancelled before it produced any result.
struct CancelledError : std::runtime_error {
  CancelledError() : std::runtime_error("run cancelled") {}
};

/// Thrown when the job's watchdog deadline expires; `quantum` is the search
/// quantum that was running (or about to run; -1 = before the search).
/// A deadline overrun is a hard failure: partial results are discarded.
struct DeadlineExceededError : std::runtime_error {
  explicit DeadlineExceededError(long quantum_index)
      : std::runtime_error("job deadline exceeded at quantum " +
                           std::to_string(quantum_index)),
        quantum(quantum_index) {}
  long quantum;
};

/// Exception firewall record: any non-signalling exception escaping an
/// optimizer invocation is wrapped so the failing quantum is attributed.
struct OptimizerError : std::runtime_error {
  OptimizerError(long quantum_index, const std::string& what)
      : std::runtime_error(what), quantum(quantum_index) {}
  long quantum;
};

struct StageTimings {
  double recognition_s = 0.0;
  double floorplan_s = 0.0;
  double route_s = 0.0;
  double layout_s = 0.0;
  double total() const {
    return recognition_s + floorplan_s + route_s + layout_s;
  }
};

struct PipelineResult {
  structrec::Recognition recognition;
  graphir::CircuitGraph graph;
  floorplan::Instance instance;
  std::vector<geom::Rect> rects;
  floorplan::Evaluation eval;
  route::GlobalRoute route;
  layoutgen::Layout layout;
  layoutgen::DrcReport drc;
  layoutgen::LvsReport lvs;
  StageTimings timings;
  /// Search provenance: registry key ("sa", "pt", ...; "rgcn-rl" for the
  /// agent path), packed-and-scored candidates, and wall-clock quanta run
  /// (1 unless a time budget raced several).
  std::string optimizer;
  long evaluations = 0;
  long quanta = 1;
  /// Transposition-cache counters for the job-scoped cache the search ran
  /// against (all zero on the RL path, which has no cache).  hits/misses
  /// split is thread-schedule dependent when restarts or replicas share the
  /// cache, so reports treat this object like `timings`: informational, and
  /// stripped before bitwise comparisons.
  struct TtStats {
    long hits = 0;
    long misses = 0;
    long dropped = 0;  ///< inserts dropped because a stripe was full
    long entries = 0;  ///< resident entries when the search finished
  };
  TtStats tt;
};

/// Bounded retry for retryable failures (optimizer_failure,
/// resource_exhausted).  Backoff before retry k is capped-exponential with
/// a jitter factor drawn from the job's SplitMix64 stream, so the schedule
/// — like the report — is a pure function of the job seed.
struct RetryPolicy {
  int max_retries = 0;         ///< extra attempts after the first failure
  double backoff_s = 0.01;     ///< base backoff before the first retry
  double backoff_cap_s = 1.0;  ///< upper bound on any single backoff
};

/// Multi-start / budget configuration shared by every registry optimizer.
struct SearchConfig {
  int restarts = 1;             ///< > 1: best-of-restarts on the pool
  std::uint64_t base_seed = 0;  ///< 0: drawn from the pipeline rng
  /// Budget overrides.  budget.iterations > 0 overrides the optimizer's
  /// primary knob; budget.wall_clock_s > 0 or budget.quanta > 0 switches to
  /// the quantum mode: quanta of the configured iteration budget race the
  /// clock and/or count against the cap (seeded restart_rng(base_seed, q)),
  /// the best quantum wins, and the result is a pure function of
  /// (base_seed, #quanta completed).  budget.deadline_s arms the watchdog.
  /// Quantum mode takes precedence over `restarts`.
  metaheur::SearchBudget budget{};
  RetryPolicy retry{};
  /// Quantum-mode checkpoint file ("" = off): per-quantum search state
  /// (incumbent best, quantum index, evaluation count, base seed) written
  /// atomically after every completed quantum through numeric/serialize's
  /// exact word format.
  std::string checkpoint_path;
  /// Load checkpoint_path before searching and continue from the recorded
  /// quantum; a resumed run is bitwise identical to an uninterrupted one.
  /// A missing checkpoint file degrades to a fresh run (crash-before-
  /// first-quantum semantics).
  bool resume = false;
};

/// Identity hash of a search configuration: the optimizer, its options,
/// the instance size and the per-quantum iteration budget — everything the
/// quantum stream depends on besides the base seed.  Guards checkpoint
/// resume against mismatched searches and names orphaned jobs in the afpd
/// crash-recovery journal.
std::uint64_t checkpoint_identity(const std::string& optimizer,
                                  const metaheur::Options& options,
                                  int num_blocks, int iterations);

struct PipelineConfig {
  bool constrained = false;  ///< apply default positional constraints
  env::EnvConfig env{};
  layoutgen::LayoutConfig layout{};
  double hpwl_ref = 0.0;  ///< 0: estimate via short SA
  /// Sampled-episode attempts when floorplanning with the RL agent.
  int rl_attempts = 4;
  /// Registry optimizer and its key=value options (metaheur/optimizer.hpp).
  std::string optimizer = "sa";
  metaheur::Options options{};
  SearchConfig search{};
  /// Scenario constraint overlay (src/ingest): name-keyed symmetry /
  /// matching / keep-out / pre-placement constraints resolved against the
  /// recognized block graph in prepare() and merged with the defaults when
  /// `constrained` is also set.  Also carries the scenario's target aspect
  /// and extra-whitespace canvas scaling.  Empty = no effect.
  graphir::NamedConstraintSpec scenario_constraints{};
};

class FloorplanPipeline {
 public:
  explicit FloorplanPipeline(PipelineConfig cfg = {}) : cfg_(std::move(cfg)) {}

  /// Front half of the pipeline: recognition, graph, constraints, instance.
  /// Shared by both floorplanning paths.
  struct Prepared {
    structrec::Recognition recognition;
    graphir::CircuitGraph graph;
    floorplan::Instance instance;
    double recognition_s = 0.0;
  };
  Prepared prepare(const netlist::Netlist& nl, std::mt19937_64& rng) const;

  /// Full pipeline with the RL agent.
  PipelineResult run(const netlist::Netlist& nl,
                     const rl::ActorCritic& policy,
                     const rgcn::RewardModel& encoder,
                     std::mt19937_64& rng) const;

  /// Full pipeline with the configured registry optimizer
  /// (cfg.optimizer/cfg.options).  Honors cfg.search: multi-start fan-out,
  /// budget overrides, the quantum race, checkpoint-resume and the
  /// watchdog.  `cancel` (optional) is threaded into the optimizer inner
  /// loops (latency: one iteration); a cancellation that fires before any
  /// result exists throws CancelledError, an expired deadline throws
  /// DeadlineExceededError, and any exception escaping an optimizer
  /// invocation is rethrown as OptimizerError with the failing quantum.
  PipelineResult run(const netlist::Netlist& nl, std::mt19937_64& rng,
                     const CancelToken* cancel = nullptr) const;

  /// Same, with a caller-constructed optimizer (cfg.optimizer ignored).
  PipelineResult run(const netlist::Netlist& nl,
                     const metaheur::Optimizer& opt, std::mt19937_64& rng,
                     const CancelToken* cancel = nullptr) const;

  /// Deprecated shim over the registry: maps the enum to its registry name
  /// (optimizer_name) and reuses cfg.options when they were written for the
  /// same optimizer, defaults otherwise.  Bitwise-identical to the historic
  /// enum path; throws std::invalid_argument for Method::kRgcnRl.
  PipelineResult run(const netlist::Netlist& nl, Method method,
                     std::mt19937_64& rng) const;

  const PipelineConfig& config() const { return cfg_; }

 private:
  PipelineResult back_half(Prepared prep, std::vector<geom::Rect> rects,
                           double floorplan_s, double constraint_tol) const;

  PipelineConfig cfg_;
};

}  // namespace afp::core
