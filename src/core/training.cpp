#include "core/training.hpp"

#include "numeric/parallel.hpp"

namespace afp::core {

TrainOptions TrainOptions::fast(unsigned seed) {
  TrainOptions o;
  o.seed = seed;
  o.rgcn_samples_per_circuit = 1;
  o.rgcn_epochs = 2;
  o.policy = rl::PolicyConfig::fast();
  o.ppo.n_envs = 4;
  o.ppo.n_steps = 16;
  o.ppo.minibatch = 32;
  o.hcl.episodes_per_circuit = 8;
  o.hcl.circuits = {"ota_small", "bias_small", "ota1"};
  return o;
}

TrainOptions TrainOptions::paper(unsigned seed) {
  TrainOptions o;
  o.seed = seed;
  o.rgcn_samples_per_circuit = 1964;  // ~21600 samples over 11 circuits
  o.rgcn_epochs = 50;
  o.policy = rl::PolicyConfig::paper();
  o.ppo.n_envs = 16;
  o.ppo.n_steps = 128;
  o.hcl.episodes_per_circuit = 4096;
  return o;
}

TrainedAgent train_agent(const TrainOptions& opt) {
  if (opt.num_threads > 0) num::set_num_threads(opt.num_threads);
  std::mt19937_64 rng(opt.seed);
  TrainedAgent agent;

  // Stage 1: R-GCN reward-model pre-training (Section IV-C).
  agent.encoder = std::make_shared<rgcn::RewardModel>(rng);
  const auto dataset =
      rgcn::generate_dataset(opt.rgcn_samples_per_circuit, rng);
  agent.rgcn_history = rgcn::train_reward_model(
      *agent.encoder, dataset, opt.rgcn_epochs, opt.rgcn_lr, rng);

  // Stage 2: masked PPO with the HCL schedule (Section IV-D5).
  agent.policy = std::make_shared<rl::ActorCritic>(opt.policy, rng);
  rl::HclScheduler scheduler(opt.hcl, *agent.encoder, rng);

  std::vector<rl::TaskContext> init;
  init.reserve(static_cast<std::size_t>(opt.ppo.n_envs));
  for (int i = 0; i < opt.ppo.n_envs; ++i) {
    init.push_back(scheduler.next_task(rng));
  }
  rl::PPOTrainer trainer(*agent.policy, std::move(init), opt.ppo, opt.env);
  trainer.next_task = [&scheduler, &rng](int) {
    return std::optional<rl::TaskContext>(scheduler.next_task(rng));
  };
  while (!scheduler.finished()) {
    agent.rl_history.push_back(trainer.iterate(rng));
    agent.stage_history.push_back(scheduler.stage());
  }
  return agent;
}

}  // namespace afp::core
