#include "core/fault.hpp"

#include <chrono>
#include <cstdlib>
#include <thread>

#include "core/pipeline.hpp"
#include "metaheur/optimizer.hpp"
#include "metaheur/parallel_search.hpp"

namespace afp::core {

namespace {

thread_local std::size_t t_job = FaultScope::kNoJob;
thread_local int t_attempt = 0;

bool parse_kind(const std::string& s, FaultKind* out) {
  if (s == "throw") *out = FaultKind::kThrow;
  else if (s == "stall") *out = FaultKind::kStall;
  else if (s == "alloc") *out = FaultKind::kAlloc;
  else return false;
  return true;
}

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::size_t from = 0;
  while (from <= s.size()) {
    const std::size_t to = s.find(sep, from);
    if (to == std::string::npos) {
      out.push_back(s.substr(from));
      break;
    }
    out.push_back(s.substr(from, to - from));
    from = to + 1;
  }
  return out;
}

[[noreturn]] void bad_spec(const std::string& clause, const char* why) {
  throw std::invalid_argument("AFP_FAULT: bad clause '" + clause + "': " +
                              why);
}

}  // namespace

const char* to_string(FaultKind k) {
  switch (k) {
    case FaultKind::kThrow: return "throw";
    case FaultKind::kStall: return "stall";
    case FaultKind::kAlloc: return "alloc";
  }
  return "?";
}

FaultScope::FaultScope(std::size_t job_id, int attempt)
    : prev_job_(t_job), prev_attempt_(t_attempt) {
  t_job = job_id;
  t_attempt = attempt;
}

FaultScope::~FaultScope() {
  t_job = prev_job_;
  t_attempt = prev_attempt_;
}

std::size_t FaultScope::job() { return t_job; }
int FaultScope::attempt() { return t_attempt; }

FaultInjector& FaultInjector::global() {
  static FaultInjector injector;
  return injector;
}

void FaultInjector::configure(const std::string& spec) {
  auto cfg = std::make_shared<Config>();
  for (const std::string& clause : split(spec, ';')) {
    if (clause.empty()) continue;
    const std::size_t eq = clause.find('=');
    const std::size_t at = clause.find('@');
    if (at != std::string::npos && (eq == std::string::npos || at < eq)) {
      // Explicit site: <kind>@<job>:<quantum>.
      Site site{};
      if (!parse_kind(clause.substr(0, at), &site.kind)) {
        bad_spec(clause, "unknown kind (throw|stall|alloc)");
      }
      const std::string where = clause.substr(at + 1);
      const std::size_t colon = where.find(':');
      if (colon == std::string::npos) bad_spec(clause, "expected job:quantum");
      std::uint64_t job = 0;
      long long quantum = 0;
      if (!metaheur::parse_strict_uint(where.substr(0, colon), &job) ||
          !metaheur::parse_strict_int(where.substr(colon + 1), &quantum) ||
          quantum < 0) {
        bad_spec(clause, "job/quantum must be non-negative integers");
      }
      site.job = static_cast<std::size_t>(job);
      site.quantum = static_cast<long>(quantum);
      cfg->sites.push_back(site);
      continue;
    }
    if (eq == std::string::npos) bad_spec(clause, "expected key=value");
    const std::string key = clause.substr(0, eq);
    const std::string value = clause.substr(eq + 1);
    if (key == "p") {
      if (!metaheur::parse_strict_double(value, &cfg->p) || cfg->p < 0.0 ||
          cfg->p > 1.0) {
        bad_spec(clause, "p must be in [0, 1]");
      }
    } else if (key == "seed") {
      if (!metaheur::parse_strict_uint(value, &cfg->seed)) {
        bad_spec(clause, "seed must be a u64");
      }
    } else if (key == "kinds") {
      cfg->kinds.clear();
      for (const std::string& k : split(value, ',')) {
        FaultKind kind;
        if (!parse_kind(k, &kind)) {
          bad_spec(clause, "unknown kind (throw|stall|alloc)");
        }
        cfg->kinds.push_back(kind);
      }
      if (cfg->kinds.empty()) bad_spec(clause, "kinds must be non-empty");
    } else if (key == "stall_ms") {
      long long ms = 0;
      if (!metaheur::parse_strict_int(value, &ms) || ms < 0 || ms > 60000) {
        bad_spec(clause, "stall_ms must be in [0, 60000]");
      }
      cfg->stall_ms = static_cast<int>(ms);
    } else {
      bad_spec(clause, "unknown key (p|seed|kinds|stall_ms)");
    }
  }
  if (cfg->p > 0.0 && cfg->kinds.empty()) {
    cfg->kinds = {FaultKind::kThrow, FaultKind::kStall, FaultKind::kAlloc};
  }
  std::lock_guard<std::mutex> lock(mu_);
  env_checked_ = true;  // an explicit configure overrides the environment
  config_ = cfg->active() ? std::move(cfg) : nullptr;
}

void FaultInjector::ensure_env_loaded() const {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (env_checked_) return;
  }
  const char* env = std::getenv("AFP_FAULT");
  // configure() sets env_checked_; a malformed AFP_FAULT throws here and is
  // classified invalid_config by the job that tripped the first load.
  const_cast<FaultInjector*>(this)->configure(env ? env : "");
}

std::shared_ptr<const FaultInjector::Config> FaultInjector::snapshot() const {
  ensure_env_loaded();
  std::lock_guard<std::mutex> lock(mu_);
  return config_;
}

bool FaultInjector::enabled() const { return snapshot() != nullptr; }

std::optional<FaultKind> FaultInjector::planned(std::size_t job, long quantum,
                                                int attempt) const {
  const auto cfg = snapshot();
  if (!cfg) return std::nullopt;
  for (const Site& s : cfg->sites) {
    // Explicit sites fire on the first attempt only, so a retry recovers.
    if (attempt == 0 && s.job == job && s.quantum == quantum) return s.kind;
  }
  if (cfg->p > 0.0) {
    // Decision hash: seed, job, quantum and attempt each get their own mix
    // so the stream is independent of every search RNG domain.
    std::uint64_t h = metaheur::splitmix64(cfg->seed ^ 0xfa017755c0debull);
    h = metaheur::splitmix64(h + static_cast<std::uint64_t>(job));
    h = metaheur::splitmix64(h ^ (static_cast<std::uint64_t>(quantum) *
                                  0x9e3779b97f4a7c15ull));
    h = metaheur::splitmix64(h + static_cast<std::uint64_t>(attempt));
    const double u =
        static_cast<double>(h >> 11) * (1.0 / 9007199254740992.0);
    if (u < cfg->p) {
      const std::uint64_t pick = metaheur::splitmix64(h);
      return cfg->kinds[static_cast<std::size_t>(
          pick % cfg->kinds.size())];
    }
  }
  return std::nullopt;
}

void FaultInjector::maybe_inject(long quantum,
                                 const metaheur::CancelToken* stop) const {
  const std::size_t job = FaultScope::job();
  if (job == FaultScope::kNoJob) return;
  const auto cfg = snapshot();
  if (!cfg) return;
  const auto kind = planned(job, quantum, FaultScope::attempt());
  if (!kind) return;
  switch (*kind) {
    case FaultKind::kThrow:
      throw FaultError("injected fault: job " + std::to_string(job) +
                       " quantum " + std::to_string(quantum));
    case FaultKind::kAlloc:
      throw std::bad_alloc();
    case FaultKind::kStall: {
      // Bounded stall, sliced so cancellation and the watchdog deadline
      // keep their latency guarantees even against a "stuck" quantum.
      const auto t0 = std::chrono::steady_clock::now();
      const auto until = t0 + std::chrono::milliseconds(cfg->stall_ms);
      while (std::chrono::steady_clock::now() < until) {
        if (stop != nullptr) {
          if (stop->cancelled()) throw CancelledError();
          if (stop->expired()) throw DeadlineExceededError(quantum);
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      return;
    }
  }
}

}  // namespace afp::core
