// Training orchestration: R-GCN pre-training followed by HCL PPO training
// of the floorplanning agent (Sections IV-C, IV-D5, V-A).
//
// The paper trains 4096 episodes per circuit for ~12.7 GPU-hours; the
// CPU-scale presets here shrink episode counts while preserving the
// schedule's structure, and every knob can be restored to paper scale.
#pragma once

#include <memory>

#include "rl/curriculum.hpp"
#include "rl/ppo.hpp"

namespace afp::core {

struct TrainOptions {
  unsigned seed = 1;
  /// Thread-pool size for all numeric kernels and env stepping; 0 keeps
  /// the ambient setting (AFP_NUM_THREADS or hardware concurrency).
  /// Results are identical for any value (see numeric/parallel.hpp).
  int num_threads = 0;
  // R-GCN pre-training.
  int rgcn_samples_per_circuit = 2;
  int rgcn_epochs = 4;
  float rgcn_lr = 1e-3f;
  // RL training.
  rl::PolicyConfig policy = rl::PolicyConfig::fast();
  rl::PPOConfig ppo{};
  rl::HclConfig hcl{};
  env::EnvConfig env{};

  /// CPU-budget preset used by tests / quick benches.
  static TrainOptions fast(unsigned seed = 1);
  /// Paper-scale preset (Section V-A): 16 envs, 4096 episodes/circuit,
  /// full-width networks.  Hours of CPU time — intended for offline runs.
  static TrainOptions paper(unsigned seed = 1);
};

struct TrainedAgent {
  std::shared_ptr<rgcn::RewardModel> encoder;
  std::shared_ptr<rl::ActorCritic> policy;
  std::vector<rgcn::TrainStats> rgcn_history;
  std::vector<rl::IterationStats> rl_history;
  /// Curriculum stage at each RL iteration (for Fig. 6 annotations).
  std::vector<int> stage_history;
};

/// Full training run: dataset generation, R-GCN pre-training, HCL PPO.
TrainedAgent train_agent(const TrainOptions& opt);

}  // namespace afp::core
