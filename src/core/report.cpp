#include "core/report.hpp"

#include <cmath>
#include <cstdio>
#include <sstream>

namespace afp::core {

namespace {

std::string num(double v) {
  // JSON has no inf/nan literals; a non-finite metric (degenerate
  // instance) becomes null — never a bare `nan` token that breaks parsers,
  // and never a silently-wrong 0.  JobService::validate_result additionally
  // flags such results as a kInternal JobError.
  if (!std::isfinite(v)) return "null";
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

std::string error_json(const JobError& err) {
  std::ostringstream os;
  os << "{\"kind\": \"" << to_string(err.kind) << "\", \"message\": \""
     << json_escape(err.message) << "\", \"quantum\": " << err.quantum << "}";
  return os.str();
}

std::string options_json(const metaheur::Options& options) {
  std::ostringstream os;
  os << "{";
  bool first = true;
  for (const auto& [key, value] : options) {
    os << (first ? "" : ", ") << "\"" << json_escape(key) << "\": \""
       << json_escape(value) << "\"";
    first = false;
  }
  os << "}";
  return os.str();
}

}  // namespace

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string report_json(const PipelineResult& res, const std::string& circuit,
                        const std::string& optimizer,
                        const metaheur::Options& options,
                        const SearchConfig& search, std::uint64_t seed) {
  std::ostringstream os;
  os << "{\n";
  os << "  \"schema_version\": 1,\n";
  os << "  \"circuit\": \"" << json_escape(circuit) << "\",\n";
  os << "  \"optimizer\": \"" << json_escape(optimizer) << "\",\n";
  os << "  \"options\": " << options_json(options) << ",\n";
  os << "  \"seed\": " << seed << ",\n";
  os << "  \"search\": {\"restarts\": " << search.restarts
     << ", \"base_seed\": " << search.base_seed
     << ", \"iterations\": " << search.budget.iterations
     << ", \"wall_clock_s\": " << num(search.budget.wall_clock_s)
     << ", \"deadline_s\": " << num(search.budget.deadline_s)
     << ", \"quanta\": " << search.budget.quanta
     << ", \"max_retries\": " << search.retry.max_retries << "},\n";
  os << "  \"evaluations\": " << res.evaluations << ",\n";
  os << "  \"quanta\": " << res.quanta << ",\n";
  // One line, like "timings": the hit/miss split depends on the thread
  // schedule when restarts/replicas share the cache, so bitwise comparisons
  // strip this object the same way they strip timings.
  os << "  \"tt_cache\": {\"hits\": " << res.tt.hits
     << ", \"misses\": " << res.tt.misses << ", \"dropped\": " << res.tt.dropped
     << ", \"entries\": " << res.tt.entries << "},\n";
  os << "  \"cost\": " << num(metaheur::sp_cost(res.instance, res.rects))
     << ",\n";
  os << "  \"eval\": {\"area\": " << num(res.eval.area)
     << ", \"dead_space\": " << num(res.eval.dead_space)
     << ", \"hpwl\": " << num(res.eval.hpwl)
     << ", \"reward\": " << num(res.eval.reward) << ", \"constraints_ok\": "
     << (res.eval.constraints_ok ? "true" : "false")
     << ", \"constraint_violations\": " << res.eval.constraint_violations
     << ", \"constraint_items\": " << res.eval.constraint_items << "},\n";
  os << "  \"route\": {\"wirelength\": " << num(res.route.total_wirelength)
     << ", \"failed_nets\": " << res.route.failed_nets << "},\n";
  os << "  \"layout\": {\"wires\": " << res.layout.wires.size()
     << ", \"vias\": " << res.layout.vias.size() << ", \"drc_clean\": "
     << (res.drc.clean() ? "true" : "false") << ", \"lvs_clean\": "
     << (res.lvs.clean() ? "true" : "false") << "},\n";
  os << "  \"timings\": {\"recognition_s\": " << num(res.timings.recognition_s)
     << ", \"floorplan_s\": " << num(res.timings.floorplan_s)
     << ", \"route_s\": " << num(res.timings.route_s)
     << ", \"layout_s\": " << num(res.timings.layout_s) << "},\n";
  os << "  \"rects\": [";
  for (std::size_t i = 0; i < res.rects.size(); ++i) {
    const auto& r = res.rects[i];
    os << (i ? ", " : "") << "[" << num(r.x) << ", " << num(r.y) << ", "
       << num(r.w) << ", " << num(r.h) << "]";
  }
  os << "]\n";
  os << "}";
  return os.str();
}

std::string job_report_json(const JobReport& job) {
  std::ostringstream os;
  os << "{\"name\": \"" << json_escape(job.name) << "\", \"status\": \""
     << to_string(job.status) << "\", \"seed\": " << job.seed
     << ", \"runtime_s\": " << num(job.runtime_s)
     << ", \"attempts\": " << job.attempts << ", \"error\": "
     << (job.error.ok() ? "null" : error_json(job.error)) << ", \"report\": ";
  if (job.status == JobStatus::kDone) {
    // Nested single-run report; re-indentation is cosmetic only, so the
    // inner newlines are kept as-is.
    os << report_json(job.result, job.name, job.optimizer, job.options,
                      job.search, job.seed);
  } else {
    os << "null";
  }
  os << "}";
  return os.str();
}

std::string batch_report_json(const std::vector<JobReport>& reports,
                              std::uint64_t base_seed, double time_budget_s,
                              int threads) {
  std::ostringstream os;
  os << "{\n";
  os << "  \"schema_version\": 1,\n";
  os << "  \"batch\": {\"jobs\": " << reports.size()
     << ", \"base_seed\": " << base_seed
     << ", \"time_budget_s\": " << num(time_budget_s)
     << ", \"threads\": " << threads << "},\n";
  os << "  \"jobs\": [\n";
  for (std::size_t i = 0; i < reports.size(); ++i) {
    os << "    " << job_report_json(reports[i])
       << (i + 1 < reports.size() ? "," : "") << "\n";
  }
  os << "  ]\n";
  os << "}";
  return os.str();
}

}  // namespace afp::core
