// Deterministic fault injection at quantum boundaries, for hardening tests.
//
// The pipeline calls FaultInjector::global().maybe_inject(q, stop) right
// before running search quantum q of the ambient job (set by JobService via
// FaultScope).  When a fault is planned for (job, quantum, attempt) the
// injector fires one of three kinds:
//
//   throw  — throws FaultError (classified optimizer_failure, retryable),
//   alloc  — throws std::bad_alloc (classified resource_exhausted),
//   stall  — sleeps in short slices, honoring cancellation and the watchdog
//            deadline, so a stuck quantum exercises the deadline path
//            without ever outliving the job's budget.
//
// Faults are configured from the AFP_FAULT environment variable (parsed on
// first use) or programmatically via configure().  The spec is a ';'-joined
// list of clauses:
//
//   <kind>@<job>:<quantum>   explicit site, fires on attempt 0 only so a
//                            retried job recovers (kind: throw|stall|alloc)
//   p=<rate>                 probabilistic mode: per-(job, quantum, attempt)
//                            fault probability in [0, 1]
//   seed=<u64>               probabilistic decision stream seed
//   kinds=<k1,k2,...>        kinds the probabilistic mode draws from
//   stall_ms=<int>           stall duration (default 25 ms)
//
// Every decision is a pure function of (config, job, quantum, attempt) —
// SplitMix64-hashed, never clock- or thread-dependent — so an injected run
// is reproducible and thread-count invariant.  Outside a job scope the
// injector is inert, and an empty spec disables it entirely (the default:
// zero overhead beyond one relaxed atomic load).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "metaheur/stop.hpp"

namespace afp::core {

/// The injected "optimizer bug": an ordinary exception the firewall must
/// contain and classify like any other optimizer failure.
struct FaultError : std::runtime_error {
  explicit FaultError(const std::string& what) : std::runtime_error(what) {}
};

enum class FaultKind { kThrow, kStall, kAlloc };

const char* to_string(FaultKind k);

/// RAII ambient job context (thread-local).  JobService::run_job enters a
/// scope per attempt; nested scopes restore the outer one on exit.
class FaultScope {
 public:
  FaultScope(std::size_t job_id, int attempt);
  ~FaultScope();
  FaultScope(const FaultScope&) = delete;
  FaultScope& operator=(const FaultScope&) = delete;

  static constexpr std::size_t kNoJob = ~std::size_t{0};
  /// Current thread's job id (kNoJob outside any scope) and attempt.
  static std::size_t job();
  static int attempt();

 private:
  std::size_t prev_job_;
  int prev_attempt_;
};

class FaultInjector {
 public:
  static FaultInjector& global();

  /// Replaces the active spec ("" disables injection).  Throws
  /// std::invalid_argument on a malformed spec.  Thread-safe; takes effect
  /// for quanta that start after the call.
  void configure(const std::string& spec);

  /// True when any fault clause is active.
  bool enabled() const;

  /// The fault planned for (job, quantum, attempt), if any — a pure
  /// function of the active config, usable by tests to predict which jobs
  /// of a batch run clean.
  std::optional<FaultKind> planned(std::size_t job, long quantum,
                                   int attempt) const;

  /// Fires the fault planned for the ambient FaultScope at `quantum`
  /// (no-op when disabled or outside a job).  `stop` bounds a stall.
  void maybe_inject(long quantum, const metaheur::CancelToken* stop) const;

 private:
  struct Site {
    FaultKind kind;
    std::size_t job;
    long quantum;
  };
  struct Config {
    std::vector<Site> sites;
    double p = 0.0;
    std::uint64_t seed = 0;
    std::vector<FaultKind> kinds;
    int stall_ms = 25;
    bool active() const { return !sites.empty() || p > 0.0; }
  };

  FaultInjector() = default;
  std::shared_ptr<const Config> snapshot() const;
  void ensure_env_loaded() const;

  mutable std::mutex mu_;
  mutable std::shared_ptr<const Config> config_;
  mutable bool env_checked_ = false;
};

}  // namespace afp::core
