// Heterogeneous circuit-graph intermediate representation (paper Fig. 2).
//
// Nodes are functional blocks (structure-recognition output); edges carry
// one of five relations: netlist connectivity, horizontal/vertical
// alignment, horizontal/vertical symmetry.  Node features follow
// Section IV-C: block area, stripe width, terminal routing direction, pin
// count, and a 28-dim one-hot of the functional structure type.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "geom/geom.hpp"
#include "netlist/netlist.hpp"
#include "nn/rgcn_layer.hpp"
#include "numeric/tensor.hpp"
#include "structrec/structrec.hpp"

namespace afp::graphir {

/// Edge relations; order defines the relation index used by the R-GCN.
enum class Relation : int {
  kConnectivity = 0,
  kHorizontalAlign,
  kVerticalAlign,
  kHorizontalSymmetry,
  kVerticalSymmetry,
};
constexpr int kNumRelations = 5;

/// Node feature layout: [area, stripe_width, pin_count,
/// routing_dir one-hot(4), structure one-hot(28)] = 35 dims.
constexpr int kNodeFeatureDim = 3 + 4 + structrec::kNumStructureTypes;

/// Positional constraints over blocks.  Axes are floorplan-relative: a
/// "vertical" symmetry mirrors across a vertical line (x = const).
struct ConstraintSpec {
  struct SymPair {
    int a = -1;
    int b = -1;
    bool vertical = true;  ///< mirror across a vertical axis
  };
  struct SelfSym {
    int block = -1;
    bool vertical = true;  ///< block centered on a vertical axis
  };
  struct AlignGroup {
    std::vector<int> blocks;
    bool horizontal = true;  ///< align bottom edges in a row (else left edges)
  };
  /// Matching group: every member must take the same footprint (equal width
  /// AND height), the layout analog of device matching.
  struct MatchGroup {
    std::vector<int> blocks;
  };
  /// Keep-out region: no block rectangle may overlap `region` (canvas
  /// coordinates, half-open like geom::Rect).
  struct KeepOut {
    geom::Rect region;
  };
  /// Pre-placed block: the lower-left corner is pinned at (x, y).
  struct PrePlaced {
    int block = -1;
    double x = 0.0;
    double y = 0.0;
  };

  std::vector<SymPair> sym_pairs;
  std::vector<SelfSym> self_syms;
  std::vector<AlignGroup> align_groups;
  std::vector<MatchGroup> match_groups;
  std::vector<KeepOut> keep_outs;
  std::vector<PrePlaced> preplaced;

  bool empty() const {
    return sym_pairs.empty() && self_syms.empty() && align_groups.empty() &&
           match_groups.empty() && keep_outs.empty() && preplaced.empty();
  }
};

class CircuitGraph;

/// Constraint overlay keyed by block NAME rather than node index — the form
/// scenario generators and deck sidecars speak, resolved against a built
/// graph (whose node order is a recognition artifact the author of a
/// scenario cannot know).  `resolve` maps names to indices and throws
/// std::invalid_argument on an unknown block.
struct NamedConstraintSpec {
  struct SymPair {
    std::string a, b;
    bool vertical = true;
  };
  struct AlignGroup {
    std::vector<std::string> blocks;
    bool horizontal = true;
  };
  struct MatchGroup {
    std::vector<std::string> blocks;
  };
  struct PrePlaced {
    std::string block;
    double x = 0.0;
    double y = 0.0;
  };

  std::vector<SymPair> sym_pairs;
  std::vector<AlignGroup> align_groups;
  std::vector<MatchGroup> match_groups;
  std::vector<ConstraintSpec::KeepOut> keep_outs;
  std::vector<PrePlaced> preplaced;
  /// Optional fixed-outline aspect target for the instance (R*).
  std::optional<double> target_aspect;
  /// Extra whitespace factor (>= 0): scales the canvas side by
  /// sqrt(1 + extra_whitespace) so sweeps can study loose vs tight outlines.
  double extra_whitespace = 0.0;

  bool empty() const {
    return sym_pairs.empty() && align_groups.empty() && match_groups.empty() &&
           keep_outs.empty() && preplaced.empty() && !target_aspect &&
           extra_whitespace == 0.0;
  }
};

/// Resolves a name-keyed overlay against graph `g` (block names are the
/// structure-recognition names).  Throws std::invalid_argument naming the
/// first unknown block.
ConstraintSpec resolve(const NamedConstraintSpec& named, const CircuitGraph& g);

/// A block-level net: the blocks it connects (>= 2, non-supply).
struct BlockNet {
  std::string name;
  std::vector<int> blocks;
};

struct Node {
  std::string name;
  structrec::StructureType type = structrec::StructureType::kUnknown;
  double area_um2 = 0.0;
  double stripe_width_um = 0.0;
  int pin_count = 0;
  int routing_direction = 0;
};

class CircuitGraph {
 public:
  CircuitGraph() = default;

  std::string name;
  std::vector<Node> nodes;
  /// edges[relation] = list of undirected (u, v) pairs.
  std::vector<std::vector<std::pair<int, int>>> edges =
      std::vector<std::vector<std::pair<int, int>>>(kNumRelations);
  std::vector<BlockNet> nets;
  ConstraintSpec constraints;

  int num_nodes() const { return static_cast<int>(nodes.size()); }
  double total_area() const;

  /// Node feature matrix [N, kNodeFeatureDim]; areas and widths are
  /// normalized within the circuit so features are scale free.
  num::Tensor feature_matrix() const;

  /// Per-relation normalized adjacency matrices for the R-GCN (dense;
  /// legacy callers and tests).
  std::vector<num::Tensor> adjacency() const;

  /// Per-relation normalized adjacency in CSR form, built in O(E) without
  /// materializing N x N matrices.  The encoder hot path uses this.
  std::vector<num::SparseCSR> adjacency_csr() const;
};

/// Builds the graph from a netlist and its recognition result.
/// Connectivity edges link blocks sharing at least one non-supply net;
/// constraint relations are added by apply_constraints.
CircuitGraph build_graph(const netlist::Netlist& nl,
                         const structrec::Recognition& rec);

/// Installs `spec` into the graph: records it and materializes the
/// corresponding symmetry / alignment edges (replacing previous ones).
void apply_constraints(CircuitGraph& g, ConstraintSpec spec);

/// Derives a plausible default constraint set: matched-pair blocks become
/// self-symmetric about a vertical axis; same-type equal-area blocks that
/// both connect to a matched pair become symmetric pairs; current mirrors
/// connected to a diff pair align horizontally with it.
ConstraintSpec default_constraints(const CircuitGraph& g);

}  // namespace afp::graphir
