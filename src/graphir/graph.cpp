#include "graphir/graph.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <stdexcept>
#include <unordered_map>

namespace afp::graphir {

double CircuitGraph::total_area() const {
  double a = 0.0;
  for (const Node& n : nodes) a += n.area_um2;
  return a;
}

num::Tensor CircuitGraph::feature_matrix() const {
  const int n = num_nodes();
  std::vector<float> feat(static_cast<std::size_t>(n) * kNodeFeatureDim, 0.0f);
  const double total = std::max(1e-12, total_area());
  double max_stripe = 1e-12;
  for (const Node& nd : nodes) max_stripe = std::max(max_stripe, nd.stripe_width_um);
  for (int i = 0; i < n; ++i) {
    const Node& nd = nodes[static_cast<std::size_t>(i)];
    float* f = feat.data() + static_cast<std::size_t>(i) * kNodeFeatureDim;
    f[0] = static_cast<float>(nd.area_um2 / total);
    f[1] = static_cast<float>(nd.stripe_width_um / max_stripe);
    f[2] = static_cast<float>(nd.pin_count) / 10.0f;
    const int dir = std::clamp(nd.routing_direction, 0, 3);
    f[3 + dir] = 1.0f;
    const int t = std::clamp(static_cast<int>(nd.type), 0,
                             structrec::kNumStructureTypes - 1);
    f[7 + t] = 1.0f;
  }
  return num::Tensor::from_vector({n, kNodeFeatureDim}, std::move(feat));
}

std::vector<num::Tensor> CircuitGraph::adjacency() const {
  return nn::build_adjacency(num_nodes(), kNumRelations, edges);
}

std::vector<num::SparseCSR> CircuitGraph::adjacency_csr() const {
  return nn::build_adjacency_csr(num_nodes(), kNumRelations, edges);
}

CircuitGraph build_graph(const netlist::Netlist& nl,
                         const structrec::Recognition& rec) {
  CircuitGraph g;
  g.name = nl.name();
  for (const auto& s : rec.structures) {
    Node n;
    n.name = s.name;
    n.type = s.type;
    n.area_um2 = s.area_um2;
    n.stripe_width_um = s.stripe_width_um;
    n.pin_count = s.pin_count;
    n.routing_direction = s.routing_direction;
    g.nodes.push_back(std::move(n));
  }

  // Block-level nets: map each non-supply netlist net onto the distinct
  // blocks it touches; keep nets spanning >= 2 blocks.
  std::set<std::pair<int, int>> conn;
  for (const auto& net : nl.nets()) {
    if (net.is_supply()) continue;
    std::set<int> blocks;
    for (const auto& [di, ti] : net.pins) {
      blocks.insert(rec.device_to_structure[static_cast<std::size_t>(di)]);
    }
    if (blocks.size() < 2) continue;
    BlockNet bn;
    bn.name = net.name;
    bn.blocks.assign(blocks.begin(), blocks.end());
    g.nets.push_back(std::move(bn));
    for (auto it = blocks.begin(); it != blocks.end(); ++it) {
      for (auto jt = std::next(it); jt != blocks.end(); ++jt) {
        conn.emplace(*it, *jt);
      }
    }
  }
  auto& conn_edges =
      g.edges[static_cast<std::size_t>(Relation::kConnectivity)];
  conn_edges.assign(conn.begin(), conn.end());
  return g;
}

void apply_constraints(CircuitGraph& g, ConstraintSpec spec) {
  const int n = g.num_nodes();
  auto check = [n](int b, const char* what) {
    if (b < 0 || b >= n) {
      throw std::invalid_argument(std::string("apply_constraints: ") + what +
                                  " block index out of range");
    }
  };
  for (const auto& sp : spec.sym_pairs) {
    check(sp.a, "sym_pair");
    check(sp.b, "sym_pair");
  }
  for (const auto& ss : spec.self_syms) check(ss.block, "self_sym");
  for (const auto& ag : spec.align_groups) {
    for (int b : ag.blocks) check(b, "align_group");
  }
  for (const auto& mg : spec.match_groups) {
    for (int b : mg.blocks) check(b, "match_group");
  }
  for (const auto& pp : spec.preplaced) check(pp.block, "preplaced");

  g.constraints = std::move(spec);
  auto& hsym = g.edges[static_cast<std::size_t>(Relation::kHorizontalSymmetry)];
  auto& vsym = g.edges[static_cast<std::size_t>(Relation::kVerticalSymmetry)];
  auto& halign = g.edges[static_cast<std::size_t>(Relation::kHorizontalAlign)];
  auto& valign = g.edges[static_cast<std::size_t>(Relation::kVerticalAlign)];
  hsym.clear();
  vsym.clear();
  halign.clear();
  valign.clear();
  for (const auto& sp : g.constraints.sym_pairs) {
    (sp.vertical ? vsym : hsym).emplace_back(sp.a, sp.b);
  }
  for (const auto& ss : g.constraints.self_syms) {
    (ss.vertical ? vsym : hsym).emplace_back(ss.block, ss.block);
  }
  for (const auto& ag : g.constraints.align_groups) {
    auto& bucket = ag.horizontal ? halign : valign;
    for (std::size_t i = 0; i + 1 < ag.blocks.size(); ++i) {
      bucket.emplace_back(ag.blocks[i], ag.blocks[i + 1]);
    }
  }
}

ConstraintSpec default_constraints(const CircuitGraph& g) {
  ConstraintSpec spec;
  const int n = g.num_nodes();

  std::vector<int> pairs;  // matched-pair block indices
  for (int i = 0; i < n; ++i) {
    if (structrec::is_matched_pair(g.nodes[static_cast<std::size_t>(i)].type)) {
      spec.self_syms.push_back({i, /*vertical=*/true});
      pairs.push_back(i);
    }
  }

  auto connected = [&](int a, int b) {
    const auto& ce =
        g.edges[static_cast<std::size_t>(Relation::kConnectivity)];
    return std::any_of(ce.begin(), ce.end(), [&](const auto& e) {
      return (e.first == a && e.second == b) ||
             (e.first == b && e.second == a);
    });
  };

  // Same-type equal-area blocks hanging off the same matched pair mirror
  // each other (e.g. matched diodes on a diff pair's outputs).
  std::set<int> paired;
  for (int p : pairs) {
    for (int a = 0; a < n; ++a) {
      if (a == p || paired.count(a) || !connected(a, p)) continue;
      for (int b = a + 1; b < n; ++b) {
        if (b == p || paired.count(a) || paired.count(b) || !connected(b, p))
          continue;
        const Node& na = g.nodes[static_cast<std::size_t>(a)];
        const Node& nb = g.nodes[static_cast<std::size_t>(b)];
        if (na.type == nb.type &&
            std::abs(na.area_um2 - nb.area_um2) < 1e-9 &&
            !structrec::is_matched_pair(na.type)) {
          spec.sym_pairs.push_back({a, b, /*vertical=*/true});
          paired.insert(a);
          paired.insert(b);
        }
      }
    }
  }

  // Current mirrors align in a row with the diff pair they load.
  for (int p : pairs) {
    if (g.nodes[static_cast<std::size_t>(p)].type !=
            structrec::StructureType::kDiffPairN &&
        g.nodes[static_cast<std::size_t>(p)].type !=
            structrec::StructureType::kDiffPairP)
      continue;
    ConstraintSpec::AlignGroup group;
    group.horizontal = true;
    group.blocks.push_back(p);
    for (int a = 0; a < n; ++a) {
      const auto t = g.nodes[static_cast<std::size_t>(a)].type;
      if ((t == structrec::StructureType::kCurrentMirrorN ||
           t == structrec::StructureType::kCurrentMirrorP) &&
          connected(a, p)) {
        group.blocks.push_back(a);
      }
    }
    if (group.blocks.size() >= 2) spec.align_groups.push_back(std::move(group));
  }
  return spec;
}

ConstraintSpec resolve(const NamedConstraintSpec& named,
                       const CircuitGraph& g) {
  std::unordered_map<std::string, int> index;
  for (int i = 0; i < g.num_nodes(); ++i) {
    index.emplace(g.nodes[static_cast<std::size_t>(i)].name, i);
  }
  auto lookup = [&](const std::string& name) {
    auto it = index.find(name);
    if (it == index.end()) {
      throw std::invalid_argument("resolve: unknown block '" + name + "' in " +
                                  g.name);
    }
    return it->second;
  };

  ConstraintSpec spec;
  for (const auto& sp : named.sym_pairs) {
    spec.sym_pairs.push_back({lookup(sp.a), lookup(sp.b), sp.vertical});
  }
  for (const auto& ag : named.align_groups) {
    ConstraintSpec::AlignGroup out;
    out.horizontal = ag.horizontal;
    for (const auto& b : ag.blocks) out.blocks.push_back(lookup(b));
    spec.align_groups.push_back(std::move(out));
  }
  for (const auto& mg : named.match_groups) {
    ConstraintSpec::MatchGroup out;
    for (const auto& b : mg.blocks) out.blocks.push_back(lookup(b));
    spec.match_groups.push_back(std::move(out));
  }
  spec.keep_outs = named.keep_outs;
  for (const auto& pp : named.preplaced) {
    spec.preplaced.push_back({lookup(pp.block), pp.x, pp.y});
  }
  return spec;
}

}  // namespace afp::graphir
