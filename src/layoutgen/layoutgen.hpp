// Procedural layout generation — the ANAGEN [11,12] substitute.
//
// Pipeline stages mirroring Section IV-E / Fig. 7:
//   1. Template realization: placed blocks become layout templates with pin
//      geometry on their preferred routing edge.
//   2. Channel definition: every global-routing conduit expands into a
//      routing channel (a padded corridor on its layer).
//   3. Detailed routing: conduits become wire rectangles; parallel
//      same-layer wires of different nets are separated by a greedy track
//      assignment; layer changes get via squares.
//   4. Verification: DRC-style checks (same-layer spacing between
//      different nets, wires within the outline) and an LVS-style check
//      (each net's wires + pins form one connected component).
//   5. SVG export for visual inspection (Fig. 7 panels).
#pragma once

#include <string>
#include <vector>

#include "route/oarsmt.hpp"

namespace afp::layoutgen {

struct LayoutConfig {
  double wire_width = 0.2;    ///< um
  double wire_spacing = 0.25; ///< um, min same-layer spacing
  double channel_pad = 0.3;   ///< um, channel padding around conduits
  double via_size = 0.26;     ///< um
  double outline_margin = 1.0;///< um around everything
};

struct WireSegment {
  geom::Rect rect;
  int layer = 1;
  std::string net;
};

struct Via {
  geom::Rect rect;
  std::string net;
};

struct Channel {
  geom::Rect rect;
  int layer = 1;
};

struct PinShape {
  geom::Rect rect;
  int block = -1;
  std::string net;
};

struct Layout {
  std::vector<geom::Rect> blocks;
  std::vector<PinShape> pins;
  std::vector<Channel> channels;
  std::vector<WireSegment> wires;
  std::vector<Via> vias;
  geom::Rect outline;

  double area() const { return outline.area(); }
  /// Dead space of the completed layout: 1 - block area / outline area.
  double dead_space(const floorplan::Instance& inst) const;
};

/// Runs stages 1-3.  `routing_dirs` gives each block's preferred pin edge
/// (0=N,1=E,2=S,3=W) and must match what global routing used so pin
/// shapes land on the routed terminals; empty means north for all.
Layout generate_layout(const floorplan::Instance& inst,
                       const std::vector<geom::Rect>& rects,
                       const route::GlobalRoute& gr,
                       const LayoutConfig& cfg = {},
                       const std::vector<int>& routing_dirs = {});

struct DrcViolation {
  std::string rule;
  std::string detail;
};

struct DrcReport {
  std::vector<DrcViolation> violations;
  bool clean() const { return violations.empty(); }
};

/// Same-layer spacing between different nets; geometry inside outline.
DrcReport run_drc(const Layout& layout, const LayoutConfig& cfg = {});

struct LvsReport {
  std::vector<std::string> open_nets;   ///< nets whose geometry is split
  std::vector<std::string> shorted;     ///< net pairs in contact
  bool clean() const { return open_nets.empty() && shorted.empty(); }
};

/// Connectivity extraction: wires + vias + pins per net must form a single
/// connected component, and no two nets may touch.
LvsReport run_lvs(const Layout& layout);

/// Writes an SVG rendering (blocks, channels, wires per layer, vias).
void write_svg(const std::string& path, const Layout& layout);

}  // namespace afp::layoutgen
