#include "layoutgen/layoutgen.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <functional>
#include <map>
#include <set>

namespace afp::layoutgen {

double Layout::dead_space(const floorplan::Instance& inst) const {
  if (outline.area() <= 0.0) return 1.0;
  return 1.0 - inst.total_block_area() / outline.area();
}

namespace {

geom::Rect conduit_rect(const route::Conduit& c, double width) {
  const double hw = width / 2.0;
  if (c.layer == 1) {  // horizontal
    return {std::min(c.a.x, c.b.x) - hw, c.a.y - hw,
            std::abs(c.b.x - c.a.x) + width, width};
  }
  return {c.a.x - hw, std::min(c.a.y, c.b.y) - hw, width,
          std::abs(c.b.y - c.a.y) + width};
}

/// Deterministic lane offset for a net: nets are shifted rigidly by a
/// sub-pitch amount so wires that global routing placed on the same Hanan
/// line separate without breaking intra-net connectivity.  Offsets stay
/// below half the pin pad so pin contact is preserved.
geom::Point net_lane_offset(std::size_t net_index, double lane_step) {
  // Four quantized lanes per axis: {-1.5, -0.5, +0.5, +1.5} * lane_step.
  // Distinct lanes differ by at least lane_step, which exceeds the wire
  // width, so same-line wires of different nets cannot overlap.  Nets
  // sharing both lanes (more than 16 nets) may still crowd; DRC reports
  // those as the manual-refinement cases of Section V-C.
  const double lx = static_cast<double>((net_index / 4) % 4) - 1.5;
  const double ly = static_cast<double>(net_index % 4) - 1.5;
  return {lx * lane_step, ly * lane_step};
}

}  // namespace

Layout generate_layout(const floorplan::Instance& inst,
                       const std::vector<geom::Rect>& rects,
                       const route::GlobalRoute& gr,
                       const LayoutConfig& cfg,
                       const std::vector<int>& routing_dirs) {
  Layout layout;
  layout.blocks = rects;

  // Stage 1: pin shapes on each block's preferred routing edge (template
  // realization keeps pins where the multi-shape configuration routed the
  // structure's terminals) — the same convention global routing used.
  // Pin pads are sized to cover the maximum net-lane shift applied during
  // detailed routing, so lane assignment can never disconnect a pin.
  const double lane_step = cfg.wire_width * 1.25;
  const double pin_half = 1.5 * lane_step + cfg.wire_width;
  for (std::size_t ni = 0; ni < inst.nets.size(); ++ni) {
    for (int b : inst.nets[ni]) {
      const int dir = b < static_cast<int>(routing_dirs.size())
                          ? routing_dirs[static_cast<std::size_t>(b)]
                          : 0;
      const geom::Point p =
          route::block_pin_for_net(rects[static_cast<std::size_t>(b)], dir, ni);
      layout.pins.push_back(
          {{p.x - pin_half, p.y - pin_half, 2 * pin_half, 2 * pin_half},
           b,
           "net" + std::to_string(ni)});
    }
  }

  // Stage 2: channels from conduits.
  for (const auto& c : gr.conduits) {
    layout.channels.push_back(
        {conduit_rect(c, cfg.wire_width + 2.0 * cfg.channel_pad), c.layer});
  }

  // Stage 3: detailed wires.  Each net is shifted rigidly onto its own
  // lane (net_lane_offset), which keeps the net's geometry connected by
  // construction while separating wires that global routing placed on the
  // same Hanan line.  Residual crowding shows up as DRC spacing
  // violations — the cases Section V-C attributes to manual channel
  // refinement.
  const double pitch = cfg.wire_width + cfg.wire_spacing;
  std::map<std::string, std::size_t> net_index;
  for (const auto& c : gr.conduits) {
    net_index.emplace(c.net, net_index.size());
  }
  for (const auto& c : gr.conduits) {
    const geom::Point off = net_lane_offset(net_index[c.net], lane_step);
    const geom::Rect w = conduit_rect(c, cfg.wire_width).translated(off.x, off.y);
    layout.wires.push_back({w, c.layer, c.net});
  }
  for (const auto& c : gr.conduits) {
    const geom::Point off = net_lane_offset(net_index[c.net], lane_step);
    for (const geom::Point& p : {c.a, c.b}) {
      layout.vias.push_back(
          {{p.x + off.x - cfg.via_size / 2.0, p.y + off.y - cfg.via_size / 2.0,
            cfg.via_size, cfg.via_size},
           c.net});
    }
  }

  // Outline covers blocks and channels.
  geom::Rect bb = geom::bounding_box(layout.blocks);
  for (const auto& ch : layout.channels) bb = geom::bounding_union(bb, ch.rect);
  layout.outline = bb.inflated(cfg.outline_margin);
  return layout;
}

DrcReport run_drc(const Layout& layout, const LayoutConfig& cfg) {
  DrcReport report;
  for (std::size_t i = 0; i < layout.wires.size(); ++i) {
    const auto& a = layout.wires[i];
    if (!layout.outline.contains(a.rect)) {
      report.violations.push_back(
          {"outline", "wire of " + a.net + " escapes the outline"});
    }
    for (std::size_t j = i + 1; j < layout.wires.size(); ++j) {
      const auto& b = layout.wires[j];
      if (a.layer != b.layer || a.net == b.net) continue;
      if (a.rect.inflated(cfg.wire_spacing / 2.0)
              .overlaps(b.rect.inflated(cfg.wire_spacing / 2.0))) {
        report.violations.push_back(
            {"spacing", "layer " + std::to_string(a.layer) + ": " + a.net +
                            " vs " + b.net});
      }
    }
  }
  for (std::size_t i = 0; i < layout.blocks.size(); ++i) {
    for (std::size_t j = i + 1; j < layout.blocks.size(); ++j) {
      if (layout.blocks[i].overlaps(layout.blocks[j])) {
        report.violations.push_back(
            {"block_overlap", "blocks " + std::to_string(i) + " and " +
                                  std::to_string(j)});
      }
    }
  }
  return report;
}

LvsReport run_lvs(const Layout& layout) {
  LvsReport report;
  // Gather geometry per net: wires, vias and pins.
  std::map<std::string, std::vector<geom::Rect>> net_geom;
  for (const auto& w : layout.wires) net_geom[w.net].push_back(w.rect);
  for (const auto& v : layout.vias) net_geom[v.net].push_back(v.rect);
  for (const auto& p : layout.pins) net_geom[p.net].push_back(p.rect);

  // Connectivity: union-find over touching rectangles (inflated slightly
  // so abutting shapes connect).
  for (const auto& [net, shapes] : net_geom) {
    const std::size_t n = shapes.size();
    std::vector<std::size_t> parent(n);
    for (std::size_t i = 0; i < n; ++i) parent[i] = i;
    std::function<std::size_t(std::size_t)> find =
        [&](std::size_t x) -> std::size_t {
      while (parent[x] != x) x = parent[x] = parent[parent[x]];
      return x;
    };
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) {
        if (shapes[i].inflated(1e-6).overlaps(shapes[j].inflated(1e-6))) {
          parent[find(i)] = find(j);
        }
      }
    }
    std::set<std::size_t> roots;
    for (std::size_t i = 0; i < n; ++i) roots.insert(find(i));
    if (roots.size() > 1) report.open_nets.push_back(net);
  }

  // Shorts: same-layer wire contact between different nets.
  for (std::size_t i = 0; i < layout.wires.size(); ++i) {
    for (std::size_t j = i + 1; j < layout.wires.size(); ++j) {
      const auto& a = layout.wires[i];
      const auto& b = layout.wires[j];
      if (a.net == b.net || a.layer != b.layer) continue;
      if (a.rect.overlaps(b.rect)) {
        report.shorted.push_back(a.net + "/" + b.net);
      }
    }
  }
  return report;
}

void write_svg(const std::string& path, const Layout& layout) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("write_svg: cannot open " + path);
  const geom::Rect& o = layout.outline;
  const double scale = 20.0;
  os << "<svg xmlns='http://www.w3.org/2000/svg' width='"
     << o.w * scale << "' height='" << o.h * scale << "' viewBox='0 0 "
     << o.w * scale << ' ' << o.h * scale << "'>\n";
  auto emit = [&](const geom::Rect& r, const std::string& fill,
                  double opacity) {
    // Flip y: SVG origin is top-left.
    os << "<rect x='" << (r.x - o.x) * scale << "' y='"
       << (o.top() - r.top()) * scale << "' width='" << r.w * scale
       << "' height='" << r.h * scale << "' fill='" << fill
       << "' fill-opacity='" << opacity << "' stroke='black' stroke-width='0.5'/>\n";
  };
  emit(o, "#f8f8f8", 1.0);
  for (const auto& ch : layout.channels) {
    emit(ch.rect, ch.layer == 1 ? "#ffe9b3" : "#d0e8ff", 0.5);
  }
  for (const auto& b : layout.blocks) emit(b, "#b8c4ce", 0.9);
  for (const auto& w : layout.wires) {
    emit(w.rect, w.layer == 1 ? "#d97706" : "#2563eb", 0.95);
  }
  for (const auto& v : layout.vias) emit(v.rect, "#111111", 1.0);
  for (const auto& p : layout.pins) emit(p.rect, "#16a34a", 1.0);
  os << "</svg>\n";
}

}  // namespace afp::layoutgen
