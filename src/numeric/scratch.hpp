// Per-thread scratch arena for transient kernel workspace.
//
// The numeric kernels need short-lived float buffers (im2col columns,
// channel-major gathers, per-image dW partials) whose sizes repeat every
// training iteration.  The tensor buffer pool already recycles storage, but
// it is shared (mutex per acquire) and best-fit bounded; the scratch arena
// is thread-local — no locking — and its slabs are never returned to the
// allocator, so after the first iteration warm-up a steady-state training
// loop performs zero workspace allocations (see the allocation counters,
// asserted by the perf-core tests).
//
// Usage: `ScratchLease ws(n);` leases n floats from the calling thread's
// arena; the slab is marked free again when the lease goes out of scope.
// Leases nest (im2col column buffer + GEMM output live together), and must
// be released by the same thread that acquired them — the RAII scoping
// guarantees that.
#pragma once

#include <cstddef>
#include <cstdint>

namespace afp::num {

class ScratchLease {
 public:
  explicit ScratchLease(std::size_t n);
  ~ScratchLease();
  ScratchLease(const ScratchLease&) = delete;
  ScratchLease& operator=(const ScratchLease&) = delete;

  float* data() { return data_; }
  const float* data() const { return data_; }
  std::size_t size() const { return size_; }

 private:
  float* data_;
  std::size_t size_;
  int slot_;
};

/// Slabs malloc'd by all arenas since process start (monotonic; a flat
/// value across iterations proves workspace reuse).
std::uint64_t scratch_allocation_count();

/// Bytes currently held by all arenas (monotonic per thread).
std::uint64_t scratch_allocated_bytes();

}  // namespace afp::num
