// Shared thread pool for the numeric kernels.
//
// All parallel work in the library goes through parallel_for, which splits
// an index range into contiguous chunks and hands them to a fixed pool of
// worker threads (the calling thread participates too).  Chunks never share
// output elements, and every output element is accumulated by exactly one
// chunk in a fixed loop order, so results are bitwise identical for any
// thread count — including AFP_NUM_THREADS=1.
//
// Sizing: AFP_NUM_THREADS when set (>= 1), otherwise
// std::thread::hardware_concurrency().  set_num_threads() can resize the
// pool at runtime (used by the determinism tests and the benches).
//
// Nested parallel_for calls from inside a worker run serially on that
// worker; the pool never deadlocks on re-entry.
#pragma once

#include <cstdint>
#include <functional>

namespace afp::num {

/// Body receives a half-open sub-range [begin, end).
using ParallelBody = std::function<void(std::int64_t begin, std::int64_t end)>;

/// Number of threads the pool currently uses (>= 1; counts the caller).
int num_threads();

/// Resizes the pool.  n <= 0 restores the AFP_NUM_THREADS / hardware default.
void set_num_threads(int n);

/// Runs body over [0, n) in parallel chunks of at least `grain` indices.
/// Falls back to a single inline call when the range is small, the pool has
/// one thread, or the caller is itself a pool worker.
void parallel_for(std::int64_t n, std::int64_t grain, const ParallelBody& body);

}  // namespace afp::num
