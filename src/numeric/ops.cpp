#include "numeric/ops.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "numeric/parallel.hpp"
#include "numeric/scratch.hpp"
#include "numeric/simd.hpp"

namespace afp::num {

namespace {

using detail::Node;
using NodePtr = std::shared_ptr<Node>;

void check(bool cond, const std::string& msg) {
  if (!cond) throw std::invalid_argument(msg);
}

void check_same_shape(const Tensor& a, const Tensor& b, const char* op) {
  check(a.shape() == b.shape(), std::string(op) + ": shape mismatch " +
                                    shape_str(a.shape()) + " vs " +
                                    shape_str(b.shape()));
}

const std::vector<float>& V(const NodePtr& n) { return *n->value; }
std::vector<float>& G(const NodePtr& n) { return *n->grad; }

/// Accumulates g into n->grad.  Callers must have checked requires_grad —
/// gradient buffers are lazily allocated and only exist for graph nodes.
void acc(const NodePtr& n, std::size_t i, float g) { (*n->grad)[i] += g; }

/// Minimum elements per chunk for elementwise parallel loops.
constexpr std::int64_t kEwGrain = 1 << 14;

/// Chunk grain that targets ~32k inner operations per chunk when every
/// outer index costs `work_per_index` operations.
std::int64_t grain_for(std::int64_t work_per_index) {
  return std::max<std::int64_t>(
      1, (std::int64_t{1} << 15) / std::max<std::int64_t>(1, work_per_index));
}

// ====================================================================== GEMM
//
// All three kernels are row-parallel over their output matrix: each output
// row is produced entirely by one chunk with a fixed accumulation order, so
// results do not depend on the thread count.  The inner loops dispatch to
// the active micro-kernel tier (numeric/simd.hpp).

/// C[M,N] (+)= A[M,K] · B[K,N].
void gemm_nn(std::int64_t M, std::int64_t K, std::int64_t N, const float* A,
             const float* B, float* C, bool accumulate) {
  const auto rows = simd::kernels().gemm_nn_rows;
  parallel_for(M, grain_for(K * N), [=](std::int64_t i0, std::int64_t i1) {
    rows(i0, i1, K, N, A, K, B, N, C, N, accumulate);
  });
}

/// C[M,N] (+)= A[M,K] · B[N,K]ᵀ (rows of B are dotted against rows of A).
void gemm_nt(std::int64_t M, std::int64_t K, std::int64_t N, const float* A,
             const float* B, float* C, bool accumulate) {
  const auto rows = simd::kernels().gemm_nt_rows;
  parallel_for(M, grain_for(K * N), [=](std::int64_t i0, std::int64_t i1) {
    rows(i0, i1, K, N, A, K, B, K, C, N, accumulate);
  });
}

/// C[K,N] (+)= A[M,K]ᵀ · B[M,N].  Row-parallel over C (i.e. over K).
void gemm_tn(std::int64_t M, std::int64_t K, std::int64_t N, const float* A,
             const float* B, float* C, bool accumulate) {
  const auto rows = simd::kernels().gemm_tn_rows;
  parallel_for(K, grain_for(M * N), [=](std::int64_t k0, std::int64_t k1) {
    rows(k0, k1, M, N, A, K, B, N, C, N, accumulate);
  });
}

/// C[M,N] += Σ_b A_b[M,K]·B_b[N,K]ᵀ where A and B store image b's block at
/// column offset b*K of a [.., BATCH*K] row-major matrix (the conv im2col /
/// channel-major layout).  Parallel over the batch with per-image partials
/// in thread scratch, then a fixed-order (b ascending) reduction — bitwise
/// identical for any thread count, unlike parallelizing the K loop.
void gemm_nt_batched_acc(std::int64_t BATCH, std::int64_t M, std::int64_t K,
                         std::int64_t N, const float* A, const float* B,
                         float* C) {
  // The split must depend only on the shape — never on the thread count —
  // or the summation order (and hence the bits) would change with the pool
  // size.  BATCH == 1 degenerates to a plain row-parallel contraction.
  if (BATCH <= 1) {
    gemm_nt(M, BATCH * K, N, A, B, C, /*accumulate=*/true);
    return;
  }
  const auto rows = simd::kernels().gemm_nt_rows;
  const std::int64_t part = M * N;
  ScratchLease partials(static_cast<std::size_t>(BATCH * part));
  float* P = partials.data();
  parallel_for(BATCH, grain_for(M * K * N),
               [=](std::int64_t b0, std::int64_t b1) {
                 for (std::int64_t b = b0; b < b1; ++b) {
                   rows(0, M, K, N, A + b * K, BATCH * K, B + b * K, BATCH * K,
                        P + b * part, N, /*accumulate=*/false);
                 }
               });
  const auto acc = simd::kernels().acc;
  for (std::int64_t b = 0; b < BATCH; ++b) acc(C, P + b * part, part);
}

// ================================================================ im2col ===
//
// Batched layout: col is [IC*KH*KW, B*OH*OW]; column index is
// b*OH*OW + oh*OW + ow.  The whole batch lowers to ONE GEMM per conv.

void im2col(const float* X, int B, int IC, int H, int W, int KH, int KW,
            int OH, int OW, int stride, int pad, float* col) {
  const std::int64_t CK = static_cast<std::int64_t>(IC) * KH * KW;
  const std::int64_t cols = static_cast<std::int64_t>(B) * OH * OW;
  parallel_for(CK, grain_for(cols), [=](std::int64_t r0, std::int64_t r1) {
    for (std::int64_t r = r0; r < r1; ++r) {
      const int kw = static_cast<int>(r % KW);
      const int kh = static_cast<int>((r / KW) % KH);
      const int ic = static_cast<int>(r / (static_cast<std::int64_t>(KW) * KH));
      float* dst = col + r * cols;
      for (int b = 0; b < B; ++b) {
        const float* src =
            X + (static_cast<std::int64_t>(b) * IC + ic) * H * W;
        float* d = dst + static_cast<std::int64_t>(b) * OH * OW;
        for (int oh = 0; oh < OH; ++oh, d += OW) {
          const int ih = oh * stride - pad + kh;
          if (ih < 0 || ih >= H) {
            std::fill(d, d + OW, 0.0f);
            continue;
          }
          const float* srow = src + static_cast<std::int64_t>(ih) * W;
          for (int ow = 0; ow < OW; ++ow) {
            const int iw = ow * stride - pad + kw;
            d[ow] = (iw >= 0 && iw < W) ? srow[iw] : 0.0f;
          }
        }
      }
    }
  });
}

/// Scatters col (same layout as im2col) back into X, accumulating.
/// Parallel over the batch: each image is owned by one chunk.
void col2im_acc(const float* col, int B, int IC, int H, int W, int KH, int KW,
                int OH, int OW, int stride, int pad, float* dX) {
  const std::int64_t CK = static_cast<std::int64_t>(IC) * KH * KW;
  const std::int64_t cols = static_cast<std::int64_t>(B) * OH * OW;
  parallel_for(B, grain_for(CK * OH * OW),
               [=](std::int64_t b0, std::int64_t b1) {
    for (std::int64_t b = b0; b < b1; ++b) {
      for (std::int64_t r = 0; r < CK; ++r) {
        const int kw = static_cast<int>(r % KW);
        const int kh = static_cast<int>((r / KW) % KH);
        const int ic =
            static_cast<int>(r / (static_cast<std::int64_t>(KW) * KH));
        const float* src = col + r * cols + b * OH * OW;
        float* dst = dX + (b * IC + ic) * H * W;
        for (int oh = 0; oh < OH; ++oh) {
          const int ih = oh * stride - pad + kh;
          if (ih < 0 || ih >= H) continue;
          float* drow = dst + static_cast<std::int64_t>(ih) * W;
          const float* srow = src + static_cast<std::int64_t>(oh) * OW;
          for (int ow = 0; ow < OW; ++ow) {
            const int iw = ow * stride - pad + kw;
            if (iw >= 0 && iw < W) drow[iw] += srow[ow];
          }
        }
      }
    }
  });
}

/// Gathers NCHW x into channel-major x_mat [C, B*H*W] (column b*HW + i).
void to_channel_major(const float* X, int B, int C, std::int64_t HW,
                      float* Xmat) {
  const std::int64_t total = static_cast<std::int64_t>(B) * C;
  parallel_for(total, grain_for(HW), [=](std::int64_t t0, std::int64_t t1) {
    for (std::int64_t t = t0; t < t1; ++t) {
      const std::int64_t b = t / C, c = t % C;
      std::copy(X + (b * C + c) * HW, X + (b * C + c) * HW + HW,
                Xmat + c * (B * HW) + b * HW);
    }
  });
}

/// Scatters channel-major mat [C, B*H*W] back to NCHW, accumulating.
void from_channel_major_acc(const float* Xmat, int B, int C, std::int64_t HW,
                            float* X) {
  const std::int64_t total = static_cast<std::int64_t>(B) * C;
  parallel_for(total, grain_for(HW), [=](std::int64_t t0, std::int64_t t1) {
    for (std::int64_t t = t0; t < t1; ++t) {
      const std::int64_t b = t / C, c = t % C;
      const float* src = Xmat + c * (B * HW) + b * HW;
      float* dst = X + (b * C + c) * HW;
      for (std::int64_t i = 0; i < HW; ++i) dst[i] += src[i];
    }
  });
}

// ============================================================ elementwise ===

template <class Fwd>
detail::BufferPtr ew_forward(const Tensor& a, Fwd&& f) {
  auto out = detail::acquire_buffer(a.values().size());
  const float* in = a.data();
  float* o = out->data();
  parallel_for(static_cast<std::int64_t>(out->size()), kEwGrain,
               [&](std::int64_t i0, std::int64_t i1) {
                 for (std::int64_t i = i0; i < i1; ++i)
                   o[i] = f(in[static_cast<std::size_t>(i)]);
               });
  return out;
}

/// Like ew_forward but streams subranges through a tier kernel of the form
/// k(in, out, n) instead of a per-element lambda.
template <class Kernel>
detail::BufferPtr ew_forward_kernel(const Tensor& a, Kernel k) {
  auto out = detail::acquire_buffer(a.values().size());
  const float* in = a.data();
  float* o = out->data();
  parallel_for(static_cast<std::int64_t>(out->size()), kEwGrain,
               [&](std::int64_t i0, std::int64_t i1) {
                 k(in + i0, o + i0, i1 - i0);
               });
  return out;
}

/// Binary elementwise op with tier-dispatched forward and accumulate-style
/// backward kernels.  `fwd(a, b, o, n)` writes the subrange; `bwd_a`/`bwd_b`
/// accumulate the full gradient (they run once, on the backward thread).
template <class Fwd, class BwdA, class BwdB>
Tensor ew_binary(const char* name, const Tensor& a, const Tensor& b, Fwd fwd,
                 BwdA bwd_a, BwdB bwd_b) {
  check_same_shape(a, b, name);
  auto out = detail::acquire_buffer(a.values().size());
  const float* pa = a.data();
  const float* pb = b.data();
  float* o = out->data();
  parallel_for(static_cast<std::int64_t>(out->size()), kEwGrain,
               [&](std::int64_t i0, std::int64_t i1) {
                 fwd(pa + i0, pb + i0, o + i0, i1 - i0);
               });
  NodePtr an = a.node(), bn = b.node();
  return make_result(a.shape(), std::move(out), {a, b},
                     [an, bn, bwd_a, bwd_b](const std::vector<float>& g) {
                       const std::int64_t n =
                           static_cast<std::int64_t>(g.size());
                       if (an->requires_grad) bwd_a(an, g.data(), n);
                       if (bn->requires_grad) bwd_b(bn, g.data(), n);
                     });
}

}  // namespace

// ---------------------------------------------------------------- binary ---

Tensor add(const Tensor& a, const Tensor& b) {
  return ew_binary(
      "add", a, b, simd::kernels().add,
      [](const NodePtr& n, const float* g, std::int64_t sz) {
        simd::kernels().acc(G(n).data(), g, sz);
      },
      [](const NodePtr& n, const float* g, std::int64_t sz) {
        simd::kernels().acc(G(n).data(), g, sz);
      });
}

Tensor sub(const Tensor& a, const Tensor& b) {
  return ew_binary(
      "sub", a, b, simd::kernels().sub,
      [](const NodePtr& n, const float* g, std::int64_t sz) {
        simd::kernels().acc(G(n).data(), g, sz);
      },
      [](const NodePtr& n, const float* g, std::int64_t sz) {
        simd::kernels().acc_scaled(G(n).data(), g, -1.0f, sz);
      });
}

Tensor mul(const Tensor& a, const Tensor& b) {
  NodePtr an = a.node(), bn = b.node();
  return ew_binary(
      "mul", a, b, simd::kernels().mul,
      [bn](const NodePtr& n, const float* g, std::int64_t sz) {
        simd::kernels().acc_mul(G(n).data(), g, V(bn).data(), sz);
      },
      [an](const NodePtr& n, const float* g, std::int64_t sz) {
        simd::kernels().acc_mul(G(n).data(), g, V(an).data(), sz);
      });
}

Tensor div(const Tensor& a, const Tensor& b) {
  check_same_shape(a, b, "div");
  auto out = detail::acquire_buffer(a.values().size());
  const float* pa = a.data();
  const float* pb = b.data();
  float* o = out->data();
  for (std::size_t i = 0; i < out->size(); ++i) o[i] = pa[i] / pb[i];
  NodePtr an = a.node(), bn = b.node();
  return make_result(a.shape(), std::move(out), {a, b},
                     [an, bn](const std::vector<float>& g) {
                       const bool da = an->requires_grad,
                                  db = bn->requires_grad;
                       for (std::size_t i = 0; i < g.size(); ++i) {
                         const float inv = 1.0f / V(bn)[i];
                         if (da) acc(an, i, g[i] * inv);
                         if (db) acc(bn, i, -g[i] * V(an)[i] * inv * inv);
                       }
                     });
}

Tensor minimum(const Tensor& a, const Tensor& b) {
  check_same_shape(a, b, "minimum");
  auto out = detail::acquire_buffer(a.values().size());
  for (std::size_t i = 0; i < out->size(); ++i)
    (*out)[i] = std::min(a.at(static_cast<std::int64_t>(i)),
                         b.at(static_cast<std::int64_t>(i)));
  NodePtr an = a.node(), bn = b.node();
  return make_result(a.shape(), std::move(out), {a, b},
                     [an, bn](const std::vector<float>& g) {
                       const bool da = an->requires_grad,
                                  db = bn->requires_grad;
                       for (std::size_t i = 0; i < g.size(); ++i) {
                         if (V(an)[i] <= V(bn)[i]) {
                           if (da) acc(an, i, g[i]);
                         } else if (db) {
                           acc(bn, i, g[i]);
                         }
                       }
                     });
}

Tensor maximum(const Tensor& a, const Tensor& b) {
  check_same_shape(a, b, "maximum");
  auto out = detail::acquire_buffer(a.values().size());
  for (std::size_t i = 0; i < out->size(); ++i)
    (*out)[i] = std::max(a.at(static_cast<std::int64_t>(i)),
                         b.at(static_cast<std::int64_t>(i)));
  NodePtr an = a.node(), bn = b.node();
  return make_result(a.shape(), std::move(out), {a, b},
                     [an, bn](const std::vector<float>& g) {
                       const bool da = an->requires_grad,
                                  db = bn->requires_grad;
                       for (std::size_t i = 0; i < g.size(); ++i) {
                         if (V(an)[i] >= V(bn)[i]) {
                           if (da) acc(an, i, g[i]);
                         } else if (db) {
                           acc(bn, i, g[i]);
                         }
                       }
                     });
}

// ---------------------------------------------------------------- scalar ---

Tensor add_scalar(const Tensor& a, float s) {
  auto out = ew_forward(a, [s](float v) { return v + s; });
  NodePtr an = a.node();
  return make_result(a.shape(), std::move(out), {a},
                     [an](const std::vector<float>& g) {
                       simd::kernels().acc(G(an).data(), g.data(),
                                           static_cast<std::int64_t>(g.size()));
                     });
}

Tensor mul_scalar(const Tensor& a, float s) {
  const auto vscale = simd::kernels().scale;
  auto out = ew_forward_kernel(
      a, [vscale, s](const float* in, float* o, std::int64_t n) {
        vscale(in, s, o, n);
      });
  NodePtr an = a.node();
  return make_result(a.shape(), std::move(out), {a},
                     [an, s](const std::vector<float>& g) {
                       simd::kernels().acc_scaled(
                           G(an).data(), g.data(), s,
                           static_cast<std::int64_t>(g.size()));
                     });
}

// ----------------------------------------------------------------- unary ---

Tensor neg(const Tensor& a) { return mul_scalar(a, -1.0f); }

Tensor relu(const Tensor& a) {
  auto out = ew_forward_kernel(a, simd::kernels().relu);
  NodePtr an = a.node();
  return make_result(a.shape(), std::move(out), {a},
                     [an](const std::vector<float>& g) {
                       simd::kernels().relu_bwd_acc(
                           V(an).data(), g.data(), G(an).data(),
                           static_cast<std::int64_t>(g.size()));
                     });
}

Tensor tanh_op(const Tensor& a) {
  auto out = ew_forward(a, [](float v) { return std::tanh(v); });
  NodePtr an = a.node();
  // Share the output buffer with the closure instead of copying: no op
  // mutates a result's values, so the saved handle stays valid.
  detail::BufferPtr saved = out;  // tanh'(x) = 1 - tanh(x)^2
  return make_result(a.shape(), std::move(out), {a},
                     [an, saved = std::move(saved)](const std::vector<float>& g) {
                       const std::vector<float>& s = *saved;
                       for (std::size_t i = 0; i < g.size(); ++i)
                         acc(an, i, g[i] * (1.0f - s[i] * s[i]));
                     });
}

Tensor sigmoid(const Tensor& a) {
  auto out =
      ew_forward(a, [](float v) { return 1.0f / (1.0f + std::exp(-v)); });
  NodePtr an = a.node();
  detail::BufferPtr saved = out;
  return make_result(a.shape(), std::move(out), {a},
                     [an, saved = std::move(saved)](const std::vector<float>& g) {
                       const std::vector<float>& s = *saved;
                       for (std::size_t i = 0; i < g.size(); ++i)
                         acc(an, i, g[i] * s[i] * (1.0f - s[i]));
                     });
}

Tensor exp_op(const Tensor& a) {
  auto out = ew_forward(a, [](float v) { return std::exp(v); });
  NodePtr an = a.node();
  detail::BufferPtr saved = out;
  return make_result(a.shape(), std::move(out), {a},
                     [an, saved = std::move(saved)](const std::vector<float>& g) {
                       const std::vector<float>& s = *saved;
                       for (std::size_t i = 0; i < g.size(); ++i)
                         acc(an, i, g[i] * s[i]);
                     });
}

Tensor log_op(const Tensor& a, float eps) {
  auto out = detail::acquire_buffer(a.values().size());
  std::vector<float> safe(a.values().size());
  for (std::size_t i = 0; i < out->size(); ++i) {
    safe[i] = std::max(a.at(static_cast<std::int64_t>(i)), eps);
    (*out)[i] = std::log(safe[i]);
  }
  NodePtr an = a.node();
  return make_result(a.shape(), std::move(out), {a},
                     [an, safe = std::move(safe)](const std::vector<float>& g) {
                       for (std::size_t i = 0; i < g.size(); ++i)
                         acc(an, i, g[i] / safe[i]);
                     });
}

Tensor square(const Tensor& a) {
  auto out = ew_forward(a, [](float v) { return v * v; });
  NodePtr an = a.node();
  return make_result(a.shape(), std::move(out), {a},
                     [an](const std::vector<float>& g) {
                       for (std::size_t i = 0; i < g.size(); ++i)
                         acc(an, i, 2.0f * g[i] * V(an)[i]);
                     });
}

Tensor clamp(const Tensor& a, float lo, float hi) {
  auto out = ew_forward(a, [lo, hi](float v) { return std::clamp(v, lo, hi); });
  NodePtr an = a.node();
  return make_result(a.shape(), std::move(out), {a},
                     [an, lo, hi](const std::vector<float>& g) {
                       for (std::size_t i = 0; i < g.size(); ++i)
                         if (V(an)[i] > lo && V(an)[i] < hi)
                           acc(an, i, g[i]);
                     });
}

// ------------------------------------------------------------------ shape ---

Tensor reshape(const Tensor& a, Shape new_shape) {
  check(numel(new_shape) == a.size(),
        "reshape: element count mismatch " + shape_str(a.shape()) + " -> " +
            shape_str(new_shape));
  NodePtr an = a.node();
  // Alias the input's value buffer: a reshape is a view, not a copy.
  return make_result(std::move(new_shape), an->value, {a},
                     [an](const std::vector<float>& g) {
                       for (std::size_t i = 0; i < g.size(); ++i)
                         acc(an, i, g[i]);
                     });
}

Tensor concat_cols(const std::vector<Tensor>& parts) {
  check(!parts.empty(), "concat_cols: no inputs");
  const int rows = parts[0].shape()[0];
  int total_cols = 0;
  for (const Tensor& p : parts) {
    check(p.dim() == 2, "concat_cols: inputs must be 2-D");
    check(p.shape()[0] == rows, "concat_cols: row count mismatch");
    total_cols += p.shape()[1];
  }
  std::vector<float> out(static_cast<std::size_t>(rows) * total_cols);
  std::vector<NodePtr> nodes;
  std::vector<int> widths;
  for (const Tensor& p : parts) {
    nodes.push_back(p.node());
    widths.push_back(p.shape()[1]);
  }
  int col0 = 0;
  for (std::size_t k = 0; k < parts.size(); ++k) {
    const int w = widths[k];
    for (int r = 0; r < rows; ++r)
      for (int c = 0; c < w; ++c)
        out[static_cast<std::size_t>(r) * total_cols + col0 + c] =
            parts[k].at(static_cast<std::int64_t>(r) * w + c);
    col0 += w;
  }
  return make_result(
      {rows, total_cols}, std::move(out), parts,
      [nodes, widths, rows, total_cols](const std::vector<float>& g) {
        int c0 = 0;
        for (std::size_t k = 0; k < nodes.size(); ++k) {
          const int w = widths[k];
          if (nodes[k]->requires_grad) {
            for (int r = 0; r < rows; ++r)
              for (int c = 0; c < w; ++c)
                acc(nodes[k], static_cast<std::size_t>(r) * w + c,
                    g[static_cast<std::size_t>(r) * total_cols + c0 + c]);
          }
          c0 += w;
        }
      });
}

Tensor concat_rows(const std::vector<Tensor>& parts) {
  check(!parts.empty(), "concat_rows: no inputs");
  const int cols = parts[0].shape()[1];
  int total_rows = 0;
  for (const Tensor& p : parts) {
    check(p.dim() == 2, "concat_rows: inputs must be 2-D");
    check(p.shape()[1] == cols, "concat_rows: column count mismatch");
    total_rows += p.shape()[0];
  }
  std::vector<float> out;
  out.reserve(static_cast<std::size_t>(total_rows) * cols);
  std::vector<NodePtr> nodes;
  std::vector<int> heights;
  for (const Tensor& p : parts) {
    nodes.push_back(p.node());
    heights.push_back(p.shape()[0]);
    out.insert(out.end(), p.values().begin(), p.values().end());
  }
  return make_result({total_rows, cols}, std::move(out), parts,
                     [nodes, heights, cols](const std::vector<float>& g) {
                       std::size_t off = 0;
                       for (std::size_t k = 0; k < nodes.size(); ++k) {
                         const std::size_t n =
                             static_cast<std::size_t>(heights[k]) * cols;
                         if (nodes[k]->requires_grad) {
                           for (std::size_t i = 0; i < n; ++i)
                             acc(nodes[k], i, g[off + i]);
                         }
                         off += n;
                       }
                     });
}

// --------------------------------------------------------------- lin. alg ---

namespace {

/// Original scalar matmul (seed kernel), kept as the reference path.
Tensor matmul_naive(const Tensor& a, const Tensor& b) {
  const int m = a.shape()[0], k = a.shape()[1], n = b.shape()[1];
  std::vector<float> out(static_cast<std::size_t>(m) * n, 0.0f);
  const float* A = a.data();
  const float* B = b.data();
  for (int i = 0; i < m; ++i) {
    for (int kk = 0; kk < k; ++kk) {
      const float av = A[static_cast<std::size_t>(i) * k + kk];
      if (av == 0.0f) continue;
      const float* brow = B + static_cast<std::size_t>(kk) * n;
      float* orow = out.data() + static_cast<std::size_t>(i) * n;
      for (int j = 0; j < n; ++j) orow[j] += av * brow[j];
    }
  }
  NodePtr an = a.node(), bn = b.node();
  return make_result(
      {m, n}, std::move(out), {a, b},
      [an, bn, m, k, n](const std::vector<float>& g) {
        // dA = g @ B^T ; dB = A^T @ g (per-element scatter form).
        const bool da = an->requires_grad, db = bn->requires_grad;
        for (int i = 0; i < m; ++i) {
          for (int j = 0; j < n; ++j) {
            const float gv = g[static_cast<std::size_t>(i) * n + j];
            if (gv == 0.0f) continue;
            for (int kk = 0; kk < k; ++kk) {
              if (da)
                G(an)[static_cast<std::size_t>(i) * k + kk] +=
                    gv * V(bn)[static_cast<std::size_t>(kk) * n + j];
              if (db)
                G(bn)[static_cast<std::size_t>(kk) * n + j] +=
                    gv * V(an)[static_cast<std::size_t>(i) * k + kk];
            }
          }
        }
      });
}

}  // namespace

Tensor matmul(const Tensor& a, const Tensor& b) {
  check(a.dim() == 2 && b.dim() == 2, "matmul: inputs must be 2-D");
  const int m = a.shape()[0], k = a.shape()[1];
  check(b.shape()[0] == k, "matmul: inner dimension mismatch " +
                               shape_str(a.shape()) + " x " +
                               shape_str(b.shape()));
  const int n = b.shape()[1];
  if (naive_kernels()) return matmul_naive(a, b);

  auto out = detail::acquire_buffer(static_cast<std::size_t>(m) * n);
  gemm_nn(m, k, n, a.data(), b.data(), out->data(), /*accumulate=*/false);
  NodePtr an = a.node(), bn = b.node();
  return make_result(
      {m, n}, std::move(out), {a, b},
      [an, bn, m, k, n](const std::vector<float>& g) {
        // Two proper GEMM passes into row-partitioned outputs.
        if (an->requires_grad) {
          // dA[M,K] += g[M,N] · B[K,N]ᵀ
          gemm_nt(m, n, k, g.data(), V(bn).data(), G(an).data(),
                  /*accumulate=*/true);
        }
        if (bn->requires_grad) {
          // dB[K,N] += A[M,K]ᵀ · g[M,N]
          gemm_tn(m, k, n, V(an).data(), g.data(), G(bn).data(),
                  /*accumulate=*/true);
        }
      });
}

Tensor add_rowvec(const Tensor& x, const Tensor& v) {
  check(x.dim() == 2, "add_rowvec: x must be 2-D");
  const int rows = x.shape()[0], cols = x.shape()[1];
  check(v.size() == cols, "add_rowvec: vector length mismatch");
  auto out = detail::acquire_buffer(x.values().size());
  const float* px = x.data();
  const float* pv = v.data();
  float* o = out->data();
  const auto vadd = simd::kernels().add;
  parallel_for(rows, grain_for(cols), [=](std::int64_t r0, std::int64_t r1) {
    for (std::int64_t r = r0; r < r1; ++r)
      vadd(px + r * cols, pv, o + r * cols, cols);
  });
  NodePtr xn = x.node(), vn = v.node();
  return make_result(
      {rows, cols}, std::move(out), {x, v},
      [xn, vn, rows, cols](const std::vector<float>& g) {
        if (xn->requires_grad) {
          float* gx = G(xn).data();
          const float* pg = g.data();
          const auto vacc = simd::kernels().acc;
          parallel_for(static_cast<std::int64_t>(g.size()), kEwGrain,
                       [=](std::int64_t i0, std::int64_t i1) {
                         vacc(gx + i0, pg + i0, i1 - i0);
                       });
        }
        if (vn->requires_grad) {
          // Column sums, accumulated row by row (r ascending) so the order
          // is fixed; each column segment is owned by one chunk.
          float* gv = G(vn).data();
          const float* pg = g.data();
          const auto vacc = simd::kernels().acc;
          parallel_for(cols, grain_for(rows),
                       [=](std::int64_t c0, std::int64_t c1) {
                         for (int r = 0; r < rows; ++r)
                           vacc(gv + c0,
                                pg + static_cast<std::int64_t>(r) * cols + c0,
                                c1 - c0);
                       });
        }
      });
}

Tensor linear(const Tensor& x, const Tensor& w, const Tensor& b) {
  return add_rowvec(matmul(x, w), b);
}

Tensor linear_relu(const Tensor& x, const Tensor& w, const Tensor& b) {
  check(x.dim() == 2 && w.dim() == 2, "linear_relu: inputs must be 2-D");
  const int m = x.shape()[0], k = x.shape()[1], n = w.shape()[1];
  check(w.shape()[0] == k, "linear_relu: inner dimension mismatch " +
                               shape_str(x.shape()) + " x " +
                               shape_str(w.shape()));
  check(b.size() == n, "linear_relu: bias size mismatch");
  // The naive tier has no fused kernel: compose the reference ops so the
  // parity tests can diff against it.
  if (naive_kernels()) return relu(linear(x, w, b));

  auto out = detail::acquire_buffer(static_cast<std::size_t>(m) * n);
  {
    const auto rows = simd::kernels().gemm_nn_rows;
    const auto epilogue = simd::kernels().bias_relu_row;
    const float* X = x.data();
    const float* W = w.data();
    const float* B = b.data();
    float* O = out->data();
    parallel_for(m, grain_for(static_cast<std::int64_t>(k) * n),
                 [=](std::int64_t i0, std::int64_t i1) {
                   rows(i0, i1, k, n, X, k, W, n, O, n, /*accumulate=*/false);
                   for (std::int64_t i = i0; i < i1; ++i)
                     epilogue(O + i * n, B, O + i * n, n);
                 });
  }
  NodePtr xn = x.node(), wn = w.node(), bn = b.node();
  detail::BufferPtr saved = out;  // post-relu activations, shared not copied
  return make_result(
      {m, n}, std::move(out), {x, w, b},
      [xn, wn, bn, m, k, n, saved = std::move(saved)](
          const std::vector<float>& g) {
        // Mask the upstream gradient through the relu once, in scratch.
        const std::int64_t total = static_cast<std::int64_t>(m) * n;
        ScratchLease gm(static_cast<std::size_t>(total));
        std::fill(gm.data(), gm.data() + total, 0.0f);
        simd::kernels().relu_bwd_acc(saved->data(), g.data(), gm.data(),
                                     total);
        if (bn->requires_grad) {
          // db = column sums of the masked gradient, r ascending.
          simd::Kernels const& kr = simd::kernels();
          float* gb = G(bn).data();
          for (int r = 0; r < m; ++r)
            kr.acc(gb, gm.data() + static_cast<std::int64_t>(r) * n, n);
        }
        if (xn->requires_grad) {
          // dx[M,K] += gm[M,N] · W[K,N]ᵀ
          gemm_nt(m, n, k, gm.data(), V(wn).data(), G(xn).data(),
                  /*accumulate=*/true);
        }
        if (wn->requires_grad) {
          // dW[K,N] += X[M,K]ᵀ · gm[M,N]
          gemm_tn(m, k, n, V(xn).data(), gm.data(), G(wn).data(),
                  /*accumulate=*/true);
        }
      });
}

// -------------------------------------------------------------- reductions ---

Tensor sum_all(const Tensor& a) {
  const float s = simd::kernels().reduce_sum(a.data(), a.size());
  NodePtr an = a.node();
  return make_result({1}, {s}, {a}, [an](const std::vector<float>& g) {
    simd::kernels().acc_const(G(an).data(), g[0],
                              static_cast<std::int64_t>(G(an).size()));
  });
}

Tensor mean_all(const Tensor& a) {
  const float inv = 1.0f / static_cast<float>(a.size());
  const float s = simd::kernels().reduce_sum(a.data(), a.size());
  NodePtr an = a.node();
  return make_result({1}, {s * inv}, {a},
                     [an, inv](const std::vector<float>& g) {
                       simd::kernels().acc_const(
                           G(an).data(), g[0] * inv,
                           static_cast<std::int64_t>(G(an).size()));
                     });
}

Tensor mean_axis0(const Tensor& a) {
  check(a.dim() == 2, "mean_axis0: input must be 2-D");
  const int rows = a.shape()[0], cols = a.shape()[1];
  const float inv = 1.0f / static_cast<float>(rows);
  std::vector<float> out(static_cast<std::size_t>(cols), 0.0f);
  const simd::Kernels& kr = simd::kernels();
  for (int r = 0; r < rows; ++r)  // r ascending: fixed accumulation order
    kr.acc(out.data(), a.data() + static_cast<std::int64_t>(r) * cols, cols);
  kr.scale(out.data(), inv, out.data(), cols);
  NodePtr an = a.node();
  return make_result({1, cols}, std::move(out), {a},
                     [an, rows, cols, inv](const std::vector<float>& g) {
                       for (int r = 0; r < rows; ++r)
                         simd::kernels().acc_scaled(
                             G(an).data() +
                                 static_cast<std::int64_t>(r) * cols,
                             g.data(), inv, cols);
                     });
}

Tensor sum_axis1(const Tensor& a) {
  check(a.dim() == 2, "sum_axis1: input must be 2-D");
  const int rows = a.shape()[0], cols = a.shape()[1];
  std::vector<float> out(static_cast<std::size_t>(rows), 0.0f);
  const simd::Kernels& kr = simd::kernels();
  for (int r = 0; r < rows; ++r)
    out[static_cast<std::size_t>(r)] =
        kr.reduce_sum(a.data() + static_cast<std::int64_t>(r) * cols, cols);
  NodePtr an = a.node();
  return make_result({rows, 1}, std::move(out), {a},
                     [an, rows, cols](const std::vector<float>& g) {
                       for (int r = 0; r < rows; ++r)
                         simd::kernels().acc_const(
                             G(an).data() +
                                 static_cast<std::int64_t>(r) * cols,
                             g[static_cast<std::size_t>(r)], cols);
                     });
}

// ----------------------------------------------------------------- softmax ---

Tensor softmax_rows(const Tensor& a) {
  check(a.dim() == 2, "softmax_rows: input must be 2-D");
  const int rows = a.shape()[0], cols = a.shape()[1];
  auto out = detail::acquire_buffer(a.values().size());
  const float* pa = a.data();
  float* po = out->data();
  const auto row_kernel = simd::kernels().softmax_row;
  parallel_for(rows, grain_for(cols), [=](std::int64_t r0, std::int64_t r1) {
    for (std::int64_t r = r0; r < r1; ++r)
      row_kernel(pa + r * cols, po + r * cols, cols);
  });
  NodePtr an = a.node();
  detail::BufferPtr saved = out;  // softmax probabilities, shared not copied
  return make_result(
      a.shape(), std::move(out), {a},
      [an, rows, cols, saved = std::move(saved)](const std::vector<float>& g) {
        // dx = p * g - p * sum(g * p) per row, two vector passes.
        float* ga = G(an).data();
        const float* ps = saved->data();
        const float* pg = g.data();
        const simd::Kernels& kr = simd::kernels();
        parallel_for(rows, grain_for(cols),
                     [=](std::int64_t r0, std::int64_t r1) {
          for (std::int64_t r = r0; r < r1; ++r) {
            const float* p = ps + r * cols;
            const float* gr = pg + r * cols;
            const float dot = kr.dot(gr, p, cols);
            kr.acc_mul(ga + r * cols, p, gr, cols);
            kr.acc_scaled(ga + r * cols, p, -dot, cols);
          }
        });
      });
}

Tensor log_softmax_rows(const Tensor& a) {
  check(a.dim() == 2, "log_softmax_rows: input must be 2-D");
  const int rows = a.shape()[0], cols = a.shape()[1];
  auto out = detail::acquire_buffer(a.values().size());
  const float* pa = a.data();
  float* po = out->data();
  const auto row_kernel = simd::kernels().log_softmax_row;
  parallel_for(rows, grain_for(cols), [=](std::int64_t r0, std::int64_t r1) {
    for (std::int64_t r = r0; r < r1; ++r)
      row_kernel(pa + r * cols, po + r * cols, cols);
  });
  NodePtr an = a.node();
  detail::BufferPtr saved = out;  // log p, shared not copied
  return make_result(
      a.shape(), std::move(out), {a},
      [an, rows, cols, saved = std::move(saved)](const std::vector<float>& g) {
        // dx = g - softmax * sum(g) per row.
        float* ga = G(an).data();
        const float* ps = saved->data();
        const float* pg = g.data();
        const simd::Kernels& kr = simd::kernels();
        parallel_for(rows, grain_for(cols),
                     [=](std::int64_t r0, std::int64_t r1) {
          // exp(log p) is recovered per chunk in thread-local scratch.
          ScratchLease probs(static_cast<std::size_t>(cols));
          for (std::int64_t r = r0; r < r1; ++r) {
            const float* lp = ps + r * cols;
            const float* gr = pg + r * cols;
            const float gsum = kr.reduce_sum(gr, cols);
            for (int c = 0; c < cols; ++c) probs.data()[c] = std::exp(lp[c]);
            kr.acc(ga + r * cols, gr, cols);
            kr.acc_scaled(ga + r * cols, probs.data(), -gsum, cols);
          }
        });
      });
}

// ---------------------------------------------------------------- indexing ---

Tensor gather_rows(const Tensor& x, const std::vector<int>& rows) {
  check(x.dim() == 2, "gather_rows: x must be 2-D");
  const int n = x.shape()[0], d = x.shape()[1];
  for (int r : rows)
    check(r >= 0 && r < n, "gather_rows: row index out of range");
  std::vector<float> out(rows.size() * static_cast<std::size_t>(d));
  for (std::size_t k = 0; k < rows.size(); ++k)
    for (int c = 0; c < d; ++c)
      out[k * d + c] = x.at(static_cast<std::int64_t>(rows[k]) * d + c);
  NodePtr xn = x.node();
  return make_result({static_cast<int>(rows.size()), d}, std::move(out), {x},
                     [xn, rows, d](const std::vector<float>& g) {
                       for (std::size_t k = 0; k < rows.size(); ++k)
                         for (int c = 0; c < d; ++c)
                           G(xn)[static_cast<std::size_t>(rows[k]) * d + c] +=
                               g[k * d + c];
                     });
}

Tensor gather_per_row(const Tensor& x, const std::vector<int>& cols) {
  check(x.dim() == 2, "gather_per_row: x must be 2-D");
  const int b = x.shape()[0], n = x.shape()[1];
  check(static_cast<int>(cols.size()) == b,
        "gather_per_row: one column index per row required");
  for (int c : cols)
    check(c >= 0 && c < n, "gather_per_row: column index out of range");
  std::vector<float> out(static_cast<std::size_t>(b));
  for (int r = 0; r < b; ++r)
    out[static_cast<std::size_t>(r)] =
        x.at(static_cast<std::int64_t>(r) * n + cols[static_cast<std::size_t>(r)]);
  NodePtr xn = x.node();
  return make_result({b}, std::move(out), {x},
                     [xn, cols, n](const std::vector<float>& g) {
                       for (std::size_t r = 0; r < cols.size(); ++r)
                         G(xn)[r * n + cols[r]] += g[r];
                     });
}

// ------------------------------------------------------------ convolutions ---

namespace {

/// Original scalar conv2d (seed kernel), kept as the reference path.
Tensor conv2d_naive(const Tensor& x, const Tensor& w, const Tensor& b,
                    int stride, int pad) {
  const int B = x.shape()[0], IC = x.shape()[1], H = x.shape()[2],
            W = x.shape()[3];
  const int OC = w.shape()[0], KH = w.shape()[2], KW = w.shape()[3];
  const int OH = (H + 2 * pad - KH) / stride + 1;
  const int OW = (W + 2 * pad - KW) / stride + 1;

  std::vector<float> out(static_cast<std::size_t>(B) * OC * OH * OW, 0.0f);
  const float* X = x.data();
  const float* Wt = w.data();
  const float* Bs = b.data();
  auto xi = [&](int bb, int c, int i, int j) {
    return ((static_cast<std::size_t>(bb) * IC + c) * H + i) * W + j;
  };
  auto wi = [&](int oc, int ic, int i, int j) {
    return ((static_cast<std::size_t>(oc) * IC + ic) * KH + i) * KW + j;
  };
  auto oi = [&](int bb, int oc, int i, int j) {
    return ((static_cast<std::size_t>(bb) * OC + oc) * OH + i) * OW + j;
  };
  for (int bb = 0; bb < B; ++bb)
    for (int oc = 0; oc < OC; ++oc)
      for (int oh = 0; oh < OH; ++oh)
        for (int ow = 0; ow < OW; ++ow) {
          float accv = Bs[oc];
          const int ih0 = oh * stride - pad;
          const int iw0 = ow * stride - pad;
          for (int ic = 0; ic < IC; ++ic)
            for (int kh = 0; kh < KH; ++kh) {
              const int ih = ih0 + kh;
              if (ih < 0 || ih >= H) continue;
              for (int kw = 0; kw < KW; ++kw) {
                const int iw = iw0 + kw;
                if (iw < 0 || iw >= W) continue;
                accv += X[xi(bb, ic, ih, iw)] * Wt[wi(oc, ic, kh, kw)];
              }
            }
          out[oi(bb, oc, oh, ow)] = accv;
        }

  NodePtr xn = x.node(), wn = w.node(), bn = b.node();
  return make_result(
      {B, OC, OH, OW}, std::move(out), {x, w, b},
      [xn, wn, bn, B, IC, H, W, OC, KH, KW, OH, OW, stride,
       pad](const std::vector<float>& g) {
        auto xi = [&](int bb, int c, int i, int j) {
          return ((static_cast<std::size_t>(bb) * IC + c) * H + i) * W + j;
        };
        auto wi = [&](int oc, int ic, int i, int j) {
          return ((static_cast<std::size_t>(oc) * IC + ic) * KH + i) * KW + j;
        };
        auto oi = [&](int bb, int oc, int i, int j) {
          return ((static_cast<std::size_t>(bb) * OC + oc) * OH + i) * OW + j;
        };
        const bool dx = xn->requires_grad, dw = wn->requires_grad,
                   db = bn->requires_grad;
        for (int bb = 0; bb < B; ++bb)
          for (int oc = 0; oc < OC; ++oc)
            for (int oh = 0; oh < OH; ++oh)
              for (int ow = 0; ow < OW; ++ow) {
                const float gv = g[oi(bb, oc, oh, ow)];
                if (gv == 0.0f) continue;
                if (db) G(bn)[static_cast<std::size_t>(oc)] += gv;
                const int ih0 = oh * stride - pad;
                const int iw0 = ow * stride - pad;
                for (int ic = 0; ic < IC; ++ic)
                  for (int kh = 0; kh < KH; ++kh) {
                    const int ih = ih0 + kh;
                    if (ih < 0 || ih >= H) continue;
                    for (int kw = 0; kw < KW; ++kw) {
                      const int iw = iw0 + kw;
                      if (iw < 0 || iw >= W) continue;
                      if (dx)
                        G(xn)[xi(bb, ic, ih, iw)] +=
                            gv * V(wn)[wi(oc, ic, kh, kw)];
                      if (dw)
                        G(wn)[wi(oc, ic, kh, kw)] +=
                            gv * V(xn)[xi(bb, ic, ih, iw)];
                    }
                  }
              }
      });
}

/// Original scalar conv_transpose2d (seed kernel), reference path.
Tensor conv_transpose2d_naive(const Tensor& x, const Tensor& w,
                              const Tensor& b, int stride, int pad) {
  const int B = x.shape()[0], IC = x.shape()[1], H = x.shape()[2],
            W = x.shape()[3];
  const int OC = w.shape()[1], KH = w.shape()[2], KW = w.shape()[3];
  const int OH = (H - 1) * stride - 2 * pad + KH;
  const int OW = (W - 1) * stride - 2 * pad + KW;

  std::vector<float> out(static_cast<std::size_t>(B) * OC * OH * OW, 0.0f);
  auto xi = [&](int bb, int c, int i, int j) {
    return ((static_cast<std::size_t>(bb) * IC + c) * H + i) * W + j;
  };
  auto wi = [&](int ic, int oc, int i, int j) {
    return ((static_cast<std::size_t>(ic) * OC + oc) * KH + i) * KW + j;
  };
  auto oi = [&](int bb, int oc, int i, int j) {
    return ((static_cast<std::size_t>(bb) * OC + oc) * OH + i) * OW + j;
  };
  for (int bb = 0; bb < B; ++bb)
    for (int oc = 0; oc < OC; ++oc)
      for (int oh = 0; oh < OH; ++oh)
        for (int ow = 0; ow < OW; ++ow) out[oi(bb, oc, oh, ow)] = b.at(oc);
  for (int bb = 0; bb < B; ++bb)
    for (int ic = 0; ic < IC; ++ic)
      for (int ih = 0; ih < H; ++ih)
        for (int iw = 0; iw < W; ++iw) {
          const float xv = x.at(static_cast<std::int64_t>(xi(bb, ic, ih, iw)));
          if (xv == 0.0f) continue;
          for (int oc = 0; oc < OC; ++oc)
            for (int kh = 0; kh < KH; ++kh) {
              const int oh = ih * stride - pad + kh;
              if (oh < 0 || oh >= OH) continue;
              for (int kw = 0; kw < KW; ++kw) {
                const int ow = iw * stride - pad + kw;
                if (ow < 0 || ow >= OW) continue;
                out[oi(bb, oc, oh, ow)] += xv * w.at(static_cast<std::int64_t>(
                                                wi(ic, oc, kh, kw)));
              }
            }
        }

  NodePtr xn = x.node(), wn = w.node(), bn = b.node();
  return make_result(
      {B, OC, OH, OW}, std::move(out), {x, w, b},
      [xn, wn, bn, B, IC, H, W, OC, KH, KW, OH, OW, stride,
       pad](const std::vector<float>& g) {
        auto xi = [&](int bb, int c, int i, int j) {
          return ((static_cast<std::size_t>(bb) * IC + c) * H + i) * W + j;
        };
        auto wi = [&](int ic, int oc, int i, int j) {
          return ((static_cast<std::size_t>(ic) * OC + oc) * KH + i) * KW + j;
        };
        auto oi = [&](int bb, int oc, int i, int j) {
          return ((static_cast<std::size_t>(bb) * OC + oc) * OH + i) * OW + j;
        };
        const bool dx = xn->requires_grad, dw = wn->requires_grad,
                   db = bn->requires_grad;
        // Bias gradient: sum over batch and spatial dims.
        if (db) {
          for (int bb = 0; bb < B; ++bb)
            for (int oc = 0; oc < OC; ++oc)
              for (int oh = 0; oh < OH; ++oh)
                for (int ow = 0; ow < OW; ++ow)
                  G(bn)[static_cast<std::size_t>(oc)] += g[oi(bb, oc, oh, ow)];
        }
        for (int bb = 0; bb < B; ++bb)
          for (int ic = 0; ic < IC; ++ic)
            for (int ih = 0; ih < H; ++ih)
              for (int iw = 0; iw < W; ++iw) {
                const float xv = V(xn)[xi(bb, ic, ih, iw)];
                float dxv = 0.0f;
                for (int oc = 0; oc < OC; ++oc)
                  for (int kh = 0; kh < KH; ++kh) {
                    const int oh = ih * stride - pad + kh;
                    if (oh < 0 || oh >= OH) continue;
                    for (int kw = 0; kw < KW; ++kw) {
                      const int ow = iw * stride - pad + kw;
                      if (ow < 0 || ow >= OW) continue;
                      const float gv = g[oi(bb, oc, oh, ow)];
                      dxv += gv * V(wn)[wi(ic, oc, kh, kw)];
                      if (dw) G(wn)[wi(ic, oc, kh, kw)] += gv * xv;
                    }
                  }
                if (dx) G(xn)[xi(bb, ic, ih, iw)] += dxv;
              }
      });
}

}  // namespace

Tensor conv2d(const Tensor& x, const Tensor& w, const Tensor& b, int stride,
              int pad) {
  check(x.dim() == 4, "conv2d: input must be NCHW");
  check(w.dim() == 4, "conv2d: weight must be [OC, IC, KH, KW]");
  const int B = x.shape()[0], IC = x.shape()[1], H = x.shape()[2],
            W = x.shape()[3];
  const int OC = w.shape()[0], KH = w.shape()[2], KW = w.shape()[3];
  check(w.shape()[1] == IC, "conv2d: channel mismatch");
  check(b.size() == OC, "conv2d: bias size mismatch");
  const int OH = (H + 2 * pad - KH) / stride + 1;
  const int OW = (W + 2 * pad - KW) / stride + 1;
  check(OH > 0 && OW > 0, "conv2d: output would be empty");
  if (naive_kernels()) return conv2d_naive(x, w, b, stride, pad);

  const std::int64_t CK = static_cast<std::int64_t>(IC) * KH * KW;
  const std::int64_t ohw = static_cast<std::int64_t>(OH) * OW;
  const std::int64_t cols = static_cast<std::int64_t>(B) * ohw;

  // Y[OC, B*OH*OW] = Wmat[OC, CK] · im2col(x); then scatter + bias.  The
  // workspace comes from the scratch arena, so the im2col column buffer
  // persists across training iterations instead of cycling the pool.
  ScratchLease col(static_cast<std::size_t>(CK * cols));
  im2col(x.data(), B, IC, H, W, KH, KW, OH, OW, stride, pad, col.data());
  ScratchLease ymat(static_cast<std::size_t>(OC * cols));
  gemm_nn(OC, CK, cols, w.data(), col.data(), ymat.data(),
          /*accumulate=*/false);

  auto out = detail::acquire_buffer(static_cast<std::size_t>(B) * OC * ohw);
  {
    const float* ym = ymat.data();
    const float* bias = b.data();
    float* po = out->data();
    parallel_for(static_cast<std::int64_t>(B) * OC, grain_for(ohw),
                 [=](std::int64_t t0, std::int64_t t1) {
      for (std::int64_t t = t0; t < t1; ++t) {
        const std::int64_t bb = t / OC, oc = t % OC;
        const float* src = ym + oc * cols + bb * ohw;
        float* dst = po + (bb * OC + oc) * ohw;
        const float bv = bias[oc];
        for (std::int64_t i = 0; i < ohw; ++i) dst[i] = src[i] + bv;
      }
    });
  }

  NodePtr xn = x.node(), wn = w.node(), bn = b.node();
  return make_result(
      {B, OC, OH, OW}, std::move(out), {x, w, b},
      [xn, wn, bn, B, IC, H, W, OC, KH, KW, OH, OW, stride, pad, CK, ohw,
       cols](const std::vector<float>& g) {
        // Gather g into channel-major [OC, B*OH*OW].
        ScratchLease gmat(static_cast<std::size_t>(OC * cols));
        to_channel_major(g.data(), B, OC, ohw, gmat.data());

        if (bn->requires_grad) {
          float* gb = G(bn).data();
          const float* gm = gmat.data();
          const auto rsum = simd::kernels().reduce_sum;
          for (int oc = 0; oc < OC; ++oc)
            gb[oc] += rsum(gm + static_cast<std::int64_t>(oc) * cols, cols);
        }
        if (wn->requires_grad) {
          // dW[OC, CK] += g_mat · colᵀ — recompute col from the saved input,
          // then accumulate image by image so the contraction parallelizes
          // across the batch (not just over the OC rows).
          ScratchLease col(static_cast<std::size_t>(CK * cols));
          im2col(V(xn).data(), B, IC, H, W, KH, KW, OH, OW, stride, pad,
                 col.data());
          gemm_nt_batched_acc(B, OC, ohw, CK, gmat.data(), col.data(),
                              G(wn).data());
        }
        if (xn->requires_grad) {
          // dcol[CK, B*OH*OW] = Wmatᵀ · g_mat; then col2im-accumulate.
          ScratchLease dcol(static_cast<std::size_t>(CK * cols));
          gemm_tn(OC, CK, cols, V(wn).data(), gmat.data(), dcol.data(),
                  /*accumulate=*/false);
          col2im_acc(dcol.data(), B, IC, H, W, KH, KW, OH, OW, stride, pad,
                     G(xn).data());
        }
      });
}

Tensor conv_transpose2d(const Tensor& x, const Tensor& w, const Tensor& b,
                        int stride, int pad) {
  check(x.dim() == 4, "conv_transpose2d: input must be NCHW");
  check(w.dim() == 4, "conv_transpose2d: weight must be [IC, OC, KH, KW]");
  const int B = x.shape()[0], IC = x.shape()[1], H = x.shape()[2],
            W = x.shape()[3];
  const int OC = w.shape()[1], KH = w.shape()[2], KW = w.shape()[3];
  check(w.shape()[0] == IC, "conv_transpose2d: channel mismatch");
  check(b.size() == OC, "conv_transpose2d: bias size mismatch");
  const int OH = (H - 1) * stride - 2 * pad + KH;
  const int OW = (W - 1) * stride - 2 * pad + KW;
  check(OH > 0 && OW > 0, "conv_transpose2d: output would be empty");
  if (naive_kernels()) return conv_transpose2d_naive(x, w, b, stride, pad);

  // The transposed conv is conv2d's input-gradient: with Wmat viewed as
  // [IC, OC*KH*KW], col[OC*KH*KW, B*H*W] = Wmatᵀ · x_mat, and the output is
  // col2im(col) over the OUTPUT grid (patch positions indexed by the input).
  const std::int64_t CK = static_cast<std::int64_t>(OC) * KH * KW;
  const std::int64_t hw = static_cast<std::int64_t>(H) * W;
  const std::int64_t cols = static_cast<std::int64_t>(B) * hw;
  const std::int64_t ohw = static_cast<std::int64_t>(OH) * OW;

  ScratchLease xmat(static_cast<std::size_t>(IC * cols));
  to_channel_major(x.data(), B, IC, hw, xmat.data());
  ScratchLease col(static_cast<std::size_t>(CK * cols));
  gemm_tn(IC, CK, cols, w.data(), xmat.data(), col.data(),
          /*accumulate=*/false);

  auto out = detail::acquire_buffer(static_cast<std::size_t>(B) * OC * ohw);
  {
    // Initialize with bias, then scatter the column buffer.  col2im_acc
    // with swapped roles: the "output grid" is H x W, the image is OH x OW.
    const float* bias = b.data();
    float* po = out->data();
    parallel_for(static_cast<std::int64_t>(B) * OC, grain_for(ohw),
                 [=](std::int64_t t0, std::int64_t t1) {
      for (std::int64_t t = t0; t < t1; ++t) {
        const std::int64_t oc = t % OC;
        std::fill(po + t * ohw, po + (t + 1) * ohw, bias[oc]);
      }
    });
  }
  col2im_acc(col.data(), B, OC, OH, OW, KH, KW, H, W, stride, pad,
             out->data());

  NodePtr xn = x.node(), wn = w.node(), bn = b.node();
  return make_result(
      {B, OC, OH, OW}, std::move(out), {x, w, b},
      [xn, wn, bn, B, IC, H, W, OC, KH, KW, OH, OW, stride, pad, CK, hw, cols,
       ohw](const std::vector<float>& g) {
        if (bn->requires_grad) {
          float* gb = G(bn).data();
          const auto rsum = simd::kernels().reduce_sum;
          for (int oc = 0; oc < OC; ++oc) {
            float s = 0.0f;
            for (int bb = 0; bb < B; ++bb)
              s += rsum(g.data() +
                            (static_cast<std::int64_t>(bb) * OC + oc) * ohw,
                        ohw);
            gb[oc] += s;
          }
        }
        if (!xn->requires_grad && !wn->requires_grad) return;
        // dcol = im2col(g) over the input grid positions.
        ScratchLease dcol(static_cast<std::size_t>(CK * cols));
        im2col(g.data(), B, OC, OH, OW, KH, KW, H, W, stride, pad,
               dcol.data());
        if (xn->requires_grad) {
          // dx_mat[IC, B*H*W] = Wmat · dcol, scattered back to NCHW.
          ScratchLease dxmat(static_cast<std::size_t>(IC * cols));
          gemm_nn(IC, CK, cols, V(wn).data(), dcol.data(), dxmat.data(),
                  /*accumulate=*/false);
          from_channel_major_acc(dxmat.data(), B, IC, hw, G(xn).data());
        }
        if (wn->requires_grad) {
          // dWmat[IC, CK] += x_mat · dcolᵀ, accumulated image by image so
          // the contraction parallelizes across the batch.
          ScratchLease xmat(static_cast<std::size_t>(IC * cols));
          to_channel_major(V(xn).data(), B, IC, hw, xmat.data());
          gemm_nt_batched_acc(B, IC, hw, CK, xmat.data(), dcol.data(),
                              G(wn).data());
        }
      });
}

// ------------------------------------------------------------------- losses ---

Tensor mse_loss(const Tensor& pred, const Tensor& target) {
  check_same_shape(pred, target, "mse_loss");
  return mean_all(square(sub(pred, target)));
}

}  // namespace afp::num
