#include "numeric/ops.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "numeric/parallel.hpp"

namespace afp::num {

namespace {

using detail::Node;
using NodePtr = std::shared_ptr<Node>;

void check(bool cond, const std::string& msg) {
  if (!cond) throw std::invalid_argument(msg);
}

void check_same_shape(const Tensor& a, const Tensor& b, const char* op) {
  check(a.shape() == b.shape(), std::string(op) + ": shape mismatch " +
                                    shape_str(a.shape()) + " vs " +
                                    shape_str(b.shape()));
}

const std::vector<float>& V(const NodePtr& n) { return *n->value; }
std::vector<float>& G(const NodePtr& n) { return *n->grad; }

/// Accumulates g into n->grad.  Callers must have checked requires_grad —
/// gradient buffers are lazily allocated and only exist for graph nodes.
void acc(const NodePtr& n, std::size_t i, float g) { (*n->grad)[i] += g; }

/// Minimum elements per chunk for elementwise parallel loops.
constexpr std::int64_t kEwGrain = 1 << 14;

/// Chunk grain that targets ~32k inner operations per chunk when every
/// outer index costs `work_per_index` operations.
std::int64_t grain_for(std::int64_t work_per_index) {
  return std::max<std::int64_t>(
      1, (std::int64_t{1} << 15) / std::max<std::int64_t>(1, work_per_index));
}

bool g_naive_kernels = [] {
  if (const char* s = std::getenv("AFP_NAIVE_KERNELS")) {
    return std::atoi(s) != 0;
  }
  return false;
}();

// ====================================================================== GEMM
//
// All three kernels are row-parallel over their output matrix: each output
// row is produced entirely by one chunk with a fixed accumulation order,
// so results do not depend on the thread count.

/// C[M,N] (+)= A[M,K] · B[K,N].  Register-blocked over 4 output rows (each
/// B row is loaded once per 4 C-row updates) with the C rows hot in L1.
void gemm_nn(std::int64_t M, std::int64_t K, std::int64_t N, const float* A,
             const float* B, float* C, bool accumulate) {
  parallel_for(M, grain_for(K * N), [=](std::int64_t i0, std::int64_t i1) {
    if (!accumulate) std::fill(C + i0 * N, C + i1 * N, 0.0f);
    std::int64_t i = i0;
    for (; i + 4 <= i1; i += 4) {
      const float* a0 = A + i * K;
      const float* a1 = a0 + K;
      const float* a2 = a1 + K;
      const float* a3 = a2 + K;
      float* c0 = C + i * N;
      float* c1 = c0 + N;
      float* c2 = c1 + N;
      float* c3 = c2 + N;
      for (std::int64_t k = 0; k < K; ++k) {
        const float* b = B + k * N;
        const float v0 = a0[k], v1 = a1[k], v2 = a2[k], v3 = a3[k];
        for (std::int64_t j = 0; j < N; ++j) {
          const float bv = b[j];
          c0[j] += v0 * bv;
          c1[j] += v1 * bv;
          c2[j] += v2 * bv;
          c3[j] += v3 * bv;
        }
      }
    }
    // Remainder rows: plain ikj.  No zero-skip here — the blocked path
    // always accumulates, and which path a row takes depends on the chunk
    // boundaries, so both must use the exact same FP operation sequence to
    // keep results independent of the thread count.
    for (; i < i1; ++i) {
      const float* a = A + i * K;
      float* c = C + i * N;
      for (std::int64_t k = 0; k < K; ++k) {
        const float av = a[k];
        const float* b = B + k * N;
        for (std::int64_t j = 0; j < N; ++j) c[j] += av * b[j];
      }
    }
  });
}

/// C[M,N] (+)= A[M,K] · B[N,K]ᵀ (rows of B are dotted against rows of A).
void gemm_nt(std::int64_t M, std::int64_t K, std::int64_t N, const float* A,
             const float* B, float* C, bool accumulate) {
  parallel_for(M, grain_for(K * N), [=](std::int64_t i0, std::int64_t i1) {
    for (std::int64_t i = i0; i < i1; ++i) {
      const float* a = A + i * K;
      float* c = C + i * N;
      for (std::int64_t j = 0; j < N; ++j) {
        const float* b = B + j * K;
        float s0 = 0.0f, s1 = 0.0f, s2 = 0.0f, s3 = 0.0f;
        std::int64_t k = 0;
        for (; k + 4 <= K; k += 4) {
          s0 += a[k] * b[k];
          s1 += a[k + 1] * b[k + 1];
          s2 += a[k + 2] * b[k + 2];
          s3 += a[k + 3] * b[k + 3];
        }
        float s = (s0 + s1) + (s2 + s3);
        for (; k < K; ++k) s += a[k] * b[k];
        if (accumulate) c[j] += s;
        else c[j] = s;
      }
    }
  });
}

/// C[K,N] (+)= A[M,K]ᵀ · B[M,N].  Row-parallel over C (i.e. over K),
/// register-blocked over 4 output rows so each B row is loaded once per 4
/// C-row updates and the A column reads become contiguous 4-float loads.
void gemm_tn(std::int64_t M, std::int64_t K, std::int64_t N, const float* A,
             const float* B, float* C, bool accumulate) {
  parallel_for(K, grain_for(M * N), [=](std::int64_t k0, std::int64_t k1) {
    if (!accumulate) std::fill(C + k0 * N, C + k1 * N, 0.0f);
    std::int64_t k = k0;
    for (; k + 4 <= k1; k += 4) {
      float* c0 = C + k * N;
      float* c1 = c0 + N;
      float* c2 = c1 + N;
      float* c3 = c2 + N;
      for (std::int64_t i = 0; i < M; ++i) {
        const float* a = A + i * K + k;
        const float v0 = a[0], v1 = a[1], v2 = a[2], v3 = a[3];
        const float* b = B + i * N;
        for (std::int64_t j = 0; j < N; ++j) {
          const float bv = b[j];
          c0[j] += v0 * bv;
          c1[j] += v1 * bv;
          c2[j] += v2 * bv;
          c3[j] += v3 * bv;
        }
      }
    }
    // Remainder rows: no zero-skip, same reasoning as gemm_nn — the FP
    // operation sequence must match the blocked path exactly.
    for (; k < k1; ++k) {
      float* c = C + k * N;
      for (std::int64_t i = 0; i < M; ++i) {
        const float av = A[i * K + k];
        const float* b = B + i * N;
        for (std::int64_t j = 0; j < N; ++j) c[j] += av * b[j];
      }
    }
  });
}

// ================================================================ im2col ===
//
// Batched layout: col is [IC*KH*KW, B*OH*OW]; column index is
// b*OH*OW + oh*OW + ow.  The whole batch lowers to ONE GEMM per conv.

void im2col(const float* X, int B, int IC, int H, int W, int KH, int KW,
            int OH, int OW, int stride, int pad, float* col) {
  const std::int64_t CK = static_cast<std::int64_t>(IC) * KH * KW;
  const std::int64_t cols = static_cast<std::int64_t>(B) * OH * OW;
  parallel_for(CK, grain_for(cols), [=](std::int64_t r0, std::int64_t r1) {
    for (std::int64_t r = r0; r < r1; ++r) {
      const int kw = static_cast<int>(r % KW);
      const int kh = static_cast<int>((r / KW) % KH);
      const int ic = static_cast<int>(r / (static_cast<std::int64_t>(KW) * KH));
      float* dst = col + r * cols;
      for (int b = 0; b < B; ++b) {
        const float* src =
            X + (static_cast<std::int64_t>(b) * IC + ic) * H * W;
        float* d = dst + static_cast<std::int64_t>(b) * OH * OW;
        for (int oh = 0; oh < OH; ++oh, d += OW) {
          const int ih = oh * stride - pad + kh;
          if (ih < 0 || ih >= H) {
            std::fill(d, d + OW, 0.0f);
            continue;
          }
          const float* srow = src + static_cast<std::int64_t>(ih) * W;
          for (int ow = 0; ow < OW; ++ow) {
            const int iw = ow * stride - pad + kw;
            d[ow] = (iw >= 0 && iw < W) ? srow[iw] : 0.0f;
          }
        }
      }
    }
  });
}

/// Scatters col (same layout as im2col) back into X, accumulating.
/// Parallel over the batch: each image is owned by one chunk.
void col2im_acc(const float* col, int B, int IC, int H, int W, int KH, int KW,
                int OH, int OW, int stride, int pad, float* dX) {
  const std::int64_t CK = static_cast<std::int64_t>(IC) * KH * KW;
  const std::int64_t cols = static_cast<std::int64_t>(B) * OH * OW;
  parallel_for(B, grain_for(CK * OH * OW),
               [=](std::int64_t b0, std::int64_t b1) {
    for (std::int64_t b = b0; b < b1; ++b) {
      for (std::int64_t r = 0; r < CK; ++r) {
        const int kw = static_cast<int>(r % KW);
        const int kh = static_cast<int>((r / KW) % KH);
        const int ic =
            static_cast<int>(r / (static_cast<std::int64_t>(KW) * KH));
        const float* src = col + r * cols + b * OH * OW;
        float* dst = dX + (b * IC + ic) * H * W;
        for (int oh = 0; oh < OH; ++oh) {
          const int ih = oh * stride - pad + kh;
          if (ih < 0 || ih >= H) continue;
          float* drow = dst + static_cast<std::int64_t>(ih) * W;
          const float* srow = src + static_cast<std::int64_t>(oh) * OW;
          for (int ow = 0; ow < OW; ++ow) {
            const int iw = ow * stride - pad + kw;
            if (iw >= 0 && iw < W) drow[iw] += srow[ow];
          }
        }
      }
    }
  });
}

/// Gathers NCHW x into channel-major x_mat [C, B*H*W] (column b*HW + i).
void to_channel_major(const float* X, int B, int C, std::int64_t HW,
                      float* Xmat) {
  const std::int64_t total = static_cast<std::int64_t>(B) * C;
  parallel_for(total, grain_for(HW), [=](std::int64_t t0, std::int64_t t1) {
    for (std::int64_t t = t0; t < t1; ++t) {
      const std::int64_t b = t / C, c = t % C;
      std::copy(X + (b * C + c) * HW, X + (b * C + c) * HW + HW,
                Xmat + c * (B * HW) + b * HW);
    }
  });
}

/// Scatters channel-major mat [C, B*H*W] back to NCHW, accumulating.
void from_channel_major_acc(const float* Xmat, int B, int C, std::int64_t HW,
                            float* X) {
  const std::int64_t total = static_cast<std::int64_t>(B) * C;
  parallel_for(total, grain_for(HW), [=](std::int64_t t0, std::int64_t t1) {
    for (std::int64_t t = t0; t < t1; ++t) {
      const std::int64_t b = t / C, c = t % C;
      const float* src = Xmat + c * (B * HW) + b * HW;
      float* dst = X + (b * C + c) * HW;
      for (std::int64_t i = 0; i < HW; ++i) dst[i] += src[i];
    }
  });
}

// ============================================================ elementwise ===

template <class Fwd>
detail::BufferPtr ew_forward(const Tensor& a, Fwd&& f) {
  auto out = detail::acquire_buffer(a.values().size());
  const float* in = a.data();
  float* o = out->data();
  parallel_for(static_cast<std::int64_t>(out->size()), kEwGrain,
               [&](std::int64_t i0, std::int64_t i1) {
                 for (std::int64_t i = i0; i < i1; ++i)
                   o[i] = f(in[static_cast<std::size_t>(i)]);
               });
  return out;
}

}  // namespace

bool naive_kernels() { return g_naive_kernels; }
void set_naive_kernels(bool naive) { g_naive_kernels = naive; }

// ---------------------------------------------------------------- binary ---

Tensor add(const Tensor& a, const Tensor& b) {
  check_same_shape(a, b, "add");
  auto out = detail::acquire_buffer(a.values().size());
  const float* pa = a.data();
  const float* pb = b.data();
  float* o = out->data();
  parallel_for(static_cast<std::int64_t>(out->size()), kEwGrain,
               [&](std::int64_t i0, std::int64_t i1) {
                 for (std::int64_t i = i0; i < i1; ++i) o[i] = pa[i] + pb[i];
               });
  NodePtr an = a.node(), bn = b.node();
  return make_result(a.shape(), std::move(out), {a, b},
                     [an, bn](const std::vector<float>& g) {
                       const bool da = an->requires_grad,
                                  db = bn->requires_grad;
                       for (std::size_t i = 0; i < g.size(); ++i) {
                         if (da) acc(an, i, g[i]);
                         if (db) acc(bn, i, g[i]);
                       }
                     });
}

Tensor sub(const Tensor& a, const Tensor& b) {
  check_same_shape(a, b, "sub");
  auto out = detail::acquire_buffer(a.values().size());
  const float* pa = a.data();
  const float* pb = b.data();
  float* o = out->data();
  parallel_for(static_cast<std::int64_t>(out->size()), kEwGrain,
               [&](std::int64_t i0, std::int64_t i1) {
                 for (std::int64_t i = i0; i < i1; ++i) o[i] = pa[i] - pb[i];
               });
  NodePtr an = a.node(), bn = b.node();
  return make_result(a.shape(), std::move(out), {a, b},
                     [an, bn](const std::vector<float>& g) {
                       const bool da = an->requires_grad,
                                  db = bn->requires_grad;
                       for (std::size_t i = 0; i < g.size(); ++i) {
                         if (da) acc(an, i, g[i]);
                         if (db) acc(bn, i, -g[i]);
                       }
                     });
}

Tensor mul(const Tensor& a, const Tensor& b) {
  check_same_shape(a, b, "mul");
  auto out = detail::acquire_buffer(a.values().size());
  const float* pa = a.data();
  const float* pb = b.data();
  float* o = out->data();
  parallel_for(static_cast<std::int64_t>(out->size()), kEwGrain,
               [&](std::int64_t i0, std::int64_t i1) {
                 for (std::int64_t i = i0; i < i1; ++i) o[i] = pa[i] * pb[i];
               });
  NodePtr an = a.node(), bn = b.node();
  return make_result(a.shape(), std::move(out), {a, b},
                     [an, bn](const std::vector<float>& g) {
                       const bool da = an->requires_grad,
                                  db = bn->requires_grad;
                       for (std::size_t i = 0; i < g.size(); ++i) {
                         if (da) acc(an, i, g[i] * V(bn)[i]);
                         if (db) acc(bn, i, g[i] * V(an)[i]);
                       }
                     });
}

Tensor div(const Tensor& a, const Tensor& b) {
  check_same_shape(a, b, "div");
  auto out = detail::acquire_buffer(a.values().size());
  const float* pa = a.data();
  const float* pb = b.data();
  float* o = out->data();
  for (std::size_t i = 0; i < out->size(); ++i) o[i] = pa[i] / pb[i];
  NodePtr an = a.node(), bn = b.node();
  return make_result(a.shape(), std::move(out), {a, b},
                     [an, bn](const std::vector<float>& g) {
                       const bool da = an->requires_grad,
                                  db = bn->requires_grad;
                       for (std::size_t i = 0; i < g.size(); ++i) {
                         const float inv = 1.0f / V(bn)[i];
                         if (da) acc(an, i, g[i] * inv);
                         if (db) acc(bn, i, -g[i] * V(an)[i] * inv * inv);
                       }
                     });
}

Tensor minimum(const Tensor& a, const Tensor& b) {
  check_same_shape(a, b, "minimum");
  auto out = detail::acquire_buffer(a.values().size());
  for (std::size_t i = 0; i < out->size(); ++i)
    (*out)[i] = std::min(a.at(static_cast<std::int64_t>(i)),
                         b.at(static_cast<std::int64_t>(i)));
  NodePtr an = a.node(), bn = b.node();
  return make_result(a.shape(), std::move(out), {a, b},
                     [an, bn](const std::vector<float>& g) {
                       const bool da = an->requires_grad,
                                  db = bn->requires_grad;
                       for (std::size_t i = 0; i < g.size(); ++i) {
                         if (V(an)[i] <= V(bn)[i]) {
                           if (da) acc(an, i, g[i]);
                         } else if (db) {
                           acc(bn, i, g[i]);
                         }
                       }
                     });
}

Tensor maximum(const Tensor& a, const Tensor& b) {
  check_same_shape(a, b, "maximum");
  auto out = detail::acquire_buffer(a.values().size());
  for (std::size_t i = 0; i < out->size(); ++i)
    (*out)[i] = std::max(a.at(static_cast<std::int64_t>(i)),
                         b.at(static_cast<std::int64_t>(i)));
  NodePtr an = a.node(), bn = b.node();
  return make_result(a.shape(), std::move(out), {a, b},
                     [an, bn](const std::vector<float>& g) {
                       const bool da = an->requires_grad,
                                  db = bn->requires_grad;
                       for (std::size_t i = 0; i < g.size(); ++i) {
                         if (V(an)[i] >= V(bn)[i]) {
                           if (da) acc(an, i, g[i]);
                         } else if (db) {
                           acc(bn, i, g[i]);
                         }
                       }
                     });
}

// ---------------------------------------------------------------- scalar ---

Tensor add_scalar(const Tensor& a, float s) {
  auto out = ew_forward(a, [s](float v) { return v + s; });
  NodePtr an = a.node();
  return make_result(a.shape(), std::move(out), {a},
                     [an](const std::vector<float>& g) {
                       for (std::size_t i = 0; i < g.size(); ++i)
                         acc(an, i, g[i]);
                     });
}

Tensor mul_scalar(const Tensor& a, float s) {
  auto out = ew_forward(a, [s](float v) { return v * s; });
  NodePtr an = a.node();
  return make_result(a.shape(), std::move(out), {a},
                     [an, s](const std::vector<float>& g) {
                       for (std::size_t i = 0; i < g.size(); ++i)
                         acc(an, i, g[i] * s);
                     });
}

// ----------------------------------------------------------------- unary ---

Tensor neg(const Tensor& a) { return mul_scalar(a, -1.0f); }

Tensor relu(const Tensor& a) {
  auto out = ew_forward(a, [](float v) { return std::max(0.0f, v); });
  NodePtr an = a.node();
  return make_result(a.shape(), std::move(out), {a},
                     [an](const std::vector<float>& g) {
                       for (std::size_t i = 0; i < g.size(); ++i)
                         if (V(an)[i] > 0.0f) acc(an, i, g[i]);
                     });
}

Tensor tanh_op(const Tensor& a) {
  auto out = ew_forward(a, [](float v) { return std::tanh(v); });
  NodePtr an = a.node();
  // Share the output buffer with the closure instead of copying: no op
  // mutates a result's values, so the saved handle stays valid.
  detail::BufferPtr saved = out;  // tanh'(x) = 1 - tanh(x)^2
  return make_result(a.shape(), std::move(out), {a},
                     [an, saved = std::move(saved)](const std::vector<float>& g) {
                       const std::vector<float>& s = *saved;
                       for (std::size_t i = 0; i < g.size(); ++i)
                         acc(an, i, g[i] * (1.0f - s[i] * s[i]));
                     });
}

Tensor sigmoid(const Tensor& a) {
  auto out =
      ew_forward(a, [](float v) { return 1.0f / (1.0f + std::exp(-v)); });
  NodePtr an = a.node();
  detail::BufferPtr saved = out;
  return make_result(a.shape(), std::move(out), {a},
                     [an, saved = std::move(saved)](const std::vector<float>& g) {
                       const std::vector<float>& s = *saved;
                       for (std::size_t i = 0; i < g.size(); ++i)
                         acc(an, i, g[i] * s[i] * (1.0f - s[i]));
                     });
}

Tensor exp_op(const Tensor& a) {
  auto out = ew_forward(a, [](float v) { return std::exp(v); });
  NodePtr an = a.node();
  detail::BufferPtr saved = out;
  return make_result(a.shape(), std::move(out), {a},
                     [an, saved = std::move(saved)](const std::vector<float>& g) {
                       const std::vector<float>& s = *saved;
                       for (std::size_t i = 0; i < g.size(); ++i)
                         acc(an, i, g[i] * s[i]);
                     });
}

Tensor log_op(const Tensor& a, float eps) {
  auto out = detail::acquire_buffer(a.values().size());
  std::vector<float> safe(a.values().size());
  for (std::size_t i = 0; i < out->size(); ++i) {
    safe[i] = std::max(a.at(static_cast<std::int64_t>(i)), eps);
    (*out)[i] = std::log(safe[i]);
  }
  NodePtr an = a.node();
  return make_result(a.shape(), std::move(out), {a},
                     [an, safe = std::move(safe)](const std::vector<float>& g) {
                       for (std::size_t i = 0; i < g.size(); ++i)
                         acc(an, i, g[i] / safe[i]);
                     });
}

Tensor square(const Tensor& a) {
  auto out = ew_forward(a, [](float v) { return v * v; });
  NodePtr an = a.node();
  return make_result(a.shape(), std::move(out), {a},
                     [an](const std::vector<float>& g) {
                       for (std::size_t i = 0; i < g.size(); ++i)
                         acc(an, i, 2.0f * g[i] * V(an)[i]);
                     });
}

Tensor clamp(const Tensor& a, float lo, float hi) {
  auto out = ew_forward(a, [lo, hi](float v) { return std::clamp(v, lo, hi); });
  NodePtr an = a.node();
  return make_result(a.shape(), std::move(out), {a},
                     [an, lo, hi](const std::vector<float>& g) {
                       for (std::size_t i = 0; i < g.size(); ++i)
                         if (V(an)[i] > lo && V(an)[i] < hi)
                           acc(an, i, g[i]);
                     });
}

// ------------------------------------------------------------------ shape ---

Tensor reshape(const Tensor& a, Shape new_shape) {
  check(numel(new_shape) == a.size(),
        "reshape: element count mismatch " + shape_str(a.shape()) + " -> " +
            shape_str(new_shape));
  NodePtr an = a.node();
  // Alias the input's value buffer: a reshape is a view, not a copy.
  return make_result(std::move(new_shape), an->value, {a},
                     [an](const std::vector<float>& g) {
                       for (std::size_t i = 0; i < g.size(); ++i)
                         acc(an, i, g[i]);
                     });
}

Tensor concat_cols(const std::vector<Tensor>& parts) {
  check(!parts.empty(), "concat_cols: no inputs");
  const int rows = parts[0].shape()[0];
  int total_cols = 0;
  for (const Tensor& p : parts) {
    check(p.dim() == 2, "concat_cols: inputs must be 2-D");
    check(p.shape()[0] == rows, "concat_cols: row count mismatch");
    total_cols += p.shape()[1];
  }
  std::vector<float> out(static_cast<std::size_t>(rows) * total_cols);
  std::vector<NodePtr> nodes;
  std::vector<int> widths;
  for (const Tensor& p : parts) {
    nodes.push_back(p.node());
    widths.push_back(p.shape()[1]);
  }
  int col0 = 0;
  for (std::size_t k = 0; k < parts.size(); ++k) {
    const int w = widths[k];
    for (int r = 0; r < rows; ++r)
      for (int c = 0; c < w; ++c)
        out[static_cast<std::size_t>(r) * total_cols + col0 + c] =
            parts[k].at(static_cast<std::int64_t>(r) * w + c);
    col0 += w;
  }
  return make_result(
      {rows, total_cols}, std::move(out), parts,
      [nodes, widths, rows, total_cols](const std::vector<float>& g) {
        int c0 = 0;
        for (std::size_t k = 0; k < nodes.size(); ++k) {
          const int w = widths[k];
          if (nodes[k]->requires_grad) {
            for (int r = 0; r < rows; ++r)
              for (int c = 0; c < w; ++c)
                acc(nodes[k], static_cast<std::size_t>(r) * w + c,
                    g[static_cast<std::size_t>(r) * total_cols + c0 + c]);
          }
          c0 += w;
        }
      });
}

Tensor concat_rows(const std::vector<Tensor>& parts) {
  check(!parts.empty(), "concat_rows: no inputs");
  const int cols = parts[0].shape()[1];
  int total_rows = 0;
  for (const Tensor& p : parts) {
    check(p.dim() == 2, "concat_rows: inputs must be 2-D");
    check(p.shape()[1] == cols, "concat_rows: column count mismatch");
    total_rows += p.shape()[0];
  }
  std::vector<float> out;
  out.reserve(static_cast<std::size_t>(total_rows) * cols);
  std::vector<NodePtr> nodes;
  std::vector<int> heights;
  for (const Tensor& p : parts) {
    nodes.push_back(p.node());
    heights.push_back(p.shape()[0]);
    out.insert(out.end(), p.values().begin(), p.values().end());
  }
  return make_result({total_rows, cols}, std::move(out), parts,
                     [nodes, heights, cols](const std::vector<float>& g) {
                       std::size_t off = 0;
                       for (std::size_t k = 0; k < nodes.size(); ++k) {
                         const std::size_t n =
                             static_cast<std::size_t>(heights[k]) * cols;
                         if (nodes[k]->requires_grad) {
                           for (std::size_t i = 0; i < n; ++i)
                             acc(nodes[k], i, g[off + i]);
                         }
                         off += n;
                       }
                     });
}

// --------------------------------------------------------------- lin. alg ---

namespace {

/// Original scalar matmul (seed kernel), kept as the reference path.
Tensor matmul_naive(const Tensor& a, const Tensor& b) {
  const int m = a.shape()[0], k = a.shape()[1], n = b.shape()[1];
  std::vector<float> out(static_cast<std::size_t>(m) * n, 0.0f);
  const float* A = a.data();
  const float* B = b.data();
  for (int i = 0; i < m; ++i) {
    for (int kk = 0; kk < k; ++kk) {
      const float av = A[static_cast<std::size_t>(i) * k + kk];
      if (av == 0.0f) continue;
      const float* brow = B + static_cast<std::size_t>(kk) * n;
      float* orow = out.data() + static_cast<std::size_t>(i) * n;
      for (int j = 0; j < n; ++j) orow[j] += av * brow[j];
    }
  }
  NodePtr an = a.node(), bn = b.node();
  return make_result(
      {m, n}, std::move(out), {a, b},
      [an, bn, m, k, n](const std::vector<float>& g) {
        // dA = g @ B^T ; dB = A^T @ g (per-element scatter form).
        const bool da = an->requires_grad, db = bn->requires_grad;
        for (int i = 0; i < m; ++i) {
          for (int j = 0; j < n; ++j) {
            const float gv = g[static_cast<std::size_t>(i) * n + j];
            if (gv == 0.0f) continue;
            for (int kk = 0; kk < k; ++kk) {
              if (da)
                G(an)[static_cast<std::size_t>(i) * k + kk] +=
                    gv * V(bn)[static_cast<std::size_t>(kk) * n + j];
              if (db)
                G(bn)[static_cast<std::size_t>(kk) * n + j] +=
                    gv * V(an)[static_cast<std::size_t>(i) * k + kk];
            }
          }
        }
      });
}

}  // namespace

Tensor matmul(const Tensor& a, const Tensor& b) {
  check(a.dim() == 2 && b.dim() == 2, "matmul: inputs must be 2-D");
  const int m = a.shape()[0], k = a.shape()[1];
  check(b.shape()[0] == k, "matmul: inner dimension mismatch " +
                               shape_str(a.shape()) + " x " +
                               shape_str(b.shape()));
  const int n = b.shape()[1];
  if (naive_kernels()) return matmul_naive(a, b);

  auto out = detail::acquire_buffer(static_cast<std::size_t>(m) * n);
  gemm_nn(m, k, n, a.data(), b.data(), out->data(), /*accumulate=*/false);
  NodePtr an = a.node(), bn = b.node();
  return make_result(
      {m, n}, std::move(out), {a, b},
      [an, bn, m, k, n](const std::vector<float>& g) {
        // Two proper GEMM passes into row-partitioned outputs.
        if (an->requires_grad) {
          // dA[M,K] += g[M,N] · B[K,N]ᵀ
          gemm_nt(m, n, k, g.data(), V(bn).data(), G(an).data(),
                  /*accumulate=*/true);
        }
        if (bn->requires_grad) {
          // dB[K,N] += A[M,K]ᵀ · g[M,N]
          gemm_tn(m, k, n, V(an).data(), g.data(), G(bn).data(),
                  /*accumulate=*/true);
        }
      });
}

Tensor add_rowvec(const Tensor& x, const Tensor& v) {
  check(x.dim() == 2, "add_rowvec: x must be 2-D");
  const int rows = x.shape()[0], cols = x.shape()[1];
  check(v.size() == cols, "add_rowvec: vector length mismatch");
  auto out = detail::acquire_buffer(x.values().size());
  const float* px = x.data();
  const float* pv = v.data();
  float* o = out->data();
  parallel_for(rows, grain_for(cols), [=](std::int64_t r0, std::int64_t r1) {
    for (std::int64_t r = r0; r < r1; ++r)
      for (int c = 0; c < cols; ++c)
        o[r * cols + c] = px[r * cols + c] + pv[c];
  });
  NodePtr xn = x.node(), vn = v.node();
  return make_result(
      {rows, cols}, std::move(out), {x, v},
      [xn, vn, rows, cols](const std::vector<float>& g) {
        if (xn->requires_grad) {
          float* gx = G(xn).data();
          const float* pg = g.data();
          parallel_for(static_cast<std::int64_t>(g.size()), kEwGrain,
                       [=](std::int64_t i0, std::int64_t i1) {
                         for (std::int64_t i = i0; i < i1; ++i)
                           gx[i] += pg[i];
                       });
        }
        if (vn->requires_grad) {
          // Column sums; each column owned by one chunk.
          float* gv = G(vn).data();
          const float* pg = g.data();
          parallel_for(cols, grain_for(rows),
                       [=](std::int64_t c0, std::int64_t c1) {
                         for (std::int64_t c = c0; c < c1; ++c) {
                           float s = 0.0f;
                           for (int r = 0; r < rows; ++r)
                             s += pg[static_cast<std::size_t>(r) * cols + c];
                           gv[c] += s;
                         }
                       });
        }
      });
}

Tensor linear(const Tensor& x, const Tensor& w, const Tensor& b) {
  return add_rowvec(matmul(x, w), b);
}

// -------------------------------------------------------------- reductions ---

Tensor sum_all(const Tensor& a) {
  float s = 0.0f;
  for (std::int64_t i = 0; i < a.size(); ++i) s += a.at(i);
  NodePtr an = a.node();
  return make_result({1}, {s}, {a}, [an](const std::vector<float>& g) {
    for (std::size_t i = 0; i < G(an).size(); ++i) acc(an, i, g[0]);
  });
}

Tensor mean_all(const Tensor& a) {
  const float inv = 1.0f / static_cast<float>(a.size());
  float s = 0.0f;
  for (std::int64_t i = 0; i < a.size(); ++i) s += a.at(i);
  NodePtr an = a.node();
  return make_result({1}, {s * inv}, {a},
                     [an, inv](const std::vector<float>& g) {
                       for (std::size_t i = 0; i < G(an).size(); ++i)
                         acc(an, i, g[0] * inv);
                     });
}

Tensor mean_axis0(const Tensor& a) {
  check(a.dim() == 2, "mean_axis0: input must be 2-D");
  const int rows = a.shape()[0], cols = a.shape()[1];
  const float inv = 1.0f / static_cast<float>(rows);
  std::vector<float> out(static_cast<std::size_t>(cols), 0.0f);
  for (int r = 0; r < rows; ++r)
    for (int c = 0; c < cols; ++c)
      out[static_cast<std::size_t>(c)] +=
          a.at(static_cast<std::int64_t>(r) * cols + c);
  for (float& v : out) v *= inv;
  NodePtr an = a.node();
  return make_result({1, cols}, std::move(out), {a},
                     [an, rows, cols, inv](const std::vector<float>& g) {
                       for (int r = 0; r < rows; ++r)
                         for (int c = 0; c < cols; ++c)
                           G(an)[static_cast<std::size_t>(r) * cols + c] +=
                               g[static_cast<std::size_t>(c)] * inv;
                     });
}

Tensor sum_axis1(const Tensor& a) {
  check(a.dim() == 2, "sum_axis1: input must be 2-D");
  const int rows = a.shape()[0], cols = a.shape()[1];
  std::vector<float> out(static_cast<std::size_t>(rows), 0.0f);
  for (int r = 0; r < rows; ++r)
    for (int c = 0; c < cols; ++c)
      out[static_cast<std::size_t>(r)] +=
          a.at(static_cast<std::int64_t>(r) * cols + c);
  NodePtr an = a.node();
  return make_result({rows, 1}, std::move(out), {a},
                     [an, rows, cols](const std::vector<float>& g) {
                       for (int r = 0; r < rows; ++r)
                         for (int c = 0; c < cols; ++c)
                           G(an)[static_cast<std::size_t>(r) * cols + c] +=
                               g[static_cast<std::size_t>(r)];
                     });
}

// ----------------------------------------------------------------- softmax ---

Tensor softmax_rows(const Tensor& a) {
  check(a.dim() == 2, "softmax_rows: input must be 2-D");
  const int rows = a.shape()[0], cols = a.shape()[1];
  auto out = detail::acquire_buffer(a.values().size());
  const float* pa = a.data();
  float* po = out->data();
  parallel_for(rows, grain_for(cols), [=](std::int64_t r0, std::int64_t r1) {
    for (std::int64_t r = r0; r < r1; ++r) {
      const float* in = pa + static_cast<std::size_t>(r) * cols;
      float* o = po + static_cast<std::size_t>(r) * cols;
      float mx = in[0];
      for (int c = 1; c < cols; ++c) mx = std::max(mx, in[c]);
      float denom = 0.0f;
      for (int c = 0; c < cols; ++c) {
        o[c] = std::exp(in[c] - mx);
        denom += o[c];
      }
      const float inv = 1.0f / denom;
      for (int c = 0; c < cols; ++c) o[c] *= inv;
    }
  });
  NodePtr an = a.node();
  detail::BufferPtr saved = out;  // softmax probabilities, shared not copied
  return make_result(
      a.shape(), std::move(out), {a},
      [an, rows, cols, saved = std::move(saved)](const std::vector<float>& g) {
        // dx = p * (g - sum(g * p)) per row.
        float* ga = G(an).data();
        const float* ps = saved->data();
        const float* pg = g.data();
        parallel_for(rows, grain_for(cols),
                     [=](std::int64_t r0, std::int64_t r1) {
          for (std::int64_t r = r0; r < r1; ++r) {
            const float* p = ps + static_cast<std::size_t>(r) * cols;
            const float* gr = pg + static_cast<std::size_t>(r) * cols;
            float dot = 0.0f;
            for (int c = 0; c < cols; ++c) dot += gr[c] * p[c];
            for (int c = 0; c < cols; ++c)
              ga[static_cast<std::size_t>(r) * cols + c] +=
                  p[c] * (gr[c] - dot);
          }
        });
      });
}

Tensor log_softmax_rows(const Tensor& a) {
  check(a.dim() == 2, "log_softmax_rows: input must be 2-D");
  const int rows = a.shape()[0], cols = a.shape()[1];
  auto out = detail::acquire_buffer(a.values().size());
  const float* pa = a.data();
  float* po = out->data();
  parallel_for(rows, grain_for(cols), [=](std::int64_t r0, std::int64_t r1) {
    for (std::int64_t r = r0; r < r1; ++r) {
      const float* in = pa + static_cast<std::size_t>(r) * cols;
      float* o = po + static_cast<std::size_t>(r) * cols;
      float mx = in[0];
      for (int c = 1; c < cols; ++c) mx = std::max(mx, in[c]);
      float denom = 0.0f;
      for (int c = 0; c < cols; ++c) denom += std::exp(in[c] - mx);
      const float lse = mx + std::log(denom);
      for (int c = 0; c < cols; ++c) o[c] = in[c] - lse;
    }
  });
  NodePtr an = a.node();
  detail::BufferPtr saved = out;  // log p, shared not copied
  return make_result(
      a.shape(), std::move(out), {a},
      [an, rows, cols, saved = std::move(saved)](const std::vector<float>& g) {
        // dx = g - softmax * sum(g) per row.
        float* ga = G(an).data();
        const float* ps = saved->data();
        const float* pg = g.data();
        parallel_for(rows, grain_for(cols),
                     [=](std::int64_t r0, std::int64_t r1) {
          for (std::int64_t r = r0; r < r1; ++r) {
            const float* lp = ps + static_cast<std::size_t>(r) * cols;
            const float* gr = pg + static_cast<std::size_t>(r) * cols;
            float gsum = 0.0f;
            for (int c = 0; c < cols; ++c) gsum += gr[c];
            for (int c = 0; c < cols; ++c)
              ga[static_cast<std::size_t>(r) * cols + c] +=
                  gr[c] - std::exp(lp[c]) * gsum;
          }
        });
      });
}

// ---------------------------------------------------------------- indexing ---

Tensor gather_rows(const Tensor& x, const std::vector<int>& rows) {
  check(x.dim() == 2, "gather_rows: x must be 2-D");
  const int n = x.shape()[0], d = x.shape()[1];
  for (int r : rows)
    check(r >= 0 && r < n, "gather_rows: row index out of range");
  std::vector<float> out(rows.size() * static_cast<std::size_t>(d));
  for (std::size_t k = 0; k < rows.size(); ++k)
    for (int c = 0; c < d; ++c)
      out[k * d + c] = x.at(static_cast<std::int64_t>(rows[k]) * d + c);
  NodePtr xn = x.node();
  return make_result({static_cast<int>(rows.size()), d}, std::move(out), {x},
                     [xn, rows, d](const std::vector<float>& g) {
                       for (std::size_t k = 0; k < rows.size(); ++k)
                         for (int c = 0; c < d; ++c)
                           G(xn)[static_cast<std::size_t>(rows[k]) * d + c] +=
                               g[k * d + c];
                     });
}

Tensor gather_per_row(const Tensor& x, const std::vector<int>& cols) {
  check(x.dim() == 2, "gather_per_row: x must be 2-D");
  const int b = x.shape()[0], n = x.shape()[1];
  check(static_cast<int>(cols.size()) == b,
        "gather_per_row: one column index per row required");
  for (int c : cols)
    check(c >= 0 && c < n, "gather_per_row: column index out of range");
  std::vector<float> out(static_cast<std::size_t>(b));
  for (int r = 0; r < b; ++r)
    out[static_cast<std::size_t>(r)] =
        x.at(static_cast<std::int64_t>(r) * n + cols[static_cast<std::size_t>(r)]);
  NodePtr xn = x.node();
  return make_result({b}, std::move(out), {x},
                     [xn, cols, n](const std::vector<float>& g) {
                       for (std::size_t r = 0; r < cols.size(); ++r)
                         G(xn)[r * n + cols[r]] += g[r];
                     });
}

// ------------------------------------------------------------ convolutions ---

namespace {

/// Original scalar conv2d (seed kernel), kept as the reference path.
Tensor conv2d_naive(const Tensor& x, const Tensor& w, const Tensor& b,
                    int stride, int pad) {
  const int B = x.shape()[0], IC = x.shape()[1], H = x.shape()[2],
            W = x.shape()[3];
  const int OC = w.shape()[0], KH = w.shape()[2], KW = w.shape()[3];
  const int OH = (H + 2 * pad - KH) / stride + 1;
  const int OW = (W + 2 * pad - KW) / stride + 1;

  std::vector<float> out(static_cast<std::size_t>(B) * OC * OH * OW, 0.0f);
  const float* X = x.data();
  const float* Wt = w.data();
  const float* Bs = b.data();
  auto xi = [&](int bb, int c, int i, int j) {
    return ((static_cast<std::size_t>(bb) * IC + c) * H + i) * W + j;
  };
  auto wi = [&](int oc, int ic, int i, int j) {
    return ((static_cast<std::size_t>(oc) * IC + ic) * KH + i) * KW + j;
  };
  auto oi = [&](int bb, int oc, int i, int j) {
    return ((static_cast<std::size_t>(bb) * OC + oc) * OH + i) * OW + j;
  };
  for (int bb = 0; bb < B; ++bb)
    for (int oc = 0; oc < OC; ++oc)
      for (int oh = 0; oh < OH; ++oh)
        for (int ow = 0; ow < OW; ++ow) {
          float accv = Bs[oc];
          const int ih0 = oh * stride - pad;
          const int iw0 = ow * stride - pad;
          for (int ic = 0; ic < IC; ++ic)
            for (int kh = 0; kh < KH; ++kh) {
              const int ih = ih0 + kh;
              if (ih < 0 || ih >= H) continue;
              for (int kw = 0; kw < KW; ++kw) {
                const int iw = iw0 + kw;
                if (iw < 0 || iw >= W) continue;
                accv += X[xi(bb, ic, ih, iw)] * Wt[wi(oc, ic, kh, kw)];
              }
            }
          out[oi(bb, oc, oh, ow)] = accv;
        }

  NodePtr xn = x.node(), wn = w.node(), bn = b.node();
  return make_result(
      {B, OC, OH, OW}, std::move(out), {x, w, b},
      [xn, wn, bn, B, IC, H, W, OC, KH, KW, OH, OW, stride,
       pad](const std::vector<float>& g) {
        auto xi = [&](int bb, int c, int i, int j) {
          return ((static_cast<std::size_t>(bb) * IC + c) * H + i) * W + j;
        };
        auto wi = [&](int oc, int ic, int i, int j) {
          return ((static_cast<std::size_t>(oc) * IC + ic) * KH + i) * KW + j;
        };
        auto oi = [&](int bb, int oc, int i, int j) {
          return ((static_cast<std::size_t>(bb) * OC + oc) * OH + i) * OW + j;
        };
        const bool dx = xn->requires_grad, dw = wn->requires_grad,
                   db = bn->requires_grad;
        for (int bb = 0; bb < B; ++bb)
          for (int oc = 0; oc < OC; ++oc)
            for (int oh = 0; oh < OH; ++oh)
              for (int ow = 0; ow < OW; ++ow) {
                const float gv = g[oi(bb, oc, oh, ow)];
                if (gv == 0.0f) continue;
                if (db) G(bn)[static_cast<std::size_t>(oc)] += gv;
                const int ih0 = oh * stride - pad;
                const int iw0 = ow * stride - pad;
                for (int ic = 0; ic < IC; ++ic)
                  for (int kh = 0; kh < KH; ++kh) {
                    const int ih = ih0 + kh;
                    if (ih < 0 || ih >= H) continue;
                    for (int kw = 0; kw < KW; ++kw) {
                      const int iw = iw0 + kw;
                      if (iw < 0 || iw >= W) continue;
                      if (dx)
                        G(xn)[xi(bb, ic, ih, iw)] +=
                            gv * V(wn)[wi(oc, ic, kh, kw)];
                      if (dw)
                        G(wn)[wi(oc, ic, kh, kw)] +=
                            gv * V(xn)[xi(bb, ic, ih, iw)];
                    }
                  }
              }
      });
}

/// Original scalar conv_transpose2d (seed kernel), reference path.
Tensor conv_transpose2d_naive(const Tensor& x, const Tensor& w,
                              const Tensor& b, int stride, int pad) {
  const int B = x.shape()[0], IC = x.shape()[1], H = x.shape()[2],
            W = x.shape()[3];
  const int OC = w.shape()[1], KH = w.shape()[2], KW = w.shape()[3];
  const int OH = (H - 1) * stride - 2 * pad + KH;
  const int OW = (W - 1) * stride - 2 * pad + KW;

  std::vector<float> out(static_cast<std::size_t>(B) * OC * OH * OW, 0.0f);
  auto xi = [&](int bb, int c, int i, int j) {
    return ((static_cast<std::size_t>(bb) * IC + c) * H + i) * W + j;
  };
  auto wi = [&](int ic, int oc, int i, int j) {
    return ((static_cast<std::size_t>(ic) * OC + oc) * KH + i) * KW + j;
  };
  auto oi = [&](int bb, int oc, int i, int j) {
    return ((static_cast<std::size_t>(bb) * OC + oc) * OH + i) * OW + j;
  };
  for (int bb = 0; bb < B; ++bb)
    for (int oc = 0; oc < OC; ++oc)
      for (int oh = 0; oh < OH; ++oh)
        for (int ow = 0; ow < OW; ++ow) out[oi(bb, oc, oh, ow)] = b.at(oc);
  for (int bb = 0; bb < B; ++bb)
    for (int ic = 0; ic < IC; ++ic)
      for (int ih = 0; ih < H; ++ih)
        for (int iw = 0; iw < W; ++iw) {
          const float xv = x.at(static_cast<std::int64_t>(xi(bb, ic, ih, iw)));
          if (xv == 0.0f) continue;
          for (int oc = 0; oc < OC; ++oc)
            for (int kh = 0; kh < KH; ++kh) {
              const int oh = ih * stride - pad + kh;
              if (oh < 0 || oh >= OH) continue;
              for (int kw = 0; kw < KW; ++kw) {
                const int ow = iw * stride - pad + kw;
                if (ow < 0 || ow >= OW) continue;
                out[oi(bb, oc, oh, ow)] += xv * w.at(static_cast<std::int64_t>(
                                                wi(ic, oc, kh, kw)));
              }
            }
        }

  NodePtr xn = x.node(), wn = w.node(), bn = b.node();
  return make_result(
      {B, OC, OH, OW}, std::move(out), {x, w, b},
      [xn, wn, bn, B, IC, H, W, OC, KH, KW, OH, OW, stride,
       pad](const std::vector<float>& g) {
        auto xi = [&](int bb, int c, int i, int j) {
          return ((static_cast<std::size_t>(bb) * IC + c) * H + i) * W + j;
        };
        auto wi = [&](int ic, int oc, int i, int j) {
          return ((static_cast<std::size_t>(ic) * OC + oc) * KH + i) * KW + j;
        };
        auto oi = [&](int bb, int oc, int i, int j) {
          return ((static_cast<std::size_t>(bb) * OC + oc) * OH + i) * OW + j;
        };
        const bool dx = xn->requires_grad, dw = wn->requires_grad,
                   db = bn->requires_grad;
        // Bias gradient: sum over batch and spatial dims.
        if (db) {
          for (int bb = 0; bb < B; ++bb)
            for (int oc = 0; oc < OC; ++oc)
              for (int oh = 0; oh < OH; ++oh)
                for (int ow = 0; ow < OW; ++ow)
                  G(bn)[static_cast<std::size_t>(oc)] += g[oi(bb, oc, oh, ow)];
        }
        for (int bb = 0; bb < B; ++bb)
          for (int ic = 0; ic < IC; ++ic)
            for (int ih = 0; ih < H; ++ih)
              for (int iw = 0; iw < W; ++iw) {
                const float xv = V(xn)[xi(bb, ic, ih, iw)];
                float dxv = 0.0f;
                for (int oc = 0; oc < OC; ++oc)
                  for (int kh = 0; kh < KH; ++kh) {
                    const int oh = ih * stride - pad + kh;
                    if (oh < 0 || oh >= OH) continue;
                    for (int kw = 0; kw < KW; ++kw) {
                      const int ow = iw * stride - pad + kw;
                      if (ow < 0 || ow >= OW) continue;
                      const float gv = g[oi(bb, oc, oh, ow)];
                      dxv += gv * V(wn)[wi(ic, oc, kh, kw)];
                      if (dw) G(wn)[wi(ic, oc, kh, kw)] += gv * xv;
                    }
                  }
                if (dx) G(xn)[xi(bb, ic, ih, iw)] += dxv;
              }
      });
}

}  // namespace

Tensor conv2d(const Tensor& x, const Tensor& w, const Tensor& b, int stride,
              int pad) {
  check(x.dim() == 4, "conv2d: input must be NCHW");
  check(w.dim() == 4, "conv2d: weight must be [OC, IC, KH, KW]");
  const int B = x.shape()[0], IC = x.shape()[1], H = x.shape()[2],
            W = x.shape()[3];
  const int OC = w.shape()[0], KH = w.shape()[2], KW = w.shape()[3];
  check(w.shape()[1] == IC, "conv2d: channel mismatch");
  check(b.size() == OC, "conv2d: bias size mismatch");
  const int OH = (H + 2 * pad - KH) / stride + 1;
  const int OW = (W + 2 * pad - KW) / stride + 1;
  check(OH > 0 && OW > 0, "conv2d: output would be empty");
  if (naive_kernels()) return conv2d_naive(x, w, b, stride, pad);

  const std::int64_t CK = static_cast<std::int64_t>(IC) * KH * KW;
  const std::int64_t ohw = static_cast<std::int64_t>(OH) * OW;
  const std::int64_t cols = static_cast<std::int64_t>(B) * ohw;

  // Y[OC, B*OH*OW] = Wmat[OC, CK] · im2col(x); then scatter + bias.
  auto col = detail::acquire_buffer(static_cast<std::size_t>(CK * cols));
  im2col(x.data(), B, IC, H, W, KH, KW, OH, OW, stride, pad, col->data());
  auto ymat = detail::acquire_buffer(static_cast<std::size_t>(OC * cols));
  gemm_nn(OC, CK, cols, w.data(), col->data(), ymat->data(),
          /*accumulate=*/false);
  col.reset();  // back to the pool before allocating the output

  auto out = detail::acquire_buffer(static_cast<std::size_t>(B) * OC * ohw);
  {
    const float* ym = ymat->data();
    const float* bias = b.data();
    float* po = out->data();
    parallel_for(static_cast<std::int64_t>(B) * OC, grain_for(ohw),
                 [=](std::int64_t t0, std::int64_t t1) {
      for (std::int64_t t = t0; t < t1; ++t) {
        const std::int64_t bb = t / OC, oc = t % OC;
        const float* src = ym + oc * cols + bb * ohw;
        float* dst = po + (bb * OC + oc) * ohw;
        const float bv = bias[oc];
        for (std::int64_t i = 0; i < ohw; ++i) dst[i] = src[i] + bv;
      }
    });
  }

  NodePtr xn = x.node(), wn = w.node(), bn = b.node();
  return make_result(
      {B, OC, OH, OW}, std::move(out), {x, w, b},
      [xn, wn, bn, B, IC, H, W, OC, KH, KW, OH, OW, stride, pad, CK, ohw,
       cols](const std::vector<float>& g) {
        // Gather g into channel-major [OC, B*OH*OW].
        auto gmat = detail::acquire_buffer(static_cast<std::size_t>(OC * cols));
        to_channel_major(g.data(), B, OC, ohw, gmat->data());

        if (bn->requires_grad) {
          float* gb = G(bn).data();
          const float* gm = gmat->data();
          for (int oc = 0; oc < OC; ++oc) {
            float s = 0.0f;
            const float* row = gm + static_cast<std::int64_t>(oc) * cols;
            for (std::int64_t i = 0; i < cols; ++i) s += row[i];
            gb[oc] += s;
          }
        }
        if (wn->requires_grad) {
          // dW[OC, CK] += g_mat · colᵀ — recompute col from the saved input.
          auto col =
              detail::acquire_buffer(static_cast<std::size_t>(CK * cols));
          im2col(V(xn).data(), B, IC, H, W, KH, KW, OH, OW, stride, pad,
                 col->data());
          gemm_nt(OC, cols, CK, gmat->data(), col->data(), G(wn).data(),
                  /*accumulate=*/true);
        }
        if (xn->requires_grad) {
          // dcol[CK, B*OH*OW] = Wmatᵀ · g_mat; then col2im-accumulate.
          auto dcol =
              detail::acquire_buffer(static_cast<std::size_t>(CK * cols));
          gemm_tn(OC, CK, cols, V(wn).data(), gmat->data(), dcol->data(),
                  /*accumulate=*/false);
          col2im_acc(dcol->data(), B, IC, H, W, KH, KW, OH, OW, stride, pad,
                     G(xn).data());
        }
      });
}

Tensor conv_transpose2d(const Tensor& x, const Tensor& w, const Tensor& b,
                        int stride, int pad) {
  check(x.dim() == 4, "conv_transpose2d: input must be NCHW");
  check(w.dim() == 4, "conv_transpose2d: weight must be [IC, OC, KH, KW]");
  const int B = x.shape()[0], IC = x.shape()[1], H = x.shape()[2],
            W = x.shape()[3];
  const int OC = w.shape()[1], KH = w.shape()[2], KW = w.shape()[3];
  check(w.shape()[0] == IC, "conv_transpose2d: channel mismatch");
  check(b.size() == OC, "conv_transpose2d: bias size mismatch");
  const int OH = (H - 1) * stride - 2 * pad + KH;
  const int OW = (W - 1) * stride - 2 * pad + KW;
  check(OH > 0 && OW > 0, "conv_transpose2d: output would be empty");
  if (naive_kernels()) return conv_transpose2d_naive(x, w, b, stride, pad);

  // The transposed conv is conv2d's input-gradient: with Wmat viewed as
  // [IC, OC*KH*KW], col[OC*KH*KW, B*H*W] = Wmatᵀ · x_mat, and the output is
  // col2im(col) over the OUTPUT grid (patch positions indexed by the input).
  const std::int64_t CK = static_cast<std::int64_t>(OC) * KH * KW;
  const std::int64_t hw = static_cast<std::int64_t>(H) * W;
  const std::int64_t cols = static_cast<std::int64_t>(B) * hw;
  const std::int64_t ohw = static_cast<std::int64_t>(OH) * OW;

  auto xmat = detail::acquire_buffer(static_cast<std::size_t>(IC * cols));
  to_channel_major(x.data(), B, IC, hw, xmat->data());
  auto col = detail::acquire_buffer(static_cast<std::size_t>(CK * cols));
  gemm_tn(IC, CK, cols, w.data(), xmat->data(), col->data(),
          /*accumulate=*/false);
  xmat.reset();

  auto out = detail::acquire_buffer(static_cast<std::size_t>(B) * OC * ohw);
  {
    // Initialize with bias, then scatter the column buffer.  col2im_acc
    // with swapped roles: the "output grid" is H x W, the image is OH x OW.
    const float* bias = b.data();
    float* po = out->data();
    parallel_for(static_cast<std::int64_t>(B) * OC, grain_for(ohw),
                 [=](std::int64_t t0, std::int64_t t1) {
      for (std::int64_t t = t0; t < t1; ++t) {
        const std::int64_t oc = t % OC;
        std::fill(po + t * ohw, po + (t + 1) * ohw, bias[oc]);
      }
    });
  }
  col2im_acc(col->data(), B, OC, OH, OW, KH, KW, H, W, stride, pad,
             out->data());

  NodePtr xn = x.node(), wn = w.node(), bn = b.node();
  return make_result(
      {B, OC, OH, OW}, std::move(out), {x, w, b},
      [xn, wn, bn, B, IC, H, W, OC, KH, KW, OH, OW, stride, pad, CK, hw, cols,
       ohw](const std::vector<float>& g) {
        if (bn->requires_grad) {
          float* gb = G(bn).data();
          for (int oc = 0; oc < OC; ++oc) {
            float s = 0.0f;
            for (int bb = 0; bb < B; ++bb) {
              const float* row =
                  g.data() + (static_cast<std::int64_t>(bb) * OC + oc) * ohw;
              for (std::int64_t i = 0; i < ohw; ++i) s += row[i];
            }
            gb[oc] += s;
          }
        }
        if (!xn->requires_grad && !wn->requires_grad) return;
        // dcol = im2col(g) over the input grid positions.
        auto dcol = detail::acquire_buffer(static_cast<std::size_t>(CK * cols));
        im2col(g.data(), B, OC, OH, OW, KH, KW, H, W, stride, pad,
               dcol->data());
        if (xn->requires_grad) {
          // dx_mat[IC, B*H*W] = Wmat · dcol, scattered back to NCHW.
          auto dxmat =
              detail::acquire_buffer(static_cast<std::size_t>(IC * cols));
          gemm_nn(IC, CK, cols, V(wn).data(), dcol->data(), dxmat->data(),
                  /*accumulate=*/false);
          from_channel_major_acc(dxmat->data(), B, IC, hw, G(xn).data());
        }
        if (wn->requires_grad) {
          // dWmat[IC, CK] += x_mat · dcolᵀ.
          auto xmat =
              detail::acquire_buffer(static_cast<std::size_t>(IC * cols));
          to_channel_major(V(xn).data(), B, IC, hw, xmat->data());
          gemm_nt(IC, cols, CK, xmat->data(), dcol->data(), G(wn).data(),
                  /*accumulate=*/true);
        }
      });
}

// ------------------------------------------------------------------- losses ---

Tensor mse_loss(const Tensor& pred, const Tensor& target) {
  check_same_shape(pred, target, "mse_loss");
  return mean_all(square(sub(pred, target)));
}

}  // namespace afp::num
