#include "numeric/ops.hpp"

#include <algorithm>
#include <cmath>

namespace afp::num {

namespace {

using detail::Node;
using NodePtr = std::shared_ptr<Node>;

void check(bool cond, const std::string& msg) {
  if (!cond) throw std::invalid_argument(msg);
}

void check_same_shape(const Tensor& a, const Tensor& b, const char* op) {
  check(a.shape() == b.shape(), std::string(op) + ": shape mismatch " +
                                    shape_str(a.shape()) + " vs " +
                                    shape_str(b.shape()));
}

/// Accumulates g into n->grad (buffer guaranteed allocated by make_result).
void acc(const NodePtr& n, std::size_t i, float g) { n->grad[i] += g; }

}  // namespace

// ---------------------------------------------------------------- binary ---

Tensor add(const Tensor& a, const Tensor& b) {
  check_same_shape(a, b, "add");
  std::vector<float> out(a.values().size());
  for (std::size_t i = 0; i < out.size(); ++i) out[i] = a.at(i) + b.at(i);
  NodePtr an = a.node(), bn = b.node();
  return make_result(a.shape(), std::move(out), {a, b},
                     [an, bn](const std::vector<float>& g) {
                       for (std::size_t i = 0; i < g.size(); ++i) {
                         acc(an, i, g[i]);
                         acc(bn, i, g[i]);
                       }
                     });
}

Tensor sub(const Tensor& a, const Tensor& b) {
  check_same_shape(a, b, "sub");
  std::vector<float> out(a.values().size());
  for (std::size_t i = 0; i < out.size(); ++i) out[i] = a.at(i) - b.at(i);
  NodePtr an = a.node(), bn = b.node();
  return make_result(a.shape(), std::move(out), {a, b},
                     [an, bn](const std::vector<float>& g) {
                       for (std::size_t i = 0; i < g.size(); ++i) {
                         acc(an, i, g[i]);
                         acc(bn, i, -g[i]);
                       }
                     });
}

Tensor mul(const Tensor& a, const Tensor& b) {
  check_same_shape(a, b, "mul");
  std::vector<float> out(a.values().size());
  for (std::size_t i = 0; i < out.size(); ++i) out[i] = a.at(i) * b.at(i);
  NodePtr an = a.node(), bn = b.node();
  return make_result(a.shape(), std::move(out), {a, b},
                     [an, bn](const std::vector<float>& g) {
                       for (std::size_t i = 0; i < g.size(); ++i) {
                         acc(an, i, g[i] * bn->value[i]);
                         acc(bn, i, g[i] * an->value[i]);
                       }
                     });
}

Tensor div(const Tensor& a, const Tensor& b) {
  check_same_shape(a, b, "div");
  std::vector<float> out(a.values().size());
  for (std::size_t i = 0; i < out.size(); ++i) out[i] = a.at(i) / b.at(i);
  NodePtr an = a.node(), bn = b.node();
  return make_result(a.shape(), std::move(out), {a, b},
                     [an, bn](const std::vector<float>& g) {
                       for (std::size_t i = 0; i < g.size(); ++i) {
                         const float inv = 1.0f / bn->value[i];
                         acc(an, i, g[i] * inv);
                         acc(bn, i, -g[i] * an->value[i] * inv * inv);
                       }
                     });
}

Tensor minimum(const Tensor& a, const Tensor& b) {
  check_same_shape(a, b, "minimum");
  std::vector<float> out(a.values().size());
  for (std::size_t i = 0; i < out.size(); ++i)
    out[i] = std::min(a.at(i), b.at(i));
  NodePtr an = a.node(), bn = b.node();
  return make_result(a.shape(), std::move(out), {a, b},
                     [an, bn](const std::vector<float>& g) {
                       for (std::size_t i = 0; i < g.size(); ++i) {
                         if (an->value[i] <= bn->value[i]) acc(an, i, g[i]);
                         else acc(bn, i, g[i]);
                       }
                     });
}

Tensor maximum(const Tensor& a, const Tensor& b) {
  check_same_shape(a, b, "maximum");
  std::vector<float> out(a.values().size());
  for (std::size_t i = 0; i < out.size(); ++i)
    out[i] = std::max(a.at(i), b.at(i));
  NodePtr an = a.node(), bn = b.node();
  return make_result(a.shape(), std::move(out), {a, b},
                     [an, bn](const std::vector<float>& g) {
                       for (std::size_t i = 0; i < g.size(); ++i) {
                         if (an->value[i] >= bn->value[i]) acc(an, i, g[i]);
                         else acc(bn, i, g[i]);
                       }
                     });
}

// ---------------------------------------------------------------- scalar ---

Tensor add_scalar(const Tensor& a, float s) {
  std::vector<float> out(a.values().size());
  for (std::size_t i = 0; i < out.size(); ++i) out[i] = a.at(i) + s;
  NodePtr an = a.node();
  return make_result(a.shape(), std::move(out), {a},
                     [an](const std::vector<float>& g) {
                       for (std::size_t i = 0; i < g.size(); ++i)
                         acc(an, i, g[i]);
                     });
}

Tensor mul_scalar(const Tensor& a, float s) {
  std::vector<float> out(a.values().size());
  for (std::size_t i = 0; i < out.size(); ++i) out[i] = a.at(i) * s;
  NodePtr an = a.node();
  return make_result(a.shape(), std::move(out), {a},
                     [an, s](const std::vector<float>& g) {
                       for (std::size_t i = 0; i < g.size(); ++i)
                         acc(an, i, g[i] * s);
                     });
}

// ----------------------------------------------------------------- unary ---

Tensor neg(const Tensor& a) { return mul_scalar(a, -1.0f); }

Tensor relu(const Tensor& a) {
  std::vector<float> out(a.values().size());
  for (std::size_t i = 0; i < out.size(); ++i) out[i] = std::max(0.0f, a.at(i));
  NodePtr an = a.node();
  return make_result(a.shape(), std::move(out), {a},
                     [an](const std::vector<float>& g) {
                       for (std::size_t i = 0; i < g.size(); ++i)
                         if (an->value[i] > 0.0f) acc(an, i, g[i]);
                     });
}

Tensor tanh_op(const Tensor& a) {
  std::vector<float> out(a.values().size());
  for (std::size_t i = 0; i < out.size(); ++i) out[i] = std::tanh(a.at(i));
  NodePtr an = a.node();
  std::vector<float> saved = out;  // tanh'(x) = 1 - tanh(x)^2
  return make_result(a.shape(), std::move(out), {a},
                     [an, saved = std::move(saved)](const std::vector<float>& g) {
                       for (std::size_t i = 0; i < g.size(); ++i)
                         acc(an, i, g[i] * (1.0f - saved[i] * saved[i]));
                     });
}

Tensor sigmoid(const Tensor& a) {
  std::vector<float> out(a.values().size());
  for (std::size_t i = 0; i < out.size(); ++i)
    out[i] = 1.0f / (1.0f + std::exp(-a.at(i)));
  NodePtr an = a.node();
  std::vector<float> saved = out;
  return make_result(a.shape(), std::move(out), {a},
                     [an, saved = std::move(saved)](const std::vector<float>& g) {
                       for (std::size_t i = 0; i < g.size(); ++i)
                         acc(an, i, g[i] * saved[i] * (1.0f - saved[i]));
                     });
}

Tensor exp_op(const Tensor& a) {
  std::vector<float> out(a.values().size());
  for (std::size_t i = 0; i < out.size(); ++i) out[i] = std::exp(a.at(i));
  NodePtr an = a.node();
  std::vector<float> saved = out;
  return make_result(a.shape(), std::move(out), {a},
                     [an, saved = std::move(saved)](const std::vector<float>& g) {
                       for (std::size_t i = 0; i < g.size(); ++i)
                         acc(an, i, g[i] * saved[i]);
                     });
}

Tensor log_op(const Tensor& a, float eps) {
  std::vector<float> out(a.values().size());
  std::vector<float> safe(a.values().size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    safe[i] = std::max(a.at(i), eps);
    out[i] = std::log(safe[i]);
  }
  NodePtr an = a.node();
  return make_result(a.shape(), std::move(out), {a},
                     [an, safe = std::move(safe)](const std::vector<float>& g) {
                       for (std::size_t i = 0; i < g.size(); ++i)
                         acc(an, i, g[i] / safe[i]);
                     });
}

Tensor square(const Tensor& a) {
  std::vector<float> out(a.values().size());
  for (std::size_t i = 0; i < out.size(); ++i) out[i] = a.at(i) * a.at(i);
  NodePtr an = a.node();
  return make_result(a.shape(), std::move(out), {a},
                     [an](const std::vector<float>& g) {
                       for (std::size_t i = 0; i < g.size(); ++i)
                         acc(an, i, 2.0f * g[i] * an->value[i]);
                     });
}

Tensor clamp(const Tensor& a, float lo, float hi) {
  std::vector<float> out(a.values().size());
  for (std::size_t i = 0; i < out.size(); ++i)
    out[i] = std::clamp(a.at(i), lo, hi);
  NodePtr an = a.node();
  return make_result(a.shape(), std::move(out), {a},
                     [an, lo, hi](const std::vector<float>& g) {
                       for (std::size_t i = 0; i < g.size(); ++i)
                         if (an->value[i] > lo && an->value[i] < hi)
                           acc(an, i, g[i]);
                     });
}

// ------------------------------------------------------------------ shape ---

Tensor reshape(const Tensor& a, Shape new_shape) {
  check(numel(new_shape) == a.size(),
        "reshape: element count mismatch " + shape_str(a.shape()) + " -> " +
            shape_str(new_shape));
  std::vector<float> out = a.values();
  NodePtr an = a.node();
  return make_result(std::move(new_shape), std::move(out), {a},
                     [an](const std::vector<float>& g) {
                       for (std::size_t i = 0; i < g.size(); ++i)
                         acc(an, i, g[i]);
                     });
}

Tensor concat_cols(const std::vector<Tensor>& parts) {
  check(!parts.empty(), "concat_cols: no inputs");
  const int rows = parts[0].shape()[0];
  int total_cols = 0;
  for (const Tensor& p : parts) {
    check(p.dim() == 2, "concat_cols: inputs must be 2-D");
    check(p.shape()[0] == rows, "concat_cols: row count mismatch");
    total_cols += p.shape()[1];
  }
  std::vector<float> out(static_cast<std::size_t>(rows) * total_cols);
  std::vector<NodePtr> nodes;
  std::vector<int> widths;
  for (const Tensor& p : parts) {
    nodes.push_back(p.node());
    widths.push_back(p.shape()[1]);
  }
  int col0 = 0;
  for (std::size_t k = 0; k < parts.size(); ++k) {
    const int w = widths[k];
    for (int r = 0; r < rows; ++r)
      for (int c = 0; c < w; ++c)
        out[static_cast<std::size_t>(r) * total_cols + col0 + c] =
            parts[k].at(static_cast<std::int64_t>(r) * w + c);
    col0 += w;
  }
  return make_result(
      {rows, total_cols}, std::move(out), parts,
      [nodes, widths, rows, total_cols](const std::vector<float>& g) {
        int c0 = 0;
        for (std::size_t k = 0; k < nodes.size(); ++k) {
          const int w = widths[k];
          for (int r = 0; r < rows; ++r)
            for (int c = 0; c < w; ++c)
              acc(nodes[k], static_cast<std::size_t>(r) * w + c,
                  g[static_cast<std::size_t>(r) * total_cols + c0 + c]);
          c0 += w;
        }
      });
}

Tensor concat_rows(const std::vector<Tensor>& parts) {
  check(!parts.empty(), "concat_rows: no inputs");
  const int cols = parts[0].shape()[1];
  int total_rows = 0;
  for (const Tensor& p : parts) {
    check(p.dim() == 2, "concat_rows: inputs must be 2-D");
    check(p.shape()[1] == cols, "concat_rows: column count mismatch");
    total_rows += p.shape()[0];
  }
  std::vector<float> out;
  out.reserve(static_cast<std::size_t>(total_rows) * cols);
  std::vector<NodePtr> nodes;
  std::vector<int> heights;
  for (const Tensor& p : parts) {
    nodes.push_back(p.node());
    heights.push_back(p.shape()[0]);
    out.insert(out.end(), p.values().begin(), p.values().end());
  }
  return make_result({total_rows, cols}, std::move(out), parts,
                     [nodes, heights, cols](const std::vector<float>& g) {
                       std::size_t off = 0;
                       for (std::size_t k = 0; k < nodes.size(); ++k) {
                         const std::size_t n =
                             static_cast<std::size_t>(heights[k]) * cols;
                         for (std::size_t i = 0; i < n; ++i)
                           acc(nodes[k], i, g[off + i]);
                         off += n;
                       }
                     });
}

// --------------------------------------------------------------- lin. alg ---

Tensor matmul(const Tensor& a, const Tensor& b) {
  check(a.dim() == 2 && b.dim() == 2, "matmul: inputs must be 2-D");
  const int m = a.shape()[0], k = a.shape()[1];
  check(b.shape()[0] == k, "matmul: inner dimension mismatch " +
                               shape_str(a.shape()) + " x " +
                               shape_str(b.shape()));
  const int n = b.shape()[1];
  std::vector<float> out(static_cast<std::size_t>(m) * n, 0.0f);
  const float* A = a.data();
  const float* B = b.data();
  // ikj loop order: streams over B rows, cache friendly.
  for (int i = 0; i < m; ++i) {
    for (int kk = 0; kk < k; ++kk) {
      const float av = A[static_cast<std::size_t>(i) * k + kk];
      if (av == 0.0f) continue;
      const float* brow = B + static_cast<std::size_t>(kk) * n;
      float* orow = out.data() + static_cast<std::size_t>(i) * n;
      for (int j = 0; j < n; ++j) orow[j] += av * brow[j];
    }
  }
  NodePtr an = a.node(), bn = b.node();
  return make_result(
      {m, n}, std::move(out), {a, b},
      [an, bn, m, k, n](const std::vector<float>& g) {
        // dA = g @ B^T ; dB = A^T @ g
        for (int i = 0; i < m; ++i) {
          for (int j = 0; j < n; ++j) {
            const float gv = g[static_cast<std::size_t>(i) * n + j];
            if (gv == 0.0f) continue;
            for (int kk = 0; kk < k; ++kk) {
              an->grad[static_cast<std::size_t>(i) * k + kk] +=
                  gv * bn->value[static_cast<std::size_t>(kk) * n + j];
              bn->grad[static_cast<std::size_t>(kk) * n + j] +=
                  gv * an->value[static_cast<std::size_t>(i) * k + kk];
            }
          }
        }
      });
}

Tensor add_rowvec(const Tensor& x, const Tensor& v) {
  check(x.dim() == 2, "add_rowvec: x must be 2-D");
  const int rows = x.shape()[0], cols = x.shape()[1];
  check(v.size() == cols, "add_rowvec: vector length mismatch");
  std::vector<float> out(x.values().size());
  for (int r = 0; r < rows; ++r)
    for (int c = 0; c < cols; ++c)
      out[static_cast<std::size_t>(r) * cols + c] =
          x.at(static_cast<std::int64_t>(r) * cols + c) + v.at(c);
  NodePtr xn = x.node(), vn = v.node();
  return make_result({rows, cols}, std::move(out), {x, v},
                     [xn, vn, rows, cols](const std::vector<float>& g) {
                       for (int r = 0; r < rows; ++r)
                         for (int c = 0; c < cols; ++c) {
                           const float gv =
                               g[static_cast<std::size_t>(r) * cols + c];
                           xn->grad[static_cast<std::size_t>(r) * cols + c] += gv;
                           vn->grad[static_cast<std::size_t>(c)] += gv;
                         }
                     });
}

Tensor linear(const Tensor& x, const Tensor& w, const Tensor& b) {
  return add_rowvec(matmul(x, w), b);
}

// -------------------------------------------------------------- reductions ---

Tensor sum_all(const Tensor& a) {
  float s = 0.0f;
  for (std::int64_t i = 0; i < a.size(); ++i) s += a.at(i);
  NodePtr an = a.node();
  return make_result({1}, {s}, {a}, [an](const std::vector<float>& g) {
    for (std::size_t i = 0; i < an->grad.size(); ++i) acc(an, i, g[0]);
  });
}

Tensor mean_all(const Tensor& a) {
  const float inv = 1.0f / static_cast<float>(a.size());
  float s = 0.0f;
  for (std::int64_t i = 0; i < a.size(); ++i) s += a.at(i);
  NodePtr an = a.node();
  return make_result({1}, {s * inv}, {a},
                     [an, inv](const std::vector<float>& g) {
                       for (std::size_t i = 0; i < an->grad.size(); ++i)
                         acc(an, i, g[0] * inv);
                     });
}

Tensor mean_axis0(const Tensor& a) {
  check(a.dim() == 2, "mean_axis0: input must be 2-D");
  const int rows = a.shape()[0], cols = a.shape()[1];
  const float inv = 1.0f / static_cast<float>(rows);
  std::vector<float> out(static_cast<std::size_t>(cols), 0.0f);
  for (int r = 0; r < rows; ++r)
    for (int c = 0; c < cols; ++c)
      out[static_cast<std::size_t>(c)] +=
          a.at(static_cast<std::int64_t>(r) * cols + c);
  for (float& v : out) v *= inv;
  NodePtr an = a.node();
  return make_result({1, cols}, std::move(out), {a},
                     [an, rows, cols, inv](const std::vector<float>& g) {
                       for (int r = 0; r < rows; ++r)
                         for (int c = 0; c < cols; ++c)
                           an->grad[static_cast<std::size_t>(r) * cols + c] +=
                               g[static_cast<std::size_t>(c)] * inv;
                     });
}

Tensor sum_axis1(const Tensor& a) {
  check(a.dim() == 2, "sum_axis1: input must be 2-D");
  const int rows = a.shape()[0], cols = a.shape()[1];
  std::vector<float> out(static_cast<std::size_t>(rows), 0.0f);
  for (int r = 0; r < rows; ++r)
    for (int c = 0; c < cols; ++c)
      out[static_cast<std::size_t>(r)] +=
          a.at(static_cast<std::int64_t>(r) * cols + c);
  NodePtr an = a.node();
  return make_result({rows}, std::move(out), {a},
                     [an, rows, cols](const std::vector<float>& g) {
                       for (int r = 0; r < rows; ++r)
                         for (int c = 0; c < cols; ++c)
                           an->grad[static_cast<std::size_t>(r) * cols + c] +=
                               g[static_cast<std::size_t>(r)];
                     });
}

// ----------------------------------------------------------------- softmax ---

Tensor softmax_rows(const Tensor& a) {
  check(a.dim() == 2, "softmax_rows: input must be 2-D");
  const int rows = a.shape()[0], cols = a.shape()[1];
  std::vector<float> out(a.values().size());
  for (int r = 0; r < rows; ++r) {
    const float* in = a.data() + static_cast<std::size_t>(r) * cols;
    float* o = out.data() + static_cast<std::size_t>(r) * cols;
    float mx = in[0];
    for (int c = 1; c < cols; ++c) mx = std::max(mx, in[c]);
    float denom = 0.0f;
    for (int c = 0; c < cols; ++c) {
      o[c] = std::exp(in[c] - mx);
      denom += o[c];
    }
    const float inv = 1.0f / denom;
    for (int c = 0; c < cols; ++c) o[c] *= inv;
  }
  NodePtr an = a.node();
  std::vector<float> saved = out;
  return make_result(
      a.shape(), std::move(out), {a},
      [an, rows, cols, saved = std::move(saved)](const std::vector<float>& g) {
        // dx = p * (g - sum(g * p)) per row.
        for (int r = 0; r < rows; ++r) {
          const float* p = saved.data() + static_cast<std::size_t>(r) * cols;
          const float* gr = g.data() + static_cast<std::size_t>(r) * cols;
          float dot = 0.0f;
          for (int c = 0; c < cols; ++c) dot += gr[c] * p[c];
          for (int c = 0; c < cols; ++c)
            an->grad[static_cast<std::size_t>(r) * cols + c] +=
                p[c] * (gr[c] - dot);
        }
      });
}

Tensor log_softmax_rows(const Tensor& a) {
  check(a.dim() == 2, "log_softmax_rows: input must be 2-D");
  const int rows = a.shape()[0], cols = a.shape()[1];
  std::vector<float> out(a.values().size());
  for (int r = 0; r < rows; ++r) {
    const float* in = a.data() + static_cast<std::size_t>(r) * cols;
    float* o = out.data() + static_cast<std::size_t>(r) * cols;
    float mx = in[0];
    for (int c = 1; c < cols; ++c) mx = std::max(mx, in[c]);
    float denom = 0.0f;
    for (int c = 0; c < cols; ++c) denom += std::exp(in[c] - mx);
    const float lse = mx + std::log(denom);
    for (int c = 0; c < cols; ++c) o[c] = in[c] - lse;
  }
  NodePtr an = a.node();
  std::vector<float> saved = out;  // log p
  return make_result(
      a.shape(), std::move(out), {a},
      [an, rows, cols, saved = std::move(saved)](const std::vector<float>& g) {
        // dx = g - softmax * sum(g) per row.
        for (int r = 0; r < rows; ++r) {
          const float* lp = saved.data() + static_cast<std::size_t>(r) * cols;
          const float* gr = g.data() + static_cast<std::size_t>(r) * cols;
          float gsum = 0.0f;
          for (int c = 0; c < cols; ++c) gsum += gr[c];
          for (int c = 0; c < cols; ++c)
            an->grad[static_cast<std::size_t>(r) * cols + c] +=
                gr[c] - std::exp(lp[c]) * gsum;
        }
      });
}

// ---------------------------------------------------------------- indexing ---

Tensor gather_rows(const Tensor& x, const std::vector<int>& rows) {
  check(x.dim() == 2, "gather_rows: x must be 2-D");
  const int n = x.shape()[0], d = x.shape()[1];
  for (int r : rows)
    check(r >= 0 && r < n, "gather_rows: row index out of range");
  std::vector<float> out(rows.size() * static_cast<std::size_t>(d));
  for (std::size_t k = 0; k < rows.size(); ++k)
    for (int c = 0; c < d; ++c)
      out[k * d + c] = x.at(static_cast<std::int64_t>(rows[k]) * d + c);
  NodePtr xn = x.node();
  return make_result({static_cast<int>(rows.size()), d}, std::move(out), {x},
                     [xn, rows, d](const std::vector<float>& g) {
                       for (std::size_t k = 0; k < rows.size(); ++k)
                         for (int c = 0; c < d; ++c)
                           xn->grad[static_cast<std::size_t>(rows[k]) * d + c] +=
                               g[k * d + c];
                     });
}

Tensor gather_per_row(const Tensor& x, const std::vector<int>& cols) {
  check(x.dim() == 2, "gather_per_row: x must be 2-D");
  const int b = x.shape()[0], n = x.shape()[1];
  check(static_cast<int>(cols.size()) == b,
        "gather_per_row: one column index per row required");
  for (int c : cols)
    check(c >= 0 && c < n, "gather_per_row: column index out of range");
  std::vector<float> out(static_cast<std::size_t>(b));
  for (int r = 0; r < b; ++r)
    out[static_cast<std::size_t>(r)] =
        x.at(static_cast<std::int64_t>(r) * n + cols[static_cast<std::size_t>(r)]);
  NodePtr xn = x.node();
  return make_result({b}, std::move(out), {x},
                     [xn, cols, n](const std::vector<float>& g) {
                       for (std::size_t r = 0; r < cols.size(); ++r)
                         xn->grad[r * n + cols[r]] += g[r];
                     });
}

// ------------------------------------------------------------ convolutions ---

Tensor conv2d(const Tensor& x, const Tensor& w, const Tensor& b, int stride,
              int pad) {
  check(x.dim() == 4, "conv2d: input must be NCHW");
  check(w.dim() == 4, "conv2d: weight must be [OC, IC, KH, KW]");
  const int B = x.shape()[0], IC = x.shape()[1], H = x.shape()[2],
            W = x.shape()[3];
  const int OC = w.shape()[0], KH = w.shape()[2], KW = w.shape()[3];
  check(w.shape()[1] == IC, "conv2d: channel mismatch");
  check(b.size() == OC, "conv2d: bias size mismatch");
  const int OH = (H + 2 * pad - KH) / stride + 1;
  const int OW = (W + 2 * pad - KW) / stride + 1;
  check(OH > 0 && OW > 0, "conv2d: output would be empty");

  std::vector<float> out(
      static_cast<std::size_t>(B) * OC * OH * OW, 0.0f);
  const float* X = x.data();
  const float* Wt = w.data();
  const float* Bs = b.data();
  auto xi = [&](int bb, int c, int i, int j) {
    return ((static_cast<std::size_t>(bb) * IC + c) * H + i) * W + j;
  };
  auto wi = [&](int oc, int ic, int i, int j) {
    return ((static_cast<std::size_t>(oc) * IC + ic) * KH + i) * KW + j;
  };
  auto oi = [&](int bb, int oc, int i, int j) {
    return ((static_cast<std::size_t>(bb) * OC + oc) * OH + i) * OW + j;
  };
  for (int bb = 0; bb < B; ++bb)
    for (int oc = 0; oc < OC; ++oc)
      for (int oh = 0; oh < OH; ++oh)
        for (int ow = 0; ow < OW; ++ow) {
          float accv = Bs[oc];
          const int ih0 = oh * stride - pad;
          const int iw0 = ow * stride - pad;
          for (int ic = 0; ic < IC; ++ic)
            for (int kh = 0; kh < KH; ++kh) {
              const int ih = ih0 + kh;
              if (ih < 0 || ih >= H) continue;
              for (int kw = 0; kw < KW; ++kw) {
                const int iw = iw0 + kw;
                if (iw < 0 || iw >= W) continue;
                accv += X[xi(bb, ic, ih, iw)] * Wt[wi(oc, ic, kh, kw)];
              }
            }
          out[oi(bb, oc, oh, ow)] = accv;
        }

  NodePtr xn = x.node(), wn = w.node(), bn = b.node();
  return make_result(
      {B, OC, OH, OW}, std::move(out), {x, w, b},
      [xn, wn, bn, B, IC, H, W, OC, KH, KW, OH, OW, stride,
       pad](const std::vector<float>& g) {
        auto xi = [&](int bb, int c, int i, int j) {
          return ((static_cast<std::size_t>(bb) * IC + c) * H + i) * W + j;
        };
        auto wi = [&](int oc, int ic, int i, int j) {
          return ((static_cast<std::size_t>(oc) * IC + ic) * KH + i) * KW + j;
        };
        auto oi = [&](int bb, int oc, int i, int j) {
          return ((static_cast<std::size_t>(bb) * OC + oc) * OH + i) * OW + j;
        };
        for (int bb = 0; bb < B; ++bb)
          for (int oc = 0; oc < OC; ++oc)
            for (int oh = 0; oh < OH; ++oh)
              for (int ow = 0; ow < OW; ++ow) {
                const float gv = g[oi(bb, oc, oh, ow)];
                if (gv == 0.0f) continue;
                bn->grad[static_cast<std::size_t>(oc)] += gv;
                const int ih0 = oh * stride - pad;
                const int iw0 = ow * stride - pad;
                for (int ic = 0; ic < IC; ++ic)
                  for (int kh = 0; kh < KH; ++kh) {
                    const int ih = ih0 + kh;
                    if (ih < 0 || ih >= H) continue;
                    for (int kw = 0; kw < KW; ++kw) {
                      const int iw = iw0 + kw;
                      if (iw < 0 || iw >= W) continue;
                      xn->grad[xi(bb, ic, ih, iw)] +=
                          gv * wn->value[wi(oc, ic, kh, kw)];
                      wn->grad[wi(oc, ic, kh, kw)] +=
                          gv * xn->value[xi(bb, ic, ih, iw)];
                    }
                  }
              }
      });
}

Tensor conv_transpose2d(const Tensor& x, const Tensor& w, const Tensor& b,
                        int stride, int pad) {
  check(x.dim() == 4, "conv_transpose2d: input must be NCHW");
  check(w.dim() == 4, "conv_transpose2d: weight must be [IC, OC, KH, KW]");
  const int B = x.shape()[0], IC = x.shape()[1], H = x.shape()[2],
            W = x.shape()[3];
  const int OC = w.shape()[1], KH = w.shape()[2], KW = w.shape()[3];
  check(w.shape()[0] == IC, "conv_transpose2d: channel mismatch");
  check(b.size() == OC, "conv_transpose2d: bias size mismatch");
  const int OH = (H - 1) * stride - 2 * pad + KH;
  const int OW = (W - 1) * stride - 2 * pad + KW;
  check(OH > 0 && OW > 0, "conv_transpose2d: output would be empty");

  std::vector<float> out(static_cast<std::size_t>(B) * OC * OH * OW, 0.0f);
  auto xi = [&](int bb, int c, int i, int j) {
    return ((static_cast<std::size_t>(bb) * IC + c) * H + i) * W + j;
  };
  auto wi = [&](int ic, int oc, int i, int j) {
    return ((static_cast<std::size_t>(ic) * OC + oc) * KH + i) * KW + j;
  };
  auto oi = [&](int bb, int oc, int i, int j) {
    return ((static_cast<std::size_t>(bb) * OC + oc) * OH + i) * OW + j;
  };
  for (int bb = 0; bb < B; ++bb)
    for (int oc = 0; oc < OC; ++oc)
      for (int oh = 0; oh < OH; ++oh)
        for (int ow = 0; ow < OW; ++ow) out[oi(bb, oc, oh, ow)] = b.at(oc);
  for (int bb = 0; bb < B; ++bb)
    for (int ic = 0; ic < IC; ++ic)
      for (int ih = 0; ih < H; ++ih)
        for (int iw = 0; iw < W; ++iw) {
          const float xv = x.at(static_cast<std::int64_t>(xi(bb, ic, ih, iw)));
          if (xv == 0.0f) continue;
          for (int oc = 0; oc < OC; ++oc)
            for (int kh = 0; kh < KH; ++kh) {
              const int oh = ih * stride - pad + kh;
              if (oh < 0 || oh >= OH) continue;
              for (int kw = 0; kw < KW; ++kw) {
                const int ow = iw * stride - pad + kw;
                if (ow < 0 || ow >= OW) continue;
                out[oi(bb, oc, oh, ow)] += xv * w.at(static_cast<std::int64_t>(
                                                wi(ic, oc, kh, kw)));
              }
            }
        }

  NodePtr xn = x.node(), wn = w.node(), bn = b.node();
  return make_result(
      {B, OC, OH, OW}, std::move(out), {x, w, b},
      [xn, wn, bn, B, IC, H, W, OC, KH, KW, OH, OW, stride,
       pad](const std::vector<float>& g) {
        auto xi = [&](int bb, int c, int i, int j) {
          return ((static_cast<std::size_t>(bb) * IC + c) * H + i) * W + j;
        };
        auto wi = [&](int ic, int oc, int i, int j) {
          return ((static_cast<std::size_t>(ic) * OC + oc) * KH + i) * KW + j;
        };
        auto oi = [&](int bb, int oc, int i, int j) {
          return ((static_cast<std::size_t>(bb) * OC + oc) * OH + i) * OW + j;
        };
        // Bias gradient: sum over batch and spatial dims.
        for (int bb = 0; bb < B; ++bb)
          for (int oc = 0; oc < OC; ++oc)
            for (int oh = 0; oh < OH; ++oh)
              for (int ow = 0; ow < OW; ++ow)
                bn->grad[static_cast<std::size_t>(oc)] += g[oi(bb, oc, oh, ow)];
        for (int bb = 0; bb < B; ++bb)
          for (int ic = 0; ic < IC; ++ic)
            for (int ih = 0; ih < H; ++ih)
              for (int iw = 0; iw < W; ++iw) {
                const float xv = xn->value[xi(bb, ic, ih, iw)];
                float dx = 0.0f;
                for (int oc = 0; oc < OC; ++oc)
                  for (int kh = 0; kh < KH; ++kh) {
                    const int oh = ih * stride - pad + kh;
                    if (oh < 0 || oh >= OH) continue;
                    for (int kw = 0; kw < KW; ++kw) {
                      const int ow = iw * stride - pad + kw;
                      if (ow < 0 || ow >= OW) continue;
                      const float gv = g[oi(bb, oc, oh, ow)];
                      dx += gv * wn->value[wi(ic, oc, kh, kw)];
                      wn->grad[wi(ic, oc, kh, kw)] += gv * xv;
                    }
                  }
                xn->grad[xi(bb, ic, ih, iw)] += dx;
              }
      });
}

// ------------------------------------------------------------------- losses ---

Tensor mse_loss(const Tensor& pred, const Tensor& target) {
  check_same_shape(pred, target, "mse_loss");
  return mean_all(square(sub(pred, target)));
}

}  // namespace afp::num
