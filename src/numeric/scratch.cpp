#include "numeric/scratch.hpp"

#include <atomic>
#include <memory>
#include <stdexcept>
#include <vector>

namespace afp::num {

namespace {

std::atomic<std::uint64_t> g_allocations{0};
std::atomic<std::uint64_t> g_bytes{0};

struct Slab {
  std::unique_ptr<float[]> data;
  std::size_t capacity = 0;
  bool in_use = false;
};

/// Thread-local slab list.  Small (a handful of live leases at a time), so
/// linear best-fit scan is cheap.  Slabs live until thread exit.
class Arena {
 public:
  int acquire(std::size_t n) {
    int best = -1;
    for (int i = 0; i < static_cast<int>(slabs_.size()); ++i) {
      const Slab& s = slabs_[static_cast<std::size_t>(i)];
      if (s.in_use || s.capacity < n) continue;
      if (best < 0 ||
          s.capacity < slabs_[static_cast<std::size_t>(best)].capacity) {
        best = i;
      }
    }
    if (best < 0) {
      Slab s;
      // Round up so a size that drifts by a few elements between calls
      // (e.g. conv workspace across circuits) still reuses the slab:
      // powers of two while small, then 1 MiB granules so a large conv
      // workspace never pins more than ~1 MiB of slack per slab.
      constexpr std::size_t kGranule = std::size_t{1} << 18;  // floats, 1 MiB
      std::size_t cap = 64;
      while (cap < n && cap < kGranule) cap *= 2;
      if (cap < n) cap = (n + kGranule - 1) / kGranule * kGranule;
      s.data = std::make_unique<float[]>(cap);
      s.capacity = cap;
      g_allocations.fetch_add(1, std::memory_order_relaxed);
      g_bytes.fetch_add(cap * sizeof(float), std::memory_order_relaxed);
      slabs_.push_back(std::move(s));
      best = static_cast<int>(slabs_.size()) - 1;
    }
    slabs_[static_cast<std::size_t>(best)].in_use = true;
    return best;
  }

  float* data(int slot) {
    return slabs_[static_cast<std::size_t>(slot)].data.get();
  }

  void release(int slot) {
    slabs_[static_cast<std::size_t>(slot)].in_use = false;
  }

  static Arena& local() {
    thread_local Arena arena;
    return arena;
  }

 private:
  std::vector<Slab> slabs_;
};

}  // namespace

ScratchLease::ScratchLease(std::size_t n) : size_(n) {
  slot_ = Arena::local().acquire(n);
  data_ = Arena::local().data(slot_);
}

ScratchLease::~ScratchLease() { Arena::local().release(slot_); }

std::uint64_t scratch_allocation_count() {
  return g_allocations.load(std::memory_order_relaxed);
}

std::uint64_t scratch_allocated_bytes() {
  return g_bytes.load(std::memory_order_relaxed);
}

}  // namespace afp::num
