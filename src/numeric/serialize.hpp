// Binary save/load of named parameter sets (model checkpoints).
//
// Format: magic "AFPT", u32 version, u32 count, then per tensor:
// u32 name length, name bytes, u32 rank, i32 dims..., float32 data.
// Little-endian, as produced by the writing host (the project targets a
// single host; no cross-endian support is attempted).
//
// A second, exact format ("AFPW") stores named u64-word vectors for state
// that must round-trip bitwise (search checkpoints: doubles are bit_cast
// through u64, counters stored directly).  The float32 tensor format is
// lossy by design and unsuitable for resume-parity checkpoints.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "numeric/tensor.hpp"

namespace afp::num {

/// Writes `tensors` to `path`. Throws std::runtime_error on I/O failure.
void save_tensors(const std::string& path,
                  const std::map<std::string, Tensor>& tensors);

/// Reads a checkpoint written by save_tensors.  Throws std::runtime_error
/// on I/O or format errors.
std::map<std::string, Tensor> load_tensors(const std::string& path);

/// Copies values from `src` into the same-named, same-shaped tensors of
/// `dst`; throws if a name is missing or shapes differ.
void load_into(const std::map<std::string, Tensor>& src,
               std::map<std::string, Tensor>& dst);

/// Named u64-word vectors, for bitwise-exact state.
using WordMap = std::map<std::string, std::vector<std::uint64_t>>;

/// Writes `words` to `path` atomically (temp file + rename), so a crash
/// mid-write never leaves a truncated checkpoint behind.  Format: magic
/// "AFPW", u32 version, u32 count, then per entry: u32 name length, name
/// bytes, u64 word count, u64 data.  Throws std::runtime_error on I/O
/// failure.
void save_words(const std::string& path, const WordMap& words);

/// Reads a checkpoint written by save_words.  Throws std::runtime_error on
/// I/O or format errors.
WordMap load_words(const std::string& path);

}  // namespace afp::num
