// Binary save/load of named parameter sets (model checkpoints).
//
// Format: magic "AFPT", u32 version, u32 count, then per tensor:
// u32 name length, name bytes, u32 rank, i32 dims..., float32 data.
// Little-endian, as produced by the writing host (the project targets a
// single host; no cross-endian support is attempted).
#pragma once

#include <map>
#include <string>

#include "numeric/tensor.hpp"

namespace afp::num {

/// Writes `tensors` to `path`. Throws std::runtime_error on I/O failure.
void save_tensors(const std::string& path,
                  const std::map<std::string, Tensor>& tensors);

/// Reads a checkpoint written by save_tensors.  Throws std::runtime_error
/// on I/O or format errors.
std::map<std::string, Tensor> load_tensors(const std::string& path);

/// Copies values from `src` into the same-named, same-shaped tensors of
/// `dst`; throws if a name is missing or shapes differ.
void load_into(const std::map<std::string, Tensor>& src,
               std::map<std::string, Tensor>& dst);

}  // namespace afp::num
