// First-order optimizers over lists of parameter tensors.
#pragma once

#include <vector>

#include "numeric/tensor.hpp"

namespace afp::num {

/// Base interface; parameters are captured by shared storage handle, so the
/// optimizer sees gradient updates made by backward().
class Optimizer {
 public:
  explicit Optimizer(std::vector<Tensor> params) : params_(std::move(params)) {}
  virtual ~Optimizer() = default;

  /// Applies one update using the currently accumulated gradients.
  virtual void step() = 0;

  /// Clears gradients of all managed parameters.
  void zero_grad() {
    for (Tensor& p : params_) p.zero_grad();
  }

  /// Global L2 gradient-norm clipping; returns the pre-clip norm.
  double clip_grad_norm(double max_norm);

  const std::vector<Tensor>& params() const { return params_; }

 protected:
  std::vector<Tensor> params_;
};

/// Plain SGD with optional momentum.
class SGD final : public Optimizer {
 public:
  SGD(std::vector<Tensor> params, float lr, float momentum = 0.0f);
  void step() override;

  float lr;

 private:
  float momentum_;
  std::vector<std::vector<float>> velocity_;
};

/// Adam (Kingma & Ba, 2015) with bias correction.
class Adam final : public Optimizer {
 public:
  Adam(std::vector<Tensor> params, float lr, float beta1 = 0.9f,
       float beta2 = 0.999f, float eps = 1e-8f);
  void step() override;

  float lr;

 private:
  float beta1_, beta2_, eps_;
  std::int64_t t_ = 0;
  std::vector<std::vector<float>> m_, v_;
};

}  // namespace afp::num
