#include "numeric/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace afp::num {

namespace {

thread_local bool g_in_worker = false;

int default_thread_count() {
  if (const char* s = std::getenv("AFP_NUM_THREADS")) {
    const int v = std::atoi(s);
    if (v >= 1) return v;
  }
  const unsigned hc = std::thread::hardware_concurrency();
  return hc > 0 ? static_cast<int>(hc) : 1;
}

/// One parallel_for invocation.  Immutable except for the chunk cursor and
/// completion counter; workers hold the job via shared_ptr, so a worker
/// that wakes late (or is descheduled mid-claim) can never observe the
/// fields of a *newer* job through stale pointers — its fetch_add on the
/// exhausted cursor simply fails and it goes back to sleep.
struct Job {
  const ParallelBody* body = nullptr;
  std::int64_t total = 0, step = 0, chunks = 0;
  std::atomic<std::int64_t> next{0};
  std::atomic<std::int64_t> remaining{0};  ///< chunks not yet completed
  std::exception_ptr error;                ///< guarded by the pool mutex
};

/// Fixed pool of n-1 workers; the caller runs chunks too.  One job is
/// active at a time (parallel_for holds job_mutex_).
class ThreadPool {
 public:
  static ThreadPool& instance() {
    static ThreadPool pool;
    return pool;
  }

  int size() const { return threads_; }

  void resize(int n) {
    std::lock_guard<std::mutex> job_lock(job_mutex_);
    stop_workers();
    threads_ = std::max(1, n);
    start_workers();
  }

  void run(std::int64_t n, std::int64_t grain, const ParallelBody& body) {
    std::lock_guard<std::mutex> job_lock(job_mutex_);
    const std::int64_t max_chunks =
        std::max<std::int64_t>(1, (n + grain - 1) / grain);
    const std::int64_t chunks = std::min<std::int64_t>(max_chunks, threads_);
    if (chunks <= 1) {
      body(0, n);
      return;
    }
    auto job = std::make_shared<Job>();
    job->body = &body;
    job->total = n;
    job->step = (n + chunks - 1) / chunks;  // chunk c: [c*step, min(n, ..))
    job->chunks = chunks;
    job->remaining.store(chunks, std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lk(mutex_);
      job_ = job;
      ++generation_;
    }
    cv_work_.notify_all();
    drain(*job);
    {
      std::unique_lock<std::mutex> lk(mutex_);
      cv_done_.wait(lk, [&] {
        return job->remaining.load(std::memory_order_acquire) == 0;
      });
      job_.reset();
      if (job->error) {
        auto err = job->error;
        lk.unlock();
        std::rethrow_exception(err);
      }
    }
  }

 private:
  ThreadPool() : threads_(default_thread_count()) { start_workers(); }

  ~ThreadPool() {
    std::lock_guard<std::mutex> job_lock(job_mutex_);
    stop_workers();
  }

  void start_workers() {
    for (int i = 1; i < threads_; ++i) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  }

  void stop_workers() {
    {
      std::lock_guard<std::mutex> lk(mutex_);
      stop_ = true;
    }
    cv_work_.notify_all();
    for (auto& w : workers_) w.join();
    workers_.clear();
    stop_ = false;
  }

  void worker_loop() {
    g_in_worker = true;
    std::uint64_t seen = 0;
    for (;;) {
      std::shared_ptr<Job> job;
      {
        std::unique_lock<std::mutex> lk(mutex_);
        cv_work_.wait(lk, [&] { return stop_ || generation_ != seen; });
        if (stop_) return;
        seen = generation_;
        job = job_;  // may already be null if the job finished
      }
      if (job) drain(*job);
    }
  }

  /// Claims and runs chunks until the job's cursor is exhausted.
  void drain(Job& job) {
    const bool prev = g_in_worker;
    g_in_worker = true;
    std::int64_t done_here = 0;
    for (;;) {
      const std::int64_t c = job.next.fetch_add(1, std::memory_order_relaxed);
      if (c >= job.chunks) break;
      const std::int64_t begin = c * job.step;
      const std::int64_t end = std::min(job.total, begin + job.step);
      try {
        (*job.body)(begin, end);
      } catch (...) {
        std::lock_guard<std::mutex> lk(mutex_);
        if (!job.error) job.error = std::current_exception();
      }
      ++done_here;
    }
    g_in_worker = prev;
    if (done_here > 0 &&
        job.remaining.fetch_sub(done_here, std::memory_order_acq_rel) ==
            done_here) {
      // Last chunk: wake the caller.  Lock pairs with its predicate wait.
      std::lock_guard<std::mutex> lk(mutex_);
      cv_done_.notify_all();
    }
  }

  int threads_;
  std::vector<std::thread> workers_;

  std::mutex job_mutex_;  ///< serializes parallel_for calls + resize

  std::mutex mutex_;
  std::condition_variable cv_work_, cv_done_;
  bool stop_ = false;
  std::uint64_t generation_ = 0;
  std::shared_ptr<Job> job_;
};

}  // namespace

int num_threads() { return ThreadPool::instance().size(); }

void set_num_threads(int n) {
  ThreadPool::instance().resize(n > 0 ? n : default_thread_count());
}

void parallel_for(std::int64_t n, std::int64_t grain,
                  const ParallelBody& body) {
  if (n <= 0) return;
  if (grain < 1) grain = 1;
  if (g_in_worker || num_threads() == 1 || n <= grain) {
    body(0, n);
    return;
  }
  ThreadPool::instance().run(n, grain, body);
}

}  // namespace afp::num
