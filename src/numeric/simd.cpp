#include "numeric/simd.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <string_view>

#if defined(__x86_64__) || defined(__i386__)
#define AFP_X86 1
#include <immintrin.h>
#endif

namespace afp::num {

// Declared in ops.hpp; implemented here next to the tier state.
bool naive_kernels();
void set_naive_kernels(bool naive);

namespace {

// ===================================================================== scalar
//
// PR 1's register-blocked loops, generalized with leading dimensions.  These
// are also the portable fallback on non-x86 builds.

void s_gemm_nn_rows(std::int64_t i0, std::int64_t i1, std::int64_t K,
                    std::int64_t N, const float* A, std::int64_t lda,
                    const float* B, std::int64_t ldb, float* C,
                    std::int64_t ldc, bool accumulate) {
  if (!accumulate) {
    for (std::int64_t i = i0; i < i1; ++i)
      std::fill(C + i * ldc, C + i * ldc + N, 0.0f);
  }
  std::int64_t i = i0;
  // Blocked over 4 output rows: each B row is loaded once per 4 C-row
  // updates with the C rows hot in L1.
  for (; i + 4 <= i1; i += 4) {
    const float* a0 = A + i * lda;
    const float* a1 = a0 + lda;
    const float* a2 = a1 + lda;
    const float* a3 = a2 + lda;
    float* c0 = C + i * ldc;
    float* c1 = c0 + ldc;
    float* c2 = c1 + ldc;
    float* c3 = c2 + ldc;
    for (std::int64_t k = 0; k < K; ++k) {
      const float* b = B + k * ldb;
      const float v0 = a0[k], v1 = a1[k], v2 = a2[k], v3 = a3[k];
      for (std::int64_t j = 0; j < N; ++j) {
        const float bv = b[j];
        c0[j] += v0 * bv;
        c1[j] += v1 * bv;
        c2[j] += v2 * bv;
        c3[j] += v3 * bv;
      }
    }
  }
  // Remainder rows: plain ikj with the exact same per-element operation
  // sequence (k ascending, one accumulator), so results do not depend on
  // where parallel_for chunk boundaries fall.
  for (; i < i1; ++i) {
    const float* a = A + i * lda;
    float* c = C + i * ldc;
    for (std::int64_t k = 0; k < K; ++k) {
      const float av = a[k];
      const float* b = B + k * ldb;
      for (std::int64_t j = 0; j < N; ++j) c[j] += av * b[j];
    }
  }
}

void s_gemm_nt_rows(std::int64_t i0, std::int64_t i1, std::int64_t K,
                    std::int64_t N, const float* A, std::int64_t lda,
                    const float* B, std::int64_t ldb, float* C,
                    std::int64_t ldc, bool accumulate) {
  for (std::int64_t i = i0; i < i1; ++i) {
    const float* a = A + i * lda;
    float* c = C + i * ldc;
    for (std::int64_t j = 0; j < N; ++j) {
      const float* b = B + j * ldb;
      float s0 = 0.0f, s1 = 0.0f, s2 = 0.0f, s3 = 0.0f;
      std::int64_t k = 0;
      for (; k + 4 <= K; k += 4) {
        s0 += a[k] * b[k];
        s1 += a[k + 1] * b[k + 1];
        s2 += a[k + 2] * b[k + 2];
        s3 += a[k + 3] * b[k + 3];
      }
      float s = (s0 + s1) + (s2 + s3);
      for (; k < K; ++k) s += a[k] * b[k];
      if (accumulate) c[j] += s;
      else c[j] = s;
    }
  }
}

void s_gemm_tn_rows(std::int64_t k0, std::int64_t k1, std::int64_t M,
                    std::int64_t N, const float* A, std::int64_t lda,
                    const float* B, std::int64_t ldb, float* C,
                    std::int64_t ldc, bool accumulate) {
  if (!accumulate) {
    for (std::int64_t k = k0; k < k1; ++k)
      std::fill(C + k * ldc, C + k * ldc + N, 0.0f);
  }
  std::int64_t k = k0;
  // Blocked over 4 output rows so the A column reads become contiguous
  // 4-float loads.
  for (; k + 4 <= k1; k += 4) {
    float* c0 = C + k * ldc;
    float* c1 = c0 + ldc;
    float* c2 = c1 + ldc;
    float* c3 = c2 + ldc;
    for (std::int64_t i = 0; i < M; ++i) {
      const float* a = A + i * lda + k;
      const float v0 = a[0], v1 = a[1], v2 = a[2], v3 = a[3];
      const float* b = B + i * ldb;
      for (std::int64_t j = 0; j < N; ++j) {
        const float bv = b[j];
        c0[j] += v0 * bv;
        c1[j] += v1 * bv;
        c2[j] += v2 * bv;
        c3[j] += v3 * bv;
      }
    }
  }
  // Remainder rows: same per-element sequence as the blocked path.
  for (; k < k1; ++k) {
    float* c = C + k * ldc;
    for (std::int64_t i = 0; i < M; ++i) {
      const float av = A[i * lda + k];
      const float* b = B + i * ldb;
      for (std::int64_t j = 0; j < N; ++j) c[j] += av * b[j];
    }
  }
}

void s_add(const float* a, const float* b, float* o, std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) o[i] = a[i] + b[i];
}
void s_sub(const float* a, const float* b, float* o, std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) o[i] = a[i] - b[i];
}
void s_mul(const float* a, const float* b, float* o, std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) o[i] = a[i] * b[i];
}
void s_scale(const float* a, float s, float* o, std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) o[i] = a[i] * s;
}
void s_acc(float* dst, const float* src, std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) dst[i] += src[i];
}
void s_acc_scaled(float* dst, const float* src, float s, std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) dst[i] += s * src[i];
}
void s_acc_mul(float* dst, const float* a, const float* b, std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) dst[i] += a[i] * b[i];
}
void s_acc_const(float* dst, float c, std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) dst[i] += c;
}
void s_relu(const float* x, float* o, std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) o[i] = std::max(0.0f, x[i]);
}
void s_relu_bwd_acc(const float* x, const float* g, float* gx,
                    std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i)
    if (x[i] > 0.0f) gx[i] += g[i];
}
void s_bias_relu_row(const float* y, const float* bias, float* o,
                     std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) o[i] = std::max(0.0f, y[i] + bias[i]);
}

float s_reduce_sum(const float* x, std::int64_t n) {
  float s = 0.0f;
  for (std::int64_t i = 0; i < n; ++i) s += x[i];
  return s;
}
float s_reduce_max(const float* x, std::int64_t n) {
  float m = x[0];
  for (std::int64_t i = 1; i < n; ++i) m = std::max(m, x[i]);
  return m;
}
float s_dot(const float* a, const float* b, std::int64_t n) {
  float s0 = 0.0f, s1 = 0.0f, s2 = 0.0f, s3 = 0.0f;
  std::int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    s0 += a[i] * b[i];
    s1 += a[i + 1] * b[i + 1];
    s2 += a[i + 2] * b[i + 2];
    s3 += a[i + 3] * b[i + 3];
  }
  float s = (s0 + s1) + (s2 + s3);
  for (; i < n; ++i) s += a[i] * b[i];
  return s;
}

void s_softmax_row(const float* in, float* o, std::int64_t n) {
  const float mx = s_reduce_max(in, n);
  float denom = 0.0f;
  for (std::int64_t i = 0; i < n; ++i) {
    o[i] = std::exp(in[i] - mx);
    denom += o[i];
  }
  s_scale(o, 1.0f / denom, o, n);
}

void s_log_softmax_row(const float* in, float* o, std::int64_t n) {
  const float mx = s_reduce_max(in, n);
  float denom = 0.0f;
  for (std::int64_t i = 0; i < n; ++i) denom += std::exp(in[i] - mx);
  const float lse = mx + std::log(denom);
  for (std::int64_t i = 0; i < n; ++i) o[i] = in[i] - lse;
}

constexpr simd::Kernels kScalarKernels = {
    s_gemm_nn_rows, s_gemm_nt_rows, s_gemm_tn_rows,
    s_add,          s_sub,          s_mul,
    s_scale,        s_acc,          s_acc_scaled,
    s_acc_mul,      s_acc_const,    s_relu,
    s_relu_bwd_acc, s_bias_relu_row,
    s_reduce_sum,   s_reduce_max,   s_dot,
    s_softmax_row,  s_log_softmax_row,
};

// ======================================================================= AVX2
//
// Each function carries a target attribute so the translation unit builds
// without global -mavx2 flags; the table below is only installed after a
// runtime __builtin_cpu_supports check.
//
// Determinism: every output element is accumulated in a fixed order (GEMM:
// k/i ascending into one accumulator lane; reductions: a fixed lane scheme
// that depends only on n).  Which register-blocking variant covers an output
// row may change with chunk boundaries, but all variants execute the same
// per-element FP sequence, so values are thread-count independent.

#if defined(AFP_X86) && (defined(__GNUC__) || defined(__clang__))
#define AFP_HAVE_AVX2_BUILD 1
#define AFP_AVX2 __attribute__((target("avx2,fma")))

AFP_AVX2 inline float hsum256(__m256 v) {
  __m128 lo = _mm256_castps256_ps128(v);
  const __m128 hi = _mm256_extractf128_ps(v, 1);
  lo = _mm_add_ps(lo, hi);
  __m128 sh = _mm_movehl_ps(lo, lo);
  lo = _mm_add_ps(lo, sh);
  sh = _mm_shuffle_ps(lo, lo, 0x1);
  lo = _mm_add_ss(lo, sh);
  return _mm_cvtss_f32(lo);
}

AFP_AVX2 inline float hmax256(__m256 v) {
  __m128 lo = _mm256_castps256_ps128(v);
  const __m128 hi = _mm256_extractf128_ps(v, 1);
  lo = _mm_max_ps(lo, hi);
  __m128 sh = _mm_movehl_ps(lo, lo);
  lo = _mm_max_ps(lo, sh);
  sh = _mm_shuffle_ps(lo, lo, 0x1);
  lo = _mm_max_ss(lo, sh);
  return _mm_cvtss_f32(lo);
}

/// One C row of gemm_nn/gemm_tn: c[0:N] += sum_t coeff(t) * B[t*ldb + 0:N],
/// where coeff(t) = A[t * astride].  t is the contraction index (k for nn
/// with astride 1, i for tn with astride lda).
AFP_AVX2 inline void rank_update_row(std::int64_t T, std::int64_t N,
                                     const float* A, std::int64_t astride,
                                     const float* B, std::int64_t ldb,
                                     float* c) {
  std::int64_t j = 0;
  for (; j + 16 <= N; j += 16) {
    __m256 acc0 = _mm256_loadu_ps(c + j);
    __m256 acc1 = _mm256_loadu_ps(c + j + 8);
    for (std::int64_t t = 0; t < T; ++t) {
      const __m256 av = _mm256_set1_ps(A[t * astride]);
      const float* b = B + t * ldb + j;
      acc0 = _mm256_fmadd_ps(av, _mm256_loadu_ps(b), acc0);
      acc1 = _mm256_fmadd_ps(av, _mm256_loadu_ps(b + 8), acc1);
    }
    _mm256_storeu_ps(c + j, acc0);
    _mm256_storeu_ps(c + j + 8, acc1);
  }
  for (; j + 8 <= N; j += 8) {
    __m256 acc = _mm256_loadu_ps(c + j);
    for (std::int64_t t = 0; t < T; ++t) {
      acc = _mm256_fmadd_ps(_mm256_set1_ps(A[t * astride]),
                            _mm256_loadu_ps(B + t * ldb + j), acc);
    }
    _mm256_storeu_ps(c + j, acc);
  }
  for (; j < N; ++j) {
    float s = c[j];
    for (std::int64_t t = 0; t < T; ++t)
      s = std::fma(A[t * astride], B[t * ldb + j], s);
    c[j] = s;
  }
}

/// Four C rows at once: B rows are loaded once per 4 C-row updates.  The
/// per-element FP sequence (t ascending, one fused accumulator) matches
/// rank_update_row exactly.
AFP_AVX2 inline void rank_update_row4(std::int64_t T, std::int64_t N,
                                      const float* A, std::int64_t arow,
                                      std::int64_t astride, const float* B,
                                      std::int64_t ldb, float* c0,
                                      std::int64_t ldc) {
  float* c1 = c0 + ldc;
  float* c2 = c1 + ldc;
  float* c3 = c2 + ldc;
  std::int64_t j = 0;
  for (; j + 8 <= N; j += 8) {
    __m256 a0 = _mm256_loadu_ps(c0 + j);
    __m256 a1 = _mm256_loadu_ps(c1 + j);
    __m256 a2 = _mm256_loadu_ps(c2 + j);
    __m256 a3 = _mm256_loadu_ps(c3 + j);
    for (std::int64_t t = 0; t < T; ++t) {
      const __m256 bv = _mm256_loadu_ps(B + t * ldb + j);
      const float* a = A + t * astride;
      a0 = _mm256_fmadd_ps(_mm256_set1_ps(a[0 * arow]), bv, a0);
      a1 = _mm256_fmadd_ps(_mm256_set1_ps(a[1 * arow]), bv, a1);
      a2 = _mm256_fmadd_ps(_mm256_set1_ps(a[2 * arow]), bv, a2);
      a3 = _mm256_fmadd_ps(_mm256_set1_ps(a[3 * arow]), bv, a3);
    }
    _mm256_storeu_ps(c0 + j, a0);
    _mm256_storeu_ps(c1 + j, a1);
    _mm256_storeu_ps(c2 + j, a2);
    _mm256_storeu_ps(c3 + j, a3);
  }
  for (; j < N; ++j) {
    float s0 = c0[j], s1 = c1[j], s2 = c2[j], s3 = c3[j];
    for (std::int64_t t = 0; t < T; ++t) {
      const float* a = A + t * astride;
      const float bv = B[t * ldb + j];
      s0 = std::fma(a[0 * arow], bv, s0);
      s1 = std::fma(a[1 * arow], bv, s1);
      s2 = std::fma(a[2 * arow], bv, s2);
      s3 = std::fma(a[3 * arow], bv, s3);
    }
    c0[j] = s0;
    c1[j] = s1;
    c2[j] = s2;
    c3[j] = s3;
  }
}

AFP_AVX2 void v_gemm_nn_rows(std::int64_t i0, std::int64_t i1, std::int64_t K,
                             std::int64_t N, const float* A, std::int64_t lda,
                             const float* B, std::int64_t ldb, float* C,
                             std::int64_t ldc, bool accumulate) {
  if (!accumulate) {
    for (std::int64_t i = i0; i < i1; ++i)
      std::memset(C + i * ldc, 0, static_cast<std::size_t>(N) * sizeof(float));
  }
  std::int64_t i = i0;
  for (; i + 4 <= i1; i += 4)
    rank_update_row4(K, N, A + i * lda, /*arow=*/lda, /*astride=*/1, B, ldb,
                     C + i * ldc, ldc);
  for (; i < i1; ++i)
    rank_update_row(K, N, A + i * lda, /*astride=*/1, B, ldb, C + i * ldc);
}

AFP_AVX2 void v_gemm_tn_rows(std::int64_t k0, std::int64_t k1, std::int64_t M,
                             std::int64_t N, const float* A, std::int64_t lda,
                             const float* B, std::int64_t ldb, float* C,
                             std::int64_t ldc, bool accumulate) {
  if (!accumulate) {
    for (std::int64_t k = k0; k < k1; ++k)
      std::memset(C + k * ldc, 0, static_cast<std::size_t>(N) * sizeof(float));
  }
  std::int64_t k = k0;
  for (; k + 4 <= k1; k += 4)
    rank_update_row4(M, N, A + k, /*arow=*/1, /*astride=*/lda, B, ldb,
                     C + k * ldc, ldc);
  for (; k < k1; ++k)
    rank_update_row(M, N, A + k, /*astride=*/lda, B, ldb, C + k * ldc);
}

/// dot(a, b) over [0, K): one 8-lane fused accumulator, k ascending, fixed
/// horizontal-sum sequence, scalar fma tail.
AFP_AVX2 inline float dot_avx2(const float* a, const float* b,
                               std::int64_t K) {
  __m256 acc = _mm256_setzero_ps();
  std::int64_t k = 0;
  for (; k + 8 <= K; k += 8)
    acc = _mm256_fmadd_ps(_mm256_loadu_ps(a + k), _mm256_loadu_ps(b + k), acc);
  float s = hsum256(acc);
  for (; k < K; ++k) s = std::fma(a[k], b[k], s);
  return s;
}

AFP_AVX2 void v_gemm_nt_rows(std::int64_t i0, std::int64_t i1, std::int64_t K,
                             std::int64_t N, const float* A, std::int64_t lda,
                             const float* B, std::int64_t ldb, float* C,
                             std::int64_t ldc, bool accumulate) {
  for (std::int64_t i = i0; i < i1; ++i) {
    const float* a = A + i * lda;
    float* c = C + i * ldc;
    std::int64_t j = 0;
    // 4 dots share each A load; every dot keeps its own single accumulator
    // so the per-element sequence matches the 1-dot tail exactly.
    for (; j + 4 <= N; j += 4) {
      const float* b0 = B + j * ldb;
      const float* b1 = b0 + ldb;
      const float* b2 = b1 + ldb;
      const float* b3 = b2 + ldb;
      __m256 q0 = _mm256_setzero_ps(), q1 = _mm256_setzero_ps();
      __m256 q2 = _mm256_setzero_ps(), q3 = _mm256_setzero_ps();
      std::int64_t k = 0;
      for (; k + 8 <= K; k += 8) {
        const __m256 av = _mm256_loadu_ps(a + k);
        q0 = _mm256_fmadd_ps(av, _mm256_loadu_ps(b0 + k), q0);
        q1 = _mm256_fmadd_ps(av, _mm256_loadu_ps(b1 + k), q1);
        q2 = _mm256_fmadd_ps(av, _mm256_loadu_ps(b2 + k), q2);
        q3 = _mm256_fmadd_ps(av, _mm256_loadu_ps(b3 + k), q3);
      }
      float s0 = hsum256(q0), s1 = hsum256(q1), s2 = hsum256(q2),
            s3 = hsum256(q3);
      for (; k < K; ++k) {
        const float av = a[k];
        s0 = std::fma(av, b0[k], s0);
        s1 = std::fma(av, b1[k], s1);
        s2 = std::fma(av, b2[k], s2);
        s3 = std::fma(av, b3[k], s3);
      }
      if (accumulate) {
        c[j] += s0;
        c[j + 1] += s1;
        c[j + 2] += s2;
        c[j + 3] += s3;
      } else {
        c[j] = s0;
        c[j + 1] = s1;
        c[j + 2] = s2;
        c[j + 3] = s3;
      }
    }
    for (; j < N; ++j) {
      const float s = dot_avx2(a, B + j * ldb, K);
      if (accumulate) c[j] += s;
      else c[j] = s;
    }
  }
}

AFP_AVX2 void v_add(const float* a, const float* b, float* o, std::int64_t n) {
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8)
    _mm256_storeu_ps(o + i,
                     _mm256_add_ps(_mm256_loadu_ps(a + i),
                                   _mm256_loadu_ps(b + i)));
  for (; i < n; ++i) o[i] = a[i] + b[i];
}

AFP_AVX2 void v_sub(const float* a, const float* b, float* o, std::int64_t n) {
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8)
    _mm256_storeu_ps(o + i,
                     _mm256_sub_ps(_mm256_loadu_ps(a + i),
                                   _mm256_loadu_ps(b + i)));
  for (; i < n; ++i) o[i] = a[i] - b[i];
}

AFP_AVX2 void v_mul(const float* a, const float* b, float* o, std::int64_t n) {
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8)
    _mm256_storeu_ps(o + i,
                     _mm256_mul_ps(_mm256_loadu_ps(a + i),
                                   _mm256_loadu_ps(b + i)));
  for (; i < n; ++i) o[i] = a[i] * b[i];
}

AFP_AVX2 void v_scale(const float* a, float s, float* o, std::int64_t n) {
  const __m256 sv = _mm256_set1_ps(s);
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8)
    _mm256_storeu_ps(o + i, _mm256_mul_ps(_mm256_loadu_ps(a + i), sv));
  for (; i < n; ++i) o[i] = a[i] * s;
}

AFP_AVX2 void v_acc(float* dst, const float* src, std::int64_t n) {
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8)
    _mm256_storeu_ps(dst + i, _mm256_add_ps(_mm256_loadu_ps(dst + i),
                                            _mm256_loadu_ps(src + i)));
  for (; i < n; ++i) dst[i] += src[i];
}

AFP_AVX2 void v_acc_scaled(float* dst, const float* src, float s,
                           std::int64_t n) {
  const __m256 sv = _mm256_set1_ps(s);
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8)
    _mm256_storeu_ps(dst + i, _mm256_fmadd_ps(sv, _mm256_loadu_ps(src + i),
                                              _mm256_loadu_ps(dst + i)));
  for (; i < n; ++i) dst[i] = std::fma(s, src[i], dst[i]);
}

AFP_AVX2 void v_acc_mul(float* dst, const float* a, const float* b,
                        std::int64_t n) {
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8)
    _mm256_storeu_ps(dst + i,
                     _mm256_fmadd_ps(_mm256_loadu_ps(a + i),
                                     _mm256_loadu_ps(b + i),
                                     _mm256_loadu_ps(dst + i)));
  for (; i < n; ++i) dst[i] = std::fma(a[i], b[i], dst[i]);
}

AFP_AVX2 void v_acc_const(float* dst, float c, std::int64_t n) {
  const __m256 cv = _mm256_set1_ps(c);
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8)
    _mm256_storeu_ps(dst + i, _mm256_add_ps(_mm256_loadu_ps(dst + i), cv));
  for (; i < n; ++i) dst[i] += c;
}

AFP_AVX2 void v_relu(const float* x, float* o, std::int64_t n) {
  const __m256 zero = _mm256_setzero_ps();
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8)
    _mm256_storeu_ps(o + i, _mm256_max_ps(_mm256_loadu_ps(x + i), zero));
  for (; i < n; ++i) o[i] = std::max(0.0f, x[i]);
}

AFP_AVX2 void v_relu_bwd_acc(const float* x, const float* g, float* gx,
                             std::int64_t n) {
  const __m256 zero = _mm256_setzero_ps();
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 mask = _mm256_cmp_ps(_mm256_loadu_ps(x + i), zero, _CMP_GT_OQ);
    const __m256 gm = _mm256_and_ps(_mm256_loadu_ps(g + i), mask);
    _mm256_storeu_ps(gx + i, _mm256_add_ps(_mm256_loadu_ps(gx + i), gm));
  }
  for (; i < n; ++i)
    if (x[i] > 0.0f) gx[i] += g[i];
}

AFP_AVX2 void v_bias_relu_row(const float* y, const float* bias, float* o,
                              std::int64_t n) {
  const __m256 zero = _mm256_setzero_ps();
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8)
    _mm256_storeu_ps(
        o + i, _mm256_max_ps(_mm256_add_ps(_mm256_loadu_ps(y + i),
                                           _mm256_loadu_ps(bias + i)),
                             zero));
  for (; i < n; ++i) o[i] = std::max(0.0f, y[i] + bias[i]);
}

AFP_AVX2 float v_reduce_sum(const float* x, std::int64_t n) {
  __m256 a0 = _mm256_setzero_ps(), a1 = _mm256_setzero_ps();
  __m256 a2 = _mm256_setzero_ps(), a3 = _mm256_setzero_ps();
  std::int64_t i = 0;
  for (; i + 32 <= n; i += 32) {
    a0 = _mm256_add_ps(a0, _mm256_loadu_ps(x + i));
    a1 = _mm256_add_ps(a1, _mm256_loadu_ps(x + i + 8));
    a2 = _mm256_add_ps(a2, _mm256_loadu_ps(x + i + 16));
    a3 = _mm256_add_ps(a3, _mm256_loadu_ps(x + i + 24));
  }
  for (; i + 8 <= n; i += 8) a0 = _mm256_add_ps(a0, _mm256_loadu_ps(x + i));
  float s = hsum256(_mm256_add_ps(_mm256_add_ps(a0, a1),
                                  _mm256_add_ps(a2, a3)));
  for (; i < n; ++i) s += x[i];
  return s;
}

AFP_AVX2 float v_reduce_max(const float* x, std::int64_t n) {
  float m = x[0];
  std::int64_t i = 0;
  if (n >= 8) {
    __m256 vm = _mm256_loadu_ps(x);
    for (i = 8; i + 8 <= n; i += 8)
      vm = _mm256_max_ps(vm, _mm256_loadu_ps(x + i));
    m = hmax256(vm);
  }
  for (; i < n; ++i) m = std::max(m, x[i]);
  return m;
}

AFP_AVX2 float v_dot(const float* a, const float* b, std::int64_t n) {
  return dot_avx2(a, b, n);
}

AFP_AVX2 void v_softmax_row(const float* in, float* o, std::int64_t n) {
  const float mx = v_reduce_max(in, n);
  for (std::int64_t i = 0; i < n; ++i) o[i] = std::exp(in[i] - mx);
  const float denom = v_reduce_sum(o, n);
  v_scale(o, 1.0f / denom, o, n);
}

AFP_AVX2 void v_log_softmax_row(const float* in, float* o, std::int64_t n) {
  const float mx = v_reduce_max(in, n);
  float denom = 0.0f;
  for (std::int64_t i = 0; i < n; ++i) denom += std::exp(in[i] - mx);
  const float lse = mx + std::log(denom);
  const __m256 lv = _mm256_set1_ps(lse);
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8)
    _mm256_storeu_ps(o + i, _mm256_sub_ps(_mm256_loadu_ps(in + i), lv));
  for (; i < n; ++i) o[i] = in[i] - lse;
}

constexpr simd::Kernels kAvx2Kernels = {
    v_gemm_nn_rows, v_gemm_nt_rows, v_gemm_tn_rows,
    v_add,          v_sub,          v_mul,
    v_scale,        v_acc,          v_acc_scaled,
    v_acc_mul,      v_acc_const,    v_relu,
    v_relu_bwd_acc, v_bias_relu_row,
    v_reduce_sum,   v_reduce_max,   v_dot,
    v_softmax_row,  v_log_softmax_row,
};

#endif  // AFP_HAVE_AVX2_BUILD

// ================================================================ tier state

/// Best tier the hardware (and this build) can run.
KernelTier resolve_auto() {
#ifdef AFP_HAVE_AVX2_BUILD
  if (cpu_supports_avx2()) return KernelTier::kAvx2;
#endif
  return KernelTier::kScalar;
}

struct TierState {
  bool naive = false;         ///< legacy AFP_NAIVE_KERNELS reference toggle
  KernelTier tier = KernelTier::kScalar;  ///< active fast tier
};

TierState init_state() {
  TierState st;
  st.tier = resolve_auto();
  if (const char* s = std::getenv("AFP_KERNEL_TIER")) {
    KernelTier t;
    if (parse_kernel_tier(s, &t)) {
      if (t == KernelTier::kNaive) st.naive = true;
      else if (t == KernelTier::kScalar) st.tier = KernelTier::kScalar;
      else if (t == KernelTier::kAvx2 && resolve_auto() == KernelTier::kAvx2)
        st.tier = KernelTier::kAvx2;
      // kAuto / unsupported avx2 keep the resolved default.
    }
  }
  if (const char* s = std::getenv("AFP_NAIVE_KERNELS")) {
    if (std::atoi(s) != 0) st.naive = true;
  }
  return st;
}

TierState g_state = init_state();

}  // namespace

bool cpu_supports_avx2() {
#if defined(AFP_X86) && (defined(__GNUC__) || defined(__clang__))
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

KernelTier kernel_tier() {
  return g_state.naive ? KernelTier::kNaive : g_state.tier;
}

void set_kernel_tier(KernelTier tier) {
  switch (tier) {
    case KernelTier::kNaive:
      g_state.naive = true;
      return;
    case KernelTier::kScalar:
      g_state.naive = false;
      g_state.tier = KernelTier::kScalar;
      return;
    case KernelTier::kAvx2:
      g_state.naive = false;
      g_state.tier = resolve_auto() == KernelTier::kAvx2 ? KernelTier::kAvx2
                                                         : KernelTier::kScalar;
      return;
    case KernelTier::kAuto:
      g_state.naive = false;
      g_state.tier = resolve_auto();
      return;
  }
}

bool parse_kernel_tier(const char* s, KernelTier* out) {
  if (!s || !out) return false;
  const std::string_view v(s);
  if (v == "naive") *out = KernelTier::kNaive;
  else if (v == "scalar") *out = KernelTier::kScalar;
  else if (v == "avx2") *out = KernelTier::kAvx2;
  else if (v == "auto") *out = KernelTier::kAuto;
  else return false;
  return true;
}

const char* kernel_tier_name(KernelTier tier) {
  switch (tier) {
    case KernelTier::kNaive: return "naive";
    case KernelTier::kScalar: return "scalar";
    case KernelTier::kAvx2: return "avx2";
    case KernelTier::kAuto: return "auto";
  }
  return "?";
}

bool naive_kernels() { return g_state.naive; }
void set_naive_kernels(bool naive) { g_state.naive = naive; }

namespace simd {

const Kernels& kernels() {
#ifdef AFP_HAVE_AVX2_BUILD
  if (!g_state.naive && g_state.tier == KernelTier::kAvx2) return kAvx2Kernels;
#endif
  return kScalarKernels;
}

}  // namespace simd
}  // namespace afp::num
