#include "numeric/optim.hpp"

#include <cmath>

namespace afp::num {

double Optimizer::clip_grad_norm(double max_norm) {
  double sq = 0.0;
  for (Tensor& p : params_) {
    if (!p.has_grad()) continue;
    for (float g : p.grad()) sq += static_cast<double>(g) * g;
  }
  const double norm = std::sqrt(sq);
  if (norm > max_norm && norm > 0.0) {
    const float scale = static_cast<float>(max_norm / norm);
    for (Tensor& p : params_) {
      for (float& g : p.grad()) g *= scale;
    }
  }
  return norm;
}

SGD::SGD(std::vector<Tensor> params, float lr_, float momentum)
    : Optimizer(std::move(params)), lr(lr_), momentum_(momentum) {
  velocity_.resize(params_.size());
  for (std::size_t i = 0; i < params_.size(); ++i)
    velocity_[i].assign(params_[i].values().size(), 0.0f);
}

void SGD::step() {
  for (std::size_t i = 0; i < params_.size(); ++i) {
    Tensor& p = params_[i];
    if (!p.has_grad()) continue;
    auto& vel = velocity_[i];
    for (std::size_t j = 0; j < p.values().size(); ++j) {
      vel[j] = momentum_ * vel[j] + p.grad()[j];
      p.values()[j] -= lr * vel[j];
    }
  }
}

Adam::Adam(std::vector<Tensor> params, float lr_, float beta1, float beta2,
           float eps)
    : Optimizer(std::move(params)),
      lr(lr_),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps) {
  m_.resize(params_.size());
  v_.resize(params_.size());
  for (std::size_t i = 0; i < params_.size(); ++i) {
    m_[i].assign(params_[i].values().size(), 0.0f);
    v_[i].assign(params_[i].values().size(), 0.0f);
  }
}

void Adam::step() {
  ++t_;
  const float bc1 = 1.0f - std::pow(beta1_, static_cast<float>(t_));
  const float bc2 = 1.0f - std::pow(beta2_, static_cast<float>(t_));
  for (std::size_t i = 0; i < params_.size(); ++i) {
    Tensor& p = params_[i];
    if (!p.has_grad()) continue;
    auto& m = m_[i];
    auto& v = v_[i];
    for (std::size_t j = 0; j < p.values().size(); ++j) {
      const float g = p.grad()[j];
      m[j] = beta1_ * m[j] + (1.0f - beta1_) * g;
      v[j] = beta2_ * v[j] + (1.0f - beta2_) * g * g;
      const float mh = m[j] / bc1;
      const float vh = v[j] / bc2;
      p.values()[j] -= lr * mh / (std::sqrt(vh) + eps_);
    }
  }
}

}  // namespace afp::num
