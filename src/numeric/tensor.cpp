#include "numeric/tensor.hpp"

#include <algorithm>
#include <map>
#include <mutex>
#include <sstream>
#include <unordered_set>

namespace afp::num {

namespace {
thread_local bool g_grad_enabled = true;
}  // namespace

namespace detail {
namespace {

/// Process-wide recycling pool for float buffers.  Keyed by capacity so
/// acquire can best-fit; bounded so pathological workloads cannot hoard
/// memory.  Intentionally leaked: buffer deleters may run during static
/// destruction.
class BufferPool {
 public:
  static BufferPool& instance() {
    static BufferPool* pool = new BufferPool;  // leaked by design
    return *pool;
  }

  std::vector<float> acquire(std::size_t n) {
    std::lock_guard<std::mutex> lk(mutex_);
    auto it = free_.lower_bound(n);
    // Don't hand a much larger buffer to a small request; the capacity
    // would be pinned under it.
    if (it != free_.end() && it->first <= std::max<std::size_t>(64, 4 * n)) {
      std::vector<float> v = std::move(it->second);
      bytes_ -= it->first * sizeof(float);
      free_.erase(it);
      v.resize(n);
      return v;
    }
    return std::vector<float>(n);
  }

  void release(std::vector<float>&& v) {
    const std::size_t cap = v.capacity();
    if (cap == 0) return;
    std::lock_guard<std::mutex> lk(mutex_);
    if (free_.size() >= kMaxEntries || bytes_ + cap * sizeof(float) > kMaxBytes) {
      return;  // let it free normally
    }
    bytes_ += cap * sizeof(float);
    free_.emplace(cap, std::move(v));
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lk(mutex_);
    return free_.size();
  }

 private:
  static constexpr std::size_t kMaxEntries = 1024;
  static constexpr std::size_t kMaxBytes = 256u << 20;  // 256 MiB

  mutable std::mutex mutex_;
  std::multimap<std::size_t, std::vector<float>> free_;
  std::size_t bytes_ = 0;
};

BufferPtr pooled(std::vector<float>&& v) {
  auto* heap = new std::vector<float>(std::move(v));
  return BufferPtr(heap, [](std::vector<float>* p) {
    BufferPool::instance().release(std::move(*p));
    delete p;
  });
}

}  // namespace

BufferPtr acquire_buffer(std::size_t n) {
  return pooled(BufferPool::instance().acquire(n));
}

BufferPtr adopt_buffer(std::vector<float>&& v) { return pooled(std::move(v)); }

std::size_t buffer_pool_size() { return BufferPool::instance().size(); }

}  // namespace detail

bool grad_enabled() { return g_grad_enabled; }

NoGradGuard::NoGradGuard() : prev_(g_grad_enabled) { g_grad_enabled = false; }
NoGradGuard::~NoGradGuard() { g_grad_enabled = prev_; }

std::string shape_str(const Shape& s) {
  std::ostringstream os;
  os << '[';
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (i) os << ", ";
    os << s[i];
  }
  os << ']';
  return os.str();
}

const std::vector<float>& Tensor::empty_grad() {
  static const std::vector<float> empty;
  return empty;
}

Tensor Tensor::zeros(Shape shape, bool requires_grad) {
  return full(std::move(shape), 0.0f, requires_grad);
}

Tensor Tensor::ones(Shape shape, bool requires_grad) {
  return full(std::move(shape), 1.0f, requires_grad);
}

Tensor Tensor::full(Shape shape, float v, bool requires_grad) {
  auto n = std::make_shared<detail::Node>();
  n->shape = std::move(shape);
  n->value = detail::acquire_buffer(static_cast<std::size_t>(numel(n->shape)));
  std::fill(n->value->begin(), n->value->end(), v);
  n->requires_grad = requires_grad;
  return wrap(std::move(n));
}

Tensor Tensor::from_vector(Shape shape, std::vector<float> data,
                           bool requires_grad) {
  if (static_cast<std::int64_t>(data.size()) != numel(shape)) {
    throw std::invalid_argument("from_vector: data size " +
                                std::to_string(data.size()) +
                                " does not match shape " + shape_str(shape));
  }
  auto n = std::make_shared<detail::Node>();
  n->shape = std::move(shape);
  n->value = detail::adopt_buffer(std::move(data));
  n->requires_grad = requires_grad;
  return wrap(std::move(n));
}

Tensor Tensor::scalar(float v, bool requires_grad) {
  return from_vector({1}, {v}, requires_grad);
}

Tensor Tensor::randn(Shape shape, std::mt19937_64& rng, float std,
                     bool requires_grad) {
  std::normal_distribution<float> dist(0.0f, std);
  auto n = std::make_shared<detail::Node>();
  n->shape = std::move(shape);
  n->value = detail::acquire_buffer(static_cast<std::size_t>(numel(n->shape)));
  for (float& v : *n->value) v = dist(rng);
  n->requires_grad = requires_grad;
  return wrap(std::move(n));
}

Tensor Tensor::uniform(Shape shape, std::mt19937_64& rng, float lo, float hi,
                       bool requires_grad) {
  std::uniform_real_distribution<float> dist(lo, hi);
  auto n = std::make_shared<detail::Node>();
  n->shape = std::move(shape);
  n->value = detail::acquire_buffer(static_cast<std::size_t>(numel(n->shape)));
  for (float& v : *n->value) v = dist(rng);
  n->requires_grad = requires_grad;
  return wrap(std::move(n));
}

float Tensor::item() const {
  if (!node_ || node_->value->size() != 1) {
    throw std::logic_error("item(): tensor is not a scalar");
  }
  return (*node_->value)[0];
}

Tensor Tensor::detach() const {
  auto n = std::make_shared<detail::Node>();
  n->shape = node_->shape;
  n->value = node_->value;  // shared storage, no copy
  n->requires_grad = false;
  return wrap(std::move(n));
}

void Tensor::backward() {
  if (!node_) throw std::logic_error("backward(): undefined tensor");
  if (node_->value->size() != 1) {
    throw std::logic_error("backward(): only scalar roots are supported");
  }
  // Topological order by DFS.
  std::vector<detail::Node*> order;
  std::unordered_set<detail::Node*> visited;
  std::vector<std::pair<detail::Node*, std::size_t>> stack;
  stack.emplace_back(node_.get(), 0);
  visited.insert(node_.get());
  while (!stack.empty()) {
    auto& [n, idx] = stack.back();
    if (idx < n->parents.size()) {
      detail::Node* p = n->parents[idx++].get();
      if (!visited.count(p) && (p->backward_fn || p->requires_grad)) {
        visited.insert(p);
        stack.emplace_back(p, 0);
      }
    } else {
      order.push_back(n);
      stack.pop_back();
    }
  }
  // Materialize gradient buffers for exactly the nodes in the sweep, seed
  // the root, and run closures in reverse topological order.
  for (detail::Node* n : order) n->ensure_grad();
  (*node_->grad)[0] = 1.0f;
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    if ((*it)->backward_fn) (*it)->backward_fn(*(*it)->grad);
  }
}

Tensor make_result(Shape shape, std::vector<float> value,
                   std::vector<Tensor> parents,
                   std::function<void(const std::vector<float>&)> backward_fn) {
  return make_result(std::move(shape), detail::adopt_buffer(std::move(value)),
                     std::move(parents), std::move(backward_fn));
}

Tensor make_result(Shape shape, detail::BufferPtr value,
                   std::vector<Tensor> parents,
                   std::function<void(const std::vector<float>&)> backward_fn) {
  auto n = std::make_shared<detail::Node>();
  n->shape = std::move(shape);
  n->value = std::move(value);
  bool track = grad_enabled();
  if (track) {
    bool any = false;
    for (const Tensor& p : parents) any = any || p.requires_grad();
    track = any;
  }
  if (track) {
    n->requires_grad = true;
    n->parents.reserve(parents.size());
    for (Tensor& p : parents) n->parents.push_back(p.node());
    n->backward_fn = std::move(backward_fn);
  }
  return Tensor::wrap(std::move(n));
}

}  // namespace afp::num
