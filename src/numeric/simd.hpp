// Runtime-dispatched micro-kernel tiers for the numeric hot paths.
//
// Three tiers implement the same kernel contract:
//  - naive   : the original seed kernels (reference path; matmul/conv only,
//              everything else falls back to the scalar table).
//  - scalar  : PR 1's register-blocked scalar loops.  Portable; the compiler
//              may still auto-vectorize them at whatever ISA it targets.
//  - avx2    : explicit 8-lane AVX2+FMA intrinsics, compiled with per-function
//              target attributes so the binary stays runnable on any x86-64
//              (the AVX2 code is only *called* after a runtime CPUID check).
//
// Selection: AFP_KERNEL_TIER={naive,scalar,avx2,auto} at startup (default
// auto = avx2 when the CPU supports it, else scalar), overridable at runtime
// via set_kernel_tier().  The legacy AFP_NAIVE_KERNELS=1 toggle maps onto
// the naive tier.
//
// Determinism contract (same as numeric/parallel.hpp): within a tier, every
// output element is produced by a fixed floating-point operation sequence
// that depends only on the operand shapes — never on the thread count or on
// parallel_for chunk boundaries.  Tiers may differ from each other by normal
// rounding variation; the parity tests bound that at 1e-4 relative.
#pragma once

#include <cstdint>

namespace afp::num {

enum class KernelTier : int { kNaive = 0, kScalar = 1, kAvx2 = 2, kAuto = 3 };

/// The tier ops currently dispatch to (never kAuto; kNaive while the legacy
/// naive toggle is set).
KernelTier kernel_tier();

/// Selects a tier.  kAuto re-resolves from the CPU; kAvx2 on a CPU without
/// AVX2 support falls back to kScalar.  kNaive sets the legacy naive toggle
/// (and any other tier clears it).
void set_kernel_tier(KernelTier tier);

/// Parses "naive"/"scalar"/"avx2"/"auto".  Returns false on unknown input.
bool parse_kernel_tier(const char* s, KernelTier* out);

const char* kernel_tier_name(KernelTier tier);

/// True when the running CPU supports AVX2 + FMA.
bool cpu_supports_avx2();

namespace simd {

/// Micro-kernel table for one tier.  GEMM kernels operate on a row range of
/// the output so they can be called from inside a parallel_for body; all
/// matrices are row-major with explicit leading dimensions.
struct Kernels {
  /// C[i,:] (+)= A[i,:K] · B[K,N] for i in [i0, i1).
  void (*gemm_nn_rows)(std::int64_t i0, std::int64_t i1, std::int64_t K,
                       std::int64_t N, const float* A, std::int64_t lda,
                       const float* B, std::int64_t ldb, float* C,
                       std::int64_t ldc, bool accumulate);
  /// C[i,j] (+)= dot(A[i,:K], B[j,:K]) for i in [i0, i1), j in [0, N).
  void (*gemm_nt_rows)(std::int64_t i0, std::int64_t i1, std::int64_t K,
                       std::int64_t N, const float* A, std::int64_t lda,
                       const float* B, std::int64_t ldb, float* C,
                       std::int64_t ldc, bool accumulate);
  /// C[k,:] (+)= sum_i A[i,k] * B[i,:N] for k in [k0, k1), i in [0, M).
  void (*gemm_tn_rows)(std::int64_t k0, std::int64_t k1, std::int64_t M,
                       std::int64_t N, const float* A, std::int64_t lda,
                       const float* B, std::int64_t ldb, float* C,
                       std::int64_t ldc, bool accumulate);

  // Elementwise over [0, n).
  void (*add)(const float* a, const float* b, float* o, std::int64_t n);
  void (*sub)(const float* a, const float* b, float* o, std::int64_t n);
  void (*mul)(const float* a, const float* b, float* o, std::int64_t n);
  void (*scale)(const float* a, float s, float* o, std::int64_t n);
  /// dst += src
  void (*acc)(float* dst, const float* src, std::int64_t n);
  /// dst += s * src
  void (*acc_scaled)(float* dst, const float* src, float s, std::int64_t n);
  /// dst += a * b
  void (*acc_mul)(float* dst, const float* a, const float* b, std::int64_t n);
  /// dst += c
  void (*acc_const)(float* dst, float c, std::int64_t n);
  /// o = max(0, x)
  void (*relu)(const float* x, float* o, std::int64_t n);
  /// gx += (x > 0) ? g : 0
  void (*relu_bwd_acc)(const float* x, const float* g, float* gx,
                       std::int64_t n);
  /// o = max(0, y + bias) — the fused linear_relu epilogue for one row.
  void (*bias_relu_row)(const float* y, const float* bias, float* o,
                        std::int64_t n);

  float (*reduce_sum)(const float* x, std::int64_t n);
  float (*reduce_max)(const float* x, std::int64_t n);
  float (*dot)(const float* a, const float* b, std::int64_t n);

  /// o[:] = softmax(in[:]) over one row.
  void (*softmax_row)(const float* in, float* o, std::int64_t n);
  /// o[:] = log_softmax(in[:]) over one row.
  void (*log_softmax_row)(const float* in, float* o, std::int64_t n);
};

/// Table for the active tier.  The naive tier returns the scalar table —
/// naive-only code paths (seed matmul/conv) live in ops.cpp and are chosen
/// there via naive_kernels().
const Kernels& kernels();

}  // namespace simd
}  // namespace afp::num
