// Sparse matrices for the R-GCN message-passing path.
//
// Circuit graphs are sparse (E << N^2), but the seed implementation
// multiplied dense [N, N] adjacency matrices per relation.  SparseCSR
// stores the normalized adjacency in compressed sparse row form, and spmm
// computes A · H against a dense [N, D] matrix in O(nnz * D) — the dense
// product costs O(N^2 * D).
//
// SparseCSR matrices are constants with respect to autograd (adjacency is
// data, not a parameter); spmm differentiates through the dense operand
// only: d(A·H)/dH = Aᵀ · g.
#pragma once

#include <tuple>
#include <utility>
#include <vector>

#include "numeric/tensor.hpp"

namespace afp::num {

class SparseCSR {
 public:
  SparseCSR() = default;

  /// From coordinate triplets (row, col, value).  Duplicate (row, col)
  /// entries are summed.  O(nnz log nnz).
  static SparseCSR from_coo(int rows, int cols,
                            std::vector<std::tuple<int, int, float>> coo);

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  std::int64_t nnz() const { return static_cast<std::int64_t>(vals_.size()); }
  bool empty() const { return vals_.empty(); }

  const std::vector<int>& row_ptr() const { return row_ptr_; }
  const std::vector<int>& col_idx() const { return col_idx_; }
  const std::vector<float>& vals() const { return vals_; }

  /// Aᵀ as CSR (i.e. CSC of A).  O(nnz).
  SparseCSR transpose() const;

  /// Densifies to a [rows, cols] tensor (tests / legacy callers).
  Tensor to_dense() const;

  /// Entry lookup, O(log degree).  Returns 0 for absent entries.
  float at(int r, int c) const;

 private:
  int rows_ = 0, cols_ = 0;
  std::vector<int> row_ptr_;   ///< rows+1 offsets into col_idx_/vals_
  std::vector<int> col_idx_;
  std::vector<float> vals_;
};

/// A [M, N] (CSR, constant) x H [N, D] (dense) -> [M, D].  Differentiable
/// with respect to H: backward runs dH += Aᵀ · g as a second SpMM.
/// Row-parallel on the shared thread pool; results are independent of the
/// thread count.
Tensor spmm(const SparseCSR& a, const Tensor& h);

}  // namespace afp::num
