#include "numeric/sparse.hpp"

#include <algorithm>
#include <stdexcept>
#include <tuple>

#include "numeric/parallel.hpp"

namespace afp::num {

SparseCSR SparseCSR::from_coo(int rows, int cols,
                              std::vector<std::tuple<int, int, float>> coo) {
  for (const auto& [r, c, v] : coo) {
    (void)v;
    if (r < 0 || r >= rows || c < 0 || c >= cols) {
      throw std::invalid_argument("SparseCSR::from_coo: index out of range");
    }
  }
  std::sort(coo.begin(), coo.end(), [](const auto& a, const auto& b) {
    return std::tie(std::get<0>(a), std::get<1>(a)) <
           std::tie(std::get<0>(b), std::get<1>(b));
  });
  SparseCSR m;
  m.rows_ = rows;
  m.cols_ = cols;
  m.row_ptr_.assign(static_cast<std::size_t>(rows) + 1, 0);
  m.col_idx_.reserve(coo.size());
  m.vals_.reserve(coo.size());
  int prev_r = -1, prev_c = -1;
  for (const auto& [r, c, v] : coo) {
    if (r == prev_r && c == prev_c) {
      m.vals_.back() += v;  // duplicate (r, c): sum
      continue;
    }
    m.col_idx_.push_back(c);
    m.vals_.push_back(v);
    ++m.row_ptr_[static_cast<std::size_t>(r) + 1];
    prev_r = r;
    prev_c = c;
  }
  for (std::size_t i = 1; i < m.row_ptr_.size(); ++i)
    m.row_ptr_[i] += m.row_ptr_[i - 1];
  return m;
}

SparseCSR SparseCSR::transpose() const {
  SparseCSR t;
  t.rows_ = cols_;
  t.cols_ = rows_;
  t.row_ptr_.assign(static_cast<std::size_t>(cols_) + 1, 0);
  t.col_idx_.resize(vals_.size());
  t.vals_.resize(vals_.size());
  // Counting pass over columns.
  for (int c : col_idx_) ++t.row_ptr_[static_cast<std::size_t>(c) + 1];
  for (std::size_t i = 1; i < t.row_ptr_.size(); ++i)
    t.row_ptr_[i] += t.row_ptr_[i - 1];
  std::vector<int> cursor(t.row_ptr_.begin(), t.row_ptr_.end() - 1);
  for (int r = 0; r < rows_; ++r) {
    for (int k = row_ptr_[static_cast<std::size_t>(r)];
         k < row_ptr_[static_cast<std::size_t>(r) + 1]; ++k) {
      const int c = col_idx_[static_cast<std::size_t>(k)];
      const int dst = cursor[static_cast<std::size_t>(c)]++;
      t.col_idx_[static_cast<std::size_t>(dst)] = r;
      t.vals_[static_cast<std::size_t>(dst)] = vals_[static_cast<std::size_t>(k)];
    }
  }
  return t;
}

Tensor SparseCSR::to_dense() const {
  std::vector<float> d(static_cast<std::size_t>(rows_) * cols_, 0.0f);
  for (int r = 0; r < rows_; ++r) {
    for (int k = row_ptr_[static_cast<std::size_t>(r)];
         k < row_ptr_[static_cast<std::size_t>(r) + 1]; ++k) {
      d[static_cast<std::size_t>(r) * cols_ +
        col_idx_[static_cast<std::size_t>(k)]] +=
          vals_[static_cast<std::size_t>(k)];
    }
  }
  return Tensor::from_vector({rows_, cols_}, std::move(d));
}

float SparseCSR::at(int r, int c) const {
  if (r < 0 || r >= rows_ || c < 0 || c >= cols_) {
    throw std::out_of_range("SparseCSR::at: index out of range");
  }
  const auto lo = col_idx_.begin() + row_ptr_[static_cast<std::size_t>(r)];
  const auto hi = col_idx_.begin() + row_ptr_[static_cast<std::size_t>(r) + 1];
  const auto it = std::lower_bound(lo, hi, c);
  if (it == hi || *it != c) return 0.0f;
  return vals_[static_cast<std::size_t>(it - col_idx_.begin())];
}

namespace {

/// out[M, D] = A[M, N] (CSR) · H[N, D]; each output row owned by one chunk.
void spmm_kernel(const SparseCSR& a, const float* H, int D, float* out) {
  const int* rp = a.row_ptr().data();
  const int* ci = a.col_idx().data();
  const float* vs = a.vals().data();
  const std::int64_t avg_work =
      a.rows() > 0 ? (a.nnz() * D) / a.rows() + 1 : 1;
  parallel_for(a.rows(),
               std::max<std::int64_t>(1, (std::int64_t{1} << 15) / avg_work),
               [=](std::int64_t r0, std::int64_t r1) {
    for (std::int64_t r = r0; r < r1; ++r) {
      float* o = out + r * D;
      std::fill(o, o + D, 0.0f);
      for (int k = rp[r]; k < rp[r + 1]; ++k) {
        const float v = vs[k];
        const float* h = H + static_cast<std::int64_t>(ci[k]) * D;
        for (int d = 0; d < D; ++d) o[d] += v * h[d];
      }
    }
  });
}

/// out[M, D] += A · H (accumulating variant for the backward pass).
void spmm_acc_kernel(const SparseCSR& a, const float* H, int D, float* out) {
  const int* rp = a.row_ptr().data();
  const int* ci = a.col_idx().data();
  const float* vs = a.vals().data();
  const std::int64_t avg_work =
      a.rows() > 0 ? (a.nnz() * D) / a.rows() + 1 : 1;
  parallel_for(a.rows(),
               std::max<std::int64_t>(1, (std::int64_t{1} << 15) / avg_work),
               [=](std::int64_t r0, std::int64_t r1) {
    for (std::int64_t r = r0; r < r1; ++r) {
      float* o = out + r * D;
      for (int k = rp[r]; k < rp[r + 1]; ++k) {
        const float v = vs[k];
        const float* h = H + static_cast<std::int64_t>(ci[k]) * D;
        for (int d = 0; d < D; ++d) o[d] += v * h[d];
      }
    }
  });
}

}  // namespace

Tensor spmm(const SparseCSR& a, const Tensor& h) {
  if (h.dim() != 2) {
    throw std::invalid_argument("spmm: dense operand must be 2-D");
  }
  if (h.shape()[0] != a.cols()) {
    throw std::invalid_argument(
        "spmm: dimension mismatch [" + std::to_string(a.rows()) + ", " +
        std::to_string(a.cols()) + "] x " + shape_str(h.shape()));
  }
  const int D = h.shape()[1];
  auto out = detail::acquire_buffer(static_cast<std::size_t>(a.rows()) * D);
  spmm_kernel(a, h.data(), D, out->data());

  auto hn = h.node();
  // The transpose is only needed when gradients will flow; build it lazily
  // at record time so inference rollouts never pay for it.
  std::shared_ptr<SparseCSR> at;
  if (grad_enabled() && h.requires_grad()) {
    at = std::make_shared<SparseCSR>(a.transpose());
  }
  return make_result(
      {a.rows(), D}, std::move(out), {h},
      [hn, at, D](const std::vector<float>& g) {
        if (!hn->requires_grad || !at) return;
        spmm_acc_kernel(*at, g.data(), D, (*hn->grad).data());
      });
}

}  // namespace afp::num
