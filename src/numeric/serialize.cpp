#include "numeric/serialize.hpp"

#include <cstdint>
#include <cstdio>
#include <fstream>

namespace afp::num {

namespace {
constexpr char kMagic[4] = {'A', 'F', 'P', 'T'};
constexpr char kWordMagic[4] = {'A', 'F', 'P', 'W'};
constexpr std::uint32_t kVersion = 1;

template <typename T>
void write_pod(std::ostream& os, const T& v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
T read_pod(std::istream& is) {
  T v{};
  is.read(reinterpret_cast<char*>(&v), sizeof(T));
  if (!is) throw std::runtime_error("checkpoint: truncated file");
  return v;
}
}  // namespace

void save_tensors(const std::string& path,
                  const std::map<std::string, Tensor>& tensors) {
  std::ofstream os(path, std::ios::binary);
  if (!os) throw std::runtime_error("checkpoint: cannot open " + path);
  os.write(kMagic, 4);
  write_pod(os, kVersion);
  write_pod(os, static_cast<std::uint32_t>(tensors.size()));
  for (const auto& [name, t] : tensors) {
    write_pod(os, static_cast<std::uint32_t>(name.size()));
    os.write(name.data(), static_cast<std::streamsize>(name.size()));
    write_pod(os, static_cast<std::uint32_t>(t.shape().size()));
    for (int d : t.shape()) write_pod(os, static_cast<std::int32_t>(d));
    os.write(reinterpret_cast<const char*>(t.data()),
             static_cast<std::streamsize>(t.values().size() * sizeof(float)));
  }
  if (!os) throw std::runtime_error("checkpoint: write failed for " + path);
}

std::map<std::string, Tensor> load_tensors(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("checkpoint: cannot open " + path);
  char magic[4];
  is.read(magic, 4);
  if (!is || std::string(magic, 4) != std::string(kMagic, 4)) {
    throw std::runtime_error("checkpoint: bad magic in " + path);
  }
  const auto version = read_pod<std::uint32_t>(is);
  if (version != kVersion) {
    throw std::runtime_error("checkpoint: unsupported version");
  }
  const auto count = read_pod<std::uint32_t>(is);
  std::map<std::string, Tensor> out;
  for (std::uint32_t i = 0; i < count; ++i) {
    const auto name_len = read_pod<std::uint32_t>(is);
    std::string name(name_len, '\0');
    is.read(name.data(), name_len);
    const auto rank = read_pod<std::uint32_t>(is);
    Shape shape(rank);
    for (auto& d : shape) d = read_pod<std::int32_t>(is);
    std::vector<float> data(static_cast<std::size_t>(numel(shape)));
    is.read(reinterpret_cast<char*>(data.data()),
            static_cast<std::streamsize>(data.size() * sizeof(float)));
    if (!is) throw std::runtime_error("checkpoint: truncated tensor " + name);
    out.emplace(name, Tensor::from_vector(shape, std::move(data)));
  }
  return out;
}

void save_words(const std::string& path, const WordMap& words) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
    if (!os) throw std::runtime_error("checkpoint: cannot open " + tmp);
    os.write(kWordMagic, 4);
    write_pod(os, kVersion);
    write_pod(os, static_cast<std::uint32_t>(words.size()));
    for (const auto& [name, w] : words) {
      write_pod(os, static_cast<std::uint32_t>(name.size()));
      os.write(name.data(), static_cast<std::streamsize>(name.size()));
      write_pod(os, static_cast<std::uint64_t>(w.size()));
      os.write(reinterpret_cast<const char*>(w.data()),
               static_cast<std::streamsize>(w.size() * sizeof(std::uint64_t)));
    }
    if (!os) throw std::runtime_error("checkpoint: write failed for " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw std::runtime_error("checkpoint: cannot rename " + tmp + " to " +
                             path);
  }
}

WordMap load_words(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("checkpoint: cannot open " + path);
  char magic[4];
  is.read(magic, 4);
  if (!is || std::string(magic, 4) != std::string(kWordMagic, 4)) {
    throw std::runtime_error("checkpoint: bad magic in " + path);
  }
  const auto version = read_pod<std::uint32_t>(is);
  if (version != kVersion) {
    throw std::runtime_error("checkpoint: unsupported version");
  }
  const auto count = read_pod<std::uint32_t>(is);
  WordMap out;
  for (std::uint32_t i = 0; i < count; ++i) {
    const auto name_len = read_pod<std::uint32_t>(is);
    std::string name(name_len, '\0');
    is.read(name.data(), name_len);
    const auto n = read_pod<std::uint64_t>(is);
    std::vector<std::uint64_t> w(static_cast<std::size_t>(n));
    is.read(reinterpret_cast<char*>(w.data()),
            static_cast<std::streamsize>(w.size() * sizeof(std::uint64_t)));
    if (!is) throw std::runtime_error("checkpoint: truncated entry " + name);
    out.emplace(std::move(name), std::move(w));
  }
  return out;
}

void load_into(const std::map<std::string, Tensor>& src,
               std::map<std::string, Tensor>& dst) {
  for (auto& [name, t] : dst) {
    auto it = src.find(name);
    if (it == src.end()) {
      throw std::runtime_error("checkpoint: missing tensor " + name);
    }
    if (it->second.shape() != t.shape()) {
      throw std::runtime_error("checkpoint: shape mismatch for " + name);
    }
    t.values() = it->second.values();
  }
}

}  // namespace afp::num
