// Differentiable operations over afp::num::Tensor.
//
// Shape conventions:
//  - 2-D tensors are [rows, cols], row-major.
//  - Images are NCHW: [batch, channels, height, width].
//  - Binary elementwise ops require identical shapes (no implicit
//    broadcasting); the few broadcast patterns the models need are exposed
//    as dedicated ops (add_rowvec, conv bias, ...).
//  - Axis reductions KEEP the reduced axis with extent 1 (NumPy
//    keepdims=True): mean_axis0 maps [N, D] -> [1, D] and sum_axis1 maps
//    [B, N] -> [B, 1].  Full reductions (sum_all/mean_all) return a [1]
//    scalar.
//
// Every op validates shapes and throws std::invalid_argument on mismatch —
// shape bugs surface at the call site instead of as silent corruption.
//
// Performance: matmul is a cache-blocked, row-parallel GEMM whose backward
// runs as two GEMM passes (dA = g·Bᵀ, dB = Aᵀ·g); conv2d/conv_transpose2d
// lower to the same GEMM kernel via im2col/col2im with workspace from the
// per-thread scratch arena (numeric/scratch.hpp); large elementwise ops run
// on the shared thread pool (see numeric/parallel.hpp).  The GEMM inner
// loops, elementwise ops and softmax/reduction hot paths dispatch to a
// runtime-selected micro-kernel tier — explicit AVX2 or portable scalar —
// controlled by AFP_KERNEL_TIER (see numeric/simd.hpp).  Within a tier,
// results are bitwise identical for any AFP_NUM_THREADS.
#pragma once

#include "numeric/tensor.hpp"

namespace afp::num {

// -- kernel selection --------------------------------------------------------
/// When true, matmul / conv2d / conv_transpose2d run the original scalar
/// reference kernels instead of the blocked GEMM path (and linear_relu
/// decomposes into relu(linear(...))).  Used by the parity tests and
/// bench_perf_core; initialized from AFP_NAIVE_KERNELS and equivalent to
/// the "naive" AFP_KERNEL_TIER value.  Tier selection beyond the naive
/// toggle lives in numeric/simd.hpp.
bool naive_kernels();
void set_naive_kernels(bool naive);

// -- elementwise binary (identical shapes) ---------------------------------
Tensor add(const Tensor& a, const Tensor& b);
Tensor sub(const Tensor& a, const Tensor& b);
Tensor mul(const Tensor& a, const Tensor& b);
Tensor div(const Tensor& a, const Tensor& b);
/// Elementwise min; subgradient goes to the smaller input (ties: first).
Tensor minimum(const Tensor& a, const Tensor& b);
/// Elementwise max; subgradient goes to the larger input (ties: first).
Tensor maximum(const Tensor& a, const Tensor& b);

// -- scalar variants --------------------------------------------------------
Tensor add_scalar(const Tensor& a, float s);
Tensor mul_scalar(const Tensor& a, float s);

// -- unary -------------------------------------------------------------------
Tensor neg(const Tensor& a);
Tensor relu(const Tensor& a);
Tensor tanh_op(const Tensor& a);
Tensor sigmoid(const Tensor& a);
Tensor exp_op(const Tensor& a);
/// Natural log; input is clamped to >= eps for numerical safety.
Tensor log_op(const Tensor& a, float eps = 1e-12f);
Tensor square(const Tensor& a);
/// Clamp to [lo, hi]; gradient is passed through inside the interval and
/// zero outside (straight-through at the boundary).
Tensor clamp(const Tensor& a, float lo, float hi);

// -- shape -------------------------------------------------------------------
/// Same data viewed under a new shape.  The result ALIASES the input's
/// value buffer (no copy); grads flow back one-to-one.
Tensor reshape(const Tensor& a, Shape new_shape);
/// Concatenate 2-D tensors [B, Di] along columns -> [B, sum Di].
Tensor concat_cols(const std::vector<Tensor>& parts);
/// Concatenate 2-D tensors [Ni, D] along rows -> [sum Ni, D].
Tensor concat_rows(const std::vector<Tensor>& parts);

// -- linear algebra -----------------------------------------------------------
/// [M, K] x [K, N] -> [M, N].
Tensor matmul(const Tensor& a, const Tensor& b);
/// x [B, D] + v [D] broadcast over rows.
Tensor add_rowvec(const Tensor& x, const Tensor& v);
/// Fully connected layer: x [B, in] @ w [in, out] + b [out].
Tensor linear(const Tensor& x, const Tensor& w, const Tensor& b);
/// Fused relu(linear(x, w, b)): one pass over the output applies bias and
/// activation, and the backward masks the gradient once before the two GEMM
/// passes (no intermediate pre-activation tensor).
Tensor linear_relu(const Tensor& x, const Tensor& w, const Tensor& b);

// -- reductions ---------------------------------------------------------------
Tensor sum_all(const Tensor& a);
Tensor mean_all(const Tensor& a);
/// Column-wise mean of a 2-D tensor: [N, D] -> [1, D].
Tensor mean_axis0(const Tensor& a);
/// Row-wise sum of a 2-D tensor: [B, N] -> [B, 1] (keepdims).
Tensor sum_axis1(const Tensor& a);

// -- softmax family (over the last axis of a 2-D tensor) ----------------------
Tensor softmax_rows(const Tensor& a);
Tensor log_softmax_rows(const Tensor& a);

// -- indexing -----------------------------------------------------------------
/// Select rows of x [N, D] by index -> [K, D].
Tensor gather_rows(const Tensor& x, const std::vector<int>& rows);
/// Per-row column pick of x [B, N] -> [B]: out[b] = x[b, cols[b]].
Tensor gather_per_row(const Tensor& x, const std::vector<int>& cols);

// -- convolutions ---------------------------------------------------------------
/// 2-D convolution, NCHW.  w: [OC, IC, KH, KW], optional bias b: [OC].
/// OH = (H + 2*pad - KH) / stride + 1.
Tensor conv2d(const Tensor& x, const Tensor& w, const Tensor& b, int stride,
              int pad);
/// 2-D transposed convolution, NCHW.  w: [IC, OC, KH, KW], bias b: [OC].
/// OH = (H - 1) * stride - 2*pad + KH.
Tensor conv_transpose2d(const Tensor& x, const Tensor& w, const Tensor& b,
                        int stride, int pad);

// -- losses ----------------------------------------------------------------------
/// Mean squared error between same-shape tensors -> scalar.
Tensor mse_loss(const Tensor& pred, const Tensor& target);

// -- convenience operators ---------------------------------------------------------
inline Tensor operator+(const Tensor& a, const Tensor& b) { return add(a, b); }
inline Tensor operator-(const Tensor& a, const Tensor& b) { return sub(a, b); }
inline Tensor operator*(const Tensor& a, const Tensor& b) { return mul(a, b); }
inline Tensor operator*(const Tensor& a, float s) { return mul_scalar(a, s); }
inline Tensor operator*(float s, const Tensor& a) { return mul_scalar(a, s); }
inline Tensor operator+(const Tensor& a, float s) { return add_scalar(a, s); }
inline Tensor operator-(const Tensor& a) { return neg(a); }

}  // namespace afp::num
