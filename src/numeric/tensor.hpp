// Minimal dense float32 tensor with reverse-mode automatic
// differentiation.
//
// Design: a Tensor is a value-semantic handle (shared_ptr) to a Node that
// owns the value buffer, the gradient buffer, and — when the tensor was
// produced by a differentiable operation — the list of parent nodes plus a
// closure that propagates the output gradient into the parents.  Calling
// Tensor::backward() on a scalar performs a topological sort of the
// recorded graph and runs the closures in reverse order.
//
// Storage: value and gradient buffers are shared_ptr<vector<float>> handles
// drawn from a process-wide recycling pool (see detail::acquire_buffer).
// Freed buffers return to the pool instead of the allocator, which removes
// most allocation traffic from the training hot loop.  Buffer handles can
// be shared between nodes: detach() and reshape() alias the source value
// buffer instead of copying it.
//
// Gradient buffers are allocated lazily — an op records its backward
// closure without touching parent grads; backward() materializes grads for
// exactly the nodes participating in the sweep.  Backward closures must
// therefore only write into parents with requires_grad set (the engine
// guarantees those are allocated and zeroed before closures run).
//
// The engine supports exactly the operations needed by the paper's models
// (R-GCN encoder, CNN feature extractor, deconvolutional policy head,
// masked-categorical PPO losses); it does not attempt NumPy-style general
// broadcasting.  Shapes are row-major.
#pragma once

#include <cassert>
#include <cstdint>
#include <functional>
#include <memory>
#include <numeric>
#include <random>
#include <stdexcept>
#include <string>
#include <vector>

namespace afp::num {

using Shape = std::vector<int>;

/// Number of elements described by a shape.
inline std::int64_t numel(const Shape& s) {
  std::int64_t n = 1;
  for (int d : s) n *= d;
  return n;
}

/// Human-readable shape, e.g. "[3, 32, 32]".
std::string shape_str(const Shape& s);

class Tensor;

namespace detail {

/// Pooled float buffer.  The deleter returns the vector to the pool.
using BufferPtr = std::shared_ptr<std::vector<float>>;

/// A buffer of exactly n elements (contents unspecified) from the pool.
BufferPtr acquire_buffer(std::size_t n);
/// Wraps an existing vector so its storage recycles through the pool.
BufferPtr adopt_buffer(std::vector<float>&& v);
/// Buffers currently parked in the pool (diagnostics / tests).
std::size_t buffer_pool_size();

struct Node {
  BufferPtr value;
  BufferPtr grad;  ///< null until backward (or zero_grad) touches the node
  Shape shape;
  bool requires_grad = false;
  std::vector<std::shared_ptr<Node>> parents;
  /// Propagates the node's output gradient (passed as argument to avoid a
  /// closure->node reference cycle) into the parents' grad buffers.
  std::function<void(const std::vector<float>&)> backward_fn;

  std::vector<float>& val() { return *value; }
  const std::vector<float>& val() const { return *value; }

  void ensure_grad() {
    if (!grad || grad->size() != value->size()) {
      grad = acquire_buffer(value->size());
      std::fill(grad->begin(), grad->end(), 0.0f);
    }
  }
};

}  // namespace detail

/// Returns true when gradient recording is currently enabled (default).
bool grad_enabled();

/// RAII guard that disables gradient recording in its scope.  Used for
/// action sampling and evaluation rollouts.
class NoGradGuard {
 public:
  NoGradGuard();
  ~NoGradGuard();
  NoGradGuard(const NoGradGuard&) = delete;
  NoGradGuard& operator=(const NoGradGuard&) = delete;

 private:
  bool prev_;
};

/// Dense float tensor; cheap to copy (shared storage).
class Tensor {
 public:
  Tensor() = default;

  // -- construction -------------------------------------------------------
  static Tensor zeros(Shape shape, bool requires_grad = false);
  static Tensor ones(Shape shape, bool requires_grad = false);
  static Tensor full(Shape shape, float v, bool requires_grad = false);
  static Tensor from_vector(Shape shape, std::vector<float> data,
                            bool requires_grad = false);
  static Tensor scalar(float v, bool requires_grad = false);
  /// i.i.d. N(0, std^2) entries.
  static Tensor randn(Shape shape, std::mt19937_64& rng, float std = 1.0f,
                      bool requires_grad = false);
  /// i.i.d. U(lo, hi) entries.
  static Tensor uniform(Shape shape, std::mt19937_64& rng, float lo, float hi,
                        bool requires_grad = false);

  // -- inspection ---------------------------------------------------------
  bool defined() const { return node_ != nullptr; }
  const Shape& shape() const { return node_->shape; }
  int dim() const { return static_cast<int>(node_->shape.size()); }
  std::int64_t size() const { return static_cast<std::int64_t>(node_->value->size()); }
  bool requires_grad() const { return node_ && node_->requires_grad; }

  float* data() { return node_->value->data(); }
  const float* data() const { return node_->value->data(); }
  std::vector<float>& values() { return *node_->value; }
  const std::vector<float>& values() const { return *node_->value; }

  /// Value of a scalar (1-element) tensor.
  float item() const;

  /// Element access by flat index (no autograd tracking).
  float at(std::int64_t i) const { return (*node_->value)[static_cast<std::size_t>(i)]; }
  void set(std::int64_t i, float v) { (*node_->value)[static_cast<std::size_t>(i)] = v; }

  // -- autograd -----------------------------------------------------------
  /// True once backward()/zero_grad() has materialized a gradient buffer.
  /// Use this (not grad().empty()) for skip checks: the non-const grad()
  /// allocates on demand.
  bool has_grad() const { return node_ && node_->grad != nullptr; }
  /// Gradient buffer.  Populated after backward(); empty before the first
  /// backward()/zero_grad() touches this tensor.
  const std::vector<float>& grad() const {
    return node_->grad ? *node_->grad : empty_grad();
  }
  std::vector<float>& grad() {
    if (!node_->grad) node_->ensure_grad();
    return *node_->grad;
  }
  void zero_grad() {
    if (!node_) return;
    node_->ensure_grad();
    std::fill(node_->grad->begin(), node_->grad->end(), 0.0f);
  }
  /// Runs reverse-mode AD from this scalar tensor.
  void backward();
  /// Same value, detached from the autograd graph.  Shares the value
  /// buffer with this tensor (no copy): in-place writes through either
  /// handle are visible through both.
  Tensor detach() const;

  // internal: used by ops
  std::shared_ptr<detail::Node> node() const { return node_; }
  static Tensor wrap(std::shared_ptr<detail::Node> n) {
    Tensor t;
    t.node_ = std::move(n);
    return t;
  }

 private:
  static const std::vector<float>& empty_grad();

  std::shared_ptr<detail::Node> node_;
};

/// Creates a result node for an op.  `track` decides whether the node
/// participates in the autograd graph.  Parent gradient buffers are NOT
/// allocated here; backward() materializes them lazily, and closures must
/// only write into parents whose requires_grad flag is set.
Tensor make_result(Shape shape, std::vector<float> value,
                   std::vector<Tensor> parents,
                   std::function<void(const std::vector<float>&)> backward_fn);

/// Variant taking a pooled buffer directly (used by ops that stream into a
/// pool-acquired buffer, and by reshape to alias its input's storage).
Tensor make_result(Shape shape, detail::BufferPtr value,
                   std::vector<Tensor> parents,
                   std::function<void(const std::vector<float>&)> backward_fn);

}  // namespace afp::num
