// Cooperative stop signalling for searches: a shared sticky cancel flag
// plus an optional monotonic-clock deadline, polled from optimizer inner
// loops so cancellation/watchdog latency is bounded by one iteration, not
// one restart.
//
// A CancelToken is a cheap value: copies observe the same flag.  The
// optimizers only ever *read* it (stop_requested()) and break out of their
// loop returning the best-so-far; classifying *why* a run stopped
// (cancelled vs deadline_exceeded) is the caller's job (core::pipeline /
// core::JobService), which keeps the metaheuristics layer free of error
// policy.  All accesses are relaxed atomics — no ordering is needed for a
// monotonic boolean plus an immutable-after-arm deadline.
//
// child() derives a token that *observes* this one (cancel and deadline
// propagate parent -> child) but arms its own deadline privately.  The
// watchdog uses it so a per-attempt deadline never clobbers a deadline the
// caller armed on the shared state — e.g. a daemon client attaching a
// timeout to a job whose retry loop is also arming per-attempt deadlines.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>

namespace afp::metaheur {

class CancelToken {
 public:
  CancelToken() : state_(std::make_shared<State>()) {}

  /// A fresh token linked to this one: cancel()/deadlines set on *this* (or
  /// any ancestor) are observed by the child, while set_deadline_after on
  /// the child stays private to it.  Chains may nest (batch token -> job
  /// token -> attempt token); reads walk the whole chain.
  CancelToken child() const {
    CancelToken c;
    c.state_->parent = state_;
    return c;
  }

  void cancel() const { state_->cancelled.store(true, std::memory_order_relaxed); }
  bool cancelled() const {
    for (const State* s = state_.get(); s != nullptr; s = s->parent.get()) {
      if (s->cancelled.load(std::memory_order_relaxed)) return true;
    }
    return false;
  }

  /// Arms the watchdog: the token expires `seconds` from now on the
  /// monotonic clock.  Non-positive values disarm (this token only — an
  /// ancestor's armed deadline still applies).
  void set_deadline_after(double seconds) const {
    if (seconds <= 0.0) {
      state_->deadline_ns.store(0, std::memory_order_relaxed);
      return;
    }
    const auto now = std::chrono::steady_clock::now().time_since_epoch();
    const auto ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(now).count() +
        static_cast<std::int64_t>(seconds * 1e9);
    state_->deadline_ns.store(ns, std::memory_order_relaxed);
  }

  bool has_deadline() const {
    for (const State* s = state_.get(); s != nullptr; s = s->parent.get()) {
      if (s->deadline_ns.load(std::memory_order_relaxed) != 0) return true;
    }
    return false;
  }

  /// True once any armed deadline in the chain has passed (false when all
  /// are disarmed — no clock read in that case).
  bool expired() const {
    std::int64_t soonest = 0;
    for (const State* s = state_.get(); s != nullptr; s = s->parent.get()) {
      const std::int64_t d = s->deadline_ns.load(std::memory_order_relaxed);
      if (d != 0 && (soonest == 0 || d < soonest)) soonest = d;
    }
    if (soonest == 0) return false;
    const auto now = std::chrono::steady_clock::now().time_since_epoch();
    return std::chrono::duration_cast<std::chrono::nanoseconds>(now).count() >=
           soonest;
  }

  /// Cancelled OR expired — the single predicate the search loops poll.
  bool stop_requested() const { return cancelled() || expired(); }

 private:
  struct State {
    std::atomic<bool> cancelled{false};
    /// Monotonic-clock deadline in ns since the steady epoch; 0 = disarmed.
    std::atomic<std::int64_t> deadline_ns{0};
    /// Observed ancestor; immutable after child() construction.
    std::shared_ptr<const State> parent;
  };
  std::shared_ptr<State> state_;
};

/// Throttled polling helper for hot loops: the cancel flag is one chain walk
/// of relaxed loads per call, but the deadline needs a clock read, so it is
/// only consulted every kClockStride calls.  With a null token every call is
/// a constant `false` — legacy callers pay nothing.
///
/// The deadline is re-consulted on every stride tick instead of being cached
/// at construction: a deadline armed *after* the poller was built (a daemon
/// client attaching a timeout to an already-running job) must still fire
/// within one stride.  expired() itself short-circuits without a clock read
/// while no deadline is armed, so un-timed runs only pay the extra relaxed
/// loads once per stride.
class StopPoll {
 public:
  explicit StopPoll(const CancelToken* token) : token_(token) {}

  bool operator()() {
    if (token_ == nullptr) return false;
    if (token_->cancelled()) return true;
    // Deadline check on the first call, then every kClockStride-th.
    if (calls_++ % kClockStride != 0) return false;
    return token_->expired();
  }

 private:
  static constexpr std::uint32_t kClockStride = 32;
  const CancelToken* token_;
  std::uint32_t calls_ = 0;
};

}  // namespace afp::metaheur
