// Cooperative stop signalling for searches: a shared sticky cancel flag
// plus an optional monotonic-clock deadline, polled from optimizer inner
// loops so cancellation/watchdog latency is bounded by one iteration, not
// one restart.
//
// A CancelToken is a cheap value: copies observe the same flag.  The
// optimizers only ever *read* it (stop_requested()) and break out of their
// loop returning the best-so-far; classifying *why* a run stopped
// (cancelled vs deadline_exceeded) is the caller's job (core::pipeline /
// core::JobService), which keeps the metaheuristics layer free of error
// policy.  All accesses are relaxed atomics — no ordering is needed for a
// monotonic boolean plus an immutable-after-arm deadline.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>

namespace afp::metaheur {

class CancelToken {
 public:
  CancelToken() : state_(std::make_shared<State>()) {}

  void cancel() const { state_->cancelled.store(true, std::memory_order_relaxed); }
  bool cancelled() const {
    return state_->cancelled.load(std::memory_order_relaxed);
  }

  /// Arms the watchdog: the token expires `seconds` from now on the
  /// monotonic clock.  Non-positive values disarm.
  void set_deadline_after(double seconds) const {
    if (seconds <= 0.0) {
      state_->deadline_ns.store(0, std::memory_order_relaxed);
      return;
    }
    const auto now = std::chrono::steady_clock::now().time_since_epoch();
    const auto ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(now).count() +
        static_cast<std::int64_t>(seconds * 1e9);
    state_->deadline_ns.store(ns, std::memory_order_relaxed);
  }

  bool has_deadline() const {
    return state_->deadline_ns.load(std::memory_order_relaxed) != 0;
  }

  /// True once the armed deadline has passed (false when disarmed).
  bool expired() const {
    const std::int64_t d = state_->deadline_ns.load(std::memory_order_relaxed);
    if (d == 0) return false;
    const auto now = std::chrono::steady_clock::now().time_since_epoch();
    return std::chrono::duration_cast<std::chrono::nanoseconds>(now).count() >=
           d;
  }

  /// Cancelled OR expired — the single predicate the search loops poll.
  bool stop_requested() const { return cancelled() || expired(); }

 private:
  struct State {
    std::atomic<bool> cancelled{false};
    /// Monotonic-clock deadline in ns since the steady epoch; 0 = disarmed.
    std::atomic<std::int64_t> deadline_ns{0};
  };
  std::shared_ptr<State> state_;
};

/// Throttled polling helper for hot loops: the cancel flag is one relaxed
/// load per call, but the deadline needs a clock read, so it is only
/// consulted every kClockStride calls.  With a null token every call is a
/// constant `false` — legacy callers pay nothing.
class StopPoll {
 public:
  explicit StopPoll(const CancelToken* token)
      : token_(token), timed_(token != nullptr && token->has_deadline()) {}

  bool operator()() {
    if (token_ == nullptr) return false;
    if (token_->cancelled()) return true;
    if (!timed_) return false;
    // Clock reads on the first call, then every kClockStride-th.
    if (calls_++ % kClockStride != 0) return false;
    return token_->expired();
  }

 private:
  static constexpr std::uint32_t kClockStride = 32;
  const CancelToken* token_;
  bool timed_;
  std::uint32_t calls_ = 0;
};

}  // namespace afp::metaheur
