// Parallel multi-restart driver for the metaheuristic baselines.
//
// A single annealing / GA / B*-SA run is inherently sequential, so the
// scalable axis is restarts: K independent searches from per-restart seeded
// RNG streams, run concurrently on the shared numeric thread pool
// (numeric/parallel.hpp), with the best result selected deterministically.
//
// Reproducibility contract: restart k always draws from restart_rng(seed, k)
// — a SplitMix64-derived stream independent of the others — and each search
// runs entirely inside one parallel_for chunk without touching the pool
// (nested parallel_for calls run serially on the worker).  Results are
// therefore bitwise identical for any AFP_NUM_THREADS, including 1, and the
// winning restart is a pure function of the seed.
#pragma once

#include <cstdint>
#include <functional>

#include "metaheur/baselines.hpp"
#include "metaheur/bstar.hpp"

namespace afp::metaheur {

/// SplitMix64 finalizer used to derive all the independent search streams
/// (restart_rng here, replica_rng in metaheur/tempering) — one definition so
/// the domain-separation contract between them cannot silently diverge.
std::uint64_t splitmix64(std::uint64_t x);

/// Independent RNG stream for restart `restart` of `base_seed` (SplitMix64
/// over the pair, so neighboring seeds/restarts are decorrelated).
std::mt19937_64 restart_rng(std::uint64_t base_seed, int restart);

struct MultiStartOptions {
  int restarts = 4;
  std::uint64_t base_seed = 1;
};

/// Runs `opt.restarts` searches of `search(restart, rng)` on the pool and
/// returns the winner: lowest sp_cost of the packed result, ties broken by
/// the lowest restart index.  `evaluations` is summed over all restarts;
/// `runtime_s` is the wall time of the whole fan-out.
BaselineResult run_multistart(
    const floorplan::Instance& inst,
    const std::function<BaselineResult(int restart, std::mt19937_64& rng)>&
        search,
    const MultiStartOptions& opt);

// Convenience wrappers over the serial baselines.
BaselineResult run_sa_multi(const floorplan::Instance& inst, const SAParams& p,
                            const MultiStartOptions& opt);
BaselineResult run_ga_multi(const floorplan::Instance& inst, const GAParams& p,
                            const MultiStartOptions& opt);
BaselineResult run_sa_bstar_multi(const floorplan::Instance& inst,
                                  const BStarSAParams& p,
                                  const MultiStartOptions& opt);

}  // namespace afp::metaheur
