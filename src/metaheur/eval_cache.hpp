// Incremental evaluation engine for the metaheuristic search loops.
//
// Every SA/PT/RL-SA step perturbs one or two blocks, yet the legacy path
// re-packs the whole floorplan (sequence-pair: O(n^2) longest-path
// relaxation; B*-tree: a full contour pass) and rescans every net's every
// pin for HPWL.  The evaluators here keep the previous packing and update
// only what a move invalidated:
//
//  * SpEvaluator diffs the new sequence pair against the cached one, finds
//    the blocks whose match positions or shape changed, and re-relaxes the
//    longest paths only for blocks with a changed predecessor set or a
//    dirty predecessor value — every recomputed coordinate runs the exact
//    inner loop of pack(), so results are bitwise identical.
//  * BStarEvaluator compares the new tree's preorder step list against the
//    cached one, restores the contour from a periodic snapshot at the last
//    common step, and replays only the DFS suffix.
//  * floorplan::HpwlCache re-scans only nets adjacent to moved blocks.
//  * TranspositionCache memoizes encoding -> cost across restarts/replicas
//    of one job (dual-SplitMix64 128-bit keys, striped locks).  Cached
//    costs are pure functions of the key, so sharing the cache across pool
//    threads cannot perturb results: 1-thread and N-thread runs stay
//    bitwise identical.
//
// Mode selection follows the simd_parity harness pattern: AFP_EVAL=
// full|delta|check (default delta).  `full` is the legacy recompute,
// `delta` the incremental path, and `check` runs both on every evaluation
// and throws std::logic_error on any cost or rectangle mismatch — the
// parity oracle the property suite and the sanitizer CI leg run under.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "metaheur/bstar.hpp"
#include "metaheur/sequence_pair.hpp"

namespace afp::metaheur {

enum class EvalMode : int { kFull = 0, kDelta = 1, kCheck = 2 };

/// Process-wide evaluation mode; first call reads AFP_EVAL (full|delta|
/// check, default delta; unknown values warn and fall back to delta).
EvalMode eval_mode();
/// Runtime override (tests); later eval_mode() calls observe it.
void set_eval_mode(EvalMode mode);
const char* to_string(EvalMode mode);

/// Memoizes encoding -> cost across the restarts and replicas of one job.
/// Keys are two independent SplitMix64 hashes of the encoding arrays (an
/// effective 128-bit key, collision odds negligible at cache scale); the
/// table is striped over mutexes so parallel-tempering replicas on the
/// pool share it without serializing.  Bounded: inserts into a full stripe
/// are dropped, so memory is capped and no eviction policy can introduce
/// cross-run variance.  Hit or miss never changes a result — the cached
/// value is exactly what a recompute would produce — which is what makes a
/// shared cache safe under the bitwise thread-invariance contract.
class TranspositionCache {
 public:
  struct Key {
    std::uint64_t h1 = 0;
    std::uint64_t h2 = 0;
  };

  /// capacity <= 0 uses default_capacity().
  explicit TranspositionCache(long capacity = -1);

  /// AFP_TT_CAP environment override; default 1 << 18 entries, 0 disables
  /// (every lookup misses, every insert drops).
  static long default_capacity();

  bool lookup(const Key& k, double* cost) const;
  void insert(const Key& k, double cost);

  long hits() const { return hits_.load(std::memory_order_relaxed); }
  long misses() const { return misses_.load(std::memory_order_relaxed); }
  /// Inserts dropped because the target stripe was full — the bounded
  /// table's stand-in for an eviction count (nothing is ever evicted).
  long dropped() const { return dropped_.load(std::memory_order_relaxed); }
  long size() const;

  static Key hash(const SequencePair& sp);
  static Key hash(const BStarTree& tree);

 private:
  static constexpr int kStripes = 64;
  struct Stripe {
    mutable std::mutex mu;
    /// h1 -> (h2, cost); an h1 collision with a different h2 is a miss.
    std::unordered_map<std::uint64_t, std::pair<std::uint64_t, double>> map;
  };
  Stripe stripes_[kStripes];
  std::size_t per_stripe_cap_ = 0;
  mutable std::atomic<long> hits_{0};
  mutable std::atomic<long> misses_{0};
  mutable std::atomic<long> dropped_{0};
};

namespace detail {

/// Shared rect -> cost scoring with the per-net HPWL cache.  Mirrors the
/// arithmetic of sp_cost(evaluate_floorplan(...)) term by term so the
/// result is bitwise identical without re-deriving a relaxed instance on
/// every constraint violation.
class RectScorer {
 public:
  void bind(const floorplan::Instance& inst);
  /// `moved` lists blocks whose rect changed since the last call; pass
  /// full = true (first evaluation / fallback repack) to rescan all nets.
  double cost(const std::vector<geom::Rect>& rects,
              const std::vector<int>& moved, bool full);

 private:
  const floorplan::Instance* inst_ = nullptr;
  double total_area_ = 0.0;
  floorplan::HpwlCache hpwl_;
};

}  // namespace detail

/// Incremental cost evaluator over sequence pairs.  One evaluator serves
/// one (instance, spacing) pair and one search chain: it carries the
/// previous packing as state.  Feeding it arbitrary states stays correct —
/// the diff is computed against whatever was evaluated last — it is only
/// fastest when successive states differ by a move or two.
class SpEvaluator {
 public:
  SpEvaluator(const floorplan::Instance& inst, double spacing,
              TranspositionCache* tt = nullptr);

  /// Cost of `sp`, bitwise equal to sp_cost(inst, pack(inst, sp, spacing))
  /// in every mode.  In check mode both paths run and must agree exactly.
  double cost(const SequencePair& sp);

 private:
  double eval_delta(const SequencePair& sp);
  void pack_full(const SequencePair& sp);
  /// Delta repack; falls back to pack_full when the diff is too large.
  void repack(const SequencePair& sp);

  const floorplan::Instance& inst_;
  double spacing_;
  TranspositionCache* tt_;
  detail::RectScorer scorer_;

  bool has_state_ = false;
  bool full_rescan_ = false;  ///< this eval rebuilt everything
  SequencePair cached_;
  std::vector<int> pos1_, pos2_;
  std::vector<double> w_, h_, x_, y_;
  std::vector<geom::Rect> rects_;
  std::vector<int> moved_;  ///< blocks whose rect changed in the last eval
  // Scratch (kept across evals to avoid reallocation).
  std::vector<int> npos1_, npos2_;
  std::vector<char> changed_;
  std::vector<int> touched_;
  /// Fenwick (binary indexed) trees holding running prefix maxima of block
  /// contributions (coord + extent), one per axis.  They turn each pass of
  /// the suffix re-relaxation into O(n log n): a block's packed coordinate
  /// is exactly the max contribution over its already-inserted
  /// predecessors, and max over the same set of doubles is bit-exact
  /// regardless of association order.
  std::vector<double> fenx_, feny_;
};

/// Incremental cost evaluator over B*-trees: caches the preorder step list
/// (node, shape, x) plus periodic contour snapshots, and replays only the
/// DFS suffix after the first step a move changed.
class BStarEvaluator {
 public:
  BStarEvaluator(const floorplan::Instance& inst, double spacing,
                 TranspositionCache* tt = nullptr);

  /// Bitwise equal to sp_cost(inst, pack_bstar(inst, tree, spacing)).
  double cost(const BStarTree& tree);

 private:
  struct Step {
    int node = -1;
    int shape = -1;
    double x = 0.0;
  };
  struct Snapshot {
    int step = 0;  ///< contour state BEFORE replaying this step index
    Contour contour;
  };
  static constexpr int kSnapshotStride = 8;

  double eval_delta(const BStarTree& tree);
  /// Preorder step list with x positions (no contour work), O(n).
  void plan_steps(const BStarTree& tree, std::vector<Step>* steps);

  const floorplan::Instance& inst_;
  double spacing_;
  TranspositionCache* tt_;
  detail::RectScorer scorer_;

  bool has_state_ = false;
  bool full_rescan_ = false;
  std::vector<Step> steps_;
  /// Fixed snapshot slots (slot j holds the contour before step
  /// j * stride); the first nvalid_ slots are consistent with steps_.
  /// Slots are assigned in place so their segment buffers keep capacity —
  /// steady-state replays allocate nothing.
  std::vector<Snapshot> snapshots_;
  int nvalid_ = 0;
  Contour work_;  ///< replay contour, kept for its buffer capacity
  std::vector<geom::Rect> rects_;
  std::vector<int> moved_;
  std::vector<Step> scratch_steps_;
  std::vector<std::pair<int, double>> plan_stack_;
};

}  // namespace afp::metaheur
