#include "metaheur/baselines.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <numeric>

#include "metaheur/eval_cache.hpp"
#include "numeric/parallel.hpp"

namespace afp::metaheur {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

BaselineResult finish(std::string method, const floorplan::Instance& inst,
                      const SequencePair& best, double spacing,
                      Clock::time_point t0, long evals) {
  BaselineResult r;
  r.method = std::move(method);
  r.rects = pack(inst, best, spacing);
  r.eval = floorplan::evaluate_floorplan(inst, r.rects);
  r.runtime_s = seconds_since(t0);
  r.evaluations = evals;
  return r;
}

/// Random move type, uniform.
Move random_move(std::mt19937_64& rng) {
  std::uniform_int_distribution<int> d(0, kNumMoves - 1);
  return static_cast<Move>(d(rng));
}


/// Scores a batch of candidates on the shared thread pool.  pack/sp_cost
/// draw no randomness, so population methods generate candidates serially
/// (one RNG stream, the same draws as a sequential run) and fan the pure
/// evaluations out here — results are bitwise identical for any thread
/// count.  Population members are unrelated states (crossover offspring,
/// decoded swarm particles), so the incremental evaluator has nothing to
/// diff against: GA/PSO stay on the full recompute path on purpose.
std::vector<double> eval_population(const floorplan::Instance& inst,
                                    const std::vector<SequencePair>& pop,
                                    double spacing) {
  std::vector<double> cost(pop.size());
  num::parallel_for(static_cast<std::int64_t>(pop.size()), 1,
                    [&](std::int64_t i0, std::int64_t i1) {
                      for (std::int64_t i = i0; i < i1; ++i)
                        cost[static_cast<std::size_t>(i)] = sp_cost(
                            inst,
                            pack(inst, pop[static_cast<std::size_t>(i)],
                                 spacing));
                    });
  return cost;
}

}  // namespace

double resolve_spacing(const floorplan::Instance& inst, double spacing_um) {
  return spacing_um >= 0.0 ? spacing_um : inst.canvas_w / 32.0;
}

BaselineResult run_sa(const floorplan::Instance& inst, const SAParams& p,
                      std::mt19937_64& rng) {
  const auto t0 = Clock::now();
  const double spacing = resolve_spacing(inst, p.spacing_um);
  SpEvaluator ev(inst, spacing, p.tt);
  SequencePair cur = SequencePair::random(inst.num_blocks(), rng);
  double cur_cost = ev.cost(cur);
  SequencePair best = cur;
  double best_cost = cur_cost;
  long evals = 1;

  const double decay =
      std::pow(p.t_end / p.t_start, 1.0 / std::max(1, p.iterations - 1));
  double temp = p.t_start;
  std::uniform_real_distribution<double> unif(0.0, 1.0);
  StopPoll stopped(p.stop);
  for (int it = 0; it < p.iterations; ++it, temp *= decay) {
    if (stopped()) break;  // best-so-far; caller classifies why
    SequencePair cand = cur;
    apply_move(cand, random_move(rng), rng);
    const double cost = ev.cost(cand);
    ++evals;
    if (cost < cur_cost || unif(rng) < std::exp((cur_cost - cost) / temp)) {
      cur = std::move(cand);
      cur_cost = cost;
      if (cur_cost < best_cost) {
        best = cur;
        best_cost = cur_cost;
      }
    }
  }
  return finish("SA", inst, best, spacing, t0, evals);
}

BaselineResult run_ga(const floorplan::Instance& inst, const GAParams& p,
                      std::mt19937_64& rng) {
  const auto t0 = Clock::now();
  const double spacing = resolve_spacing(inst, p.spacing_um);
  const int n = inst.num_blocks();
  std::vector<SequencePair> pop;
  long evals = 0;
  for (int i = 0; i < p.population; ++i) {
    pop.push_back(SequencePair::random(n, rng));
  }
  std::vector<double> cost = eval_population(inst, pop, spacing);
  evals += p.population;

  auto tournament = [&](int k) {
    std::uniform_int_distribution<int> d(0, p.population - 1);
    int best = d(rng);
    for (int i = 1; i < k; ++i) {
      const int c = d(rng);
      if (cost[static_cast<std::size_t>(c)] < cost[static_cast<std::size_t>(best)]) best = c;
    }
    return best;
  };

  // Order crossover (OX) for a permutation.
  auto ox = [&](const std::vector<int>& a, const std::vector<int>& b) {
    std::uniform_int_distribution<int> d(0, n - 1);
    int lo = d(rng), hi = d(rng);
    if (lo > hi) std::swap(lo, hi);
    std::vector<int> child(static_cast<std::size_t>(n), -1);
    std::vector<bool> used(static_cast<std::size_t>(n), false);
    for (int i = lo; i <= hi; ++i) {
      child[static_cast<std::size_t>(i)] = a[static_cast<std::size_t>(i)];
      used[static_cast<std::size_t>(a[static_cast<std::size_t>(i)])] = true;
    }
    int w = (hi + 1) % n;
    for (int i = 0; i < n; ++i) {
      const int v = b[static_cast<std::size_t>((hi + 1 + i) % n)];
      if (used[static_cast<std::size_t>(v)]) continue;
      child[static_cast<std::size_t>(w)] = v;
      w = (w + 1) % n;
    }
    return child;
  };

  std::uniform_real_distribution<double> unif(0.0, 1.0);
  StopPoll stopped(p.stop);
  for (int gen = 0; gen < p.generations; ++gen) {
    if (stopped()) break;
    // Selection, crossover and mutation draw from the single RNG stream;
    // the offspring are then scored in parallel (see eval_population).
    std::vector<SequencePair> children;
    while (static_cast<int>(children.size()) + 1 < p.population) {
      const SequencePair& pa = pop[static_cast<std::size_t>(tournament(p.tournament))];
      const SequencePair& pb = pop[static_cast<std::size_t>(tournament(p.tournament))];
      SequencePair child = pa;
      if (unif(rng) < p.crossover_rate) {
        child.s1 = ox(pa.s1, pb.s1);
        child.s2 = ox(pa.s2, pb.s2);
        for (int b = 0; b < n; ++b) {
          if (unif(rng) < 0.5)
            child.shapes[static_cast<std::size_t>(b)] =
                pb.shapes[static_cast<std::size_t>(b)];
        }
      }
      if (unif(rng) < p.mutation_rate) apply_move(child, random_move(rng), rng);
      children.push_back(std::move(child));
    }
    std::vector<double> child_cost = eval_population(inst, children, spacing);
    evals += static_cast<long>(children.size());
    // Elitism: keep the incumbent best, then install the offspring.
    const auto best_it = std::min_element(cost.begin(), cost.end());
    std::vector<SequencePair> next;
    std::vector<double> next_cost;
    next.reserve(children.size() + 1);
    next_cost.reserve(children.size() + 1);
    next.push_back(pop[static_cast<std::size_t>(best_it - cost.begin())]);
    next_cost.push_back(*best_it);
    for (std::size_t i = 0; i < children.size(); ++i) {
      next.push_back(std::move(children[i]));
      next_cost.push_back(child_cost[i]);
    }
    pop = std::move(next);
    cost = std::move(next_cost);
  }
  const auto best_it = std::min_element(cost.begin(), cost.end());
  return finish("GA", inst,
                pop[static_cast<std::size_t>(best_it - cost.begin())],
                spacing, t0, evals);
}

BaselineResult run_pso(const floorplan::Instance& inst, const PSOParams& p,
                       std::mt19937_64& rng) {
  // Random-key PSO: each particle holds continuous keys for s1 order,
  // s2 order and shape choice; argsort decodes permutations.
  const auto t0 = Clock::now();
  const double spacing = resolve_spacing(inst, p.spacing_um);
  const int n = inst.num_blocks();
  const int dim = 3 * n;
  std::uniform_real_distribution<double> unif(0.0, 1.0);

  auto decode = [&](const std::vector<double>& key) {
    SequencePair sp = SequencePair::initial(n);
    auto argsort = [&](int offset) {
      std::vector<int> idx(static_cast<std::size_t>(n));
      std::iota(idx.begin(), idx.end(), 0);
      std::sort(idx.begin(), idx.end(), [&](int a, int b) {
        return key[static_cast<std::size_t>(offset + a)] <
               key[static_cast<std::size_t>(offset + b)];
      });
      return idx;
    };
    sp.s1 = argsort(0);
    sp.s2 = argsort(n);
    for (int b = 0; b < n; ++b) {
      const double v = key[static_cast<std::size_t>(2 * n + b)];
      sp.shapes[static_cast<std::size_t>(b)] = std::clamp(
          static_cast<int>(v * floorplan::kNumShapes), 0,
          floorplan::kNumShapes - 1);
    }
    return sp;
  };

  std::vector<std::vector<double>> pos(static_cast<std::size_t>(p.particles)),
      vel(static_cast<std::size_t>(p.particles)),
      pbest(static_cast<std::size_t>(p.particles));
  std::vector<double> pbest_cost(static_cast<std::size_t>(p.particles), 1e300);
  std::vector<double> gbest;
  double gbest_cost = 1e300;
  long evals = 0;

  // Decode + score the whole swarm on the thread pool; decode is RNG-free.
  auto eval_swarm = [&]() {
    std::vector<SequencePair> decoded(pos.size());
    num::parallel_for(static_cast<std::int64_t>(pos.size()), 1,
                      [&](std::int64_t i0, std::int64_t i1) {
                        for (std::int64_t i = i0; i < i1; ++i)
                          decoded[static_cast<std::size_t>(i)] =
                              decode(pos[static_cast<std::size_t>(i)]);
                      });
    evals += static_cast<long>(pos.size());
    return eval_population(inst, decoded, spacing);
  };
  // Best updates run serially in particle order after each synchronous
  // sweep (classic synchronous PSO: an iteration's social term uses the
  // previous iteration's global best).
  auto update_bests = [&](const std::vector<double>& cost) {
    for (int i = 0; i < p.particles; ++i) {
      const double c = cost[static_cast<std::size_t>(i)];
      if (c < pbest_cost[static_cast<std::size_t>(i)]) {
        pbest_cost[static_cast<std::size_t>(i)] = c;
        pbest[static_cast<std::size_t>(i)] = pos[static_cast<std::size_t>(i)];
        if (c < gbest_cost) {
          gbest_cost = c;
          gbest = pos[static_cast<std::size_t>(i)];
        }
      }
    }
  };

  for (int i = 0; i < p.particles; ++i) {
    auto& x = pos[static_cast<std::size_t>(i)];
    vel[static_cast<std::size_t>(i)].assign(static_cast<std::size_t>(dim), 0.0);
    x.resize(static_cast<std::size_t>(dim));
    for (double& xi : x) xi = unif(rng);
  }
  update_bests(eval_swarm());

  StopPoll stopped(p.stop);
  for (int it = 0; it < p.iterations; ++it) {
    if (stopped()) break;
    for (int i = 0; i < p.particles; ++i) {
      auto& x = pos[static_cast<std::size_t>(i)];
      auto& v = vel[static_cast<std::size_t>(i)];
      for (int d = 0; d < dim; ++d) {
        const double r1 = unif(rng), r2 = unif(rng);
        v[static_cast<std::size_t>(d)] =
            p.inertia * v[static_cast<std::size_t>(d)] +
            p.c1 * r1 * (pbest[static_cast<std::size_t>(i)][static_cast<std::size_t>(d)] -
                         x[static_cast<std::size_t>(d)]) +
            p.c2 * r2 * (gbest[static_cast<std::size_t>(d)] - x[static_cast<std::size_t>(d)]);
        x[static_cast<std::size_t>(d)] += v[static_cast<std::size_t>(d)];
        x[static_cast<std::size_t>(d)] = std::clamp(x[static_cast<std::size_t>(d)], 0.0, 1.0);
      }
    }
    update_bests(eval_swarm());
  }
  return finish("PSO", inst, decode(gbest), spacing, t0, evals);
}

BaselineResult run_rlsa(const floorplan::Instance& inst, const RLSAParams& p,
                        std::mt19937_64& rng) {
  // Move-type preferences theta, softmax policy pi(m); REINFORCE update
  // theta[m] += lr * improvement * (1 - pi(m)) after each proposal.
  const auto t0 = Clock::now();
  const double spacing = resolve_spacing(inst, p.spacing_um);
  SpEvaluator ev(inst, spacing, p.tt);
  SequencePair cur = SequencePair::random(inst.num_blocks(), rng);
  double cur_cost = ev.cost(cur);
  SequencePair best = cur;
  double best_cost = cur_cost;
  long evals = 1;

  std::array<double, kNumMoves> theta{};
  std::uniform_real_distribution<double> unif(0.0, 1.0);
  const double decay =
      std::pow(p.t_end / p.t_start, 1.0 / std::max(1, p.iterations - 1));
  double temp = p.t_start;

  auto policy = [&]() {
    std::array<double, kNumMoves> pi{};
    double mx = *std::max_element(theta.begin(), theta.end());
    double sum = 0.0;
    for (int m = 0; m < kNumMoves; ++m) {
      pi[static_cast<std::size_t>(m)] = std::exp(theta[static_cast<std::size_t>(m)] - mx);
      sum += pi[static_cast<std::size_t>(m)];
    }
    for (double& v : pi) v /= sum;
    return pi;
  };

  StopPoll stopped(p.stop);
  for (int it = 0; it < p.iterations; ++it, temp *= decay) {
    if (stopped()) break;
    const auto pi = policy();
    double u = unif(rng), cum = 0.0;
    int m = kNumMoves - 1;
    for (int k = 0; k < kNumMoves; ++k) {
      cum += pi[static_cast<std::size_t>(k)];
      if (u <= cum) {
        m = k;
        break;
      }
    }
    SequencePair cand = cur;
    apply_move(cand, static_cast<Move>(m), rng);
    const double cost = ev.cost(cand);
    ++evals;
    const double improvement = cur_cost - cost;
    // Policy-gradient step on the proposal's improvement signal.
    for (int k = 0; k < kNumMoves; ++k) {
      const double indicator = (k == m) ? 1.0 : 0.0;
      theta[static_cast<std::size_t>(k)] +=
          p.learning_rate * improvement *
          (indicator - pi[static_cast<std::size_t>(k)]);
    }
    if (cost < cur_cost || unif(rng) < std::exp((cur_cost - cost) / temp)) {
      cur = std::move(cand);
      cur_cost = cost;
      if (cur_cost < best_cost) {
        best = cur;
        best_cost = cur_cost;
      }
    }
  }
  return finish("RL-SA[13]", inst, best, spacing, t0, evals);
}

BaselineResult run_rlsp(const floorplan::Instance& inst, const RLSPParams& p,
                        std::mt19937_64& rng) {
  // Episodic policy gradient over move types with a per-episode baseline;
  // each episode improves a fresh random sequence pair, which reproduces
  // the heavier runtime profile [13] reports for its pure-RL variant.
  const auto t0 = Clock::now();
  const double spacing = resolve_spacing(inst, p.spacing_um);
  SpEvaluator ev(inst, spacing, p.tt);
  std::array<double, kNumMoves> theta{};
  SequencePair best = SequencePair::random(inst.num_blocks(), rng);
  double best_cost = ev.cost(best);
  long evals = 1;
  std::uniform_real_distribution<double> unif(0.0, 1.0);

  auto policy = [&]() {
    std::array<double, kNumMoves> pi{};
    double mx = *std::max_element(theta.begin(), theta.end());
    double sum = 0.0;
    for (int m = 0; m < kNumMoves; ++m) {
      pi[static_cast<std::size_t>(m)] = std::exp(theta[static_cast<std::size_t>(m)] - mx);
      sum += pi[static_cast<std::size_t>(m)];
    }
    for (double& v : pi) v /= sum;
    return pi;
  };

  double reward_baseline = 0.0;
  StopPoll stopped(p.stop);
  for (int ep = 0; ep < p.episodes; ++ep) {
    if (stopped()) break;
    SequencePair cur = SequencePair::random(inst.num_blocks(), rng);
    double cur_cost = ev.cost(cur);
    ++evals;
    std::vector<int> taken;
    for (int step = 0; step < p.steps_per_episode; ++step) {
      const auto pi = policy();
      double u = unif(rng), cum = 0.0;
      int m = kNumMoves - 1;
      for (int k = 0; k < kNumMoves; ++k) {
        cum += pi[static_cast<std::size_t>(k)];
        if (u <= cum) {
          m = k;
          break;
        }
      }
      SequencePair cand = cur;
      apply_move(cand, static_cast<Move>(m), rng);
      const double cost = ev.cost(cand);
      ++evals;
      if (cost <= cur_cost) {  // greedy improvement acceptance
        cur = std::move(cand);
        cur_cost = cost;
      }
      taken.push_back(m);
      if (cur_cost < best_cost) {
        best = cur;
        best_cost = cur_cost;
      }
    }
    const double episode_reward = -cur_cost;
    const double advantage = episode_reward - reward_baseline;
    reward_baseline = 0.9 * reward_baseline + 0.1 * episode_reward;
    const auto pi = policy();
    for (int m : taken) {
      for (int k = 0; k < kNumMoves; ++k) {
        const double indicator = (k == m) ? 1.0 : 0.0;
        theta[static_cast<std::size_t>(k)] +=
            p.learning_rate * advantage *
            (indicator - pi[static_cast<std::size_t>(k)]) /
            static_cast<double>(taken.size());
      }
    }
  }
  return finish("RL[13]", inst, best, spacing, t0, evals);
}

double estimate_hpwl_min(const floorplan::Instance& inst,
                         std::mt19937_64& rng, int iterations) {
  SequencePair cur = SequencePair::random(inst.num_blocks(), rng);
  auto hp = [&](const SequencePair& sp) {
    return floorplan::hpwl_of(inst, pack(inst, sp, 0.0));
  };
  double cur_h = hp(cur);
  double best = cur_h;
  double temp = 1.0;
  const double decay = std::pow(1e-3, 1.0 / std::max(1, iterations - 1));
  std::uniform_real_distribution<double> unif(0.0, 1.0);
  for (int it = 0; it < iterations; ++it, temp *= decay) {
    SequencePair cand = cur;
    std::uniform_int_distribution<int> d(0, kNumMoves - 1);
    apply_move(cand, static_cast<Move>(d(rng)), rng);
    const double h = hp(cand);
    const double scale = std::max(1.0, best);
    if (h < cur_h || unif(rng) < std::exp((cur_h - h) / (temp * scale))) {
      cur = std::move(cand);
      cur_h = h;
      best = std::min(best, cur_h);
    }
  }
  return std::max(1.0, best);
}

}  // namespace afp::metaheur
