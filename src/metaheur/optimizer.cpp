#include "metaheur/optimizer.hpp"

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <climits>
#include <cstdlib>
#include <sstream>
#include <stdexcept>

namespace afp::metaheur {

namespace {

std::string format_double(double v) {
  std::ostringstream os;
  os.precision(17);
  os << v;
  return os.str();
}

bool parse_int(const std::string& s, int* out) {
  long long v = 0;
  if (!parse_strict_int(s, &v) || v < INT_MIN || v > INT_MAX) return false;
  *out = static_cast<int>(v);
  return true;
}

bool parse_bool(const std::string& s, bool* out) {
  if (s == "1" || s == "true" || s == "on" || s == "yes") {
    *out = true;
    return true;
  }
  if (s == "0" || s == "false" || s == "off" || s == "no") {
    *out = false;
    return true;
  }
  return false;
}

}  // namespace

bool parse_strict_int(const std::string& s, long long* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  errno = 0;
  const long long v = std::strtoll(s.c_str(), &end, 10);
  if (errno != 0 || end != s.c_str() + s.size()) return false;
  *out = v;
  return true;
}

bool parse_strict_uint(const std::string& s, std::uint64_t* out) {
  // strtoull silently wraps negative input, so reject it explicitly.
  if (s.empty() || s.front() == '-') return false;
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  if (errno != 0 || end != s.c_str() + s.size()) return false;
  *out = v;
  return true;
}

bool parse_strict_double(const std::string& s, double* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(s.c_str(), &end);
  if (errno != 0 || end != s.c_str() + s.size()) return false;
  if (!std::isfinite(v)) return false;  // inf/nan are never valid options
  *out = v;
  return true;
}

// ------------------------------------------------------------ OptionBinder

void OptionBinder::bind(const std::string& key, int* v,
                        const std::string& help, int min_value) {
  entries_.push_back({key, Kind::kInt, v, help, min_value});
}

void OptionBinder::bind(const std::string& key, double* v,
                        const std::string& help) {
  entries_.push_back({key, Kind::kDouble, v, help, INT_MIN});
}

void OptionBinder::bind(const std::string& key, bool* v,
                        const std::string& help) {
  entries_.push_back({key, Kind::kBool, v, help, INT_MIN});
}

void OptionBinder::apply(const Options& opts, const std::string& owner) const {
  for (const auto& [key, value] : opts) {
    const auto it =
        std::find_if(entries_.begin(), entries_.end(),
                     [&](const Entry& e) { return e.key == key; });
    if (it == entries_.end()) {
      std::string known;
      for (const auto& e : entries_) {
        known += (known.empty() ? "" : ", ") + e.key;
      }
      throw std::invalid_argument("optimizer '" + owner +
                                  "': unknown option '" + key +
                                  "' (known: " + known + ")");
    }
    bool ok = false;
    switch (it->kind) {
      case Kind::kInt: {
        int parsed = 0;
        ok = parse_int(value, &parsed);
        if (ok && parsed < it->min_value) {
          throw std::invalid_argument(
              "optimizer '" + owner + "': option '" + key + "' must be >= " +
              std::to_string(it->min_value) + ", got '" + value + "'");
        }
        if (ok) *static_cast<int*>(it->ptr) = parsed;
        break;
      }
      case Kind::kDouble:
        ok = parse_strict_double(value, static_cast<double*>(it->ptr));
        break;
      case Kind::kBool:
        ok = parse_bool(value, static_cast<bool*>(it->ptr));
        break;
    }
    if (!ok) {
      throw std::invalid_argument("optimizer '" + owner + "': option '" +
                                  key + "' has malformed value '" + value +
                                  "'");
    }
  }
}

std::vector<OptionSpec> OptionBinder::specs() const {
  std::vector<OptionSpec> out;
  out.reserve(entries_.size());
  for (const auto& e : entries_) {
    std::string value;
    switch (e.kind) {
      case Kind::kInt:
        value = std::to_string(*static_cast<int*>(e.ptr));
        break;
      case Kind::kDouble:
        value = format_double(*static_cast<double*>(e.ptr));
        break;
      case Kind::kBool:
        value = *static_cast<bool*>(e.ptr) ? "true" : "false";
        break;
    }
    out.push_back({e.key, value, e.help});
  }
  return out;
}

// --------------------------------------------------------------- Optimizer

void Optimizer::configure(const Options& opts) {
  OptionBinder b;
  bind(b);
  b.apply(opts, name());
}

Options Optimizer::options() {
  Options out;
  for (const auto& s : describe()) out[s.key] = s.value;
  return out;
}

std::vector<OptionSpec> Optimizer::describe() {
  OptionBinder b;
  bind(b);
  return b.specs();
}

// ------------------------------------------------------ built-in optimizers
//
// Each wrapper owns the legacy parameter struct and forwards run() to the
// legacy entry point so the registry path is bitwise identical to the old
// enum path.  budget.iterations overrides the primary budget knob only.

namespace {

constexpr const char* kSeqPair = "sequence-pair";
constexpr const char* kBStar = "b*-tree";

class SaOptimizer : public Optimizer {
 public:
  const char* name() const override { return "sa"; }
  const char* encoding() const override { return kSeqPair; }
  SearchResult run(const floorplan::Instance& inst, const SearchBudget& budget,
                   std::mt19937_64& rng) const override {
    SAParams p = p_;
    if (budget.iterations > 0) p.iterations = budget.iterations;
    p.stop = budget.stop;
    p.tt = budget.tt;
    return run_sa(inst, p, rng);
  }

 protected:
  void bind(OptionBinder& b) override {
    b.bind("iterations", &p_.iterations, "annealing move budget", 0);
    b.bind("t_start", &p_.t_start, "initial temperature");
    b.bind("t_end", &p_.t_end, "final temperature");
    b.bind("spacing_um", &p_.spacing_um,
           "congestion margin; < 0 = auto (one grid cell)");
  }

 private:
  SAParams p_;
};

class GaOptimizer : public Optimizer {
 public:
  const char* name() const override { return "ga"; }
  const char* encoding() const override { return kSeqPair; }
  SearchResult run(const floorplan::Instance& inst, const SearchBudget& budget,
                   std::mt19937_64& rng) const override {
    GAParams p = p_;
    if (budget.iterations > 0) p.generations = budget.iterations;
    p.stop = budget.stop;
    return run_ga(inst, p, rng);
  }

 protected:
  void bind(OptionBinder& b) override {
    b.bind("population", &p_.population, "individuals per generation", 1);
    b.bind("generations", &p_.generations, "generation budget", 0);
    b.bind("crossover_rate", &p_.crossover_rate, "crossover probability");
    b.bind("mutation_rate", &p_.mutation_rate, "mutation probability");
    b.bind("tournament", &p_.tournament, "tournament selection size", 1);
    b.bind("spacing_um", &p_.spacing_um,
           "congestion margin; < 0 = auto (one grid cell)");
  }

 private:
  GAParams p_;
};

class PsoOptimizer : public Optimizer {
 public:
  const char* name() const override { return "pso"; }
  const char* encoding() const override { return kSeqPair; }
  SearchResult run(const floorplan::Instance& inst, const SearchBudget& budget,
                   std::mt19937_64& rng) const override {
    PSOParams p = p_;
    if (budget.iterations > 0) p.iterations = budget.iterations;
    p.stop = budget.stop;
    return run_pso(inst, p, rng);
  }

 protected:
  void bind(OptionBinder& b) override {
    b.bind("particles", &p_.particles, "swarm size", 1);
    b.bind("iterations", &p_.iterations, "synchronous sweep budget", 0);
    b.bind("inertia", &p_.inertia, "velocity inertia weight");
    b.bind("c1", &p_.c1, "cognitive coefficient");
    b.bind("c2", &p_.c2, "social coefficient");
    b.bind("spacing_um", &p_.spacing_um,
           "congestion margin; < 0 = auto (one grid cell)");
  }

 private:
  PSOParams p_;
};

class RlsaOptimizer : public Optimizer {
 public:
  const char* name() const override { return "rlsa"; }
  const char* encoding() const override { return kSeqPair; }
  SearchResult run(const floorplan::Instance& inst, const SearchBudget& budget,
                   std::mt19937_64& rng) const override {
    RLSAParams p = p_;
    if (budget.iterations > 0) p.iterations = budget.iterations;
    p.stop = budget.stop;
    p.tt = budget.tt;
    return run_rlsa(inst, p, rng);
  }

 protected:
  void bind(OptionBinder& b) override {
    b.bind("iterations", &p_.iterations, "annealing move budget", 0);
    b.bind("t_start", &p_.t_start, "initial temperature");
    b.bind("t_end", &p_.t_end, "final temperature");
    b.bind("learning_rate", &p_.learning_rate,
           "REINFORCE step for the move-type policy");
    b.bind("spacing_um", &p_.spacing_um,
           "congestion margin; < 0 = auto (one grid cell)");
  }

 private:
  RLSAParams p_;
};

class RlspOptimizer : public Optimizer {
 public:
  const char* name() const override { return "rlsp"; }
  const char* encoding() const override { return kSeqPair; }
  SearchResult run(const floorplan::Instance& inst, const SearchBudget& budget,
                   std::mt19937_64& rng) const override {
    RLSPParams p = p_;
    if (budget.iterations > 0) p.episodes = budget.iterations;
    p.stop = budget.stop;
    p.tt = budget.tt;
    return run_rlsp(inst, p, rng);
  }

 protected:
  void bind(OptionBinder& b) override {
    b.bind("episodes", &p_.episodes, "policy-gradient episode budget", 0);
    b.bind("steps_per_episode", &p_.steps_per_episode, "moves per episode", 0);
    b.bind("learning_rate", &p_.learning_rate, "policy-gradient step size");
    b.bind("spacing_um", &p_.spacing_um,
           "congestion margin; < 0 = auto (one grid cell)");
  }

 private:
  RLSPParams p_;
};

class SaBstarOptimizer : public Optimizer {
 public:
  const char* name() const override { return "sab"; }
  const char* encoding() const override { return kBStar; }
  SearchResult run(const floorplan::Instance& inst, const SearchBudget& budget,
                   std::mt19937_64& rng) const override {
    BStarSAParams p = p_;
    if (budget.iterations > 0) p.iterations = budget.iterations;
    p.stop = budget.stop;
    p.tt = budget.tt;
    return run_sa_bstar(inst, p, rng);
  }

 protected:
  void bind(OptionBinder& b) override {
    b.bind("iterations", &p_.iterations, "annealing move budget", 0);
    b.bind("t_start", &p_.t_start, "initial temperature");
    b.bind("t_end", &p_.t_end, "final temperature");
    b.bind("spacing_um", &p_.spacing_um,
           "congestion margin; < 0 = auto (one grid cell)");
  }

 private:
  BStarSAParams p_;
};

/// Parallel tempering; `Rep` selects the chain encoding so "pt" and
/// "pt-bstar" are two registry entries over one implementation.
template <Representation Rep>
class PtOptimizer : public Optimizer {
 public:
  PtOptimizer() { p_.representation = Rep; }
  const char* name() const override {
    return Rep == Representation::kSequencePair ? "pt" : "pt-bstar";
  }
  const char* encoding() const override {
    return Rep == Representation::kSequencePair ? kSeqPair : kBStar;
  }
  SearchResult run(const floorplan::Instance& inst, const SearchBudget& budget,
                   std::mt19937_64& rng) const override {
    PTParams p = p_;
    if (budget.iterations > 0) p.iterations = budget.iterations;
    p.stop = budget.stop;
    p.tt = budget.tt;
    return run_pt(inst, p, rng);
  }

 protected:
  void bind(OptionBinder& b) override {
    b.bind("replicas", &p_.replicas, "temperature-ladder size K (>= 2)", 2);
    b.bind("iterations", &p_.iterations,
           "mean moves per replica (total = K * this)", 0);
    b.bind("anneal", &p_.anneal,
           "annealed ladder (true) vs fixed rungs (false)");
    b.bind("t_start", &p_.t_start, "annealed mode: coldest start temp");
    b.bind("t_end", &p_.t_end, "annealed mode: coldest final temp");
    b.bind("hot_factor", &p_.hot_factor,
           "annealed mode: hottest/coldest multiplier");
    b.bind("t_cold", &p_.t_cold, "fixed mode: coldest rung");
    b.bind("t_hot", &p_.t_hot, "fixed mode: hottest rung; < 0 = auto");
    b.bind("budget_skew", &p_.budget_skew,
           "cold-chain move-budget skew (1 = equal chains)");
    b.bind("swap_interval", &p_.swap_interval,
           "cold-chain moves between exchange rounds", 1);
    b.bind("adaptive_swap", &p_.adaptive_swap,
           "adapt the swap interval to the exchange acceptance");
    b.bind("spacing_um", &p_.spacing_um,
           "congestion margin; < 0 = auto (one grid cell)");
  }

 private:
  PTParams p_;
};

template <typename T>
std::unique_ptr<Optimizer> make() {
  return std::make_unique<T>();
}

}  // namespace

// ---------------------------------------------------------------- registry

OptimizerRegistry::OptimizerRegistry() {
  add("sa", &make<SaOptimizer>);
  add("ga", &make<GaOptimizer>);
  add("pso", &make<PsoOptimizer>);
  add("rlsa", &make<RlsaOptimizer>);
  add("rlsp", &make<RlspOptimizer>);
  add("sab", &make<SaBstarOptimizer>);
  add("pt", &make<PtOptimizer<Representation::kSequencePair>>);
  add("pt-bstar", &make<PtOptimizer<Representation::kBStarTree>>);
}

OptimizerRegistry& OptimizerRegistry::global() {
  static OptimizerRegistry registry;
  return registry;
}

void OptimizerRegistry::add(const std::string& name,
                            OptimizerFactory factory) {
  if (factories_.count(name)) {
    throw std::invalid_argument("OptimizerRegistry: duplicate name '" + name +
                                "'");
  }
  factories_[name] = factory;
}

bool OptimizerRegistry::contains(const std::string& name) const {
  return factories_.count(name) > 0;
}

std::vector<std::string> OptimizerRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(factories_.size());
  for (const auto& [name, factory] : factories_) out.push_back(name);
  return out;
}

std::unique_ptr<Optimizer> OptimizerRegistry::create(
    const std::string& name, const Options& opts) const {
  const auto it = factories_.find(name);
  if (it == factories_.end()) {
    std::string known;
    for (const auto& n : names()) known += (known.empty() ? "" : ", ") + n;
    throw std::invalid_argument("unknown optimizer '" + name +
                                "' (registered: " + known + ")");
  }
  auto opt = it->second();
  opt->configure(opts);
  return opt;
}

std::unique_ptr<Optimizer> make_optimizer(const std::string& name,
                                          const Options& opts) {
  return OptimizerRegistry::global().create(name, opts);
}

std::vector<std::string> optimizer_names() {
  return OptimizerRegistry::global().names();
}

}  // namespace afp::metaheur
