#include "metaheur/parallel_search.hpp"

#include <chrono>
#include <stdexcept>
#include <vector>

#include "numeric/parallel.hpp"

namespace afp::metaheur {

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

std::mt19937_64 restart_rng(std::uint64_t base_seed, int restart) {
  const std::uint64_t mixed =
      splitmix64(splitmix64(base_seed) ^
                 (0x7f4a7c15ull + static_cast<std::uint64_t>(restart)));
  return std::mt19937_64(mixed);
}

BaselineResult run_multistart(
    const floorplan::Instance& inst,
    const std::function<BaselineResult(int restart, std::mt19937_64& rng)>&
        search,
    const MultiStartOptions& opt) {
  if (opt.restarts < 1) {
    throw std::invalid_argument("run_multistart: restarts must be >= 1");
  }
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<BaselineResult> results(static_cast<std::size_t>(opt.restarts));
  // grain 1: each restart is one unit of work; a restart never re-enters the
  // pool (nested parallel_for runs serially on the worker), so the streams
  // stay independent and results are thread-count invariant.
  num::parallel_for(opt.restarts, 1, [&](std::int64_t k0, std::int64_t k1) {
    for (std::int64_t k = k0; k < k1; ++k) {
      std::mt19937_64 rng =
          restart_rng(opt.base_seed, static_cast<int>(k));
      results[static_cast<std::size_t>(k)] =
          search(static_cast<int>(k), rng);
    }
  });
  // Deterministic selection: lowest packed cost, ties to the first restart.
  int best = 0;
  double best_cost = sp_cost(inst, results[0].rects);
  long evals = results[0].evaluations;
  for (int k = 1; k < opt.restarts; ++k) {
    evals += results[static_cast<std::size_t>(k)].evaluations;
    const double c = sp_cost(inst, results[static_cast<std::size_t>(k)].rects);
    if (c < best_cost) {
      best_cost = c;
      best = k;
    }
  }
  BaselineResult r = std::move(results[static_cast<std::size_t>(best)]);
  r.evaluations = evals;
  r.runtime_s = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
  if (opt.restarts > 1) r.method += "x" + std::to_string(opt.restarts);
  return r;
}

BaselineResult run_sa_multi(const floorplan::Instance& inst, const SAParams& p,
                            const MultiStartOptions& opt) {
  return run_multistart(
      inst,
      [&inst, &p](int, std::mt19937_64& rng) { return run_sa(inst, p, rng); },
      opt);
}

BaselineResult run_ga_multi(const floorplan::Instance& inst, const GAParams& p,
                            const MultiStartOptions& opt) {
  return run_multistart(
      inst,
      [&inst, &p](int, std::mt19937_64& rng) { return run_ga(inst, p, rng); },
      opt);
}

BaselineResult run_sa_bstar_multi(const floorplan::Instance& inst,
                                  const BStarSAParams& p,
                                  const MultiStartOptions& opt) {
  return run_multistart(
      inst,
      [&inst, &p](int, std::mt19937_64& rng) {
        return run_sa_bstar(inst, p, rng);
      },
      opt);
}

}  // namespace afp::metaheur
