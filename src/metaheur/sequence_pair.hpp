// Sequence-Pair floorplan representation (Murata et al.; symmetry context
// per Balasa & Lampaert [14]).
//
// A candidate solution is (s1, s2, shapes): two permutations of the block
// indices plus one candidate-shape index per block.  Packing follows the
// classic rule — a before b in both sequences places a left of b; a before
// b in s1 and after b in s2 places a above b — and computes coordinates by
// longest-path relaxation (O(n^2), ample for block counts <= ~50).
//
// Congestion-aware spacing: blocks are packed with a margin added on every
// side (reserving routing channels, as the paper applies to all baseline
// methods), then the original rectangles are centered in their padded
// slots.
#pragma once

#include <random>
#include <vector>

#include "floorplan/instance.hpp"

namespace afp::metaheur {

struct SequencePair {
  std::vector<int> s1;
  std::vector<int> s2;
  std::vector<int> shapes;

  /// Identity sequence pair with the middle shape everywhere.
  static SequencePair initial(int num_blocks);
  /// Uniformly random sequence pair.
  static SequencePair random(int num_blocks, std::mt19937_64& rng);

  int size() const { return static_cast<int>(s1.size()); }
};

/// Packs the sequence pair into continuous rectangles (lower-left at the
/// origin).  `spacing_um` is the per-side congestion margin.
std::vector<geom::Rect> pack(const floorplan::Instance& inst,
                             const SequencePair& sp, double spacing_um = 0.0);

/// Local move vocabulary shared by SA / GA mutation / the [13] agents.
enum class Move : int {
  kSwapS1 = 0,    ///< swap two blocks in s1
  kSwapS2,        ///< swap two blocks in s2
  kSwapBoth,      ///< swap the same two blocks in both sequences
  kChangeShape,   ///< re-roll one block's candidate shape
};
constexpr int kNumMoves = 4;

/// Applies a random instance of `move` in place.
void apply_move(SequencePair& sp, Move move, std::mt19937_64& rng);

/// Cost of a packed floorplan: the negated Eq. (5) reward plus a soft
/// penalty for constraint violations (lower is better).
double sp_cost(const floorplan::Instance& inst,
               const std::vector<geom::Rect>& rects);

}  // namespace afp::metaheur
