#include "metaheur/sequence_pair.hpp"

#include <algorithm>
#include <numeric>

namespace afp::metaheur {

SequencePair SequencePair::initial(int num_blocks) {
  SequencePair sp;
  sp.s1.resize(static_cast<std::size_t>(num_blocks));
  std::iota(sp.s1.begin(), sp.s1.end(), 0);
  sp.s2 = sp.s1;
  sp.shapes.assign(static_cast<std::size_t>(num_blocks), 1);
  return sp;
}

SequencePair SequencePair::random(int num_blocks, std::mt19937_64& rng) {
  SequencePair sp = initial(num_blocks);
  std::shuffle(sp.s1.begin(), sp.s1.end(), rng);
  std::shuffle(sp.s2.begin(), sp.s2.end(), rng);
  std::uniform_int_distribution<int> shape(0, floorplan::kNumShapes - 1);
  for (int& s : sp.shapes) s = shape(rng);
  return sp;
}

std::vector<geom::Rect> pack(const floorplan::Instance& inst,
                             const SequencePair& sp, double spacing_um) {
  const int n = sp.size();
  std::vector<int> pos1(static_cast<std::size_t>(n)), pos2(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    pos1[static_cast<std::size_t>(sp.s1[static_cast<std::size_t>(i)])] = i;
    pos2[static_cast<std::size_t>(sp.s2[static_cast<std::size_t>(i)])] = i;
  }
  std::vector<double> w(static_cast<std::size_t>(n)), h(static_cast<std::size_t>(n));
  for (int b = 0; b < n; ++b) {
    const auto& sh = inst.blocks[static_cast<std::size_t>(b)]
                         .shapes[static_cast<std::size_t>(
                             sp.shapes[static_cast<std::size_t>(b)])];
    w[static_cast<std::size_t>(b)] = sh.w + 2.0 * spacing_um;
    h[static_cast<std::size_t>(b)] = sh.h + 2.0 * spacing_um;
  }

  // x: process blocks in s1 order; all left-of predecessors come earlier.
  std::vector<double> x(static_cast<std::size_t>(n), 0.0);
  for (int i = 0; i < n; ++i) {
    const int b = sp.s1[static_cast<std::size_t>(i)];
    double xb = 0.0;
    for (int j = 0; j < i; ++j) {
      const int a = sp.s1[static_cast<std::size_t>(j)];
      if (pos2[static_cast<std::size_t>(a)] < pos2[static_cast<std::size_t>(b)]) {
        xb = std::max(xb, x[static_cast<std::size_t>(a)] + w[static_cast<std::size_t>(a)]);
      }
    }
    x[static_cast<std::size_t>(b)] = xb;
  }
  // y: process in s2 order; "a above b" (pos1(a)<pos1(b), pos2(a)>pos2(b))
  // means every block below a precedes it in s2.
  std::vector<double> y(static_cast<std::size_t>(n), 0.0);
  for (int i = 0; i < n; ++i) {
    const int a = sp.s2[static_cast<std::size_t>(i)];
    double ya = 0.0;
    for (int j = 0; j < i; ++j) {
      const int b = sp.s2[static_cast<std::size_t>(j)];
      if (pos1[static_cast<std::size_t>(a)] < pos1[static_cast<std::size_t>(b)]) {
        ya = std::max(ya, y[static_cast<std::size_t>(b)] + h[static_cast<std::size_t>(b)]);
      }
    }
    y[static_cast<std::size_t>(a)] = ya;
  }

  std::vector<geom::Rect> rects(static_cast<std::size_t>(n));
  for (int b = 0; b < n; ++b) {
    const auto& sh = inst.blocks[static_cast<std::size_t>(b)]
                         .shapes[static_cast<std::size_t>(
                             sp.shapes[static_cast<std::size_t>(b)])];
    // Center the true rectangle inside its padded slot.
    rects[static_cast<std::size_t>(b)] = {
        x[static_cast<std::size_t>(b)] + spacing_um,
        y[static_cast<std::size_t>(b)] + spacing_um, sh.w, sh.h};
  }
  return rects;
}

void apply_move(SequencePair& sp, Move move, std::mt19937_64& rng) {
  const int n = sp.size();
  if (n < 2) return;
  std::uniform_int_distribution<int> pick(0, n - 1);
  int i = pick(rng);
  int j = pick(rng);
  while (j == i) j = pick(rng);
  switch (move) {
    case Move::kSwapS1:
      std::swap(sp.s1[static_cast<std::size_t>(i)], sp.s1[static_cast<std::size_t>(j)]);
      break;
    case Move::kSwapS2:
      std::swap(sp.s2[static_cast<std::size_t>(i)], sp.s2[static_cast<std::size_t>(j)]);
      break;
    case Move::kSwapBoth: {
      // Swap the same *blocks* in both sequences.
      const int a = sp.s1[static_cast<std::size_t>(i)];
      const int b = sp.s1[static_cast<std::size_t>(j)];
      std::swap(sp.s1[static_cast<std::size_t>(i)], sp.s1[static_cast<std::size_t>(j)]);
      auto ita = std::find(sp.s2.begin(), sp.s2.end(), a);
      auto itb = std::find(sp.s2.begin(), sp.s2.end(), b);
      std::iter_swap(ita, itb);
      break;
    }
    case Move::kChangeShape: {
      // Draw from the other shapes only; re-rolling the current shape would
      // make the move a no-op (and waste an SA evaluation) 1/kNumShapes of
      // the time.
      std::uniform_int_distribution<int> shape(0, floorplan::kNumShapes - 2);
      int s = shape(rng);
      if (s >= sp.shapes[static_cast<std::size_t>(i)]) ++s;
      sp.shapes[static_cast<std::size_t>(i)] = s;
      break;
    }
  }
}

double sp_cost(const floorplan::Instance& inst,
               const std::vector<geom::Rect>& rects) {
  floorplan::RewardWeights w;
  // Score geometry without the -50 cliff: metaheuristics need a smooth
  // landscape, so constraint violations add a graded penalty (proportional
  // to the violated-item fraction) instead — repairing one more symmetry
  // pair or matching follower always lowers the cost.
  int total = 0;
  const int violated = floorplan::constraint_violations(inst, rects, 1e-6,
                                                        &total);
  if (violated == 0) {
    return -floorplan::evaluate_floorplan(inst, rects, w).reward;
  }
  floorplan::Instance relaxed = inst;
  relaxed.constraints = {};
  const auto free_ev = floorplan::evaluate_floorplan(relaxed, rects, w);
  return -free_ev.reward + floorplan::constraint_penalty(violated, total);
}

}  // namespace afp::metaheur
