// B*-tree floorplan representation (Chang et al.; used with SA by [15],
// cited in the paper's related work as the other classic topological
// model next to Sequence-Pair).
//
// A B*-tree node is a block; the left child is packed immediately to the
// right of its parent, the right child directly above it at the same x.
// y coordinates come from a horizontal contour.  B*-trees represent
// exactly the admissible *compacted* floorplans, so packings are always
// overlap-free and left/bottom compacted.
#pragma once

#include <random>
#include <vector>

#include "floorplan/instance.hpp"
#include "metaheur/baselines.hpp"

namespace afp::metaheur {

struct BStarTree {
  /// Per-slot child links (block indices; -1 = none) and tree root.
  std::vector<int> left;
  std::vector<int> right;
  std::vector<int> parent;
  int root = 0;
  /// Candidate-shape index per block.
  std::vector<int> shapes;

  int size() const { return static_cast<int>(left.size()); }

  /// Random topology + shapes over `num_blocks` blocks.
  static BStarTree random(int num_blocks, std::mt19937_64& rng);

  /// Structural invariant check (every block reachable exactly once).
  bool valid() const;
};

/// Packs the tree into rectangles using the contour algorithm.
/// `spacing_um` pads every block on all sides (congestion margin).
std::vector<geom::Rect> pack_bstar(const floorplan::Instance& inst,
                                   const BStarTree& tree,
                                   double spacing_um = 0.0);

/// B*-tree local moves for annealing.
enum class BStarMove : int {
  kChangeShape = 0,  ///< re-roll one block's shape
  kSwapBlocks,       ///< swap two blocks' tree positions
  kMoveLeaf,         ///< detach a leaf and reattach at a random free slot
};
constexpr int kNumBStarMoves = 3;

void apply_bstar_move(BStarTree& tree, BStarMove move, std::mt19937_64& rng);

/// Simulated annealing over B*-trees; same cost as the SP baselines.
struct BStarSAParams {
  int iterations = 4000;
  double t_start = 2.0;
  double t_end = 1e-3;
  double spacing_um = -1.0;  ///< < 0 = auto (one grid cell)
  const CancelToken* stop = nullptr;  ///< polled per move; null = never
};
BaselineResult run_sa_bstar(const floorplan::Instance& inst,
                            const BStarSAParams& p, std::mt19937_64& rng);

}  // namespace afp::metaheur
