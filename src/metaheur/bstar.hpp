// B*-tree floorplan representation (Chang et al.; used with SA by [15],
// cited in the paper's related work as the other classic topological
// model next to Sequence-Pair).
//
// A B*-tree node is a block; the left child is packed immediately to the
// right of its parent, the right child directly above it at the same x.
// y coordinates come from a horizontal contour.  B*-trees represent
// exactly the admissible *compacted* floorplans, so packings are always
// overlap-free and left/bottom compacted.
#pragma once

#include <algorithm>
#include <random>
#include <vector>

#include "floorplan/instance.hpp"
#include "metaheur/baselines.hpp"

namespace afp::metaheur {

struct BStarTree {
  /// Per-slot child links (block indices; -1 = none) and tree root.
  std::vector<int> left;
  std::vector<int> right;
  std::vector<int> parent;
  int root = 0;
  /// Candidate-shape index per block.
  std::vector<int> shapes;

  int size() const { return static_cast<int>(left.size()); }

  /// Random topology + shapes over `num_blocks` blocks.
  static BStarTree random(int num_blocks, std::mt19937_64& rng);

  /// Structural invariant check (every block reachable exactly once).
  bool valid() const;
};

/// Horizontal contour: max height per x interval.  Linear-scan segment
/// list — exact and ample for tens of blocks.  Copyable on purpose: the
/// incremental evaluator (metaheur/eval_cache) snapshots the contour at
/// checkpoints and replays only the DFS suffix a move invalidated, so the
/// full packer and the delta packer must share one implementation to stay
/// bitwise identical.
class Contour {
 public:
  /// Max height over [x0, x1).
  double query(double x0, double x1) const {
    double y = 0.0;
    for (const auto& s : segs_) {
      if (s.x1 <= x0 || s.x0 >= x1) continue;
      y = std::max(y, s.y);
    }
    return y;
  }
  /// Raises [x0, x1) to height y.  Edits the sorted segment list in place:
  /// overlapped segments are trimmed to their parts outside [x0, x1) and
  /// the new segment is spliced in at its sorted position, producing
  /// exactly the same segment set as rebuilding and re-sorting from
  /// scratch (segments never overlap, so x0-order is total).
  void update(double x0, double x1, double y) {
    auto lo = std::partition_point(
        segs_.begin(), segs_.end(),
        [&](const Seg& s) { return s.x1 <= x0; });
    auto hi = std::partition_point(
        lo, segs_.end(), [&](const Seg& s) { return s.x0 < x1; });
    scratch_.clear();
    if (lo != hi && lo->x0 < x0) scratch_.push_back({lo->x0, x0, lo->y});
    scratch_.push_back({x0, x1, y});
    if (lo != hi && (hi - 1)->x1 > x1) {
      scratch_.push_back({x1, (hi - 1)->x1, (hi - 1)->y});
    }
    const auto n_old = static_cast<std::size_t>(hi - lo);
    if (n_old >= scratch_.size()) {
      auto out = std::copy(scratch_.begin(), scratch_.end(), lo);
      segs_.erase(out, hi);
    } else {
      std::copy(scratch_.begin(), scratch_.begin() + static_cast<long>(n_old),
                lo);
      segs_.insert(hi, scratch_.begin() + static_cast<long>(n_old),
                   scratch_.end());
    }
  }
  void clear() { segs_.clear(); }

 private:
  struct Seg {
    double x0, x1, y;
  };
  std::vector<Seg> segs_;
  std::vector<Seg> scratch_;  ///< update() staging (at most 3 segments)
};

/// Packs the tree into rectangles using the contour algorithm.
/// `spacing_um` pads every block on all sides (congestion margin).
std::vector<geom::Rect> pack_bstar(const floorplan::Instance& inst,
                                   const BStarTree& tree,
                                   double spacing_um = 0.0);

/// B*-tree local moves for annealing.
enum class BStarMove : int {
  kChangeShape = 0,  ///< re-roll one block's shape
  kSwapBlocks,       ///< swap two blocks' tree positions
  kMoveLeaf,         ///< detach a leaf and reattach at a random free slot
};
constexpr int kNumBStarMoves = 3;

void apply_bstar_move(BStarTree& tree, BStarMove move, std::mt19937_64& rng);

/// Simulated annealing over B*-trees; same cost as the SP baselines.
struct BStarSAParams {
  int iterations = 4000;
  double t_start = 2.0;
  double t_end = 1e-3;
  double spacing_um = -1.0;  ///< < 0 = auto (one grid cell)
  const CancelToken* stop = nullptr;  ///< polled per move; null = never
  TranspositionCache* tt = nullptr;  ///< optional shared memo (job-scoped)
};
BaselineResult run_sa_bstar(const floorplan::Instance& inst,
                            const BStarSAParams& p, std::mt19937_64& rng);

}  // namespace afp::metaheur
