// Parallel tempering (replica exchange) over the floorplan representations.
//
// K simulated-annealing chains run on a temperature ladder
// T_0 <= T_1 <= ... <= T_{K-1} (T_0 coldest) — either classic fixed rungs or
// (default) an annealed ladder where every rung cools geometrically with a
// constant ratio between neighbors.  Chains step independently between
// exchange rounds, then adjacent replicas attempt a state exchange with the
// Metropolis replica-exchange probability
//
//   P(swap i <-> j) = min(1, exp((1/T_i - 1/T_j) * (C_i - C_j))),
//
// which lets hot chains tunnel out of local minima and feed improved states
// down the ladder.  A budget skew assigns the cold chain the lion's share of
// the move budget so the ensemble stays competitive with one long SA chain
// at an EQUAL total number of cost evaluations.  Both the SequencePair and
// the B*-tree encodings are supported; cost is the shared sp_cost metric, as
// for every other baseline.
//
// Reproducibility contract (same as metaheur/parallel_search): replica k
// draws only from replica_rng(seed, k), a SplitMix64-derived stream, and the
// chains step concurrently on the shared numeric thread pool with one replica
// per chunk.  Swap rounds are serial and deterministic: round r attempts the
// even pairs (0,1),(2,3),... when r is even and the odd pairs (1,2),(3,4),...
// when r is odd, drawing acceptance uniforms from a dedicated swap stream in
// pair order.  Results are therefore bitwise identical for any
// AFP_NUM_THREADS, including 1, and for repeated runs with the same seed.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

#include "metaheur/parallel_search.hpp"

namespace afp::metaheur {

/// Chain encoding the replicas anneal over.
enum class Representation : int { kSequencePair = 0, kBStarTree = 1 };

const char* to_string(Representation rep);

/// Defaults were tuned at an equal TOTAL move budget against the
/// single-chain SA baseline over the Table I circuits (see bench_search):
/// a small skewed ladder whose cold chain starts below SA's t_start wins
/// because the hot rungs take over the exploration phase the cold chain
/// no longer pays for.
struct PTParams {
  int replicas = 3;        ///< ladder size K (>= 2)
  int iterations = 1333;   ///< mean moves per replica (total = K * this)
  /// Annealed ladder (default): every chain cools geometrically from
  /// m_k * t_start to m_k * t_end over its own budget, with multipliers m_k
  /// geometric in [1, hot_factor] — so the coldest replica runs a plain SA
  /// schedule while the hot chains explore, and the ladder's temperature
  /// ratios (hence swap rates) stay constant as it cools.  With
  /// anneal = false the chains sit at the classic fixed rungs, geometric
  /// in [t_cold, t_hot].
  bool anneal = true;
  double t_start = 0.5;      ///< annealed mode: coldest chain's start temp
  double t_end = 1e-3;       ///< annealed mode: coldest chain's final temp
  double hot_factor = 8.0;   ///< annealed mode: hottest/coldest multiplier
  double t_cold = 1e-3;      ///< fixed mode: coldest rung T_0
  double t_hot = -1.0;       ///< fixed mode: hottest rung; < 0 = auto from
                             ///< the initial cost spread
  /// Budget skew between rungs: replica k receives a share of the total
  /// move budget proportional to budget_skew^-k, so with skew > 1 the cold
  /// chain keeps most of the moves (approaching a single long SA chain)
  /// while the short hot chains feed it diversity through exchanges.
  /// 1.0 = classic equal-length chains.  The TOTAL budget is always
  /// replicas * iterations, redistributed exactly.
  double budget_skew = 3.0;
  int swap_interval = 8;   ///< cold-chain moves between exchange rounds (>= 1)
  /// Adapts swap_interval to the observed exchange acceptance every
  /// kAdaptWindow rounds: halves it (floor 1) when neighbors exchange
  /// eagerly, doubles it (cap 4x the initial value) when exchanges stall so
  /// chains get more decorrelation time per attempt.  The adaptation reads
  /// only deterministic history, so the reproducibility contract holds.
  bool adaptive_swap = false;
  Representation representation = Representation::kSequencePair;
  double spacing_um = -1.0;  ///< < 0 = auto (one grid cell), as the baselines
  /// Polled by every chain per move (and between exchange rounds); a
  /// stopped ensemble returns the best state visited so far.
  const CancelToken* stop = nullptr;
  /// Optional job-scoped transposition cache shared by all replicas (and, in
  /// a multi-start, by all restarts).  Memoized costs are pure functions of
  /// the key, so sharing preserves the bitwise thread-invariance contract.
  TranspositionCache* tt = nullptr;
};

/// Rounds between adaptive swap-interval updates.
constexpr int kAdaptWindow = 4;

/// Geometric temperature ladder t_cold * (t_hot/t_cold)^(k/(K-1)), k=0..K-1.
/// Strictly increasing for t_hot > t_cold > 0.
std::vector<double> geometric_ladder(double t_cold, double t_hot, int replicas);

/// Replica-exchange acceptance probability min(1, exp((1/ti - 1/tj)(ci - cj))).
double pt_swap_probability(double cost_i, double cost_j, double t_i,
                           double t_j);

/// Auto-tuned hottest rung: the spread (max - min, floored at 1.0) of the
/// replicas' initial costs, so the top chain accepts most uphill moves of the
/// magnitude the landscape actually exhibits.
double auto_hot_temperature(const std::vector<double>& initial_costs);

/// Independent RNG stream for replica `replica` of `base_seed`.  Distinct
/// mixing domain from restart_rng so PT-inside-multistart never aliases a
/// restart stream.  replica -1 is the swap-acceptance stream.
std::mt19937_64 replica_rng(std::uint64_t base_seed, int replica);

/// Runs parallel tempering and returns the best state ever visited by any
/// replica (ties to the lower replica slot).  Draws one u64 from `rng` as the
/// base seed for the replica streams, so identically-seeded callers are
/// reproducible.  method: "PT" / "PT-B*".
BaselineResult run_pt(const floorplan::Instance& inst, const PTParams& p,
                      std::mt19937_64& rng);

/// Best of `opt.restarts` independent tempering runs on the pool.
BaselineResult run_pt_multi(const floorplan::Instance& inst, const PTParams& p,
                            const MultiStartOptions& opt);

}  // namespace afp::metaheur
