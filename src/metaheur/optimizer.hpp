// Polymorphic optimizer interface + string-keyed factory registry.
//
// Every search family (SA, GA, PSO, RL-SA, RL-SP, SA over B*-trees, parallel
// tempering over both encodings) is exposed behind one virtual surface:
//
//   auto opt = metaheur::make_optimizer("pt", {{"replicas", "4"}});
//   SearchResult r = opt->run(instance, /*budget=*/{}, rng);
//
// so the solver choice is *data* (a registry key plus a key=value option
// map), not a cross-cutting enum edit.  Adding a search means registering a
// factory — the pipeline, the CLI, the benches and the JobService all pick
// it up without modification.
//
// Parity contract: a registry optimizer constructed from its name and
// defaults calls the exact legacy run_* entry point with the exact legacy
// parameter struct, so results are bitwise identical to the pre-registry
// `core::Method` enum path for every method, thread count and seed.
#pragma once

#include <climits>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "metaheur/baselines.hpp"
#include "metaheur/bstar.hpp"
#include "metaheur/stop.hpp"
#include "metaheur/tempering.hpp"

namespace afp::metaheur {

/// Key=value option map; values are parsed per option (int/double/bool).
using Options = std::map<std::string, std::string>;

/// Result of one optimizer run (the historical baseline record).
using SearchResult = BaselineResult;

/// Budget overrides shared by every optimizer.  Zero fields mean "use the
/// configured options".  `iterations` overrides the optimizer's *primary*
/// budget knob (SA/RL-SA/SA-B*: moves, GA: generations, PSO: sweeps, RL-SP:
/// episodes, PT: per-replica moves).  `wall_clock_s` is not consumed by the
/// optimizer itself: callers (core::FloorplanPipeline / core::JobService)
/// implement it as a deterministic race of fixed-size iteration quanta, so a
/// run is reproducible given the number of quanta that fit the clock.
struct SearchBudget {
  int iterations = 0;
  double wall_clock_s = 0.0;
  /// Hard per-job watchdog deadline in seconds (0 = none).  Not consumed
  /// here either: core::JobService arms the job's CancelToken with it and
  /// core::FloorplanPipeline converts an overrun into deadline_exceeded at
  /// quantum granularity.
  double deadline_s = 0.0;
  /// Quantum-mode cap: with quanta > 0 the pipeline runs exactly this many
  /// quanta (racing the clock too when wall_clock_s > 0).  quanta > 0 with
  /// wall_clock_s == 0 is the fully deterministic quantum mode used by
  /// checkpoint-resume and the fault soak.
  int quanta = 0;
  /// Cooperative stop flag polled by the optimizer inner loops (per
  /// iteration/generation/sweep/episode/replica-move); a stopped run breaks
  /// early and returns its best-so-far.  Null = never stops (the legacy
  /// paths, bitwise unchanged).
  const CancelToken* stop = nullptr;
  /// Optional job-scoped transposition cache (metaheur/eval_cache) threaded
  /// through to the single-chain optimizers so restarts, quanta and PT
  /// replicas of one job share memoized costs.  Null = no memoization.
  TranspositionCache* tt = nullptr;
};

/// Strict full-string numeric parsing (errno + end-pointer checks; doubles
/// must be finite; uints reject a leading '-').  Shared by the option
/// binder and the CLI so the two exit-2 validation surfaces cannot drift.
bool parse_strict_int(const std::string& s, long long* out);
bool parse_strict_uint(const std::string& s, std::uint64_t* out);
bool parse_strict_double(const std::string& s, double* out);

/// One tunable option of an optimizer: key, current value (stringified) and
/// a one-line help text.  Returned by Optimizer::describe for `afp
/// list-baselines` and the JSON config emission.
struct OptionSpec {
  std::string key;
  std::string value;
  std::string help;
};

/// Binds string option keys to typed fields of a parameter struct; used by
/// every optimizer to implement configure()/options()/describe() from one
/// bind() enumeration.  apply() throws std::invalid_argument on an unknown
/// key or an unparsable value.
class OptionBinder {
 public:
  /// `min_value` lets an optimizer reject out-of-range ints at configure
  /// time (exit-2 usage territory) instead of deep inside run().
  void bind(const std::string& key, int* v, const std::string& help,
            int min_value = INT_MIN);
  void bind(const std::string& key, double* v, const std::string& help);
  void bind(const std::string& key, bool* v, const std::string& help);

  void apply(const Options& opts, const std::string& owner) const;
  std::vector<OptionSpec> specs() const;

 private:
  enum class Kind { kInt, kDouble, kBool };
  struct Entry {
    std::string key;
    Kind kind;
    void* ptr;
    std::string help;
    int min_value;
  };
  std::vector<Entry> entries_;
};

/// A floorplan search algorithm with a uniform run surface.  Implementations
/// are cheap value-like objects: construct (from the registry), configure
/// from an option map, run any number of times.  run() is const and
/// thread-compatible — concurrent runs on one instance are safe because all
/// mutable state lives in locals and the caller-provided rng.
class Optimizer {
 public:
  virtual ~Optimizer() = default;

  /// Registry key ("sa", "pt-bstar", ...).
  virtual const char* name() const = 0;
  /// Candidate encoding the search operates on ("sequence-pair"/"b*-tree").
  virtual const char* encoding() const = 0;

  /// Applies a key=value option map; throws std::invalid_argument on an
  /// unknown key or a malformed value (the message names both).
  void configure(const Options& opts);
  /// Current configuration as a key=value map (defaults unless configured).
  Options options();
  /// Current configuration with help text, for list-baselines.
  std::vector<OptionSpec> describe();

  /// Runs the search on `inst`.  Budget overrides apply on top of the
  /// configured options; the passed rng is the single entropy source.
  virtual SearchResult run(const floorplan::Instance& inst,
                           const SearchBudget& budget,
                           std::mt19937_64& rng) const = 0;

 protected:
  /// Enumerates the tunable options over the implementation's param struct.
  virtual void bind(OptionBinder& b) = 0;
};

using OptimizerFactory = std::unique_ptr<Optimizer> (*)();

/// Global name -> factory registry.  The built-in optimizers (sa, ga, pso,
/// rlsa, rlsp, sab, pt, pt-bstar) are registered on first access; user code
/// can add() more at startup.
class OptimizerRegistry {
 public:
  static OptimizerRegistry& global();

  /// Registers a factory; throws std::invalid_argument on a duplicate name.
  void add(const std::string& name, OptimizerFactory factory);
  bool contains(const std::string& name) const;
  /// Sorted list of registered names.
  std::vector<std::string> names() const;
  /// Creates and configures an optimizer; throws std::invalid_argument on an
  /// unknown name (the message lists the registered names).
  std::unique_ptr<Optimizer> create(const std::string& name,
                                    const Options& opts = {}) const;

 private:
  OptimizerRegistry();
  std::map<std::string, OptimizerFactory> factories_;
};

/// Convenience: OptimizerRegistry::global().create(name, opts).
std::unique_ptr<Optimizer> make_optimizer(const std::string& name,
                                          const Options& opts = {});

/// Convenience: sorted registered names.
std::vector<std::string> optimizer_names();

}  // namespace afp::metaheur
