#include "metaheur/bstar.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <numeric>
#include <stack>

#include "metaheur/eval_cache.hpp"

namespace afp::metaheur {

BStarTree BStarTree::random(int num_blocks, std::mt19937_64& rng) {
  BStarTree t;
  t.left.assign(static_cast<std::size_t>(num_blocks), -1);
  t.right.assign(static_cast<std::size_t>(num_blocks), -1);
  t.parent.assign(static_cast<std::size_t>(num_blocks), -1);
  std::uniform_int_distribution<int> shape(0, floorplan::kNumShapes - 1);
  t.shapes.resize(static_cast<std::size_t>(num_blocks));
  for (int& s : t.shapes) s = shape(rng);

  std::vector<int> order(static_cast<std::size_t>(num_blocks));
  std::iota(order.begin(), order.end(), 0);
  std::shuffle(order.begin(), order.end(), rng);
  t.root = order[0];
  std::vector<int> in_tree{t.root};
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  for (std::size_t k = 1; k < order.size(); ++k) {
    const int b = order[k];
    // Pick a random node with a free slot.
    while (true) {
      std::uniform_int_distribution<int> pick(
          0, static_cast<int>(in_tree.size()) - 1);
      const int host = in_tree[static_cast<std::size_t>(pick(rng))];
      const bool lfree = t.left[static_cast<std::size_t>(host)] < 0;
      const bool rfree = t.right[static_cast<std::size_t>(host)] < 0;
      if (!lfree && !rfree) continue;
      const bool use_left = lfree && (!rfree || coin(rng) < 0.5);
      (use_left ? t.left : t.right)[static_cast<std::size_t>(host)] = b;
      t.parent[static_cast<std::size_t>(b)] = host;
      break;
    }
    in_tree.push_back(b);
  }
  return t;
}

bool BStarTree::valid() const {
  const int n = size();
  if (n == 0) return true;
  if (root < 0 || root >= n || parent[static_cast<std::size_t>(root)] != -1) {
    return false;
  }
  std::vector<bool> seen(static_cast<std::size_t>(n), false);
  std::stack<int> st;
  st.push(root);
  int count = 0;
  while (!st.empty()) {
    const int b = st.top();
    st.pop();
    if (b < 0 || b >= n || seen[static_cast<std::size_t>(b)]) return false;
    seen[static_cast<std::size_t>(b)] = true;
    ++count;
    for (int c : {left[static_cast<std::size_t>(b)],
                  right[static_cast<std::size_t>(b)]}) {
      if (c >= 0) {
        if (parent[static_cast<std::size_t>(c)] != b) return false;
        st.push(c);
      }
    }
  }
  return count == n;
}

std::vector<geom::Rect> pack_bstar(const floorplan::Instance& inst,
                                   const BStarTree& tree, double spacing_um) {
  const int n = tree.size();
  std::vector<geom::Rect> rects(static_cast<std::size_t>(n));
  std::vector<double> w(static_cast<std::size_t>(n)), h(static_cast<std::size_t>(n));
  for (int b = 0; b < n; ++b) {
    const auto& sh = inst.blocks[static_cast<std::size_t>(b)]
                         .shapes[static_cast<std::size_t>(
                             tree.shapes[static_cast<std::size_t>(b)])];
    w[static_cast<std::size_t>(b)] = sh.w + 2.0 * spacing_um;
    h[static_cast<std::size_t>(b)] = sh.h + 2.0 * spacing_um;
  }
  Contour contour;
  // Preorder DFS; children carry their packed x position.
  std::stack<std::pair<int, double>> st;
  st.emplace(tree.root, 0.0);
  while (!st.empty()) {
    const auto [b, x] = st.top();
    st.pop();
    const double y = contour.query(x, x + w[static_cast<std::size_t>(b)]);
    contour.update(x, x + w[static_cast<std::size_t>(b)],
                   y + h[static_cast<std::size_t>(b)]);
    const auto& sh = inst.blocks[static_cast<std::size_t>(b)]
                         .shapes[static_cast<std::size_t>(
                             tree.shapes[static_cast<std::size_t>(b)])];
    rects[static_cast<std::size_t>(b)] = {x + spacing_um, y + spacing_um,
                                          sh.w, sh.h};
    const int l = tree.left[static_cast<std::size_t>(b)];
    const int r = tree.right[static_cast<std::size_t>(b)];
    // Right child keeps x (stacks above); left child starts at x + w.
    if (r >= 0) st.emplace(r, x);
    if (l >= 0) st.emplace(l, x + w[static_cast<std::size_t>(b)]);
  }
  return rects;
}

void apply_bstar_move(BStarTree& tree, BStarMove move, std::mt19937_64& rng) {
  const int n = tree.size();
  if (n < 2) return;
  std::uniform_int_distribution<int> pick(0, n - 1);
  switch (move) {
    case BStarMove::kChangeShape: {
      // Exclude the current shape so the move always changes the tree.
      const int b = pick(rng);
      std::uniform_int_distribution<int> shape(0, floorplan::kNumShapes - 2);
      int s = shape(rng);
      if (s >= tree.shapes[static_cast<std::size_t>(b)]) ++s;
      tree.shapes[static_cast<std::size_t>(b)] = s;
      return;
    }
    case BStarMove::kSwapBlocks: {
      const int a = pick(rng);
      int b = pick(rng);
      while (b == a) b = pick(rng);
      auto relabel = [a, b](int x) { return x == a ? b : (x == b ? a : x); };
      BStarTree next = tree;
      auto link = [&](int x) { return x < 0 ? -1 : relabel(x); };
      for (int i = 0; i < n; ++i) {
        const int src = relabel(i);  // block i takes block src's slot
        next.left[static_cast<std::size_t>(i)] =
            link(tree.left[static_cast<std::size_t>(src)]);
        next.right[static_cast<std::size_t>(i)] =
            link(tree.right[static_cast<std::size_t>(src)]);
        next.parent[static_cast<std::size_t>(i)] =
            link(tree.parent[static_cast<std::size_t>(src)]);
      }
      next.root = relabel(tree.root);
      // Shapes travel with the block, not the slot.
      tree.left = std::move(next.left);
      tree.right = std::move(next.right);
      tree.parent = std::move(next.parent);
      tree.root = next.root;
      return;
    }
    case BStarMove::kMoveLeaf: {
      std::vector<int> leaves;
      for (int b = 0; b < n; ++b) {
        if (b != tree.root && tree.left[static_cast<std::size_t>(b)] < 0 &&
            tree.right[static_cast<std::size_t>(b)] < 0) {
          leaves.push_back(b);
        }
      }
      if (leaves.empty()) return;
      std::uniform_int_distribution<int> lp(
          0, static_cast<int>(leaves.size()) - 1);
      const int leaf = leaves[static_cast<std::size_t>(lp(rng))];
      // Detach, remembering the slot so reattachment cannot recreate the
      // identical tree (detaching frees that slot, so at least one other
      // free slot always exists for n >= 2).
      const int par = tree.parent[static_cast<std::size_t>(leaf)];
      const bool was_left = tree.left[static_cast<std::size_t>(par)] == leaf;
      if (was_left) {
        tree.left[static_cast<std::size_t>(par)] = -1;
      } else {
        tree.right[static_cast<std::size_t>(par)] = -1;
      }
      tree.parent[static_cast<std::size_t>(leaf)] = -1;
      // Reattach at a random free slot other than the original.
      std::uniform_real_distribution<double> coin(0.0, 1.0);
      while (true) {
        const int host = pick(rng);
        if (host == leaf) continue;
        const bool lfree = tree.left[static_cast<std::size_t>(host)] < 0;
        const bool rfree = tree.right[static_cast<std::size_t>(host)] < 0;
        if (!lfree && !rfree) continue;
        const bool use_left = lfree && (!rfree || coin(rng) < 0.5);
        if (host == par && use_left == was_left) continue;
        (use_left ? tree.left
                  : tree.right)[static_cast<std::size_t>(host)] = leaf;
        tree.parent[static_cast<std::size_t>(leaf)] = host;
        return;
      }
    }
  }
}

BaselineResult run_sa_bstar(const floorplan::Instance& inst,
                            const BStarSAParams& p, std::mt19937_64& rng) {
  const auto t0 = std::chrono::steady_clock::now();
  const double spacing = resolve_spacing(inst, p.spacing_um);
  BStarEvaluator ev(inst, spacing, p.tt);
  BStarTree cur = BStarTree::random(inst.num_blocks(), rng);
  double cur_cost = ev.cost(cur);
  BStarTree best = cur;
  double best_cost = cur_cost;
  long evals = 1;

  const double decay =
      std::pow(p.t_end / p.t_start, 1.0 / std::max(1, p.iterations - 1));
  double temp = p.t_start;
  std::uniform_real_distribution<double> unif(0.0, 1.0);
  std::uniform_int_distribution<int> mv(0, kNumBStarMoves - 1);
  StopPoll stopped(p.stop);
  for (int it = 0; it < p.iterations; ++it, temp *= decay) {
    if (stopped()) break;
    BStarTree cand = cur;
    apply_bstar_move(cand, static_cast<BStarMove>(mv(rng)), rng);
    const double cost = ev.cost(cand);
    ++evals;
    if (cost < cur_cost || unif(rng) < std::exp((cur_cost - cost) / temp)) {
      cur = std::move(cand);
      cur_cost = cost;
      if (cur_cost < best_cost) {
        best = cur;
        best_cost = cur_cost;
      }
    }
  }
  BaselineResult r;
  r.method = "SA-B*[15]";
  r.rects = pack_bstar(inst, best, spacing);
  r.eval = floorplan::evaluate_floorplan(inst, r.rects);
  r.runtime_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  r.evaluations = evals;
  return r;
}

}  // namespace afp::metaheur
