// Metaheuristic floorplanning baselines: simulated annealing, genetic
// algorithm, particle-swarm optimization, and reimplementations of the two
// sequence-pair RL agents of Basso et al., SMACD 2024 [13] (RL-SA and pure
// RL).  All operate on the SequencePair encoding and are scored by the
// shared sp_cost / evaluate_floorplan metric code.
#pragma once

#include <chrono>
#include <random>
#include <string>

#include "metaheur/sequence_pair.hpp"
#include "metaheur/stop.hpp"

namespace afp::metaheur {

class TranspositionCache;  // metaheur/eval_cache.hpp

/// Result record common to all baselines.
struct BaselineResult {
  std::string method;
  std::vector<geom::Rect> rects;
  floorplan::Evaluation eval;
  double runtime_s = 0.0;
  long evaluations = 0;  ///< packed-and-scored candidate count
};

struct SAParams {
  int iterations = 4000;
  double t_start = 2.0;
  double t_end = 1e-3;
  double spacing_um = -1.0;  ///< congestion margin; < 0 = auto (one grid cell)
  const CancelToken* stop = nullptr;  ///< polled per move; null = never
  TranspositionCache* tt = nullptr;  ///< optional shared memo (job-scoped)
};

struct GAParams {
  int population = 24;
  int generations = 60;
  double crossover_rate = 0.9;
  double mutation_rate = 0.3;
  int tournament = 3;
  double spacing_um = -1.0;  ///< < 0 = auto (one grid cell)
  const CancelToken* stop = nullptr;  ///< polled per generation
};

struct PSOParams {
  int particles = 20;
  int iterations = 80;
  double inertia = 0.72;
  double c1 = 1.5;  ///< cognitive coefficient
  double c2 = 1.5;  ///< social coefficient
  double spacing_um = -1.0;  ///< < 0 = auto (one grid cell)
  const CancelToken* stop = nullptr;  ///< polled per sweep
};

struct RLSAParams {
  int iterations = 4000;
  double t_start = 2.0;
  double t_end = 1e-3;
  double learning_rate = 0.1;
  double spacing_um = -1.0;  ///< < 0 = auto (one grid cell)
  const CancelToken* stop = nullptr;  ///< polled per move
  TranspositionCache* tt = nullptr;  ///< optional shared memo (job-scoped)
};

struct RLSPParams {
  int episodes = 160;
  int steps_per_episode = 60;
  double learning_rate = 0.05;
  double spacing_um = -1.0;  ///< < 0 = auto (one grid cell)
  const CancelToken* stop = nullptr;  ///< polled per episode
  TranspositionCache* tt = nullptr;  ///< optional shared memo (job-scoped)
};

/// Resolves a congestion-aware spacing parameter: negative means "auto",
/// one grid cell of the 32x32 placement canvas — the same routing allowance
/// the RL method's quantization reserves (Section V-B fairness note).
/// Shared by every representation so equal-budget comparisons stay fair.
double resolve_spacing(const floorplan::Instance& inst, double spacing_um);

BaselineResult run_sa(const floorplan::Instance& inst, const SAParams& p,
                      std::mt19937_64& rng);
BaselineResult run_ga(const floorplan::Instance& inst, const GAParams& p,
                      std::mt19937_64& rng);
BaselineResult run_pso(const floorplan::Instance& inst, const PSOParams& p,
                       std::mt19937_64& rng);
/// RL-SA of [13]: annealing whose move-type selection is a softmax policy
/// updated online by REINFORCE on the acceptance improvement.
BaselineResult run_rlsa(const floorplan::Instance& inst, const RLSAParams& p,
                        std::mt19937_64& rng);
/// Pure RL of [13]: episodic policy-gradient over sequence-pair moves.
BaselineResult run_rlsp(const floorplan::Instance& inst, const RLSPParams& p,
                        std::mt19937_64& rng);

/// HPWLmin estimate (Section IV-D4): best HPWL found by a short SA that
/// optimizes wirelength only.
double estimate_hpwl_min(const floorplan::Instance& inst,
                         std::mt19937_64& rng, int iterations = 2000);

}  // namespace afp::metaheur
