#include "metaheur/eval_cache.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <string>

#include "metaheur/parallel_search.hpp"

namespace afp::metaheur {

namespace {

constexpr std::size_t z(int v) { return static_cast<std::size_t>(v); }

EvalMode parse_eval_mode(const char* s) {
  const std::string v = s == nullptr ? "" : s;
  if (v.empty() || v == "delta") return EvalMode::kDelta;
  if (v == "full") return EvalMode::kFull;
  if (v == "check") return EvalMode::kCheck;
  std::fprintf(stderr, "afp: unknown AFP_EVAL=%s, using delta\n", v.c_str());
  return EvalMode::kDelta;
}

// -1 = uninitialized; lazily reads AFP_EVAL on first use (simd_parity
// pattern: an env probe plus a test override through the same atomic).
std::atomic<int> g_eval_mode{-1};

std::uint64_t bits_of(double d) {
  std::uint64_t u = 0;
  std::memcpy(&u, &d, sizeof(u));
  return u;
}

bool same_bits(double a, double b) { return bits_of(a) == bits_of(b); }

bool same_rect(const geom::Rect& a, const geom::Rect& b) {
  return same_bits(a.x, b.x) && same_bits(a.y, b.y) && same_bits(a.w, b.w) &&
         same_bits(a.h, b.h);
}

[[noreturn]] void parity_failure(const char* what, double full, double delta) {
  throw std::logic_error(std::string("eval_cache parity violation (") + what +
                         "): full=" + std::to_string(full) +
                         " delta=" + std::to_string(delta));
}

void check_parity(const char* tag, double full_cost, double delta_cost,
                  const std::vector<geom::Rect>& full_rects,
                  const std::vector<geom::Rect>& delta_rects) {
  if (!same_bits(full_cost, delta_cost)) {
    parity_failure(tag, full_cost, delta_cost);
  }
  if (full_rects.size() != delta_rects.size()) {
    throw std::logic_error(std::string("eval_cache parity violation (") + tag +
                           "): rect count mismatch");
  }
  for (std::size_t b = 0; b < full_rects.size(); ++b) {
    if (!same_rect(full_rects[b], delta_rects[b])) {
      throw std::logic_error(std::string("eval_cache parity violation (") +
                             tag + "): rect mismatch at block " +
                             std::to_string(b));
    }
  }
}

}  // namespace

EvalMode eval_mode() {
  int m = g_eval_mode.load(std::memory_order_acquire);
  if (m < 0) {
    m = static_cast<int>(parse_eval_mode(std::getenv("AFP_EVAL")));
    int expected = -1;
    if (!g_eval_mode.compare_exchange_strong(expected, m,
                                             std::memory_order_acq_rel)) {
      m = expected;  // another thread initialized first; use its value
    }
  }
  return static_cast<EvalMode>(m);
}

void set_eval_mode(EvalMode mode) {
  g_eval_mode.store(static_cast<int>(mode), std::memory_order_release);
}

const char* to_string(EvalMode mode) {
  switch (mode) {
    case EvalMode::kFull:
      return "full";
    case EvalMode::kDelta:
      return "delta";
    case EvalMode::kCheck:
      return "check";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// TranspositionCache

TranspositionCache::TranspositionCache(long capacity) {
  if (capacity < 0) capacity = default_capacity();
  per_stripe_cap_ =
      capacity == 0
          ? 0
          : std::max<std::size_t>(1, static_cast<std::size_t>(capacity) /
                                         static_cast<std::size_t>(kStripes));
}

long TranspositionCache::default_capacity() {
  if (const char* s = std::getenv("AFP_TT_CAP")) {
    char* end = nullptr;
    const long v = std::strtol(s, &end, 10);
    if (end != s && v >= 0) return v;
    std::fprintf(stderr, "afp: ignoring malformed AFP_TT_CAP=%s\n", s);
  }
  return 1L << 18;
}

bool TranspositionCache::lookup(const Key& k, double* cost) const {
  if (per_stripe_cap_ == 0) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  const Stripe& s = stripes_[k.h1 % static_cast<std::uint64_t>(kStripes)];
  std::lock_guard<std::mutex> lock(s.mu);
  const auto it = s.map.find(k.h1);
  if (it != s.map.end() && it->second.first == k.h2) {
    *cost = it->second.second;
    hits_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  return false;
}

void TranspositionCache::insert(const Key& k, double cost) {
  if (per_stripe_cap_ == 0) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  Stripe& s = stripes_[k.h1 % static_cast<std::uint64_t>(kStripes)];
  std::lock_guard<std::mutex> lock(s.mu);
  const auto it = s.map.find(k.h1);
  if (it != s.map.end()) {
    it->second = {k.h2, cost};  // refresh (h1 collision overwrite is a wash)
    return;
  }
  if (s.map.size() >= per_stripe_cap_) {  // full stripe: drop, no evict
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  s.map.emplace(k.h1, std::make_pair(k.h2, cost));
}

long TranspositionCache::size() const {
  long total = 0;
  for (const Stripe& s : stripes_) {
    std::lock_guard<std::mutex> lock(s.mu);
    total += static_cast<long>(s.map.size());
  }
  return total;
}

namespace {

// Two independent SplitMix64 absorption chains; per-field salts separate the
// encoding arrays so e.g. swapping s1 and s2 cannot produce the same key.
struct DualHash {
  std::uint64_t h1, h2;
  explicit DualHash(std::uint64_t tag)
      : h1(splitmix64(0x9e3779b97f4a7c15ull ^ tag)),
        h2(splitmix64(0x94d049bb133111ebull ^ tag)) {}
  void absorb(std::uint64_t salt, const std::vector<int>& v) {
    h1 = splitmix64(h1 ^ salt);
    h2 = splitmix64(h2 ^ (salt * 0xbf58476d1ce4e5b9ull));
    for (int e : v) {
      const auto u = static_cast<std::uint64_t>(static_cast<std::int64_t>(e));
      h1 = splitmix64(h1 ^ u);
      h2 = splitmix64(h2 ^ (u + 0xd6e8feb86659fd93ull));
    }
  }
  void absorb_one(std::uint64_t v) {
    h1 = splitmix64(h1 ^ v);
    h2 = splitmix64(h2 ^ (v + 0xd6e8feb86659fd93ull));
  }
};

}  // namespace

TranspositionCache::Key TranspositionCache::hash(const SequencePair& sp) {
  DualHash d(1);
  d.absorb(2, sp.s1);
  d.absorb(3, sp.s2);
  d.absorb(4, sp.shapes);
  return {d.h1, d.h2};
}

TranspositionCache::Key TranspositionCache::hash(const BStarTree& tree) {
  DualHash d(5);
  d.absorb(6, tree.left);
  d.absorb(7, tree.right);
  d.absorb(8, tree.shapes);
  d.absorb_one(static_cast<std::uint64_t>(tree.root));
  return {d.h1, d.h2};
}

// ---------------------------------------------------------------------------
// RectScorer

namespace detail {

void RectScorer::bind(const floorplan::Instance& inst) {
  inst_ = &inst;
  total_area_ = inst.total_block_area();
  hpwl_.reset(inst);
}

double RectScorer::cost(const std::vector<geom::Rect>& rects,
                        const std::vector<int>& moved, bool full) {
  // Mirrors sp_cost(evaluate_floorplan(inst, rects)) term by term.  On the
  // satisfied branch sp_cost returns -(-r) == r bitwise (IEEE negation is a
  // sign-bit flip); on the violated branch it re-evaluates a copied instance
  // with constraints stripped, whose reward terms are identical to ours, and
  // adds the soft penalty.  Using the cached total area and the incremental
  // HPWL keeps every contributing double bit-identical to the legacy path.
  const floorplan::RewardWeights w;
  const geom::Rect bb = geom::bounding_box(rects);
  const double area = bb.area();
  // When most blocks moved, nearly every net is dirty and the per-net flag
  // bookkeeping of update() costs more than rescanning everything; both
  // paths run the same per-net min/max chain, so the sum is bit-identical.
  const bool rescan_all = full || 2 * moved.size() >= rects.size();
  const double hpwl =
      rescan_all ? hpwl_.recompute(rects) : hpwl_.update(rects, moved);
  int total = 0;
  const int violated = floorplan::constraint_violations(*inst_, rects, 1e-6,
                                                        &total);
  double r = w.alpha * (area / std::max(1e-12, total_area_) - 1.0) +
             w.beta * (hpwl / inst_->hpwl_ref - 1.0);
  if (inst_->target_aspect) {
    const double d = *inst_->target_aspect - geom::aspect_ratio(bb);
    r += w.gamma * d * d;
  }
  return r + floorplan::constraint_penalty(violated, total);
}

}  // namespace detail

// ---------------------------------------------------------------------------
// SpEvaluator

SpEvaluator::SpEvaluator(const floorplan::Instance& inst, double spacing,
                         TranspositionCache* tt)
    : inst_(inst), spacing_(spacing), tt_(tt) {
  scorer_.bind(inst);
}

double SpEvaluator::cost(const SequencePair& sp) {
  const EvalMode mode = eval_mode();
  if (mode == EvalMode::kFull) {
    // Pure legacy path: no memoization, no incremental state — the honest
    // baseline the bench compares against.
    return sp_cost(inst_, pack(inst_, sp, spacing_));
  }
  if (mode == EvalMode::kDelta) {
    if (tt_ != nullptr) {
      const TranspositionCache::Key key = TranspositionCache::hash(sp);
      double c = 0.0;
      if (tt_->lookup(key, &c)) return c;
      c = eval_delta(sp);
      tt_->insert(key, c);
      return c;
    }
    return eval_delta(sp);
  }
  // Check mode: run the oracle and the delta path on every evaluation.
  const auto full_rects = pack(inst_, sp, spacing_);
  const double full_cost = sp_cost(inst_, full_rects);
  double tt_cost = 0.0;
  bool tt_hit = false;
  TranspositionCache::Key key{};
  if (tt_ != nullptr) {
    key = TranspositionCache::hash(sp);
    tt_hit = tt_->lookup(key, &tt_cost);
  }
  const double delta_cost = eval_delta(sp);
  check_parity("sequence-pair", full_cost, delta_cost, full_rects, rects_);
  if (tt_hit) {
    if (!same_bits(tt_cost, full_cost)) {
      parity_failure("sequence-pair tt", full_cost, tt_cost);
    }
  } else if (tt_ != nullptr) {
    tt_->insert(key, full_cost);
  }
  return full_cost;
}

double SpEvaluator::eval_delta(const SequencePair& sp) {
  repack(sp);
  return scorer_.cost(rects_, moved_, full_rescan_);
}

void SpEvaluator::pack_full(const SequencePair& sp) {
  const int n = sp.size();
  const bool first = !has_state_ || static_cast<int>(rects_.size()) != n;
  pos1_.resize(z(n));
  pos2_.resize(z(n));
  npos1_.resize(z(n));
  npos2_.resize(z(n));
  changed_.assign(z(n), 0);
  w_.resize(z(n));
  h_.resize(z(n));
  x_.assign(z(n), 0.0);
  y_.assign(z(n), 0.0);
  if (first) rects_.assign(z(n), {});
  for (int i = 0; i < n; ++i) {
    pos1_[z(sp.s1[z(i)])] = i;
    pos2_[z(sp.s2[z(i)])] = i;
  }
  for (int b = 0; b < n; ++b) {
    const auto& sh = inst_.blocks[z(b)].shapes[z(sp.shapes[z(b)])];
    w_[z(b)] = sh.w + 2.0 * spacing_;
    h_[z(b)] = sh.h + 2.0 * spacing_;
  }
  // Exact loops of pack(): x in s1 order, y in s2 order.
  for (int i = 0; i < n; ++i) {
    const int b = sp.s1[z(i)];
    double xb = 0.0;
    for (int j = 0; j < i; ++j) {
      const int a = sp.s1[z(j)];
      if (pos2_[z(a)] < pos2_[z(b)]) xb = std::max(xb, x_[z(a)] + w_[z(a)]);
    }
    x_[z(b)] = xb;
  }
  for (int i = 0; i < n; ++i) {
    const int a = sp.s2[z(i)];
    double ya = 0.0;
    for (int j = 0; j < i; ++j) {
      const int b = sp.s2[z(j)];
      if (pos1_[z(a)] < pos1_[z(b)]) ya = std::max(ya, y_[z(b)] + h_[z(b)]);
    }
    y_[z(a)] = ya;
  }
  moved_.clear();
  for (int b = 0; b < n; ++b) {
    const auto& sh = inst_.blocks[z(b)].shapes[z(sp.shapes[z(b)])];
    const geom::Rect r{x_[z(b)] + spacing_, y_[z(b)] + spacing_, sh.w, sh.h};
    if (first || !same_rect(r, rects_[z(b)])) {
      rects_[z(b)] = r;
      moved_.push_back(b);
    }
  }
  full_rescan_ = first;  // with prior state, moved_ is a valid HPWL delta
  cached_ = sp;
  has_state_ = true;
}

void SpEvaluator::repack(const SequencePair& sp) {
  const int n = sp.size();
  if (!has_state_ || cached_.size() != n) {
    pack_full(sp);
    return;
  }
  for (int i = 0; i < n; ++i) {
    npos1_[z(sp.s1[z(i)])] = i;
    npos2_[z(sp.s2[z(i)])] = i;
  }
  // Diff against the cached state to find where the packing can first
  // diverge.  A block whose match positions moved disturbs both axes from
  // the earlier of its old and new positions; a shape change disturbs an
  // axis from just after the block's position (its own coordinate cannot
  // change, only its successors').  Everything left of the first
  // disturbance is frozen: no predecessor set or contribution there can
  // have changed, so those coordinates are provably identical.
  touched_.clear();
  int startx = n;
  int starty = n;
  for (int b = 0; b < n; ++b) {
    if (npos1_[z(b)] != pos1_[z(b)] || npos2_[z(b)] != pos2_[z(b)]) {
      startx = std::min(startx, std::min(pos1_[z(b)], npos1_[z(b)]));
      starty = std::min(starty, std::min(pos2_[z(b)], npos2_[z(b)]));
    }
    if (sp.shapes[z(b)] != cached_.shapes[z(b)]) {
      const auto& sh = inst_.blocks[z(b)].shapes[z(sp.shapes[z(b)])];
      const double nw = sh.w + 2.0 * spacing_;
      const double nh = sh.h + 2.0 * spacing_;
      if (!same_bits(nw, w_[z(b)])) {
        w_[z(b)] = nw;
        startx = std::min(startx, npos1_[z(b)] + 1);
      }
      if (!same_bits(nh, h_[z(b)])) {
        h_[z(b)] = nh;
        starty = std::min(starty, npos2_[z(b)] + 1);
      }
      changed_[z(b)] = 1;
      touched_.push_back(b);
    }
  }

  // Suffix re-relaxation, one Fenwick prefix-max tree per axis.  pack()
  // computes x[b] = max over predecessors a (earlier in both s1 and s2) of
  // x[a] + w[a]; walking s1 in order and inserting each block's
  // contribution keyed by its s2 position makes that exactly a prefix-max
  // query.  std::max over the same set of doubles is bit-exact however it
  // is associated, so every coordinate matches a from-scratch pack bit for
  // bit.  Positions left of the first disturbance skip the query (their
  // coordinates are frozen) but still insert, seeding the tree for the
  // suffix.  No diff-size fallback is needed: a restart-sized diff simply
  // degenerates to the full O(n log n) re-relaxation.
  if (startx < n) {
    fenx_.assign(z(n + 1), 0.0);
    for (int i = 0; i < n; ++i) {
      const int b = sp.s1[z(i)];
      if (i >= startx) {
        double xb = 0.0;
        for (int k = npos2_[z(b)]; k > 0; k -= k & -k) {
          xb = std::max(xb, fenx_[z(k)]);
        }
        if (!same_bits(xb, x_[z(b)])) {
          x_[z(b)] = xb;
          if (changed_[z(b)] == 0) {
            changed_[z(b)] = 1;
            touched_.push_back(b);
          }
        }
      }
      const double contrib = x_[z(b)] + w_[z(b)];
      for (int k = npos2_[z(b)] + 1; k <= n; k += k & -k) {
        fenx_[z(k)] = std::max(fenx_[z(k)], contrib);
      }
    }
  }

  // Symmetric y pass over s2: "b below a" means earlier in s2 and later in
  // s1, so the key order is reversed (n - npos1) to turn the successor
  // test into a prefix-max query.
  if (starty < n) {
    feny_.assign(z(n + 1), 0.0);
    for (int i = 0; i < n; ++i) {
      const int a = sp.s2[z(i)];
      if (i >= starty) {
        double ya = 0.0;
        for (int k = n - npos1_[z(a)] - 1; k > 0; k -= k & -k) {
          ya = std::max(ya, feny_[z(k)]);
        }
        if (!same_bits(ya, y_[z(a)])) {
          y_[z(a)] = ya;
          if (changed_[z(a)] == 0) {
            changed_[z(a)] = 1;
            touched_.push_back(a);
          }
        }
      }
      const double contrib = y_[z(a)] + h_[z(a)];
      for (int k = n - npos1_[z(a)]; k <= n; k += k & -k) {
        feny_[z(k)] = std::max(feny_[z(k)], contrib);
      }
    }
  }

  moved_.clear();
  for (int b : touched_) {
    changed_[z(b)] = 0;
    const auto& sh = inst_.blocks[z(b)].shapes[z(sp.shapes[z(b)])];
    const geom::Rect r{x_[z(b)] + spacing_, y_[z(b)] + spacing_, sh.w, sh.h};
    if (!same_rect(r, rects_[z(b)])) {
      rects_[z(b)] = r;
      moved_.push_back(b);
    }
  }
  std::swap(pos1_, npos1_);
  std::swap(pos2_, npos2_);
  cached_ = sp;
  full_rescan_ = false;
}

// ---------------------------------------------------------------------------
// BStarEvaluator

BStarEvaluator::BStarEvaluator(const floorplan::Instance& inst, double spacing,
                               TranspositionCache* tt)
    : inst_(inst), spacing_(spacing), tt_(tt) {
  scorer_.bind(inst);
}

double BStarEvaluator::cost(const BStarTree& tree) {
  const EvalMode mode = eval_mode();
  if (mode == EvalMode::kFull) {
    return sp_cost(inst_, pack_bstar(inst_, tree, spacing_));
  }
  if (mode == EvalMode::kDelta) {
    if (tt_ != nullptr) {
      const TranspositionCache::Key key = TranspositionCache::hash(tree);
      double c = 0.0;
      if (tt_->lookup(key, &c)) return c;
      c = eval_delta(tree);
      tt_->insert(key, c);
      return c;
    }
    return eval_delta(tree);
  }
  const auto full_rects = pack_bstar(inst_, tree, spacing_);
  const double full_cost = sp_cost(inst_, full_rects);
  double tt_cost = 0.0;
  bool tt_hit = false;
  TranspositionCache::Key key{};
  if (tt_ != nullptr) {
    key = TranspositionCache::hash(tree);
    tt_hit = tt_->lookup(key, &tt_cost);
  }
  const double delta_cost = eval_delta(tree);
  check_parity("b*-tree", full_cost, delta_cost, full_rects, rects_);
  if (tt_hit) {
    if (!same_bits(tt_cost, full_cost)) {
      parity_failure("b*-tree tt", full_cost, tt_cost);
    }
  } else if (tt_ != nullptr) {
    tt_->insert(key, full_cost);
  }
  return full_cost;
}

void BStarEvaluator::plan_steps(const BStarTree& tree,
                                std::vector<Step>* steps) {
  // The packed x of a node depends only on the tree topology and widths,
  // never on the contour, so the whole DFS visit order with x positions can
  // be planned in O(n) and diffed against the cached plan.  Push order
  // (right, then left) matches pack_bstar so the preorder — and therefore
  // every contour operation — is identical.
  steps->clear();
  auto& st = plan_stack_;
  st.clear();
  st.reserve(tree.left.size());
  st.emplace_back(tree.root, 0.0);
  while (!st.empty()) {
    const auto [b, x] = st.back();
    st.pop_back();
    const int shape = tree.shapes[z(b)];
    const auto& sh = inst_.blocks[z(b)].shapes[z(shape)];
    steps->push_back({b, shape, x});
    const int l = tree.left[z(b)];
    const int r = tree.right[z(b)];
    if (r >= 0) st.emplace_back(r, x);
    if (l >= 0) st.emplace_back(l, x + (sh.w + 2.0 * spacing_));
  }
}

double BStarEvaluator::eval_delta(const BStarTree& tree) {
  const int n = tree.size();
  plan_steps(tree, &scratch_steps_);
  const bool first = !has_state_ || static_cast<int>(rects_.size()) != n;
  if (first) rects_.assign(z(n), {});

  // Longest common step prefix: contour state before step i depends only on
  // steps < i, so snapshots at or before the first divergence stay valid.
  int prefix = 0;
  if (!first) {
    const int common =
        static_cast<int>(std::min(steps_.size(), scratch_steps_.size()));
    while (prefix < common) {
      const Step& a = steps_[z(prefix)];
      const Step& b = scratch_steps_[z(prefix)];
      if (a.node != b.node || a.shape != b.shape || !same_bits(a.x, b.x)) break;
      ++prefix;
    }
  }
  // Snapshot stride scales with n: each snapshot copies the whole contour,
  // so a fixed stride would make the copies themselves O(n^2 / stride) per
  // replay on large instances.  Slot j holds the contour before step
  // j * stride; a slot stays valid while its step is within the common
  // prefix, and replay resumes from the last valid one.
  const int stride = std::max(kSnapshotStride, n / 8);
  const int nslots = n / stride + 1;
  if (static_cast<int>(snapshots_.size()) < nslots) {
    snapshots_.resize(z(nslots));
  }
  nvalid_ = first ? 0 : std::min(nvalid_, prefix / stride + 1);
  int begin = 0;
  work_.clear();
  if (nvalid_ > 0) {
    work_ = snapshots_[z(nvalid_ - 1)].contour;
    begin = snapshots_[z(nvalid_ - 1)].step;
  }

  moved_.clear();
  for (int i = begin; i < n; ++i) {
    if (i % stride == 0 && i / stride >= nvalid_) {
      const int j = i / stride;
      snapshots_[z(j)].step = i;
      snapshots_[z(j)].contour = work_;
      nvalid_ = j + 1;
    }
    const Step& s = scratch_steps_[z(i)];
    const auto& sh = inst_.blocks[z(s.node)].shapes[z(s.shape)];
    const double wb = sh.w + 2.0 * spacing_;
    const double hb = sh.h + 2.0 * spacing_;
    const double y = work_.query(s.x, s.x + wb);
    work_.update(s.x, s.x + wb, y + hb);
    const geom::Rect r{s.x + spacing_, y + spacing_, sh.w, sh.h};
    if (first || !same_rect(r, rects_[z(s.node)])) {
      rects_[z(s.node)] = r;
      moved_.push_back(s.node);
    }
  }
  steps_.swap(scratch_steps_);
  full_rescan_ = first;
  has_state_ = true;
  return scorer_.cost(rects_, moved_, full_rescan_);
}

}  // namespace afp::metaheur
