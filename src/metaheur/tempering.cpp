#include "metaheur/tempering.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <stdexcept>

#include "metaheur/bstar.hpp"
#include "metaheur/eval_cache.hpp"
#include "numeric/parallel.hpp"

namespace afp::metaheur {

namespace {

/// Representation adapters: a uniform chain interface over the two
/// encodings.  Each call draws only from the replica's own stream.
struct SpChain {
  using State = SequencePair;
  using Evaluator = SpEvaluator;
  static State random(const floorplan::Instance& inst, std::mt19937_64& rng) {
    return SequencePair::random(inst.num_blocks(), rng);
  }
  static void mutate(State& s, std::mt19937_64& rng) {
    std::uniform_int_distribution<int> d(0, kNumMoves - 1);
    apply_move(s, static_cast<Move>(d(rng)), rng);
  }
  static std::vector<geom::Rect> pack_state(const floorplan::Instance& inst,
                                            const State& s, double spacing) {
    return pack(inst, s, spacing);
  }
};

struct BStarChain {
  using State = BStarTree;
  using Evaluator = BStarEvaluator;
  static State random(const floorplan::Instance& inst, std::mt19937_64& rng) {
    return BStarTree::random(inst.num_blocks(), rng);
  }
  static void mutate(State& s, std::mt19937_64& rng) {
    std::uniform_int_distribution<int> d(0, kNumBStarMoves - 1);
    apply_bstar_move(s, static_cast<BStarMove>(d(rng)), rng);
  }
  static std::vector<geom::Rect> pack_state(const floorplan::Instance& inst,
                                            const State& s, double spacing) {
    return pack_bstar(inst, s, spacing);
  }
};

template <class Chain>
BaselineResult run_pt_impl(const floorplan::Instance& inst, const PTParams& p,
                           std::uint64_t base_seed, const char* method) {
  using State = typename Chain::State;
  if (p.replicas < 2) {
    throw std::invalid_argument("run_pt: replicas must be >= 2");
  }
  if (p.iterations < 0) {
    throw std::invalid_argument("run_pt: iterations must be >= 0");
  }
  if (p.swap_interval < 1) {
    throw std::invalid_argument("run_pt: swap_interval must be >= 1");
  }
  if (p.t_cold <= 0.0 || (p.t_hot >= 0.0 && p.t_hot <= p.t_cold)) {
    throw std::invalid_argument("run_pt: need t_hot > t_cold > 0");
  }
  if (p.anneal && (p.t_end <= 0.0 || p.t_start < p.t_end ||
                   p.hot_factor < 1.0)) {
    throw std::invalid_argument(
        "run_pt: need t_start >= t_end > 0 and hot_factor >= 1");
  }
  if (p.budget_skew < 1.0) {
    throw std::invalid_argument("run_pt: budget_skew must be >= 1");
  }
  const auto t0 = std::chrono::steady_clock::now();
  const double spacing = resolve_spacing(inst, p.spacing_um);
  const int K = p.replicas;
  const auto kz = [](int k) { return static_cast<std::size_t>(k); };

  std::vector<std::mt19937_64> rngs;
  rngs.reserve(kz(K));
  for (int k = 0; k < K; ++k) rngs.push_back(replica_rng(base_seed, k));

  // Per-replica incremental evaluators (each chain's packing state lives
  // with its chain across rounds; replica exchanges just hand it a bigger
  // diff).  The transposition cache — if any — is shared: its values are
  // pure functions of the key, so concurrent replicas stay deterministic.
  std::vector<typename Chain::Evaluator> evals_by_replica;
  evals_by_replica.reserve(kz(K));
  for (int k = 0; k < K; ++k) evals_by_replica.emplace_back(inst, spacing, p.tt);

  // Initial states + costs, one replica per chunk (chains never re-enter
  // the pool: nested parallel_for inside pack/sp_cost runs serially there).
  std::vector<State> state(kz(K));
  std::vector<double> cost(kz(K));
  num::parallel_for(K, 1, [&](std::int64_t k0, std::int64_t k1) {
    for (std::int64_t k = k0; k < k1; ++k) {
      auto& s = state[static_cast<std::size_t>(k)];
      s = Chain::random(inst, rngs[static_cast<std::size_t>(k)]);
      cost[static_cast<std::size_t>(k)] =
          evals_by_replica[static_cast<std::size_t>(k)].cost(s);
    }
  });
  std::vector<State> best_state = state;
  std::vector<double> best_cost = cost;

  // Per-replica move budgets: share of the K * iterations total
  // proportional to budget_skew^-k, remainder handed to the coldest chains
  // (all deterministic integer arithmetic).
  const long total_moves = static_cast<long>(K) * p.iterations;
  std::vector<long> budget(kz(K), p.iterations);
  if (p.budget_skew > 1.0) {
    std::vector<double> w(kz(K));
    double sum_w = 0.0;
    for (int k = 0; k < K; ++k) {
      w[kz(k)] = std::pow(p.budget_skew, -k);
      sum_w += w[kz(k)];
    }
    long assigned = 0;
    for (int k = 0; k < K; ++k) {
      budget[kz(k)] = static_cast<long>(
          std::floor(static_cast<double>(total_moves) * w[kz(k)] / sum_w));
      assigned += budget[kz(k)];
    }
    for (int k = 0; assigned < total_moves; k = (k + 1) % K, ++assigned) {
      ++budget[kz(k)];
    }
  }

  // Rung values: fixed temperatures, or per-replica multipliers on an
  // annealing schedule each chain traverses over its own budget.  The auto
  // t_hot is floored at t_cold so a flat initial cost spread degenerates to
  // a constant ladder instead of an invalid one.
  const double t_hot =
      p.anneal ? 0.0
               : (p.t_hot >= 0.0
                      ? p.t_hot
                      : std::max(auto_hot_temperature(cost), p.t_cold));
  const std::vector<double> rung =
      p.anneal ? geometric_ladder(1.0, p.hot_factor, K)
               : geometric_ladder(p.t_cold, t_hot, K);
  std::vector<double> decay(kz(K), 1.0);
  if (p.anneal) {
    for (int k = 0; k < K; ++k) {
      decay[kz(k)] = std::pow(
          p.t_end / p.t_start,
          1.0 / static_cast<double>(std::max(1l, budget[kz(k)] - 1)));
    }
  }
  const auto temp_at = [&](int k, long move_index) {
    return p.anneal ? rung[kz(k)] * p.t_start *
                          std::pow(decay[kz(k)],
                                   static_cast<double>(move_index))
                    : rung[kz(k)];
  };

  // Round pacing follows the cold chain: it advances swap_interval moves
  // per round and every other chain is paced to the same budget fraction,
  // so all chains finish together and swaps happen between comparably
  // annealed states.
  std::mt19937_64 swap_rng = replica_rng(base_seed, -1);
  std::uniform_real_distribution<double> unif(0.0, 1.0);
  int swap_interval = p.swap_interval;
  const int max_interval = p.swap_interval * 4;
  std::vector<long> done(kz(K), 0);
  // Moves actually performed per chain (== done[k] unless a stop token cut
  // a round short) so reported evaluations stay exact under cancellation.
  std::vector<long> moves(kz(K), 0);
  int round = 0;
  long window_attempts = 0, window_accepts = 0;
  while (done[0] < budget[0]) {
    if (p.stop != nullptr && p.stop->stop_requested()) break;
    const long cold_next =
        std::min<long>(budget[0], done[0] + swap_interval);
    std::vector<long> next(kz(K));
    next[0] = cold_next;
    for (int k = 1; k < K; ++k) {
      next[kz(k)] = cold_next >= budget[0]
                        ? budget[kz(k)]
                        : budget[kz(k)] * cold_next / budget[0];
    }
    num::parallel_for(K, 1, [&](std::int64_t k0, std::int64_t k1) {
      for (std::int64_t k = k0; k < k1; ++k) {
        const std::size_t ks = static_cast<std::size_t>(k);
        auto& rng = rngs[ks];
        std::uniform_real_distribution<double> u01(0.0, 1.0);
        StopPoll stopped(p.stop);
        for (long it = done[ks]; it < next[ks]; ++it) {
          if (stopped()) break;
          ++moves[ks];
          State cand = state[ks];
          Chain::mutate(cand, rng);
          const double c = evals_by_replica[ks].cost(cand);
          const double t = temp_at(static_cast<int>(k), it);
          if (c < cost[ks] || u01(rng) < std::exp((cost[ks] - c) / t)) {
            state[ks] = std::move(cand);
            cost[ks] = c;
            if (cost[ks] < best_cost[ks]) {
              best_state[ks] = state[ks];
              best_cost[ks] = cost[ks];
            }
          }
        }
      }
    });
    done = std::move(next);
    if (done[0] >= budget[0]) break;  // a final exchange cannot improve best
    // Serial exchange round: even pairs on even rounds, odd pairs on odd
    // rounds, acceptance uniforms drawn in pair order from the swap stream.
    for (int i = round % 2; i + 1 < K; i += 2) {
      const double pr = pt_swap_probability(
          cost[kz(i)], cost[kz(i + 1)], temp_at(i, done[kz(i)]),
          temp_at(i + 1, done[kz(i + 1)]));
      const double u = unif(swap_rng);
      ++window_attempts;
      if (u < pr) {
        std::swap(state[kz(i)], state[kz(i + 1)]);
        std::swap(cost[kz(i)], cost[kz(i + 1)]);
        ++window_accepts;
      }
    }
    ++round;
    if (p.adaptive_swap && round % kAdaptWindow == 0 && window_attempts > 0) {
      const double rate = static_cast<double>(window_accepts) /
                          static_cast<double>(window_attempts);
      if (rate > 0.5) {
        swap_interval = std::max(1, swap_interval / 2);
      } else if (rate < 0.1) {
        swap_interval = std::min(max_interval, swap_interval * 2);
      }
      window_attempts = window_accepts = 0;
    }
  }

  int win = 0;
  for (int k = 1; k < K; ++k) {
    if (best_cost[kz(k)] < best_cost[kz(win)]) win = k;
  }
  BaselineResult r;
  r.method = method;
  r.rects = Chain::pack_state(inst, best_state[kz(win)], spacing);
  r.eval = floorplan::evaluate_floorplan(inst, r.rects);
  // K initial packings + one per performed move (== K * (1 + iterations)
  // for an uninterrupted run; less when a stop token cut chains short).
  r.evaluations = static_cast<long>(K);
  for (int k = 0; k < K; ++k) r.evaluations += moves[kz(k)];
  r.runtime_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return r;
}

}  // namespace

const char* to_string(Representation rep) {
  return rep == Representation::kBStarTree ? "bstar" : "sp";
}

std::vector<double> geometric_ladder(double t_cold, double t_hot,
                                     int replicas) {
  if (replicas < 1 || t_cold <= 0.0 || t_hot < t_cold) {
    throw std::invalid_argument(
        "geometric_ladder: need replicas >= 1 and t_hot >= t_cold > 0");
  }
  std::vector<double> temp(static_cast<std::size_t>(replicas));
  const double ratio = t_hot / t_cold;
  for (int k = 0; k < replicas; ++k) {
    const double frac =
        replicas == 1 ? 0.0
                      : static_cast<double>(k) /
                            static_cast<double>(replicas - 1);
    temp[static_cast<std::size_t>(k)] = t_cold * std::pow(ratio, frac);
  }
  return temp;
}

double pt_swap_probability(double cost_i, double cost_j, double t_i,
                           double t_j) {
  const double exponent = (1.0 / t_i - 1.0 / t_j) * (cost_i - cost_j);
  return std::min(1.0, std::exp(exponent));
}

double auto_hot_temperature(const std::vector<double>& initial_costs) {
  if (initial_costs.empty()) return 1.0;
  const auto [lo, hi] =
      std::minmax_element(initial_costs.begin(), initial_costs.end());
  return std::max(1.0, *hi - *lo);
}

std::mt19937_64 replica_rng(std::uint64_t base_seed, int replica) {
  // Distinct domain-separation constant from restart_rng's 0x7f4a7c15.
  const std::uint64_t mixed = splitmix64(
      splitmix64(base_seed ^ 0x9e3779b97f4a7c15ull) ^
      (0x1ce4e5b9ull + static_cast<std::uint64_t>(
                           static_cast<std::int64_t>(replica))));
  return std::mt19937_64(mixed);
}

BaselineResult run_pt(const floorplan::Instance& inst, const PTParams& p,
                      std::mt19937_64& rng) {
  const std::uint64_t base_seed = rng();
  return p.representation == Representation::kBStarTree
             ? run_pt_impl<BStarChain>(inst, p, base_seed, "PT-B*")
             : run_pt_impl<SpChain>(inst, p, base_seed, "PT");
}

BaselineResult run_pt_multi(const floorplan::Instance& inst, const PTParams& p,
                            const MultiStartOptions& opt) {
  return run_multistart(
      inst,
      [&inst, &p](int, std::mt19937_64& rng) { return run_pt(inst, p, rng); },
      opt);
}

}  // namespace afp::metaheur
