// Discretized floorplan state for the RL agent (Section IV-D).
//
// The canvas is an n x n grid (n = 32 in the paper).  Blocks occupy
// ceil-quantized footprints (wg = ceil(w * n / W)); placements record the
// lower-left cell.  The class maintains:
//   - occupancy (for the grid view fg and overlap-free masking),
//   - symmetry-axis and alignment state for constraint masking (fp),
//   - incremental HPWL / dead-space bookkeeping for the reward masks
//     (fw, fds) and the intermediate reward of Eq. (4).
//
// Symmetry-axis protocol: all vertical-symmetry constraints of an instance
// share one vertical axis (likewise horizontal).  The axis is pinned by the
// first placement that determines it — a self-symmetric block pins it at
// its center; completing a symmetric pair pins it at the pair's midpoint.
// Positions are tracked in half-cell units so mirrored placements stay on
// the integer grid.
#pragma once

#include <optional>
#include <vector>

#include "floorplan/instance.hpp"

namespace afp::floorplan {

/// A block's placement on the grid; shape < 0 means unplaced.
struct GridPlacement {
  int shape = -1;
  int col = -1;
  int row = -1;
  bool placed() const { return shape >= 0; }
};

class GridFloorplan {
 public:
  explicit GridFloorplan(const Instance& inst, int n = 32);

  /// Clears all placements and constraint state.
  void reset();

  int grid_size() const { return n_; }
  const Instance& instance() const { return *inst_; }

  /// Quantized footprint (wg, hg) of block `b` under shape `s`.
  std::pair<int, int> footprint(int b, int s) const;

  /// Fit + overlap check only (no constraints).
  bool fits(int b, int s, int col, int row) const;

  /// Full validity: fit, overlap and constraint masks.
  bool valid(int b, int s, int col, int row) const;

  /// Places block `b`; precondition: valid(...).  Updates constraint state.
  void place(int b, int s, int col, int row);

  bool placed(int b) const {
    return placements_[static_cast<std::size_t>(b)].placed();
  }
  int num_placed() const { return num_placed_; }
  bool complete() const { return num_placed_ == inst_->num_blocks(); }
  const GridPlacement& placement(int b) const {
    return placements_[static_cast<std::size_t>(b)];
  }

  /// Continuous rectangle of a placed block (um).
  geom::Rect rect_of(int b) const;
  /// Rectangles of all blocks; requires complete().
  std::vector<geom::Rect> rects() const;

  /// Dead space over currently placed blocks (0 when < 2 placed).
  double partial_dead_space() const;
  /// HPWL over nets restricted to currently placed blocks.
  double partial_hpwl() const;

  // ---- masks (row-major n*n, index = row * n + col) ----------------------
  /// fg: 1 = occupied.
  std::vector<float> occupancy_mask() const;
  /// fp channel for shape `s` of block `b`: 1 = admissible cell.
  std::vector<float> position_mask(int b, int s) const;
  /// fw: normalized HPWL increase of placing `b` (shape `s`) per cell;
  /// invalid cells = 1.
  std::vector<float> wire_mask(int b, int s) const;
  /// fds: normalized dead-space increase per cell; invalid cells = 1.
  std::vector<float> dead_space_mask(int b, int s) const;
  /// Routing-congestion estimate (RUDY-style): every net with >= 2 placed
  /// pins spreads a demand of (w + h) / (w * h) over its bounding box;
  /// normalized to [0, 1].  This is the paper's future-work extension —
  /// conditioning placement on expected routing density (Section VI).
  std::vector<float> congestion_mask() const;

  /// True when some (shape, cell) action exists for block `b`.
  bool any_valid_action(int b) const;

  // Axis state, exposed for tests (half-cell units).
  std::optional<int> vertical_axis2() const { return vaxis2_; }
  std::optional<int> horizontal_axis2() const { return haxis2_; }

 private:
  bool constraint_ok(int b, int s, int col, int row) const;
  void update_constraint_state(int b);

  const Instance* inst_;
  int n_;
  geom::GridMapper mapper_;
  std::vector<GridPlacement> placements_;
  std::vector<std::uint8_t> occ_;  ///< n*n occupancy
  int num_placed_ = 0;

  std::optional<int> vaxis2_;  ///< vertical symmetry axis, half cells
  std::optional<int> haxis2_;
  std::vector<std::optional<int>> align_pin_;  ///< pinned row/col per group

  // Constraint membership lookup tables (built once).
  struct PairRef {
    int partner;
    bool vertical;
  };
  std::vector<std::vector<PairRef>> pair_of_;      ///< per block
  std::vector<std::vector<bool>> self_sym_of_;     ///< per block: {vert?}
  std::vector<std::vector<int>> align_groups_of_;  ///< group indices
};

}  // namespace afp::floorplan
