// Floorplanning problem instance: blocks with candidate shapes, block-level
// nets, positional constraints and the placement canvas.
//
// Shared by the RL environment and all metaheuristic baselines so that
// every algorithm is scored by exactly the same metric code.
#pragma once

#include <array>
#include <optional>
#include <string>
#include <vector>

#include "geom/geom.hpp"
#include "graphir/graph.hpp"

namespace afp::floorplan {

/// Continuous block dimensions in um.
struct Shape {
  double w = 0.0;
  double h = 0.0;
  double area() const { return w * h; }
};

constexpr int kNumShapes = 3;  ///< candidate shapes per block (Section IV-A)

/// Three area-preserving aspect-ratio variants for a block, reflecting the
/// internal placement styles (common-centroid, interdigitated, stacked) the
/// multi-shape configuration step generates.  Matched pairs and mirrors
/// prefer wide layouts; power devices are strongly widened.
std::array<Shape, kNumShapes> candidate_shapes(double area_um2,
                                               structrec::StructureType type);

struct Block {
  std::string name;
  structrec::StructureType type = structrec::StructureType::kUnknown;
  double area_um2 = 0.0;
  std::array<Shape, kNumShapes> shapes{};
};

/// The full problem instance.
struct Instance {
  std::string name;
  std::vector<Block> blocks;
  std::vector<std::vector<int>> nets;  ///< block indices per net
  graphir::ConstraintSpec constraints;
  double canvas_w = 0.0;  ///< W (um), Section IV-D1
  double canvas_h = 0.0;  ///< H (um)
  double hpwl_ref = 1.0;  ///< HPWLmin estimate for reward standardization
  std::optional<double> target_aspect;  ///< optional fixed-outline R*

  int num_blocks() const { return static_cast<int>(blocks.size()); }
  double total_block_area() const;

  /// Placement order heuristic: indices by decreasing area (Section IV-D1).
  std::vector<int> placement_order() const;
};

/// Builds an instance from a circuit graph (Rmax = 11 per the paper).
/// hpwl_ref defaults to a per-net lower-bound estimate and is typically
/// overwritten with a metaheuristic estimate by the caller.
Instance make_instance(const graphir::CircuitGraph& g, double r_max = 11.0);

/// Metric record of a finished floorplan.
struct Evaluation {
  double area = 0.0;         ///< bounding-box area (um^2)
  double dead_space = 0.0;   ///< 1 - sum(Ai)/area
  double hpwl = 0.0;         ///< block-center half-perimeter wirelength (um)
  double aspect = 1.0;       ///< bounding-box aspect ratio
  double reward = 0.0;       ///< Eq. (5) with alpha=1, beta=5, gamma=5
  bool constraints_ok = true;
  /// Violation breakdown behind constraints_ok: violated / total constraint
  /// items (see constraint_violations).  0/0 for unconstrained instances.
  int constraint_violations = 0;
  int constraint_items = 0;
};

/// Reward weights of Eq. (5).
struct RewardWeights {
  double alpha = 1.0;
  double beta = 5.0;
  double gamma = 5.0;
  double violation_penalty = -50.0;
};

/// Scores continuous block rectangles (one per block, all placed).
/// The Eq. (5) terms are zero-referenced (perfect packing at reference
/// wirelength scores 0) so rewards are comparable across circuits.
/// `constraint_tol` is the geometric tolerance for constraint checking:
/// exact (1e-6) for continuous optimizers; grid-produced floorplans pass
/// half a grid cell, the alignment quantum of the 32x32 discretization.
Evaluation evaluate_floorplan(const Instance& inst,
                              const std::vector<geom::Rect>& rects,
                              const RewardWeights& w = {},
                              double constraint_tol = 1e-6);

/// HPWL over block centers for the instance's nets.
double hpwl_of(const Instance& inst, const std::vector<geom::Rect>& rects);

/// Cached per-net HPWL bounding boxes: after a move, only the nets touching
/// moved blocks are rescanned (O(moved pins)), then the per-net extents are
/// re-summed in net order so the total is bitwise identical to hpwl_of.
/// The caller owns the invalidation contract: `moved` must cover every block
/// whose rect center changed since the previous update()/recompute() on the
/// same rects vector (a superset is fine, it only costs rescans).
class HpwlCache {
 public:
  /// Binds the cache to an instance: builds the block -> nets adjacency and
  /// clears all per-net boxes.  `inst` must outlive the cache.
  void reset(const Instance& inst);

  /// Rescans every net; equivalent to hpwl_of(inst, rects).
  double recompute(const std::vector<geom::Rect>& rects);

  /// Rescans only the nets adjacent to `moved` blocks, then re-sums all
  /// nets.  Requires a prior recompute() on the same instance.
  double update(const std::vector<geom::Rect>& rects,
                const std::vector<int>& moved);

 private:
  struct NetBox {
    double x0 = 0.0, x1 = 0.0, y0 = 0.0, y1 = 0.0;
  };
  void rescan(std::size_t net, const std::vector<geom::Rect>& rects);
  double sum() const;

  const Instance* inst_ = nullptr;
  std::vector<std::vector<int>> block_nets_;  ///< nets adjacent to a block
  std::vector<NetBox> boxes_;
  std::vector<char> dirty_;  ///< per-net scratch flag for update()
};

/// Counts violated constraint items with tolerance `tol` (um).  One item
/// per constraint element: each self-symmetry, symmetry pair, alignment
/// follower, matching follower, keep-out region and pre-placed pin.  The
/// item total (written to `total_items` when non-null) depends only on the
/// constraint spec, never on the placement, so violated/total is a stable
/// violation fraction.
int constraint_violations(const Instance& inst,
                          const std::vector<geom::Rect>& rects, double tol,
                          int* total_items = nullptr);

/// Checks the instance's symmetry / alignment constraints on continuous
/// rectangles with tolerance `tol` (um).
bool constraints_satisfied(const Instance& inst,
                           const std::vector<geom::Rect>& rects,
                           double tol = 1e-6);

/// Graded soft penalty for the metaheuristic cost: 0 when satisfied, up to
/// 10.0 when every item is violated.  Proportional to the violation
/// fraction so annealers can repair constraints one element at a time
/// instead of facing a flat cliff.  Shared by sp_cost and the incremental
/// evaluator so both produce bitwise-identical costs.
inline double constraint_penalty(int violated, int total_items) {
  if (violated <= 0) return 0.0;
  return 10.0 * static_cast<double>(violated) /
         static_cast<double>(total_items < 1 ? 1 : total_items);
}

}  // namespace afp::floorplan
