#include "floorplan/grid.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace afp::floorplan {

GridFloorplan::GridFloorplan(const Instance& inst, int n)
    : inst_(&inst), n_(n) {
  if (n <= 0) throw std::invalid_argument("GridFloorplan: n must be positive");
  mapper_ = {inst.canvas_w, inst.canvas_h, n};
  const int nb = inst.num_blocks();
  pair_of_.resize(static_cast<std::size_t>(nb));
  self_sym_of_.resize(static_cast<std::size_t>(nb));
  align_groups_of_.resize(static_cast<std::size_t>(nb));
  const auto& cs = inst.constraints;
  for (const auto& sp : cs.sym_pairs) {
    pair_of_[static_cast<std::size_t>(sp.a)].push_back({sp.b, sp.vertical});
    pair_of_[static_cast<std::size_t>(sp.b)].push_back({sp.a, sp.vertical});
  }
  for (const auto& ss : cs.self_syms) {
    self_sym_of_[static_cast<std::size_t>(ss.block)].push_back(ss.vertical);
  }
  for (int g = 0; g < static_cast<int>(cs.align_groups.size()); ++g) {
    for (int b : cs.align_groups[static_cast<std::size_t>(g)].blocks) {
      align_groups_of_[static_cast<std::size_t>(b)].push_back(g);
    }
  }
  reset();
}

void GridFloorplan::reset() {
  placements_.assign(static_cast<std::size_t>(inst_->num_blocks()), {});
  occ_.assign(static_cast<std::size_t>(n_) * n_, 0);
  num_placed_ = 0;
  vaxis2_.reset();
  haxis2_.reset();
  align_pin_.assign(inst_->constraints.align_groups.size(), std::nullopt);
}

std::pair<int, int> GridFloorplan::footprint(int b, int s) const {
  const Shape& sh =
      inst_->blocks[static_cast<std::size_t>(b)].shapes[static_cast<std::size_t>(s)];
  return {mapper_.cells_w(sh.w), mapper_.cells_h(sh.h)};
}

bool GridFloorplan::fits(int b, int s, int col, int row) const {
  const auto [wg, hg] = footprint(b, s);
  if (col < 0 || row < 0 || col + wg > n_ || row + hg > n_) return false;
  for (int r = row; r < row + hg; ++r) {
    const std::uint8_t* line = occ_.data() + static_cast<std::size_t>(r) * n_;
    for (int c = col; c < col + wg; ++c) {
      if (line[c]) return false;
    }
  }
  return true;
}

bool GridFloorplan::constraint_ok(int b, int s, int col, int row) const {
  const auto [wg, hg] = footprint(b, s);
  const int cx2 = 2 * col + wg;  // center, half cells
  const int cy2 = 2 * row + hg;

  for (const PairRef& pr : pair_of_[static_cast<std::size_t>(b)]) {
    const GridPlacement& pp = placements_[static_cast<std::size_t>(pr.partner)];
    const auto& axis = pr.vertical ? vaxis2_ : haxis2_;
    if (pp.placed()) {
      if (pp.shape != s) return false;  // mirrored twins share the shape
      const auto [pwg, phg] = footprint(pr.partner, pp.shape);
      const int px2 = 2 * pp.col + pwg;
      const int py2 = 2 * pp.row + phg;
      if (pr.vertical) {
        if (pp.row != row) return false;
        if (axis) {
          if (cx2 != 2 * *axis - px2) return false;
        } else if ((cx2 + px2) % 2 != 0) {
          return false;  // midpoint must land on a half-cell axis
        }
      } else {
        if (pp.col != col) return false;
        if (axis) {
          if (cy2 != 2 * *axis - py2) return false;
        } else if ((cy2 + py2) % 2 != 0) {
          return false;
        }
      }
    } else if (axis) {
      // Partner still unplaced: its mirrored footprint must stay on grid.
      if (pr.vertical) {
        const int mcol = *axis - col - wg;  // (2*axis - cx2 - wg) / 2
        if (mcol < 0 || mcol + wg > n_) return false;
      } else {
        const int mrow = *axis - row - hg;
        if (mrow < 0 || mrow + hg > n_) return false;
      }
    }
  }

  for (bool vertical : self_sym_of_[static_cast<std::size_t>(b)]) {
    const auto& axis = vertical ? vaxis2_ : haxis2_;
    if (!axis) continue;  // this placement will pin the axis
    if (vertical) {
      if (cx2 != *axis) return false;
    } else {
      if (cy2 != *axis) return false;
    }
  }

  for (int g : align_groups_of_[static_cast<std::size_t>(b)]) {
    const auto& pin = align_pin_[static_cast<std::size_t>(g)];
    if (!pin) continue;
    const bool horizontal =
        inst_->constraints.align_groups[static_cast<std::size_t>(g)].horizontal;
    if (horizontal ? (row != *pin) : (col != *pin)) return false;
  }
  return true;
}

bool GridFloorplan::valid(int b, int s, int col, int row) const {
  return fits(b, s, col, row) && constraint_ok(b, s, col, row);
}

void GridFloorplan::place(int b, int s, int col, int row) {
  if (!valid(b, s, col, row)) {
    throw std::logic_error("GridFloorplan::place: invalid placement");
  }
  const auto [wg, hg] = footprint(b, s);
  for (int r = row; r < row + hg; ++r) {
    std::uint8_t* line = occ_.data() + static_cast<std::size_t>(r) * n_;
    for (int c = col; c < col + wg; ++c) line[c] = 1;
  }
  placements_[static_cast<std::size_t>(b)] = {s, col, row};
  ++num_placed_;
  update_constraint_state(b);
}

void GridFloorplan::update_constraint_state(int b) {
  const GridPlacement& p = placements_[static_cast<std::size_t>(b)];
  const auto [wg, hg] = footprint(b, p.shape);
  const int cx2 = 2 * p.col + wg;
  const int cy2 = 2 * p.row + hg;

  for (bool vertical : self_sym_of_[static_cast<std::size_t>(b)]) {
    auto& axis = vertical ? vaxis2_ : haxis2_;
    if (!axis) axis = vertical ? cx2 : cy2;
  }
  for (const PairRef& pr : pair_of_[static_cast<std::size_t>(b)]) {
    const GridPlacement& pp = placements_[static_cast<std::size_t>(pr.partner)];
    if (!pp.placed()) continue;
    auto& axis = pr.vertical ? vaxis2_ : haxis2_;
    if (axis) continue;
    const auto [pwg, phg] = footprint(pr.partner, pp.shape);
    if (pr.vertical) {
      axis = (cx2 + (2 * pp.col + pwg)) / 2;
    } else {
      axis = (cy2 + (2 * pp.row + phg)) / 2;
    }
  }
  for (int g : align_groups_of_[static_cast<std::size_t>(b)]) {
    auto& pin = align_pin_[static_cast<std::size_t>(g)];
    if (pin) continue;
    const bool horizontal =
        inst_->constraints.align_groups[static_cast<std::size_t>(g)].horizontal;
    pin = horizontal ? p.row : p.col;
  }
}

geom::Rect GridFloorplan::rect_of(int b) const {
  const GridPlacement& p = placements_[static_cast<std::size_t>(b)];
  if (!p.placed()) throw std::logic_error("rect_of: block not placed");
  const Shape& sh = inst_->blocks[static_cast<std::size_t>(b)]
                        .shapes[static_cast<std::size_t>(p.shape)];
  // Center the true rectangle inside its quantized footprint so that the
  // continuous block center coincides with the grid center — this is what
  // makes grid-level symmetry masking exact in continuous space.
  const auto [wg, hg] = footprint(b, p.shape);
  const double slack_x = wg * inst_->canvas_w / n_ - sh.w;
  const double slack_y = hg * inst_->canvas_h / n_ - sh.h;
  return {mapper_.world_x(p.col) + slack_x / 2.0,
          mapper_.world_y(p.row) + slack_y / 2.0, sh.w, sh.h};
}

std::vector<geom::Rect> GridFloorplan::rects() const {
  if (!complete()) throw std::logic_error("rects: floorplan incomplete");
  std::vector<geom::Rect> out;
  out.reserve(placements_.size());
  for (int b = 0; b < inst_->num_blocks(); ++b) out.push_back(rect_of(b));
  return out;
}

double GridFloorplan::partial_dead_space() const {
  geom::Rect bb{};
  bool first = true;
  double used = 0.0;
  int count = 0;
  for (int b = 0; b < inst_->num_blocks(); ++b) {
    if (!placed(b)) continue;
    const geom::Rect r = rect_of(b);
    bb = first ? r : geom::bounding_union(bb, r);
    first = false;
    used += r.area();
    ++count;
  }
  if (count < 2 || bb.area() <= 0.0) return 0.0;
  return 1.0 - used / bb.area();
}

double GridFloorplan::partial_hpwl() const {
  double total = 0.0;
  for (const auto& net : inst_->nets) {
    double x0 = 1e300, x1 = -1e300, y0 = 1e300, y1 = -1e300;
    int cnt = 0;
    for (int b : net) {
      if (!placed(b)) continue;
      const geom::Point c = rect_of(b).center();
      x0 = std::min(x0, c.x);
      x1 = std::max(x1, c.x);
      y0 = std::min(y0, c.y);
      y1 = std::max(y1, c.y);
      ++cnt;
    }
    if (cnt >= 2) total += (x1 - x0) + (y1 - y0);
  }
  return total;
}

std::vector<float> GridFloorplan::occupancy_mask() const {
  std::vector<float> m(occ_.size());
  for (std::size_t i = 0; i < occ_.size(); ++i)
    m[i] = occ_[i] ? 1.0f : 0.0f;
  return m;
}

std::vector<float> GridFloorplan::position_mask(int b, int s) const {
  std::vector<float> m(static_cast<std::size_t>(n_) * n_, 0.0f);
  for (int row = 0; row < n_; ++row) {
    for (int col = 0; col < n_; ++col) {
      if (valid(b, s, col, row)) {
        m[static_cast<std::size_t>(row) * n_ + col] = 1.0f;
      }
    }
  }
  return m;
}

namespace {

/// Min-max normalizes `raw` over cells where `ok` is set; others become 1.
std::vector<float> normalize_mask(const std::vector<double>& raw,
                                  const std::vector<std::uint8_t>& ok) {
  double lo = 1e300, hi = -1e300;
  for (std::size_t i = 0; i < raw.size(); ++i) {
    if (!ok[i]) continue;
    lo = std::min(lo, raw[i]);
    hi = std::max(hi, raw[i]);
  }
  std::vector<float> m(raw.size(), 1.0f);
  if (hi <= lo) {
    // Flat landscape: every admissible cell is equally good.
    for (std::size_t i = 0; i < raw.size(); ++i)
      if (ok[i]) m[i] = 0.0f;
    return m;
  }
  const double inv = 1.0 / (hi - lo);
  for (std::size_t i = 0; i < raw.size(); ++i) {
    if (ok[i]) m[i] = static_cast<float>((raw[i] - lo) * inv);
  }
  return m;
}

}  // namespace

std::vector<float> GridFloorplan::wire_mask(int b, int s) const {
  const double base = partial_hpwl();
  const Shape& sh = inst_->blocks[static_cast<std::size_t>(b)]
                        .shapes[static_cast<std::size_t>(s)];
  std::vector<double> raw(static_cast<std::size_t>(n_) * n_, 0.0);
  std::vector<std::uint8_t> ok(raw.size(), 0);
  for (int row = 0; row < n_; ++row) {
    for (int col = 0; col < n_; ++col) {
      if (!fits(b, s, col, row)) continue;
      const std::size_t idx = static_cast<std::size_t>(row) * n_ + col;
      ok[idx] = 1;
      const geom::Point c{mapper_.world_x(col) + sh.w / 2.0,
                          mapper_.world_y(row) + sh.h / 2.0};
      // Incremental HPWL: only nets containing b change.
      double delta = 0.0;
      for (const auto& net : inst_->nets) {
        if (std::find(net.begin(), net.end(), b) == net.end()) continue;
        double x0 = 1e300, x1 = -1e300, y0 = 1e300, y1 = -1e300;
        int cnt = 0;
        for (int nb : net) {
          if (nb == b || !placed(nb)) continue;
          const geom::Point pc = rect_of(nb).center();
          x0 = std::min(x0, pc.x);
          x1 = std::max(x1, pc.x);
          y0 = std::min(y0, pc.y);
          y1 = std::max(y1, pc.y);
          ++cnt;
        }
        if (cnt == 0) continue;
        const double before = cnt >= 2 ? (x1 - x0) + (y1 - y0) : 0.0;
        x0 = std::min(x0, c.x);
        x1 = std::max(x1, c.x);
        y0 = std::min(y0, c.y);
        y1 = std::max(y1, c.y);
        delta += (x1 - x0) + (y1 - y0) - before;
      }
      raw[idx] = delta;
      (void)base;
    }
  }
  return normalize_mask(raw, ok);
}

std::vector<float> GridFloorplan::dead_space_mask(int b, int s) const {
  const double ds_before = partial_dead_space();
  geom::Rect bb{};
  bool first = true;
  double used = 0.0;
  for (int nb = 0; nb < inst_->num_blocks(); ++nb) {
    if (!placed(nb)) continue;
    const geom::Rect r = rect_of(nb);
    bb = first ? r : geom::bounding_union(bb, r);
    first = false;
    used += r.area();
  }
  const Shape& sh = inst_->blocks[static_cast<std::size_t>(b)]
                        .shapes[static_cast<std::size_t>(s)];
  std::vector<double> raw(static_cast<std::size_t>(n_) * n_, 0.0);
  std::vector<std::uint8_t> ok(raw.size(), 0);
  for (int row = 0; row < n_; ++row) {
    for (int col = 0; col < n_; ++col) {
      if (!fits(b, s, col, row)) continue;
      const std::size_t idx = static_cast<std::size_t>(row) * n_ + col;
      ok[idx] = 1;
      const geom::Rect r{mapper_.world_x(col), mapper_.world_y(row), sh.w,
                         sh.h};
      const geom::Rect nbb = first ? r : geom::bounding_union(bb, r);
      const double nused = used + r.area();
      const double ds_after =
          nbb.area() > 0.0 ? 1.0 - nused / nbb.area() : 0.0;
      raw[idx] = ds_after - ds_before;
    }
  }
  return normalize_mask(raw, ok);
}

std::vector<float> GridFloorplan::congestion_mask() const {
  std::vector<double> demand(static_cast<std::size_t>(n_) * n_, 0.0);
  for (const auto& net : inst_->nets) {
    double x0 = 1e300, x1 = -1e300, y0 = 1e300, y1 = -1e300;
    int cnt = 0;
    for (int b : net) {
      if (!placed(b)) continue;
      const geom::Point c = rect_of(b).center();
      x0 = std::min(x0, c.x);
      x1 = std::max(x1, c.x);
      y0 = std::min(y0, c.y);
      y1 = std::max(y1, c.y);
      ++cnt;
    }
    if (cnt < 2) continue;
    // RUDY: uniform wire density over the net's bounding box.
    const double w = std::max(x1 - x0, inst_->canvas_w / n_);
    const double h = std::max(y1 - y0, inst_->canvas_h / n_);
    const double density = (w + h) / (w * h);
    const geom::Cell lo = mapper_.cell_of(x0, y0);
    const geom::Cell hi = mapper_.cell_of(x1, y1);
    for (int r = lo.row; r <= hi.row; ++r) {
      for (int c = lo.col; c <= hi.col; ++c) {
        demand[static_cast<std::size_t>(r) * n_ + c] += density;
      }
    }
  }
  double mx = 0.0;
  for (double d : demand) mx = std::max(mx, d);
  std::vector<float> out(demand.size(), 0.0f);
  if (mx > 0.0) {
    for (std::size_t i = 0; i < demand.size(); ++i) {
      out[i] = static_cast<float>(demand[i] / mx);
    }
  }
  return out;
}

bool GridFloorplan::any_valid_action(int b) const {
  for (int s = 0; s < kNumShapes; ++s) {
    for (int row = 0; row < n_; ++row) {
      for (int col = 0; col < n_; ++col) {
        if (valid(b, s, col, row)) return true;
      }
    }
  }
  return false;
}

}  // namespace afp::floorplan
