#include "floorplan/instance.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace afp::floorplan {

using structrec::StructureType;

std::array<Shape, kNumShapes> candidate_shapes(double area_um2,
                                               StructureType type) {
  // Aspect ratios r = w/h; w = sqrt(A * r), h = sqrt(A / r).
  std::array<double, kNumShapes> ratios{0.5, 1.0, 2.0};
  if (structrec::is_matched_pair(type) ||
      type == StructureType::kCurrentMirrorN ||
      type == StructureType::kCurrentMirrorP) {
    // Interdigitated / common-centroid rows are wide.
    ratios = {1.0, 2.25, 4.0};
  } else if (type == StructureType::kPowerDevice) {
    ratios = {2.25, 4.0, 6.25};
  } else if (type == StructureType::kCapSingle ||
             type == StructureType::kCapArray ||
             type == StructureType::kDecapCapacitor) {
    ratios = {0.8, 1.0, 1.25};
  }
  std::array<Shape, kNumShapes> shapes{};
  for (int i = 0; i < kNumShapes; ++i) {
    shapes[static_cast<std::size_t>(i)] = {
        std::sqrt(area_um2 * ratios[static_cast<std::size_t>(i)]),
        std::sqrt(area_um2 / ratios[static_cast<std::size_t>(i)])};
  }
  return shapes;
}

double Instance::total_block_area() const {
  double a = 0.0;
  for (const Block& b : blocks) a += b.area_um2;
  return a;
}

std::vector<int> Instance::placement_order() const {
  std::vector<int> order(blocks.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [this](int a, int b) {
    return blocks[static_cast<std::size_t>(a)].area_um2 >
           blocks[static_cast<std::size_t>(b)].area_um2;
  });
  return order;
}

Instance make_instance(const graphir::CircuitGraph& g, double r_max) {
  Instance inst;
  inst.name = g.name;
  for (const auto& node : g.nodes) {
    Block b;
    b.name = node.name;
    b.type = node.type;
    b.area_um2 = node.area_um2;
    b.shapes = candidate_shapes(node.area_um2, node.type);
    inst.blocks.push_back(std::move(b));
  }
  for (const auto& net : g.nets) inst.nets.push_back(net.blocks);
  inst.constraints = g.constraints;
  const double side = geom::canvas_side(inst.total_block_area(), r_max);
  inst.canvas_w = side;
  inst.canvas_h = side;
  // Optimistic per-net bound: each net at least spans the half-perimeter of
  // the smallest square covering its blocks' combined area.
  double ref = 0.0;
  for (const auto& net : inst.nets) {
    double a = 0.0;
    for (int b : net) a += inst.blocks[static_cast<std::size_t>(b)].area_um2;
    ref += 2.0 * std::sqrt(a);
  }
  inst.hpwl_ref = std::max(1.0, ref);
  return inst;
}

double hpwl_of(const Instance& inst, const std::vector<geom::Rect>& rects) {
  double total = 0.0;
  for (const auto& net : inst.nets) {
    if (net.size() < 2) continue;
    double x0 = 1e300, x1 = -1e300, y0 = 1e300, y1 = -1e300;
    for (int b : net) {
      const geom::Point c = rects[static_cast<std::size_t>(b)].center();
      x0 = std::min(x0, c.x);
      x1 = std::max(x1, c.x);
      y0 = std::min(y0, c.y);
      y1 = std::max(y1, c.y);
    }
    total += (x1 - x0) + (y1 - y0);
  }
  return total;
}

void HpwlCache::reset(const Instance& inst) {
  inst_ = &inst;
  block_nets_.assign(inst.blocks.size(), {});
  for (std::size_t n = 0; n < inst.nets.size(); ++n) {
    for (int b : inst.nets[n]) {
      block_nets_[static_cast<std::size_t>(b)].push_back(static_cast<int>(n));
    }
  }
  boxes_.assign(inst.nets.size(), {});
  dirty_.assign(inst.nets.size(), 0);
}

void HpwlCache::rescan(std::size_t net, const std::vector<geom::Rect>& rects) {
  // Same scan order and min/max chain as hpwl_of, so each extent is the
  // bitwise-identical double.
  NetBox box{1e300, -1e300, 1e300, -1e300};
  for (int b : inst_->nets[net]) {
    const geom::Point c = rects[static_cast<std::size_t>(b)].center();
    box.x0 = std::min(box.x0, c.x);
    box.x1 = std::max(box.x1, c.x);
    box.y0 = std::min(box.y0, c.y);
    box.y1 = std::max(box.y1, c.y);
  }
  boxes_[net] = box;
}

double HpwlCache::sum() const {
  // Accumulation order matches hpwl_of exactly: nets in index order, one
  // (dx) + (dy) term each, short nets skipped before the add.
  double total = 0.0;
  for (std::size_t n = 0; n < inst_->nets.size(); ++n) {
    if (inst_->nets[n].size() < 2) continue;
    const NetBox& b = boxes_[n];
    total += (b.x1 - b.x0) + (b.y1 - b.y0);
  }
  return total;
}

double HpwlCache::recompute(const std::vector<geom::Rect>& rects) {
  for (std::size_t n = 0; n < inst_->nets.size(); ++n) rescan(n, rects);
  return sum();
}

double HpwlCache::update(const std::vector<geom::Rect>& rects,
                         const std::vector<int>& moved) {
  for (int b : moved) {
    for (int n : block_nets_[static_cast<std::size_t>(b)]) {
      if (!dirty_[static_cast<std::size_t>(n)]) {
        dirty_[static_cast<std::size_t>(n)] = 1;
        rescan(static_cast<std::size_t>(n), rects);
      }
    }
  }
  for (int b : moved) {
    for (int n : block_nets_[static_cast<std::size_t>(b)]) {
      dirty_[static_cast<std::size_t>(n)] = 0;
    }
  }
  return sum();
}

int constraint_violations(const Instance& inst,
                          const std::vector<geom::Rect>& rects, double tol,
                          int* total_items) {
  const auto& cs = inst.constraints;
  if (total_items) *total_items = 0;
  if (cs.empty()) return 0;
  int items = 0;
  int violated = 0;
  // One item per constraint element; the item count is a pure function of
  // the constraint spec (never of the placement), so violated/items is a
  // stable fraction the metaheuristic penalty can anneal against.
  auto check = [&](bool ok) {
    ++items;
    if (!ok) ++violated;
  };

  // All vertical-symmetry constraints share one vertical axis; same for
  // horizontal.  Derive each axis from the first constraint that pins it.
  auto axis_of = [&](bool vertical) -> std::optional<double> {
    for (const auto& ss : cs.self_syms) {
      if (ss.vertical == vertical) {
        const auto c = rects[static_cast<std::size_t>(ss.block)].center();
        return vertical ? c.x : c.y;
      }
    }
    for (const auto& sp : cs.sym_pairs) {
      if (sp.vertical == vertical) {
        const auto ca = rects[static_cast<std::size_t>(sp.a)].center();
        const auto cb = rects[static_cast<std::size_t>(sp.b)].center();
        return vertical ? (ca.x + cb.x) / 2.0 : (ca.y + cb.y) / 2.0;
      }
    }
    return std::nullopt;
  };

  for (bool vertical : {true, false}) {
    const auto axis = axis_of(vertical);
    if (!axis) continue;
    for (const auto& ss : cs.self_syms) {
      if (ss.vertical != vertical) continue;
      const auto c = rects[static_cast<std::size_t>(ss.block)].center();
      check(std::abs((vertical ? c.x : c.y) - *axis) <= tol);
    }
    for (const auto& sp : cs.sym_pairs) {
      if (sp.vertical != vertical) continue;
      const auto& ra = rects[static_cast<std::size_t>(sp.a)];
      const auto& rb = rects[static_cast<std::size_t>(sp.b)];
      // Mirrored twins must be congruent: a reflection maps each block onto
      // its partner's footprint, so mismatched dimensions can never satisfy
      // the pair — including the pair the axis itself was derived from,
      // whose midpoint check is vacuously true by construction.
      bool ok = std::abs(ra.w - rb.w) <= tol && std::abs(ra.h - rb.h) <= tol;
      if (vertical) {
        // Mirrored about x = axis, same row.
        ok = ok &&
             std::abs((ra.center().x + rb.center().x) / 2.0 - *axis) <= tol &&
             std::abs(ra.y - rb.y) <= tol;
      } else {
        ok = ok &&
             std::abs((ra.center().y + rb.center().y) / 2.0 - *axis) <= tol &&
             std::abs(ra.x - rb.x) <= tol;
      }
      check(ok);
    }
  }

  for (const auto& ag : cs.align_groups) {
    if (ag.blocks.size() < 2) continue;
    const auto& r0 = rects[static_cast<std::size_t>(ag.blocks[0])];
    for (std::size_t i = 1; i < ag.blocks.size(); ++i) {
      const auto& ri = rects[static_cast<std::size_t>(ag.blocks[i])];
      // One item per follower: a common bottom (left) edge with the leader.
      check(ag.horizontal ? std::abs(ri.y - r0.y) <= tol
                          : std::abs(ri.x - r0.x) <= tol);
    }
  }

  // Matching groups: every member takes the same footprint.
  for (const auto& mg : cs.match_groups) {
    if (mg.blocks.size() < 2) continue;
    const auto& r0 = rects[static_cast<std::size_t>(mg.blocks[0])];
    for (std::size_t i = 1; i < mg.blocks.size(); ++i) {
      const auto& ri = rects[static_cast<std::size_t>(mg.blocks[i])];
      check(std::abs(ri.w - r0.w) <= tol && std::abs(ri.h - r0.h) <= tol);
    }
  }

  // Keep-out regions: no block may overlap a forbidden rectangle.  Shrink
  // by tol on each side so a shared edge within tolerance does not count as
  // an overlap (geom::Rect is half-open already; this guards fp noise).
  for (const auto& ko : cs.keep_outs) {
    geom::Rect shrunk = ko.region;
    shrunk.x += tol;
    shrunk.y += tol;
    shrunk.w = std::max(0.0, shrunk.w - 2.0 * tol);
    shrunk.h = std::max(0.0, shrunk.h - 2.0 * tol);
    if (shrunk.w <= 0.0 || shrunk.h <= 0.0) continue;
    bool clear = true;
    for (const auto& r : rects) {
      if (r.overlaps(shrunk)) {
        clear = false;
        break;
      }
    }
    check(clear);
  }

  // Pre-placed blocks: lower-left corner pinned.
  for (const auto& pp : cs.preplaced) {
    const auto& r = rects[static_cast<std::size_t>(pp.block)];
    check(std::abs(r.x - pp.x) <= tol && std::abs(r.y - pp.y) <= tol);
  }
  if (total_items) *total_items = items;
  return violated;
}

bool constraints_satisfied(const Instance& inst,
                           const std::vector<geom::Rect>& rects, double tol) {
  return constraint_violations(inst, rects, tol, nullptr) == 0;
}

Evaluation evaluate_floorplan(const Instance& inst,
                              const std::vector<geom::Rect>& rects,
                              const RewardWeights& w, double constraint_tol) {
  Evaluation ev;
  const geom::Rect bb = geom::bounding_box(rects);
  ev.area = bb.area();
  const double total = inst.total_block_area();
  ev.dead_space = ev.area > 0.0 ? 1.0 - total / ev.area : 1.0;
  ev.hpwl = hpwl_of(inst, rects);
  ev.aspect = geom::aspect_ratio(bb);
  ev.constraint_violations =
      constraint_violations(inst, rects, constraint_tol,
                            &ev.constraint_items);
  ev.constraints_ok = ev.constraint_violations == 0;
  if (!ev.constraints_ok) {
    ev.reward = w.violation_penalty;
    return ev;
  }
  // Zero-referenced Eq. (5): a perfect packing (zero dead space) at the
  // reference wirelength and target aspect ratio scores 0.
  double r = w.alpha * (ev.area / std::max(1e-12, total) - 1.0) +
             w.beta * (ev.hpwl / inst.hpwl_ref - 1.0);
  if (inst.target_aspect) {
    const double d = *inst.target_aspect - ev.aspect;
    r += w.gamma * d * d;
  }
  ev.reward = -r;
  return ev;
}

}  // namespace afp::floorplan
