#include "nn/rgcn_layer.hpp"

#include <algorithm>
#include <cmath>

namespace afp::nn {

RGCNLayer::RGCNLayer(int in_dim, int out_dim, int num_relations,
                     Activation act, std::mt19937_64& rng)
    : act_(act) {
  const float bound = 1.0f / std::sqrt(static_cast<float>(in_dim));
  self_weight_ = register_param(
      "self_weight",
      num::Tensor::uniform({in_dim, out_dim}, rng, -bound, bound, true));
  bias_ = register_param(
      "bias", num::Tensor::uniform({out_dim}, rng, -bound, bound, true));
  for (int r = 0; r < num_relations; ++r) {
    rel_weights_.push_back(register_param(
        "rel_weight" + std::to_string(r),
        num::Tensor::uniform({in_dim, out_dim}, rng, -bound, bound, true)));
  }
}

num::Tensor RGCNLayer::self_base(const num::Tensor& h) const {
  return num::add_rowvec(num::matmul(h, self_weight_), bias_);
}

num::Tensor RGCNLayer::forward(
    const num::Tensor& h, const std::vector<num::Tensor>& adj_norm) const {
  if (static_cast<int>(adj_norm.size()) != num_relations()) {
    throw std::invalid_argument(
        "RGCNLayer: expected one adjacency per relation");
  }
  num::Tensor out = self_base(h);
  for (std::size_t r = 0; r < rel_weights_.size(); ++r) {
    // A_r @ H @ W_r; A_r is [N, N] constant.
    out = num::add(out,
                   num::matmul(num::matmul(adj_norm[r], h), rel_weights_[r]));
  }
  return activate(out, act_);
}

num::Tensor RGCNLayer::forward(
    const num::Tensor& h, const std::vector<num::SparseCSR>& adj_norm) const {
  if (static_cast<int>(adj_norm.size()) != num_relations()) {
    throw std::invalid_argument(
        "RGCNLayer: expected one adjacency per relation");
  }
  num::Tensor out = self_base(h);
  for (std::size_t r = 0; r < rel_weights_.size(); ++r) {
    if (adj_norm[r].empty()) continue;  // relation contributes nothing
    // A_r @ (H @ W_r): the dense product first keeps the SpMM operand at
    // out_dim columns; associativity makes it equal to (A_r H) W_r.
    out = num::add(out,
                   num::spmm(adj_norm[r], num::matmul(h, rel_weights_[r])));
  }
  return activate(out, act_);
}

std::vector<num::SparseCSR> build_adjacency_csr(
    int num_nodes, int num_relations,
    const std::vector<std::vector<std::pair<int, int>>>& edges_per_relation) {
  if (static_cast<int>(edges_per_relation.size()) != num_relations) {
    throw std::invalid_argument("build_adjacency: relation count mismatch");
  }
  std::vector<num::SparseCSR> adj;
  adj.reserve(edges_per_relation.size());
  for (const auto& edges : edges_per_relation) {
    // Directed entry list (both directions of each undirected edge),
    // deduplicated so parallel edges count once — matching the dense
    // semantics where a[u][v] is set, not summed.
    std::vector<std::pair<int, int>> entries;
    entries.reserve(edges.size() * 2);
    for (const auto& [u, v] : edges) {
      if (u < 0 || u >= num_nodes || v < 0 || v >= num_nodes) {
        throw std::invalid_argument("build_adjacency: node index out of range");
      }
      entries.emplace_back(u, v);
      entries.emplace_back(v, u);
    }
    std::sort(entries.begin(), entries.end());
    entries.erase(std::unique(entries.begin(), entries.end()), entries.end());

    // Degree = distinct neighbors per row; value = 1/degree.
    std::vector<int> degree(static_cast<std::size_t>(num_nodes), 0);
    for (const auto& [u, v] : entries) ++degree[static_cast<std::size_t>(u)];
    std::vector<std::tuple<int, int, float>> coo;
    coo.reserve(entries.size());
    for (const auto& [u, v] : entries) {
      coo.emplace_back(u, v,
                       1.0f / static_cast<float>(degree[static_cast<std::size_t>(u)]));
    }
    adj.push_back(num::SparseCSR::from_coo(num_nodes, num_nodes, std::move(coo)));
  }
  return adj;
}

std::vector<num::Tensor> build_adjacency(
    int num_nodes, int num_relations,
    const std::vector<std::vector<std::pair<int, int>>>& edges_per_relation) {
  const auto csr =
      build_adjacency_csr(num_nodes, num_relations, edges_per_relation);
  std::vector<num::Tensor> adj;
  adj.reserve(csr.size());
  for (const auto& m : csr) adj.push_back(m.to_dense());
  return adj;
}

}  // namespace afp::nn
