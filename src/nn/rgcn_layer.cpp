#include "nn/rgcn_layer.hpp"

#include <cmath>

namespace afp::nn {

RGCNLayer::RGCNLayer(int in_dim, int out_dim, int num_relations,
                     Activation act, std::mt19937_64& rng)
    : act_(act) {
  const float bound = 1.0f / std::sqrt(static_cast<float>(in_dim));
  self_weight_ = register_param(
      "self_weight",
      num::Tensor::uniform({in_dim, out_dim}, rng, -bound, bound, true));
  bias_ = register_param(
      "bias", num::Tensor::uniform({out_dim}, rng, -bound, bound, true));
  for (int r = 0; r < num_relations; ++r) {
    rel_weights_.push_back(register_param(
        "rel_weight" + std::to_string(r),
        num::Tensor::uniform({in_dim, out_dim}, rng, -bound, bound, true)));
  }
}

num::Tensor RGCNLayer::forward(
    const num::Tensor& h, const std::vector<num::Tensor>& adj_norm) const {
  if (static_cast<int>(adj_norm.size()) != num_relations()) {
    throw std::invalid_argument(
        "RGCNLayer: expected one adjacency per relation");
  }
  num::Tensor out = num::add_rowvec(num::matmul(h, self_weight_), bias_);
  for (std::size_t r = 0; r < rel_weights_.size(); ++r) {
    // A_r @ H @ W_r; A_r is [N, N] constant.
    out = num::add(out,
                   num::matmul(num::matmul(adj_norm[r], h), rel_weights_[r]));
  }
  return activate(out, act_);
}

std::vector<num::Tensor> build_adjacency(
    int num_nodes, int num_relations,
    const std::vector<std::vector<std::pair<int, int>>>& edges_per_relation) {
  if (static_cast<int>(edges_per_relation.size()) != num_relations) {
    throw std::invalid_argument("build_adjacency: relation count mismatch");
  }
  std::vector<num::Tensor> adj;
  adj.reserve(edges_per_relation.size());
  for (const auto& edges : edges_per_relation) {
    std::vector<float> a(static_cast<std::size_t>(num_nodes) * num_nodes,
                         0.0f);
    std::vector<int> degree(num_nodes, 0);
    for (const auto& [u, v] : edges) {
      if (u < 0 || u >= num_nodes || v < 0 || v >= num_nodes) {
        throw std::invalid_argument("build_adjacency: node index out of range");
      }
      // Undirected: message flows both ways.
      a[static_cast<std::size_t>(u) * num_nodes + v] = 1.0f;
      a[static_cast<std::size_t>(v) * num_nodes + u] = 1.0f;
    }
    for (int u = 0; u < num_nodes; ++u) {
      int deg = 0;
      for (int v = 0; v < num_nodes; ++v)
        if (a[static_cast<std::size_t>(u) * num_nodes + v] > 0.0f) ++deg;
      degree[u] = deg;
    }
    for (int u = 0; u < num_nodes; ++u) {
      if (degree[u] == 0) continue;
      const float inv = 1.0f / static_cast<float>(degree[u]);
      for (int v = 0; v < num_nodes; ++v)
        a[static_cast<std::size_t>(u) * num_nodes + v] *= inv;
    }
    adj.push_back(num::Tensor::from_vector({num_nodes, num_nodes}, std::move(a)));
  }
  return adj;
}

}  // namespace afp::nn
