// Masked categorical distribution for invalid-action masking
// (Huang & Ontañón, FLAIRS 2022): invalid logits are replaced with a large
// negative constant so their probability underflows to exactly zero, which
// also zeroes their gradient contributions.
#pragma once

#include <random>
#include <vector>

#include "numeric/ops.hpp"

namespace afp::nn {

/// Batched masked categorical over the columns of a [B, N] logits tensor.
class MaskedCategorical {
 public:
  /// `mask` is row-major [B, N] with 1 = valid, 0 = invalid.  Each row must
  /// contain at least one valid entry.
  MaskedCategorical(const num::Tensor& logits, const std::vector<float>& mask);

  /// Samples one action per row (no gradient).
  std::vector<int> sample(std::mt19937_64& rng) const;

  /// Most likely action per row (no gradient).
  std::vector<int> mode() const;

  /// log pi(a | s) for the given per-row actions: differentiable [B].
  num::Tensor log_prob(const std::vector<int>& actions) const;

  /// Per-row entropy: differentiable [B, 1] (axis reductions keep the
  /// reduced axis; see numeric/ops.hpp).
  num::Tensor entropy() const;

  /// Masked logits (differentiable), for diagnostics.
  const num::Tensor& masked_logits() const { return masked_logits_; }

 private:
  num::Tensor masked_logits_;  ///< [B, N]
  num::Tensor log_probs_;      ///< [B, N]
  int batch_, n_;
};

}  // namespace afp::nn
