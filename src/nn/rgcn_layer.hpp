// Relational graph convolution layer (Schlichtkrull et al., ESWC 2018),
// equation (2) of the paper:
//
//   h'_u = act( W0 h_u + sum_r sum_{v in N_r(u)} (1/c_{u,r}) W_r h_v )
//
// Two aggregation paths are provided.  The sparse path is the default for
// the models: the caller supplies, per relation, a normalized adjacency in
// CSR form (A_r[u][v] = 1/c_{u,r} for v in N_r(u)) and the layer computes
// act(H W0 + sum_r A_r (H W_r)) with SpMM in O(E * D).  The dense path
// (one [N, N] tensor per relation) is kept for tests and small ad-hoc
// graphs.
#pragma once

#include <memory>
#include <random>
#include <vector>

#include "nn/layers.hpp"
#include "numeric/sparse.hpp"

namespace afp::nn {

class RGCNLayer final : public Module {
 public:
  RGCNLayer(int in_dim, int out_dim, int num_relations, Activation act,
            std::mt19937_64& rng);

  /// h: [N, in_dim]; adj_norm: one [N, N] normalized adjacency per relation
  /// (constant, no grad).  Returns [N, out_dim].
  num::Tensor forward(const num::Tensor& h,
                      const std::vector<num::Tensor>& adj_norm) const;

  /// Sparse variant: one CSR normalized adjacency per relation.  Empty
  /// relations (nnz == 0) are skipped entirely.
  num::Tensor forward(const num::Tensor& h,
                      const std::vector<num::SparseCSR>& adj_norm) const;

  int num_relations() const { return static_cast<int>(rel_weights_.size()); }

 private:
  num::Tensor self_base(const num::Tensor& h) const;

  num::Tensor self_weight_;  ///< W0 [in, out]
  num::Tensor bias_;         ///< [out]
  std::vector<num::Tensor> rel_weights_;
  Activation act_;
};

/// Builds the per-relation normalized adjacency matrices A_r in CSR form
/// from edge lists, in O(E log E) per relation (no N x N materialization).
/// Edges are undirected and deduplicated; normalization c_{u,r} = |N_r(u)|
/// (mean aggregation per relation), the standard R-GCN choice.
std::vector<num::SparseCSR> build_adjacency_csr(
    int num_nodes, int num_relations,
    const std::vector<std::vector<std::pair<int, int>>>& edges_per_relation);

/// Dense counterpart: densified CSR matrices (legacy callers and tests).
std::vector<num::Tensor> build_adjacency(
    int num_nodes, int num_relations,
    const std::vector<std::vector<std::pair<int, int>>>& edges_per_relation);

}  // namespace afp::nn
