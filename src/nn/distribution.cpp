#include "nn/distribution.hpp"

#include <stdexcept>

namespace afp::nn {

namespace {
constexpr float kNegInf = -1e9f;
}

MaskedCategorical::MaskedCategorical(const num::Tensor& logits,
                                     const std::vector<float>& mask) {
  if (logits.dim() != 2) {
    throw std::invalid_argument("MaskedCategorical: logits must be [B, N]");
  }
  batch_ = logits.shape()[0];
  n_ = logits.shape()[1];
  if (static_cast<std::int64_t>(mask.size()) != logits.size()) {
    throw std::invalid_argument("MaskedCategorical: mask size mismatch");
  }
  for (int b = 0; b < batch_; ++b) {
    bool any = false;
    for (int i = 0; i < n_; ++i)
      any = any || mask[static_cast<std::size_t>(b) * n_ + i] > 0.5f;
    if (!any) {
      throw std::invalid_argument(
          "MaskedCategorical: row " + std::to_string(b) +
          " has no valid action");
    }
  }
  // masked = logits * m + (1 - m) * (-1e9).  The multiplicative form keeps
  // gradients flowing only through valid entries.
  num::Tensor m = num::Tensor::from_vector(logits.shape(), mask);
  std::vector<float> offs(mask.size());
  for (std::size_t i = 0; i < mask.size(); ++i)
    offs[i] = (1.0f - mask[i]) * kNegInf;
  num::Tensor off = num::Tensor::from_vector(logits.shape(), std::move(offs));
  masked_logits_ = num::add(num::mul(logits, m), off);
  log_probs_ = num::log_softmax_rows(masked_logits_);
}

std::vector<int> MaskedCategorical::sample(std::mt19937_64& rng) const {
  std::vector<int> out(static_cast<std::size_t>(batch_));
  std::uniform_real_distribution<double> unif(0.0, 1.0);
  for (int b = 0; b < batch_; ++b) {
    const float* lp = log_probs_.data() + static_cast<std::size_t>(b) * n_;
    double u = unif(rng);
    double cum = 0.0;
    int pick = -1;
    for (int i = 0; i < n_; ++i) {
      cum += std::exp(static_cast<double>(lp[i]));
      if (u <= cum) {
        pick = i;
        break;
      }
    }
    if (pick < 0) {
      // Numerical tail: fall back to the most likely valid action.
      float best = kNegInf;
      for (int i = 0; i < n_; ++i)
        if (lp[i] > best) {
          best = lp[i];
          pick = i;
        }
    }
    out[static_cast<std::size_t>(b)] = pick;
  }
  return out;
}

std::vector<int> MaskedCategorical::mode() const {
  std::vector<int> out(static_cast<std::size_t>(batch_));
  for (int b = 0; b < batch_; ++b) {
    const float* lp = log_probs_.data() + static_cast<std::size_t>(b) * n_;
    int best = 0;
    for (int i = 1; i < n_; ++i)
      if (lp[i] > lp[best]) best = i;
    out[static_cast<std::size_t>(b)] = best;
  }
  return out;
}

num::Tensor MaskedCategorical::log_prob(const std::vector<int>& actions) const {
  return num::gather_per_row(log_probs_, actions);
}

num::Tensor MaskedCategorical::entropy() const {
  // H = -sum p log p.  For invalid entries p == 0 exactly (exp(-1e9 - lse)
  // underflows), so p * log p evaluates to -0 and contributes nothing.
  num::Tensor p = num::exp_op(log_probs_);
  return num::neg(num::sum_axis1(num::mul(p, log_probs_)));
}

}  // namespace afp::nn
