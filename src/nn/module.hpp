// Lightweight module/parameter registry, in the spirit of torch.nn.Module.
//
// Parameters are Tensors with requires_grad=true that live for the lifetime
// of the module; submodules are registered by non-owning pointer (the
// parent owns them as data members).
#pragma once

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "numeric/tensor.hpp"

namespace afp::nn {

class Module {
 public:
  virtual ~Module() = default;
  Module() = default;
  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  /// All trainable parameters of this module and its submodules.
  std::vector<num::Tensor> parameters() const {
    std::vector<num::Tensor> out;
    collect(out);
    return out;
  }

  /// Named parameters ("sub.weight" style), for checkpoints.
  std::map<std::string, num::Tensor> named_parameters(
      const std::string& prefix = "") const {
    std::map<std::string, num::Tensor> out;
    collect_named(prefix, out);
    return out;
  }

  /// Total scalar parameter count.
  std::int64_t parameter_count() const {
    std::int64_t n = 0;
    for (const auto& p : parameters()) n += p.size();
    return n;
  }

 protected:
  num::Tensor register_param(std::string name, num::Tensor t) {
    params_.emplace_back(std::move(name), t);
    return t;
  }
  void register_module(std::string name, const Module* m) {
    children_.emplace_back(std::move(name), m);
  }

 private:
  void collect(std::vector<num::Tensor>& out) const {
    for (const auto& [name, p] : params_) out.push_back(p);
    for (const auto& [name, c] : children_) c->collect(out);
  }
  void collect_named(const std::string& prefix,
                     std::map<std::string, num::Tensor>& out) const {
    for (const auto& [name, p] : params_) {
      out.emplace(prefix.empty() ? name : prefix + "." + name, p);
    }
    for (const auto& [name, c] : children_) {
      c->collect_named(prefix.empty() ? name : prefix + "." + name, out);
    }
  }

  std::vector<std::pair<std::string, num::Tensor>> params_;
  std::vector<std::pair<std::string, const Module*>> children_;
};

}  // namespace afp::nn
