// Module-level checkpointing: saves/restores every named parameter of a
// Module tree using the afp::num binary tensor format.
#pragma once

#include <string>

#include "nn/module.hpp"
#include "numeric/serialize.hpp"

namespace afp::nn {

/// Writes all named parameters of `m` to `path`.
inline void save_module(const Module& m, const std::string& path) {
  num::save_tensors(path, m.named_parameters());
}

/// Loads a checkpoint written by save_module into `m`.  Throws
/// std::runtime_error when a parameter is missing or has a different
/// shape (architecture mismatch).
inline void load_module(Module& m, const std::string& path) {
  auto params = m.named_parameters();
  num::load_into(num::load_tensors(path), params);
}

}  // namespace afp::nn
