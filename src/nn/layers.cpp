#include "nn/layers.hpp"

#include <cmath>

namespace afp::nn {

num::Tensor activate(const num::Tensor& x, Activation act) {
  switch (act) {
    case Activation::kNone:
      return x;
    case Activation::kRelu:
      return num::relu(x);
    case Activation::kTanh:
      return num::tanh_op(x);
    case Activation::kSigmoid:
      return num::sigmoid(x);
  }
  return x;
}

Linear::Linear(int in_features, int out_features, std::mt19937_64& rng)
    : in_(in_features), out_(out_features) {
  const float bound = 1.0f / std::sqrt(static_cast<float>(in_features));
  weight = register_param(
      "weight", num::Tensor::uniform({in_features, out_features}, rng, -bound,
                                     bound, /*requires_grad=*/true));
  bias = register_param("bias", num::Tensor::uniform({out_features}, rng,
                                                     -bound, bound, true));
}

Conv2d::Conv2d(int in_channels, int out_channels, int kernel, int stride,
               int pad, std::mt19937_64& rng)
    : stride_(stride), pad_(pad) {
  const int fan_in = in_channels * kernel * kernel;
  const float bound = 1.0f / std::sqrt(static_cast<float>(fan_in));
  weight = register_param(
      "weight",
      num::Tensor::uniform({out_channels, in_channels, kernel, kernel}, rng,
                           -bound, bound, true));
  bias = register_param(
      "bias", num::Tensor::uniform({out_channels}, rng, -bound, bound, true));
}

ConvTranspose2d::ConvTranspose2d(int in_channels, int out_channels, int kernel,
                                 int stride, int pad, std::mt19937_64& rng)
    : stride_(stride), pad_(pad) {
  const int fan_in = in_channels * kernel * kernel;
  const float bound = 1.0f / std::sqrt(static_cast<float>(fan_in));
  weight = register_param(
      "weight",
      num::Tensor::uniform({in_channels, out_channels, kernel, kernel}, rng,
                           -bound, bound, true));
  bias = register_param(
      "bias", num::Tensor::uniform({out_channels}, rng, -bound, bound, true));
}

MLP::MLP(const std::vector<int>& dims, Activation hidden, Activation output,
         std::mt19937_64& rng)
    : hidden_(hidden), output_(output) {
  if (dims.size() < 2) {
    throw std::invalid_argument("MLP: need at least input and output dims");
  }
  for (std::size_t i = 0; i + 1 < dims.size(); ++i) {
    layers_.push_back(std::make_unique<Linear>(dims[i], dims[i + 1], rng));
    register_module("fc" + std::to_string(i), layers_.back().get());
  }
}

num::Tensor MLP::forward(const num::Tensor& x) const {
  num::Tensor h = x;
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    const bool last = (i + 1 == layers_.size());
    const Activation act = last ? output_ : hidden_;
    if (act == Activation::kRelu) {
      h = layers_[i]->forward_relu(h);
    } else {
      h = activate(layers_[i]->forward(h), act);
    }
  }
  return h;
}

}  // namespace afp::nn
