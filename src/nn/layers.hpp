// Standard neural-network layers built on the afp::num autograd engine.
#pragma once

#include <random>
#include <vector>

#include "nn/module.hpp"
#include "numeric/ops.hpp"

namespace afp::nn {

enum class Activation { kNone, kRelu, kTanh, kSigmoid };

/// Applies an Activation to a tensor.
num::Tensor activate(const num::Tensor& x, Activation act);

/// Fully connected layer y = x @ W + b with W: [in, out].
/// Initialization: U(-1/sqrt(in), 1/sqrt(in)) for both W and b.
class Linear final : public Module {
 public:
  Linear(int in_features, int out_features, std::mt19937_64& rng);

  num::Tensor forward(const num::Tensor& x) const {
    return num::linear(x, weight, bias);
  }

  /// Fused linear + relu (one output pass, masked backward); equivalent to
  /// activate(forward(x), kRelu).
  num::Tensor forward_relu(const num::Tensor& x) const {
    return num::linear_relu(x, weight, bias);
  }

  int in_features() const { return in_; }
  int out_features() const { return out_; }

  num::Tensor weight;
  num::Tensor bias;

 private:
  int in_, out_;
};

/// 2-D convolution layer over NCHW inputs.
class Conv2d final : public Module {
 public:
  Conv2d(int in_channels, int out_channels, int kernel, int stride, int pad,
         std::mt19937_64& rng);

  num::Tensor forward(const num::Tensor& x) const {
    return num::conv2d(x, weight, bias, stride_, pad_);
  }

  num::Tensor weight;  ///< [OC, IC, K, K]
  num::Tensor bias;    ///< [OC]

 private:
  int stride_, pad_;
};

/// 2-D transposed convolution layer over NCHW inputs.
class ConvTranspose2d final : public Module {
 public:
  ConvTranspose2d(int in_channels, int out_channels, int kernel, int stride,
                  int pad, std::mt19937_64& rng);

  num::Tensor forward(const num::Tensor& x) const {
    return num::conv_transpose2d(x, weight, bias, stride_, pad_);
  }

  num::Tensor weight;  ///< [IC, OC, K, K]
  num::Tensor bias;    ///< [OC]

 private:
  int stride_, pad_;
};

/// Multi-layer perceptron with a uniform hidden activation and an optional
/// output activation.
class MLP final : public Module {
 public:
  /// `dims` = {in, h1, ..., out}; requires at least {in, out}.
  MLP(const std::vector<int>& dims, Activation hidden, Activation output,
      std::mt19937_64& rng);

  num::Tensor forward(const num::Tensor& x) const;

 private:
  std::vector<std::unique_ptr<Linear>> layers_;
  Activation hidden_, output_;
};

}  // namespace afp::nn
