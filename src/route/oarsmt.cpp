#include "route/oarsmt.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>
#include <limits>
#include <queue>
#include <set>
#include <stdexcept>

namespace afp::route {

double SteinerTree::length() const {
  double total = 0.0;
  for (const auto& [a, b] : edges) {
    total += geom::manhattan(nodes[static_cast<std::size_t>(a)],
                             nodes[static_cast<std::size_t>(b)]);
  }
  return total;
}

geom::Point block_pin(const geom::Rect& rect, int routing_direction,
                      double offset) {
  switch (routing_direction & 3) {
    case 0: return {rect.x + rect.w / 2.0, rect.top() + offset};     // N
    case 1: return {rect.right() + offset, rect.y + rect.h / 2.0};   // E
    case 2: return {rect.x + rect.w / 2.0, rect.y - offset};         // S
    default: return {rect.x - offset, rect.y + rect.h / 2.0};        // W
  }
}

geom::Point block_pin_for_net(const geom::Rect& rect, int routing_direction,
                              std::size_t net_index) {
  geom::Point p = block_pin(rect, routing_direction);
  // Slide along the edge: slots at -2/6 .. +2/6 of the edge length.
  const double t = (static_cast<double>(net_index % 5) - 2.0) / 6.0;
  if ((routing_direction & 1) == 0) {
    p.x += t * rect.w;  // N/S edges run along x
  } else {
    p.y += t * rect.h;  // E/W edges run along y
  }
  return p;
}

namespace {

/// Escape-graph router over the Hanan grid of terminals + obstacle edges.
class EscapeGraph {
 public:
  EscapeGraph(std::span<const geom::Point> terminals,
              std::span<const geom::Rect> obstacles, double clearance) {
    for (const auto& o : obstacles) {
      const geom::Rect s = o.inflated(-clearance);
      if (!s.empty()) obstacles_.push_back(s);
    }
    std::set<double> xset, yset;
    for (const auto& t : terminals) {
      xset.insert(t.x);
      yset.insert(t.y);
    }
    for (const auto& o : obstacles_) {
      xset.insert(o.x - clearance);
      xset.insert(o.right() + clearance);
      yset.insert(o.y - clearance);
      yset.insert(o.top() + clearance);
    }
    xs_.assign(xset.begin(), xset.end());
    ys_.assign(yset.begin(), yset.end());
    nx_ = static_cast<int>(xs_.size());
    ny_ = static_cast<int>(ys_.size());
    // Occlusion bitmaps are range-marked per obstacle instead of testing
    // every grid point against every obstacle: a vertex (edge midpoint) is
    // covered exactly when its coordinate falls in the obstacle's half-open
    // span, so binary-searching the span's index range marks the same
    // vertices the old O(grid x obstacles) scan did.
    xmid_.resize(nx_ > 0 ? static_cast<std::size_t>(nx_ - 1) : 0);
    for (std::size_t i = 0; i + 1 < xs_.size(); ++i) {
      xmid_[i] = (xs_[i] + xs_[i + 1]) / 2.0;
    }
    ymid_.resize(ny_ > 0 ? static_cast<std::size_t>(ny_ - 1) : 0);
    for (std::size_t j = 0; j + 1 < ys_.size(); ++j) {
      ymid_[j] = (ys_[j] + ys_[j + 1]) / 2.0;
    }
    blocked_.assign(static_cast<std::size_t>(nx_) * ny_, false);
    hblocked_.assign(xmid_.size() * static_cast<std::size_t>(ny_), false);
    vblocked_.assign(static_cast<std::size_t>(nx_) * ymid_.size(), false);
    for (const auto& o : obstacles_) {
      mark_covered(xs_, ys_, o, nx_, blocked_);
      mark_covered(xmid_, ys_, o, nx_ - 1, hblocked_);
      mark_covered(xs_, ymid_, o, nx_, vblocked_);
    }
    const std::size_t nv = blocked_.size();
    dist_.assign(nv, std::numeric_limits<double>::infinity());
    prev_.assign(nv, nv);
    stamp_.assign(nv, 0);
  }

  int nx() const { return nx_; }
  int ny() const { return ny_; }
  std::size_t id(int i, int j) const {
    return static_cast<std::size_t>(j) * nx_ + i;
  }
  geom::Point point(std::size_t v) const {
    return {xs_[v % static_cast<std::size_t>(nx_)],
            ys_[v / static_cast<std::size_t>(nx_)]};
  }

  /// Nearest graph vertex to `p` (terminals are members by construction).
  std::size_t vertex_of(const geom::Point& p) const {
    const auto xi = std::lower_bound(xs_.begin(), xs_.end(), p.x - 1e-9);
    const auto yi = std::lower_bound(ys_.begin(), ys_.end(), p.y - 1e-9);
    const int i = static_cast<int>(std::min<std::ptrdiff_t>(
        xi - xs_.begin(), nx_ - 1));
    const int j = static_cast<int>(std::min<std::ptrdiff_t>(
        yi - ys_.begin(), ny_ - 1));
    return id(i, j);
  }

  /// Multi-source Dijkstra from `sources` until any vertex of `targets`
  /// is settled.  Returns the path (vertex ids) or empty when unreachable.
  /// Scratch arrays are epoch-stamped so consecutive rounds of the Steiner
  /// construction skip the O(vertices) reset.
  std::vector<std::size_t> shortest_path(
      const std::vector<std::size_t>& sources,
      const std::set<std::size_t>& targets) const {
    const std::size_t nv = blocked_.size();
    ++epoch_;
    const double inf = std::numeric_limits<double>::infinity();
    auto dist_of = [&](std::size_t v) {
      return stamp_[v] == epoch_ ? dist_[v] : inf;
    };
    using QE = std::pair<double, std::size_t>;
    std::priority_queue<QE, std::vector<QE>, std::greater<>> pq;
    for (std::size_t s : sources) {
      if (blocked_[s]) continue;
      stamp_[s] = epoch_;
      dist_[s] = 0.0;
      prev_[s] = nv;
      pq.emplace(0.0, s);
    }
    std::size_t goal = nv;
    while (!pq.empty()) {
      const auto [d, v] = pq.top();
      pq.pop();
      if (d > dist_of(v)) continue;
      if (targets.count(v)) {
        goal = v;
        break;
      }
      const int i = static_cast<int>(v % static_cast<std::size_t>(nx_));
      const int j = static_cast<int>(v / static_cast<std::size_t>(nx_));
      const std::array<std::pair<int, int>, 4> nbrs{
          {{i - 1, j}, {i + 1, j}, {i, j - 1}, {i, j + 1}}};
      for (const auto& [ni, nj] : nbrs) {
        if (ni < 0 || ni >= nx_ || nj < 0 || nj >= ny_) continue;
        const std::size_t u = id(ni, nj);
        if (blocked_[u] || edge_blocked(i, j, ni, nj)) continue;
        const double w =
            std::abs(xs_[static_cast<std::size_t>(ni)] - xs_[static_cast<std::size_t>(i)]) +
            std::abs(ys_[static_cast<std::size_t>(nj)] - ys_[static_cast<std::size_t>(j)]);
        if (dist_[v] + w < dist_of(u) - 1e-12) {
          stamp_[u] = epoch_;
          dist_[u] = dist_[v] + w;
          prev_[u] = v;
          pq.emplace(dist_[u], u);
        }
      }
    }
    std::vector<std::size_t> path;
    if (goal == nv) return path;
    for (std::size_t v = goal; v != nv; v = prev_[v]) path.push_back(v);
    std::reverse(path.begin(), path.end());
    return path;
  }

 private:
  /// Marks every (x, y) grid cell covered by the half-open obstacle span,
  /// exactly reproducing Rect::contains on each coordinate pair.
  static void mark_covered(const std::vector<double>& xcoords,
                           const std::vector<double>& ycoords,
                           const geom::Rect& o, int stride,
                           std::vector<bool>& grid) {
    if (stride <= 0) return;
    const auto ix0 =
        std::lower_bound(xcoords.begin(), xcoords.end(), o.x) - xcoords.begin();
    const auto ix1 =
        std::lower_bound(xcoords.begin(), xcoords.end(), o.right()) -
        xcoords.begin();
    const auto iy0 =
        std::lower_bound(ycoords.begin(), ycoords.end(), o.y) - ycoords.begin();
    const auto iy1 =
        std::lower_bound(ycoords.begin(), ycoords.end(), o.top()) -
        ycoords.begin();
    for (auto j = iy0; j < iy1; ++j) {
      for (auto i = ix0; i < ix1; ++i) {
        grid[static_cast<std::size_t>(j) * stride + static_cast<std::size_t>(i)] =
            true;
      }
    }
  }

  /// Mid-point occlusion, looked up in the precomputed edge bitmaps (the
  /// midpoint of two adjacent grid lines is exact, so this matches the old
  /// per-query obstacle scan bit for bit).
  bool edge_blocked(int i0, int j0, int i1, int j1) const {
    if (j0 == j1) {
      return hblocked_[static_cast<std::size_t>(j0) * (nx_ - 1) +
                       static_cast<std::size_t>(std::min(i0, i1))];
    }
    return vblocked_[static_cast<std::size_t>(std::min(j0, j1)) * nx_ +
                     static_cast<std::size_t>(i0)];
  }

  std::vector<geom::Rect> obstacles_;
  std::vector<double> xs_, ys_;
  std::vector<double> xmid_, ymid_;  ///< midpoints of adjacent grid lines
  int nx_ = 0, ny_ = 0;
  std::vector<bool> blocked_;            ///< vertex inside an obstacle
  std::vector<bool> hblocked_, vblocked_;  ///< edge midpoint inside one
  mutable std::vector<double> dist_;
  mutable std::vector<std::size_t> prev_;
  mutable std::vector<std::uint32_t> stamp_;
  mutable std::uint32_t epoch_ = 0;
};

}  // namespace

SteinerTree route_net(std::span<const geom::Point> terminals,
                      std::span<const geom::Rect> obstacles,
                      double clearance) {
  SteinerTree tree;
  if (terminals.size() < 2) {
    for (const auto& t : terminals) tree.nodes.push_back(t);
    return tree;
  }
  EscapeGraph g(terminals, obstacles, clearance);

  std::vector<std::size_t> term_v;
  term_v.reserve(terminals.size());
  for (const auto& t : terminals) term_v.push_back(g.vertex_of(t));

  // Grow the tree from the first terminal, attaching the nearest remaining
  // terminal through a shortest obstacle-avoiding path each round.
  std::vector<std::size_t> tree_vertices = {term_v[0]};
  std::set<std::size_t> remaining(term_v.begin() + 1, term_v.end());
  remaining.erase(term_v[0]);
  std::vector<std::pair<std::size_t, std::size_t>> vedges;
  while (!remaining.empty()) {
    const auto path = g.shortest_path(tree_vertices, remaining);
    if (path.empty()) {
      throw std::runtime_error("route_net: terminal unreachable");
    }
    for (std::size_t k = 1; k < path.size(); ++k) {
      vedges.emplace_back(path[k - 1], path[k]);
      tree_vertices.push_back(path[k]);
    }
    remaining.erase(path.back());
  }

  // Compact vertex ids into tree nodes; merge duplicate edges.
  std::vector<std::size_t> vids;
  for (const auto& [a, b] : vedges) {
    vids.push_back(a);
    vids.push_back(b);
  }
  std::sort(vids.begin(), vids.end());
  vids.erase(std::unique(vids.begin(), vids.end()), vids.end());
  auto index_of = [&](std::size_t v) {
    return static_cast<int>(std::lower_bound(vids.begin(), vids.end(), v) -
                            vids.begin());
  };
  for (std::size_t v : vids) tree.nodes.push_back(g.point(v));
  std::set<std::pair<int, int>> dedup;
  for (const auto& [a, b] : vedges) {
    int ia = index_of(a), ib = index_of(b);
    if (ia > ib) std::swap(ia, ib);
    if (ia != ib) dedup.emplace(ia, ib);
  }
  tree.edges.assign(dedup.begin(), dedup.end());
  return tree;
}

std::vector<Conduit> to_conduits(const SteinerTree& tree,
                                 const std::string& net) {
  // Collect per-orientation segments, then merge collinear runs.
  struct Seg {
    double fixed;  ///< y for horizontal, x for vertical
    double lo, hi;
  };
  std::vector<Seg> hor, ver;
  for (const auto& [a, b] : tree.edges) {
    const geom::Point pa = tree.nodes[static_cast<std::size_t>(a)];
    const geom::Point pb = tree.nodes[static_cast<std::size_t>(b)];
    if (std::abs(pa.y - pb.y) < 1e-12) {
      hor.push_back({pa.y, std::min(pa.x, pb.x), std::max(pa.x, pb.x)});
    } else if (std::abs(pa.x - pb.x) < 1e-12) {
      ver.push_back({pa.x, std::min(pa.y, pb.y), std::max(pa.y, pb.y)});
    } else {
      // L-shaped fallback (should not occur on a rectilinear grid).
      hor.push_back({pa.y, std::min(pa.x, pb.x), std::max(pa.x, pb.x)});
      ver.push_back({pb.x, std::min(pa.y, pb.y), std::max(pa.y, pb.y)});
    }
  }
  auto merge = [](std::vector<Seg>& segs) {
    std::sort(segs.begin(), segs.end(), [](const Seg& a, const Seg& b) {
      return a.fixed < b.fixed || (a.fixed == b.fixed && a.lo < b.lo);
    });
    std::vector<Seg> out;
    for (const Seg& s : segs) {
      if (!out.empty() && std::abs(out.back().fixed - s.fixed) < 1e-12 &&
          s.lo <= out.back().hi + 1e-12) {
        out.back().hi = std::max(out.back().hi, s.hi);
      } else {
        out.push_back(s);
      }
    }
    return out;
  };
  std::vector<Conduit> conduits;
  for (const Seg& s : merge(hor)) {
    conduits.push_back({{s.lo, s.fixed}, {s.hi, s.fixed}, 1, net});
  }
  for (const Seg& s : merge(ver)) {
    conduits.push_back({{s.fixed, s.lo}, {s.fixed, s.hi}, 2, net});
  }
  return conduits;
}

GlobalRoute global_route(const floorplan::Instance& inst,
                         const std::vector<geom::Rect>& rects,
                         const std::vector<int>& routing_dirs) {
  GlobalRoute gr;
  // Above this block count the escape graph is clipped to a window around
  // each net's pins (obstacles far outside the pin bounding box cannot
  // improve the route, but their Hanan lines quadratically inflate the
  // grid).  Small instances keep the historic full-canvas graph so their
  // routes stay bit-identical.
  constexpr int kWindowMinBlocks = 64;
  const bool windowed = inst.num_blocks() > kWindowMinBlocks;
  std::vector<char> on_net(static_cast<std::size_t>(inst.num_blocks()), 0);
  for (std::size_t ni = 0; ni < inst.nets.size(); ++ni) {
    const auto& net = inst.nets[ni];
    if (net.size() < 2) continue;
    std::vector<geom::Point> pins;
    for (int b : net) {
      const int dir = b < static_cast<int>(routing_dirs.size())
                          ? routing_dirs[static_cast<std::size_t>(b)]
                          : 0;
      pins.push_back(
          block_pin_for_net(rects[static_cast<std::size_t>(b)], dir, ni));
      on_net[static_cast<std::size_t>(b)] = 1;
    }
    geom::Rect window;
    if (windowed) {
      window = geom::bounding_box_points(pins);
      window = window.inflated(0.25 * std::max(window.w, window.h) + 2.0);
    }
    auto gather_obstacles = [&](bool clip) {
      std::vector<geom::Rect> obstacles;
      for (int b = 0; b < inst.num_blocks(); ++b) {
        if (on_net[static_cast<std::size_t>(b)]) continue;
        const geom::Rect& r = rects[static_cast<std::size_t>(b)];
        if (clip && !r.overlaps(window)) continue;
        obstacles.push_back(r);
      }
      return obstacles;
    };
    const std::string name = "net" + std::to_string(ni);
    try {
      SteinerTree tree;
      try {
        tree = route_net(pins, gather_obstacles(windowed));
      } catch (const std::runtime_error&) {
        // A pin walled in by window-boundary obstacles may still escape on
        // the full graph; retry once before declaring the net failed.
        if (!windowed) throw;
        tree = route_net(pins, gather_obstacles(false));
      }
      gr.total_wirelength += tree.length();
      const auto cs = to_conduits(tree, name);
      gr.conduits.insert(gr.conduits.end(), cs.begin(), cs.end());
      gr.trees.push_back(std::move(tree));
      gr.net_names.push_back(name);
    } catch (const std::runtime_error&) {
      ++gr.failed_nets;
    }
    for (int b : net) on_net[static_cast<std::size_t>(b)] = 0;
  }
  return gr;
}

}  // namespace afp::route
