// Obstacle-Avoiding Rectilinear Steiner Minimal Tree (OARSMT) global
// router (Section IV-E; as in [13]).
//
// Per net: an escape graph is built from the Hanan coordinates of the
// terminals plus the (slightly inflated) obstacle boundaries; terminals
// are connected one at a time via Dijkstra shortest paths over the graph
// (nearest-terminal-first Steiner construction).  The resulting tree is
// segmented into per-layer conduits that guide detailed routing:
// horizontal segments on layer 1, vertical on layer 2.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "floorplan/instance.hpp"

namespace afp::route {

/// Rectilinear tree over Steiner nodes.
struct SteinerTree {
  std::vector<geom::Point> nodes;
  /// Edges are axis-aligned segments between node indices.
  std::vector<std::pair<int, int>> edges;

  double length() const;
  bool empty() const { return edges.empty(); }
};

/// A straight routed segment on one layer.
struct Conduit {
  geom::Point a;
  geom::Point b;
  int layer = 1;  ///< 1 = horizontal, 2 = vertical
  std::string net;
};

/// Routes one net.  `terminals` are pin locations; `obstacles` are regions
/// the route must not cross (they are shrunk by `clearance` so edges along
/// block boundaries remain legal).  Throws std::runtime_error when some
/// terminal cannot be reached.
SteinerTree route_net(std::span<const geom::Point> terminals,
                      std::span<const geom::Rect> obstacles,
                      double clearance = 0.05);

/// Splits a tree into per-layer conduits, merging collinear edges.
std::vector<Conduit> to_conduits(const SteinerTree& tree,
                                 const std::string& net);

/// Pin location of a block: the midpoint of its preferred routing edge
/// (routing_direction 0=N,1=E,2=S,3=W), nudged outside by `offset`.
geom::Point block_pin(const geom::Rect& rect, int routing_direction,
                      double offset = 0.0);

/// Per-net pin location: terminals of different nets spread out along the
/// block's routing edge (template realization gives each net its own
/// terminal), preventing distinct nets from converging on one point.
geom::Point block_pin_for_net(const geom::Rect& rect, int routing_direction,
                              std::size_t net_index);

struct GlobalRoute {
  std::vector<SteinerTree> trees;     ///< one per routed net
  std::vector<std::string> net_names;
  std::vector<Conduit> conduits;
  double total_wirelength = 0.0;
  int failed_nets = 0;
};

/// Routes every net of the instance over the placed blocks.  Blocks not on
/// the net act as obstacles; pins sit on block boundaries per each block's
/// preferred routing direction (derived from the structure type when the
/// graph is available; here: north).
GlobalRoute global_route(const floorplan::Instance& inst,
                         const std::vector<geom::Rect>& rects,
                         const std::vector<int>& routing_dirs = {});

}  // namespace afp::route
