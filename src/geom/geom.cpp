#include "geom/geom.hpp"

namespace afp::geom {

Rect intersection(const Rect& a, const Rect& b) {
  const double x0 = std::max(a.x, b.x);
  const double y0 = std::max(a.y, b.y);
  const double x1 = std::min(a.right(), b.right());
  const double y1 = std::min(a.top(), b.top());
  if (x1 <= x0 || y1 <= y0) return {};
  return {x0, y0, x1 - x0, y1 - y0};
}

Rect bounding_union(const Rect& a, const Rect& b) {
  if (a.empty()) return b;
  if (b.empty()) return a;
  const double x0 = std::min(a.x, b.x);
  const double y0 = std::min(a.y, b.y);
  const double x1 = std::max(a.right(), b.right());
  const double y1 = std::max(a.top(), b.top());
  return {x0, y0, x1 - x0, y1 - y0};
}

Rect bounding_box(std::span<const Rect> rects) {
  Rect bb{};
  bool first = true;
  for (const Rect& r : rects) {
    if (r.empty()) continue;
    bb = first ? r : bounding_union(bb, r);
    first = false;
  }
  return bb;
}

Rect bounding_box_points(std::span<const Point> pts) {
  if (pts.empty()) return {};
  double x0 = pts[0].x, y0 = pts[0].y, x1 = pts[0].x, y1 = pts[0].y;
  for (const Point& p : pts) {
    x0 = std::min(x0, p.x);
    y0 = std::min(y0, p.y);
    x1 = std::max(x1, p.x);
    y1 = std::max(y1, p.y);
  }
  return {x0, y0, x1 - x0, y1 - y0};
}

double total_pairwise_overlap(std::span<const Rect> rects) {
  double total = 0.0;
  for (std::size_t i = 0; i < rects.size(); ++i) {
    for (std::size_t j = i + 1; j < rects.size(); ++j) {
      total += intersection(rects[i], rects[j]).area();
    }
  }
  return total;
}

double hpwl_net(std::span<const Point> pins) {
  if (pins.size() < 2) return 0.0;
  const Rect bb = bounding_box_points(pins);
  return bb.w + bb.h;
}

double hpwl_total(std::span<const std::vector<Point>> nets) {
  double total = 0.0;
  for (const auto& net : nets) total += hpwl_net(net);
  return total;
}

double dead_space(std::span<const Rect> blocks) {
  const Rect bb = bounding_box(blocks);
  if (bb.area() <= 0.0) return 0.0;
  double used = 0.0;
  for (const Rect& r : blocks) used += r.area();
  return 1.0 - used / bb.area();
}

double aspect_ratio(const Rect& r) {
  if (r.w <= 0.0 || r.h <= 0.0) return std::numeric_limits<double>::infinity();
  return std::max(r.w, r.h) / std::min(r.w, r.h);
}

Interval intersect(const Interval& a, const Interval& b) {
  return {std::max(a.lo, b.lo), std::min(a.hi, b.hi)};
}

Cell GridMapper::cell_of(double x, double y) const {
  int col = static_cast<int>(std::floor(x * n / world_w));
  int row = static_cast<int>(std::floor(y * n / world_h));
  col = std::clamp(col, 0, n - 1);
  row = std::clamp(row, 0, n - 1);
  return {col, row};
}

double canvas_side(double total_area, double r_max) {
  // The canvas must accommodate any floorplan with aspect ratio up to
  // r_max: the long side of such a floorplan is at most
  // sqrt(total_area * r_max) (when the floorplan is a perfect r_max:1
  // rectangle).  The paper's W = H = sqrt(sum Ai / Rmax) typeset reads
  // ambiguously; a canvas smaller than sqrt(total_area) cannot fit the
  // blocks, so we use the only consistent interpretation.
  return std::sqrt(std::max(0.0, total_area) * std::max(1.0, r_max));
}

}  // namespace afp::geom
