// Geometry primitives for analog floorplanning.
//
// All coordinates are in micrometers (double) unless stated otherwise.
// Rectangles are axis-aligned, closed on the lower-left and open on the
// upper-right edge, i.e. [x, x+w) x [y, y+h), so that abutting blocks do
// not "overlap".
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <span>
#include <string>
#include <vector>

namespace afp::geom {

/// A 2-D point in micrometers.
struct Point {
  double x = 0.0;
  double y = 0.0;

  friend bool operator==(const Point&, const Point&) = default;
};

/// Manhattan (L1) distance between two points.
inline double manhattan(const Point& a, const Point& b) {
  return std::abs(a.x - b.x) + std::abs(a.y - b.y);
}

/// Euclidean (L2) distance between two points.
inline double euclidean(const Point& a, const Point& b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return std::sqrt(dx * dx + dy * dy);
}

/// Axis-aligned rectangle described by lower-left corner and size.
struct Rect {
  double x = 0.0;  ///< lower-left x
  double y = 0.0;  ///< lower-left y
  double w = 0.0;  ///< width  (>= 0)
  double h = 0.0;  ///< height (>= 0)

  friend bool operator==(const Rect&, const Rect&) = default;

  double left() const { return x; }
  double right() const { return x + w; }
  double bottom() const { return y; }
  double top() const { return y + h; }
  double area() const { return w * h; }
  Point center() const { return {x + w / 2.0, y + h / 2.0}; }
  Point lower_left() const { return {x, y}; }
  Point upper_right() const { return {x + w, y + h}; }
  bool empty() const { return w <= 0.0 || h <= 0.0; }

  /// True when `p` lies inside the half-open rectangle.
  bool contains(const Point& p) const {
    return p.x >= x && p.x < x + w && p.y >= y && p.y < y + h;
  }

  /// True when `other` is fully inside (or equal to) this rectangle.
  bool contains(const Rect& other) const {
    return other.x >= x && other.y >= y && other.right() <= right() &&
           other.top() <= top();
  }

  /// True when interiors intersect (shared edges do not count).
  bool overlaps(const Rect& other) const {
    return x < other.right() && other.x < right() && y < other.top() &&
           other.y < top();
  }

  /// Rectangle translated by (dx, dy).
  Rect translated(double dx, double dy) const { return {x + dx, y + dy, w, h}; }

  /// Rectangle grown by `margin` on every side (may be negative).
  Rect inflated(double margin) const {
    return {x - margin, y - margin, w + 2 * margin, h + 2 * margin};
  }
};

/// Intersection of two rectangles; empty rect (w=h=0) when disjoint.
Rect intersection(const Rect& a, const Rect& b);

/// Smallest rectangle covering both inputs.
Rect bounding_union(const Rect& a, const Rect& b);

/// Smallest rectangle covering all inputs; empty rect for an empty span.
Rect bounding_box(std::span<const Rect> rects);

/// Smallest rectangle covering all points; empty rect for an empty span.
Rect bounding_box_points(std::span<const Point> pts);

/// Total overlap area over all unordered pairs in `rects`.
double total_pairwise_overlap(std::span<const Rect> rects);

/// Half-perimeter wirelength of a single net given its pin locations.
/// Zero for nets with fewer than two pins.
double hpwl_net(std::span<const Point> pins);

/// Sum of `hpwl_net` over a collection of nets.
double hpwl_total(std::span<const std::vector<Point>> nets);

/// Dead space of a floorplan: 1 - sum(block areas) / bbox area.
/// Returns 0 when the bounding box is degenerate.
double dead_space(std::span<const Rect> blocks);

/// Aspect ratio (max(w,h)/min(w,h)) of a rectangle; >= 1. Returns +inf for
/// degenerate rectangles.
double aspect_ratio(const Rect& r);

/// One-dimensional closed interval helper.
struct Interval {
  double lo = 0.0;
  double hi = 0.0;

  bool valid() const { return lo <= hi; }
  double length() const { return hi - lo; }
  bool contains(double v) const { return v >= lo && v <= hi; }

  friend bool operator==(const Interval&, const Interval&) = default;
};

/// Intersection of two intervals; invalid (lo > hi) when disjoint.
Interval intersect(const Interval& a, const Interval& b);

/// Integer grid cell coordinate.
struct Cell {
  int col = 0;  ///< x index
  int row = 0;  ///< y index

  friend bool operator==(const Cell&, const Cell&) = default;
};

/// Maps continuous block dimensions onto an integer grid following the
/// paper's quantization: wg = ceil(w * n / W) (Section IV-D1).
struct GridMapper {
  double world_w = 1.0;  ///< floorplan canvas width W in um
  double world_h = 1.0;  ///< floorplan canvas height H in um
  int n = 32;            ///< grid resolution (n x n)

  /// Grid width in cells of a block of continuous width `w`.
  int cells_w(double w) const {
    return std::max(1, static_cast<int>(std::ceil(w * n / world_w)));
  }
  /// Grid height in cells of a block of continuous height `h`.
  int cells_h(double h) const {
    return std::max(1, static_cast<int>(std::ceil(h * n / world_h)));
  }
  /// Continuous x coordinate of the left edge of column `col`.
  double world_x(int col) const { return col * world_w / n; }
  /// Continuous y coordinate of the bottom edge of row `row`.
  double world_y(int row) const { return row * world_h / n; }
  /// Cell containing the continuous point (x, y); clamped to the grid.
  Cell cell_of(double x, double y) const;
};

/// Canvas side length from total block area and maximum aspect ratio,
/// W = H = sqrt(sum Ai / Rmax) scaled so the canvas fits Rmax-elongated
/// floorplans (Section IV-D1, Rmax = 11).
double canvas_side(double total_area, double r_max);

}  // namespace afp::geom
