#include "structrec/structrec.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

namespace afp::structrec {

using netlist::Device;
using netlist::DeviceType;
using netlist::Netlist;

namespace {

bool is_supply(const std::string& net) {
  netlist::Net n{net, {}};
  return n.is_supply();
}

bool same_size(const Device& a, const Device& b) {
  return std::abs(a.width_um - b.width_um) < 1e-9 &&
         std::abs(a.length_um - b.length_um) < 1e-9;
}

/// Does any *other* MOS device expose its drain on `net`?
bool net_hosts_other_drain(const Netlist& nl, const std::string& net,
                           int self_a, int self_b) {
  for (int di = 0; di < nl.num_devices(); ++di) {
    if (di == self_a || di == self_b) continue;
    const Device& d = nl.device(di);
    if (d.is_mos() && d.drain() == net) return true;
  }
  return false;
}

int distinct_nonsupply_nets(const Netlist& nl, const std::vector<int>& devs) {
  std::set<std::string> nets;
  for (int di : devs) {
    for (const auto& t : nl.device(di).terminals) {
      if (!is_supply(t)) nets.insert(t);
    }
  }
  return static_cast<int>(nets.size());
}

/// Preferred pin side: mirrors referenced to VSS route up (0 = N), to VDD
/// route down (2 = S); passives route sideways.
int routing_direction(const Netlist& nl, const Structure& s) {
  const Device& d0 = nl.device(s.devices.front());
  if (!d0.is_mos()) return 1;  // E
  return d0.type == DeviceType::kNmos ? 0 : 2;
}

Structure finalize(const Netlist& nl, std::string name, StructureType type,
                   std::vector<int> devs) {
  Structure s;
  s.name = std::move(name);
  s.type = type;
  s.devices = std::move(devs);
  for (int di : s.devices) s.area_um2 += nl.device(di).area_um2();
  const Device& d0 = nl.device(s.devices.front());
  if (d0.is_mos()) {
    s.stripe_width_um = d0.width_um / std::max(1, d0.fingers);
  } else if (d0.type == DeviceType::kResistor) {
    s.stripe_width_um = 0.5;
  } else {
    s.stripe_width_um = std::sqrt(d0.area_um2());
  }
  s.pin_count = distinct_nonsupply_nets(nl, s.devices);
  s.routing_direction = routing_direction(nl, s);
  return s;
}

std::string join_names(const Netlist& nl, const std::vector<int>& devs) {
  std::string out;
  for (std::size_t i = 0; i < devs.size(); ++i) {
    if (i) out += '+';
    out += nl.device(devs[i]).name;
  }
  return out;
}

bool diode_connected(const Device& d) {
  return d.is_mos() && d.drain() == d.gate();
}

}  // namespace

std::string to_string(StructureType t) {
  switch (t) {
    case StructureType::kDiffPairN: return "diff_pair_n";
    case StructureType::kDiffPairP: return "diff_pair_p";
    case StructureType::kCurrentMirrorN: return "current_mirror_n";
    case StructureType::kCurrentMirrorP: return "current_mirror_p";
    case StructureType::kCascodePairN: return "cascode_pair_n";
    case StructureType::kCascodePairP: return "cascode_pair_p";
    case StructureType::kCrossCoupledN: return "cross_coupled_n";
    case StructureType::kCrossCoupledP: return "cross_coupled_p";
    case StructureType::kLevelShifterCore: return "level_shifter_core";
    case StructureType::kInverter: return "inverter";
    case StructureType::kTransmissionGate: return "transmission_gate";
    case StructureType::kResistorString: return "resistor_string";
    case StructureType::kResistorSingle: return "resistor";
    case StructureType::kCapSingle: return "capacitor";
    case StructureType::kCapArray: return "cap_array";
    case StructureType::kSingleNmos: return "nmos";
    case StructureType::kSinglePmos: return "pmos";
    case StructureType::kDiodeNmos: return "diode_nmos";
    case StructureType::kDiodePmos: return "diode_pmos";
    case StructureType::kTailSource: return "tail_source";
    case StructureType::kOutputStage: return "output_stage";
    case StructureType::kStartupDevice: return "startup";
    case StructureType::kPowerDevice: return "power_device";
    case StructureType::kSenseResistor: return "sense_resistor";
    case StructureType::kDecapCapacitor: return "decap";
    case StructureType::kBiasDiode: return "bias_diode";
    case StructureType::kSwitch: return "switch";
    case StructureType::kUnknown: return "unknown";
  }
  return "?";
}

bool is_matched_pair(StructureType t) {
  switch (t) {
    case StructureType::kDiffPairN:
    case StructureType::kDiffPairP:
    case StructureType::kCascodePairN:
    case StructureType::kCascodePairP:
    case StructureType::kCrossCoupledN:
    case StructureType::kCrossCoupledP:
    case StructureType::kLevelShifterCore:
      return true;
    default:
      return false;
  }
}

Recognition recognize(const Netlist& nl) {
  const int n = nl.num_devices();
  std::vector<bool> used(static_cast<std::size_t>(n), false);
  std::vector<Structure> structures;

  auto claim = [&](StructureType type, std::vector<int> devs) {
    for (int di : devs) used[static_cast<std::size_t>(di)] = true;
    // Build the name before handing the index list over (argument
    // evaluation order must not matter).
    std::string name = join_names(nl, devs);
    structures.push_back(finalize(nl, std::move(name), type, std::move(devs)));
  };

  // ---- rule 1: cross-coupled pairs ---------------------------------------
  for (int a = 0; a < n; ++a) {
    if (used[static_cast<std::size_t>(a)] || !nl.device(a).is_mos()) continue;
    for (int b = a + 1; b < n; ++b) {
      if (used[static_cast<std::size_t>(b)] || used[static_cast<std::size_t>(a)]) continue;
      const Device& da = nl.device(a);
      const Device& db = nl.device(b);
      if (!db.is_mos() || da.type != db.type) continue;
      if (da.gate() == db.drain() && db.gate() == da.drain() &&
          da.gate() != da.drain()) {
        claim(da.type == DeviceType::kNmos ? StructureType::kCrossCoupledN
                                           : StructureType::kCrossCoupledP,
              {a, b});
      }
    }
  }

  // ---- rule 2: differential pairs -----------------------------------------
  for (int a = 0; a < n; ++a) {
    if (used[static_cast<std::size_t>(a)] || !nl.device(a).is_mos()) continue;
    for (int b = a + 1; b < n; ++b) {
      if (used[static_cast<std::size_t>(b)] || used[static_cast<std::size_t>(a)]) continue;
      const Device& da = nl.device(a);
      const Device& db = nl.device(b);
      if (!db.is_mos() || da.type != db.type) continue;
      if (da.source() == db.source() && !is_supply(da.source()) &&
          da.gate() != db.gate() && same_size(da, db) &&
          !diode_connected(da) && !diode_connected(db)) {
        claim(da.type == DeviceType::kNmos ? StructureType::kDiffPairN
                                           : StructureType::kDiffPairP,
              {a, b});
      }
    }
  }

  // ---- rule 3: cascode pairs ------------------------------------------------
  for (int a = 0; a < n; ++a) {
    if (used[static_cast<std::size_t>(a)] || !nl.device(a).is_mos()) continue;
    for (int b = a + 1; b < n; ++b) {
      if (used[static_cast<std::size_t>(b)] || used[static_cast<std::size_t>(a)]) continue;
      const Device& da = nl.device(a);
      const Device& db = nl.device(b);
      if (!db.is_mos() || da.type != db.type) continue;
      if (da.gate() == db.gate() && da.source() != db.source() &&
          !is_supply(da.source()) && !is_supply(db.source()) &&
          same_size(da, db) && !diode_connected(da) && !diode_connected(db) &&
          net_hosts_other_drain(nl, da.source(), a, b) &&
          net_hosts_other_drain(nl, db.source(), a, b)) {
        claim(da.type == DeviceType::kNmos ? StructureType::kCascodePairN
                                           : StructureType::kCascodePairP,
              {a, b});
      }
    }
  }

  // ---- rule 4: current mirrors -----------------------------------------------
  // Group unused MOS devices by (type, gate net, source net); a group of
  // two or more containing a diode-connected member is a mirror.
  {
    std::map<std::tuple<int, std::string, std::string>, std::vector<int>> groups;
    for (int a = 0; a < n; ++a) {
      if (used[static_cast<std::size_t>(a)] || !nl.device(a).is_mos()) continue;
      const Device& d = nl.device(a);
      groups[{static_cast<int>(d.type), d.gate(), d.source()}].push_back(a);
    }
    for (auto& [key, devs] : groups) {
      if (devs.size() < 2) continue;
      const bool has_diode = std::any_of(devs.begin(), devs.end(), [&](int di) {
        return diode_connected(nl.device(di));
      });
      if (!has_diode) continue;
      const auto type = static_cast<DeviceType>(std::get<0>(key));
      claim(type == DeviceType::kNmos ? StructureType::kCurrentMirrorN
                                      : StructureType::kCurrentMirrorP,
            devs);
    }
  }

  // ---- rule 5: resistor strings ------------------------------------------------
  // Two or more resistors chained through nets private to the chain.
  for (int a = 0; a < n; ++a) {
    if (used[static_cast<std::size_t>(a)]) continue;
    if (nl.device(a).type != DeviceType::kResistor) continue;
    std::vector<int> chain = {a};
    bool grew = true;
    while (grew) {
      grew = false;
      for (int b = 0; b < n; ++b) {
        if (used[static_cast<std::size_t>(b)] ||
            nl.device(b).type != DeviceType::kResistor)
          continue;
        if (std::find(chain.begin(), chain.end(), b) != chain.end()) continue;
        // b joins when it shares a non-supply net used by exactly the two
        // of them.
        for (int c : chain) {
          for (const auto& net : nl.device(c).terminals) {
            if (is_supply(net)) continue;
            const auto on_net = nl.devices_on_net(net);
            if (on_net.size() == 2 &&
                ((on_net[0] == c && on_net[1] == b) ||
                 (on_net[0] == b && on_net[1] == c))) {
              chain.push_back(b);
              grew = true;
              break;
            }
          }
          if (grew) break;
        }
        if (grew) break;
      }
    }
    if (chain.size() >= 2) {
      std::sort(chain.begin(), chain.end());
      claim(StructureType::kResistorString, chain);
    }
  }

  // ---- rule 6: singletons ----------------------------------------------------------
  for (int a = 0; a < n; ++a) {
    if (used[static_cast<std::size_t>(a)]) continue;
    const Device& d = nl.device(a);
    StructureType t = StructureType::kUnknown;
    switch (d.type) {
      case DeviceType::kNmos:
        if (d.width_um >= 100.0) t = StructureType::kPowerDevice;
        else if (diode_connected(d)) t = StructureType::kDiodeNmos;
        else t = StructureType::kSingleNmos;
        break;
      case DeviceType::kPmos:
        if (diode_connected(d)) t = StructureType::kDiodePmos;
        else t = StructureType::kSinglePmos;
        break;
      case DeviceType::kResistor:
        t = StructureType::kResistorSingle;
        break;
      case DeviceType::kCapacitor:
        t = StructureType::kCapSingle;
        break;
    }
    claim(t, {a});
  }

  Recognition out;
  out.structures = std::move(structures);
  out.device_to_structure.assign(static_cast<std::size_t>(n), -1);
  for (int si = 0; si < static_cast<int>(out.structures.size()); ++si) {
    for (int di : out.structures[static_cast<std::size_t>(si)].devices) {
      out.device_to_structure[static_cast<std::size_t>(di)] = si;
    }
  }
  return out;
}

}  // namespace afp::structrec
