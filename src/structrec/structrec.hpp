// Structure recognition: partitions a transistor-level netlist into the
// functional blocks the floorplanner places.
//
// The paper uses Infineon's proprietary GCN-based recognizer [21]; this
// module substitutes a deterministic rule-based matcher over the same
// motif vocabulary (differential pairs, current mirrors, cascode pairs,
// cross-coupled pairs, resistor strings, singletons).  The downstream
// interface — a partition of devices into typed blocks with geometry
// parameters — is identical.
//
// Rules are applied in priority order; every device belongs to exactly one
// structure:
//   1. cross-coupled pair   (gate_a == drain_b and gate_b == drain_a)
//   2. differential pair    (shared non-supply source, distinct gates,
//                            matched W/L, same type)
//   3. cascode pair         (shared gate, distinct non-supply sources, each
//                            source carrying another device's drain)
//   4. current mirror       (maximal same-type group sharing gate and
//                            source nets with a diode-connected member)
//   5. resistor string      (series resistors through exclusive nets)
//   6. singletons           (typed by device kind / diode connection /
//                            power-device width)
#pragma once

#include <string>
#include <vector>

#include "netlist/netlist.hpp"

namespace afp::structrec {

/// Functional-structure vocabulary.  Exactly 28 entries: the paper encodes
/// the block's functional structure as a 28-dimensional one-hot vector.
enum class StructureType : int {
  kDiffPairN = 0,
  kDiffPairP,
  kCurrentMirrorN,
  kCurrentMirrorP,
  kCascodePairN,
  kCascodePairP,
  kCrossCoupledN,
  kCrossCoupledP,
  kLevelShifterCore,
  kInverter,
  kTransmissionGate,
  kResistorString,
  kResistorSingle,
  kCapSingle,
  kCapArray,
  kSingleNmos,
  kSinglePmos,
  kDiodeNmos,
  kDiodePmos,
  kTailSource,
  kOutputStage,
  kStartupDevice,
  kPowerDevice,
  kSenseResistor,
  kDecapCapacitor,
  kBiasDiode,
  kSwitch,
  kUnknown,
};

constexpr int kNumStructureTypes = 28;

/// Printable structure-type name.
std::string to_string(StructureType t);

/// True for the pair-structures whose internal layout is symmetric and
/// which therefore anchor symmetry constraints (diff / cross-coupled /
/// cascode pairs).
bool is_matched_pair(StructureType t);

/// A recognized functional block.
struct Structure {
  std::string name;            ///< derived from member device names
  StructureType type = StructureType::kUnknown;
  std::vector<int> devices;    ///< indices into the source netlist

  // Geometry / feature parameters consumed by graph construction.
  double area_um2 = 0.0;       ///< sum of member device areas
  double stripe_width_um = 0.0;///< transistor stripe (finger) width, or
                               ///< resistor stripe width
  int pin_count = 0;           ///< distinct non-supply nets touched
  int routing_direction = 0;   ///< 0=N,1=E,2=S,3=W preferred pin side
};

/// Result of recognizing a netlist.
struct Recognition {
  std::vector<Structure> structures;
  /// structure index per device (same length as netlist devices).
  std::vector<int> device_to_structure;
};

/// Runs the rule engine.  Deterministic: equal inputs yield equal outputs.
Recognition recognize(const netlist::Netlist& nl);

}  // namespace afp::structrec
