# Regression test for the classic daemon-adjacent CLI bug: piping
# `afp_cli floorplan ... --report-json out.json` into a consumer that exits
# early (`| head -1`) used to kill the CLI with SIGPIPE (shell status 141),
# losing the report file and any error message.  The CLI now ignores
# SIGPIPE, detects the EPIPE write failure at exit, prints a stderr note,
# exits nonzero — and the --report-json file is written regardless.
#
# Invoked by CTest as:
#   cmake -DAFP_CLI=<path> -DWORK_DIR=<dir> -P sigpipe_check.cmake
if(NOT AFP_CLI OR NOT WORK_DIR)
  message(FATAL_ERROR
    "usage: cmake -DAFP_CLI=... -DWORK_DIR=... -P sigpipe_check.cmake")
endif()
file(REMOVE_RECURSE ${WORK_DIR})
file(MAKE_DIRECTORY ${WORK_DIR})

# `cmake -E true` closes the read end of the pipe within its startup
# (tens of ms) while the 2M-iteration search keeps the CLI busy for
# ~0.5 s — so the CLI's stdout flush is guaranteed to hit a dead pipe.
# execute_process chains COMMANDs with a pipe, like a shell.
execute_process(
  COMMAND ${AFP_CLI} floorplan ota_small --baseline sa --iters 2000000
          --seed 7 --report-json ${WORK_DIR}/report.json
  COMMAND ${CMAKE_COMMAND} -E true
  RESULTS_VARIABLE rcs
  OUTPUT_QUIET
  ERROR_VARIABLE err)
list(GET rcs 0 cli_rc)
# A signal death shows up as a message string ("Child killed"), not a
# number: pre-fix this is exactly what happened.  Post-fix the EPIPE is
# detected at the final flush and reported as a plain exit 1.
if(NOT cli_rc EQUAL 1)
  message(FATAL_ERROR
    "CLI with a broken stdout pipe exited '${cli_rc}' (wanted 1): ${err}")
endif()
if(NOT err MATCHES "writing to stdout failed")
  message(FATAL_ERROR "exit 1 without the stdout-failure note: ${err}")
endif()
if(NOT EXISTS ${WORK_DIR}/report.json)
  message(FATAL_ERROR "broken pipe lost the --report-json file")
endif()
file(READ ${WORK_DIR}/report.json report)
if(NOT report MATCHES "\"schema_version\"")
  message(FATAL_ERROR "report.json written but truncated: ${report}")
endif()
message(STATUS "broken stdout pipe: clean exit 1, report.json intact")
