# E2E check for the machine-readable JSON report emission: a single-run
# --report-json must validate against the checked-in mini-schema
# (cmake/report_schema.json, enforced by cmake/check_report_json.py).
#
# Invoked by CTest as:
#   cmake -DAFP_CLI=... -DPYTHON=... -DSCHEMA_DIR=... -DWORK_DIR=... -P report_json_check.cmake
if(NOT AFP_CLI OR NOT PYTHON OR NOT SCHEMA_DIR OR NOT WORK_DIR)
  message(FATAL_ERROR
    "usage: cmake -DAFP_CLI=... -DPYTHON=... -DSCHEMA_DIR=... -DWORK_DIR=... -P report_json_check.cmake")
endif()
file(MAKE_DIRECTORY "${WORK_DIR}")
set(report "${WORK_DIR}/report.json")

execute_process(
  COMMAND ${AFP_CLI} floorplan ota_small --baseline pt --pt-replicas 3
          --iters 60 --seed 11 --report-json ${report}
  RESULT_VARIABLE rc
  OUTPUT_QUIET
  ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "afp_cli --report-json run failed: ${err}")
endif()

execute_process(
  COMMAND ${PYTHON} ${SCHEMA_DIR}/check_report_json.py
          ${SCHEMA_DIR}/report_schema.json ${report} report
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "report JSON violates the schema: ${err}")
endif()
message(STATUS "${out}")
