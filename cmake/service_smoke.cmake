# End-to-end daemon smoke: afp_loadgen --spawn starts afpd on a unix
# socket, drives it with 4 concurrent client sessions x 3 seeds (checking
# cross-client byte-parity internally), SIGTERMs it and requires a clean
# drain (exit 0).  The canonical served report for every seed is then
# bitwise-compared against `afp_cli floorplan ... --report-json` for the
# same circuit/config/seed — the only member allowed to differ is the
# "timings" line, the report's one documented non-deterministic field.
#
# Invoked by CTest as:
#   cmake -DAFP_CLI=<path> -DAFPD=<path> -DLOADGEN=<path> -DWORK_DIR=<dir>
#         -P service_smoke.cmake
if(NOT AFP_CLI OR NOT AFPD OR NOT LOADGEN OR NOT WORK_DIR)
  message(FATAL_ERROR "usage: cmake -DAFP_CLI=... -DAFPD=... -DLOADGEN=... "
                      "-DWORK_DIR=... -P service_smoke.cmake")
endif()
file(REMOVE_RECURSE ${WORK_DIR})
file(MAKE_DIRECTORY ${WORK_DIR})

set(seeds 7 8 9)
set(circuit ota_small)
set(iters 60)

# Reference reports from the CLI path.
foreach(seed IN LISTS seeds)
  execute_process(
    COMMAND ${AFP_CLI} floorplan ${circuit} --baseline sa --iters ${iters}
            --seed ${seed} --report-json ${WORK_DIR}/cli_seed${seed}.json
    RESULT_VARIABLE rc
    OUTPUT_QUIET
    ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "afp_cli seed ${seed} failed (${rc}): ${err}")
  endif()
endforeach()

# Served reports: spawn the daemon, 4 concurrent sessions, drain on SIGTERM.
execute_process(
  COMMAND ${LOADGEN} --spawn ${AFPD} --socket ${WORK_DIR}/afpd.sock
          --clients 4 --seeds 7,8,9 --circuit ${circuit} --baseline sa
          --iters ${iters} --write-reports ${WORK_DIR}
          --bench-json ${WORK_DIR}/BENCH_service.json
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "afp_loadgen failed (${rc}):\n${out}\n${err}")
endif()
message(STATUS "${out}")

# Bitwise parity, daemon vs CLI, modulo the timings/tt_cache lines.
foreach(seed IN LISTS seeds)
  foreach(side cli report)
    file(READ ${WORK_DIR}/${side}_seed${seed}.json ${side}_bytes)
    string(REGEX REPLACE "\"timings\": {[^}]*}" "\"timings\": {}"
           ${side}_bytes "${${side}_bytes}")
    string(REGEX REPLACE "\"tt_cache\": {[^}]*}" "\"tt_cache\": {}"
           ${side}_bytes "${${side}_bytes}")
  endforeach()
  if(NOT cli_bytes STREQUAL report_bytes)
    message(FATAL_ERROR "seed ${seed}: served report differs from afp_cli "
                        "--report-json beyond the timings line")
  endif()
endforeach()

file(READ ${WORK_DIR}/BENCH_service.json bench)
foreach(key jobs_per_s p50_ms p99_ms)
  if(NOT bench MATCHES "\"${key}\"")
    message(FATAL_ERROR "BENCH_service.json is missing ${key}: ${bench}")
  endif()
endforeach()
message(STATUS "4-client served reports bitwise-match afp_cli for seeds 7 8 9")
