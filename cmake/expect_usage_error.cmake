# Smoke test for the CLI's unknown-flag handling: an unrecognized option
# must exit with code 2 and print the usage text (plus the offending flag)
# to stderr — never be silently ignored.
#
# Invoked by CTest as:
#   cmake -DAFP_CLI=<path-to-afp_cli> -P expect_usage_error.cmake
if(NOT AFP_CLI)
  message(FATAL_ERROR "usage: cmake -DAFP_CLI=... -P expect_usage_error.cmake")
endif()

execute_process(
  COMMAND ${AFP_CLI} floorplan ota_small --definitely-bogus
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT rc EQUAL 2)
  message(FATAL_ERROR "expected exit code 2 for an unknown flag, got ${rc}")
endif()
if(NOT err MATCHES "unknown option '--definitely-bogus'")
  message(FATAL_ERROR "stderr does not name the unknown flag: ${err}")
endif()
if(NOT err MATCHES "usage: afp")
  message(FATAL_ERROR "stderr does not contain the usage text: ${err}")
endif()
# A flag that only exists on a different command must be rejected too.
execute_process(
  COMMAND ${AFP_CLI} train --pt-replicas 8
  RESULT_VARIABLE rc2
  OUTPUT_QUIET
  ERROR_VARIABLE err2)
if(NOT rc2 EQUAL 2)
  message(FATAL_ERROR "expected exit code 2 for a wrong-command flag, got ${rc2}")
endif()
if(NOT err2 MATCHES "unknown option '--pt-replicas' for 'train'")
  message(FATAL_ERROR "stderr does not name the wrong-command flag: ${err2}")
endif()
message(STATUS "unknown flags rejected with exit 2 and usage on stderr")
