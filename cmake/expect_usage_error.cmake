# Smoke test for the CLI's unknown-flag handling: an unrecognized option
# must exit with code 2 and print the usage text (plus the offending flag)
# to stderr — never be silently ignored.
#
# Invoked by CTest as:
#   cmake -DAFP_CLI=<path-to-afp_cli> -P expect_usage_error.cmake
if(NOT AFP_CLI)
  message(FATAL_ERROR "usage: cmake -DAFP_CLI=... -P expect_usage_error.cmake")
endif()

execute_process(
  COMMAND ${AFP_CLI} floorplan ota_small --definitely-bogus
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT rc EQUAL 2)
  message(FATAL_ERROR "expected exit code 2 for an unknown flag, got ${rc}")
endif()
if(NOT err MATCHES "unknown option '--definitely-bogus'")
  message(FATAL_ERROR "stderr does not name the unknown flag: ${err}")
endif()
if(NOT err MATCHES "usage: afp")
  message(FATAL_ERROR "stderr does not contain the usage text: ${err}")
endif()
# A flag that only exists on a different command must be rejected too.
execute_process(
  COMMAND ${AFP_CLI} train --pt-replicas 8
  RESULT_VARIABLE rc2
  OUTPUT_QUIET
  ERROR_VARIABLE err2)
if(NOT rc2 EQUAL 2)
  message(FATAL_ERROR "expected exit code 2 for a wrong-command flag, got ${rc2}")
endif()
if(NOT err2 MATCHES "unknown option '--pt-replicas' for 'train'")
  message(FATAL_ERROR "stderr does not name the wrong-command flag: ${err2}")
endif()

# Malformed values are usage errors too: every numeric option is validated
# (historically `--seed abc` crashed with an uncaught std::invalid_argument
# from std::stoul), an unknown --baseline must name the registry, and a bad
# --opt key must name the optimizer's known options.  All exit 2 + usage.
set(bad_invocations
    "floorplan\;ota_small\;--seed\;abc"
    "floorplan\;ota_small\;--iters\;12x"
    "floorplan\;ota_small\;--restarts\;-3"
    "floorplan\;ota_small\;--time-budget\;soon"
    "floorplan\;ota_small\;--time-budget\;nan"
    "floorplan\;ota_small\;--time-budget\;inf"
    "floorplan\;ota_small\;--baseline\;annealing-deluxe"
    "floorplan\;ota_small\;--opt\;bogus_key=1"
    "floorplan\;ota_small\;--baseline\;sa\;--opt\;iterations=many"
    "floorplan\;ota_small\;--baseline\;pt\;--opt\;replicas=1"
    "floorplan\;ota_small\;--baseline\;sa\;--opt\;iterations=-5"
    "floorplan\;ota_small\;--restarts\;4\;--time-budget\;0.1"
    "floorplan\;ota_small\;--batch\;nowhere\;--svg\;x.svg"
    "floorplan\;ota_small\;--baseline\;sa\;--pt-replicas\;4"
    "floorplan\;ota_small\;--quanta\;0"
    "floorplan\;ota_small\;--quanta\;lots"
    "floorplan\;ota_small\;--restarts\;2\;--quanta\;4"
    "floorplan\;ota_small\;--job-timeout\;0"
    "floorplan\;ota_small\;--job-timeout\;never"
    "floorplan\;ota_small\;--max-retries\;-1"
    "floorplan\;ota_small\;--checkpoint\;cp.bin"
    "floorplan\;ota_small\;--quanta\;2\;--resume"
    "train\;--episodes\;1e3"
    "eval\;ota_small\;--attempts\;0")
foreach(invocation IN LISTS bad_invocations)
  execute_process(
    COMMAND ${AFP_CLI} ${invocation}
    RESULT_VARIABLE rc3
    OUTPUT_QUIET
    ERROR_VARIABLE err3)
  if(NOT rc3 EQUAL 2)
    message(FATAL_ERROR
      "expected exit code 2 for 'afp ${invocation}', got ${rc3}: ${err3}")
  endif()
  if(NOT err3 MATCHES "usage: afp")
    message(FATAL_ERROR "no usage text for 'afp ${invocation}': ${err3}")
  endif()
endforeach()
message(STATUS "unknown flags and malformed values rejected with exit 2")

# ------------------------------------------------- batch partial failure ---
# A manifest entry that cannot be loaded must be skipped (reported as a
# failed job, kind invalid_config), not abort the batch: a mixed batch exits
# 3 (partial failure), an all-bad batch exits 1.
if(NOT WORK_DIR)
  set(WORK_DIR ${CMAKE_CURRENT_BINARY_DIR})
endif()
file(MAKE_DIRECTORY ${WORK_DIR})
file(WRITE ${WORK_DIR}/mixed_manifest.txt
     "ota_small\n/nonexistent/netlist.sp\n")
execute_process(
  COMMAND ${AFP_CLI} floorplan --batch ${WORK_DIR}/mixed_manifest.txt
          --iters 30 --seed 1
  RESULT_VARIABLE rc4
  OUTPUT_VARIABLE out4
  ERROR_VARIABLE err4)
if(NOT rc4 EQUAL 3)
  message(FATAL_ERROR
    "expected exit code 3 for a partially failed batch, got ${rc4}: ${err4}")
endif()
if(NOT err4 MATCHES "skipping '/nonexistent/netlist.sp'")
  message(FATAL_ERROR "stderr does not name the skipped entry: ${err4}")
endif()
if(NOT out4 MATCHES "invalid_config")
  message(FATAL_ERROR
    "batch table does not classify the skipped job as invalid_config: ${out4}")
endif()
file(WRITE ${WORK_DIR}/bad_manifest.txt
     "/nonexistent/a.sp\n/nonexistent/b.sp\n")
execute_process(
  COMMAND ${AFP_CLI} floorplan --batch ${WORK_DIR}/bad_manifest.txt --seed 1
  RESULT_VARIABLE rc5
  OUTPUT_QUIET
  ERROR_QUIET)
if(NOT rc5 EQUAL 1)
  message(FATAL_ERROR
    "expected exit code 1 for an all-failed batch, got ${rc5}")
endif()
message(STATUS "batch skips unloadable entries; exit 3 flags partial failure")
