#!/usr/bin/env python3
"""Validate an afp --report-json file against cmake/report_schema.json.

Usage: check_report_json.py <schema.json> <report.json> [report|batch]

The schema is a self-contained mini-language (stdlib only, no jsonschema):

* "int" / "num" / "str" / "bool"  — scalar types (int also matches a whole
  number; bool is NOT accepted as int),
* [T]                             — array whose elements all match T,
* {...}                           — object with exactly these required keys,
* {"__values__": T}               — map with free-form keys, values match T,
* "<T>|null"                      — named top-level schema or scalar type,
                                    or JSON null (e.g. "num|null" for
                                    metrics that degenerate to NaN/Inf).

Bare nan/inf tokens (including Python-style NaN/Infinity, which json.load
would otherwise happily accept) are rejected: a report must be consumable
by strict JSON parsers.

When the shape argument is omitted the checker picks "batch" when the top
level has a "jobs" array, "report" otherwise.  Exits 0 on success, 1 with a
path-qualified message on the first mismatch.
"""
import json
import sys

SCALARS = ("int", "num", "str", "bool")


class Mismatch(Exception):
    pass


def reject_constant(token):
    raise Mismatch(
        f"non-JSON numeric token '{token}' (nan/inf must be emitted as null)")


def check(value, schema, schemas, path):
    if isinstance(schema, str):
        if "|" in schema:
            name, _null = schema.split("|", 1)
            if value is None:
                return
            check(value, name if name in SCALARS else schemas[name],
                  schemas, path)
            return
        if schema == "int":
            ok = isinstance(value, int) and not isinstance(value, bool)
        elif schema == "num":
            ok = isinstance(value, (int, float)) and not isinstance(value, bool)
        elif schema == "str":
            ok = isinstance(value, str)
        elif schema == "bool":
            ok = isinstance(value, bool)
        else:
            raise Mismatch(f"{path}: unknown schema type '{schema}'")
        if not ok:
            raise Mismatch(f"{path}: expected {schema}, got {value!r}")
        return
    if isinstance(schema, list):
        if not isinstance(value, list):
            raise Mismatch(f"{path}: expected an array, got {value!r}")
        for i, item in enumerate(value):
            check(item, schema[0], schemas, f"{path}[{i}]")
        return
    if isinstance(schema, dict):
        if not isinstance(value, dict):
            raise Mismatch(f"{path}: expected an object, got {value!r}")
        if set(schema) == {"__values__"}:
            for key, item in value.items():
                check(item, schema["__values__"], schemas, f"{path}.{key}")
            return
        missing = set(schema) - set(value)
        extra = set(value) - set(schema)
        if missing:
            raise Mismatch(f"{path}: missing keys {sorted(missing)}")
        if extra:
            raise Mismatch(f"{path}: unexpected keys {sorted(extra)}")
        for key, sub in schema.items():
            check(value[key], sub, schemas, f"{path}.{key}")
        return
    raise Mismatch(f"{path}: malformed schema entry {schema!r}")


def main(argv):
    if len(argv) not in (3, 4):
        print(__doc__, file=sys.stderr)
        return 1
    with open(argv[1]) as f:
        schemas = json.load(f)
    schemas.pop("_comment", None)
    try:
        with open(argv[2]) as f:
            data = json.load(f, parse_constant=reject_constant)
    except (json.JSONDecodeError, Mismatch) as e:
        print(f"invalid JSON in {argv[2]}: {e}", file=sys.stderr)
        return 1
    shape = argv[3] if len(argv) == 4 else (
        "batch" if isinstance(data.get("jobs"), list) else "report")
    if shape not in schemas:
        print(f"unknown shape '{shape}' (schemas: {sorted(schemas)})",
              file=sys.stderr)
        return 1
    try:
        check(data, schemas[shape], schemas, "$")
    except Mismatch as e:
        print(f"schema violation in {argv[2]} ({shape}): {e}",
              file=sys.stderr)
        return 1
    print(f"{argv[2]}: valid {shape} (schema_version "
          f"{data.get('schema_version')})")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
