# Workload-ingestion smoke: the checked-in example deck must run end to end
# through `afp_cli ingest` with a schema-valid JSON report, the checked-in
# malformed deck must exit 2 with a file:line diagnostic, and a 3-family x
# 2-size scenario matrix must produce bitwise-identical batch reports at
# AFP_NUM_THREADS 1 and 4 (modulo the runtime members: timings, tt_cache,
# runtime_s and the recorded thread count).
#
# Invoked by CTest as:
#   cmake -DAFP_CLI=... -DPYTHON=... -DSCHEMA_DIR=... -DEXAMPLES_DIR=...
#         -DWORK_DIR=... -P scenario_smoke.cmake
# (PYTHON may be empty: the schema validation is skipped then.)
if(NOT AFP_CLI OR NOT SCHEMA_DIR OR NOT EXAMPLES_DIR OR NOT WORK_DIR)
  message(FATAL_ERROR
    "usage: cmake -DAFP_CLI=... -DPYTHON=... -DSCHEMA_DIR=... "
    "-DEXAMPLES_DIR=... -DWORK_DIR=... -P scenario_smoke.cmake")
endif()
file(MAKE_DIRECTORY "${WORK_DIR}")

# --- 1. example deck: parse, elaborate, search, report -------------------
set(ingest_report "${WORK_DIR}/ingest.json")
execute_process(
  COMMAND ${AFP_CLI} ingest ${EXAMPLES_DIR}/two_stage_ota.sp
          --baseline sa --iters 400 --seed 7 --report-json ${ingest_report}
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "example-deck ingest failed (rc ${rc}): ${out}\n${err}")
endif()
if(NOT out MATCHES "blocks: [1-9]")
  message(FATAL_ERROR "ingest produced no recognized blocks:\n${out}")
endif()
if(PYTHON)
  execute_process(
    COMMAND ${PYTHON} ${SCHEMA_DIR}/check_report_json.py
            ${SCHEMA_DIR}/report_schema.json ${ingest_report}
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE vout
    ERROR_VARIABLE verr)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "ingest JSON violates the schema: ${verr}")
  endif()
  message(STATUS "${vout}")
endif()

# --- 2. malformed deck: structured exit 2, never a crash -----------------
execute_process(
  COMMAND ${AFP_CLI} ingest ${EXAMPLES_DIR}/broken_unterminated.sp
          --parse-only
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT rc EQUAL 2)
  message(FATAL_ERROR
    "malformed deck must exit 2, got rc ${rc}: ${out}\n${err}")
endif()
if(NOT err MATCHES "broken_unterminated.sp:3")
  message(FATAL_ERROR "malformed-deck diagnostic lost its file:line:\n${err}")
endif()

# --- 3. scenario matrix: 1- vs 4-thread bitwise batch reports ------------
foreach(threads 1 4)
  set(report "${WORK_DIR}/matrix_t${threads}.json")
  execute_process(
    COMMAND ${CMAKE_COMMAND} -E env AFP_NUM_THREADS=${threads}
            ${AFP_CLI} floorplan --scenario-matrix ota,latch,driver:10,16:1
            --baseline sa --iters 600 --opt spacing_um=0 --seed 5
            --report-json ${report}
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR
      "scenario matrix failed at ${threads} threads (rc ${rc}): "
      "${out}\n${err}")
  endif()
  if(NOT out MATCHES "matrix: 6/6 done")
    message(FATAL_ERROR "matrix did not finish all 6 instances:\n${out}")
  endif()
  file(READ "${report}" body)
  string(REGEX REPLACE "\"timings\": {[^}]*}" "\"timings\": {}" body "${body}")
  string(REGEX REPLACE "\"tt_cache\": {[^}]*}" "\"tt_cache\": {}"
         body "${body}")
  string(REGEX REPLACE "\"runtime_s\": [0-9.eE+-]+" "\"runtime_s\": 0"
         body "${body}")
  string(REGEX REPLACE "\"threads\": [0-9]+" "\"threads\": 0" body "${body}")
  set(norm_t${threads} "${body}")
endforeach()
if(NOT norm_t1 STREQUAL norm_t4)
  file(WRITE "${WORK_DIR}/norm_t1.json" "${norm_t1}")
  file(WRITE "${WORK_DIR}/norm_t4.json" "${norm_t4}")
  message(FATAL_ERROR
    "scenario matrix is thread-count dependent: ${WORK_DIR}/norm_t1.json "
    "vs ${WORK_DIR}/norm_t4.json differ")
endif()
if(PYTHON)
  execute_process(
    COMMAND ${PYTHON} ${SCHEMA_DIR}/check_report_json.py
            ${SCHEMA_DIR}/report_schema.json ${WORK_DIR}/matrix_t1.json batch
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE vout
    ERROR_VARIABLE verr)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "matrix batch JSON violates the schema: ${verr}")
  endif()
  message(STATUS "${vout}")
endif()
message(STATUS
  "ingest + malformed-deck + 6-instance matrix smoke finished cleanly "
  "(1- vs 4-thread reports bitwise identical)")
