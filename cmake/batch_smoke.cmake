# Bench-smoke for the async batch front end: a 3-netlist --batch job under a
# wall-clock --time-budget must finish every job, emit a batch JSON report,
# and that report must validate against the checked-in mini-schema.
#
# Invoked by CTest as:
#   cmake -DAFP_CLI=... -DPYTHON=... -DSCHEMA_DIR=... -DWORK_DIR=... -P batch_smoke.cmake
# (PYTHON may be empty: the schema validation is skipped then.)
if(NOT AFP_CLI OR NOT SCHEMA_DIR OR NOT WORK_DIR)
  message(FATAL_ERROR
    "usage: cmake -DAFP_CLI=... -DPYTHON=... -DSCHEMA_DIR=... -DWORK_DIR=... -P batch_smoke.cmake")
endif()
file(MAKE_DIRECTORY "${WORK_DIR}")
set(manifest "${WORK_DIR}/batch_manifest.txt")
set(report "${WORK_DIR}/batch.json")
file(WRITE "${manifest}" "# 3-netlist smoke batch (registry circuits)
ota_small
ota1
bias_small
")

execute_process(
  COMMAND ${CMAKE_COMMAND} -E env AFP_NUM_THREADS=4
          ${AFP_CLI} floorplan --batch ${manifest} --baseline sa --iters 200
          --time-budget 0.5 --seed 9 --report-json ${report}
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "batch run failed (rc ${rc}): ${out}\n${err}")
endif()
foreach(job ota_small ota1 bias_small)
  if(NOT out MATCHES "${job} +done")
    message(FATAL_ERROR "job '${job}' did not finish:\n${out}")
  endif()
endforeach()

if(PYTHON)
  execute_process(
    COMMAND ${PYTHON} ${SCHEMA_DIR}/check_report_json.py
            ${SCHEMA_DIR}/report_schema.json ${report} batch
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE vout
    ERROR_VARIABLE verr)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "batch JSON violates the schema: ${verr}")
  endif()
  message(STATUS "${vout}")
endif()
message(STATUS "3-netlist time-budgeted batch finished cleanly")
