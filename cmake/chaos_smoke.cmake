# Chaos-soak smoke: afp_chaos --spawn starts afpd with aggressive
# resilience knobs (1 s idle reap, 2 s write deadline, 16-frame queue
# bound, strike limit 8) and runs a seeded mix of misbehaving sessions —
# malformed floods, raw junk, mid-frame stalls, half-open sockets, slow
# readers, random disconnects — alongside well-behaved sessions.  The
# harness itself asserts the good sessions' served bytes match an
# in-process pipeline run, that no result frame was dropped, and that
# SIGTERM drains cleanly; this driver additionally bitwise-diffs the
# served reports against `afp_cli --report-json` (modulo the timings
# line), then runs the SIGKILL + restart journal-replay leg.
#
# Invoked by CTest as:
#   cmake -DAFP_CLI=<path> -DAFPD=<path> -DCHAOS=<path> -DWORK_DIR=<dir>
#         -P chaos_smoke.cmake
if(NOT AFP_CLI OR NOT AFPD OR NOT CHAOS OR NOT WORK_DIR)
  message(FATAL_ERROR "usage: cmake -DAFP_CLI=... -DAFPD=... -DCHAOS=... "
                      "-DWORK_DIR=... -P chaos_smoke.cmake")
endif()
file(REMOVE_RECURSE ${WORK_DIR})
file(MAKE_DIRECTORY ${WORK_DIR})

set(seeds 7 8)
set(iters 60)

# Reference reports from the CLI path.
foreach(seed IN LISTS seeds)
  execute_process(
    COMMAND ${AFP_CLI} floorplan ota_small --baseline sa --iters ${iters}
            --seed ${seed} --report-json ${WORK_DIR}/cli_seed${seed}.json
    RESULT_VARIABLE rc
    OUTPUT_QUIET
    ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "afp_cli seed ${seed} failed (${rc}): ${err}")
  endif()
endforeach()

# The chaos soak: >=1 stalled reader, >=1 half-open socket, >=1 malformed
# flood ride in the 6-actor rotation.
execute_process(
  COMMAND ${CHAOS} --spawn ${AFPD} --socket ${WORK_DIR}/afpd.sock
          --seed 1 --good 3 --chaos 6 --iters ${iters}
          --write-reports ${WORK_DIR}
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "afp_chaos failed (${rc}):\n${out}\n${err}")
endif()
message(STATUS "${out}")

# Bitwise parity for the well-behaved sessions, daemon vs CLI, modulo the
# timings/tt_cache lines.
foreach(seed IN LISTS seeds)
  foreach(side cli report)
    file(READ ${WORK_DIR}/${side}_seed${seed}.json ${side}_bytes)
    string(REGEX REPLACE "\"timings\": {[^}]*}" "\"timings\": {}"
           ${side}_bytes "${${side}_bytes}")
    string(REGEX REPLACE "\"tt_cache\": {[^}]*}" "\"tt_cache\": {}"
           ${side}_bytes "${${side}_bytes}")
  endforeach()
  if(NOT cli_bytes STREQUAL report_bytes)
    message(FATAL_ERROR "seed ${seed}: report served under chaos differs "
                        "from afp_cli --report-json beyond the timings line")
  endif()
endforeach()
message(STATUS "served reports bitwise-match afp_cli under chaos")

# Crash-recovery leg: SIGKILL mid-job, restart on the same journal, every
# orphaned job surfaced as a structured internal error.
execute_process(
  COMMAND ${CHAOS} --spawn ${AFPD} --socket ${WORK_DIR}/afpd_kill.sock
          --kill-test
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "afp_chaos --kill-test failed (${rc}):\n${out}\n${err}")
endif()
message(STATUS "${out}")
