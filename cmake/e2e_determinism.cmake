# Golden end-to-end determinism check for the search CLI.
#
# For each baseline run (a short SA and a short multi-start PT), for every
# kernel tier, the afp_cli pipeline must write a bitwise-identical --report
# for AFP_NUM_THREADS in {1, 4} and across two repeats.  The report contains
# the full-precision best cost, metrics and rectangles and no timings, so
# any byte of drift means the search path itself diverged.
#
# Invoked by CTest as:
#   cmake -DAFP_CLI=<path-to-afp_cli> -DWORK_DIR=<scratch-dir> -P e2e_determinism.cmake
if(NOT AFP_CLI OR NOT WORK_DIR)
  message(FATAL_ERROR "usage: cmake -DAFP_CLI=... -DWORK_DIR=... -P e2e_determinism.cmake")
endif()
file(MAKE_DIRECTORY "${WORK_DIR}")

# avx2 falls back to scalar on CPUs without AVX2, so the list is safe anywhere.
set(tiers naive scalar avx2 auto)

# name;flags... per run: one plain SA, one multi-start parallel tempering.
set(runs
    "sa\;--baseline\;sa\;--iters\;120"
    "pt\;--baseline\;pt\;--restarts\;2\;--pt-replicas\;4\;--pt-swap-interval\;8\;--iters\;60")

foreach(run IN LISTS runs)
  list(GET run 0 name)
  list(SUBLIST run 1 -1 flags)
  foreach(tier IN LISTS tiers)
    # The first (tier, threads=1, repeat=1) report is the golden reference
    # every other (threads, repeat) combination must reproduce bitwise.
    set(golden_file "")
    foreach(threads 1 4)
      foreach(repeat 1 2)
        set(report "${WORK_DIR}/${name}_${tier}_t${threads}_r${repeat}.txt")
        execute_process(
          COMMAND ${CMAKE_COMMAND} -E env
                  AFP_NUM_THREADS=${threads} AFP_KERNEL_TIER=${tier}
                  ${AFP_CLI} floorplan ota_small ${flags} --seed 7
                  --report ${report}
          RESULT_VARIABLE rc
          OUTPUT_QUIET
          ERROR_VARIABLE err)
        if(NOT rc EQUAL 0)
          message(FATAL_ERROR
            "afp_cli failed (${name}, tier ${tier}, ${threads} threads): ${err}")
        endif()
        if(golden_file STREQUAL "")
          set(golden_file "${report}")
          file(READ "${report}" golden_content)
        else()
          file(READ "${report}" content)
          if(NOT content STREQUAL golden_content)
            message(FATAL_ERROR
              "nondeterministic result: ${report} differs from ${golden_file} "
              "(baseline ${name}, tier ${tier}, ${threads} threads, repeat ${repeat})")
          endif()
        endif()
      endforeach()
    endforeach()
    message(STATUS "${name} @ tier ${tier}: bitwise identical across threads and repeats")
  endforeach()
endforeach()
