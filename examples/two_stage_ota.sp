* Two-stage Miller-compensated OTA — workload-ingestion example deck.
* Exercises the supported subset: .param arithmetic, .subckt hierarchy with
* parameter overrides, X-card expansion, '+' continuations and comments.

.param wdiff=8u ldiff=0.5u
.param wtail={2*wdiff}   $ tail carries both branch currents
.param wload=6u

* --- differential input stage: NMOS pair over a tail source -------------
.subckt diffpair inp inn outp outn tail w=4u l=0.5u
M1 outp inp tail VSS nch w={w} l={l}
M2 outn inn tail VSS nch w={w} l={l}
.ends diffpair

* --- PMOS current-mirror load (diode-connected reference) ---------------
.subckt pload ref out
MPD ref ref VDD VDD pch w=wload l=1u
MPO out ref VDD VDD pch
+ w=wload l=1u
.ends pload

* --- top level ----------------------------------------------------------
XIN inp inn d1 d2 ntail diffpair w=wdiff l=ldiff
XLD d1 d2 pload
MT ntail nbias VSS VSS nch w=wtail l=1u   ; shared tail source
MB nbias nbias VSS VSS nch w=2u l=1u      ; bias diode sets ntail current

* second stage: PMOS common-source with NMOS mirror sink
MP2 out d2 VDD VDD pch w=16u l=0.5u
MN2 out nbias VSS VSS nch w=4u l=1u

* Miller compensation across the second stage, with a zero-nulling R
RZ d2 cz 1.2k
CC cz out 0.9p

.end
