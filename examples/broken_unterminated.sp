* Malformed example: .subckt without .ends — must fail with a structured
* file:line diagnostic (afp_cli ingest exits 2), never a crash.
.subckt stage in out
M1 out in VSS VSS nch w=2u l=1u
