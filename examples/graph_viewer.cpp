// Circuit-graph inspector (paper Fig. 2): prints the heterogeneous graph
// of a circuit — nodes typed by functional structure, edges per relation —
// and writes a Graphviz DOT file for rendering.
//
//   $ ./graph_viewer [circuit]    (default: ota2, the paper's Fig. 2 OTA)
//   $ dot -Tpng ota2_graph.dot -o ota2_graph.png
#include <cstdio>
#include <fstream>

#include "graphir/graph.hpp"
#include "netlist/library.hpp"

int main(int argc, char** argv) {
  using namespace afp;
  const std::string circuit = argc > 1 ? argv[1] : "ota2";

  netlist::Netlist nl;
  for (const auto& e : netlist::circuit_registry()) {
    if (e.name == circuit) nl = e.make();
  }
  if (nl.num_devices() == 0) {
    std::fprintf(stderr, "unknown circuit '%s'\n", circuit.c_str());
    return 1;
  }

  auto g = graphir::build_graph(nl, structrec::recognize(nl));
  graphir::apply_constraints(g, graphir::default_constraints(g));

  std::printf("graph '%s': %d nodes\n", g.name.c_str(), g.num_nodes());
  for (int i = 0; i < g.num_nodes(); ++i) {
    const auto& n = g.nodes[static_cast<std::size_t>(i)];
    std::printf("  [%2d] %-26s %-18s area %7.1f um2, stripe %.2f um, "
                "%d pins\n",
                i, n.name.c_str(), structrec::to_string(n.type).c_str(),
                n.area_um2, n.stripe_width_um, n.pin_count);
  }
  static const char* kRelationNames[] = {"connectivity", "h-align", "v-align",
                                         "h-symmetry", "v-symmetry"};
  for (int r = 0; r < graphir::kNumRelations; ++r) {
    const auto& edges = g.edges[static_cast<std::size_t>(r)];
    std::printf("relation %-12s: %zu edges\n", kRelationNames[r],
                edges.size());
    for (const auto& [u, v] : edges) std::printf("  %d -- %d\n", u, v);
  }

  const std::string dot_path = circuit + "_graph.dot";
  std::ofstream os(dot_path);
  os << "graph \"" << g.name << "\" {\n  layout=neato; overlap=false;\n";
  for (int i = 0; i < g.num_nodes(); ++i) {
    const auto& n = g.nodes[static_cast<std::size_t>(i)];
    const bool pair = structrec::is_matched_pair(n.type);
    os << "  n" << i << " [label=\"" << n.name << "\\n"
       << structrec::to_string(n.type) << "\", shape="
       << (pair ? "doublecircle" : "ellipse") << "];\n";
  }
  static const char* kColors[] = {"black", "blue", "violet", "green", "red"};
  for (int r = 0; r < graphir::kNumRelations; ++r) {
    for (const auto& [u, v] : g.edges[static_cast<std::size_t>(r)]) {
      os << "  n" << u << " -- n" << v << " [color=" << kColors[r] << "];\n";
    }
  }
  os << "}\n";
  std::printf("wrote %s\n", dot_path.c_str());
  return 0;
}
