// Quickstart: netlist -> structure recognition -> floorplan -> routed,
// verified layout in ~20 lines of API use.
//
//   $ ./quickstart
//
// Uses the SA floorplanner so it runs in well under a second; see
// train_and_floorplan.cpp for the R-GCN + RL path.
#include <cstdio>

#include "core/pipeline.hpp"
#include "netlist/library.hpp"

int main() {
  using namespace afp;

  // 1. A circuit: either parse SPICE text or take a library generator.
  netlist::Netlist nl = netlist::make_ota2();
  std::printf("circuit '%s': %d devices, %zu ports\n", nl.name().c_str(),
              nl.num_devices(), nl.ports().size());

  // 2. Run the pipeline with a metaheuristic floorplanner.  The optimizer
  //    is chosen by name from the registry (default "sa"); swap it — or
  //    tune it with cfg.options — without touching any other code.
  std::mt19937_64 rng(1);
  core::PipelineConfig cfg;
  cfg.optimizer = "sa";
  core::FloorplanPipeline pipeline(cfg);
  const core::PipelineResult res = pipeline.run(nl, rng);

  // 3. Inspect the results.
  std::printf("functional blocks: %zu\n", res.recognition.structures.size());
  for (const auto& s : res.recognition.structures) {
    std::printf("  %-24s %-18s area %6.1f um2\n", s.name.c_str(),
                structrec::to_string(s.type).c_str(), s.area_um2);
  }
  std::printf("floorplan: area %.1f um2, dead space %.1f%%, HPWL %.1f um, "
              "reward %.2f\n",
              res.eval.area, res.eval.dead_space * 100.0, res.eval.hpwl,
              res.eval.reward);
  std::printf("routing:   %zu nets, %.1f um wire, %d failures\n",
              res.route.trees.size(), res.route.total_wirelength,
              res.route.failed_nets);
  std::printf("layout:    %zu wires, %zu vias, DRC %s, LVS %s\n",
              res.layout.wires.size(), res.layout.vias.size(),
              res.drc.clean() ? "clean" : "dirty",
              res.lvs.clean() ? "clean" : "dirty");

  // 4. Export for inspection.
  layoutgen::write_svg("quickstart_layout.svg", res.layout);
  std::printf("wrote quickstart_layout.svg\n");
  return 0;
}
