// Positional constraints demo: floorplans the Fig. 2 OTA with and without
// symmetry / alignment constraints and shows how the grid state machine
// pins the symmetry axis and restricts admissible cells.
//
//   $ ./constraint_explorer
#include <cstdio>

#include "floorplan/grid.hpp"
#include "netlist/library.hpp"

int main() {
  using namespace afp;

  netlist::Netlist nl = netlist::make_ota2();
  auto rec = structrec::recognize(nl);
  auto g = graphir::build_graph(nl, rec);
  const auto spec = graphir::default_constraints(g);

  std::printf("derived constraints for '%s':\n", nl.name().c_str());
  for (const auto& ss : spec.self_syms) {
    std::printf("  self-symmetric: %-28s about a %s axis\n",
                g.nodes[static_cast<std::size_t>(ss.block)].name.c_str(),
                ss.vertical ? "vertical" : "horizontal");
  }
  for (const auto& sp : spec.sym_pairs) {
    std::printf("  symmetric pair: %s <-> %s\n",
                g.nodes[static_cast<std::size_t>(sp.a)].name.c_str(),
                g.nodes[static_cast<std::size_t>(sp.b)].name.c_str());
  }
  for (const auto& ag : spec.align_groups) {
    std::printf("  align group (%s):", ag.horizontal ? "row" : "column");
    for (int b : ag.blocks) {
      std::printf(" %s", g.nodes[static_cast<std::size_t>(b)].name.c_str());
    }
    std::printf("\n");
  }

  graphir::apply_constraints(g, spec);
  auto inst = floorplan::make_instance(g);
  floorplan::GridFloorplan grid(inst, 32);

  // Greedy mask-following placement, printing how each placement changes
  // the constraint state.
  std::printf("\ngreedy constrained placement:\n");
  for (int b : inst.placement_order()) {
    const auto mask = grid.position_mask(b, 1);
    int valid = 0, first = -1;
    for (std::size_t i = 0; i < mask.size(); ++i) {
      if (mask[i] > 0.5f) {
        ++valid;
        if (first < 0) first = static_cast<int>(i);
      }
    }
    if (first < 0) {
      std::printf("  %-28s DEAD END (no admissible cell)\n",
                  inst.blocks[static_cast<std::size_t>(b)].name.c_str());
      return 1;
    }
    grid.place(b, 1, first % 32, first / 32);
    std::printf("  %-28s %4d admissible cells -> placed at (%2d,%2d)",
                inst.blocks[static_cast<std::size_t>(b)].name.c_str(), valid,
                first % 32, first / 32);
    if (grid.vertical_axis2()) {
      std::printf("  [v-axis @ x=%.1f cells]", *grid.vertical_axis2() / 2.0);
    }
    std::printf("\n");
  }

  const auto rects = grid.rects();
  const auto ev = floorplan::evaluate_floorplan(inst, rects);
  std::printf("\nconstrained floorplan: dead space %.1f%%, HPWL %.1f um, "
              "constraints %s\n",
              ev.dead_space * 100.0, ev.hpwl,
              ev.constraints_ok ? "SATISFIED" : "VIOLATED");

  // Contrast with the unconstrained run.
  graphir::apply_constraints(g, {});
  auto free_inst = floorplan::make_instance(g);
  floorplan::GridFloorplan free_grid(free_inst, 32);
  for (int b : free_inst.placement_order()) {
    const auto mask = free_grid.position_mask(b, 1);
    for (std::size_t i = 0; i < mask.size(); ++i) {
      if (mask[i] > 0.5f) {
        free_grid.place(b, 1, static_cast<int>(i) % 32,
                        static_cast<int>(i) / 32);
        break;
      }
    }
  }
  const auto free_ev =
      floorplan::evaluate_floorplan(free_inst, free_grid.rects());
  std::printf("unconstrained reference: dead space %.1f%%, HPWL %.1f um\n",
              free_ev.dead_space * 100.0, free_ev.hpwl);
  return 0;
}
