// The paper's headline flow: pre-train the R-GCN reward model, train the
// PPO agent with the hybrid curriculum, then floorplan an unseen circuit
// zero-shot and after few-shot fine-tuning.
//
//   $ ./train_and_floorplan [episodes_per_circuit]   (default 32)
//
// Training at full paper scale (4096 episodes/circuit, 16 envs, full-width
// networks) is hours of CPU; this example defaults to a scaled schedule
// that finishes in about a minute while exercising the identical code.
#include <cstdio>
#include <cstdlib>

#include "core/training.hpp"
#include "metaheur/baselines.hpp"
#include "netlist/library.hpp"
#include "rl/agent.hpp"

int main(int argc, char** argv) {
  using namespace afp;
  const int episodes = argc > 1 ? std::atoi(argv[1]) : 32;

  core::TrainOptions opt = core::TrainOptions::fast(/*seed=*/1);
  opt.hcl.circuits = {"ota_small", "bias_small", "ota1", "ota2", "bias1"};
  opt.hcl.episodes_per_circuit = episodes;
  opt.ppo.n_envs = 4;
  opt.ppo.n_steps = 32;
  opt.ppo.minibatch = 64;
  opt.ppo.lr = 1e-3f;

  std::printf("training agent (%d episodes x %zu circuits)...\n", episodes,
              opt.hcl.circuits.size());
  const core::TrainedAgent agent = core::train_agent(opt);
  std::printf("R-GCN final MSE: %.4f; PPO iterations: %zu; final mean "
              "episode reward: %.2f\n\n",
              agent.rgcn_history.back().mse, agent.rl_history.size(),
              agent.rl_history.back().mean_episode_reward);

  // Zero-shot on a circuit the agent never saw: the 7-block RS latch.
  std::mt19937_64 rng(2);
  auto nl = netlist::make_rs_latch();
  auto g = graphir::build_graph(nl, structrec::recognize(nl));
  auto probe = floorplan::make_instance(g);
  const double ref = metaheur::estimate_hpwl_min(probe, rng, 1500);
  const auto task = rl::make_task(*agent.encoder, std::move(g), ref);

  const auto zero = rl::best_of_episodes(*agent.policy, task, 8, rng);
  std::printf("zero-shot on rs_latch:  reward %.2f, dead space %.1f%%, "
              "HPWL %.1f um (%.3fs)\n",
              zero.eval.reward, zero.eval.dead_space * 100.0, zero.eval.hpwl,
              zero.runtime_s);

  // Few-shot fine-tuning on the same circuit.
  rl::ActorCritic tuned(agent.policy->config(), rng);
  rl::copy_parameters(*agent.policy, tuned);
  rl::PPOConfig ft;
  ft.n_envs = 4;
  ft.n_steps = 32;
  ft.minibatch = 64;
  ft.lr = 1e-3f;
  rl::fine_tune(tuned, task, /*episodes=*/4 * episodes, rng, ft);
  const auto few = rl::best_of_episodes(tuned, task, 8, rng);
  std::printf("few-shot on rs_latch:   reward %.2f, dead space %.1f%%, "
              "HPWL %.1f um\n",
              few.eval.reward, few.eval.dead_space * 100.0, few.eval.hpwl);

  // Reference: what SA achieves with congestion-aware spacing.
  metaheur::SAParams sa;
  const auto base = metaheur::run_sa(task.instance, sa, rng);
  std::printf("SA baseline:            reward %.2f, dead space %.1f%%, "
              "HPWL %.1f um (%.3fs)\n",
              base.eval.reward, base.eval.dead_space * 100.0, base.eval.hpwl,
              base.runtime_s);
  return 0;
}
